(** Command-line interface to the KernelGPT reproduction.

    - [list]      corpus modules and their spec status
    - [generate]  run the KernelGPT pipeline on one module
    - [baseline]  run the SyzDescribe baseline on one module
    - [fuzz]      fuzz one module with a chosen specification suite
    - [bugs]      hunt the Table 4 bugs
    - [report]    regenerate the paper's tables and figures *)

open Cmdliner

let model_conv =
  Arg.conv
    ( (fun s ->
        match Profile.by_name s with
        | Some p -> Ok p
        | None -> Error (`Msg (Printf.sprintf "unknown model %S (gpt-4, gpt-4o, gpt-3.5)" s))),
      fun fmt p -> Format.pp_print_string fmt p.Profile.name )

let model_arg =
  Arg.(value & opt model_conv Profile.gpt4 & info [ "model" ] ~doc:"Analysis LLM profile.")

let module_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODULE" ~doc:"Registry key, e.g. dm.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for independent campaigns/repetitions (0 = one per core). The \
           default 1 runs sequentially; any value produces identical tables.")

let resolve_jobs n = if n <= 0 then Kernelgpt.Pool.cpu_count () else n

(* Fault-injection flags, shared by every command that queries the
   oracle. Without them the client layer is a strict pass-through and
   output stays byte-identical. *)
let faults_conv =
  Arg.conv
    ( (fun s ->
        match Faults.parse_spec s with Ok p -> Ok p | Error msg -> Error (`Msg msg)),
      fun fmt p -> Format.pp_print_string fmt (Faults.spec_to_string p) )

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"RATE[:SEED]"
        ~doc:
          "Inject deterministic oracle-transport faults (timeouts, rate limits, server \
           errors, malformed and truncated responses) into $(docv) percent of query \
           attempts. The same RATE:SEED reproduces the same faults, retries, and output \
           exactly.")

let positive_int_conv =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))),
      Format.pp_print_int )

let query_budget_arg =
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "query-budget" ] ~docv:"N"
        ~doc:
          "Cap the run at $(docv) oracle query attempts (shared across all workers). \
           Once spent, queries fail fast and the pipeline degrades to partial results. \
           With $(b,--jobs) > 1 the shared budget is consumed in scheduler order, so \
           which queries it refuses varies run to run; budget-bound runs reproduce \
           exactly only at $(b,--jobs) 1.")

let client_of ?faults ?query_budget ?cache oracle =
  Client.create ?plan:faults
    ?query_budget:(Option.map Client.budget query_budget)
    ?cache oracle

(* Oracle answer cache (--oracle-cache), shared by every command that
   queries the oracle. Warm entries replay the cold run's responses and
   accounting, so stdout is byte-identical while the oracle is never
   consulted; without the flag nothing changes. *)
let oracle_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "oracle-cache" ] ~docv:"FILE"
        ~doc:
          "Persist oracle answers to $(docv) (content-addressed, versioned JSONL) and \
           replay them on later runs: a warm run performs zero oracle queries yet prints \
           byte-identical output, because each hit replays the cold run's accounting. \
           Hits bypass $(b,--faults) and consume no $(b,--query-budget). A missing file \
           starts cold; a corrupted or version-skewed one fails with a descriptive error.")

let oracle_cache_readonly_arg =
  Arg.(
    value & flag
    & info [ "oracle-cache-readonly" ]
        ~doc:
          "Serve $(b,--oracle-cache) without ever writing it back — for caches shared \
           between concurrent runs or checked into CI fixtures.")

(** Open the cache (when requested), run the command with it, then flush
    and summarize on stderr — stdout stays byte-identical cold vs warm. *)
let with_oracle_cache ~readonly file f =
  match file with
  | None ->
      if readonly then `Error (false, "--oracle-cache-readonly needs --oracle-cache FILE")
      else f None
  | Some file -> (
      match Cache.open_file ~readonly file with
      | Error e -> `Error (false, e)
      | Ok cache -> (
          let r = f (Some cache) in
          match Cache.flush cache with
          | Ok () ->
              Printf.eprintf "Oracle cache: %s\n%!" (Cache.summary cache);
              r
          | Error e -> `Error (false, e)))

(* Executor-side fault injection (--exec-faults), the fuzzing twin of
   --faults: drives the supervisor's wedge/reboot machinery in tests and
   CI. Without it campaigns behave exactly as they always have. *)
let exec_faults_conv =
  Arg.conv
    ( (fun s ->
        match Fuzzer.Supervisor.parse_spec s with
        | Ok c -> Ok c
        | Error msg -> Error (`Msg msg)),
      fun fmt c -> Format.pp_print_string fmt (Fuzzer.Supervisor.spec_to_string c) )

let exec_faults_arg =
  Arg.(
    value
    & opt (some exec_faults_conv) None
    & info [ "exec-faults" ] ~docv:"RATE[:SEED]"
        ~doc:
          "Deterministically lose $(docv) percent of campaign executions to a wedged \
           executor instance: the program is generated but its results are discarded, and \
           the supervisor reboots instances that trip the wedge threshold. The same \
           RATE:SEED reproduces the same faults, reboots, and output exactly.")

(* Worker-pool fault injection (--pool-faults): the pool twin of
   --faults/--exec-faults. The plan is installed process-wide
   (Pool.set_faults), so every pool run of the command sees it. *)
let pool_faults_conv =
  Arg.conv
    ( (fun s ->
        match Kernelgpt.Pool.Faults.parse_spec s with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)),
      fun fmt p -> Format.pp_print_string fmt (Kernelgpt.Pool.Faults.spec_to_string p) )

let pool_faults_arg =
  Arg.(
    value
    & opt (some pool_faults_conv) None
    & info [ "pool-faults" ] ~docv:"RATE[:SEED]"
        ~doc:
          "Deterministically crash or stall $(docv) percent of worker-pool task \
           attempts. Crashed attempts are retried on another worker; tasks that exhaust \
           the retry budget are quarantined and render as degraded table rows instead of \
           aborting the run. Decisions hash only the task label and attempt number, so \
           the same RATE:SEED reproduces the same faults and output for any $(b,--jobs).")

(* Corpus/operator scheduling mode (--sched), shared by fuzz and report:
   uniform is the historical draw-per-pick behavior, ucb schedules seeds
   and mutation operators by UCB1 over their recorded novelty rewards. *)
let sched_arg =
  Arg.(
    value
    & opt
        (enum [ ("uniform", Fuzzer.Schedule.Uniform); ("ucb", Fuzzer.Schedule.Ucb) ])
        Fuzzer.Schedule.Uniform
    & info [ "sched" ] ~docv:"MODE"
        ~doc:
          "Corpus and mutation-operator scheduling: $(b,uniform) (the historical \
           random pick) or $(b,ucb) (UCB1 bandit over coverage-novelty rewards, \
           deterministic and checkpoint-exact). Scheduler statistics are campaign \
           state: they ride in checkpoints and resume exactly.")

(* Observability flags, shared by every command that runs the pipeline.
   Traces go to a file and metrics to stderr, so stdout stays
   byte-identical for any --jobs value. *)
let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write one JSONL span record per pipeline stage, oracle query, pool task, \
                and fuzzing campaign to $(docv).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect counters/histograms (oracle cost, repair outcomes, campaign and \
                pool statistics) and render them on stderr at exit. Replaces the removed \
                KGPT_POOL_TRACE environment variable.")
  in
  let setup trace metrics =
    (match trace with Some file -> Obs.enable_trace_file file | None -> ());
    if metrics then Obs.enable_metrics ()
  in
  Term.(const setup $ trace $ metrics)

let find_entry name =
  match Corpus.Registry.find name with
  | Some e -> e
  | None ->
      Printf.eprintf "no such module %S; try `kernelgpt_cli list`\n" name;
      exit 1

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run verbose =
    let entries = Lazy.force Corpus.Registry.all in
    Printf.printf "%-14s %-7s %-7s %5s %6s  %s\n" "module" "kind" "loaded" "#cmds" "spec%" "device/socket";
    List.iter
      (fun (e : Corpus.Types.entry) ->
        if verbose || e.loaded then begin
          let kind = match e.kind with Corpus.Types.Driver -> "driver" | _ -> "socket" in
          let cmds = List.length e.gt.gt_ioctls + List.length e.gt.gt_setsockopts in
          let missing = Baseline.Syzkaller_specs.missing_fraction e in
          let where =
            match e.gt.gt_paths with
            | p :: _ -> p
            | [] -> (
                match e.gt.gt_socket with
                | Some (d, t, p) -> Printf.sprintf "socket(%d,%d,%d)" d t p
                | None -> "-")
          in
          Printf.printf "%-14s %-7s %-7b %5d %5.0f%%  %s\n" e.name kind e.loaded cmds
            ((1.0 -. missing) *. 100.)
            where
        end)
      entries;
    `Ok ()
  in
  let verbose =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Include modules not loaded under syzbot.")
  in
  Cmd.v (Cmd.info "list" ~doc:"List corpus modules")
    Term.(ret (const run $ verbose))

let generate_cmd =
  let run () name profile all_in_one show_prompting faults query_budget cache_file
      cache_readonly =
    let entry = find_entry name in
    let machine = Vkernel.Machine.boot [ entry ] in
    let kernel = machine.Vkernel.Machine.index in
    let oracle = Oracle.create ~profile ~knowledge:kernel () in
    with_oracle_cache ~readonly:cache_readonly cache_file @@ fun cache ->
    let client = client_of ?faults ?query_budget ?cache oracle in
    let mode = if all_in_one then Kernelgpt.Pipeline.All_in_one else Kernelgpt.Pipeline.Iterative in
    let out = Kernelgpt.Pipeline.run ~mode ~client ~oracle ~kernel entry in
    (match out.o_spec with
    | Some spec -> print_string (Syzlang.Printer.spec_str spec)
    | None -> print_endline "(no specification generated)");
    Printf.printf
      "\n# valid=%b direct=%b repaired=%b queries=%d prompt-tokens=%d iterations=%d\n"
      out.o_valid out.o_direct_valid out.o_repaired out.o_queries out.o_tokens out.o_iterations;
    List.iter
      (fun e -> Printf.printf "# unresolved: %s\n" (Syzlang.Validate.error_to_string e))
      out.o_errors;
    if Client.fault_tolerant client then
      Printf.printf "# resilience: faults=%d retries=%d recovered=%d degraded=%d\n"
        out.o_faults out.o_retries out.o_recovered out.o_degraded;
    if show_prompting then
      Printf.printf "# oracle: %d queries, %d prompt tokens, %d truncations\n"
        oracle.Oracle.queries oracle.Oracle.prompt_tokens oracle.Oracle.truncations;
    `Ok ()
  in
  let all_in_one =
    Arg.(value & flag & info [ "all-in-one" ] ~doc:"Single-prompt ablation mode (§5.2.3).")
  in
  let show = Arg.(value & flag & info [ "stats" ] ~doc:"Print oracle cost accounting.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a syzlang specification with KernelGPT")
    Term.(
      ret
        (const run $ obs_term $ module_arg $ model_arg $ all_in_one $ show $ faults_arg
       $ query_budget_arg $ oracle_cache_arg $ oracle_cache_readonly_arg))

let baseline_cmd =
  let run name =
    let entry = find_entry name in
    (match (Baseline.Syzdescribe.run entry).sd_spec with
    | Some spec -> print_string (Syzlang.Printer.spec_str spec)
    | None -> print_endline "(SyzDescribe cannot generate a specification for this module)");
    `Ok ()
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Generate a specification with the SyzDescribe baseline")
    Term.(ret (const run $ module_arg))

let fuzz_cmd =
  let run () name suite budget seed profile repro faults query_budget cache_file
      cache_readonly exec_faults pool_faults checkpoint checkpoint_every resume
      resume_or_fresh stop_after interpreted sched =
    let engine =
      if interpreted then Fuzzer.Campaign.Interpreted else Fuzzer.Campaign.Compiled
    in
    (* fuzz drives one campaign on the calling domain today; installing
       the plan anyway keeps the flag honest for any pool-sharded work
       the command grows *)
    Kernelgpt.Pool.set_faults pool_faults;
    let entry = find_entry name in
    let machine = Vkernel.Machine.boot [ entry ] in
    let kernel = machine.Vkernel.Machine.index in
    with_oracle_cache ~readonly:cache_readonly cache_file @@ fun cache ->
    let spec =
      match suite with
      | "manual" -> Baseline.Syzkaller_specs.spec_of_entry entry
      | "syzdescribe" -> (Baseline.Syzdescribe.run entry).sd_spec
      | _ ->
          let oracle = Oracle.create ~profile ~knowledge:kernel () in
          let client = client_of ?faults ?query_budget ?cache oracle in
          (Kernelgpt.Pipeline.run ~client ~oracle ~kernel entry).o_spec
    in
    match spec with
    | None ->
        Printf.eprintf "no %s specification available for %s\n" suite name;
        `Ok ()
    | Some spec -> (
        let supervisor = Option.value exec_faults ~default:Fuzzer.Supervisor.default in
        if (resume || resume_or_fresh) && checkpoint = None then
          `Error (false, "--resume/--resume-or-fresh need --checkpoint FILE")
        else if resume && resume_or_fresh then
          `Error (false, "--resume and --resume-or-fresh are mutually exclusive")
        else
          (* Validate that a loaded checkpoint belongs to *this* run:
             same spec, seed, budgets, and fault plan. A resumed run is
             only byte-identical to an uninterrupted one when every
             input matches. *)
          let validate (s : Fuzzer.Checkpoint.snapshot) : (unit, string) result =
            let want label a b =
              if a = b then Ok ()
              else Error (Printf.sprintf "checkpoint was taken with %s %d, this run uses %d" label a b)
            in
            let ( let* ) = Result.bind in
            let* () = want "seed" s.seed seed in
            let* () = want "budget" s.budget budget in
            if s.supervisor <> supervisor then
              Error "checkpoint was taken with a different --exec-faults/supervisor configuration"
            else if s.sched <> sched then
              Error
                (Printf.sprintf "checkpoint was taken with --sched %s, this run uses --sched %s"
                   (Fuzzer.Schedule.mode_to_string s.sched)
                   (Fuzzer.Schedule.mode_to_string sched))
            else Ok ()
          in
          let fresh () =
            Fuzzer.Campaign.init ~seed ~budget ~supervisor ~engine ~sched ~machine spec
          in
          let campaign =
            if not (resume || resume_or_fresh) then Ok (fresh ())
            else
              let file = Option.get checkpoint in
              let loaded =
                match Fuzzer.Checkpoint.load file with
                | Error e -> Error e
                | Ok snap -> (
                    match validate snap with
                    | Error e -> Error (Printf.sprintf "%s: %s" file e)
                    | Ok () -> Fuzzer.Campaign.of_snapshot ~engine ~machine spec snap)
              in
              match loaded with
              | Ok t ->
                  Printf.eprintf "resumed from %s at %d/%d executions\n%!" file
                    (Fuzzer.Campaign.executions t) budget;
                  Ok t
              | Error e when resume_or_fresh ->
                  Printf.eprintf "cannot resume (%s); starting fresh\n%!" e;
                  Obs.Metrics.incr "fuzz.checkpoint_load_errors";
                  Ok (fresh ())
              | Error e -> Error e
          in
          match campaign with
          | Error e -> `Error (false, e)
          | Ok t -> (
              let t0 = Unix.gettimeofday () in
              let write_checkpoint c =
                match checkpoint with
                | Some file -> Fuzzer.Checkpoint.save file (Fuzzer.Campaign.snapshot c)
                | None -> ()
              in
              let checkpoint_every =
                match checkpoint_every with
                | Some n -> n
                | None -> if checkpoint = None then 0 else max 1 (budget / 8)
              in
              match
                Fuzzer.Campaign.drive ~checkpoint_every ~on_checkpoint:write_checkpoint
                  ?stop_after t
              with
              | `Stopped ->
                  (* graceful kill: state is on disk, nothing on stdout —
                     the resumed run owns the report *)
                  Printf.eprintf "stopped at %d/%d executions; checkpoint written to %s\n"
                    (Fuzzer.Campaign.executions t) budget
                    (Option.value checkpoint ~default:"(nowhere: no --checkpoint)");
                  `Ok ()
              | `Completed ->
                  write_checkpoint t;
                  let res = Fuzzer.Campaign.result t in
                  Printf.printf "%d executions in %.2fs; coverage %d (%d in %s); corpus %d\n"
                    res.executions
                    (Unix.gettimeofday () -. t0)
                    (Fuzzer.Campaign.total_coverage res)
                    (Fuzzer.Campaign.module_coverage machine res entry.name)
                    entry.name res.corpus_size;
                  if exec_faults <> None then begin
                    let s = Fuzzer.Campaign.supervisor_stats t in
                    Printf.printf
                      "supervisor: %d instances, %d reboots, %d lost executions (%d timeouts)\n"
                      s.Fuzzer.Supervisor.s_instances s.s_reboots s.s_lost s.s_timeouts
                  end;
                  List.iter
                    (fun title ->
                      Printf.printf "CRASH: %s\n" title;
                      if repro then begin
                        let prog = Hashtbl.find res.crashes title in
                        let small =
                          Fuzzer.Repro.minimize ~step_budget:res.step_budget ~machine ~title
                            prog
                        in
                        print_string (Fuzzer.Repro.program_str small);
                        print_newline ()
                      end)
                    (Fuzzer.Campaign.crash_titles res);
                  `Ok ()))
  in
  let suite =
    Arg.(
      value
      & opt (enum [ ("kernelgpt", "kernelgpt"); ("manual", "manual"); ("syzdescribe", "syzdescribe") ]) "kernelgpt"
      & info [ "suite" ] ~doc:"Which specification to fuzz with.")
  in
  let budget = Arg.(value & opt int 10_000 & info [ "budget" ] ~doc:"Program executions.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let repro =
    Arg.(value & flag & info [ "repro" ] ~doc:"Print a minimized reproducer per crash.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write the complete campaign state (RNG, counters, coverage, corpus, crash \
             table, supervisor health) to $(docv) every $(b,--checkpoint-every) \
             executions, atomically, with a checksum. A killed run resumed with \
             $(b,--resume) finishes byte-identical to an uninterrupted one.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint every $(docv) executions (default: budget/8).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue the campaign recorded in $(b,--checkpoint) FILE; fails with a \
             descriptive error when the file is missing, truncated, corrupted, from \
             another checkpoint version, or from a run with different parameters.")
  in
  let resume_or_fresh =
    Arg.(
      value & flag
      & info [ "resume-or-fresh" ]
          ~doc:"Like $(b,--resume), but fall back to a fresh campaign (with a warning on \
                stderr) when the checkpoint cannot be loaded.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Gracefully stop after $(docv) total executions, writing a final checkpoint — \
             the deterministic stand-in for killing the process at a checkpoint boundary.")
  in
  let interpreted =
    Arg.(
      value & flag
      & info [ "interpreted" ]
          ~doc:
            "Run the campaign on the legacy AST-walking engine instead of the compiled \
             plan/jump-table one. Output is byte-identical either way; the flag exists \
             so CI can diff the two engines.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a module with a specification suite")
    Term.(
      ret
        (const run $ obs_term $ module_arg $ suite $ budget $ seed $ model_arg $ repro
       $ faults_arg $ query_budget_arg $ oracle_cache_arg $ oracle_cache_readonly_arg
       $ exec_faults_arg $ pool_faults_arg $ checkpoint $ checkpoint_every $ resume
       $ resume_or_fresh $ stop_after $ interpreted $ sched_arg))

let bugs_cmd =
  let run () budget seeds jobs faults query_budget cache_file cache_readonly exec_faults
      pool_faults =
    let jobs = resolve_jobs jobs in
    Kernelgpt.Pool.reset_stats ();
    Kernelgpt.Pool.set_faults pool_faults;
    Report.Exp_resilience.reset_pool_notes ();
    Printf.printf "Hunting Table 4 bugs (budget=%d, seeds=%d, jobs=%d)...\n%!" budget seeds jobs;
    with_oracle_cache ~readonly:cache_readonly cache_file @@ fun cache ->
    let ctx = Report.Suites.build ~jobs ?faults ?query_budget ?cache () in
    if faults <> None || query_budget <> None then
      Report.Exp_resilience.print (Report.Exp_resilience.collect ctx);
    let t4 = Report.Exp_bugs.table4 ~budget ~seeds ~jobs ?supervisor:exec_faults ctx in
    Report.Exp_bugs.print_table4 t4;
    if exec_faults <> None then
      Report.Exp_resilience.print_exec t4.Report.Exp_bugs.t4_exec;
    let pt = Report.Exp_resilience.pool_totals () in
    if pool_faults <> None || pt.Report.Exp_resilience.p_quarantined > 0 then
      Report.Exp_resilience.print_pool ~degraded_modules:ctx.Report.Suites.degraded pt;
    if jobs > 1 then Kernelgpt.Pool.report ~per_task:(Obs.metrics_on ()) stderr;
    `Ok ()
  in
  let budget = Arg.(value & opt int 30_000 & info [ "budget" ] ~doc:"Executions per module.") in
  let seeds = Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Campaign seeds per module.") in
  Cmd.v (Cmd.info "bugs" ~doc:"Hunt the Table 4 bugs")
    Term.(
      ret
        (const run $ obs_term $ budget $ seeds $ jobs_arg $ faults_arg $ query_budget_arg
       $ oracle_cache_arg $ oracle_cache_readonly_arg $ exec_faults_arg $ pool_faults_arg))

let report_cmd =
  let run () exp full jobs faults query_budget cache_file cache_readonly exec_faults
      pool_faults sched =
    match Report.Runner.which_of_string exp with
    | None ->
        `Error
          ( false,
            "unknown experiment (all, table1, fig7, table2, table3, table4, table5, table6, \
             ablation-iter, ablation-llm, ablation-sched, correctness)" )
    | Some which ->
        let scale = if full then Report.Runner.Full else Report.Runner.Quick in
        with_oracle_cache ~readonly:cache_readonly cache_file @@ fun cache ->
        Report.Runner.run ~scale ~which ~jobs:(resolve_jobs jobs) ?faults ?query_budget
          ?exec_faults ?pool_faults ?oracle_cache:cache ~sched ();
        `Ok ()
  in
  let exp =
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc:"Which artifact.")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Full budgets (EXPERIMENTS.md scale).") in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate the paper's tables and figures")
    Term.(
      ret
        (const run $ obs_term $ exp $ full $ jobs_arg $ faults_arg $ query_budget_arg
       $ oracle_cache_arg $ oracle_cache_readonly_arg $ exec_faults_arg $ pool_faults_arg
       $ sched_arg))

let trace_cmd =
  let run file expected =
    match Obs.validate_trace_file file with
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
    | Ok stats ->
        Printf.printf "%s: %d records\n" file stats.Obs.ts_records;
        List.iter (fun (k, n) -> Printf.printf "  %-18s %d\n" k n) stats.ts_kinds;
        let missing =
          List.filter (fun k -> not (List.mem_assoc k stats.ts_kinds)) expected
        in
        if missing = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "missing expected span kind(s): %s"
                (String.concat ", " missing) )
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace JSONL file.")
  in
  let expected =
    Arg.(
      value & opt_all string []
      & info [ "expect" ] ~docv:"KIND"
          ~doc:"Fail unless a span of $(docv) is present (repeatable).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Validate a --trace JSONL file and summarize its span kinds")
    Term.(ret (const run $ file $ expected))

let () =
  let doc = "KernelGPT reproduction: LLM-guided syscall-specification synthesis for kernel fuzzing" in
  let info = Cmd.info "kernelgpt_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; generate_cmd; baseline_cmd; fuzz_cmd; bugs_cmd; report_cmd; trace_cmd ]))
