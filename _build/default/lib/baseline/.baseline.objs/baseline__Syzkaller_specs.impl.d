lib/baseline/syzkaller_specs.ml: Corpus List Printf Syzlang
