lib/baseline/syzdescribe.ml: Corpus Csrc Hashtbl Kernelgpt List Option Printf String Syzlang
