(** The hand-written Syzkaller specifications of the corpus.

    Each registry entry may carry an [existing_spec] — the syzlang text a
    human expert wrote for that module (complete for well-maintained
    drivers like ptmx, partial or absent elsewhere). This module parses
    them and assembles the "Syzkaller" suites the evaluation compares
    against. *)

let spec_of_entry (e : Corpus.Types.entry) : Syzlang.Ast.spec option =
  match e.existing_spec with
  | None -> None
  | Some text -> (
      try Some (Syzlang.Parser.parse_spec ~name:e.name text)
      with Syzlang.Parser.Error (msg, line) ->
        invalid_arg
          (Printf.sprintf "manual spec for %s: parse error at line %d: %s" e.name line msg))

(** Number of syscalls the manual spec describes for [e] (0 if none). *)
let described_syscalls (e : Corpus.Types.entry) : int =
  match spec_of_entry e with
  | Some spec -> Syzlang.Ast.count_syscalls spec
  | None -> 0

(** Ground-truth syscall surface of a module: every plain syscall plus
    one per ioctl command / socket option (the generic [ioctl] /
    [setsockopt] entries expand into the per-command counts). *)
let total_syscalls (e : Corpus.Types.entry) : int =
  let plain =
    List.filter
      (fun s -> not (List.mem s [ "ioctl"; "setsockopt"; "getsockopt" ]))
      e.gt.gt_syscalls
  in
  List.length plain + List.length e.gt.gt_ioctls + List.length e.gt.gt_setsockopts

(** Fraction of the module's syscalls missing from the manual spec. *)
let missing_fraction (e : Corpus.Types.entry) : float =
  let total = max 1 (total_syscalls e) in
  let described = min total (described_syscalls e) in
  float_of_int (total - described) /. float_of_int total

(** A handler is "incomplete" when at least one syscall lacks a
    description (Table 1's second column). *)
let is_incomplete (e : Corpus.Types.entry) : bool = missing_fraction e > 0.0

(** The combined hand-written suite over the given entries. *)
let suite ?(name = "syzkaller") (entries : Corpus.Types.entry list) : Syzlang.Ast.spec =
  Syzlang.Merge.merge_all ~name (List.filter_map spec_of_entry entries)
