(** SyzDescribe-style static specification generation (the paper's main
    baseline, Hao et al., S&P 2023).

    Implements the documented rule set — and, deliberately, its
    documented blind spots (Figure 2c and §5.2.1):

    - device names come from the [miscdevice .name] field, or a literal
      [device_create] string found by tracing module init; the rare
      [.nodename] field is ignored and format strings are not expanded
      (the "Err" rows of Table 5);
    - commands come from a [switch] on the raw command parameter, with at
      most one level of delegation; [_IOC_NR] rewrites are not modeled,
      so the rewritten values are emitted as the command constants;
    - argument structs are recovered positionally ([field_0 ...]) with no
      [len]/[string] semantics; nested structs flatten to byte arrays;
    - [inout] commands are described twice (an in- and an out-variant),
      the duplication the paper notes inflates its syscall counts;
    - sockets are not supported at all. *)

type outcome = { sd_spec : Syzlang.Ast.spec option }

let unsupported = { sd_spec = None }

(* ------------------------------------------------------------------ *)
(* Device name rules                                                   *)
(* ------------------------------------------------------------------ *)

let device_name_of (idx : Csrc.Index.t) (reg_symbol : string) : string option =
  match Csrc.Index.find_global idx reg_symbol with
  | Some { global_init = Some (Csrc.Ast.Init_designated fields); _ } -> (
      (* the .name rule — .nodename is not in the rule set *)
      match List.assoc_opt "name" fields with
      | Some (Csrc.Ast.Init_expr e) ->
          Option.map (fun n -> "/dev/" ^ n) (Csrc.Index.eval_string idx e)
      | _ -> None)
  | _ -> (
      match Csrc.Index.find_function idx reg_symbol with
      | Some fd ->
          let found = ref None in
          Csrc.Ast.fold_block
            (fun () s ->
              List.iter
                (fun e ->
                  Csrc.Ast.fold_expr
                    (fun () e ->
                      match e with
                      | Csrc.Ast.Call (("device_create" | "snd_register_device"), args)
                        when !found = None ->
                          List.iter
                            (function
                              | Csrc.Ast.Const_str s when not (String.contains s '%') ->
                                  if !found = None then found := Some ("/dev/" ^ s)
                              | _ -> ())
                            args
                      | _ -> ())
                    () e)
                (Csrc.Ast.exprs_of_stmt s))
            () fd.fun_body;
          !found
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Command and type rules                                              *)
(* ------------------------------------------------------------------ *)

type raw_cmd = {
  rc_label : Csrc.Ast.expr;
  rc_body : Csrc.Ast.block;
}

(** Find the dispatch switch: on the handler's own command parameter, or
    (one delegation level down) on the callee's command parameter. The
    [_IOC_NR] rewrite breaks the pattern: the scrutinee is then a local,
    which this rule set treats the same as a direct parameter — yielding
    the rewritten (wrong) values, exactly like Figure 2c. *)
let rec find_dispatch (idx : Csrc.Index.t) (fn : string) ~(depth : int) :
    (Csrc.Ast.func_def * raw_cmd list) option =
  if depth > 2 then None
  else
    match Csrc.Index.find_function idx fn with
    | None | Some { fun_body = []; _ } -> None
    | Some fd -> (
        let cases = ref [] in
        List.iter
          (fun (s : Csrc.Ast.stmt) ->
            match s.Csrc.Ast.node with
            | Csrc.Ast.Switch (_, case_list) ->
                List.iter
                  (fun (c : Csrc.Ast.switch_case) ->
                    List.iter
                      (function
                        | Csrc.Ast.Case label ->
                            cases := { rc_label = label; rc_body = c.case_body } :: !cases
                        | Csrc.Ast.Default -> ())
                      c.labels)
                  case_list
            | _ -> ())
          (Csrc.Ast.stmts_of_body fd.fun_body);
        match !cases with
        | _ :: _ -> Some (fd, List.rev !cases)
        | [] ->
            (* delegation: try every callee down to the depth limit *)
            List.find_map
              (fun c ->
                if Corpus.Kapi.is_builtin c then None
                else find_dispatch idx c ~depth:(depth + 1))
              (Csrc.Ast.called_functions fd.fun_body))

(** Positional, semantics-free struct translation. *)
let flat_type (idx : Csrc.Index.t) (name : string) : Syzlang.Ast.comp_def option =
  match Csrc.Index.find_composite idx name with
  | None -> None
  | Some cd ->
      let open Syzlang.Ast in
      let field i (f : Csrc.Ast.field) : field =
        let ftyp =
          match f.field_type with
          | Csrc.Ast.Int { width; _ } -> (
              match width with
              | 8 -> Int (I8, None)
              | 16 -> Int (I16, None)
              | 32 -> Int (I32, None)
              | _ -> Int (I64, None))
          | Csrc.Ast.Array (_, len) -> Array (Int (I8, None), len)
          | Csrc.Ast.Struct_ref n | Csrc.Ast.Union_ref n ->
              Array (Int (I8, None), Some (Csrc.Index.sizeof idx (Csrc.Ast.Struct_ref n)))
          | _ -> Int (I64, None)
        in
        { fname = Printf.sprintf "field_%d" i; ftyp }
      in
      Some { comp_name = name; comp_kind = Struct; comp_fields = List.mapi field cd.fields }

(** Struct the case body copies from user space (shallow: the case body
    itself only). *)
let case_struct (fd : Csrc.Ast.func_def) (body : Csrc.Ast.block) : string option =
  let locals =
    List.filter_map
      (fun (s : Csrc.Ast.stmt) ->
        match s.Csrc.Ast.node with
        | Csrc.Ast.Decl_stmt (Csrc.Ast.Struct_ref sn, v, _) -> Some (v, sn)
        | _ -> None)
      (Csrc.Ast.stmts_of_body fd.fun_body)
  in
  let found = ref None in
  let rec lv = function
    | Csrc.Ast.Addr_of (Csrc.Ast.Ident v) -> Some v
    | Csrc.Ast.Cast (_, e) -> lv e
    | _ -> None
  in
  Csrc.Ast.fold_block
    (fun () s ->
      List.iter
        (fun e ->
          Csrc.Ast.fold_expr
            (fun () e ->
              match e with
              | Csrc.Ast.Call ("copy_from_user", dst :: _) when !found = None -> (
                  match Option.bind (lv dst) (fun v -> List.assoc_opt v locals) with
                  | Some sn -> found := Some sn
                  | None -> ())
              | _ -> ())
            () e)
        (Csrc.Ast.exprs_of_stmt s))
    () body;
  !found

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let run (entry : Corpus.Types.entry) : outcome =
  if entry.kind = Corpus.Types.Socket then unsupported (* "N/A" in the tables *)
  else begin
    let idx = Kernelgpt.Extractor.module_index entry.source in
    let infos = Kernelgpt.Extractor.extract idx in
    match Kernelgpt.Extractor.main_handler infos with
    | None -> unsupported
    | Some hi -> (
        let path =
          Option.bind hi.hi_reg_symbol (fun reg -> device_name_of idx reg)
        in
        match path with
        | None -> unsupported
        | Some path -> (
            let ioctl_fn =
              match List.assoc_opt "unlocked_ioctl" hi.hi_handlers with
              | Some fn -> Some fn
              | None -> List.assoc_opt "ioctl" hi.hi_handlers
            in
            match Option.bind ioctl_fn (fun fn -> find_dispatch idx fn ~depth:0) with
            | None -> unsupported
            | Some (fd, cases) ->
                let open Syzlang.Ast in
                let res = "fd_" ^ entry.name in
                let tag = string_of_int (Hashtbl.hash entry.name mod 90000 + 10000) in
                let types = ref [] in
                let add_type name =
                  if not (List.exists (fun c -> c.comp_name = name) !types) then
                    match flat_type idx name with
                    | Some cd -> types := cd :: !types
                    | None -> ()
                in
                let calls =
                  List.concat
                    (List.mapi
                       (fun i (c : raw_cmd) ->
                         (* the raw label value/name is used as the command:
                            wrong under the _IOC_NR rewrite *)
                         let cmd_const =
                           match c.rc_label with
                           | Csrc.Ast.Ident n -> const_of_name n
                           | e -> (
                               match Csrc.Index.eval_opt idx e with
                               | Some v -> const_of_value v
                               | None -> const_of_value 0L)
                         in
                         let variant suffix =
                           Printf.sprintf "%s_%d%s" tag i suffix
                         in
                         let mk suffix arg =
                           {
                             call_name = "ioctl";
                             variant = Some (variant suffix);
                             args =
                               [
                                 { fname = "fd"; ftyp = Resource_ref res };
                                 { fname = "cmd"; ftyp = Const (cmd_const, Iptr) };
                                 arg;
                               ];
                             ret = None;
                           }
                         in
                         match case_struct fd c.rc_body with
                         | Some sn ->
                             add_type sn;
                             (* the duplicated in/out description pattern *)
                             [
                               mk "" { fname = "arg"; ftyp = Ptr (In, Struct_ref sn) };
                               mk "_out" { fname = "arg"; ftyp = Ptr (Out, Struct_ref sn) };
                             ]
                         | None ->
                             [ mk "" { fname = "arg"; ftyp = Ptr (In, Array (Int (I8, None), None)) } ])
                       cases)
                in
                let openat =
                  {
                    call_name = "openat";
                    variant = Some tag;
                    args =
                      [
                        { fname = "fd"; ftyp = Const (const_of_name "AT_FDCWD", Iptr) };
                        { fname = "file"; ftyp = Ptr (In, String (Some path)) };
                        { fname = "flags"; ftyp = Const (const_of_name "O_RDWR", Iptr) };
                        { fname = "mode"; ftyp = Const (const_of_value 0L, Iptr) };
                      ];
                    ret = Some res;
                  }
                in
                {
                  sd_spec =
                    Some
                      {
                        spec_name = entry.name;
                        resources = [ { res_name = res; res_underlying = "fd" } ];
                        syscalls = openat :: calls;
                        types = List.rev !types;
                        flag_sets = [];
                      };
                }))
  end
