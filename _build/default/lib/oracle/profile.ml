(** Capability profiles of the analysis LLM.

    The paper's ablation (§5.2.3) compares GPT-4, GPT-4o and GPT-3.5. The
    oracle reproduces the *mechanisms* behind their differences:

    - a bounded context window — the reason iterative multi-stage
      prompting beats all-in-one prompting on big drivers (kvm, loop);
    - capability gaps — weaker models miss the rare patterns
      ([.nodename] registration, [_IOC_NR] rewrites, delegated dispatch,
      [len]-field relations);
    - hallucination — a seeded rate of localized mistakes (wrong constant
      or type names) that validation catches and repair fixes. *)

type t = {
  name : string;
  context_tokens : int;  (** prompt budget; beyond it snippets are dropped *)
  uses_nodename : bool;  (** honours the rare [.nodename] registration field *)
  resolves_ioc_nr : bool;  (** maps rewritten [_IOC_NR] values back to macros *)
  follows_delegation : bool;  (** chases dispatched helper functions *)
  infers_len_fields : bool;  (** recovers [count len[array]] relations *)
  infers_strings : bool;  (** maps name-like char arrays to [string] *)
  finds_fd_deps : bool;  (** spots [anon_inode_getfd]-style resource creation *)
  reads_format_strings : bool;  (** expands ["controlC%i"]-style device names *)
  error_rate_pct : int;  (** chance of a localized wrong name per handler *)
  repair_skill_pct : int;  (** chance a validation error gets repaired *)
}

let gpt4 =
  {
    name = "gpt-4";
    context_tokens = 6000;
    uses_nodename = true;
    resolves_ioc_nr = true;
    follows_delegation = true;
    infers_len_fields = true;
    infers_strings = true;
    finds_fd_deps = true;
    reads_format_strings = true;
    error_rate_pct = 22;
    repair_skill_pct = 88;
  }

let gpt4o =
  {
    name = "gpt-4o";
    context_tokens = 6000;
    uses_nodename = true;
    resolves_ioc_nr = true;
    follows_delegation = true;
    infers_len_fields = true;
    infers_strings = true;
    finds_fd_deps = true;
    reads_format_strings = true;
    error_rate_pct = 25;
    repair_skill_pct = 85;
  }

let gpt35 =
  {
    name = "gpt-3.5";
    context_tokens = 2500;
    uses_nodename = false;
    resolves_ioc_nr = false;
    follows_delegation = false;
    infers_len_fields = false;
    infers_strings = true;
    finds_fd_deps = false;
    reads_format_strings = false;
    error_rate_pct = 45;
    repair_skill_pct = 55;
  }

let by_name = function
  | "gpt-4" | "gpt4" -> Some gpt4
  | "gpt-4o" | "gpt4o" -> Some gpt4o
  | "gpt-3.5" | "gpt35" | "gpt-3.5-turbo" -> Some gpt35
  | _ -> None

(** Deterministic per-(profile, subject) coin flip: stable across runs so
    experiments are reproducible, uncorrelated across subjects. *)
let coin (p : t) ~(subject : string) ~(salt : string) ~(pct : int) : bool =
  let h = Hashtbl.hash (p.name, subject, salt) in
  h mod 100 < pct
