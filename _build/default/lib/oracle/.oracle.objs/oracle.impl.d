lib/oracle/oracle.ml: Analysis Buffer Corpus Csrc Hashtbl Int64 List Option Profile Prompt String Syzlang
