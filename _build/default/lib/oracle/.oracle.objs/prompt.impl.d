lib/oracle/prompt.ml: Buffer List Printf String Syzlang
