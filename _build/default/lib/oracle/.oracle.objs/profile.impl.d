lib/oracle/profile.ml: Hashtbl
