lib/oracle/oracle.mli: Csrc Profile Prompt
