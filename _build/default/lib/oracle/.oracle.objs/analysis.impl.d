lib/oracle/analysis.ml: Corpus Csrc Hashtbl Int64 List Option Printf Prompt String Syzlang
