(** Crash reports, titled the way syzbot titles them.

    Crash deduplication in the fuzzer keys on {!title}, matching the
    paper's "unique crashes" metric. *)

type kind =
  | Kasan_uaf  (** use-after-free read *)
  | Double_free
  | Gpf  (** null/garbage pointer dereference *)
  | Kmalloc_bug  (** oversized allocation *)
  | Zero_size_vmalloc
  | Warning
  | Kernel_bug  (** BUG_ON *)
  | Odebug
  | Task_hung
  | Deadlock
  | List_corruption
  | Ubsan_oob
  | Divide_error
  | Memory_leak

type t = { kind : kind; fn : string (* function the crash fired in *) }

let title { kind; fn } =
  match kind with
  | Kasan_uaf -> Printf.sprintf "KASAN: slab-use-after-free Read in %s" fn
  | Double_free -> Printf.sprintf "KASAN: double-free in %s" fn
  | Gpf -> Printf.sprintf "general protection fault in %s" fn
  | Kmalloc_bug -> Printf.sprintf "kmalloc bug in %s" fn
  | Zero_size_vmalloc -> Printf.sprintf "zero-size vmalloc in %s" fn
  | Warning -> Printf.sprintf "WARNING in %s" fn
  | Kernel_bug -> Printf.sprintf "kernel BUG in %s" fn
  | Odebug -> Printf.sprintf "ODEBUG bug in %s" fn
  | Task_hung -> Printf.sprintf "INFO: task hung in %s" fn
  | Deadlock -> Printf.sprintf "possible deadlock in %s" fn
  | List_corruption -> Printf.sprintf "BUG: corrupted list in %s" fn
  | Ubsan_oob -> Printf.sprintf "UBSAN: array-index-out-of-bounds in %s" fn
  | Divide_error -> Printf.sprintf "divide error in %s" fn
  | Memory_leak -> Printf.sprintf "memory leak in %s" fn

exception Crash of t

let raise_crash kind fn = raise (Crash { kind; fn })
