lib/vkernel/value.ml: Hashtbl Int64 List Printf String
