lib/vkernel/machine.ml: Array Corpus Crash Csrc Hashtbl Int64 Interp List Printf Value
