lib/vkernel/crash.ml: Printf
