lib/vkernel/machine.mli: Corpus Csrc Hashtbl Value
