lib/vkernel/interp.ml: Array Char Crash Csrc Hashtbl Int64 List Printf String Value
