(** Runtime values of the virtual kernel.

    Two value worlds meet here:
    - {!uval} is *userspace data*: the argument trees the fuzzer
      generates from syzlang types and passes through the syscall
      boundary (the equivalent of the bytes Syzkaller writes into the
      target process' memory);
    - {!value} is *kernel data*: what the interpreter computes with.

    Kernel heap objects track allocation site and liveness so that
    use-after-free, double-free and leak detection work like KASAN and
    kmemleak do in the paper's fuzzing campaigns. *)

(** Userspace argument data. Struct fields are keyed by the field names of
    the syzlang type the fuzzer generated from; [copy_from_user]
    materializes them into kernel objects by name. A spec with wrong or
    meaningless field names (e.g. static-analysis output with [field_0]
    style names) therefore produces kernel-side garbage — the simulator's
    stand-in for a wrong byte layout. *)
type uval =
  | U_int of int64
  | U_str of string
  | U_arr of uval list
  | U_struct of string * (string * uval) list
  | U_null

type obj = {
  oid : int;
  alloc_fn : string;  (** function that allocated the object *)
  mutable freed : bool;
  mutable data : slots;
}

and slots =
  | Fields of (string, value) Hashtbl.t  (** struct-like object (lazy fields) *)
  | Cells of value array  (** fixed-size array object *)
  | Opaque  (** raw allocation never accessed structurally *)

and value =
  | Int of int64
  | Str of string
  | Ptr of obj
  | Fn of string  (** function pointer *)
  | Uptr of uval  (** userspace pointer carrying the user data *)
  | Unit

let is_zero = function
  | Int 0L -> true
  | Unit -> true
  | Uptr U_null -> true (* a NULL user pointer is falsy, like in C *)
  | Str "" -> false
  | _ -> false

let truthy v = not (is_zero v)

let to_int = function
  | Int v -> v
  | Str _ | Ptr _ | Fn _ | Uptr _ -> 1L
  | Unit -> 0L

(** Render a value for traces and debugging. *)
let rec to_string = function
  | Int v -> Int64.to_string v
  | Str s -> Printf.sprintf "%S" s
  | Ptr o -> Printf.sprintf "<obj#%d%s>" o.oid (if o.freed then " freed" else "")
  | Fn f -> Printf.sprintf "<fn %s>" f
  | Uptr u -> Printf.sprintf "<user %s>" (uval_to_string u)
  | Unit -> "()"

and uval_to_string = function
  | U_int v -> Int64.to_string v
  | U_str s -> Printf.sprintf "%S" s
  | U_arr xs ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map uval_to_string xs))
  | U_struct (name, fields) ->
      Printf.sprintf "%s{%s}" name
        (String.concat "; "
           (List.map (fun (f, v) -> f ^ "=" ^ uval_to_string v) fields))
  | U_null -> "NULL"
