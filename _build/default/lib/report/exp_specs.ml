(** E1-E3: specification-generation statistics — the paper's Table 1,
    Figure 7 and Table 2. *)

type table1_row = {
  t1_total : int;
  t1_incomplete : int;
  t1_sd_valid : int option;  (** None = N/A (sockets) *)
  t1_kgpt_valid : int;
  t1_kgpt_fixed : int;  (** of the valid ones, how many needed repair *)
}

type table1 = { drivers : table1_row; sockets : table1_row }

let table1 (ctx : Suites.ctx) : table1 =
  let row kind =
    let entries = List.filter (fun (e : Corpus.Types.entry) -> e.kind = kind) ctx.entries in
    let incomplete = List.filter Baseline.Syzkaller_specs.is_incomplete entries in
    let kgpt_outcomes =
      List.filter_map (fun (e : Corpus.Types.entry) -> Suites.kgpt_outcome ctx e.name) incomplete
    in
    let valid = List.filter (fun o -> o.Kernelgpt.Pipeline.o_valid) kgpt_outcomes in
    let fixed = List.filter (fun o -> o.Kernelgpt.Pipeline.o_repaired) valid in
    (* a SyzDescribe spec counts as valid only when the device path it
       inferred actually exists in the booted kernel — the manual
       validation the paper's evaluation applies *)
    let sd_path_ok (spec : Syzlang.Ast.spec) =
      List.exists
        (fun (c : Syzlang.Ast.syscall) ->
          c.call_name = "openat"
          && List.exists
               (fun (f : Syzlang.Ast.field) ->
                 match f.ftyp with
                 | Syzlang.Ast.Ptr (_, Syzlang.Ast.String (Some p)) ->
                     List.mem_assoc p ctx.machine.Vkernel.Machine.devices
                 | _ -> false)
               c.args)
        spec.syscalls
    in
    let sd_valid =
      if kind = Corpus.Types.Socket then None
      else
        Some
          (List.length
             (List.filter
                (fun (e : Corpus.Types.entry) ->
                  match Suites.sd_spec ctx e.name with
                  | Some spec -> sd_path_ok spec
                  | None -> false)
                incomplete))
    in
    {
      t1_total = List.length entries;
      t1_incomplete = List.length incomplete;
      t1_sd_valid = sd_valid;
      t1_kgpt_valid = List.length valid;
      t1_kgpt_fixed = List.length fixed;
    }
  in
  { drivers = row Corpus.Types.Driver; sockets = row Corpus.Types.Socket }

let print_table1 (t : table1) =
  Table.section "Table 1: Specifications for driver/socket handlers";
  let row name (r : table1_row) =
    [
      name;
      string_of_int r.t1_total;
      string_of_int r.t1_incomplete;
      (match r.t1_sd_valid with Some v -> string_of_int v | None -> "N/A");
      Printf.sprintf "%d (%d)" r.t1_kgpt_valid r.t1_kgpt_fixed;
    ]
  in
  let total =
    let a = t.drivers and b = t.sockets in
    [
      "Total";
      string_of_int (a.t1_total + b.t1_total);
      string_of_int (a.t1_incomplete + b.t1_incomplete);
      string_of_int (Option.value a.t1_sd_valid ~default:0);
      Printf.sprintf "%d (%d)" (a.t1_kgpt_valid + b.t1_kgpt_valid)
        (a.t1_kgpt_fixed + b.t1_kgpt_fixed);
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "# Total"; "# Incomplete"; "SyzDescribe # Valid"; "KernelGPT # Valid (Fixed)" ]
    [ row "Driver" t.drivers; row "Socket" t.sockets; total ]

(* ------------------------------------------------------------------ *)
(* Figure 7: missing-specification distribution                        *)
(* ------------------------------------------------------------------ *)

type histogram = { buckets : int array (* 10 deciles *); none_missing : int }

let fig7 (ctx : Suites.ctx) (kind : Corpus.Types.kind) : histogram =
  let buckets = Array.make 10 0 in
  let none_missing = ref 0 in
  List.iter
    (fun (e : Corpus.Types.entry) ->
      if e.kind = kind then begin
        let f = Baseline.Syzkaller_specs.missing_fraction e in
        if f <= 0.0 then incr none_missing
        else
          let b = min 9 (int_of_float (f *. 10.0)) in
          buckets.(b) <- buckets.(b) + 1
      end)
    ctx.entries;
  { buckets; none_missing = !none_missing }

let print_fig7 (ctx : Suites.ctx) =
  Table.section "Figure 7: Missing specification distribution (handlers per decile)";
  let render kind name =
    let h = fig7 ctx kind in
    let bar n = String.make (min 60 n) '#' in
    Printf.printf "%s (complete: %d handlers)\n" name h.none_missing;
    Array.iteri
      (fun i n ->
        Printf.printf "  %3d-%3d%% missing | %-4d %s\n" (i * 10) ((i + 1) * 10) n (bar n))
      h.buckets
  in
  render Corpus.Types.Driver "Drivers";
  render Corpus.Types.Socket "Sockets"

(* ------------------------------------------------------------------ *)
(* Table 2: newly generated syscall descriptions                       *)
(* ------------------------------------------------------------------ *)

type table2_row = { t2_syscalls : int; t2_types : int }

type table2 = {
  sd_driver : table2_row;
  kg_driver : table2_row;
  kg_socket : table2_row;
}

(** Syscalls/types in [spec] not already described by the module's manual
    spec. *)
let new_counts (e : Corpus.Types.entry) (spec : Syzlang.Ast.spec) : table2_row =
  let base =
    match Baseline.Syzkaller_specs.spec_of_entry e with
    | Some s -> s
    | None -> Syzlang.Ast.empty_spec e.name
  in
  {
    t2_syscalls = List.length (Syzlang.Merge.new_syscalls ~base spec);
    t2_types = List.length (Syzlang.Merge.new_types ~base spec);
  }

let table2 (ctx : Suites.ctx) : table2 =
  let sum rows =
    List.fold_left
      (fun acc r -> { t2_syscalls = acc.t2_syscalls + r.t2_syscalls; t2_types = acc.t2_types + r.t2_types })
      { t2_syscalls = 0; t2_types = 0 }
      rows
  in
  let incomplete kind =
    List.filter
      (fun (e : Corpus.Types.entry) ->
        e.kind = kind && Baseline.Syzkaller_specs.is_incomplete e)
      ctx.entries
  in
  let kgpt kind =
    sum
      (List.filter_map
         (fun (e : Corpus.Types.entry) ->
           Option.map (new_counts e) (Suites.kgpt_spec ctx e.name))
         (incomplete kind))
  in
  let sd =
    sum
      (List.filter_map
         (fun (e : Corpus.Types.entry) ->
           Option.map (new_counts e) (Suites.sd_spec ctx e.name))
         (incomplete Corpus.Types.Driver))
  in
  { sd_driver = sd; kg_driver = kgpt Corpus.Types.Driver; kg_socket = kgpt Corpus.Types.Socket }

let print_table2 (t : table2) =
  Table.section "Table 2: Newly generated syscall descriptions";
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "SyzDescribe #Syscalls"; "#Types"; "KernelGPT #Syscalls"; "#Types" ]
    [
      [
        "Driver";
        string_of_int t.sd_driver.t2_syscalls;
        string_of_int t.sd_driver.t2_types;
        string_of_int t.kg_driver.t2_syscalls;
        string_of_int t.kg_driver.t2_types;
      ];
      [
        "Socket"; "N/A"; "N/A";
        string_of_int t.kg_socket.t2_syscalls;
        string_of_int t.kg_socket.t2_types;
      ];
      [
        "Total";
        string_of_int t.sd_driver.t2_syscalls;
        string_of_int t.sd_driver.t2_types;
        string_of_int (t.kg_driver.t2_syscalls + t.kg_socket.t2_syscalls);
        string_of_int (t.kg_driver.t2_types + t.kg_socket.t2_types);
      ];
    ]
