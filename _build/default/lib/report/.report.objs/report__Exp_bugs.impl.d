lib/report/exp_bugs.ml: Baseline Corpus Fuzzer Hashtbl List Option Printf Suites Syzlang Table Vkernel
