lib/report/exp_sockets.ml: Baseline Corpus Fuzzer Hashtbl List Printf Suites Syzlang Table Vkernel
