lib/report/exp_drivers.ml: Baseline Corpus Fuzzer Hashtbl List Option Printf Suites Syzlang Table Vkernel
