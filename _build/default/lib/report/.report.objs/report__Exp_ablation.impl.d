lib/report/exp_ablation.ml: Corpus Fuzzer Kernelgpt List Oracle Printf Profile Syzlang Table Vkernel
