lib/report/runner.ml: Exp_ablation Exp_bugs Exp_correctness Exp_drivers Exp_fuzz Exp_sockets Exp_specs List Oracle Printf Suites Unix
