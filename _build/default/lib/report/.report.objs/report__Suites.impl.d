lib/report/suites.ml: Baseline Corpus Csrc Hashtbl Kernelgpt List Option Oracle Profile Syzlang Vkernel
