lib/report/exp_fuzz.ml: Fuzzer Hashtbl List Printf Suites Table Vkernel
