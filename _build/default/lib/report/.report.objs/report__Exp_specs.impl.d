lib/report/exp_specs.ml: Array Baseline Corpus Kernelgpt List Option Printf String Suites Syzlang Table Vkernel
