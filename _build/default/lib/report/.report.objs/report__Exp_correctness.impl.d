lib/report/exp_correctness.ml: Corpus List Printf Suites Syzlang Table
