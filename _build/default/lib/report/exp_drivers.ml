(** E6: per-driver comparison — the paper's Table 5.

    Each Table 5 driver is fuzzed in isolation with each of the three
    specifications (only the syscalls of that spec enabled, as §5.2
    prescribes), [reps] seeds each; Cov is the mean coverage inside the
    driver's module. *)

type cell = { c_sys : int option; c_cov : float option; c_crash : float }

type row = {
  r_name : string;  (** paper row label *)
  r_syzkaller : cell;
  r_syzdescribe : cell;
  r_kernelgpt : cell;
}

type table5 = { driver_rows : row list }

let na = { c_sys = None; c_cov = None; c_crash = 0.0 }

let fuzz_cell ~(entry : Corpus.Types.entry) ~(reps : int) ~(budget : int)
    (spec : Syzlang.Ast.spec option) : cell =
  match spec with
  | None -> na
  | Some spec ->
      let machine = Vkernel.Machine.boot [ entry ] in
      let covs = ref [] in
      let crashes = ref [] in
      for rep = 1 to reps do
        let res = Fuzzer.Campaign.run ~seed:(rep * 104729) ~budget ~machine spec in
        covs := float_of_int (Fuzzer.Campaign.module_coverage machine res entry.name) :: !covs;
        crashes := float_of_int (Hashtbl.length res.crashes) :: !crashes
      done;
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
      {
        c_sys = Some (Syzlang.Ast.count_syscalls spec);
        c_cov = Some (mean !covs);
        c_crash = mean !crashes;
      }

let table5 ?(reps = 3) ?(budget = 4000) (ctx : Suites.ctx) : table5 =
  let rows =
    List.map
      (fun (e : Corpus.Types.entry) ->
        let manual = Baseline.Syzkaller_specs.spec_of_entry e in
        let sd = Suites.sd_spec ctx e.name in
        let kg = Suites.kgpt_spec ctx e.name in
        {
          r_name = e.display_name;
          r_syzkaller = fuzz_cell ~entry:e ~reps ~budget manual;
          r_syzdescribe = fuzz_cell ~entry:e ~reps ~budget sd;
          r_kernelgpt = fuzz_cell ~entry:e ~reps ~budget kg;
        })
      (Corpus.Registry.table5 ())
  in
  (* the two drivers dropped from Linux 6 stay as N/A rows *)
  let na_row name =
    { r_name = name; r_syzkaller = na; r_syzdescribe = na; r_kernelgpt = na }
  in
  let rows = na_row "ashmem" :: na_row "fd#" :: rows in
  { driver_rows = List.sort (fun a b -> compare a.r_name b.r_name) rows }

let cell_strings (c : cell) =
  [
    (match c.c_sys with Some n -> string_of_int n | None -> "N/A");
    (match c.c_cov with Some f -> Printf.sprintf "%.0f" f | None -> "-");
  ]

let print_table5 (t : table5) =
  Table.section "Table 5: Driver specification comparison (#Sys / Cov)";
  let rows =
    List.map
      (fun r ->
        (r.r_name :: cell_strings r.r_syzkaller)
        @ cell_strings r.r_syzdescribe @ cell_strings r.r_kernelgpt)
      t.driver_rows
  in
  let sum f =
    List.fold_left (fun acc r -> acc + Option.value (f r) ~default:0) 0 t.driver_rows
  in
  let sumc f =
    List.fold_left (fun acc r -> acc +. Option.value (f r) ~default:0.0) 0.0 t.driver_rows
  in
  let total =
    [
      "Total";
      string_of_int (sum (fun r -> r.r_syzkaller.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzkaller.c_cov));
      string_of_int (sum (fun r -> r.r_syzdescribe.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzdescribe.c_cov));
      string_of_int (sum (fun r -> r.r_kernelgpt.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_kernelgpt.c_cov));
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Syz #Sys"; "Syz Cov"; "SD #Sys"; "SD Cov"; "KGPT #Sys"; "KGPT Cov" ]
    (rows @ [ total ]);
  (* who wins where *)
  let wins =
    List.fold_left
      (fun (s, d, k) r ->
        match (r.r_syzkaller.c_cov, r.r_syzdescribe.c_cov, r.r_kernelgpt.c_cov) with
        | Some a, b, Some c ->
            let b = Option.value b ~default:0.0 in
            if c >= a && c >= b then (s, d, k + 1)
            else if a >= b && a >= c then (s + 1, d, k)
            else (s, d + 1, k)
        | _ -> (s, d, k))
      (0, 0, 0) t.driver_rows
  in
  let s, d, k = wins in
  Printf.printf "Best coverage: KernelGPT on %d drivers, Syzkaller on %d, SyzDescribe on %d\n" k s d;
  let crash_total f =
    List.fold_left (fun acc r -> acc +. (f r).c_crash) 0.0 t.driver_rows
  in
  Printf.printf "Unique crashes (avg totals): Syzkaller %.1f, SyzDescribe %.1f, KernelGPT %.1f\n"
    (crash_total (fun r -> r.r_syzkaller))
    (crash_total (fun r -> r.r_syzdescribe))
    (crash_total (fun r -> r.r_kernelgpt))
