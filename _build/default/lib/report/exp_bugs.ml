(** E5: bug detection by the new specifications — the paper's Table 4.

    Each bug-carrying module is fuzzed with its combined
    (Syzkaller + KernelGPT) specification; the same campaigns run with
    the Syzkaller-only and SyzDescribe suites to confirm the baselines
    cannot trigger the bugs (the ✗/✗ columns). *)

type bug_row = {
  br_bug : Corpus.Types.bug;
  br_found_kgpt : bool;
  br_found_syzkaller : bool;
  br_found_syzdescribe : bool;
}

type table4 = { bug_rows : bug_row list }

let fuzz_module (ctx : Suites.ctx) ~(budget : int) ~(seeds : int) (name : string)
    (spec : Syzlang.Ast.spec) : (string, unit) Hashtbl.t =
  let titles = Hashtbl.create 8 in
  match Corpus.Registry.find name with
  | None -> titles
  | Some entry ->
      ignore ctx;
      let machine = Vkernel.Machine.boot [ entry ] in
      for s = 1 to seeds do
        let res = Fuzzer.Campaign.run ~seed:(s * 1299721) ~budget ~machine spec in
        Hashtbl.iter (fun t _ -> Hashtbl.replace titles t ()) res.crashes
      done;
      titles

let table4 ?(budget = 30_000) ?(seeds = 3) (ctx : Suites.ctx) : table4 =
  let modules =
    List.sort_uniq compare (List.map (fun b -> b.Corpus.Types.bug_module) Corpus.Registry.bugs)
  in
  let found_with suite_of =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun m ->
        match suite_of m with
        | Some spec ->
            Hashtbl.iter (fun t () -> Hashtbl.replace tbl t ()) (fuzz_module ctx ~budget ~seeds m spec)
        | None -> ())
      modules;
    tbl
  in
  let kgpt_found = found_with (fun m -> Some (Suites.module_suite ctx m)) in
  let syz_found =
    found_with (fun m ->
        Option.bind (Corpus.Registry.find m) Baseline.Syzkaller_specs.spec_of_entry)
  in
  let sd_found = found_with (fun m -> Suites.sd_spec ctx m) in
  {
    bug_rows =
      List.map
        (fun (b : Corpus.Types.bug) ->
          {
            br_bug = b;
            br_found_kgpt = Hashtbl.mem kgpt_found b.bug_title;
            br_found_syzkaller = Hashtbl.mem syz_found b.bug_title;
            br_found_syzdescribe = Hashtbl.mem sd_found b.bug_title;
          })
        Corpus.Registry.bugs;
  }

let print_table4 (t : table4) =
  Table.section "Table 4: New bugs detected by KernelGPT";
  let mark b = if b then "X" else "-" in
  Table.print
    ~align:[ Table.L; Table.L; Table.L; Table.L; Table.L; Table.L; Table.L ]
    ~header:
      [ "Crash with new specs"; "New"; "Confirmed"; "Fixed"; "CVE"; "Syzkaller"; "SyzDescribe" ]
    (List.map
       (fun r ->
         let b = r.br_bug in
         [
           b.bug_title;
           mark r.br_found_kgpt;
           mark b.bug_confirmed;
           mark b.bug_fixed;
           Option.value b.bug_cve ~default:"";
           mark r.br_found_syzkaller;
           mark r.br_found_syzdescribe;
         ])
       t.bug_rows);
  let found = List.length (List.filter (fun r -> r.br_found_kgpt) t.bug_rows) in
  let base =
    List.length (List.filter (fun r -> r.br_found_syzkaller || r.br_found_syzdescribe) t.bug_rows)
  in
  Printf.printf "Total: %d/%d bugs found with KernelGPT specs; %d by baselines\n" found
    (List.length t.bug_rows) base
