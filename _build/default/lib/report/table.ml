(** Plain-text table rendering for the experiment reports. *)

type align = L | R

let render ?(align : align list = []) ~(header : string list) (rows : string list list) :
    string =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    (header :: rows);
  let align_of i = match List.nth_opt align i with Some a -> a | None -> L in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if n <= 0 then cell
    else match align_of i with L -> cell ^ String.make n ' ' | R -> String.make n ' ' ^ cell
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|" ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "|"
  in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fmt_float f = Printf.sprintf "%.1f" f

let fmt_int = string_of_int
