(** E7: per-socket comparison — the paper's Table 6 (Syzkaller vs
    KernelGPT; SyzDescribe cannot analyze sockets). *)

type cell = { c_sys : int; c_cov : float; c_crash : float }

type row = { r_name : string; r_syzkaller : cell option; r_kernelgpt : cell option }

type table6 = { socket_rows : row list }

let fuzz_cell ~(entry : Corpus.Types.entry) ~(reps : int) ~(budget : int)
    (spec : Syzlang.Ast.spec option) : cell option =
  match spec with
  | None -> None
  | Some spec ->
      let machine = Vkernel.Machine.boot [ entry ] in
      let covs = ref [] and crashes = ref [] in
      for rep = 1 to reps do
        let res = Fuzzer.Campaign.run ~seed:(rep * 7907) ~budget ~machine spec in
        covs := float_of_int (Fuzzer.Campaign.module_coverage machine res entry.name) :: !covs;
        crashes := float_of_int (Hashtbl.length res.crashes) :: !crashes
      done;
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
      Some
        { c_sys = Syzlang.Ast.count_syscalls spec; c_cov = mean !covs; c_crash = mean !crashes }

let table6 ?(reps = 3) ?(budget = 4000) (ctx : Suites.ctx) : table6 =
  let rows =
    List.map
      (fun (e : Corpus.Types.entry) ->
        {
          r_name = e.display_name;
          r_syzkaller =
            fuzz_cell ~entry:e ~reps ~budget (Baseline.Syzkaller_specs.spec_of_entry e);
          r_kernelgpt = fuzz_cell ~entry:e ~reps ~budget (Suites.kgpt_spec ctx e.name);
        })
      (Corpus.Registry.table6 ())
  in
  { socket_rows = List.sort (fun a b -> compare a.r_name b.r_name) rows }

let cell_strings = function
  | Some c -> [ string_of_int c.c_sys; Printf.sprintf "%.0f" c.c_cov; Table.fmt_float c.c_crash ]
  | None -> [ "-"; "-"; "-" ]

let print_table6 (t : table6) =
  Table.section "Table 6: Socket specification comparison";
  let rows =
    List.map
      (fun r -> (r.r_name :: cell_strings r.r_syzkaller) @ cell_strings r.r_kernelgpt)
      t.socket_rows
  in
  let sum f =
    List.fold_left
      (fun (s, c, x) r ->
        match f r with
        | Some cell -> (s + cell.c_sys, c +. cell.c_cov, x +. cell.c_crash)
        | None -> (s, c, x))
      (0, 0.0, 0.0) t.socket_rows
  in
  let s1, c1, x1 = sum (fun r -> r.r_syzkaller) in
  let s2, c2, x2 = sum (fun r -> r.r_kernelgpt) in
  let total =
    [
      "Total"; string_of_int s1; Printf.sprintf "%.0f" c1; Table.fmt_float x1;
      string_of_int s2; Printf.sprintf "%.0f" c2; Table.fmt_float x2;
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Syz #Sys"; "Syz Cov"; "Syz Crash"; "KGPT #Sys"; "KGPT Cov"; "KGPT Crash" ]
    (rows @ [ total ])
