(** E10: semantic-correctness audit of generated specifications
    (§5.1.3), against the corpus ground truth.

    The audit covers the loaded drivers that have *no* hand-written
    Syzkaller description at all (45 in the paper) and checks, per
    driver: syscalls the generation missed, syscalls with wrong
    identifier values, and syscalls with wrong argument types. *)

type audit = {
  a_drivers : int;
  a_total_cmds : int;  (** ground-truth ioctl commands over those drivers *)
  a_drivers_with_missing : int;
  a_missing_cmds : int;
  a_drivers_with_wrong_id : int;
  a_wrong_id_cmds : int;
  a_wrong_type_cmds : int;
}

let audit (ctx : Suites.ctx) : audit =
  let subjects =
    List.filter
      (fun (e : Corpus.Types.entry) ->
        e.kind = Corpus.Types.Driver && e.existing_spec = None && e.loaded)
      ctx.entries
  in
  let stats =
    List.map
      (fun (e : Corpus.Types.entry) ->
        let gt_cmds = e.gt.gt_ioctls in
        match Suites.kgpt_spec ctx e.name with
        | None -> (List.length gt_cmds, List.length gt_cmds, 0, 0)
        | Some spec ->
            let described =
              List.filter_map
                (fun (c : Syzlang.Ast.syscall) ->
                  if c.call_name = "ioctl" then c.variant else None)
                spec.syscalls
            in
            let arg_type_of variant =
              List.find_map
                (fun (c : Syzlang.Ast.syscall) ->
                  if c.variant = Some variant then
                    List.find_map
                      (fun (f : Syzlang.Ast.field) ->
                        match f.ftyp with
                        | Syzlang.Ast.Ptr (_, Syzlang.Ast.Struct_ref n)
                        | Syzlang.Ast.Ptr (_, Syzlang.Ast.Union_ref n) ->
                            Some (Some n)
                        | Syzlang.Ast.Ptr (_, _) when f.fname = "arg" -> Some None
                        | _ -> None)
                      c.args
                  else None)
                spec.syscalls
            in
            let missing =
              List.length
                (List.filter
                   (fun (g : Corpus.Types.gt_command) -> not (List.mem g.gc_name described))
                   gt_cmds)
            in
            (* wrong identifiers: described commands that are not ground
               truth (hallucinated or corrupted names that survived) *)
            let gt_names = List.map (fun g -> g.Corpus.Types.gc_name) gt_cmds in
            let wrong_ids =
              List.length (List.filter (fun d -> not (List.mem d gt_names)) described)
            in
            let wrong_types =
              List.length
                (List.filter
                   (fun (g : Corpus.Types.gt_command) ->
                     List.mem g.gc_name described
                     &&
                     match (g.gc_arg_type, arg_type_of g.gc_name) with
                     | Some t, Some (Some t') -> t <> t'
                     | Some _, Some None -> true
                     | None, Some (Some _) -> true
                     | _ -> false)
                   gt_cmds)
            in
            (List.length gt_cmds, missing, wrong_ids, wrong_types))
      subjects
  in
  {
    a_drivers = List.length subjects;
    a_total_cmds = List.fold_left (fun a (t, _, _, _) -> a + t) 0 stats;
    a_drivers_with_missing =
      List.length (List.filter (fun (_, m, _, _) -> m > 0) stats);
    a_missing_cmds = List.fold_left (fun a (_, m, _, _) -> a + m) 0 stats;
    a_drivers_with_wrong_id = List.length (List.filter (fun (_, _, w, _) -> w > 0) stats);
    a_wrong_id_cmds = List.fold_left (fun a (_, _, w, _) -> a + w) 0 stats;
    a_wrong_type_cmds = List.fold_left (fun a (_, _, _, t) -> a + t) 0 stats;
  }

let print (a : audit) =
  Table.section "Correctness audit (§5.1.3): drivers without any Syzkaller spec";
  Printf.printf "Drivers audited:              %d (%d ioctl commands)\n" a.a_drivers a.a_total_cmds;
  Printf.printf "Drivers with missing syscalls: %d (%d commands missed)\n"
    a.a_drivers_with_missing a.a_missing_cmds;
  Printf.printf "Drivers with wrong identifiers: %d (%d commands)\n" a.a_drivers_with_wrong_id
    a.a_wrong_id_cmds;
  Printf.printf "Commands with wrong types:     %d\n" a.a_wrong_type_cmds
