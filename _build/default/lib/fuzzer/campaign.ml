(** Coverage-guided fuzzing campaign (the Syzkaller loop).

    A fixed execution budget stands in for the paper's wall-clock
    sessions (24h × 8 cores in Table 3, 6h in Tables 5/6). Programs that
    reach new statements join the corpus and get mutated; crashes are
    deduplicated by title, the paper's "unique crashes" metric. *)

type result = {
  executions : int;
  coverage : (int, unit) Hashtbl.t;  (** all statements reached *)
  crashes : (string, Vkernel.Machine.prog) Hashtbl.t;  (** title -> reproducer *)
  corpus_size : int;
}

let total_coverage res = Hashtbl.length res.coverage

(** Coverage restricted to one module. *)
let module_coverage (machine : Vkernel.Machine.t) res (modname : string) : int =
  Hashtbl.fold
    (fun sid () acc ->
      match Vkernel.Machine.module_of_sid machine sid with
      | Some m when m = modname -> acc + 1
      | _ -> acc)
    res.coverage 0

let crash_titles res =
  Hashtbl.fold (fun t _ acc -> t :: acc) res.crashes [] |> List.sort String.compare

(** Run a campaign of [budget] program executions. *)
let run ?(seed = 1) ?(budget = 2000) ?(step_budget = 50_000)
    ~(machine : Vkernel.Machine.t) (spec : Syzlang.Ast.spec) : result =
  let spec = Syzlang.Validate.resolve_spec ~kernel:machine.Vkernel.Machine.index spec in
  let t = Proggen.prepare spec in
  let r = Rng.make seed in
  let coverage = Hashtbl.create 4096 in
  let crashes = Hashtbl.create 8 in
  let corpus : Vkernel.Machine.prog array ref = ref [||] in
  let executions = ref 0 in
  if t.Proggen.consumers <> [] then
    for _ = 1 to budget do
      incr executions;
      let prog =
        if Array.length !corpus > 0 && Rng.pct r 65 then
          Proggen.mutate t r !corpus.(Rng.int r (Array.length !corpus))
        else Proggen.generate t r ()
      in
      if prog <> [] then begin
        let res = Vkernel.Machine.exec_prog ~step_budget machine prog in
        (match res.crash with
        | Some c ->
            if not (Hashtbl.mem crashes c.cr_title) then Hashtbl.replace crashes c.cr_title prog
        | None -> ());
        let fresh =
          List.exists (fun sid -> not (Hashtbl.mem coverage sid)) res.coverage
        in
        List.iter (fun sid -> Hashtbl.replace coverage sid ()) res.coverage;
        if fresh && Array.length !corpus < 512 then corpus := Array.append !corpus [| prog |]
      end
    done;
  { executions = !executions; coverage; crashes; corpus_size = Array.length !corpus }
