lib/fuzzer/rng.ml: Char Int64 List String
