lib/fuzzer/repro.ml: Buffer Int64 List Printf String Vkernel
