lib/fuzzer/campaign.mli: Hashtbl Syzlang Vkernel
