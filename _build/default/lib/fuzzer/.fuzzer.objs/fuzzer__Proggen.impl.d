lib/fuzzer/proggen.ml: Array Int64 List Option Rng String Syzlang Vkernel
