lib/fuzzer/campaign.ml: Array Hashtbl List Proggen Rng String Syzlang Vkernel
