(** Spec-driven program generation (Syzkaller's generator).

    Programs are sequences of syscalls drawn from a specification suite.
    Resource arguments are satisfied by inserting producer calls
    (openat/socket, or resource-returning ioctls like KVM_CREATE_VM), so
    inter-syscall dependencies expressed in the spec shape every
    program. Argument payloads are generated from the syzlang types:
    [len] fields are computed from their targets, [const] fields carry
    the resolved kernel constants, strings come from a small pool. *)

open Syzlang.Ast

type t = {
  spec : spec;  (** resolved: const values filled in *)
  producers : (string * syscall) list;  (** resource -> producing syscall *)
  consumers : syscall list;  (** all syscalls *)
  mutable cur_str : string option;
      (** the program's working string: reused across calls so that
          name-keyed kernel state (device tables) sees the same key, the
          way Syzkaller reuses buffers *)
}

let prepare (spec : spec) : t =
  let producers =
    List.filter_map
      (fun c -> match c.ret with Some r -> Some (r, c) | None -> None)
      spec.syscalls
  in
  { spec; producers; consumers = spec.syscalls; cur_str = None }

let program_string (t : t) (r : Rng.t) ~(max_len : int) : string =
  match t.cur_str with
  | Some s when Rng.pct r 60 -> s
  | _ ->
      let s = Rng.fuzz_string r ~max_len in
      t.cur_str <- Some s;
      s

let find_type (t : t) name = List.find_opt (fun c -> c.comp_name = name) t.spec.types

let const_value (c : const_ref) : int64 = Option.value c.const_value ~default:0L

let rec uval_of_typ (t : t) (r : Rng.t) ~(depth : int) (ty : typ) : Vkernel.Value.uval =
  let open Vkernel.Value in
  if depth > 6 then U_int 0L
  else
    match ty with
    | Int (w, None) -> U_int (Rng.fuzz_int r ~bits:(8 * width_bytes w))
    | Int (_, Some { lo; hi }) ->
        let span = Int64.to_int (Int64.sub hi lo) + 1 in
        U_int (Int64.add lo (Int64.of_int (Rng.int r (max 1 span))))
    | Const (c, _) -> U_int (const_value c)
    | Flags (set, w) -> (
        (* mostly the spec's valid values, occasionally noise *)
        match List.find_opt (fun fs -> fs.set_name = set) t.spec.flag_sets with
        | Some fs when fs.set_values <> [] && not (Rng.pct r 25) ->
            U_int (const_value (Rng.pick r fs.set_values))
        | _ -> U_int (Rng.fuzz_int r ~bits:(8 * width_bytes w)))
    | Ptr (_, String (Some s)) -> U_str s
    | Ptr (_, inner) -> uval_of_typ t r ~depth:(depth + 1) inner
    | Buffer _ -> U_str (Rng.fuzz_string r ~max_len:32)
    | String (Some s) -> U_str s
    | String None -> U_str (program_string t r ~max_len:32)
    | Array (Int (I8, _), len) ->
        let n = match len with Some n -> min n 64 | None -> Rng.int r 32 in
        if Rng.pct r 40 then U_str (program_string t r ~max_len:(max 1 n))
        else U_str (Rng.fuzz_string r ~max_len:(max 1 n))
    | Array (elem, len) ->
        let n = match len with Some n -> min n 8 | None -> 1 + Rng.int r 4 in
        U_arr (List.init n (fun _ -> uval_of_typ t r ~depth:(depth + 1) elem))
    | Len _ | Bytesize _ -> U_int 0L (* fixed up afterwards *)
    | Resource_ref _ | Fd -> U_int (Int64.of_int (Rng.int r 8))
    | Struct_ref name -> (
        match find_type t name with
        | Some cd -> uval_of_comp t r ~depth cd
        | None -> U_int 0L)
    | Union_ref name -> (
        match find_type t name with
        | Some cd when cd.comp_fields <> [] ->
            let f = Rng.pick r cd.comp_fields in
            U_struct (name, [ (f.fname, uval_of_typ t r ~depth:(depth + 1) f.ftyp) ])
        | _ -> U_int 0L)
    | Void -> U_int 0L

and uval_of_comp (t : t) (r : Rng.t) ~(depth : int) (cd : comp_def) : Vkernel.Value.uval =
  let open Vkernel.Value in
  let fields =
    List.map (fun f -> (f.fname, uval_of_typ t r ~depth:(depth + 1) f.ftyp)) cd.comp_fields
  in
  (* second pass: compute len fields from their targets *)
  let elem_count = function
    | U_str s -> Int64.of_int (String.length s)
    | U_arr xs -> Int64.of_int (List.length xs)
    | U_struct _ -> 1L
    | U_int _ | U_null -> 1L
  in
  let fields =
    List.map
      (fun (fname, v) ->
        match List.find_opt (fun f -> f.fname = fname) cd.comp_fields with
        | Some { ftyp = Len (target, _); _ } | Some { ftyp = Bytesize (target, _); _ } -> (
            match List.assoc_opt target fields with
            | Some tv -> (fname, U_int (elem_count tv))
            | None -> (fname, v))
        | _ -> (fname, v))
      fields
  in
  U_struct (cd.comp_name, fields)

(* ------------------------------------------------------------------ *)
(* Call and program construction                                       *)
(* ------------------------------------------------------------------ *)

(** Generate the machine-level arguments of one syscall; [resource_at]
    maps resource names to the producing call's program index. *)
let args_of_call (t : t) (r : Rng.t) ~(resource_at : (string * int) list) (c : syscall) :
    Vkernel.Machine.parg list =
  List.map
    (fun (f : field) ->
      match f.ftyp with
      | Resource_ref res -> (
          match List.assoc_opt res resource_at with
          | Some i -> Vkernel.Machine.P_result i
          | None -> Vkernel.Machine.P_int (-1L))
      | Fd -> Vkernel.Machine.P_int (Int64.of_int (Rng.int r 8))
      | Const (cr, _) -> Vkernel.Machine.P_int (const_value cr)
      | Int (w, None) -> Vkernel.Machine.P_int (Rng.fuzz_int r ~bits:(8 * width_bytes w))
      | Int (_, Some { lo; hi }) ->
          let span = Int64.to_int (Int64.sub hi lo) + 1 in
          Vkernel.Machine.P_int (Int64.add lo (Int64.of_int (Rng.int r (max 1 span))))
      | Flags (_, w) -> Vkernel.Machine.P_int (Rng.fuzz_int r ~bits:(8 * width_bytes w))
      | Ptr (_, String (Some s)) -> Vkernel.Machine.P_str s
      | String (Some s) -> Vkernel.Machine.P_str s
      | String None -> Vkernel.Machine.P_str (Rng.fuzz_string r ~max_len:32)
      | Ptr (_, inner) ->
          if Rng.pct r 4 then Vkernel.Machine.P_null
          else Vkernel.Machine.P_data (uval_of_typ t r ~depth:0 inner)
      | Buffer _ -> Vkernel.Machine.P_data (Vkernel.Value.U_str (Rng.fuzz_string r ~max_len:32))
      | Array _ | Struct_ref _ | Union_ref _ ->
          Vkernel.Machine.P_data (uval_of_typ t r ~depth:0 f.ftyp)
      | Len _ | Bytesize _ -> Vkernel.Machine.P_int (Rng.fuzz_int r ~bits:32)
      | Void -> Vkernel.Machine.P_int 0L)
    (c : syscall).args

(** Resources a syscall needs. *)
let required_resources (c : syscall) : string list =
  List.concat_map (fun f -> referenced_resources f.ftyp) c.args

(** Append [c] to the program under construction, inserting producer
    calls for missing resources first. *)
let rec push_call (t : t) (r : Rng.t) ~(prog : (string * Vkernel.Machine.call) list ref)
    ~(resource_at : (string * int) list ref) ~(depth : int) (c : syscall) : unit =
  if depth > 4 then ()
  else begin
    List.iter
      (fun res ->
        if not (List.mem_assoc res !resource_at) then
          match List.assoc_opt res t.producers with
          | Some producer -> push_call t r ~prog ~resource_at ~depth:(depth + 1) producer
          | None -> ())
      (required_resources c);
    let args = args_of_call t r ~resource_at:!resource_at c in
    let index = List.length !prog in
    prog := !prog @ [ (syscall_full_name c, { Vkernel.Machine.c_name = c.call_name; c_args = args }) ];
    match c.ret with
    | Some res -> resource_at := (res, index) :: !resource_at
    | None -> ()
  end

(** A fresh random program of up to [max_len] spec syscalls. With some
    probability the program instead walks the *whole* specification in
    order — specs list syscalls in handler source order, which tends to
    be setup order (open, configure, operate), so template programs reach
    deep multi-call states the way Syzkaller's call-relation bias does. *)
let generate (t : t) (r : Rng.t) ?(max_len = 5) () : Vkernel.Machine.prog =
  t.cur_str <- None;
  if t.consumers = [] then []
  else begin
    let prog = ref [] in
    let resource_at = ref [] in
    if Rng.pct r 15 then begin
      (* walk a contiguous window of the spec in order; merged suites
         keep each module's syscalls adjacent, so a window stays inside
         one module's setup sequence *)
      let n = List.length t.consumers in
      let window = 25 in
      let start = if n <= window then 0 else Rng.int r (n - window + 1) in
      List.iteri
        (fun i c ->
          if i >= start && i < start + window then
            push_call t r ~prog ~resource_at ~depth:0 c)
        t.consumers;
      (* a short random tail re-exercises state left by the walk *)
      for _ = 1 to 1 + Rng.int r 3 do
        push_call t r ~prog ~resource_at ~depth:0 (Rng.pick r t.consumers)
      done
    end
    else begin
      let n = 1 + Rng.int r max_len in
      for _ = 1 to n do
        let c = Rng.pick r t.consumers in
        push_call t r ~prog ~resource_at ~depth:0 c
      done
    end;
    List.map snd !prog
  end

(** Mutate a program: regenerate one call's arguments, append a call, or
    drop a tail call. The call-name list is kept consistent by simply
    regenerating from the same spec when structure changes. *)
let mutate (t : t) (r : Rng.t) (prog : Vkernel.Machine.prog) : Vkernel.Machine.prog =
  match prog with
  | [] -> generate t r ()
  | _ when List.length prog > 40 ->
      (* programs must not grow without bound: trim back to a window *)
      List.filteri (fun i _ -> i < 30) prog
  | _ -> (
      match Rng.int r 5 with
      | 4 when List.length prog > 2 ->
          (* swap two adjacent calls: ordering bugs (suspend-then-remove) *)
          let i = 1 + Rng.int r (List.length prog - 1) in
          let arr = Array.of_list prog in
          let tmp = arr.(i) in
          arr.(i) <- arr.(i - 1);
          arr.(i - 1) <- tmp;
          Array.to_list arr
      | 0 ->
          (* append more calls *)
          let extra = generate t r ~max_len:2 () in
          (* re-target appended resource uses onto existing results where
             possible: cheap heuristic — leave absolute indices, they
             refer within the appended block after shifting *)
          let shift = List.length prog in
          let shifted =
            List.map
              (fun (c : Vkernel.Machine.call) ->
                {
                  c with
                  Vkernel.Machine.c_args =
                    List.map
                      (function
                        | Vkernel.Machine.P_result i -> Vkernel.Machine.P_result (i + shift)
                        | a -> a)
                      c.c_args;
                })
              extra
          in
          prog @ shifted
      | 1 when List.length prog > 1 ->
          (* drop the last call *)
          List.filteri (fun i _ -> i < List.length prog - 1) prog
      | 3 ->
          (* duplicate one call in place (double-ioctl bugs) *)
          let victim = Rng.int r (List.length prog) in
          List.concat
            (List.mapi (fun i c -> if i = victim then [ c; c ] else [ c ]) prog)
      | _ ->
          (* regenerate the payload of one call *)
          let victim = Rng.int r (List.length prog) in
          List.mapi
            (fun i (c : Vkernel.Machine.call) ->
              if i <> victim then c
              else
                {
                  c with
                  Vkernel.Machine.c_args =
                    List.map
                      (function
                        | Vkernel.Machine.P_data _ ->
                            (* find a syscall with this name to retype; fall
                               back to random bytes *)
                            let retyped =
                              List.find_opt
                                (fun sc -> sc.call_name = c.Vkernel.Machine.c_name)
                                t.consumers
                            in
                            (match retyped with
                            | Some sc -> (
                                let ptr_arg =
                                  List.find_opt
                                    (fun f ->
                                      match f.ftyp with Ptr (_, _) -> true | _ -> false)
                                    sc.args
                                in
                                match ptr_arg with
                                | Some { ftyp = Ptr (_, inner); _ } ->
                                    Vkernel.Machine.P_data (uval_of_typ t r ~depth:0 inner)
                                | _ ->
                                    Vkernel.Machine.P_data
                                      (Vkernel.Value.U_str (Rng.fuzz_string r ~max_len:16)))
                            | None ->
                                Vkernel.Machine.P_data
                                  (Vkernel.Value.U_str (Rng.fuzz_string r ~max_len:16)))
                        (* P_int args are consts/lengths from the spec:
                           Syzkaller never mutates those *)
                        | a -> a)
                      c.c_args;
                })
            prog)
