lib/syzlang/parser.ml: Ast Buffer Int64 List Printf String
