lib/syzlang/rewrite.ml: Ast List
