lib/syzlang/ast.ml: Int64 List
