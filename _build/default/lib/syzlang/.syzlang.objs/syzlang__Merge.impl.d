lib/syzlang/merge.ml: Ast Hashtbl List
