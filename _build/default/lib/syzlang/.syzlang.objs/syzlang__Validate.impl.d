lib/syzlang/validate.ml: Ast Csrc Hashtbl Int64 List Printf
