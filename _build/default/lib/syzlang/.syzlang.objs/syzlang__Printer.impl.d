lib/syzlang/printer.ml: Ast List Printf String
