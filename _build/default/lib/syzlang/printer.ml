(** Render syzlang specifications as text.

    The output follows Syzkaller's surface syntax closely enough that
    specs printed here read like the paper's Figure 2d / Figure 3. The
    printer favours symbolic constant names whenever the generator
    recorded them — the readability property the Syzkaller developers
    asked for. *)

let rec typ_str (t : Ast.typ) : string =
  match t with
  | Ast.Int (w, None) -> Ast.width_to_string w
  | Ast.Int (w, Some { lo; hi }) ->
      Printf.sprintf "%s[%Ld:%Ld]" (Ast.width_to_string w) lo hi
  | Ast.Const (c, w) ->
      Printf.sprintf "const[%s, %s]" (Ast.const_ref_to_string c) (Ast.width_to_string w)
  | Ast.Flags (name, w) -> Printf.sprintf "flags[%s, %s]" name (Ast.width_to_string w)
  | Ast.Ptr (d, t) -> Printf.sprintf "ptr[%s, %s]" (Ast.dir_to_string d) (typ_str t)
  | Ast.Array (t, None) -> Printf.sprintf "array[%s]" (typ_str t)
  | Ast.Array (t, Some n) -> Printf.sprintf "array[%s, %d]" (typ_str t) n
  | Ast.Buffer d -> Printf.sprintf "buffer[%s]" (Ast.dir_to_string d)
  | Ast.String None -> "string"
  | Ast.String (Some s) -> Printf.sprintf "string[\"%s\"]" s
  | Ast.Len (target, w) -> Printf.sprintf "len[%s, %s]" target (Ast.width_to_string w)
  | Ast.Bytesize (target, w) ->
      Printf.sprintf "bytesize[%s, %s]" target (Ast.width_to_string w)
  | Ast.Resource_ref name -> name
  | Ast.Struct_ref name -> name
  | Ast.Union_ref name -> name
  | Ast.Fd -> "fd"
  | Ast.Void -> "void"

let field_str (f : Ast.field) = Printf.sprintf "%s %s" f.fname (typ_str f.ftyp)

let syscall_str (c : Ast.syscall) : string =
  let args = String.concat ", " (List.map field_str c.args) in
  let ret = match c.ret with Some r -> " " ^ r | None -> "" in
  Printf.sprintf "%s(%s)%s" (Ast.syscall_full_name c) args ret

let resource_str (r : Ast.resource_def) : string =
  Printf.sprintf "resource %s[%s]" r.res_name r.res_underlying

let comp_str (c : Ast.comp_def) : string =
  let kw = match c.comp_kind with Ast.Struct -> "{" | Ast.Union -> "[" in
  let kw_end = match c.comp_kind with Ast.Struct -> "}" | Ast.Union -> "]" in
  String.concat "\n"
    ((Printf.sprintf "%s %s" c.comp_name kw
     :: List.map (fun f -> "\t" ^ field_str f) c.comp_fields)
    @ [ kw_end ])

let flag_set_str (fs : Ast.flag_set) : string =
  Printf.sprintf "%s = %s" fs.set_name
    (String.concat ", " (List.map Ast.const_ref_to_string fs.set_values))

let spec_str (s : Ast.spec) : string =
  let sections =
    List.concat
      [
        [ Printf.sprintf "# Specification for handler %s" s.spec_name ];
        List.map resource_str s.resources;
        List.map syscall_str s.syscalls;
        (if s.flag_sets = [] then [] else "" :: List.map flag_set_str s.flag_sets);
        (if s.types = [] then [] else "" :: List.map comp_str s.types);
      ]
  in
  String.concat "\n" sections ^ "\n"
