(** Abstract syntax of syzlang, the Syzkaller specification language.

    The subset implemented here covers everything the paper's examples use:
    resources, syscall variants ([ioctl$DM_LIST_DEVICES]), const/flags/int
    arguments, pointers with direction, strings, arrays, length fields
    ([count len[devices, int32]]), and struct/union definitions with
    attributes. *)

type dir = In | Out | Inout

let dir_to_string = function In -> "in" | Out -> "out" | Inout -> "inout"

type int_width = I8 | I16 | I32 | I64 | Iptr

let width_to_string = function
  | I8 -> "int8"
  | I16 -> "int16"
  | I32 -> "int32"
  | I64 -> "int64"
  | Iptr -> "intptr"

let width_bytes = function I8 -> 1 | I16 -> 2 | I32 -> 4 | I64 -> 8 | Iptr -> 8

type range = { lo : int64; hi : int64 }

(** A constant reference: symbolic name when known (preferred — the paper
    stresses that readable specs use literal constant names), with the
    value resolved by validation against the kernel index. *)
type const_ref = { const_name : string option; const_value : int64 option }

type typ =
  | Int of int_width * range option
  | Const of const_ref * int_width
  | Flags of string * int_width  (** named flag set *)
  | Ptr of dir * typ
  | Array of typ * int option
  | Buffer of dir
  | String of string option  (** [string["/dev/mapper/control"]] *)
  | Len of string * int_width  (** length (in elements) of a sibling field *)
  | Bytesize of string * int_width
  | Resource_ref of string
  | Struct_ref of string
  | Union_ref of string
  | Fd  (** a plain file descriptor *)
  | Void

type field = { fname : string; ftyp : typ }

type comp_kind = Struct | Union

type comp_def = { comp_name : string; comp_kind : comp_kind; comp_fields : field list }

type resource_def = { res_name : string; res_underlying : string (* e.g. "fd" *) }

type syscall = {
  call_name : string;  (** base syscall, e.g. "ioctl" *)
  variant : string option;  (** suffix after [$] *)
  args : field list;
  ret : string option;  (** name of the resource produced, if any *)
}

let syscall_full_name c =
  match c.variant with None -> c.call_name | Some v -> c.call_name ^ "$" ^ v

type flag_set = { set_name : string; set_values : const_ref list }

(** One specification unit: everything generated for one operation
    handler (one driver or socket). *)
type spec = {
  spec_name : string;  (** handler identifier, e.g. "dm" *)
  resources : resource_def list;
  syscalls : syscall list;
  types : comp_def list;
  flag_sets : flag_set list;
}

let empty_spec name =
  { spec_name = name; resources = []; syscalls = []; types = []; flag_sets = [] }

let const_of_name n = { const_name = Some n; const_value = None }
let const_of_value v = { const_name = None; const_value = Some v }

let const_ref_to_string c =
  match (c.const_name, c.const_value) with
  | Some n, _ -> n
  | None, Some v -> Int64.to_string v
  | None, None -> "?"

(** All type names referenced by a type, for dependency checks. *)
let rec referenced_types = function
  | Struct_ref n | Union_ref n -> [ n ]
  | Ptr (_, t) | Array (t, _) -> referenced_types t
  | Int _ | Const _ | Flags _ | Buffer _ | String _ | Len _ | Bytesize _ | Resource_ref _
  | Fd | Void ->
      []

let rec referenced_resources = function
  | Resource_ref n -> [ n ]
  | Ptr (_, t) | Array (t, _) -> referenced_resources t
  | Int _ | Const _ | Flags _ | Buffer _ | String _ | Len _ | Bytesize _ | Struct_ref _
  | Union_ref _ | Fd | Void ->
      []

let rec referenced_flag_sets = function
  | Flags (n, _) -> [ n ]
  | Ptr (_, t) | Array (t, _) -> referenced_flag_sets t
  | Int _ | Const _ | Buffer _ | String _ | Len _ | Bytesize _ | Struct_ref _ | Union_ref _
  | Resource_ref _ | Fd | Void ->
      []

let rec referenced_consts = function
  | Const (c, _) -> [ c ]
  | Ptr (_, t) | Array (t, _) -> referenced_consts t
  | Int _ | Flags _ | Buffer _ | String _ | Len _ | Bytesize _ | Struct_ref _ | Union_ref _
  | Resource_ref _ | Fd | Void ->
      []

(** Number of distinct syscalls described (the paper's "#Sys"). *)
let count_syscalls spec = List.length spec.syscalls

(** Number of struct/union type definitions (the paper's "#Types"). *)
let count_types spec = List.length spec.types

(** Fold [f] over every type node reachable from the spec (syscall args,
    return-resource excluded, struct fields). *)
let fold_types f acc spec =
  let rec fold_typ acc t =
    let acc = f acc t in
    match t with Ptr (_, t') | Array (t', _) -> fold_typ acc t' | _ -> acc
  in
  let acc =
    List.fold_left
      (fun acc call -> List.fold_left (fun acc fld -> fold_typ acc fld.ftyp) acc call.args)
      acc spec.syscalls
  in
  List.fold_left
    (fun acc cd -> List.fold_left (fun acc fld -> fold_typ acc fld.ftyp) acc cd.comp_fields)
    acc spec.types
