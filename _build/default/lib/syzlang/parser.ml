(** Parser for syzlang specification text.

    Accepts the subset printed by {!Printer} (and hand-written specs in
    the same style): resources, syscalls with [$] variants, flag sets,
    and struct/union definitions. Unknown identifiers in type position
    are resolved against the declared resources and types in a second
    pass; names that remain unresolved are kept as struct references for
    the validator to flag. *)

exception Error of string * int  (** message, line number *)

type token =
  | Ident of string
  | Int of int64
  | Str of string
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Dollar
  | Equals
  | Colon
  | Minus

let tokenize_line lineno (line : string) : token list =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n (* comment *)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      while !j < n && line.[!j] <> '"' do
        Buffer.add_char buf line.[!j];
        incr j
      done;
      if !j >= n then raise (Error ("unterminated string", lineno));
      emit (Str (Buffer.contents buf));
      i := !j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while
        !j < n
        && (is_ident_char line.[!j] || line.[!j] = 'x')
      do
        incr j
      done;
      let text = String.sub line !i (!j - !i) in
      (match Int64.of_string_opt text with
      | Some v -> emit (Int v)
      | None -> raise (Error (Printf.sprintf "bad integer %S" text, lineno)));
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char line.[!j] do
        incr j
      done;
      emit (Ident (String.sub line !i (!j - !i)));
      i := !j
    end
    else begin
      (match c with
      | '[' -> emit Lbracket
      | ']' -> emit Rbracket
      | '(' -> emit Lparen
      | ')' -> emit Rparen
      | '{' -> emit Lbrace
      | '}' -> emit Rbrace
      | ',' -> emit Comma
      | '$' -> emit Dollar
      | '=' -> emit Equals
      | ':' -> emit Colon
      | '-' -> emit Minus
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, lineno)));
      incr i
    end
  done;
  List.rev !toks

(* token-stream cursor over one line *)
type cursor = { mutable toks : token list; line : int }

let cpeek c = match c.toks with [] -> None | t :: _ -> Some t

let cnext c =
  match c.toks with
  | [] -> raise (Error ("unexpected end of line", c.line))
  | t :: rest ->
      c.toks <- rest;
      t

let cexpect c t =
  let got = cnext c in
  if got <> t then raise (Error ("unexpected token", c.line))

let cident c =
  match cnext c with
  | Ident s -> s
  | _ -> raise (Error ("expected identifier", c.line))

let width_of_ident = function
  | "int8" -> Some Ast.I8
  | "int16" -> Some Ast.I16
  | "int32" -> Some Ast.I32
  | "int64" -> Some Ast.I64
  | "intptr" -> Some Ast.Iptr
  | _ -> None

let parse_int c =
  match cnext c with
  | Int v -> v
  | Minus -> (
      match cnext c with
      | Int v -> Int64.neg v
      | _ -> raise (Error ("expected integer", c.line)))
  | _ -> raise (Error ("expected integer", c.line))

let parse_const_ref c =
  match cpeek c with
  | Some (Ident n) ->
      ignore (cnext c);
      Ast.const_of_name n
  | _ -> Ast.const_of_value (parse_int c)

let rec parse_typ c : Ast.typ =
  match cnext c with
  | Ident "string" -> (
      match cpeek c with
      | Some Lbracket ->
          ignore (cnext c);
          let s = match cnext c with
            | Str s -> s
            | _ -> raise (Error ("expected string literal", c.line))
          in
          cexpect c Rbracket;
          Ast.String (Some s)
      | _ -> Ast.String None)
  | Ident "buffer" ->
      cexpect c Lbracket;
      let d = parse_dir c in
      cexpect c Rbracket;
      Ast.Buffer d
  | Ident "ptr" ->
      cexpect c Lbracket;
      let d = parse_dir c in
      cexpect c Comma;
      let t = parse_typ c in
      cexpect c Rbracket;
      Ast.Ptr (d, t)
  | Ident "array" ->
      cexpect c Lbracket;
      let t = parse_typ c in
      let n =
        match cpeek c with
        | Some Comma ->
            ignore (cnext c);
            Some (Int64.to_int (parse_int c))
        | _ -> None
      in
      cexpect c Rbracket;
      Ast.Array (t, n)
  | Ident "const" ->
      cexpect c Lbracket;
      let cr = parse_const_ref c in
      let w =
        match cpeek c with
        | Some Comma ->
            ignore (cnext c);
            parse_width c
        | _ -> Ast.Iptr
      in
      cexpect c Rbracket;
      Ast.Const (cr, w)
  | Ident "flags" ->
      cexpect c Lbracket;
      let name = cident c in
      let w =
        match cpeek c with
        | Some Comma ->
            ignore (cnext c);
            parse_width c
        | _ -> Ast.Iptr
      in
      cexpect c Rbracket;
      Ast.Flags (name, w)
  | Ident "len" ->
      cexpect c Lbracket;
      let target = cident c in
      let w =
        match cpeek c with
        | Some Comma ->
            ignore (cnext c);
            parse_width c
        | _ -> Ast.Iptr
      in
      cexpect c Rbracket;
      Ast.Len (target, w)
  | Ident "bytesize" ->
      cexpect c Lbracket;
      let target = cident c in
      let w =
        match cpeek c with
        | Some Comma ->
            ignore (cnext c);
            parse_width c
        | _ -> Ast.Iptr
      in
      cexpect c Rbracket;
      Ast.Bytesize (target, w)
  | Ident "fd" -> Ast.Fd
  | Ident "void" -> Ast.Void
  | Ident name -> (
      match width_of_ident name with
      | Some w -> (
          match cpeek c with
          | Some Lbracket ->
              ignore (cnext c);
              let lo = parse_int c in
              cexpect c Colon;
              let hi = parse_int c in
              cexpect c Rbracket;
              Ast.Int (w, Some { lo; hi })
          | _ -> Ast.Int (w, None))
      | None ->
          (* user-defined name: resolved against resources/types later *)
          Ast.Struct_ref name)
  | _ -> raise (Error ("expected type", c.line))

and parse_dir c =
  match cident c with
  | "in" -> Ast.In
  | "out" -> Ast.Out
  | "inout" -> Ast.Inout
  | d -> raise (Error ("bad direction " ^ d, c.line))

and parse_width c =
  let name = cident c in
  match width_of_ident name with
  | Some w -> w
  | None -> raise (Error ("expected int width, got " ^ name, c.line))

let parse_field c : Ast.field =
  let fname = cident c in
  let ftyp = parse_typ c in
  { Ast.fname; ftyp }

let parse_syscall c (name : string) : Ast.syscall =
  let variant =
    match cpeek c with
    | Some Dollar ->
        ignore (cnext c);
        Some (cident c)
    | _ -> None
  in
  cexpect c Lparen;
  let rec args acc =
    match cpeek c with
    | Some Rparen ->
        ignore (cnext c);
        List.rev acc
    | _ ->
        let f = parse_field c in
        (match cpeek c with
        | Some Comma -> ignore (cnext c)
        | _ -> ());
        args (f :: acc)
  in
  let args = args [] in
  let ret = match cpeek c with Some (Ident r) -> ignore (cnext c); Some r | _ -> None in
  { Ast.call_name = name; variant; args; ret }

(** Parse a full specification text. [name] names the resulting spec. *)
let rec parse_spec ~name (text : string) : Ast.spec =
  let lines = String.split_on_char '\n' text in
  let resources = ref [] in
  let syscalls = ref [] in
  let types = ref [] in
  let flag_sets = ref [] in
  (* struct/union bodies span multiple lines *)
  let pending : (string * Ast.comp_kind * Ast.field list ref) option ref = ref None in
  List.iteri
    (fun lineno line ->
      let lineno = lineno + 1 in
      let toks = tokenize_line lineno line in
      match (!pending, toks) with
      | Some (_, _, _), [] -> ()
      | Some (cname, kind, fields), [ Rbrace ] | Some (cname, kind, fields), [ Rbracket ] ->
          types :=
            { Ast.comp_name = cname; comp_kind = kind; comp_fields = List.rev !fields }
            :: !types;
          pending := None
      | Some (_, _, fields), _ ->
          let c = { toks; line = lineno } in
          fields := parse_field c :: !fields
      | None, [] -> ()
      | None, Ident "resource" :: rest ->
          let c = { toks = rest; line = lineno } in
          let res_name = cident c in
          cexpect c Lbracket;
          let res_underlying = cident c in
          cexpect c Rbracket;
          resources := { Ast.res_name; res_underlying } :: !resources
      | None, [ Ident cname; Lbrace ] -> pending := Some (cname, Ast.Struct, ref [])
      | None, [ Ident cname; Lbracket ] -> pending := Some (cname, Ast.Union, ref [])
      | None, Ident sname :: Equals :: rest ->
          let c = { toks = rest; line = lineno } in
          let rec values acc =
            let v = parse_const_ref c in
            match cpeek c with
            | Some Comma ->
                ignore (cnext c);
                values (v :: acc)
            | _ -> List.rev (v :: acc)
          in
          flag_sets := { Ast.set_name = sname; set_values = values [] } :: !flag_sets
      | None, Ident sname :: rest ->
          let c = { toks = rest; line = lineno } in
          syscalls := parse_syscall c sname :: !syscalls
      | None, _ -> raise (Error ("unexpected line", lineno)))
    lines;
  (match !pending with
  | Some (cname, _, _) ->
      raise (Error (Printf.sprintf "unterminated type definition %s" cname, 0))
  | None -> ());
  let spec =
    {
      Ast.spec_name = name;
      resources = List.rev !resources;
      syscalls = List.rev !syscalls;
      types = List.rev !types;
      flag_sets = List.rev !flag_sets;
    }
  in
  resolve spec

(** Second pass: rewrite bare identifiers in type position to resource or
    union references where the spec declares them. *)
and resolve (spec : Ast.spec) : Ast.spec =
  let is_resource n = List.exists (fun r -> r.Ast.res_name = n) spec.resources in
  let union_names =
    List.filter_map
      (fun c -> if c.Ast.comp_kind = Ast.Union then Some c.Ast.comp_name else None)
      spec.types
  in
  let rec fix t =
    match t with
    | Ast.Struct_ref n when is_resource n -> Ast.Resource_ref n
    | Ast.Struct_ref n when List.mem n union_names -> Ast.Union_ref n
    | Ast.Ptr (d, t) -> Ast.Ptr (d, fix t)
    | Ast.Array (t, n) -> Ast.Array (fix t, n)
    | t -> t
  in
  let fix_field f = { f with Ast.ftyp = fix f.Ast.ftyp } in
  {
    spec with
    Ast.syscalls =
      List.map (fun c -> { c with Ast.args = List.map fix_field c.Ast.args }) spec.syscalls;
    types =
      List.map
        (fun c -> { c with Ast.comp_fields = List.map fix_field c.Ast.comp_fields })
        spec.types;
  }
