(** Combining specification suites.

    The paper evaluates combined suites such as "Syzkaller + KernelGPT":
    the union of the hand-written descriptions and the generated ones.
    Merging renames nothing; colliding syscall variants keep the first
    occurrence (Syzkaller's own rule for duplicate identifiers), and
    colliding type names are deduplicated structurally. *)

let dedup_by key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.replace seen k ();
        true))
    xs

(** Merge two specs into one; [a] wins on name collisions. *)
let merge2 (a : Ast.spec) (b : Ast.spec) : Ast.spec =
  {
    Ast.spec_name = a.spec_name;
    resources = dedup_by (fun r -> r.Ast.res_name) (a.resources @ b.resources);
    syscalls = dedup_by Ast.syscall_full_name (a.syscalls @ b.syscalls);
    types = dedup_by (fun c -> c.Ast.comp_name) (a.types @ b.types);
    flag_sets = dedup_by (fun f -> f.Ast.set_name) (a.flag_sets @ b.flag_sets);
  }

(** Merge a list of specs into one suite named [name]. *)
let merge_all ~name (specs : Ast.spec list) : Ast.spec =
  match specs with
  | [] -> Ast.empty_spec name
  | first :: rest ->
      let merged = List.fold_left merge2 first rest in
      { merged with Ast.spec_name = name }

(** Syscalls present in [next] but absent from [base] — the paper's
    "new syscalls" metric (Table 2). *)
let new_syscalls ~(base : Ast.spec) (next : Ast.spec) : Ast.syscall list =
  let base_names = List.map Ast.syscall_full_name base.Ast.syscalls in
  List.filter
    (fun c -> not (List.mem (Ast.syscall_full_name c) base_names))
    next.Ast.syscalls

(** Types present in [next] but absent from [base] (Table 2's "#Types"). *)
let new_types ~(base : Ast.spec) (next : Ast.spec) : Ast.comp_def list =
  let base_names = List.map (fun c -> c.Ast.comp_name) base.Ast.types in
  List.filter (fun c -> not (List.mem c.Ast.comp_name base_names)) next.Ast.types
