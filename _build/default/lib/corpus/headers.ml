(** Shared kernel headers of the synthetic corpus.

    Every module source is parsed together with this header, which plays
    the role of [include/linux/*.h]: the registration structs
    ([file_operations], [miscdevice], [proto_ops]), errno constants, and
    the handful of helpers the drivers rely on. *)

let kernel_h =
  {|
/* errno */
#define EPERM 1
#define ENOENT 2
#define ESRCH 3
#define EINTR 4
#define EIO 5
#define ENXIO 6
#define E2BIG 7
#define ENOEXEC 8
#define EBADF 9
#define EEXIST 17
#define ENOIOCTLCMD 515
#define EAGAIN 11
#define ENOMEM 12
#define EACCES 13
#define EFAULT 14
#define EBUSY 16
#define ENODEV 19
#define EINVAL 22
#define ENOTTY 25
#define ENOSPC 28
#define EPIPE 32
#define ERANGE 34
#define ENOSYS 38
#define ENODATA 61
#define ENONET 64
#define EBADFD 77
#define EUSERS 87
#define EPROTO 71
#define EOVERFLOW 75
#define EDESTADDRREQ 89
#define EMSGSIZE 90
#define ENOPROTOOPT 92
#define EPROTONOSUPPORT 93
#define EOPNOTSUPP 95
#define EAFNOSUPPORT 97
#define EADDRINUSE 98
#define EADDRNOTAVAIL 99
#define ENOBUFS 105
#define EISCONN 106
#define ENOTCONN 107
#define ETIMEDOUT 110
#define EALREADY 114
#define EINPROGRESS 115

#define THIS_MODULE 0
#define NULL 0
#define GFP_KERNEL 0
#define GFP_ATOMIC 1

/* open flags */
#define O_RDONLY 0
#define O_WRONLY 1
#define O_RDWR 2
#define O_NONBLOCK 2048

/* socket families used by the corpus */
#define AF_UNSPEC 0
#define AF_UNIX 1
#define AF_INET 2
#define AF_INET6 10
#define AF_NETLINK 16
#define AF_PACKET 17
#define AF_RDS 21
#define AF_PPPOX 24
#define AF_LLC 26
#define AF_BLUETOOTH 31
#define AF_PHONET 35
#define AF_CAIF 37
#define AF_VSOCK 40
#define SOCK_STREAM 1
#define SOCK_DGRAM 2
#define SOCK_RAW 3
#define SOCK_SEQPACKET 5

struct inode {
  u32 i_rdev;
};

struct file {
  void *private_data;
  u32 f_flags;
};

struct file_operations {
  int (*open)(struct inode *, struct file *);
  int (*release)(struct inode *, struct file *);
  long (*unlocked_ioctl)(struct file *, unsigned int, unsigned long);
  long (*compat_ioctl)(struct file *, unsigned int, unsigned long);
  u32 (*poll)(struct file *, poll_table *);
  ssize_t (*read)(struct file *, char *, size_t, loff_t *);
  ssize_t (*write)(struct file *, char *, size_t, loff_t *);
  int (*mmap)(struct file *, void *);
  loff_t (*llseek)(struct file *, loff_t, int);
  void *owner;
};

struct miscdevice {
  int minor;
  const char *name;
  const char *nodename;
  const struct file_operations *fops;
};

struct sockaddr {
  u16 sa_family;
  char sa_data[14];
};

struct msghdr {
  void *msg_name;
  u32 msg_namelen;
  void *msg_iov;
  size_t msg_iovlen;
  void *msg_control;
  size_t msg_controllen;
  u32 msg_flags;
};

struct socket {
  void *sk;
  u32 state;
  u32 sk_type;
};

struct proto_ops {
  int family;
  void *owner;
  int (*release)(struct socket *);
  int (*bind)(struct socket *, struct sockaddr *, int);
  int (*connect)(struct socket *, struct sockaddr *, int, int);
  int (*accept)(struct socket *, struct socket *, int);
  int (*getname)(struct socket *, struct sockaddr *, int);
  u32 (*poll)(struct file *, struct socket *, poll_table *);
  int (*ioctl)(struct socket *, unsigned int, unsigned long);
  int (*listen)(struct socket *, int);
  int (*shutdown)(struct socket *, int);
  int (*setsockopt)(struct socket *, int, int, char *, unsigned int);
  int (*getsockopt)(struct socket *, int, int, char *, int *);
  int (*sendmsg)(struct socket *, struct msghdr *, size_t);
  int (*recvmsg)(struct socket *, struct msghdr *, size_t, int);
};

struct net_proto_family {
  int family;
  void *owner;
};

struct mutex {
  int locked;
};

struct list_head {
  void *next;
  void *prev;
};

struct completion {
  int done;
};
|}

(** Parse the shared header together with a module source. The statement
    id counter is threaded so sids stay globally unique. *)
let parse_with_header ~sid ~file (source : string) : Csrc.Ast.file list =
  let header = Csrc.Parser.parse_file ~file:"include/kernel.h" ~sid kernel_h in
  let body = Csrc.Parser.parse_file ~file ~sid source in
  [ header; body ]
