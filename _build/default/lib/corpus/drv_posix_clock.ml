(** The PTP posix-clock driver ([/dev/ptp0], cdev + [device_create]).

    Injected bug (Table 4): "memory leak in posix_clock_open"
    (CVE-2024-26655) — a second concurrent open fails with -EBUSY after
    the private context has already been allocated. *)

let source =
  {|
#define PTP_CLK_MAGIC '='
#define PTP_MAX_SAMPLES 25

#define PTP_CLOCK_GETCAPS _IOR(PTP_CLK_MAGIC, 1, struct ptp_clock_caps)
#define PTP_EXTTS_REQUEST _IOW(PTP_CLK_MAGIC, 2, struct ptp_extts_request)
#define PTP_PEROUT_REQUEST _IOW(PTP_CLK_MAGIC, 3, struct ptp_perout_request)
#define PTP_ENABLE_PPS _IOW(PTP_CLK_MAGIC, 4, int)
#define PTP_SYS_OFFSET _IOW(PTP_CLK_MAGIC, 5, struct ptp_sys_offset)

struct ptp_clock_caps {
  int max_adj;      /* maximum frequency adjustment in ppb */
  int n_alarm;
  int n_ext_ts;
  int n_per_out;
  int pps;
  int n_pins;
  int cross_timestamping;
  int adjust_phase;
  int rsv[12];
};

struct ptp_clock_time {
  s64 sec;
  u32 nsec;
  u32 reserved;
};

struct ptp_extts_request {
  u32 index;
  u32 flags;
  u32 rsv[2];
};

struct ptp_perout_request {
  struct ptp_clock_time start;
  struct ptp_clock_time period;
  u32 index;
  u32 flags;
  u32 rsv[4];
};

struct ptp_sys_offset {
  u32 n_samples;   /* number of time samples requested */
  u32 rsv[3];
};

struct posix_clock_context {
  int mode;
  void *private_clkdata;
};

static int _ptp_open_count;
static int _ptp_pps_enabled;

static int posix_clock_open(struct inode *inode, struct file *fp)
{
  struct posix_clock_context *pccontext;
  pccontext = kzalloc(sizeof(struct posix_clock_context), GFP_KERNEL);
  if (!pccontext)
    return -ENOMEM;
  pccontext->mode = 1;
  if (_ptp_open_count > 0) {
    /* exclusive clock: the error path leaks pccontext */
    return -EBUSY;
  }
  _ptp_open_count = _ptp_open_count + 1;
  fp->private_data = pccontext;
  return 0;
}

static int posix_clock_release(struct inode *inode, struct file *fp)
{
  struct posix_clock_context *pccontext;
  pccontext = (struct posix_clock_context *)fp->private_data;
  if (pccontext)
    kfree(pccontext);
  _ptp_open_count = _ptp_open_count - 1;
  fp->private_data = 0;
  return 0;
}

static long ptp_ioctl(struct posix_clock_context *pccontext, unsigned int cmd,
                      unsigned long arg)
{
  struct ptp_clock_caps caps;
  struct ptp_extts_request extts;
  struct ptp_perout_request perout;
  struct ptp_sys_offset sysoff;
  int enable;
  switch (cmd) {
  case PTP_CLOCK_GETCAPS:
    memset(&caps, 0, sizeof(struct ptp_clock_caps));
    caps.max_adj = 23999999;
    caps.n_ext_ts = 2;
    caps.pps = 1;
    if (copy_to_user((void *)arg, &caps, sizeof(struct ptp_clock_caps)))
      return -EFAULT;
    return 0;
  case PTP_EXTTS_REQUEST:
    if (copy_from_user(&extts, (void *)arg, sizeof(struct ptp_extts_request)))
      return -EFAULT;
    if (extts.index >= 2)
      return -EINVAL;
    return 0;
  case PTP_PEROUT_REQUEST:
    if (copy_from_user(&perout, (void *)arg, sizeof(struct ptp_perout_request)))
      return -EFAULT;
    if (perout.index >= 1)
      return -EINVAL;
    if (perout.period.sec == 0 && perout.period.nsec == 0)
      return -EINVAL;
    return 0;
  case PTP_ENABLE_PPS:
    if (copy_from_user(&enable, (void *)arg, 4))
      return -EFAULT;
    if (!capable(0))
      return -EPERM;
    _ptp_pps_enabled = enable;
    return 0;
  case PTP_SYS_OFFSET:
    if (copy_from_user(&sysoff, (void *)arg, sizeof(struct ptp_sys_offset)))
      return -EFAULT;
    if (sysoff.n_samples > PTP_MAX_SAMPLES)
      return -EINVAL;
    return 0;
  default:
    return -ENOTTY;
  }
}

static long posix_clock_ioctl(struct file *fp, unsigned int cmd, unsigned long arg)
{
  struct posix_clock_context *pccontext;
  pccontext = (struct posix_clock_context *)fp->private_data;
  if (!pccontext)
    return -ENODEV;
  return ptp_ioctl(pccontext, cmd, arg);
}

static const struct file_operations posix_clock_file_operations = {
  .open = posix_clock_open,
  .release = posix_clock_release,
  .unlocked_ioctl = posix_clock_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int ptp_clock_register(void)
{
  cdev_init(0, &posix_clock_file_operations);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "ptp%d");
  return 0;
}
|}

let commands =
  [
    ("PTP_CLOCK_GETCAPS", Some "ptp_clock_caps", Syzlang.Ast.Out);
    ("PTP_EXTTS_REQUEST", Some "ptp_extts_request", Syzlang.Ast.In);
    ("PTP_PEROUT_REQUEST", Some "ptp_perout_request", Syzlang.Ast.In);
    ("PTP_ENABLE_PPS", None, Syzlang.Ast.In);
    ("PTP_SYS_OFFSET", Some "ptp_sys_offset", Syzlang.Ast.In);
  ]

let entry : Types.entry =
  Types.driver_entry ~name:"posix_clock" ~display_name:"ptp0"
    ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/ptp0" ];
        gt_fops = "posix_clock_file_operations";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()
