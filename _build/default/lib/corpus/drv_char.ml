(** Character-device drivers of Table 5: hpet, nvram, rtc0, ptmx, fuse,
    snapshot and uinput. A mix of registration and dispatch idioms so the
    analyses face the same variety the paper describes. *)

(* ------------------------------------------------------------------ *)
(* hpet                                                                *)
(* ------------------------------------------------------------------ *)

let hpet_source =
  {|
#define HPET_IE_ON _IO('h', 1)
#define HPET_IE_OFF _IO('h', 2)
#define HPET_INFO _IOR('h', 3, struct hpet_info)
#define HPET_EPI _IO('h', 4)
#define HPET_DPI _IO('h', 5)
#define HPET_IRQFREQ _IOW('h', 6, unsigned long)
#define HPET_MAX_FREQ 100000

struct hpet_info {
  unsigned long hi_ireqfreq;    /* Hz */
  unsigned long hi_flags;
  unsigned short hi_hpet;
  unsigned short hi_timer;
};

struct hpet_dev {
  int ie_on;
  int periodic;
  unsigned long freq;
};

static struct hpet_dev _hpet;

static int hpet_ioctl_common(struct hpet_dev *devp, unsigned int cmd, unsigned long arg,
                             struct hpet_info *info)
{
  switch (cmd) {
  case HPET_IE_ON:
    if (devp->freq == 0)
      return -EIO;
    devp->ie_on = 1;
    return 0;
  case HPET_IE_OFF:
    devp->ie_on = 0;
    return 0;
  case HPET_INFO:
    info->hi_ireqfreq = devp->freq;
    info->hi_flags = devp->ie_on;
    info->hi_hpet = 0;
    info->hi_timer = 2;
    return 0;
  case HPET_EPI:
    if (!devp->ie_on)
      return -EIO;
    devp->periodic = 1;
    return 0;
  case HPET_DPI:
    devp->periodic = 0;
    return 0;
  case HPET_IRQFREQ:
    if (arg == 0)
      return -EINVAL;
    if (arg > HPET_MAX_FREQ)
      return -EINVAL;
    devp->freq = arg;
    return 0;
  default:
    return -ENOTTY;
  }
}

static long hpet_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct hpet_info info;
  int err;
  err = hpet_ioctl_common(&_hpet, cmd, arg, &info);
  if (err == 0 && cmd == HPET_INFO) {
    if (copy_to_user((void *)arg, &info, sizeof(struct hpet_info)))
      return -EFAULT;
  }
  return err;
}

static int hpet_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations hpet_fops = {
  .open = hpet_open,
  .unlocked_ioctl = hpet_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice hpet_misc = {
  .minor = 228,
  .name = "hpet",
  .fops = &hpet_fops,
};
|}

let hpet_existing_spec =
  {|resource fd_hpet[fd]
openat$hpet(fd const[AT_FDCWD], file ptr[in, string["/dev/hpet"]], flags const[O_RDONLY], mode const[0]) fd_hpet
|}

let hpet_entry : Types.entry =
  Types.driver_entry ~name:"hpet" ~display_name:"hpet"
    ~source:hpet_source ~existing_spec:hpet_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/hpet" ];
        gt_fops = "hpet_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("HPET_IE_ON", None, Syzlang.Ast.In);
              ("HPET_IE_OFF", None, Syzlang.Ast.In);
              ("HPET_INFO", Some "hpet_info", Syzlang.Ast.Out);
              ("HPET_EPI", None, Syzlang.Ast.In);
              ("HPET_DPI", None, Syzlang.Ast.In);
              ("HPET_IRQFREQ", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* nvram                                                               *)
(* ------------------------------------------------------------------ *)

let nvram_source =
  {|
#define NVRAM_INIT _IO('p', 0x40)
#define NVRAM_SETCKS _IO('p', 0x41)
#define NVRAM_SIZE 114

static u8 _nvram_contents[114];
static int _nvram_checksum_valid;

static long nvram_misc_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  int i;
  switch (cmd) {
  case NVRAM_INIT:
    if (!capable(0))
      return -EACCES;
    for (i = 0; i < NVRAM_SIZE; i = i + 1)
      _nvram_contents[i] = 0;
    _nvram_checksum_valid = 0;
    return 0;
  case NVRAM_SETCKS:
    if (!capable(0))
      return -EACCES;
    _nvram_checksum_valid = 1;
    return 0;
  default:
    return -ENOTTY;
  }
}

static ssize_t nvram_misc_read(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (count > NVRAM_SIZE)
    count = NVRAM_SIZE;
  if (!_nvram_checksum_valid)
    return -EIO;
  return count;
}

static ssize_t nvram_misc_write(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (count > NVRAM_SIZE)
    return -ENOSPC;
  _nvram_checksum_valid = 0;
  return count;
}

static const struct file_operations nvram_misc_fops = {
  .read = nvram_misc_read,
  .write = nvram_misc_write,
  .unlocked_ioctl = nvram_misc_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice nvram_misc = {
  .minor = 144,
  .name = "nvram",
  .fops = &nvram_misc_fops,
};
|}

let nvram_existing_spec =
  {|resource fd_nvram[fd]
openat$nvram(fd const[AT_FDCWD], file ptr[in, string["/dev/nvram"]], flags const[O_RDWR], mode const[0]) fd_nvram
|}

let nvram_entry : Types.entry =
  Types.driver_entry ~name:"nvram" ~display_name:"nvram"
    ~source:nvram_source ~existing_spec:nvram_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/nvram" ];
        gt_fops = "nvram_misc_fops";
        gt_socket = None;
        gt_ioctls =
          [
            { Types.gc_name = "NVRAM_INIT"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "NVRAM_SETCKS"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "read"; "write" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* rtc0                                                                *)
(* ------------------------------------------------------------------ *)

let rtc_source =
  {|
#define RTC_AIE_ON _IO('p', 0x01)
#define RTC_AIE_OFF _IO('p', 0x02)
#define RTC_UIE_ON _IO('p', 0x03)
#define RTC_UIE_OFF _IO('p', 0x04)
#define RTC_PIE_ON _IO('p', 0x05)
#define RTC_PIE_OFF _IO('p', 0x06)
#define RTC_ALM_SET _IOW('p', 0x07, struct rtc_time)
#define RTC_ALM_READ _IOR('p', 0x08, struct rtc_time)
#define RTC_RD_TIME _IOR('p', 0x09, struct rtc_time)
#define RTC_SET_TIME _IOW('p', 0x0a, struct rtc_time)
#define RTC_IRQP_READ _IOR('p', 0x0b, unsigned long)
#define RTC_IRQP_SET _IOW('p', 0x0c, unsigned long)
#define RTC_WKALM_SET _IOW('p', 0x0f, struct rtc_wkalrm)
#define RTC_WKALM_RD _IOR('p', 0x10, struct rtc_wkalrm)
#define RTC_MAX_FREQ 8192

struct rtc_time {
  int tm_sec;
  int tm_min;
  int tm_hour;
  int tm_mday;
  int tm_mon;
  int tm_year;
  int tm_wday;
  int tm_yday;
  int tm_isdst;
};

struct rtc_wkalrm {
  u8 enabled;
  u8 pending;
  struct rtc_time time;
};

struct rtc_device_state {
  int aie;
  int uie;
  int pie;
  unsigned long irq_freq;
  struct rtc_time alarm;
};

static struct rtc_device_state _rtc;

static int rtc_valid_tm(struct rtc_time *tm)
{
  if (tm->tm_sec < 0 || tm->tm_sec > 59)
    return -EINVAL;
  if (tm->tm_min < 0 || tm->tm_min > 59)
    return -EINVAL;
  if (tm->tm_hour < 0 || tm->tm_hour > 23)
    return -EINVAL;
  if (tm->tm_mday < 1 || tm->tm_mday > 31)
    return -EINVAL;
  if (tm->tm_mon < 0 || tm->tm_mon > 11)
    return -EINVAL;
  return 0;
}

static long rtc_dev_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct rtc_time tm;
  struct rtc_wkalrm alarm;
  unsigned long freq;
  int err;
  switch (cmd) {
  case RTC_AIE_ON:
    _rtc.aie = 1;
    return 0;
  case RTC_AIE_OFF:
    _rtc.aie = 0;
    return 0;
  case RTC_UIE_ON:
    _rtc.uie = 1;
    return 0;
  case RTC_UIE_OFF:
    _rtc.uie = 0;
    return 0;
  case RTC_PIE_ON:
    if (_rtc.irq_freq == 0)
      return -EINVAL;
    _rtc.pie = 1;
    return 0;
  case RTC_PIE_OFF:
    _rtc.pie = 0;
    return 0;
  case RTC_ALM_SET:
    if (copy_from_user(&tm, (void *)arg, sizeof(struct rtc_time)))
      return -EFAULT;
    err = rtc_valid_tm(&tm);
    if (err)
      return err;
    _rtc.alarm.tm_sec = tm.tm_sec;
    _rtc.alarm.tm_min = tm.tm_min;
    _rtc.alarm.tm_hour = tm.tm_hour;
    return 0;
  case RTC_ALM_READ:
    if (copy_to_user((void *)arg, &_rtc.alarm, sizeof(struct rtc_time)))
      return -EFAULT;
    return 0;
  case RTC_RD_TIME:
    tm.tm_year = 126;
    tm.tm_mon = 6;
    tm.tm_mday = 5;
    if (copy_to_user((void *)arg, &tm, sizeof(struct rtc_time)))
      return -EFAULT;
    return 0;
  case RTC_SET_TIME:
    if (!capable(0))
      return -EACCES;
    if (copy_from_user(&tm, (void *)arg, sizeof(struct rtc_time)))
      return -EFAULT;
    return rtc_valid_tm(&tm);
  case RTC_IRQP_READ:
    if (copy_to_user((void *)arg, &_rtc.irq_freq, 8))
      return -EFAULT;
    return 0;
  case RTC_IRQP_SET:
    freq = arg;
    if (freq == 0 || freq > RTC_MAX_FREQ)
      return -EINVAL;
    if (freq & (freq - 1))
      return -EINVAL;
    _rtc.irq_freq = freq;
    return 0;
  case RTC_WKALM_SET:
    if (copy_from_user(&alarm, (void *)arg, sizeof(struct rtc_wkalrm)))
      return -EFAULT;
    if (alarm.enabled > 1)
      return -EINVAL;
    return rtc_valid_tm(&alarm.time);
  case RTC_WKALM_RD:
    if (copy_to_user((void *)arg, &alarm, sizeof(struct rtc_wkalrm)))
      return -EFAULT;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int rtc_dev_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations rtc_dev_fops = {
  .open = rtc_dev_open,
  .unlocked_ioctl = rtc_dev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int rtc_dev_init(void)
{
  cdev_init(0, &rtc_dev_fops);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "rtc0");
  return 0;
}
|}

let rtc_existing_spec =
  {|resource fd_rtc[fd]
openat$rtc(fd const[AT_FDCWD], file ptr[in, string["/dev/rtc0"]], flags const[O_RDWR], mode const[0]) fd_rtc
ioctl$RTC_AIE_ON(fd fd_rtc, cmd const[RTC_AIE_ON], arg const[0])
ioctl$RTC_AIE_OFF(fd fd_rtc, cmd const[RTC_AIE_OFF], arg const[0])
ioctl$RTC_UIE_ON(fd fd_rtc, cmd const[RTC_UIE_ON], arg const[0])
ioctl$RTC_UIE_OFF(fd fd_rtc, cmd const[RTC_UIE_OFF], arg const[0])
ioctl$RTC_RD_TIME(fd fd_rtc, cmd const[RTC_RD_TIME], arg ptr[out, rtc_time])
ioctl$RTC_ALM_SET(fd fd_rtc, cmd const[RTC_ALM_SET], arg ptr[in, rtc_time])
ioctl$RTC_ALM_READ(fd fd_rtc, cmd const[RTC_ALM_READ], arg ptr[out, rtc_time])
ioctl$RTC_IRQP_SET(fd fd_rtc, cmd const[RTC_IRQP_SET], arg intptr)

rtc_time {
	tm_sec int32
	tm_min int32
	tm_hour int32
	tm_mday int32
	tm_mon int32
	tm_year int32
	tm_wday int32
	tm_yday int32
	tm_isdst int32
}
|}

let rtc_entry : Types.entry =
  Types.driver_entry ~name:"rtc" ~display_name:"rtc#"
    ~source:rtc_source ~existing_spec:rtc_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/rtc0" ];
        gt_fops = "rtc_dev_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("RTC_AIE_ON", None, Syzlang.Ast.In);
              ("RTC_AIE_OFF", None, Syzlang.Ast.In);
              ("RTC_UIE_ON", None, Syzlang.Ast.In);
              ("RTC_UIE_OFF", None, Syzlang.Ast.In);
              ("RTC_PIE_ON", None, Syzlang.Ast.In);
              ("RTC_PIE_OFF", None, Syzlang.Ast.In);
              ("RTC_ALM_SET", Some "rtc_time", Syzlang.Ast.In);
              ("RTC_ALM_READ", Some "rtc_time", Syzlang.Ast.Out);
              ("RTC_RD_TIME", Some "rtc_time", Syzlang.Ast.Out);
              ("RTC_SET_TIME", Some "rtc_time", Syzlang.Ast.In);
              ("RTC_IRQP_READ", None, Syzlang.Ast.Out);
              ("RTC_IRQP_SET", None, Syzlang.Ast.In);
              ("RTC_WKALM_SET", Some "rtc_wkalrm", Syzlang.Ast.In);
              ("RTC_WKALM_RD", Some "rtc_wkalrm", Syzlang.Ast.Out);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* ptmx                                                                *)
(* ------------------------------------------------------------------ *)

let ptmx_source =
  {|
#define TCGETS 0x5401
#define TCSETS 0x5402
#define TCSETSW 0x5403
#define TCSETSF 0x5404
#define TCSBRK 0x5409
#define TCXONC 0x540A
#define TCFLSH 0x540B
#define TIOCSCTTY 0x540E
#define TIOCGPGRP 0x540F
#define TIOCSPGRP 0x5410
#define TIOCOUTQ 0x5411
#define TIOCSTI 0x5412
#define TIOCGWINSZ 0x5413
#define TIOCSWINSZ 0x5414
#define TIOCMGET 0x5415
#define TIOCMSET 0x5418
#define TIOCGPTN 0x80045430
#define TIOCSPTLCK 0x40045431
#define TIOCGPTLCK 0x80045439
#define TIOCSIG 0x40045436
#define TIOCPKT 0x5420
#define FIONREAD 0x541B

struct termios {
  u32 c_iflag;
  u32 c_oflag;
  u32 c_cflag;
  u32 c_lflag;
  u8 c_line;
  u8 c_cc[19];
};

struct winsize {
  u16 ws_row;
  u16 ws_col;
  u16 ws_xpixel;
  u16 ws_ypixel;
};

struct pty_state {
  int locked;
  int pkt_mode;
  u32 pgrp;
  struct termios tio;
  struct winsize ws;
};

static struct pty_state _pty;

static long pty_unix98_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct termios tio;
  struct winsize ws;
  int val;
  switch (cmd) {
  case TCGETS:
    if (copy_to_user((void *)arg, &_pty.tio, sizeof(struct termios)))
      return -EFAULT;
    return 0;
  case TCSETS:
  case TCSETSW:
  case TCSETSF:
    if (copy_from_user(&tio, (void *)arg, sizeof(struct termios)))
      return -EFAULT;
    _pty.tio.c_iflag = tio.c_iflag;
    _pty.tio.c_lflag = tio.c_lflag;
    return 0;
  case TCSBRK:
    if (arg > 1)
      return -EINVAL;
    return 0;
  case TCXONC:
    if (arg > 3)
      return -EINVAL;
    return 0;
  case TCFLSH:
    if (arg > 2)
      return -EINVAL;
    return 0;
  case TIOCSCTTY:
    return 0;
  case TIOCGPGRP:
    if (copy_to_user((void *)arg, &_pty.pgrp, 4))
      return -EFAULT;
    return 0;
  case TIOCSPGRP:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 0)
      return -EINVAL;
    _pty.pgrp = val;
    return 0;
  case TIOCOUTQ:
    val = 0;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case TIOCSTI:
    if (!capable(0))
      return -EPERM;
    return 0;
  case TIOCGWINSZ:
    if (copy_to_user((void *)arg, &_pty.ws, sizeof(struct winsize)))
      return -EFAULT;
    return 0;
  case TIOCSWINSZ:
    if (copy_from_user(&ws, (void *)arg, sizeof(struct winsize)))
      return -EFAULT;
    _pty.ws.ws_row = ws.ws_row;
    _pty.ws.ws_col = ws.ws_col;
    return 0;
  case TIOCMGET:
    val = 6;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case TIOCMSET:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    return 0;
  case TIOCGPTN:
    val = 0;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case TIOCSPTLCK:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _pty.locked = val != 0;
    return 0;
  case TIOCGPTLCK:
    if (copy_to_user((void *)arg, &_pty.locked, 4))
      return -EFAULT;
    return 0;
  case TIOCSIG:
    if (arg > 64)
      return -EINVAL;
    return 0;
  case TIOCPKT:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _pty.pkt_mode = val != 0;
    return 0;
  case FIONREAD:
    val = 0;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int ptmx_open(struct inode *inode, struct file *filp)
{
  _pty.locked = 1;
  return 0;
}

static ssize_t pty_read(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (_pty.locked)
    return -EIO;
  return 0;
}

static ssize_t pty_write(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (count > 4096)
    count = 4096;
  return count;
}

static const struct file_operations ptmx_fops = {
  .open = ptmx_open,
  .read = pty_read,
  .write = pty_write,
  .unlocked_ioctl = pty_unix98_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int pty_init(void)
{
  cdev_init(0, &ptmx_fops);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "ptmx");
  return 0;
}
|}

(* ptmx is one of the best hand-specified drivers: Syzkaller describes
   nearly everything (the row Syzkaller wins in Table 5). *)
let ptmx_existing_spec =
  {|resource fd_ptmx[fd]
openat$ptmx(fd const[AT_FDCWD], file ptr[in, string["/dev/ptmx"]], flags const[O_RDWR], mode const[0]) fd_ptmx
read$ptmx(fd fd_ptmx, buf ptr[out, array[int8]], len intptr)
write$ptmx(fd fd_ptmx, buf ptr[in, array[int8]], len intptr)
ioctl$TCGETS(fd fd_ptmx, cmd const[TCGETS], arg ptr[out, termios])
ioctl$TCSETS(fd fd_ptmx, cmd const[TCSETS], arg ptr[in, termios])
ioctl$TCSETSW(fd fd_ptmx, cmd const[TCSETSW], arg ptr[in, termios])
ioctl$TCSETSF(fd fd_ptmx, cmd const[TCSETSF], arg ptr[in, termios])
ioctl$TCSBRK(fd fd_ptmx, cmd const[TCSBRK], arg intptr)
ioctl$TCXONC(fd fd_ptmx, cmd const[TCXONC], arg intptr)
ioctl$TCFLSH(fd fd_ptmx, cmd const[TCFLSH], arg intptr)
ioctl$TIOCSCTTY(fd fd_ptmx, cmd const[TIOCSCTTY], arg intptr)
ioctl$TIOCGPGRP(fd fd_ptmx, cmd const[TIOCGPGRP], arg ptr[out, int32])
ioctl$TIOCSPGRP(fd fd_ptmx, cmd const[TIOCSPGRP], arg ptr[in, int32])
ioctl$TIOCOUTQ(fd fd_ptmx, cmd const[TIOCOUTQ], arg ptr[out, int32])
ioctl$TIOCSTI(fd fd_ptmx, cmd const[TIOCSTI], arg ptr[in, int8])
ioctl$TIOCGWINSZ(fd fd_ptmx, cmd const[TIOCGWINSZ], arg ptr[out, winsize])
ioctl$TIOCSWINSZ(fd fd_ptmx, cmd const[TIOCSWINSZ], arg ptr[in, winsize])
ioctl$TIOCMGET(fd fd_ptmx, cmd const[TIOCMGET], arg ptr[out, int32])
ioctl$TIOCMSET(fd fd_ptmx, cmd const[TIOCMSET], arg ptr[in, int32])
ioctl$TIOCGPTN(fd fd_ptmx, cmd const[TIOCGPTN], arg ptr[out, int32])
ioctl$TIOCSPTLCK(fd fd_ptmx, cmd const[TIOCSPTLCK], arg ptr[in, int32])
ioctl$TIOCGPTLCK(fd fd_ptmx, cmd const[TIOCGPTLCK], arg ptr[out, int32])
ioctl$TIOCSIG(fd fd_ptmx, cmd const[TIOCSIG], arg intptr)
ioctl$TIOCPKT(fd fd_ptmx, cmd const[TIOCPKT], arg ptr[in, int32])
ioctl$FIONREAD(fd fd_ptmx, cmd const[FIONREAD], arg ptr[out, int32])

termios {
	c_iflag int32
	c_oflag int32
	c_cflag int32
	c_lflag int32
	c_line int8
	c_cc array[int8, 19]
}
winsize {
	ws_row int16
	ws_col int16
	ws_xpixel int16
	ws_ypixel int16
}
|}

let ptmx_entry : Types.entry =
  Types.driver_entry ~name:"ptmx" ~display_name:"ptmx"
    ~source:ptmx_source ~existing_spec:ptmx_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/ptmx" ];
        gt_fops = "ptmx_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("TCGETS", Some "termios", Syzlang.Ast.Out);
              ("TCSETS", Some "termios", Syzlang.Ast.In);
              ("TCSETSW", Some "termios", Syzlang.Ast.In);
              ("TCSETSF", Some "termios", Syzlang.Ast.In);
              ("TCSBRK", None, Syzlang.Ast.In);
              ("TCXONC", None, Syzlang.Ast.In);
              ("TCFLSH", None, Syzlang.Ast.In);
              ("TIOCSCTTY", None, Syzlang.Ast.In);
              ("TIOCGPGRP", None, Syzlang.Ast.Out);
              ("TIOCSPGRP", None, Syzlang.Ast.In);
              ("TIOCOUTQ", None, Syzlang.Ast.Out);
              ("TIOCSTI", None, Syzlang.Ast.In);
              ("TIOCGWINSZ", Some "winsize", Syzlang.Ast.Out);
              ("TIOCSWINSZ", Some "winsize", Syzlang.Ast.In);
              ("TIOCMGET", None, Syzlang.Ast.Out);
              ("TIOCMSET", None, Syzlang.Ast.In);
              ("TIOCGPTN", None, Syzlang.Ast.Out);
              ("TIOCSPTLCK", None, Syzlang.Ast.In);
              ("TIOCGPTLCK", None, Syzlang.Ast.Out);
              ("TIOCSIG", None, Syzlang.Ast.In);
              ("TIOCPKT", None, Syzlang.Ast.In);
              ("FIONREAD", None, Syzlang.Ast.Out);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "read"; "write" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* fuse                                                                *)
(* ------------------------------------------------------------------ *)

let fuse_source =
  {|
#define FUSE_MIN_READ_BUFFER 8192
#define FUSE_INIT_OP 26

struct fuse_in_header {
  u32 len;      /* total length of the request */
  u32 opcode;
  u64 unique;
  u64 nodeid;
  u32 uid;
  u32 gid;
  u32 pid;
};

struct fuse_conn {
  int initialized;
  int aborted;
  u32 max_write;
};

static struct fuse_conn _fuse_conn;

static ssize_t fuse_dev_read(struct file *file, char *buf, size_t nbytes, loff_t *ppos)
{
  if (nbytes < FUSE_MIN_READ_BUFFER)
    return -EINVAL;
  if (!_fuse_conn.initialized)
    return -EPERM;
  if (_fuse_conn.aborted)
    return -ENODEV;
  return 0;
}

static ssize_t fuse_dev_write(struct file *file, char *buf, size_t nbytes, loff_t *ppos)
{
  if (nbytes < 16)
    return -EINVAL;
  _fuse_conn.initialized = 1;
  return nbytes;
}

static int fuse_dev_open(struct inode *inode, struct file *file)
{
  return 0;
}

static int fuse_dev_release(struct inode *inode, struct file *file)
{
  _fuse_conn.aborted = 1;
  return 0;
}

static const struct file_operations fuse_dev_operations = {
  .open = fuse_dev_open,
  .release = fuse_dev_release,
  .read = fuse_dev_read,
  .write = fuse_dev_write,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice fuse_miscdevice = {
  .minor = 229,
  .name = "fuse",
  .fops = &fuse_dev_operations,
};
|}

let fuse_existing_spec =
  {|resource fd_fuse[fd]
openat$fuse(fd const[AT_FDCWD], file ptr[in, string["/dev/fuse"]], flags const[O_RDWR], mode const[0]) fd_fuse
read$fuse(fd fd_fuse, buf ptr[out, array[int8]], len intptr)
|}

let fuse_entry : Types.entry =
  Types.driver_entry ~name:"fuse" ~display_name:"fuse"
    ~source:fuse_source ~existing_spec:fuse_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/fuse" ];
        gt_fops = "fuse_dev_operations";
        gt_socket = None;
        gt_ioctls = [];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "read"; "write"; "close" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_source =
  {|
#define SNAPSHOT_IOC_MAGIC '3'
#define SNAPSHOT_FREEZE _IO(SNAPSHOT_IOC_MAGIC, 1)
#define SNAPSHOT_UNFREEZE _IO(SNAPSHOT_IOC_MAGIC, 2)
#define SNAPSHOT_ATOMIC_RESTORE _IO(SNAPSHOT_IOC_MAGIC, 4)
#define SNAPSHOT_FREE _IO(SNAPSHOT_IOC_MAGIC, 5)
#define SNAPSHOT_FREE_SWAP_PAGES _IO(SNAPSHOT_IOC_MAGIC, 9)
#define SNAPSHOT_S2RAM _IO(SNAPSHOT_IOC_MAGIC, 11)
#define SNAPSHOT_SET_SWAP_AREA _IOW(SNAPSHOT_IOC_MAGIC, 13, struct resume_swap_area)
#define SNAPSHOT_GET_IMAGE_SIZE _IOR(SNAPSHOT_IOC_MAGIC, 14, u64)
#define SNAPSHOT_PLATFORM_SUPPORT _IO(SNAPSHOT_IOC_MAGIC, 15)
#define SNAPSHOT_POWER_OFF _IO(SNAPSHOT_IOC_MAGIC, 16)
#define SNAPSHOT_CREATE_IMAGE _IOW(SNAPSHOT_IOC_MAGIC, 17, int)
#define SNAPSHOT_PREF_IMAGE_SIZE _IO(SNAPSHOT_IOC_MAGIC, 18)
#define SNAPSHOT_AVAIL_SWAP_SIZE _IOR(SNAPSHOT_IOC_MAGIC, 19, u64)
#define SNAPSHOT_ALLOC_SWAP_PAGE _IOR(SNAPSHOT_IOC_MAGIC, 20, u64)

struct resume_swap_area {
  u64 offset;
  u32 dev;
};

struct snapshot_data {
  int frozen;
  int image_created;
  int swap_set;
  u64 image_size;
};

static struct snapshot_data _snapshot;

static long snapshot_ioctl(struct file *filp, unsigned int cmd, unsigned long arg)
{
  struct resume_swap_area swap_area;
  u64 size;
  int in_suspend;
  if (!capable(0))
    return -EPERM;
  switch (cmd) {
  case SNAPSHOT_FREEZE:
    if (_snapshot.frozen)
      return -EBUSY;
    _snapshot.frozen = 1;
    return 0;
  case SNAPSHOT_UNFREEZE:
    if (!_snapshot.frozen)
      return -EINVAL;
    if (_snapshot.image_created)
      return -EBUSY;
    _snapshot.frozen = 0;
    return 0;
  case SNAPSHOT_CREATE_IMAGE:
    if (!_snapshot.frozen)
      return -EPERM;
    if (copy_from_user(&in_suspend, (void *)arg, 4))
      return -EFAULT;
    _snapshot.image_created = 1;
    _snapshot.image_size = 4096;
    return 0;
  case SNAPSHOT_ATOMIC_RESTORE:
    if (!_snapshot.image_created)
      return -EPERM;
    return 0;
  case SNAPSHOT_FREE:
    _snapshot.image_created = 0;
    _snapshot.image_size = 0;
    return 0;
  case SNAPSHOT_FREE_SWAP_PAGES:
    return 0;
  case SNAPSHOT_S2RAM:
    if (!_snapshot.frozen)
      return -EPERM;
    return 0;
  case SNAPSHOT_SET_SWAP_AREA:
    if (_snapshot.image_created)
      return -EBUSY;
    if (copy_from_user(&swap_area, (void *)arg, sizeof(struct resume_swap_area)))
      return -EFAULT;
    _snapshot.swap_set = 1;
    return 0;
  case SNAPSHOT_GET_IMAGE_SIZE:
    if (!_snapshot.image_created)
      return -ENODATA;
    if (copy_to_user((void *)arg, &_snapshot.image_size, 8))
      return -EFAULT;
    return 0;
  case SNAPSHOT_PLATFORM_SUPPORT:
    return 0;
  case SNAPSHOT_POWER_OFF:
    return 0;
  case SNAPSHOT_PREF_IMAGE_SIZE:
    return 0;
  case SNAPSHOT_AVAIL_SWAP_SIZE:
    size = 1048576;
    if (copy_to_user((void *)arg, &size, 8))
      return -EFAULT;
    return 0;
  case SNAPSHOT_ALLOC_SWAP_PAGE:
    if (!_snapshot.swap_set)
      return -ENODEV;
    size = 8;
    if (copy_to_user((void *)arg, &size, 8))
      return -EFAULT;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int snapshot_open(struct inode *inode, struct file *filp)
{
  return 0;
}

static int snapshot_release(struct inode *inode, struct file *filp)
{
  _snapshot.frozen = 0;
  _snapshot.image_created = 0;
  return 0;
}

static const struct file_operations snapshot_fops = {
  .open = snapshot_open,
  .release = snapshot_release,
  .unlocked_ioctl = snapshot_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice snapshot_device = {
  .minor = 231,
  .name = "snapshot",
  .fops = &snapshot_fops,
};
|}

let snapshot_existing_spec =
  {|resource fd_snapshot[fd]
openat$snapshot(fd const[AT_FDCWD], file ptr[in, string["/dev/snapshot"]], flags const[O_RDWR], mode const[0]) fd_snapshot
ioctl$SNAPSHOT_FREEZE(fd fd_snapshot, cmd const[SNAPSHOT_FREEZE], arg const[0])
ioctl$SNAPSHOT_UNFREEZE(fd fd_snapshot, cmd const[SNAPSHOT_UNFREEZE], arg const[0])
ioctl$SNAPSHOT_ATOMIC_RESTORE(fd fd_snapshot, cmd const[SNAPSHOT_ATOMIC_RESTORE], arg const[0])
ioctl$SNAPSHOT_FREE(fd fd_snapshot, cmd const[SNAPSHOT_FREE], arg const[0])
ioctl$SNAPSHOT_FREE_SWAP_PAGES(fd fd_snapshot, cmd const[SNAPSHOT_FREE_SWAP_PAGES], arg const[0])
ioctl$SNAPSHOT_S2RAM(fd fd_snapshot, cmd const[SNAPSHOT_S2RAM], arg const[0])
ioctl$SNAPSHOT_SET_SWAP_AREA(fd fd_snapshot, cmd const[SNAPSHOT_SET_SWAP_AREA], arg ptr[in, resume_swap_area])
ioctl$SNAPSHOT_GET_IMAGE_SIZE(fd fd_snapshot, cmd const[SNAPSHOT_GET_IMAGE_SIZE], arg ptr[out, int64])
ioctl$SNAPSHOT_PLATFORM_SUPPORT(fd fd_snapshot, cmd const[SNAPSHOT_PLATFORM_SUPPORT], arg const[0])
ioctl$SNAPSHOT_POWER_OFF(fd fd_snapshot, cmd const[SNAPSHOT_POWER_OFF], arg const[0])
ioctl$SNAPSHOT_CREATE_IMAGE(fd fd_snapshot, cmd const[SNAPSHOT_CREATE_IMAGE], arg ptr[in, int32])
ioctl$SNAPSHOT_PREF_IMAGE_SIZE(fd fd_snapshot, cmd const[SNAPSHOT_PREF_IMAGE_SIZE], arg const[0])

resume_swap_area {
	offset int64
	dev int32
}
|}

let snapshot_entry : Types.entry =
  Types.driver_entry ~name:"snapshot" ~display_name:"snapshot"
    ~source:snapshot_source ~existing_spec:snapshot_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/snapshot" ];
        gt_fops = "snapshot_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("SNAPSHOT_FREEZE", None, Syzlang.Ast.In);
              ("SNAPSHOT_UNFREEZE", None, Syzlang.Ast.In);
              ("SNAPSHOT_ATOMIC_RESTORE", None, Syzlang.Ast.In);
              ("SNAPSHOT_FREE", None, Syzlang.Ast.In);
              ("SNAPSHOT_FREE_SWAP_PAGES", None, Syzlang.Ast.In);
              ("SNAPSHOT_S2RAM", None, Syzlang.Ast.In);
              ("SNAPSHOT_SET_SWAP_AREA", Some "resume_swap_area", Syzlang.Ast.In);
              ("SNAPSHOT_GET_IMAGE_SIZE", None, Syzlang.Ast.Out);
              ("SNAPSHOT_PLATFORM_SUPPORT", None, Syzlang.Ast.In);
              ("SNAPSHOT_POWER_OFF", None, Syzlang.Ast.In);
              ("SNAPSHOT_CREATE_IMAGE", None, Syzlang.Ast.In);
              ("SNAPSHOT_PREF_IMAGE_SIZE", None, Syzlang.Ast.In);
              ("SNAPSHOT_AVAIL_SWAP_SIZE", None, Syzlang.Ast.Out);
              ("SNAPSHOT_ALLOC_SWAP_PAGE", None, Syzlang.Ast.Out);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* uinput                                                              *)
(* ------------------------------------------------------------------ *)

let uinput_source =
  {|
#define UINPUT_IOCTL_BASE 'U'
#define UI_DEV_CREATE _IO(UINPUT_IOCTL_BASE, 1)
#define UI_DEV_DESTROY _IO(UINPUT_IOCTL_BASE, 2)
#define UI_DEV_SETUP _IOW(UINPUT_IOCTL_BASE, 3, struct uinput_setup)
#define UI_ABS_SETUP _IOW(UINPUT_IOCTL_BASE, 4, struct uinput_abs_setup)
#define UI_SET_EVBIT _IOW(UINPUT_IOCTL_BASE, 100, int)
#define UI_SET_KEYBIT _IOW(UINPUT_IOCTL_BASE, 101, int)
#define UI_SET_RELBIT _IOW(UINPUT_IOCTL_BASE, 102, int)
#define UI_SET_ABSBIT _IOW(UINPUT_IOCTL_BASE, 103, int)
#define UI_SET_MSCBIT _IOW(UINPUT_IOCTL_BASE, 104, int)
#define UI_SET_LEDBIT _IOW(UINPUT_IOCTL_BASE, 105, int)
#define UI_SET_SNDBIT _IOW(UINPUT_IOCTL_BASE, 106, int)
#define UI_SET_FFBIT _IOW(UINPUT_IOCTL_BASE, 107, int)
#define UI_SET_PHYS _IOW(UINPUT_IOCTL_BASE, 108, char *)
#define UI_SET_SWBIT _IOW(UINPUT_IOCTL_BASE, 109, int)
#define UI_SET_PROPBIT _IOW(UINPUT_IOCTL_BASE, 110, int)
#define UI_GET_VERSION _IOR(UINPUT_IOCTL_BASE, 45, unsigned int)
#define EV_MAX 31
#define KEY_MAX 767
#define ABS_MAX 63

struct input_id {
  u16 bustype;
  u16 vendor;
  u16 product;
  u16 version;
};

struct uinput_setup {
  struct input_id id;
  char name[80];
  u32 ff_effects_max;
};

struct input_absinfo {
  s32 value;
  s32 minimum;
  s32 maximum;
  s32 fuzz;
  s32 flat;
  s32 resolution;
};

struct uinput_abs_setup {
  u16 code;
  struct input_absinfo absinfo;
};

struct uinput_device {
  int state;          /* 0 = new, 1 = setup done, 2 = created */
  u32 evbits;
  int keybits;
  int absbits;
};

static struct uinput_device _uinput;

static long uinput_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct uinput_setup setup;
  struct uinput_abs_setup abs_setup;
  int bit;
  switch (cmd) {
  case UI_GET_VERSION:
    bit = 5;
    if (copy_to_user((void *)arg, &bit, 4))
      return -EFAULT;
    return 0;
  case UI_DEV_SETUP:
    if (copy_from_user(&setup, (void *)arg, sizeof(struct uinput_setup)))
      return -EFAULT;
    if (strlen(setup.name) == 0)
      return -EINVAL;
    _uinput.state = 1;
    return 0;
  case UI_ABS_SETUP:
    if (copy_from_user(&abs_setup, (void *)arg, sizeof(struct uinput_abs_setup)))
      return -EFAULT;
    if (abs_setup.code > ABS_MAX)
      return -ERANGE;
    if (abs_setup.absinfo.minimum > abs_setup.absinfo.maximum)
      return -EINVAL;
    return 0;
  case UI_DEV_CREATE:
    if (_uinput.state != 1)
      return -EINVAL;
    _uinput.state = 2;
    return 0;
  case UI_DEV_DESTROY:
    _uinput.state = 0;
    return 0;
  case UI_SET_EVBIT:
    if (arg > EV_MAX)
      return -EINVAL;
    if (_uinput.state == 2)
      return -EINVAL;
    _uinput.evbits = _uinput.evbits | (1 << arg);
    return 0;
  case UI_SET_KEYBIT:
    if (arg > KEY_MAX)
      return -EINVAL;
    _uinput.keybits = _uinput.keybits + 1;
    return 0;
  case UI_SET_RELBIT:
    if (arg > 15)
      return -EINVAL;
    return 0;
  case UI_SET_ABSBIT:
    if (arg > ABS_MAX)
      return -EINVAL;
    _uinput.absbits = _uinput.absbits + 1;
    return 0;
  case UI_SET_MSCBIT:
    if (arg > 7)
      return -EINVAL;
    return 0;
  case UI_SET_LEDBIT:
    if (arg > 15)
      return -EINVAL;
    return 0;
  case UI_SET_SNDBIT:
    if (arg > 7)
      return -EINVAL;
    return 0;
  case UI_SET_FFBIT:
    if (arg > 127)
      return -EINVAL;
    return 0;
  case UI_SET_PHYS:
    return 0;
  case UI_SET_SWBIT:
    if (arg > 16)
      return -EINVAL;
    return 0;
  case UI_SET_PROPBIT:
    if (arg > 31)
      return -EINVAL;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int uinput_open(struct inode *inode, struct file *file)
{
  _uinput.state = 0;
  return 0;
}

static ssize_t uinput_write(struct file *file, char *buffer, size_t count, loff_t *ppos)
{
  if (_uinput.state != 2)
    return -ENODEV;
  if (count < 24)
    return -EINVAL;
  return count;
}

static const struct file_operations uinput_fops = {
  .open = uinput_open,
  .write = uinput_write,
  .unlocked_ioctl = uinput_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice uinput_misc = {
  .minor = 223,
  .name = "uinput",
  .fops = &uinput_fops,
};
|}

let uinput_existing_spec =
  {|resource fd_uinput[fd]
openat$uinput(fd const[AT_FDCWD], file ptr[in, string["/dev/uinput"]], flags const[O_RDWR], mode const[0]) fd_uinput
write$uinput(fd fd_uinput, buf ptr[in, array[int8]], len intptr)
ioctl$UI_DEV_CREATE(fd fd_uinput, cmd const[UI_DEV_CREATE], arg const[0])
ioctl$UI_DEV_DESTROY(fd fd_uinput, cmd const[UI_DEV_DESTROY], arg const[0])
ioctl$UI_DEV_SETUP(fd fd_uinput, cmd const[UI_DEV_SETUP], arg ptr[in, uinput_setup])
ioctl$UI_SET_EVBIT(fd fd_uinput, cmd const[UI_SET_EVBIT], arg intptr)
ioctl$UI_SET_KEYBIT(fd fd_uinput, cmd const[UI_SET_KEYBIT], arg intptr)
ioctl$UI_SET_RELBIT(fd fd_uinput, cmd const[UI_SET_RELBIT], arg intptr)
ioctl$UI_SET_ABSBIT(fd fd_uinput, cmd const[UI_SET_ABSBIT], arg intptr)
ioctl$UI_SET_MSCBIT(fd fd_uinput, cmd const[UI_SET_MSCBIT], arg intptr)
ioctl$UI_SET_LEDBIT(fd fd_uinput, cmd const[UI_SET_LEDBIT], arg intptr)
ioctl$UI_SET_SNDBIT(fd fd_uinput, cmd const[UI_SET_SNDBIT], arg intptr)
ioctl$UI_SET_FFBIT(fd fd_uinput, cmd const[UI_SET_FFBIT], arg intptr)
ioctl$UI_SET_PHYS(fd fd_uinput, cmd const[UI_SET_PHYS], arg ptr[in, array[int8]])
ioctl$UI_SET_SWBIT(fd fd_uinput, cmd const[UI_SET_SWBIT], arg intptr)
ioctl$UI_SET_PROPBIT(fd fd_uinput, cmd const[UI_SET_PROPBIT], arg intptr)
ioctl$UI_GET_VERSION(fd fd_uinput, cmd const[UI_GET_VERSION], arg ptr[out, int32])

input_id {
	bustype int16
	vendor int16
	product int16
	version int16
}
uinput_setup {
	id input_id
	name array[int8, 80]
	ff_effects_max int32
}
|}

let uinput_entry : Types.entry =
  Types.driver_entry ~name:"uinput" ~display_name:"uinput"
    ~source:uinput_source ~existing_spec:uinput_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/uinput" ];
        gt_fops = "uinput_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("UI_DEV_CREATE", None, Syzlang.Ast.In);
              ("UI_DEV_DESTROY", None, Syzlang.Ast.In);
              ("UI_DEV_SETUP", Some "uinput_setup", Syzlang.Ast.In);
              ("UI_ABS_SETUP", Some "uinput_abs_setup", Syzlang.Ast.In);
              ("UI_SET_EVBIT", None, Syzlang.Ast.In);
              ("UI_SET_KEYBIT", None, Syzlang.Ast.In);
              ("UI_SET_RELBIT", None, Syzlang.Ast.In);
              ("UI_SET_ABSBIT", None, Syzlang.Ast.In);
              ("UI_SET_MSCBIT", None, Syzlang.Ast.In);
              ("UI_SET_LEDBIT", None, Syzlang.Ast.In);
              ("UI_SET_SNDBIT", None, Syzlang.Ast.In);
              ("UI_SET_FFBIT", None, Syzlang.Ast.In);
              ("UI_SET_PHYS", None, Syzlang.Ast.In);
              ("UI_SET_SWBIT", None, Syzlang.Ast.In);
              ("UI_SET_PROPBIT", None, Syzlang.Ast.In);
              ("UI_GET_VERSION", None, Syzlang.Ast.Out);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "write" ];
      }
    ()

let entries =
  [ hpet_entry; nvram_entry; rtc_entry; ptmx_entry; fuse_entry; snapshot_entry; uinput_entry ]
