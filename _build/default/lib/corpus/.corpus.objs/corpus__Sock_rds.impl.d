lib/corpus/sock_rds.ml: Syzlang Types
