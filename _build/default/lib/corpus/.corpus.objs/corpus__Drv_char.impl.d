lib/corpus/drv_char.ml: List Syzlang Types
