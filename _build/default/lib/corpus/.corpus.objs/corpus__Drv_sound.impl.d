lib/corpus/drv_sound.ml: List Syzlang Types
