lib/corpus/drv_vgadget.ml: List Syzlang Types
