lib/corpus/drv_virt.ml: List Syzlang Types
