lib/corpus/drv_dm.ml: List Syzlang Types
