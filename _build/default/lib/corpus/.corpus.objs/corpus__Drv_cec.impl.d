lib/corpus/drv_cec.ml: List Syzlang Types
