lib/corpus/sock_link.ml: List Syzlang Types
