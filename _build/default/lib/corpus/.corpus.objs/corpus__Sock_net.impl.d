lib/corpus/sock_net.ml: List Syzlang Types
