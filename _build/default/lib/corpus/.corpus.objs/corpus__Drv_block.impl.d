lib/corpus/drv_block.ml: List Syzlang Types
