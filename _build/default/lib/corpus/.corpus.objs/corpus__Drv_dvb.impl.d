lib/corpus/drv_dvb.ml: List Syzlang Types
