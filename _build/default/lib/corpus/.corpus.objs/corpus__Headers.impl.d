lib/corpus/headers.ml: Csrc
