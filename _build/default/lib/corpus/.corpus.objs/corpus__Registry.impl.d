lib/corpus/registry.ml: Drv_block Drv_btrfs Drv_cec Drv_char Drv_dm Drv_dvb Drv_misc Drv_posix_clock Drv_sound Drv_ubi Drv_vgadget Drv_virt Gen Lazy List Printf Sock_link Sock_net Sock_rds Types
