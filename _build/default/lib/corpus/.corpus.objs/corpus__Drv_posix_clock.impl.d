lib/corpus/drv_posix_clock.ml: List Syzlang Types
