lib/corpus/drv_btrfs.ml: List Syzlang Types
