lib/corpus/drv_ubi.ml: Syzlang Types
