lib/corpus/types.ml: Syzlang
