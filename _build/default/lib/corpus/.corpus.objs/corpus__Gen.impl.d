lib/corpus/gen.ml: Buffer Char Float Hashtbl Int64 List Option Printf String Syzlang Types
