lib/corpus/kapi.ml: List
