lib/corpus/drv_misc.ml: List Syzlang Types
