(** The kernel-internal API surface of the synthetic corpus.

    These are the helper functions drivers call but do not define; the
    virtual kernel implements them as builtins, and the analyses must not
    report them as "unknown" functions to chase. *)

let builtin_functions =
  [
    (* user memory *)
    "copy_from_user";
    "copy_to_user";
    "get_user";
    "put_user";
    "memdup_user";
    "strncpy_from_user";
    (* allocation *)
    "kmalloc";
    "kzalloc";
    "kcalloc";
    "kvmalloc";
    "vmalloc";
    "vzalloc";
    "kfree";
    "vfree";
    "kvfree";
    (* locking and lists *)
    "mutex_init";
    "mutex_lock";
    "mutex_unlock";
    "spin_lock";
    "spin_unlock";
    "list_add";
    "list_add_tail";
    "list_del";
    "INIT_LIST_HEAD";
    (* checks *)
    "WARN_ON";
    "BUG_ON";
    "WARN_ON_ONCE";
    (* waiting *)
    "init_completion";
    "complete";
    "wait_for_completion_killable";
    "schedule_timeout";
    "msleep";
    (* misc *)
    "capable";
    "printk";
    "pr_info";
    "pr_err";
    "pr_warn";
    "memset";
    "memcpy";
    "memcmp";
    "strcmp";
    "strncmp";
    "strlen";
    "strncpy";
    "strscpy";
    "snprintf";
    "min";
    "max";
    "min_t";
    "max_t";
    "array_index_nospec";
    "noop_llseek";
    "nonseekable_open";
    "stream_open";
    "anon_inode_getfd";
    (* ioctl encoding *)
    "_IO";
    "_IOR";
    "_IOW";
    "_IOWR";
    "_IOC";
    "_IOC_NR";
    "_IOC_TYPE";
    "_IOC_SIZE";
    "_IOC_DIR";
    (* registration (evaluated at boot, no-ops at runtime) *)
    "misc_register";
    "misc_deregister";
    "register_chrdev";
    "unregister_chrdev";
    "cdev_init";
    "cdev_add";
    "device_create";
    "class_create";
    "sock_register";
    "proto_register";
    "snd_register_device";
  ]

let is_builtin name = List.mem name builtin_functions

(** Capability bits for the corpus' [capable] checks. *)
let cap_sys_admin = 21
