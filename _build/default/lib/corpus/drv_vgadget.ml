(** The virtual USB gadget / UVC function driver ([/dev/vgadget0]).

    Injected bugs (Table 4):
    - "WARNING in usb_ep_queue" (CVE-2024-25741): queueing on an endpoint
      that was never enabled;
    - "BUG: corrupted list in vep_queue": queueing the same request
      object twice;
    - "divide error in uvc_queue_setup": a zero [bytesperline] in the
      negotiated format;
    - "WARNING in vb2_core_reqbufs": re-requesting buffers while
      streaming. *)

let source =
  {|
#define VG_MAX_EP 4
#define VG_MAX_REQ 8

#define VG_MAGIC 'g'
#define GADGET_EP_ENABLE_NR 1
#define GADGET_EP_DISABLE_NR 2
#define GADGET_EP_QUEUE_NR 3
#define GADGET_EP_DEQUEUE_NR 4
#define UVC_SET_FORMAT_NR 5
#define UVC_REQBUFS_NR 6
#define UVC_STREAMON_NR 7
#define UVC_STREAMOFF_NR 8
#define GADGET_EP_ENABLE _IOW(VG_MAGIC, GADGET_EP_ENABLE_NR, struct vg_ep_desc)
#define GADGET_EP_DISABLE _IOW(VG_MAGIC, GADGET_EP_DISABLE_NR, u32)
#define GADGET_EP_QUEUE _IOW(VG_MAGIC, GADGET_EP_QUEUE_NR, struct vg_request)
#define GADGET_EP_DEQUEUE _IOW(VG_MAGIC, GADGET_EP_DEQUEUE_NR, struct vg_request)
#define UVC_SET_FORMAT _IOWR(VG_MAGIC, UVC_SET_FORMAT_NR, struct uvc_format)
#define UVC_REQBUFS _IOWR(VG_MAGIC, UVC_REQBUFS_NR, struct uvc_requestbuffers)
#define UVC_STREAMON _IOW(VG_MAGIC, UVC_STREAMON_NR, u32)
#define UVC_STREAMOFF _IOW(VG_MAGIC, UVC_STREAMOFF_NR, u32)

struct vg_ep_desc {
  u32 ep_num;          /* endpoint index */
  u32 maxpacket;
  u32 transfer_type;
};

struct vg_request {
  u32 ep_num;
  u32 req_id;          /* request slot, must be below VG_MAX_REQ */
  u32 length;
  u32 flags;
};

struct uvc_format {
  u32 width;
  u32 height;
  u32 bytesperline;    /* bytes per scan line, 0 lets the driver choose */
  u32 sizeimage;
  u32 pixelformat;
};

struct uvc_requestbuffers {
  u32 count;
  u32 memory;
};

struct vg_ep {
  int enabled;
  u32 maxpacket;
};

struct vg_req_slot {
  int used;
  struct list_head entry;
};

struct uvc_queue {
  int streaming;
  u32 num_buffers;
  u32 sizes;
};

static struct vg_ep _vg_eps[4];
static struct vg_req_slot _vg_reqs[8];
static struct uvc_queue _uvc_queue;
static struct uvc_format _uvc_format;

static int usb_ep_enable(struct vg_ep_desc *desc)
{
  if (desc->ep_num >= VG_MAX_EP)
    return -EINVAL;
  if (desc->maxpacket == 0 || desc->maxpacket > 1024)
    return -EINVAL;
  _vg_eps[desc->ep_num].enabled = 1;
  _vg_eps[desc->ep_num].maxpacket = desc->maxpacket;
  return 0;
}

static int usb_ep_disable(u32 ep_num)
{
  if (ep_num >= VG_MAX_EP)
    return -EINVAL;
  _vg_eps[ep_num].enabled = 0;
  return 0;
}

static int vep_queue(struct vg_req_slot *slot)
{
  /* double-queueing corrupts the endpoint's request list */
  list_add_tail(&slot->entry, 0);
  slot->used = 1;
  return 0;
}

static int usb_ep_queue(struct vg_request *req)
{
  struct vg_ep *ep;
  if (req->ep_num >= VG_MAX_EP)
    return -EINVAL;
  if (req->req_id >= VG_MAX_REQ)
    return -EINVAL;
  ep = &_vg_eps[req->ep_num];
  /* queueing on a disabled endpoint trips the gadget core */
  WARN_ON(!ep->enabled);
  return vep_queue(&_vg_reqs[req->req_id]);
}

static int usb_ep_dequeue(struct vg_request *req)
{
  struct vg_req_slot *slot;
  if (req->req_id >= VG_MAX_REQ)
    return -EINVAL;
  slot = &_vg_reqs[req->req_id];
  if (!slot->used)
    return -EINVAL;
  list_del(&slot->entry);
  slot->used = 0;
  return 0;
}

static int uvc_queue_setup(struct uvc_queue *queue, struct uvc_format *fmt,
                           struct uvc_requestbuffers *req)
{
  u32 lines;
  /* bytesperline may be zero when the format was never negotiated */
  lines = fmt->sizeimage / fmt->bytesperline;
  if (lines == 0)
    return -EINVAL;
  queue->num_buffers = req->count;
  queue->sizes = lines * fmt->bytesperline;
  return 0;
}

static int vb2_core_reqbufs(struct uvc_queue *queue, struct uvc_requestbuffers *req)
{
  /* re-negotiating buffers while streaming is a vb2 API violation */
  WARN_ON(queue->streaming);
  if (req->count == 0 || req->count > 32)
    return -EINVAL;
  return uvc_queue_setup(queue, &_uvc_format, req);
}

static long vgadget_do_ioctl(struct file *file, unsigned int nr, unsigned long arg)
{
  struct vg_ep_desc desc;
  struct vg_request req;
  struct uvc_format fmt;
  struct uvc_requestbuffers bufs;
  u32 val;
  int ret;
  switch (nr) {
  case GADGET_EP_ENABLE_NR:
    if (copy_from_user(&desc, (void *)arg, sizeof(struct vg_ep_desc)))
      return -EFAULT;
    return usb_ep_enable(&desc);
  case GADGET_EP_DISABLE_NR:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    return usb_ep_disable(val);
  case GADGET_EP_QUEUE_NR:
    if (copy_from_user(&req, (void *)arg, sizeof(struct vg_request)))
      return -EFAULT;
    return usb_ep_queue(&req);
  case GADGET_EP_DEQUEUE_NR:
    if (copy_from_user(&req, (void *)arg, sizeof(struct vg_request)))
      return -EFAULT;
    return usb_ep_dequeue(&req);
  case UVC_SET_FORMAT_NR:
    if (copy_from_user(&fmt, (void *)arg, sizeof(struct uvc_format)))
      return -EFAULT;
    if (fmt.width == 0 || fmt.height == 0)
      return -EINVAL;
    _uvc_format.width = fmt.width;
    _uvc_format.height = fmt.height;
    _uvc_format.bytesperline = fmt.bytesperline;
    _uvc_format.sizeimage = fmt.sizeimage;
    _uvc_format.pixelformat = fmt.pixelformat;
    return 0;
  case UVC_REQBUFS_NR:
    if (copy_from_user(&bufs, (void *)arg, sizeof(struct uvc_requestbuffers)))
      return -EFAULT;
    ret = vb2_core_reqbufs(&_uvc_queue, &bufs);
    return ret;
  case UVC_STREAMON_NR:
    if (_uvc_queue.num_buffers == 0)
      return -EINVAL;
    _uvc_queue.streaming = 1;
    return 0;
  case UVC_STREAMOFF_NR:
    _uvc_queue.streaming = 0;
    return 0;
  default:
    return -ENOTTY;
  }
}

static long vgadget_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  if (_IOC_TYPE(cmd) != VG_MAGIC)
    return -ENOTTY;
  return vgadget_do_ioctl(file, _IOC_NR(cmd), arg);
}

static const struct file_operations vgadget_fops = {
  .unlocked_ioctl = vgadget_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice vgadget_misc = {
  .minor = 127,
  .name = "vgadget0",
  .fops = &vgadget_fops,
};
|}

let commands =
  [
    ("GADGET_EP_ENABLE", Some "vg_ep_desc", Syzlang.Ast.In);
    ("GADGET_EP_DISABLE", None, Syzlang.Ast.In);
    ("GADGET_EP_QUEUE", Some "vg_request", Syzlang.Ast.In);
    ("GADGET_EP_DEQUEUE", Some "vg_request", Syzlang.Ast.In);
    ("UVC_SET_FORMAT", Some "uvc_format", Syzlang.Ast.Inout);
    ("UVC_REQBUFS", Some "uvc_requestbuffers", Syzlang.Ast.Inout);
    ("UVC_STREAMON", None, Syzlang.Ast.In);
    ("UVC_STREAMOFF", None, Syzlang.Ast.In);
  ]

let entry : Types.entry =
  Types.driver_entry ~name:"vgadget" ~display_name:"vgadget0"
    ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/vgadget0" ];
        gt_fops = "vgadget_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()
