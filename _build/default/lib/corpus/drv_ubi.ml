(** The UBI control driver ([/dev/ubi_ctrl], misc [.name] registration).

    Injected bugs (Table 4):
    - "zero-size vmalloc in ubi_read_volume_table" (CVE-2024-25739): a
      [vid_hdr_offset] smaller than the slot size makes the computed
      volume-table size zero;
    - "memory leak in ubi_attach" (CVE-2024-25740): attaching an
      already-attached MTD device bails out after allocating the ubi
      device info. *)

let source =
  {|
#define UBI_CTRL_IOC_MAGIC 'o'
#define UBI_MAX_MTD 4
#define UBI_VOL_TABLE_SLOT 64
#define UBI_MAX_VOLUMES 128

#define UBI_IOCATT _IOW(UBI_CTRL_IOC_MAGIC, 64, struct ubi_attach_req)
#define UBI_IOCDET _IOW(UBI_CTRL_IOC_MAGIC, 65, s32)

struct ubi_attach_req {
  s32 ubi_num;
  s32 mtd_num;
  s32 vid_hdr_offset;   /* offset of the VID header within a physical block */
  s16 max_beb_per1024;
  s8 padding[10];
};

struct ubi_device_info {
  int ubi_num;
  int mtd_num;
  int vol_count;
  void *vtbl;
};

static int _ubi_attached[4];
static struct ubi_device_info *_ubi_devs[4];

static int ubi_read_volume_table(struct ubi_device_info *ubi, int vid_hdr_offset)
{
  int slots;
  void *vtbl;
  slots = vid_hdr_offset / UBI_VOL_TABLE_SLOT;
  if (slots > UBI_MAX_VOLUMES)
    slots = UBI_MAX_VOLUMES;
  /* a vid_hdr_offset below the slot size makes this a zero-size vmalloc */
  vtbl = vmalloc(slots * UBI_VOL_TABLE_SLOT);
  if (!vtbl)
    return -ENOMEM;
  ubi->vtbl = vtbl;
  ubi->vol_count = slots;
  return 0;
}

static int ubi_attach(struct ubi_attach_req *req)
{
  struct ubi_device_info *ubi;
  int err;
  if (req->mtd_num < 0 || req->mtd_num >= UBI_MAX_MTD)
    return -EINVAL;
  if (req->max_beb_per1024 <= 0 || req->max_beb_per1024 > 100)
    return -EINVAL;
  ubi = kzalloc(sizeof(struct ubi_device_info), GFP_KERNEL);
  if (!ubi)
    return -ENOMEM;
  ubi->mtd_num = req->mtd_num;
  if (req->vid_hdr_offset == 0)
    req->vid_hdr_offset = 2048; /* 0 selects the default offset */
  if (_ubi_attached[req->mtd_num]) {
    /* already attached: the error path forgets to free ubi */
    return -EEXIST;
  }
  err = ubi_read_volume_table(ubi, req->vid_hdr_offset);
  if (err) {
    kfree(ubi);
    return err;
  }
  _ubi_attached[req->mtd_num] = 1;
  _ubi_devs[req->mtd_num] = ubi;
  return 0;
}

static int ubi_detach(s32 ubi_num)
{
  struct ubi_device_info *ubi;
  if (ubi_num < 0 || ubi_num >= UBI_MAX_MTD)
    return -EINVAL;
  if (!_ubi_attached[ubi_num])
    return -EINVAL;
  ubi = _ubi_devs[ubi_num];
  if (ubi) {
    vfree(ubi->vtbl);
    kfree(ubi);
    _ubi_devs[ubi_num] = 0;
  }
  _ubi_attached[ubi_num] = 0;
  return 0;
}

static long ctrl_cdev_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct ubi_attach_req req;
  s32 ubi_num;
  if (!capable(0))
    return -EPERM;
  switch (cmd) {
  case UBI_IOCATT:
    if (copy_from_user(&req, (void *)arg, sizeof(struct ubi_attach_req)))
      return -EFAULT;
    return ubi_attach(&req);
  case UBI_IOCDET:
    if (copy_from_user(&ubi_num, (void *)arg, 4))
      return -EFAULT;
    return ubi_detach(ubi_num);
  default:
    return -ENOTTY;
  }
}

static const struct file_operations ubi_ctrl_cdev_operations = {
  .unlocked_ioctl = ctrl_cdev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice ubi_ctrl_cdev = {
  .minor = 238,
  .name = "ubi_ctrl",
  .fops = &ubi_ctrl_cdev_operations,
};
|}

let entry : Types.entry =
  Types.driver_entry ~name:"ubi" ~display_name:"ubi_ctrl"
    ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/ubi_ctrl" ];
        gt_fops = "ubi_ctrl_cdev_operations";
        gt_socket = None;
        gt_ioctls =
          [
            { Types.gc_name = "UBI_IOCATT"; gc_arg_type = Some "ubi_attach_req"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "UBI_IOCDET"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()
