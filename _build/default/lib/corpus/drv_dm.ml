(** The device-mapper driver — the paper's running example (Figure 2).

    Faithful to the aspects KernelGPT highlights:
    - the device path comes from the *rare* [.nodename] field
      ([/dev/mapper/control]), not from [.name] ([device-mapper]), which
      fools name-rule static analysis (Figure 2c);
    - the ioctl command value is rewritten with [_IOC_NR] before dispatch,
      so the raw switch labels are *not* the user-visible command values;
    - two injected bugs from Table 4 live here:
      CVE-2024-23851 ("kmalloc bug in ctl_ioctl": unchecked [data_size]
      passed to [kvmalloc]) and CVE-2023-52429 ("kmalloc bug in
      dm_table_create": unchecked [target_count]), plus CVE-2024-50277
      ("general protection fault in cleanup_mapped_device"). *)

let source =
  {|
#define DM_DIR "mapper"
#define DM_CONTROL_NODE "control"
#define DM_NAME "device-mapper"
#define MAPPER_CTRL_MINOR 236
#define DM_IOCTL 0xfd
#define DM_MAX_DEVICES 8
#define DM_NAME_LEN 128
#define DM_SUSPEND_FLAG 2
#define DM_VERSION_MAJOR 4

enum {
  DM_VERSION_CMD = 0,
  DM_REMOVE_ALL_CMD,
  DM_LIST_DEVICES_CMD,
  DM_DEV_CREATE_CMD,
  DM_DEV_REMOVE_CMD,
  DM_DEV_RENAME_CMD,
  DM_DEV_SUSPEND_CMD,
  DM_DEV_STATUS_CMD,
  DM_DEV_WAIT_CMD,
  DM_TABLE_LOAD_CMD,
  DM_TABLE_CLEAR_CMD,
  DM_TABLE_DEPS_CMD,
  DM_TABLE_STATUS_CMD,
  DM_LIST_VERSIONS_CMD,
  DM_TARGET_MSG_CMD,
  DM_DEV_SET_GEOMETRY_CMD,
  DM_DEV_ARM_POLL_CMD,
  DM_GET_TARGET_VERSION_CMD,
};

#define DM_VERSION _IOWR(DM_IOCTL, DM_VERSION_CMD, struct dm_ioctl)
#define DM_REMOVE_ALL _IOWR(DM_IOCTL, DM_REMOVE_ALL_CMD, struct dm_ioctl)
#define DM_LIST_DEVICES _IOWR(DM_IOCTL, DM_LIST_DEVICES_CMD, struct dm_ioctl)
#define DM_DEV_CREATE _IOWR(DM_IOCTL, DM_DEV_CREATE_CMD, struct dm_ioctl)
#define DM_DEV_REMOVE _IOWR(DM_IOCTL, DM_DEV_REMOVE_CMD, struct dm_ioctl)
#define DM_DEV_RENAME _IOWR(DM_IOCTL, DM_DEV_RENAME_CMD, struct dm_ioctl)
#define DM_DEV_SUSPEND _IOWR(DM_IOCTL, DM_DEV_SUSPEND_CMD, struct dm_ioctl)
#define DM_DEV_STATUS _IOWR(DM_IOCTL, DM_DEV_STATUS_CMD, struct dm_ioctl)
#define DM_DEV_WAIT _IOWR(DM_IOCTL, DM_DEV_WAIT_CMD, struct dm_ioctl)
#define DM_TABLE_LOAD _IOWR(DM_IOCTL, DM_TABLE_LOAD_CMD, struct dm_ioctl)
#define DM_TABLE_CLEAR _IOWR(DM_IOCTL, DM_TABLE_CLEAR_CMD, struct dm_ioctl)
#define DM_TABLE_DEPS _IOWR(DM_IOCTL, DM_TABLE_DEPS_CMD, struct dm_ioctl)
#define DM_TABLE_STATUS _IOWR(DM_IOCTL, DM_TABLE_STATUS_CMD, struct dm_ioctl)
#define DM_LIST_VERSIONS _IOWR(DM_IOCTL, DM_LIST_VERSIONS_CMD, struct dm_ioctl)
#define DM_TARGET_MSG _IOWR(DM_IOCTL, DM_TARGET_MSG_CMD, struct dm_ioctl)
#define DM_DEV_SET_GEOMETRY _IOWR(DM_IOCTL, DM_DEV_SET_GEOMETRY_CMD, struct dm_ioctl)
#define DM_DEV_ARM_POLL _IOWR(DM_IOCTL, DM_DEV_ARM_POLL_CMD, struct dm_ioctl)
#define DM_GET_TARGET_VERSION _IOWR(DM_IOCTL, DM_GET_TARGET_VERSION_CMD, struct dm_ioctl)

struct dm_target_spec {
  u64 sector_start;
  u64 length;
  s32 status;
  u32 next;      /* offset to the next target, from the start of this one */
  char target_type[16];
};

struct dm_ioctl {
  u32 version[3];    /* version of the interface */
  u32 data_size;     /* total size of data passed in, including this struct */
  u32 data_start;    /* offset within the data to the start of parameters */
  u32 target_count;  /* number of targets in the table */
  s32 open_count;
  u32 flags;
  u32 event_nr;
  u32 padding;
  u64 dev;
  char name[128];    /* device name */
  char uuid[129];
  char data[7];
};

struct dm_table {
  u32 num_targets;
  void *targets;
};

struct mapped_device {
  int used;
  int suspended;
  u32 event_nr;
  char name[128];
  struct dm_table *map;
};

static struct mapped_device _dm_devs[8];
static int _dm_dev_count;

static struct mapped_device *dm_hash_find(struct dm_ioctl *param)
{
  int i;
  for (i = 0; i < DM_MAX_DEVICES; i = i + 1) {
    if (_dm_devs[i].used && strcmp(_dm_devs[i].name, param->name) == 0)
      return &_dm_devs[i];
  }
  return 0;
}

static int dev_create(struct dm_ioctl *param)
{
  int i;
  if (strlen(param->name) == 0)
    return -EINVAL;
  if (dm_hash_find(param))
    return -EBUSY;
  for (i = 0; i < DM_MAX_DEVICES; i = i + 1) {
    if (!_dm_devs[i].used) {
      _dm_devs[i].used = 1;
      _dm_devs[i].suspended = 0;
      _dm_devs[i].map = 0;
      strncpy(_dm_devs[i].name, param->name, DM_NAME_LEN);
      _dm_dev_count = _dm_dev_count + 1;
      return 0;
    }
  }
  return -ENOSPC;
}

static void cleanup_mapped_device(struct mapped_device *md)
{
  struct dm_table *t;
  t = md->map;
  if (md->suspended) {
    /* flush outstanding io through the table before tearing it down;
       md->map may not have been loaded yet */
    md->event_nr = t->num_targets;
    vfree(t->targets);
  }
  if (t)
    kfree(t);
  md->map = 0;
  md->used = 0;
}

static int dev_remove(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  cleanup_mapped_device(md);
  _dm_dev_count = _dm_dev_count - 1;
  return 0;
}

static int dev_rename(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (strlen(param->uuid) == 0)
    return -EINVAL;
  strncpy(md->name, param->uuid, DM_NAME_LEN);
  return 0;
}

static int dev_suspend(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (param->flags & DM_SUSPEND_FLAG)
    md->suspended = 1;
  else
    md->suspended = 0;
  return 0;
}

static int dev_status(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  param->open_count = 1;
  param->event_nr = md->event_nr;
  if (md->suspended)
    param->flags = DM_SUSPEND_FLAG;
  return 0;
}

static int dev_wait(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (param->event_nr != md->event_nr)
    return 0;
  return -EAGAIN;
}

static int dm_table_create(struct mapped_device *md, struct dm_ioctl *param)
{
  struct dm_table *t;
  u64 num;
  t = kzalloc(sizeof(struct dm_table), GFP_KERNEL);
  if (!t)
    return -ENOMEM;
  num = param->target_count;
  /* CVE-2023-52429: target_count is never bounded before the allocation */
  t->targets = kvmalloc(num * sizeof(struct dm_target_spec), GFP_KERNEL);
  if (!t->targets) {
    kfree(t);
    return -ENOMEM;
  }
  t->num_targets = param->target_count;
  md->map = t;
  return 0;
}

static int table_load(struct dm_ioctl *param)
{
  struct mapped_device *md;
  int r;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (md->map)
    return -EBUSY;
  r = dm_table_create(md, param);
  if (r)
    return r;
  md->event_nr = md->event_nr + 1;
  return 0;
}

static int table_clear(struct dm_ioctl *param)
{
  struct mapped_device *md;
  struct dm_table *t;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  t = md->map;
  if (!t)
    return -ENODATA;
  vfree(t->targets);
  kfree(t);
  md->map = 0;
  return 0;
}

static int table_status(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (!md->map)
    return -ENODATA;
  param->target_count = md->map->num_targets;
  return 0;
}

static int remove_all(struct dm_ioctl *param)
{
  int i;
  for (i = 0; i < DM_MAX_DEVICES; i = i + 1) {
    if (_dm_devs[i].used) {
      _dm_devs[i].suspended = 0;
      cleanup_mapped_device(&_dm_devs[i]);
    }
  }
  _dm_dev_count = 0;
  return 0;
}

static int list_devices(struct dm_ioctl *param)
{
  param->target_count = _dm_dev_count;
  param->data_start = sizeof(struct dm_ioctl);
  return 0;
}

static int list_versions(struct dm_ioctl *param)
{
  param->version[0] = DM_VERSION_MAJOR;
  param->version[1] = 0;
  param->version[2] = 0;
  return 0;
}

static int target_message(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (!md->map)
    return -ENXIO;
  if (param->data_start >= param->data_size)
    return -EINVAL;
  md->event_nr = md->event_nr + 1;
  return 0;
}

static int dev_set_geometry(struct dm_ioctl *param)
{
  struct mapped_device *md;
  md = dm_hash_find(param);
  if (!md)
    return -ENXIO;
  if (param->data_start + 4 > param->data_size)
    return -EINVAL;
  return 0;
}

static int dev_arm_poll(struct dm_ioctl *param)
{
  return 0;
}

static int get_target_version(struct dm_ioctl *param)
{
  if (strlen(param->name) == 0)
    return -EINVAL;
  param->version[0] = 1;
  param->version[1] = 23;
  param->version[2] = 0;
  return 0;
}

static int lookup_ioctl(uint cmd, struct dm_ioctl *param)
{
  switch (cmd) {
  case DM_REMOVE_ALL_CMD:
    return remove_all(param);
  case DM_LIST_DEVICES_CMD:
    return list_devices(param);
  case DM_DEV_CREATE_CMD:
    return dev_create(param);
  case DM_DEV_REMOVE_CMD:
    return dev_remove(param);
  case DM_DEV_RENAME_CMD:
    return dev_rename(param);
  case DM_DEV_SUSPEND_CMD:
    return dev_suspend(param);
  case DM_DEV_STATUS_CMD:
    return dev_status(param);
  case DM_DEV_WAIT_CMD:
    return dev_wait(param);
  case DM_TABLE_LOAD_CMD:
    return table_load(param);
  case DM_TABLE_CLEAR_CMD:
    return table_clear(param);
  case DM_TABLE_DEPS_CMD:
    return table_status(param);
  case DM_TABLE_STATUS_CMD:
    return table_status(param);
  case DM_LIST_VERSIONS_CMD:
    return list_versions(param);
  case DM_TARGET_MSG_CMD:
    return target_message(param);
  case DM_DEV_SET_GEOMETRY_CMD:
    return dev_set_geometry(param);
  case DM_DEV_ARM_POLL_CMD:
    return dev_arm_poll(param);
  case DM_GET_TARGET_VERSION_CMD:
    return get_target_version(param);
  default:
    return -ENOTTY;
  }
}

static int check_version(struct dm_ioctl *param)
{
  if (param->version[0] != DM_VERSION_MAJOR)
    return -EINVAL;
  return 0;
}

static long ctl_ioctl(struct file *file, uint command, struct dm_ioctl __user *user)
{
  uint cmd;
  int r;
  void *dmi;
  struct dm_ioctl param_kernel;
  if (_IOC_TYPE(command) != DM_IOCTL)
    return -ENOTTY;
  cmd = _IOC_NR(command);
  if (cmd == DM_VERSION_CMD)
    return 0;
  if (copy_from_user(&param_kernel, user, sizeof(struct dm_ioctl)))
    return -EFAULT;
  if (check_version(&param_kernel))
    return -EINVAL;
  if (param_kernel.data_size < sizeof(struct dm_ioctl))
    return -EINVAL;
  /* CVE-2024-23851: data_size has no upper bound before the allocation */
  dmi = kvmalloc(param_kernel.data_size, GFP_KERNEL);
  if (!dmi)
    return -ENOMEM;
  r = lookup_ioctl(cmd, &param_kernel);
  if (r == 0)
    copy_to_user(user, &param_kernel, sizeof(struct dm_ioctl));
  kvfree(dmi);
  return r;
}

static long dm_ctl_ioctl(struct file *file, uint command, ulong u)
{
  return ctl_ioctl(file, command, (struct dm_ioctl *)u);
}

static long dm_compat_ctl_ioctl(struct file *file, uint command, ulong u)
{
  return dm_ctl_ioctl(file, command, u);
}

static int dm_open(struct inode *inode, struct file *filp)
{
  filp->private_data = 0;
  return 0;
}

static int dm_release(struct inode *inode, struct file *filp)
{
  return 0;
}

static u32 dm_poll(struct file *filp, poll_table *wait)
{
  return 0;
}

static const struct file_operations _ctl_fops = {
  .open = dm_open,
  .release = dm_release,
  .poll = dm_poll,
  .unlocked_ioctl = dm_ctl_ioctl,
  .compat_ioctl = dm_compat_ctl_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice _dm_misc = {
  .minor = MAPPER_CTRL_MINOR,
  .name = DM_NAME,
  .nodename = DM_DIR "/" DM_CONTROL_NODE,
  .fops = &_ctl_fops,
};
|}

let all_commands =
  [
    "DM_VERSION"; "DM_REMOVE_ALL"; "DM_LIST_DEVICES"; "DM_DEV_CREATE"; "DM_DEV_REMOVE";
    "DM_DEV_RENAME"; "DM_DEV_SUSPEND"; "DM_DEV_STATUS"; "DM_DEV_WAIT"; "DM_TABLE_LOAD";
    "DM_TABLE_CLEAR"; "DM_TABLE_DEPS"; "DM_TABLE_STATUS"; "DM_LIST_VERSIONS";
    "DM_TARGET_MSG"; "DM_DEV_SET_GEOMETRY"; "DM_DEV_ARM_POLL"; "DM_GET_TARGET_VERSION";
  ]

let entry : Types.entry =
  let gt_command name =
    { Types.gc_name = name; gc_arg_type = Some "dm_ioctl"; gc_dir = Syzlang.Ast.Inout }
  in
  Types.driver_entry ~name:"dm" ~display_name:"device-mapper"
    ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/mapper/control" ];
        gt_fops = "_ctl_fops";
        gt_socket = None;
        gt_ioctls = List.map gt_command all_commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "poll" ];
      }
    ()
