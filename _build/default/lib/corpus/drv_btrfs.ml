(** The btrfs-control driver (misc device, [.name] registration).

    Present in Table 5 (row "btrfs-control"): the hand-written Syzkaller
    spec describes only one ioctl, while generation recovers all five.
    Injected bugs (Table 4):
    - "kernel BUG in btrfs_get_root_ref" (CVE-2024-23850): snapshot
      creation with object id 0 hits a BUG_ON;
    - "general protection fault in btrfs_update_reloc_root": marking a
      scanned device as in-replace and then readying it dereferences the
      NULL relocation root. *)

let source =
  {|
#define BTRFS_IOCTL_MAGIC 0x94
#define BTRFS_PATH_NAME_MAX 4087
#define BTRFS_MAX_DEVICES 4

#define BTRFS_IOC_SCAN_DEV _IOW(BTRFS_IOCTL_MAGIC, 1, struct btrfs_ioctl_vol_args)
#define BTRFS_IOC_FORGET_DEV _IOW(BTRFS_IOCTL_MAGIC, 5, struct btrfs_ioctl_vol_args)
#define BTRFS_IOC_SNAP_CREATE _IOW(BTRFS_IOCTL_MAGIC, 6, struct btrfs_ioctl_vol_args)
#define BTRFS_IOC_DEVICES_READY _IOR(BTRFS_IOCTL_MAGIC, 39, struct btrfs_ioctl_vol_args)
#define BTRFS_IOC_GET_SUPPORTED_FEATURES _IOR(BTRFS_IOCTL_MAGIC, 57, struct btrfs_ioctl_feature_flags)

struct btrfs_ioctl_vol_args {
  s64 fd;
  char name[4088];   /* device path or subvolume name */
};

struct btrfs_ioctl_feature_flags {
  u64 compat_flags;
  u64 compat_ro_flags;
  u64 incompat_flags;
};

struct btrfs_scanned_device {
  int used;
  int replacing;
  void *reloc_root;
  char name[4088];
};

static struct btrfs_scanned_device _btrfs_devs[4];

static struct btrfs_scanned_device *btrfs_find_device(char *name)
{
  int i;
  for (i = 0; i < BTRFS_MAX_DEVICES; i = i + 1) {
    if (_btrfs_devs[i].used && strcmp(_btrfs_devs[i].name, name) == 0)
      return &_btrfs_devs[i];
  }
  return 0;
}

static int btrfs_scan_one_device(struct btrfs_ioctl_vol_args *vol)
{
  int i;
  if (strlen(vol->name) == 0)
    return -EINVAL;
  if (btrfs_find_device(vol->name))
    return 0;
  for (i = 0; i < BTRFS_MAX_DEVICES; i = i + 1) {
    if (!_btrfs_devs[i].used) {
      _btrfs_devs[i].used = 1;
      _btrfs_devs[i].replacing = 0;
      if (vol->fd == -1)
        _btrfs_devs[i].replacing = 1;
      _btrfs_devs[i].reloc_root = 0;
      strncpy(_btrfs_devs[i].name, vol->name, BTRFS_PATH_NAME_MAX);
      return 0;
    }
  }
  return -ENOSPC;
}

static int btrfs_forget_dev(struct btrfs_ioctl_vol_args *vol)
{
  struct btrfs_scanned_device *dev;
  dev = btrfs_find_device(vol->name);
  if (!dev)
    return -ENOENT;
  dev->used = 0;
  return 0;
}

static u64 btrfs_get_root_ref(u64 objectid)
{
  /* subvolume 0 does not exist; refcounting it is a kernel bug */
  BUG_ON(objectid == 0);
  return objectid + 256;
}

static int btrfs_mksubvol(struct btrfs_ioctl_vol_args *vol)
{
  u64 ref;
  if (!btrfs_find_device(vol->name))
    return -ENOENT;
  ref = btrfs_get_root_ref(vol->fd);
  if (ref > 0xffffff)
    return -ERANGE;
  return 0;
}

static void btrfs_update_reloc_root(struct btrfs_scanned_device *dev)
{
  struct btrfs_ioctl_feature_flags *root;
  root = (struct btrfs_ioctl_feature_flags *)dev->reloc_root;
  /* the relocation root was never allocated for control-scanned devices */
  root->incompat_flags = 1;
}

static int btrfs_devices_ready(struct btrfs_ioctl_vol_args *vol)
{
  struct btrfs_scanned_device *dev;
  dev = btrfs_find_device(vol->name);
  if (!dev)
    return -ENOENT;
  if (dev->replacing)
    btrfs_update_reloc_root(dev);
  return 0;
}

static long btrfs_control_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct btrfs_ioctl_vol_args vol_args;
  struct btrfs_ioctl_feature_flags features;
  int ret;
  switch (cmd) {
  case BTRFS_IOC_SCAN_DEV:
    if (copy_from_user(&vol_args, (void *)arg, sizeof(struct btrfs_ioctl_vol_args)))
      return -EFAULT;
    ret = btrfs_scan_one_device(&vol_args);
    return ret;
  case BTRFS_IOC_FORGET_DEV:
    if (copy_from_user(&vol_args, (void *)arg, sizeof(struct btrfs_ioctl_vol_args)))
      return -EFAULT;
    return btrfs_forget_dev(&vol_args);
  case BTRFS_IOC_SNAP_CREATE:
    if (copy_from_user(&vol_args, (void *)arg, sizeof(struct btrfs_ioctl_vol_args)))
      return -EFAULT;
    return btrfs_mksubvol(&vol_args);
  case BTRFS_IOC_DEVICES_READY:
    if (copy_from_user(&vol_args, (void *)arg, sizeof(struct btrfs_ioctl_vol_args)))
      return -EFAULT;
    return btrfs_devices_ready(&vol_args);
  case BTRFS_IOC_GET_SUPPORTED_FEATURES:
    features.compat_flags = 0;
    features.compat_ro_flags = 0;
    features.incompat_flags = 0x3ff;
    if (copy_to_user((void *)arg, &features, sizeof(struct btrfs_ioctl_feature_flags)))
      return -EFAULT;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations btrfs_ctl_fops = {
  .unlocked_ioctl = btrfs_control_ioctl,
  .compat_ioctl = btrfs_control_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice btrfs_misc = {
  .minor = 234,
  .name = "btrfs-control",
  .fops = &btrfs_ctl_fops,
};
|}

(* The hand-written Syzkaller spec covers only SCAN_DEV (Table 5: #Sys 1,
   counting the ioctl; openat comes from the generic descriptions). *)
let existing_spec =
  {|resource fd_btrfs_control[fd]
openat$btrfs_control(fd const[AT_FDCWD], file ptr[in, string["/dev/btrfs-control"]], flags const[O_RDWR], mode const[0]) fd_btrfs_control
ioctl$BTRFS_IOC_SCAN_DEV(fd fd_btrfs_control, cmd const[BTRFS_IOC_SCAN_DEV], arg ptr[in, btrfs_ioctl_vol_args])

btrfs_ioctl_vol_args {
	fd int64
	name array[int8, 4088]
}
|}

let commands =
  [
    ("BTRFS_IOC_SCAN_DEV", Some "btrfs_ioctl_vol_args", Syzlang.Ast.In);
    ("BTRFS_IOC_FORGET_DEV", Some "btrfs_ioctl_vol_args", Syzlang.Ast.In);
    ("BTRFS_IOC_SNAP_CREATE", Some "btrfs_ioctl_vol_args", Syzlang.Ast.In);
    ("BTRFS_IOC_DEVICES_READY", Some "btrfs_ioctl_vol_args", Syzlang.Ast.Out);
    ("BTRFS_IOC_GET_SUPPORTED_FEATURES", Some "btrfs_ioctl_feature_flags", Syzlang.Ast.Out);
  ]

let entry : Types.entry =
  Types.driver_entry ~name:"btrfs_control" ~display_name:"btrfs-control"
    ~source ~existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/btrfs-control" ];
        gt_fops = "btrfs_ctl_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()
