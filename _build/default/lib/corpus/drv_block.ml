(** Block-layer drivers of Table 5: loop-control, loop0, nbd0, sg0, sr0.

    nbd carries the Table 4 bug "INFO: task hung in __rq_qos_throttle":
    [NBD_DO_IT] (absent from the hand-written spec) waits on the queue
    throttle completion that nothing signals. sr uses the
    [switch(_IOC_NR(cmd))] rewrite pattern that defeats raw-switch
    static analysis. *)

(* ------------------------------------------------------------------ *)
(* loop-control                                                        *)
(* ------------------------------------------------------------------ *)

let loop_control_source =
  {|
#define LOOP_CTL_ADD 0x4C80
#define LOOP_CTL_REMOVE 0x4C81
#define LOOP_CTL_GET_FREE 0x4C82
#define LOOP_MAX 8

static int _loop_present[8];

static int loop_add(int i)
{
  if (i < 0 || i >= LOOP_MAX)
    return -EINVAL;
  if (_loop_present[i])
    return -EEXIST;
  _loop_present[i] = 1;
  return i;
}

static int loop_remove(int i)
{
  if (i < 0 || i >= LOOP_MAX)
    return -EINVAL;
  if (!_loop_present[i])
    return -ENODEV;
  _loop_present[i] = 0;
  return 0;
}

static int loop_get_free(void)
{
  int i;
  for (i = 0; i < LOOP_MAX; i = i + 1) {
    if (!_loop_present[i]) {
      _loop_present[i] = 1;
      return i;
    }
  }
  return -ENOSPC;
}

static long loop_control_ioctl(struct file *file, unsigned int cmd, unsigned long parm)
{
  switch (cmd) {
  case LOOP_CTL_ADD:
    return loop_add(parm);
  case LOOP_CTL_REMOVE:
    return loop_remove(parm);
  case LOOP_CTL_GET_FREE:
    return loop_get_free();
  default:
    return -ENOSYS;
  }
}

static const struct file_operations loop_ctl_fops = {
  .unlocked_ioctl = loop_control_ioctl,
  .compat_ioctl = loop_control_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice loop_misc = {
  .minor = 237,
  .name = "loop-control",
  .fops = &loop_ctl_fops,
};
|}

let loop_control_existing_spec =
  {|resource fd_loop_ctrl[fd]
openat$loop_ctrl(fd const[AT_FDCWD], file ptr[in, string["/dev/loop-control"]], flags const[O_RDWR], mode const[0]) fd_loop_ctrl
ioctl$LOOP_CTL_ADD(fd fd_loop_ctrl, cmd const[LOOP_CTL_ADD], arg intptr)
ioctl$LOOP_CTL_REMOVE(fd fd_loop_ctrl, cmd const[LOOP_CTL_REMOVE], arg intptr)
ioctl$LOOP_CTL_GET_FREE(fd fd_loop_ctrl, cmd const[LOOP_CTL_GET_FREE], arg const[0])
|}

let loop_control_entry : Types.entry =
  Types.driver_entry ~name:"loop_control" ~display_name:"loop-control"
    ~source:loop_control_source ~existing_spec:loop_control_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/loop-control" ];
        gt_fops = "loop_ctl_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [ "LOOP_CTL_ADD"; "LOOP_CTL_REMOVE"; "LOOP_CTL_GET_FREE" ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* loop0                                                               *)
(* ------------------------------------------------------------------ *)

let loop_source =
  {|
#define LOOP_SET_FD 0x4C00
#define LOOP_CLR_FD 0x4C01
#define LOOP_SET_STATUS 0x4C02
#define LOOP_GET_STATUS 0x4C03
#define LOOP_SET_STATUS64 0x4C04
#define LOOP_GET_STATUS64 0x4C05
#define LOOP_CHANGE_FD 0x4C06
#define LOOP_SET_CAPACITY 0x4C07
#define LOOP_SET_DIRECT_IO 0x4C08
#define LOOP_SET_BLOCK_SIZE 0x4C09
#define LOOP_CONFIGURE 0x4C0A
#define LO_NAME_SIZE 64
#define LO_FLAGS_READ_ONLY 1
#define LO_FLAGS_AUTOCLEAR 4
#define LO_FLAGS_PARTSCAN 8
#define LO_FLAGS_DIRECT_IO 16

struct loop_info64 {
  u64 lo_device;
  u64 lo_inode;
  u64 lo_rdevice;
  u64 lo_offset;          /* byte offset into the backing file */
  u64 lo_sizelimit;       /* max size, 0 means unlimited */
  u32 lo_number;
  u32 lo_encrypt_type;
  u32 lo_encrypt_key_size;
  u32 lo_flags;
  char lo_file_name[64];
  char lo_crypt_name[64];
  u8 lo_encrypt_key[32];
  u64 lo_init[2];
};

struct loop_config {
  u32 fd;
  u32 block_size;
  struct loop_info64 info;
  u64 reserved[8];
};

struct loop_device {
  int bound;
  u64 offset;
  u64 sizelimit;
  u32 block_size;
  u32 flags;
  int direct_io;
};

static struct loop_device _loop_dev;

static int loop_validate_block_size(u32 bsize)
{
  if (bsize < 512 || bsize > 4096)
    return -EINVAL;
  if (bsize & (bsize - 1))
    return -EINVAL;
  return 0;
}

static int loop_set_status64(struct loop_info64 *info)
{
  if (!_loop_dev.bound)
    return -ENXIO;
  if (info->lo_encrypt_key_size > 32)
    return -EINVAL;
  _loop_dev.offset = info->lo_offset;
  _loop_dev.sizelimit = info->lo_sizelimit;
  _loop_dev.flags = info->lo_flags;
  return 0;
}

static int loop_configure(struct loop_config *config)
{
  int err;
  if (_loop_dev.bound)
    return -EBUSY;
  if (config->block_size) {
    err = loop_validate_block_size(config->block_size);
    if (err)
      return err;
  }
  if (config->info.lo_flags & ~(LO_FLAGS_READ_ONLY | LO_FLAGS_AUTOCLEAR | LO_FLAGS_PARTSCAN | LO_FLAGS_DIRECT_IO))
    return -EINVAL;
  _loop_dev.bound = 1;
  _loop_dev.block_size = config->block_size;
  _loop_dev.offset = config->info.lo_offset;
  return 0;
}

static long lo_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct loop_info64 info64;
  struct loop_config config;
  switch (cmd) {
  case LOOP_SET_FD:
    if (_loop_dev.bound)
      return -EBUSY;
    _loop_dev.bound = 1;
    return 0;
  case LOOP_CHANGE_FD:
    if (!_loop_dev.bound)
      return -ENXIO;
    return 0;
  case LOOP_CLR_FD:
    if (!_loop_dev.bound)
      return -ENXIO;
    _loop_dev.bound = 0;
    return 0;
  case LOOP_SET_STATUS:
  case LOOP_SET_STATUS64:
    if (copy_from_user(&info64, (void *)arg, sizeof(struct loop_info64)))
      return -EFAULT;
    return loop_set_status64(&info64);
  case LOOP_GET_STATUS:
  case LOOP_GET_STATUS64:
    if (!_loop_dev.bound)
      return -ENXIO;
    info64.lo_offset = _loop_dev.offset;
    info64.lo_sizelimit = _loop_dev.sizelimit;
    info64.lo_flags = _loop_dev.flags;
    if (copy_to_user((void *)arg, &info64, sizeof(struct loop_info64)))
      return -EFAULT;
    return 0;
  case LOOP_SET_CAPACITY:
    if (!_loop_dev.bound)
      return -ENXIO;
    return 0;
  case LOOP_SET_DIRECT_IO:
    if (!_loop_dev.bound)
      return -ENXIO;
    _loop_dev.direct_io = arg != 0;
    return 0;
  case LOOP_SET_BLOCK_SIZE:
    if (!_loop_dev.bound)
      return -ENXIO;
    return loop_validate_block_size(arg);
  case LOOP_CONFIGURE:
    if (copy_from_user(&config, (void *)arg, sizeof(struct loop_config)))
      return -EFAULT;
    return loop_configure(&config);
  default:
    return -EINVAL;
  }
}

static int lo_open(struct inode *inode, struct file *file)
{
  return 0;
}

static int lo_release(struct inode *inode, struct file *file)
{
  if (_loop_dev.flags & LO_FLAGS_AUTOCLEAR)
    _loop_dev.bound = 0;
  return 0;
}

static const struct file_operations lo_fops = {
  .open = lo_open,
  .release = lo_release,
  .unlocked_ioctl = lo_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int loop_init(void)
{
  register_chrdev(7, "loop", &lo_fops);
  device_create(0, 0, 0, 0, "loop0");
  return 0;
}
|}

let loop_existing_spec =
  {|resource fd_loop[fd]
openat$loop(fd const[AT_FDCWD], file ptr[in, string["/dev/loop0"]], flags const[O_RDWR], mode const[0]) fd_loop
ioctl$LOOP_SET_FD(fd fd_loop, cmd const[LOOP_SET_FD], arg fd)
ioctl$LOOP_CLR_FD(fd fd_loop, cmd const[LOOP_CLR_FD], arg const[0])
ioctl$LOOP_CHANGE_FD(fd fd_loop, cmd const[LOOP_CHANGE_FD], arg fd)
ioctl$LOOP_SET_STATUS64(fd fd_loop, cmd const[LOOP_SET_STATUS64], arg ptr[in, loop_info64])
ioctl$LOOP_GET_STATUS64(fd fd_loop, cmd const[LOOP_GET_STATUS64], arg ptr[out, loop_info64])
ioctl$LOOP_SET_CAPACITY(fd fd_loop, cmd const[LOOP_SET_CAPACITY], arg const[0])
ioctl$LOOP_SET_DIRECT_IO(fd fd_loop, cmd const[LOOP_SET_DIRECT_IO], arg intptr)
ioctl$LOOP_SET_BLOCK_SIZE(fd fd_loop, cmd const[LOOP_SET_BLOCK_SIZE], arg intptr)
ioctl$LOOP_CONFIGURE(fd fd_loop, cmd const[LOOP_CONFIGURE], arg ptr[in, loop_config])

loop_info64 {
	lo_device int64
	lo_inode int64
	lo_rdevice int64
	lo_offset int64
	lo_sizelimit int64
	lo_number int32
	lo_encrypt_type int32
	lo_encrypt_key_size int32
	lo_flags int32
	lo_file_name array[int8, 64]
	lo_crypt_name array[int8, 64]
	lo_encrypt_key array[int8, 32]
	lo_init array[int64, 2]
}
loop_config {
	fd int32
	block_size int32
	info loop_info64
	reserved array[int64, 8]
}
|}

let loop_entry : Types.entry =
  Types.driver_entry ~name:"loop" ~display_name:"loop#"
    ~source:loop_source ~existing_spec:loop_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/loop0" ];
        gt_fops = "lo_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("LOOP_SET_FD", None, Syzlang.Ast.In);
              ("LOOP_CLR_FD", None, Syzlang.Ast.In);
              ("LOOP_SET_STATUS", Some "loop_info64", Syzlang.Ast.In);
              ("LOOP_GET_STATUS", Some "loop_info64", Syzlang.Ast.Out);
              ("LOOP_SET_STATUS64", Some "loop_info64", Syzlang.Ast.In);
              ("LOOP_GET_STATUS64", Some "loop_info64", Syzlang.Ast.Out);
              ("LOOP_CHANGE_FD", None, Syzlang.Ast.In);
              ("LOOP_SET_CAPACITY", None, Syzlang.Ast.In);
              ("LOOP_SET_DIRECT_IO", None, Syzlang.Ast.In);
              ("LOOP_SET_BLOCK_SIZE", None, Syzlang.Ast.In);
              ("LOOP_CONFIGURE", Some "loop_config", Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* nbd0                                                                *)
(* ------------------------------------------------------------------ *)

let nbd_source =
  {|
#define NBD_SET_SOCK 0xab00
#define NBD_SET_BLKSIZE 0xab01
#define NBD_SET_SIZE 0xab02
#define NBD_DO_IT 0xab03
#define NBD_CLEAR_SOCK 0xab04
#define NBD_CLEAR_QUE 0xab05
#define NBD_PRINT_DEBUG 0xab06
#define NBD_SET_SIZE_BLOCKS 0xab07
#define NBD_DISCONNECT 0xab08
#define NBD_SET_TIMEOUT 0xab09
#define NBD_SET_FLAGS 0xab0a

struct request_queue {
  struct completion throttle_done;
  int throttled;
};

struct nbd_device {
  int sock_set;
  int connected;
  u32 blksize;
  u64 bytesize;
  u32 timeout;
  u32 flags;
  struct request_queue queue;
};

static struct nbd_device _nbd;

static void __rq_qos_throttle(struct request_queue *q)
{
  q->throttled = 1;
  /* the completion is only signalled by a server that never exists */
  wait_for_completion_killable(&q->throttle_done);
}

static int nbd_start_device(struct nbd_device *nbd)
{
  if (!nbd->sock_set)
    return -EINVAL;
  nbd->connected = 1;
  __rq_qos_throttle(&nbd->queue);
  return 0;
}

static int nbd_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  switch (cmd) {
  case NBD_SET_SOCK:
    if (_nbd.sock_set)
      return -EBUSY;
    _nbd.sock_set = 1;
    return 0;
  case NBD_CLEAR_SOCK:
    _nbd.sock_set = 0;
    return 0;
  case NBD_SET_BLKSIZE:
    if (arg < 512 || arg > 4096)
      return -EINVAL;
    if (arg & (arg - 1))
      return -EINVAL;
    _nbd.blksize = arg;
    return 0;
  case NBD_SET_SIZE:
    _nbd.bytesize = arg;
    return 0;
  case NBD_SET_SIZE_BLOCKS:
    if (_nbd.blksize == 0)
      return -EINVAL;
    _nbd.bytesize = arg * _nbd.blksize;
    return 0;
  case NBD_DO_IT:
    return nbd_start_device(&_nbd);
  case NBD_DISCONNECT:
    if (!_nbd.connected)
      return -ENOTCONN;
    _nbd.connected = 0;
    return 0;
  case NBD_CLEAR_QUE:
    return 0;
  case NBD_PRINT_DEBUG:
    return 0;
  case NBD_SET_TIMEOUT:
    _nbd.timeout = arg;
    return 0;
  case NBD_SET_FLAGS:
    if (arg & ~0xffff)
      return -EINVAL;
    _nbd.flags = arg;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int nbd_ioctl_locked(struct file *file, unsigned int cmd, unsigned long arg)
{
  return nbd_ioctl(file, cmd, arg);
}

static long __nbd_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  return nbd_ioctl_locked(file, cmd, arg);
}

static long nbd_unlocked_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  if (!capable(0))
    return -EPERM;
  return __nbd_ioctl(file, cmd, arg);
}

static const struct file_operations nbd_fops = {
  .unlocked_ioctl = nbd_unlocked_ioctl,
  .compat_ioctl = nbd_unlocked_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int nbd_init(void)
{
  register_chrdev(43, "nbd", &nbd_fops);
  device_create(0, 0, 0, 0, "nbd0");
  return 0;
}
|}

(* NBD_DO_IT is missing from the hand-written spec — the bug hides there. *)
let nbd_existing_spec =
  {|resource fd_nbd[fd]
openat$nbd(fd const[AT_FDCWD], file ptr[in, string["/dev/nbd0"]], flags const[O_RDWR], mode const[0]) fd_nbd
ioctl$NBD_SET_SOCK(fd fd_nbd, cmd const[NBD_SET_SOCK], arg fd)
ioctl$NBD_SET_BLKSIZE(fd fd_nbd, cmd const[NBD_SET_BLKSIZE], arg intptr)
ioctl$NBD_SET_SIZE(fd fd_nbd, cmd const[NBD_SET_SIZE], arg intptr)
ioctl$NBD_CLEAR_SOCK(fd fd_nbd, cmd const[NBD_CLEAR_SOCK], arg const[0])
ioctl$NBD_CLEAR_QUE(fd fd_nbd, cmd const[NBD_CLEAR_QUE], arg const[0])
ioctl$NBD_PRINT_DEBUG(fd fd_nbd, cmd const[NBD_PRINT_DEBUG], arg const[0])
ioctl$NBD_SET_SIZE_BLOCKS(fd fd_nbd, cmd const[NBD_SET_SIZE_BLOCKS], arg intptr)
ioctl$NBD_DISCONNECT(fd fd_nbd, cmd const[NBD_DISCONNECT], arg const[0])
ioctl$NBD_SET_TIMEOUT(fd fd_nbd, cmd const[NBD_SET_TIMEOUT], arg intptr)
ioctl$NBD_SET_FLAGS(fd fd_nbd, cmd const[NBD_SET_FLAGS], arg intptr)
|}

let nbd_entry : Types.entry =
  Types.driver_entry ~name:"nbd" ~display_name:"nbd#"
    ~source:nbd_source ~existing_spec:nbd_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/nbd0" ];
        gt_fops = "nbd_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [
              "NBD_SET_SOCK"; "NBD_SET_BLKSIZE"; "NBD_SET_SIZE"; "NBD_DO_IT"; "NBD_CLEAR_SOCK";
              "NBD_CLEAR_QUE"; "NBD_PRINT_DEBUG"; "NBD_SET_SIZE_BLOCKS"; "NBD_DISCONNECT";
              "NBD_SET_TIMEOUT"; "NBD_SET_FLAGS";
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* sg0 (SCSI generic)                                                  *)
(* ------------------------------------------------------------------ *)

let sg_source =
  {|
#define SG_IO 0x2285
#define SG_GET_VERSION_NUM 0x2282
#define SG_SET_TIMEOUT 0x2201
#define SG_GET_TIMEOUT 0x2202
#define SG_SET_RESERVED_SIZE 0x2275
#define SG_GET_RESERVED_SIZE 0x2272
#define SG_EMULATED_HOST 0x2203
#define SG_SET_COMMAND_Q 0x2271
#define SG_GET_COMMAND_Q 0x2270
#define SG_GET_SCSI_ID 0x2276
#define SG_SET_FORCE_PACK_ID 0x227b
#define SG_GET_PACK_ID 0x227c
#define SG_GET_NUM_WAITING 0x227d
#define SG_SCSI_RESET 0x2284
#define SG_MAX_CDB 16
#define SG_DXFER_NONE -1
#define SG_DXFER_TO_DEV -2
#define SG_DXFER_FROM_DEV -3

struct sg_io_hdr {
  s32 interface_id;      /* 'S' for SCSI generic */
  s32 dxfer_direction;
  u8 cmd_len;            /* length of the CDB in cmdp */
  u8 mx_sb_len;
  u16 iovec_count;
  u32 dxfer_len;
  u64 dxferp;
  u64 cmdp;              /* user pointer to the SCSI command */
  u64 sbp;
  u32 timeout;
  u32 flags;
  s32 pack_id;
  u64 usr_ptr;
  u8 status;
  u8 masked_status;
  u8 msg_status;
  u8 sb_len_wr;
  u16 host_status;
  u16 driver_status;
  s32 resid;
  u32 duration;
  u32 info;
};

struct sg_scsi_id {
  s32 host_no;
  s32 channel;
  s32 scsi_id;
  s32 lun;
  s32 scsi_type;
  s16 h_cmd_per_lun;
  s16 d_queue_depth;
  s32 unused[2];
};

struct sg_device {
  int timeout;
  int reserved_size;
  int command_q;
  int force_pack_id;
  int pack_id;
};

static struct sg_device _sg_dev;

static int sg_io(struct sg_io_hdr *hdr)
{
  if (hdr->interface_id != 'S')
    return -ENOSYS;
  if (hdr->cmd_len == 0 || hdr->cmd_len > SG_MAX_CDB)
    return -EMSGSIZE;
  if (hdr->dxfer_direction > -1 || hdr->dxfer_direction < -4)
    return -EINVAL;
  if (hdr->iovec_count > 16)
    return -EINVAL;
  hdr->status = 0;
  hdr->duration = 1;
  return 0;
}

static long sg_ioctl(struct file *filp, unsigned int cmd_in, unsigned long arg)
{
  struct sg_io_hdr hdr;
  struct sg_scsi_id id;
  int val;
  switch (cmd_in) {
  case SG_IO:
    if (copy_from_user(&hdr, (void *)arg, sizeof(struct sg_io_hdr)))
      return -EFAULT;
    val = sg_io(&hdr);
    if (val == 0)
      copy_to_user((void *)arg, &hdr, sizeof(struct sg_io_hdr));
    return val;
  case SG_GET_VERSION_NUM:
    val = 30536;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case SG_SET_TIMEOUT:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 0)
      return -EIO;
    _sg_dev.timeout = val;
    return 0;
  case SG_GET_TIMEOUT:
    return _sg_dev.timeout;
  case SG_SET_RESERVED_SIZE:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 0)
      return -EINVAL;
    if (val > 262144)
      val = 262144;
    _sg_dev.reserved_size = val;
    return 0;
  case SG_GET_RESERVED_SIZE:
    if (copy_to_user((void *)arg, &_sg_dev.reserved_size, 4))
      return -EFAULT;
    return 0;
  case SG_EMULATED_HOST:
    val = 1;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case SG_SET_COMMAND_Q:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _sg_dev.command_q = val;
    return 0;
  case SG_GET_COMMAND_Q:
    if (copy_to_user((void *)arg, &_sg_dev.command_q, 4))
      return -EFAULT;
    return 0;
  case SG_GET_SCSI_ID:
    id.host_no = 0;
    id.scsi_id = 0;
    id.scsi_type = 5;
    if (copy_to_user((void *)arg, &id, sizeof(struct sg_scsi_id)))
      return -EFAULT;
    return 0;
  case SG_SET_FORCE_PACK_ID:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _sg_dev.force_pack_id = val;
    return 0;
  case SG_GET_PACK_ID:
    if (copy_to_user((void *)arg, &_sg_dev.pack_id, 4))
      return -EFAULT;
    return 0;
  case SG_GET_NUM_WAITING:
    val = 0;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case SG_SCSI_RESET:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 0 || val > 4)
      return -EINVAL;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int sg_open(struct inode *inode, struct file *filp)
{
  return 0;
}

static const struct file_operations sg_fops = {
  .open = sg_open,
  .unlocked_ioctl = sg_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int sg_init(void)
{
  register_chrdev(21, "sg", &sg_fops);
  device_create(0, 0, 0, 0, "sg0");
  return 0;
}
|}

let sg_existing_spec =
  {|resource fd_sg[fd]
openat$sg(fd const[AT_FDCWD], file ptr[in, string["/dev/sg0"]], flags const[O_RDWR], mode const[0]) fd_sg
ioctl$SG_IO(fd fd_sg, cmd const[SG_IO], arg ptr[inout, sg_io_hdr])
ioctl$SG_GET_VERSION_NUM(fd fd_sg, cmd const[SG_GET_VERSION_NUM], arg ptr[out, int32])
ioctl$SG_SET_TIMEOUT(fd fd_sg, cmd const[SG_SET_TIMEOUT], arg ptr[in, int32])
ioctl$SG_GET_TIMEOUT(fd fd_sg, cmd const[SG_GET_TIMEOUT], arg const[0])
ioctl$SG_SET_RESERVED_SIZE(fd fd_sg, cmd const[SG_SET_RESERVED_SIZE], arg ptr[in, int32])
ioctl$SG_GET_RESERVED_SIZE(fd fd_sg, cmd const[SG_GET_RESERVED_SIZE], arg ptr[out, int32])
ioctl$SG_EMULATED_HOST(fd fd_sg, cmd const[SG_EMULATED_HOST], arg ptr[out, int32])
ioctl$SG_GET_SCSI_ID(fd fd_sg, cmd const[SG_GET_SCSI_ID], arg ptr[out, sg_scsi_id])
ioctl$SG_SET_FORCE_PACK_ID(fd fd_sg, cmd const[SG_SET_FORCE_PACK_ID], arg ptr[in, int32])
ioctl$SG_GET_PACK_ID(fd fd_sg, cmd const[SG_GET_PACK_ID], arg ptr[out, int32])
ioctl$SG_SCSI_RESET(fd fd_sg, cmd const[SG_SCSI_RESET], arg ptr[in, int32])

sg_io_hdr {
	interface_id int32
	dxfer_direction int32
	cmd_len int8
	mx_sb_len int8
	iovec_count int16
	dxfer_len int32
	dxferp int64
	cmdp int64
	sbp int64
	timeout int32
	flags int32
	pack_id int32
	usr_ptr int64
	status int8
	masked_status int8
	msg_status int8
	sb_len_wr int8
	host_status int16
	driver_status int16
	resid int32
	duration int32
	info int32
}
sg_scsi_id {
	host_no int32
	channel int32
	scsi_id int32
	lun int32
	scsi_type int32
	h_cmd_per_lun int16
	d_queue_depth int16
	unused array[int32, 2]
}
|}

let sg_entry : Types.entry =
  Types.driver_entry ~name:"sg" ~display_name:"sg#"
    ~source:sg_source ~existing_spec:sg_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/sg0" ];
        gt_fops = "sg_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("SG_IO", Some "sg_io_hdr", Syzlang.Ast.Inout);
              ("SG_GET_VERSION_NUM", None, Syzlang.Ast.Out);
              ("SG_SET_TIMEOUT", None, Syzlang.Ast.In);
              ("SG_GET_TIMEOUT", None, Syzlang.Ast.In);
              ("SG_SET_RESERVED_SIZE", None, Syzlang.Ast.In);
              ("SG_GET_RESERVED_SIZE", None, Syzlang.Ast.Out);
              ("SG_EMULATED_HOST", None, Syzlang.Ast.Out);
              ("SG_SET_COMMAND_Q", None, Syzlang.Ast.In);
              ("SG_GET_COMMAND_Q", None, Syzlang.Ast.Out);
              ("SG_GET_SCSI_ID", Some "sg_scsi_id", Syzlang.Ast.Out);
              ("SG_SET_FORCE_PACK_ID", None, Syzlang.Ast.In);
              ("SG_GET_PACK_ID", None, Syzlang.Ast.Out);
              ("SG_GET_NUM_WAITING", None, Syzlang.Ast.Out);
              ("SG_SCSI_RESET", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* sr0 (SCSI cdrom) — the _IOC_NR rewrite pattern                      *)
(* ------------------------------------------------------------------ *)

let sr_source =
  {|
#define CDROM_MAGIC 0x53
#define CDROMPAUSE_NR 1
#define CDROMRESUME_NR 2
#define CDROMPLAYMSF_NR 3
#define CDROMPLAYTRKIND_NR 4
#define CDROMREADTOCHDR_NR 5
#define CDROMREADTOCENTRY_NR 6
#define CDROMSTOP_NR 7
#define CDROMSTART_NR 8
#define CDROMEJECT_NR 9
#define CDROMVOLCTRL_NR 10
#define CDROMSUBCHNL_NR 11
#define CDROMVOLREAD_NR 19
#define CDROMRESET_NR 18

#define CDROMPAUSE _IO(CDROM_MAGIC, CDROMPAUSE_NR)
#define CDROMRESUME _IO(CDROM_MAGIC, CDROMRESUME_NR)
#define CDROMPLAYMSF _IOW(CDROM_MAGIC, CDROMPLAYMSF_NR, struct cdrom_msf)
#define CDROMPLAYTRKIND _IOW(CDROM_MAGIC, CDROMPLAYTRKIND_NR, struct cdrom_ti)
#define CDROMREADTOCHDR _IOR(CDROM_MAGIC, CDROMREADTOCHDR_NR, struct cdrom_tochdr)
#define CDROMREADTOCENTRY _IOWR(CDROM_MAGIC, CDROMREADTOCENTRY_NR, struct cdrom_tocentry)
#define CDROMSTOP _IO(CDROM_MAGIC, CDROMSTOP_NR)
#define CDROMSTART _IO(CDROM_MAGIC, CDROMSTART_NR)
#define CDROMEJECT _IO(CDROM_MAGIC, CDROMEJECT_NR)
#define CDROMVOLCTRL _IOW(CDROM_MAGIC, CDROMVOLCTRL_NR, struct cdrom_volctrl)
#define CDROMSUBCHNL _IOWR(CDROM_MAGIC, CDROMSUBCHNL_NR, struct cdrom_subchnl)
#define CDROMVOLREAD _IOR(CDROM_MAGIC, CDROMVOLREAD_NR, struct cdrom_volctrl)
#define CDROMRESET _IO(CDROM_MAGIC, CDROMRESET_NR)

struct cdrom_msf {
  u8 cdmsf_min0;     /* start minute */
  u8 cdmsf_sec0;
  u8 cdmsf_frame0;
  u8 cdmsf_min1;     /* end minute */
  u8 cdmsf_sec1;
  u8 cdmsf_frame1;
};

struct cdrom_ti {
  u8 cdti_trk0;
  u8 cdti_ind0;
  u8 cdti_trk1;
  u8 cdti_ind1;
};

struct cdrom_tochdr {
  u8 cdth_trk0;
  u8 cdth_trk1;
};

struct cdrom_tocentry {
  u8 cdte_track;
  u8 cdte_adr_ctrl;
  u8 cdte_format;
  u32 cdte_addr;
  u8 cdte_datamode;
};

struct cdrom_volctrl {
  u8 channel0;
  u8 channel1;
  u8 channel2;
  u8 channel3;
};

struct cdrom_subchnl {
  u8 cdsc_format;
  u8 cdsc_audiostatus;
  u8 cdsc_adr_ctrl;
  u8 cdsc_trk;
  u8 cdsc_ind;
  u32 cdsc_absaddr;
  u32 cdsc_reladdr;
};

struct sr_state {
  int playing;
  int paused;
  int door_open;
  u8 vol0;
};

static struct sr_state _sr;

static int sr_audio_ioctl(unsigned int nr, unsigned long arg)
{
  struct cdrom_msf msf;
  struct cdrom_ti ti;
  struct cdrom_tochdr hdr;
  struct cdrom_tocentry entry;
  struct cdrom_volctrl vol;
  struct cdrom_subchnl subchnl;
  switch (nr) {
  case CDROMPAUSE_NR:
    if (!_sr.playing)
      return -EINVAL;
    _sr.paused = 1;
    return 0;
  case CDROMRESUME_NR:
    if (!_sr.paused)
      return -EINVAL;
    _sr.paused = 0;
    return 0;
  case CDROMPLAYMSF_NR:
    if (copy_from_user(&msf, (void *)arg, sizeof(struct cdrom_msf)))
      return -EFAULT;
    if (msf.cdmsf_sec0 > 59 || msf.cdmsf_sec1 > 59)
      return -EINVAL;
    if (msf.cdmsf_frame0 > 74 || msf.cdmsf_frame1 > 74)
      return -EINVAL;
    _sr.playing = 1;
    return 0;
  case CDROMPLAYTRKIND_NR:
    if (copy_from_user(&ti, (void *)arg, sizeof(struct cdrom_ti)))
      return -EFAULT;
    if (ti.cdti_trk0 > ti.cdti_trk1)
      return -EINVAL;
    _sr.playing = 1;
    return 0;
  case CDROMREADTOCHDR_NR:
    hdr.cdth_trk0 = 1;
    hdr.cdth_trk1 = 12;
    if (copy_to_user((void *)arg, &hdr, sizeof(struct cdrom_tochdr)))
      return -EFAULT;
    return 0;
  case CDROMREADTOCENTRY_NR:
    if (copy_from_user(&entry, (void *)arg, sizeof(struct cdrom_tocentry)))
      return -EFAULT;
    if (entry.cdte_format != 1 && entry.cdte_format != 2)
      return -EINVAL;
    if (entry.cdte_track > 12 && entry.cdte_track != 0xaa)
      return -EINVAL;
    entry.cdte_addr = 150;
    if (copy_to_user((void *)arg, &entry, sizeof(struct cdrom_tocentry)))
      return -EFAULT;
    return 0;
  case CDROMSTOP_NR:
    _sr.playing = 0;
    _sr.paused = 0;
    return 0;
  case CDROMSTART_NR:
    return 0;
  case CDROMEJECT_NR:
    if (_sr.playing)
      return -EBUSY;
    _sr.door_open = 1;
    return 0;
  case CDROMVOLCTRL_NR:
    if (copy_from_user(&vol, (void *)arg, sizeof(struct cdrom_volctrl)))
      return -EFAULT;
    _sr.vol0 = vol.channel0;
    return 0;
  case CDROMVOLREAD_NR:
    vol.channel0 = _sr.vol0;
    if (copy_to_user((void *)arg, &vol, sizeof(struct cdrom_volctrl)))
      return -EFAULT;
    return 0;
  case CDROMSUBCHNL_NR:
    if (copy_from_user(&subchnl, (void *)arg, sizeof(struct cdrom_subchnl)))
      return -EFAULT;
    if (subchnl.cdsc_format != 1 && subchnl.cdsc_format != 2)
      return -EINVAL;
    subchnl.cdsc_audiostatus = _sr.playing;
    if (copy_to_user((void *)arg, &subchnl, sizeof(struct cdrom_subchnl)))
      return -EFAULT;
    return 0;
  case CDROMRESET_NR:
    if (!capable(0))
      return -EACCES;
    _sr.playing = 0;
    return 0;
  default:
    return -ENOSYS;
  }
}

static long sr_block_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  unsigned int nr;
  if (_IOC_TYPE(cmd) != CDROM_MAGIC)
    return -ENOTTY;
  nr = _IOC_NR(cmd);
  return sr_audio_ioctl(nr, arg);
}

static int sr_block_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations sr_bdops = {
  .open = sr_block_open,
  .unlocked_ioctl = sr_block_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int sr_init(void)
{
  register_chrdev(11, "sr", &sr_bdops);
  device_create(0, 0, 0, 0, "sr0");
  return 0;
}
|}

(* The hand-written spec never described the audio commands: one generic
   ioctl only (matching the paper's #Sys = 1 for sr#). *)
let sr_existing_spec =
  {|resource fd_sr[fd]
openat$sr(fd const[AT_FDCWD], file ptr[in, string["/dev/sr0"]], flags const[O_RDONLY], mode const[0]) fd_sr
|}

let sr_entry : Types.entry =
  Types.driver_entry ~name:"sr" ~display_name:"sr#"
    ~source:sr_source ~existing_spec:sr_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/sr0" ];
        gt_fops = "sr_bdops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("CDROMPAUSE", None, Syzlang.Ast.In);
              ("CDROMRESUME", None, Syzlang.Ast.In);
              ("CDROMPLAYMSF", Some "cdrom_msf", Syzlang.Ast.In);
              ("CDROMPLAYTRKIND", Some "cdrom_ti", Syzlang.Ast.In);
              ("CDROMREADTOCHDR", Some "cdrom_tochdr", Syzlang.Ast.Out);
              ("CDROMREADTOCENTRY", Some "cdrom_tocentry", Syzlang.Ast.Inout);
              ("CDROMSTOP", None, Syzlang.Ast.In);
              ("CDROMSTART", None, Syzlang.Ast.In);
              ("CDROMEJECT", None, Syzlang.Ast.In);
              ("CDROMVOLCTRL", Some "cdrom_volctrl", Syzlang.Ast.In);
              ("CDROMVOLREAD", Some "cdrom_volctrl", Syzlang.Ast.Out);
              ("CDROMSUBCHNL", Some "cdrom_subchnl", Syzlang.Ast.Inout);
              ("CDROMRESET", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

let entries = [ loop_control_entry; loop_entry; nbd_entry; sg_entry; sr_entry ]
