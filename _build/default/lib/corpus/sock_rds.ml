(** The RDS socket (AF_RDS, SOCK_SEQPACKET).

    The paper's §5.1.4 case: Syzkaller's hand-written RDS descriptions
    cover only [recvmsg]; generating the missing [sendto]/[sendmsg]
    description exposes "UBSAN: array-index-out-of-bounds in
    rds_cmsg_recv" (CVE-2024-23849) — a user-controlled rx-trace position
    indexing a fixed 4-slot array. *)

let source =
  {|
#define RDS_CANCEL_SENT_TO 1
#define RDS_GET_MR 2
#define RDS_FREE_MR 3
#define RDS_RECVERR 5
#define RDS_CONG_MONITOR 6
#define SO_RDS_TRANSPORT 8
#define RDS_MSG_RX_DGRAM_TRACE_MAX 4
#define RDS_TRANS_TCP 2

struct sockaddr_rds {
  u16 sin_family;
  u16 sin_port;
  u32 sin_addr;
  u8 sin_zero[8];
};

struct rds_get_mr_args {
  u64 vec_addr;
  u64 vec_bytes;
  u64 cookie_addr;
  u64 flags;
};

struct rds_free_mr_args {
  u64 cookie;
  u64 flags;
};

struct rds_rx_trace_so {
  u8 rx_traces;                 /* number of trace points requested */
  u8 rx_trace_pos[4];           /* position of each trace point */
};

struct rds_incoming {
  u64 rx_lat_trace[4];
  u32 flags;
};

struct rds_sock_state {
  int bound;
  int connected;
  int transport;
  int recverr;
  u32 bound_addr;
};

static struct rds_sock_state _rds_sk;

static int rds_bind(struct socket *sock, struct sockaddr *uaddr, int addr_len)
{
  struct sockaddr_rds *sin;
  sin = (struct sockaddr_rds *)uaddr;
  if (addr_len < 8)
    return -EINVAL;
  if (sin->sin_family != AF_RDS)
    return -EAFNOSUPPORT;
  if (_rds_sk.bound)
    return -EINVAL;
  _rds_sk.bound = 1;
  _rds_sk.bound_addr = sin->sin_addr;
  return 0;
}

static int rds_connect(struct socket *sock, struct sockaddr *uaddr, int addr_len, int flags)
{
  struct sockaddr_rds *sin;
  sin = (struct sockaddr_rds *)uaddr;
  if (sin->sin_family != AF_RDS)
    return -EAFNOSUPPORT;
  if (sin->sin_port == 0)
    return -EINVAL;
  _rds_sk.connected = 1;
  return 0;
}

static int rds_cmsg_recv(struct rds_incoming *inc, struct rds_rx_trace_so *trace)
{
  int i;
  int pos;
  for (i = 0; i < trace->rx_traces; i = i + 1) {
    pos = trace->rx_trace_pos[i];
    /* pos is user controlled and never checked against the array bound */
    inc->rx_lat_trace[pos] = 1;
  }
  return 0;
}

static int rds_sendmsg(struct socket *sock, struct msghdr *msg, size_t payload_len)
{
  struct sockaddr_rds *usin;
  struct rds_incoming inc;
  struct rds_rx_trace_so *trace;
  if (!_rds_sk.bound)
    return -ENOTCONN;
  usin = (struct sockaddr_rds *)msg->msg_name;
  if (usin) {
    if (usin->sin_family != AF_RDS)
      return -EAFNOSUPPORT;
  } else {
    if (!_rds_sk.connected)
      return -ENOTCONN;
  }
  if (payload_len > 0x100000)
    return -EMSGSIZE;
  if (msg->msg_control) {
    trace = (struct rds_rx_trace_so *)msg->msg_control;
    return rds_cmsg_recv(&inc, trace);
  }
  return payload_len;
}

static int rds_recvmsg(struct socket *sock, struct msghdr *msg, size_t size, int msg_flags)
{
  if (!_rds_sk.bound)
    return -ENOTCONN;
  if (msg_flags & MSG_DONTWAIT)
    return -EAGAIN;
  return 0;
}

static int rds_setsockopt(struct socket *sock, int level, int optname, char *optval,
                          unsigned int optlen)
{
  struct rds_get_mr_args mr;
  struct rds_free_mr_args fmr;
  int value;
  switch (optname) {
  case RDS_CANCEL_SENT_TO:
    if (optlen < 8)
      return -EINVAL;
    return 0;
  case RDS_GET_MR:
    if (copy_from_user(&mr, optval, sizeof(struct rds_get_mr_args)))
      return -EFAULT;
    if (mr.vec_bytes == 0)
      return -EINVAL;
    return 0;
  case RDS_FREE_MR:
    if (copy_from_user(&fmr, optval, sizeof(struct rds_free_mr_args)))
      return -EFAULT;
    return 0;
  case RDS_RECVERR:
    if (copy_from_user(&value, optval, 4))
      return -EFAULT;
    _rds_sk.recverr = value;
    return 0;
  case RDS_CONG_MONITOR:
    if (copy_from_user(&value, optval, 4))
      return -EFAULT;
    return 0;
  case SO_RDS_TRANSPORT:
    if (copy_from_user(&value, optval, 4))
      return -EFAULT;
    if (value > RDS_TRANS_TCP)
      return -EINVAL;
    _rds_sk.transport = value;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int rds_getsockopt(struct socket *sock, int level, int optname, char *optval,
                          int *optlen)
{
  switch (optname) {
  case RDS_RECVERR:
    return 0;
  case SO_RDS_TRANSPORT:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int rds_release(struct socket *sock)
{
  _rds_sk.bound = 0;
  _rds_sk.connected = 0;
  return 0;
}

static u32 rds_poll(struct file *file, struct socket *sock, poll_table *wait)
{
  return 1;
}

static const struct proto_ops rds_proto_ops = {
  .family = AF_RDS,
  .owner = THIS_MODULE,
  .release = rds_release,
  .bind = rds_bind,
  .connect = rds_connect,
  .poll = rds_poll,
  .setsockopt = rds_setsockopt,
  .getsockopt = rds_getsockopt,
  .sendmsg = rds_sendmsg,
  .recvmsg = rds_recvmsg,
};
|}

(* Syzkaller's manual RDS spec covers recvmsg (and socket/bind), but not
   sendto/sendmsg — the gap §5.1.4 describes. *)
let existing_spec =
  {|resource sock_rds[fd]
socket$rds(domain const[AF_RDS], type const[SOCK_SEQPACKET], proto const[0]) sock_rds
bind$rds(fd sock_rds, addr ptr[in, sockaddr_rds], addrlen const[16])
recvmsg$rds(fd sock_rds, msg ptr[inout, rds_recv_msghdr], f flags[rds_msg_flags, int32])
setsockopt$rds_RDS_RECVERR(fd sock_rds, level const[0], optname const[RDS_RECVERR], optval ptr[in, int32], optlen const[4])

rds_msg_flags = MSG_DONTWAIT, 0

sockaddr_rds {
	sin_family const[AF_RDS, int16]
	sin_port int16
	sin_addr int32
	sin_zero array[int8, 8]
}
rds_recv_msghdr {
	msg_name ptr[in, sockaddr_rds]
	msg_namelen const[16, int32]
	msg_iov ptr[in, array[int8]]
	msg_iovlen int64
	msg_control int64
	msg_controllen int64
	msg_flags int32
}
|}

let entry : Types.entry =
  Types.socket_entry ~name:"rds" ~display_name:"rds"
    ~source ~existing_spec ~in_table6:true
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "rds_proto_ops";
        gt_socket = Some (21, 5, 0);
        gt_ioctls = [];
        gt_setsockopts =
          [
            { Types.gc_name = "RDS_CANCEL_SENT_TO"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "RDS_GET_MR"; gc_arg_type = Some "rds_get_mr_args"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "RDS_FREE_MR"; gc_arg_type = Some "rds_free_mr_args"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "RDS_RECVERR"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "RDS_CONG_MONITOR"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "SO_RDS_TRANSPORT"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_syscalls =
          [ "socket"; "bind"; "connect"; "sendmsg"; "sendto"; "recvmsg"; "setsockopt"; "getsockopt"; "poll" ];
      }
    ()
