(** The CEC (consumer electronics control) driver.

    The paper reports five new bugs here and notes that the
    KernelGPT-generated CEC specification (12 syscalls, 10 structs/unions,
    47 fields) was merged into Syzkaller. Registration uses the
    cdev + [device_create] idiom, so the device path is only visible by
    tracing the module init function — the case KSG-style probing and
    shallow static rules miss.

    Injected bugs (Table 4):
    - "KASAN: slab-use-after-free Read in cec_queue_msg_fh"
      (CVE-2024-23848): release forgets to clear the adapter's monitor
      pointer, a later transmit on another fd reads the freed fh;
    - "ODEBUG bug in cec_transmit_msg_fh": zero-timeout transmits re-arm
      the tx timer without cancelling it;
    - "WARNING in cec_data_cancel": closing with a pending blocking
      transmit cancels data that was never activated;
    - "INFO: task hung in cec_claim_log_addrs": claiming logical
      addresses with an invalid physical address waits forever;
    - "general protection fault in cec_transmit_done_ts": raw-flag
      transmits report completion through a NULL transfer record. *)

let source =
  {|
#define CEC_MAX_MSG_SIZE 16
#define CEC_MAX_LOG_ADDRS 4
#define CEC_PHYS_ADDR_INVALID 0xffff
#define CEC_MODE_MONITOR_ALL 0xe0
#define CEC_MODE_INITIATOR 1
#define CEC_MSG_FL_REPLY_TO_FOLLOWERS 1
#define CEC_MSG_FL_RAW 2
#define CEC_LOG_ADDRS_FL_ALLOW_UNREG_FALLBACK 1

#define CEC_ADAP_G_CAPS _IOWR('a', 0, struct cec_caps)
#define CEC_ADAP_G_PHYS_ADDR _IOR('a', 1, u16)
#define CEC_ADAP_S_PHYS_ADDR _IOW('a', 2, u16)
#define CEC_ADAP_G_LOG_ADDRS _IOR('a', 3, struct cec_log_addrs)
#define CEC_ADAP_S_LOG_ADDRS _IOWR('a', 4, struct cec_log_addrs)
#define CEC_TRANSMIT _IOWR('a', 5, struct cec_msg)
#define CEC_RECEIVE _IOWR('a', 6, struct cec_msg)
#define CEC_DQEVENT _IOWR('a', 7, struct cec_event)
#define CEC_G_MODE _IOR('a', 8, u32)
#define CEC_S_MODE _IOW('a', 9, u32)
#define CEC_ADAP_G_CONNECTOR_INFO _IOR('a', 10, struct cec_connector_info)

struct cec_caps {
  char driver[32];        /* name of the cec adapter driver */
  char name[32];          /* name of this cec adapter */
  u32 available_log_addrs;
  u32 capabilities;
  u32 version;
};

struct cec_msg {
  u64 tx_ts;
  u64 rx_ts;
  u32 len;               /* length of the message in msg[] */
  u32 timeout;           /* reply timeout in ms, 0 means no reply wait */
  u32 sequence;
  u32 flags;
  u8 msg[16];
  u8 reply;
  u8 rx_status;
  u8 tx_status;
  u8 tx_arb_lost_cnt;
  u8 tx_nack_cnt;
  u8 tx_low_drive_cnt;
  u8 tx_error_cnt;
};

struct cec_log_addrs {
  u8 log_addr[4];
  u16 log_addr_mask;
  u8 cec_version;
  u8 num_log_addrs;      /* number of requested logical addresses */
  u32 vendor_id;
  u32 flags;
  char osd_name[15];
  u8 primary_device_type[4];
  u8 log_addr_type[4];
  u8 all_device_types[4];
};

struct cec_event_state_change {
  u16 phys_addr;
  u16 log_addr_mask;
  u16 have_conn_info;
};

struct cec_event_lost_msgs {
  u32 lost_msgs;
};

union cec_event_payload {
  struct cec_event_state_change state_change;
  struct cec_event_lost_msgs lost_msgs;
};

struct cec_event {
  u64 ts;
  u32 event;
  u32 flags;
  union cec_event_payload payload;
};

struct cec_drm_connector_info {
  u32 card_no;
  u32 connector_id;
};

struct cec_connector_info {
  u32 type;
  struct cec_drm_connector_info drm;
};

struct cec_data {
  struct cec_msg msg;
  int state;             /* 0 = new, 1 = transmitting, 2 = done */
  int blocking;
};

struct cec_fh {
  u32 mode_initiator;
  u32 mode_follower;
  u32 pending_events;
  int valid;
};

struct cec_adapter {
  u16 phys_addr;
  u16 log_addr_mask;
  int configured;
  int tx_in_flight;
  struct cec_fh *monitor;     /* monitoring filehandle, if any */
  struct cec_data *xfer;      /* current transfer record */
  struct mutex lock;
  struct completion config_done;
  struct list_head tx_queue;
  int tx_timer_armed;
};

static struct cec_adapter _cec_adap;
static int _cec_timer_obj_init;

static struct cec_fh *cec_get_fh(struct file *filp)
{
  return (struct cec_fh *)filp->private_data;
}

static int cec_adap_g_caps(struct cec_caps *caps)
{
  strncpy(caps->driver, "vivid", 32);
  strncpy(caps->name, "vivid-cec", 32);
  caps->available_log_addrs = CEC_MAX_LOG_ADDRS;
  caps->capabilities = 0x3f;
  caps->version = 0x060700;
  return 0;
}

static void cec_queue_msg_fh(struct cec_fh *fh, struct cec_msg *msg)
{
  /* CVE-2024-23848: fh may already have been freed by cec_release */
  if (fh->mode_follower == CEC_MODE_MONITOR_ALL)
    fh->pending_events = fh->pending_events + 1;
}

static void cec_transmit_done_ts(struct cec_adapter *adap)
{
  struct cec_data *data;
  data = adap->xfer;
  /* raw transmits finish without a transfer record: NULL dereference */
  data->state = 2;
  adap->tx_in_flight = 0;
}

static int cec_claim_log_addrs(struct cec_adapter *adap, struct cec_log_addrs *las)
{
  if (adap->phys_addr == CEC_PHYS_ADDR_INVALID) {
    /* waits for a configuration event that can never arrive */
    wait_for_completion_killable(&adap->config_done);
  }
  adap->log_addr_mask = 1 << las->log_addr_type[0];
  adap->configured = 1;
  return 0;
}

static int cec_adap_s_log_addrs(struct cec_adapter *adap, struct cec_fh *fh,
                                struct cec_log_addrs *las)
{
  if (las->num_log_addrs > CEC_MAX_LOG_ADDRS)
    return -EINVAL;
  if (las->num_log_addrs == 0) {
    adap->configured = 0;
    adap->log_addr_mask = 0;
    return 0;
  }
  return cec_claim_log_addrs(adap, las);
}

static int cec_transmit_msg_fh(struct cec_adapter *adap, struct cec_fh *fh,
                               struct cec_msg *msg, int blocking)
{
  struct cec_data *data;
  if (msg->len == 0 || msg->len > CEC_MAX_MSG_SIZE)
    return -EINVAL;
  if (msg->flags & CEC_MSG_FL_RAW) {
    if (!capable(0))
      return -EPERM;
    cec_transmit_done_ts(adap);
    return 0;
  }
  if (!adap->configured)
    return -ENONET;
  if (adap->tx_in_flight && adap->xfer)
    return -EBUSY;
  data = kzalloc(sizeof(struct cec_data), GFP_KERNEL);
  if (!data)
    return -ENOMEM;
  data->blocking = blocking;
  data->state = 0;
  if (msg->timeout == 0) {
    /* ODEBUG: the tx timer is re-armed without being cancelled */
    mod_timer(&_cec_adap.tx_queue);
  } else {
    mod_timer(&_cec_adap.tx_queue);
    del_timer(&_cec_adap.tx_queue);
  }
  if (adap->monitor)
    cec_queue_msg_fh(adap->monitor, msg);
  adap->xfer = data;
  adap->tx_in_flight = 1;
  if (msg->timeout) {
    if (!(msg->flags & CEC_MSG_FL_REPLY_TO_FOLLOWERS))
      data->state = 1;
    return 0;
  }
  data->state = 2;
  kfree(data);
  adap->xfer = 0;
  adap->tx_in_flight = 0;
  return 0;
}

static void cec_data_cancel(struct cec_adapter *adap, struct cec_data *data)
{
  /* cancelling a transfer that never got activated */
  WARN_ON(data->state == 0);
  data->state = 2;
  adap->tx_in_flight = 0;
  kfree(data);
  adap->xfer = 0;
}

static int cec_receive_msg(struct cec_fh *fh, struct cec_msg *msg)
{
  if (fh->pending_events == 0)
    return -EAGAIN;
  fh->pending_events = fh->pending_events - 1;
  msg->rx_status = 1;
  return 0;
}

static int cec_dqevent(struct cec_fh *fh, struct cec_event *ev)
{
  ev->event = 1;
  ev->payload.state_change.phys_addr = _cec_adap.phys_addr;
  ev->payload.state_change.log_addr_mask = _cec_adap.log_addr_mask;
  return 0;
}

static long cec_ioctl(struct file *filp, unsigned int cmd, unsigned long parg)
{
  struct cec_fh *fh;
  struct cec_caps caps;
  struct cec_log_addrs las;
  struct cec_msg msg;
  struct cec_event ev;
  u32 mode;
  int err;
  fh = cec_get_fh(filp);
  switch (cmd) {
  case CEC_ADAP_G_CAPS:
    err = cec_adap_g_caps(&caps);
    if (err)
      return err;
    if (copy_to_user((void *)parg, &caps, sizeof(struct cec_caps)))
      return -EFAULT;
    return 0;
  case CEC_ADAP_G_PHYS_ADDR:
    if (copy_to_user((void *)parg, &_cec_adap.phys_addr, 2))
      return -EFAULT;
    return 0;
  case CEC_ADAP_S_PHYS_ADDR:
    if (copy_from_user(&mode, (void *)parg, 2))
      return -EFAULT;
    _cec_adap.phys_addr = mode;
    complete(&_cec_adap.config_done);
    return 0;
  case CEC_ADAP_G_LOG_ADDRS:
    las.log_addr_mask = _cec_adap.log_addr_mask;
    if (copy_to_user((void *)parg, &las, sizeof(struct cec_log_addrs)))
      return -EFAULT;
    return 0;
  case CEC_ADAP_S_LOG_ADDRS:
    if (copy_from_user(&las, (void *)parg, sizeof(struct cec_log_addrs)))
      return -EFAULT;
    return cec_adap_s_log_addrs(&_cec_adap, fh, &las);
  case CEC_TRANSMIT:
    if (copy_from_user(&msg, (void *)parg, sizeof(struct cec_msg)))
      return -EFAULT;
    return cec_transmit_msg_fh(&_cec_adap, fh, &msg, 1);
  case CEC_RECEIVE:
    if (copy_from_user(&msg, (void *)parg, sizeof(struct cec_msg)))
      return -EFAULT;
    return cec_receive_msg(fh, &msg);
  case CEC_DQEVENT:
    err = cec_dqevent(fh, &ev);
    if (err)
      return err;
    if (copy_to_user((void *)parg, &ev, sizeof(struct cec_event)))
      return -EFAULT;
    return 0;
  case CEC_G_MODE:
    mode = fh->mode_initiator | fh->mode_follower;
    if (copy_to_user((void *)parg, &mode, 4))
      return -EFAULT;
    return 0;
  case CEC_S_MODE:
    if (copy_from_user(&mode, (void *)parg, 4))
      return -EFAULT;
    if (mode == CEC_MODE_MONITOR_ALL) {
      if (!capable(0))
        return -EPERM;
      fh->mode_follower = CEC_MODE_MONITOR_ALL;
      _cec_adap.monitor = fh;
      return 0;
    }
    fh->mode_initiator = mode;
    return 0;
  case CEC_ADAP_G_CONNECTOR_INFO:
    return -ENOTTY;
  default:
    return -ENOTTY;
  }
}

static int cec_open(struct inode *inode, struct file *filp)
{
  struct cec_fh *fh;
  if (!_cec_timer_obj_init) {
    /* adapter comes up with an invalid physical address */
    _cec_adap.phys_addr = CEC_PHYS_ADDR_INVALID;
    init_completion(&_cec_adap.config_done);
    _cec_timer_obj_init = 1;
  }
  fh = kzalloc(sizeof(struct cec_fh), GFP_KERNEL);
  if (!fh)
    return -ENOMEM;
  fh->valid = 1;
  filp->private_data = fh;
  return 0;
}

static int cec_release(struct inode *inode, struct file *filp)
{
  struct cec_fh *fh;
  fh = cec_get_fh(filp);
  if (_cec_adap.tx_in_flight && _cec_adap.xfer)
    cec_data_cancel(&_cec_adap, _cec_adap.xfer);
  /* CVE-2024-23848: _cec_adap.monitor is not cleared when fh goes away */
  kfree(fh);
  filp->private_data = 0;
  return 0;
}

static const struct file_operations cec_devnode_fops = {
  .open = cec_open,
  .release = cec_release,
  .unlocked_ioctl = cec_ioctl,
  .owner = THIS_MODULE,
};

static int cec_devnode_register(void)
{
  cdev_init(0, &cec_devnode_fops);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "cec0");
  return 0;
}
|}

let commands =
  [
    ("CEC_ADAP_G_CAPS", Some "cec_caps", Syzlang.Ast.Out);
    ("CEC_ADAP_G_PHYS_ADDR", None, Syzlang.Ast.Out);
    ("CEC_ADAP_S_PHYS_ADDR", None, Syzlang.Ast.In);
    ("CEC_ADAP_G_LOG_ADDRS", Some "cec_log_addrs", Syzlang.Ast.Out);
    ("CEC_ADAP_S_LOG_ADDRS", Some "cec_log_addrs", Syzlang.Ast.Inout);
    ("CEC_TRANSMIT", Some "cec_msg", Syzlang.Ast.Inout);
    ("CEC_RECEIVE", Some "cec_msg", Syzlang.Ast.Inout);
    ("CEC_DQEVENT", Some "cec_event", Syzlang.Ast.Inout);
    ("CEC_G_MODE", None, Syzlang.Ast.Out);
    ("CEC_S_MODE", None, Syzlang.Ast.In);
    ("CEC_ADAP_G_CONNECTOR_INFO", Some "cec_connector_info", Syzlang.Ast.Out);
  ]

let entry : Types.entry =
  Types.driver_entry ~name:"cec" ~display_name:"cec"
    ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/cec0" ];
        gt_fops = "cec_devnode_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()
