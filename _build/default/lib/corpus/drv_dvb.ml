(** The DVB demux and DVR devices ([/dev/dvb/adapter0/demux0] and
    [/dev/dvb/adapter0/dvr0]) — nodename-with-directory registration.

    Injected bugs (Table 4):
    - "possible deadlock in dvb_demux_release": releasing with an active
      section filter re-acquires the demux mutex;
    - "memory leak in dvb_dmxdev_add_pid": adding a duplicate pid leaks
      the freshly allocated feed;
    - "general protection fault in dvb_vb2_expbuf" (CVE-2024-50291):
      exporting a buffer before REQBUFS dereferences the NULL vb2
      context;
    - "memory leak in dvb_dvr_do_ioctl": resizing the DVR buffer forgets
      the previous allocation. *)

let demux_source =
  {|
#define DMX_FILTER_SIZE 16
#define DMX_MAX_PIDS 16

#define DMX_START _IO('o', 41)
#define DMX_STOP _IO('o', 42)
#define DMX_SET_FILTER _IOW('o', 43, struct dmx_sct_filter_params)
#define DMX_SET_PES_FILTER _IOW('o', 44, struct dmx_pes_filter_params)
#define DMX_SET_BUFFER_SIZE _IO('o', 45)
#define DMX_ADD_PID _IOW('o', 51, u16)
#define DMX_REMOVE_PID _IOW('o', 52, u16)
#define DMX_REQBUFS _IOWR('o', 60, struct dmx_requestbuffers)
#define DMX_EXPBUF _IOWR('o', 62, struct dmx_exportbuffer)

struct dmx_filter {
  u8 filter[16];
  u8 mask[16];
  u8 mode[16];
};

struct dmx_sct_filter_params {
  u16 pid;          /* packet id to filter */
  struct dmx_filter filter;
  u32 timeout;
  u32 flags;
};

struct dmx_pes_filter_params {
  u16 pid;
  u32 input;
  u32 output;
  u32 pes_type;
  u32 flags;
};

struct dmx_requestbuffers {
  u32 count;        /* number of requested buffers */
  u32 size;         /* size of each buffer */
};

struct dmx_exportbuffer {
  u32 index;        /* buffer index to export */
  u32 flags;
  s32 fd;
};

struct dvb_vb2_ctx {
  int initialized;
  u32 buf_count;
  void *bufs;
};

struct dmxdev_feed {
  u16 pid;
  int active;
};

struct dmxdev {
  int filter_active;
  int running;
  u32 buffer_size;
  struct mutex mutex;
  struct dvb_vb2_ctx *vb2;
  struct dmxdev_feed *feeds[16];
  int feed_count;
};

static struct dmxdev _dvb_dmxdev;

static int dvb_dmxdev_add_pid(struct dmxdev *dmxdev, u16 pid)
{
  struct dmxdev_feed *feed;
  int i;
  if (pid > 0x1fff)
    return -EINVAL;
  if (dmxdev->feed_count >= DMX_MAX_PIDS)
    return -ENOMEM;
  feed = kzalloc(sizeof(struct dmxdev_feed), GFP_KERNEL);
  if (!feed)
    return -ENOMEM;
  feed->pid = pid;
  for (i = 0; i < dmxdev->feed_count; i = i + 1) {
    if (dmxdev->feeds[i] && dmxdev->feeds[i]->pid == pid) {
      /* duplicate pid: feed is never freed */
      return -EINVAL;
    }
  }
  feed->active = 1;
  dmxdev->feeds[dmxdev->feed_count] = feed;
  dmxdev->feed_count = dmxdev->feed_count + 1;
  return 0;
}

static int dvb_dmxdev_remove_pid(struct dmxdev *dmxdev, u16 pid)
{
  int i;
  for (i = 0; i < dmxdev->feed_count; i = i + 1) {
    if (dmxdev->feeds[i] && dmxdev->feeds[i]->pid == pid) {
      kfree(dmxdev->feeds[i]);
      dmxdev->feeds[i] = 0;
      return 0;
    }
  }
  return -EINVAL;
}

static int dvb_vb2_reqbufs(struct dmxdev *dmxdev, struct dmx_requestbuffers *req)
{
  struct dvb_vb2_ctx *ctx;
  if (req->count == 0 || req->count > 32)
    return -EINVAL;
  if (req->size == 0)
    return -EINVAL;
  ctx = kzalloc(sizeof(struct dvb_vb2_ctx), GFP_KERNEL);
  if (!ctx)
    return -ENOMEM;
  ctx->initialized = 1;
  ctx->buf_count = req->count;
  ctx->bufs = kzalloc(req->count * 8, GFP_KERNEL);
  if (dmxdev->vb2) {
    kfree(dmxdev->vb2->bufs);
    kfree(dmxdev->vb2);
  }
  dmxdev->vb2 = ctx;
  return 0;
}

static int dvb_vb2_expbuf(struct dmxdev *dmxdev, struct dmx_exportbuffer *exp)
{
  struct dvb_vb2_ctx *ctx;
  ctx = dmxdev->vb2;
  /* REQBUFS may never have run: ctx is NULL */
  if (exp->index >= ctx->buf_count)
    return -EINVAL;
  exp->fd = 100 + exp->index;
  return 0;
}

static int dvb_dmxdev_filter_start(struct dmxdev *dmxdev,
                                   struct dmx_sct_filter_params *params)
{
  if (params->pid > 0x1fff)
    return -EINVAL;
  dmxdev->filter_active = 1;
  return 0;
}

static long dvb_demux_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct dmx_sct_filter_params sct;
  struct dmx_pes_filter_params pes;
  struct dmx_requestbuffers req;
  struct dmx_exportbuffer exp;
  u16 pid;
  int ret;
  switch (cmd) {
  case DMX_START:
    if (!_dvb_dmxdev.filter_active)
      return -EINVAL;
    _dvb_dmxdev.running = 1;
    return 0;
  case DMX_STOP:
    _dvb_dmxdev.running = 0;
    return 0;
  case DMX_SET_FILTER:
    if (copy_from_user(&sct, (void *)arg, sizeof(struct dmx_sct_filter_params)))
      return -EFAULT;
    return dvb_dmxdev_filter_start(&_dvb_dmxdev, &sct);
  case DMX_SET_PES_FILTER:
    if (copy_from_user(&pes, (void *)arg, sizeof(struct dmx_pes_filter_params)))
      return -EFAULT;
    if (pes.pes_type > 4)
      return -EINVAL;
    _dvb_dmxdev.filter_active = 1;
    return 0;
  case DMX_SET_BUFFER_SIZE:
    _dvb_dmxdev.buffer_size = arg;
    return 0;
  case DMX_ADD_PID:
    if (copy_from_user(&pid, (void *)arg, 2))
      return -EFAULT;
    return dvb_dmxdev_add_pid(&_dvb_dmxdev, pid);
  case DMX_REMOVE_PID:
    if (copy_from_user(&pid, (void *)arg, 2))
      return -EFAULT;
    return dvb_dmxdev_remove_pid(&_dvb_dmxdev, pid);
  case DMX_REQBUFS:
    if (copy_from_user(&req, (void *)arg, sizeof(struct dmx_requestbuffers)))
      return -EFAULT;
    ret = dvb_vb2_reqbufs(&_dvb_dmxdev, &req);
    if (ret == 0)
      copy_to_user((void *)arg, &req, sizeof(struct dmx_requestbuffers));
    return ret;
  case DMX_EXPBUF:
    if (copy_from_user(&exp, (void *)arg, sizeof(struct dmx_exportbuffer)))
      return -EFAULT;
    ret = dvb_vb2_expbuf(&_dvb_dmxdev, &exp);
    if (ret == 0)
      copy_to_user((void *)arg, &exp, sizeof(struct dmx_exportbuffer));
    return ret;
  default:
    return -ENOTTY;
  }
}

static int dvb_demux_open(struct inode *inode, struct file *file)
{
  mutex_init(&_dvb_dmxdev.mutex);
  return 0;
}

static int dvb_demux_release(struct inode *inode, struct file *file)
{
  mutex_lock(&_dvb_dmxdev.mutex);
  if (_dvb_dmxdev.filter_active) {
    /* stopping the filter re-acquires the mutex we already hold */
    mutex_lock(&_dvb_dmxdev.mutex);
    _dvb_dmxdev.filter_active = 0;
    mutex_unlock(&_dvb_dmxdev.mutex);
  }
  mutex_unlock(&_dvb_dmxdev.mutex);
  return 0;
}

static const struct file_operations dvb_demux_fops = {
  .open = dvb_demux_open,
  .release = dvb_demux_release,
  .unlocked_ioctl = dvb_demux_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int dvb_dmxdev_init(void)
{
  cdev_init(0, &dvb_demux_fops);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "dvb/adapter0/demux%d");
  return 0;
}
|}

let dvr_source =
  {|
#define DMX_SET_BUFFER_SIZE _IO('o', 45)
#define DVR_MIN_BUFFER_SIZE 8192
#define DVR_MAX_BUFFER_SIZE 10485760

struct dvb_ringbuffer {
  u32 size;
  void *data;
};

static struct dvb_ringbuffer *_dvr_buffer;

static long dvb_dvr_do_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct dvb_ringbuffer *buf;
  switch (cmd) {
  case DMX_SET_BUFFER_SIZE:
    if (arg < DVR_MIN_BUFFER_SIZE || arg > DVR_MAX_BUFFER_SIZE)
      return -EINVAL;
    buf = kzalloc(sizeof(struct dvb_ringbuffer), GFP_KERNEL);
    if (!buf)
      return -ENOMEM;
    buf->size = arg;
    /* the previous ring buffer, if any, is dropped without a free */
    _dvr_buffer = buf;
    return 0;
  default:
    return -ENOTTY;
  }
}

static long dvb_dvr_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  return dvb_dvr_do_ioctl(file, cmd, arg);
}

static ssize_t dvb_dvr_read(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (!_dvr_buffer)
    return -EINVAL;
  if (count > _dvr_buffer->size)
    return -EINVAL;
  return count;
}

static const struct file_operations dvb_dvr_fops = {
  .read = dvb_dvr_read,
  .unlocked_ioctl = dvb_dvr_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int dvb_dvr_init(void)
{
  cdev_init(0, &dvb_dvr_fops);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "dvb/adapter0/dvr%d");
  return 0;
}
|}

let demux_commands =
  [
    ("DMX_START", None, Syzlang.Ast.In);
    ("DMX_STOP", None, Syzlang.Ast.In);
    ("DMX_SET_FILTER", Some "dmx_sct_filter_params", Syzlang.Ast.In);
    ("DMX_SET_PES_FILTER", Some "dmx_pes_filter_params", Syzlang.Ast.In);
    ("DMX_SET_BUFFER_SIZE", None, Syzlang.Ast.In);
    ("DMX_ADD_PID", None, Syzlang.Ast.In);
    ("DMX_REMOVE_PID", None, Syzlang.Ast.In);
    ("DMX_REQBUFS", Some "dmx_requestbuffers", Syzlang.Ast.Inout);
    ("DMX_EXPBUF", Some "dmx_exportbuffer", Syzlang.Ast.Inout);
  ]

let demux_entry : Types.entry =
  Types.driver_entry ~name:"dvb_demux" ~display_name:"dvb/demux0"
    ~source:demux_source
    ~gt:
      {
        Types.gt_paths = [ "/dev/dvb/adapter0/demux0" ];
        gt_fops = "dvb_demux_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            demux_commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()

let dvr_entry : Types.entry =
  Types.driver_entry ~name:"dvb_dvr" ~display_name:"dvb/dvr0"
    ~source:dvr_source
    ~gt:
      {
        Types.gt_paths = [ "/dev/dvb/adapter0/dvr0" ];
        gt_fops = "dvb_dvr_fops";
        gt_socket = None;
        gt_ioctls =
          [ { Types.gc_name = "DMX_SET_BUFFER_SIZE"; gc_arg_type = None; gc_dir = Syzlang.Ast.In } ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "read" ];
      }
    ()
