(** Link-layer sockets of the corpus: caif_stream, llc_ui, rfcomm_sock
    and sco_sock (the remaining Table 6 rows). *)

(* ------------------------------------------------------------------ *)
(* caif_stream (AF_CAIF, SOCK_STREAM)                                  *)
(* ------------------------------------------------------------------ *)

let caif_source =
  {|
#define CAIFSO_LINK_SELECT 127
#define CAIFSO_REQ_PARAM 128
#define CAIF_MAX_PAYLOAD 4096

struct sockaddr_caif {
  u16 family;
  u32 connection_type;   /* CAIF channel type */
  u16 channel_id;
};

struct caif_param {
  u16 size;              /* bytes used in data[] */
  u8 data[256];
};

struct caif_sock_state {
  int connected;
  int link_select;
  u32 conn_type;
};

static struct caif_sock_state _caif_sk;

static int caif_connect(struct socket *sock, struct sockaddr *uaddr, int addr_len,
                        int flags)
{
  struct sockaddr_caif *addr;
  addr = (struct sockaddr_caif *)uaddr;
  if (addr_len < 8)
    return -EINVAL;
  if (addr->family != AF_CAIF)
    return -EAFNOSUPPORT;
  if (addr->connection_type > 5)
    return -EINVAL;
  _caif_sk.connected = 1;
  _caif_sk.conn_type = addr->connection_type;
  return 0;
}

static int caif_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_caif_sk.connected)
    return -ENOTCONN;
  if (len > CAIF_MAX_PAYLOAD)
    return -EMSGSIZE;
  return len;
}

static int caif_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                        int msg_flags)
{
  if (!_caif_sk.connected)
    return -ENOTCONN;
  return 0;
}

static int caif_setsockopt(struct socket *sock, int level, int optname, char *optval,
                           unsigned int optlen)
{
  struct caif_param param;
  int val;
  switch (optname) {
  case CAIFSO_LINK_SELECT:
    if (optlen < 4)
      return -EINVAL;
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    if (_caif_sk.connected)
      return -EISCONN;
    _caif_sk.link_select = val;
    return 0;
  case CAIFSO_REQ_PARAM:
    if (copy_from_user(&param, optval, sizeof(struct caif_param)))
      return -EFAULT;
    if (param.size > 256)
      return -EINVAL;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int caif_release(struct socket *sock)
{
  _caif_sk.connected = 0;
  return 0;
}

static const struct proto_ops caif_stream_ops = {
  .family = AF_CAIF,
  .owner = THIS_MODULE,
  .release = caif_release,
  .connect = caif_connect,
  .setsockopt = caif_setsockopt,
  .sendmsg = caif_sendmsg,
  .recvmsg = caif_recvmsg,
};
|}

let caif_existing_spec =
  {|resource sock_caif[fd]
socket$caif_stream(domain const[AF_CAIF], type const[SOCK_STREAM], proto const[0]) sock_caif
connect$caif(fd sock_caif, addr ptr[in, sockaddr_caif], addrlen const[8])
sendmsg$caif(fd sock_caif, msg ptr[in, array[int8]], f const[0])
recvmsg$caif(fd sock_caif, msg ptr[inout, array[int8]], f const[0])

sockaddr_caif {
	family const[AF_CAIF, int16]
	connection_type int32
	channel_id int16
}
|}

let caif_entry : Types.entry =
  Types.socket_entry ~name:"caif_stream" ~existing_spec:caif_existing_spec ~in_table6:true
    ~source:caif_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "caif_stream_ops";
        gt_socket = Some (37, 1, 0);
        gt_ioctls = [];
        gt_setsockopts =
          [
            { Types.gc_name = "CAIFSO_LINK_SELECT"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "CAIFSO_REQ_PARAM"; gc_arg_type = Some "caif_param"; gc_dir = Syzlang.Ast.In };
          ];
        gt_syscalls = [ "socket"; "connect"; "sendmsg"; "recvmsg"; "setsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* llc_ui (AF_LLC, SOCK_DGRAM)                                         *)
(* ------------------------------------------------------------------ *)

let llc_source =
  {|
#define LLC_OPT_RETRY 1
#define LLC_OPT_SIZE 2
#define LLC_OPT_ACK_TMR_EXP 3
#define LLC_OPT_P_TMR_EXP 4
#define LLC_OPT_REJ_TMR_EXP 5
#define LLC_OPT_BUSY_TMR_EXP 6
#define LLC_OPT_TX_WIN 7
#define LLC_OPT_RX_WIN 8
#define LLC_OPT_MAX_RETRY 24
#define LLC_OPT_MAX_WIN 127

struct sockaddr_llc {
  u16 sllc_family;
  u16 sllc_arphrd;       /* ARPHRD_ETHER */
  u8 sllc_test;
  u8 sllc_xid;
  u8 sllc_ua;
  u8 sllc_sap;           /* service access point */
  u8 sllc_mac[6];
};

struct llc_sock_state {
  int bound;
  u8 sap;
  int retry;
  int size;
  int tx_win;
  int rx_win;
  int ack_tmr;
  int p_tmr;
  int rej_tmr;
  int busy_tmr;
};

static struct llc_sock_state _llc_sk;

static int llc_ui_bind(struct socket *sock, struct sockaddr *uaddr, int addrlen)
{
  struct sockaddr_llc *addr;
  addr = (struct sockaddr_llc *)uaddr;
  if (addrlen < 12)
    return -EINVAL;
  if (addr->sllc_family != AF_LLC)
    return -EAFNOSUPPORT;
  if (addr->sllc_sap == 0)
    return -EUSERS;
  _llc_sk.bound = 1;
  _llc_sk.sap = addr->sllc_sap;
  return 0;
}

static int llc_ui_connect(struct socket *sock, struct sockaddr *uaddr, int addrlen,
                          int flags)
{
  struct sockaddr_llc *addr;
  addr = (struct sockaddr_llc *)uaddr;
  if (addr->sllc_family != AF_LLC)
    return -EAFNOSUPPORT;
  if (!_llc_sk.bound)
    return -EINVAL;
  return 0;
}

static int llc_ui_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_llc_sk.bound)
    return -ENOTCONN;
  if (len > 1500)
    return -EMSGSIZE;
  return len;
}

static int llc_ui_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                          int msg_flags)
{
  if (!_llc_sk.bound)
    return -ENOTCONN;
  return 0;
}

static int llc_set_one_opt(struct llc_sock_state *llc, int optname, int opt)
{
  switch (optname) {
  case LLC_OPT_RETRY:
    if (opt > LLC_OPT_MAX_RETRY)
      return -EINVAL;
    llc->retry = opt;
    return 0;
  case LLC_OPT_SIZE:
    if (opt == 0)
      return -EINVAL;
    llc->size = opt;
    return 0;
  case LLC_OPT_ACK_TMR_EXP:
    llc->ack_tmr = opt;
    return 0;
  case LLC_OPT_P_TMR_EXP:
    llc->p_tmr = opt;
    return 0;
  case LLC_OPT_REJ_TMR_EXP:
    llc->rej_tmr = opt;
    return 0;
  case LLC_OPT_BUSY_TMR_EXP:
    llc->busy_tmr = opt;
    return 0;
  case LLC_OPT_TX_WIN:
    if (opt > LLC_OPT_MAX_WIN)
      return -EINVAL;
    llc->tx_win = opt;
    return 0;
  case LLC_OPT_RX_WIN:
    if (opt > LLC_OPT_MAX_WIN)
      return -EINVAL;
    llc->rx_win = opt;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int llc_ui_setsockopt(struct socket *sock, int level, int optname, char *optval,
                             unsigned int optlen)
{
  int opt;
  if (optlen != 4)
    return -EINVAL;
  if (copy_from_user(&opt, optval, 4))
    return -EFAULT;
  return llc_set_one_opt(&_llc_sk, optname, opt);
}

static int llc_ui_getsockopt(struct socket *sock, int level, int optname, char *optval,
                             int *optlen)
{
  if (optname > LLC_OPT_RX_WIN || optname == 0)
    return -ENOPROTOOPT;
  return 0;
}

static int llc_ui_release(struct socket *sock)
{
  _llc_sk.bound = 0;
  return 0;
}

static const struct proto_ops llc_ui_ops = {
  .family = AF_LLC,
  .owner = THIS_MODULE,
  .release = llc_ui_release,
  .bind = llc_ui_bind,
  .connect = llc_ui_connect,
  .setsockopt = llc_ui_setsockopt,
  .getsockopt = llc_ui_getsockopt,
  .sendmsg = llc_ui_sendmsg,
  .recvmsg = llc_ui_recvmsg,
};
|}

let llc_existing_spec =
  {|resource sock_llc[fd]
socket$llc(domain const[AF_LLC], type const[SOCK_DGRAM], proto const[0]) sock_llc
bind$llc(fd sock_llc, addr ptr[in, sockaddr_llc], addrlen const[16])
recvmsg$llc(fd sock_llc, msg ptr[inout, array[int8]], f const[0])

sockaddr_llc {
	sllc_family const[AF_LLC, int16]
	sllc_arphrd int16
	sllc_test int8
	sllc_xid int8
	sllc_ua int8
	sllc_sap int8
	sllc_mac array[int8, 6]
}
|}

let llc_entry : Types.entry =
  Types.socket_entry ~name:"llc_ui" ~existing_spec:llc_existing_spec ~in_table6:true
    ~source:llc_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "llc_ui_ops";
        gt_socket = Some (26, 2, 0);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [
              "LLC_OPT_RETRY"; "LLC_OPT_SIZE"; "LLC_OPT_ACK_TMR_EXP"; "LLC_OPT_P_TMR_EXP";
              "LLC_OPT_REJ_TMR_EXP"; "LLC_OPT_BUSY_TMR_EXP"; "LLC_OPT_TX_WIN"; "LLC_OPT_RX_WIN";
            ];
        gt_syscalls = [ "socket"; "bind"; "connect"; "sendmsg"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* rfcomm_sock (AF_BLUETOOTH, SOCK_STREAM, BTPROTO_RFCOMM)             *)
(* ------------------------------------------------------------------ *)

let rfcomm_source =
  {|
#define BTPROTO_RFCOMM 3
#define RFCOMM_LM 3
#define BT_SECURITY 4
#define BT_DEFER_SETUP 7
#define RFCOMM_LM_MASTER 1
#define RFCOMM_LM_AUTH 2
#define RFCOMM_LM_ENCRYPT 4
#define RFCOMM_MAX_LM 7

struct bdaddr_t {
  u8 b[6];
};

struct sockaddr_rc {
  u16 rc_family;
  struct bdaddr_t rc_bdaddr;   /* remote device address */
  u8 rc_channel;               /* rfcomm channel 1..30 */
};

struct bt_security {
  u8 level;
  u8 key_size;
};

struct rfcomm_sock_state {
  int bound;
  int connected;
  int lm;
  int sec_level;
  int defer;
  u8 channel;
};

static struct rfcomm_sock_state _rfcomm_sk;

static int rfcomm_sock_bind(struct socket *sock, struct sockaddr *addr, int addr_len)
{
  struct sockaddr_rc *sa;
  sa = (struct sockaddr_rc *)addr;
  if (addr_len < 10)
    return -EINVAL;
  if (sa->rc_family != AF_BLUETOOTH)
    return -EINVAL;
  if (sa->rc_channel > 30)
    return -EINVAL;
  if (_rfcomm_sk.bound)
    return -EBADFD;
  _rfcomm_sk.bound = 1;
  _rfcomm_sk.channel = sa->rc_channel;
  return 0;
}

static int rfcomm_sock_connect(struct socket *sock, struct sockaddr *addr, int addr_len,
                               int flags)
{
  struct sockaddr_rc *sa;
  sa = (struct sockaddr_rc *)addr;
  if (sa->rc_family != AF_BLUETOOTH)
    return -EINVAL;
  if (sa->rc_channel == 0 || sa->rc_channel > 30)
    return -EINVAL;
  _rfcomm_sk.connected = 1;
  return 0;
}

static int rfcomm_sock_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_rfcomm_sk.connected)
    return -ENOTCONN;
  if (len > 1013)
    return -EMSGSIZE;
  return len;
}

static int rfcomm_sock_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                               int msg_flags)
{
  if (!_rfcomm_sk.connected)
    return -ENOTCONN;
  return 0;
}

static int rfcomm_sock_setsockopt(struct socket *sock, int level, int optname,
                                  char *optval, unsigned int optlen)
{
  struct bt_security sec;
  int opt;
  switch (optname) {
  case RFCOMM_LM:
    if (copy_from_user(&opt, optval, 4))
      return -EFAULT;
    if (opt > RFCOMM_MAX_LM)
      return -EINVAL;
    _rfcomm_sk.lm = opt;
    return 0;
  case BT_SECURITY:
    if (copy_from_user(&sec, optval, sizeof(struct bt_security)))
      return -EFAULT;
    if (sec.level > 4)
      return -EINVAL;
    _rfcomm_sk.sec_level = sec.level;
    return 0;
  case BT_DEFER_SETUP:
    if (copy_from_user(&opt, optval, 4))
      return -EFAULT;
    if (!_rfcomm_sk.bound)
      return -EINVAL;
    _rfcomm_sk.defer = opt;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int rfcomm_sock_getsockopt(struct socket *sock, int level, int optname,
                                  char *optval, int *optlen)
{
  switch (optname) {
  case RFCOMM_LM:
    return 0;
  case BT_SECURITY:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int rfcomm_sock_release(struct socket *sock)
{
  _rfcomm_sk.bound = 0;
  _rfcomm_sk.connected = 0;
  return 0;
}

static const struct proto_ops rfcomm_sock_ops = {
  .family = AF_BLUETOOTH,
  .owner = THIS_MODULE,
  .release = rfcomm_sock_release,
  .bind = rfcomm_sock_bind,
  .connect = rfcomm_sock_connect,
  .setsockopt = rfcomm_sock_setsockopt,
  .getsockopt = rfcomm_sock_getsockopt,
  .sendmsg = rfcomm_sock_sendmsg,
  .recvmsg = rfcomm_sock_recvmsg,
};
|}

let rfcomm_existing_spec =
  {|resource sock_rfcomm[fd]
socket$rfcomm(domain const[AF_BLUETOOTH], type const[SOCK_STREAM], proto const[3]) sock_rfcomm
bind$rfcomm(fd sock_rfcomm, addr ptr[in, sockaddr_rc], addrlen const[10])
connect$rfcomm(fd sock_rfcomm, addr ptr[in, sockaddr_rc], addrlen const[10])
sendmsg$rfcomm(fd sock_rfcomm, msg ptr[in, array[int8]], f const[0])
recvmsg$rfcomm(fd sock_rfcomm, msg ptr[inout, array[int8]], f const[0])
setsockopt$rfcomm_RFCOMM_LM(fd sock_rfcomm, level const[18], optname const[RFCOMM_LM], optval ptr[in, int32], optlen const[4])
setsockopt$rfcomm_BT_SECURITY(fd sock_rfcomm, level const[274], optname const[BT_SECURITY], optval ptr[in, bt_security], optlen const[2])

sockaddr_rc {
	rc_family const[AF_BLUETOOTH, int16]
	rc_bdaddr array[int8, 6]
	rc_channel int8
}
bt_security {
	level int8
	key_size int8
}
|}

let rfcomm_entry : Types.entry =
  Types.socket_entry ~name:"rfcomm_sock" ~existing_spec:rfcomm_existing_spec ~in_table6:true
    ~source:rfcomm_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "rfcomm_sock_ops";
        gt_socket = Some (31, 1, 3);
        gt_ioctls = [];
        gt_setsockopts =
          [
            { Types.gc_name = "RFCOMM_LM"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "BT_SECURITY"; gc_arg_type = Some "bt_security"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "BT_DEFER_SETUP"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_syscalls = [ "socket"; "bind"; "connect"; "sendmsg"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* sco_sock (AF_BLUETOOTH, SOCK_SEQPACKET, BTPROTO_SCO)                *)
(* ------------------------------------------------------------------ *)

let sco_source =
  {|
#define BTPROTO_SCO 2
#define SCO_OPTIONS 12
#define BT_VOICE 11
#define BT_PKT_STATUS 16
#define BT_VOICE_TRANSPARENT 3
#define BT_VOICE_CVSD_16BIT 96

struct sco_bdaddr_t {
  u8 b[6];
};

struct sockaddr_sco {
  u16 sco_family;
  struct sco_bdaddr_t sco_bdaddr;   /* remote SCO device address */
};

struct bt_voice {
  u16 setting;
};

struct sco_sock_state {
  int bound;
  int connected;
  u16 voice_setting;
  int pkt_status;
};

static struct sco_sock_state _sco_sk;

static int sco_sock_bind(struct socket *sock, struct sockaddr *addr, int addr_len)
{
  struct sockaddr_sco *sa;
  sa = (struct sockaddr_sco *)addr;
  if (addr_len < 8)
    return -EINVAL;
  if (sa->sco_family != AF_BLUETOOTH)
    return -EINVAL;
  if (_sco_sk.bound)
    return -EBADFD;
  _sco_sk.bound = 1;
  return 0;
}

static int sco_sock_connect(struct socket *sock, struct sockaddr *addr, int addr_len,
                            int flags)
{
  struct sockaddr_sco *sa;
  sa = (struct sockaddr_sco *)addr;
  if (addr_len < 8)
    return -EINVAL;
  if (sa->sco_family != AF_BLUETOOTH)
    return -EINVAL;
  if (!_sco_sk.bound)
    return -EBADFD;
  _sco_sk.connected = 1;
  return 0;
}

static int sco_sock_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_sco_sk.connected)
    return -ENOTCONN;
  if (len > 255)
    return -EMSGSIZE;
  return len;
}

static int sco_sock_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                            int msg_flags)
{
  if (!_sco_sk.connected)
    return -ENOTCONN;
  return 0;
}

static int sco_sock_setsockopt(struct socket *sock, int level, int optname, char *optval,
                               unsigned int optlen)
{
  struct bt_voice voice;
  int opt;
  switch (optname) {
  case BT_VOICE:
    if (_sco_sk.connected)
      return -EISCONN;
    if (copy_from_user(&voice, optval, sizeof(struct bt_voice)))
      return -EFAULT;
    if (voice.setting != BT_VOICE_TRANSPARENT && voice.setting != BT_VOICE_CVSD_16BIT)
      return -EINVAL;
    _sco_sk.voice_setting = voice.setting;
    return 0;
  case BT_PKT_STATUS:
    if (copy_from_user(&opt, optval, 4))
      return -EFAULT;
    _sco_sk.pkt_status = opt;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int sco_sock_getsockopt(struct socket *sock, int level, int optname, char *optval,
                               int *optlen)
{
  switch (optname) {
  case SCO_OPTIONS:
    return 0;
  case BT_VOICE:
    return 0;
  case BT_PKT_STATUS:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int sco_sock_release(struct socket *sock)
{
  _sco_sk.bound = 0;
  _sco_sk.connected = 0;
  return 0;
}

static const struct proto_ops sco_sock_ops = {
  .family = AF_BLUETOOTH,
  .owner = THIS_MODULE,
  .release = sco_sock_release,
  .bind = sco_sock_bind,
  .connect = sco_sock_connect,
  .setsockopt = sco_sock_setsockopt,
  .getsockopt = sco_sock_getsockopt,
  .sendmsg = sco_sock_sendmsg,
  .recvmsg = sco_sock_recvmsg,
};
|}

let sco_existing_spec =
  {|resource sock_sco[fd]
socket$sco(domain const[AF_BLUETOOTH], type const[SOCK_SEQPACKET], proto const[2]) sock_sco
bind$sco(fd sock_sco, addr ptr[in, sockaddr_sco], addrlen const[8])
connect$sco(fd sock_sco, addr ptr[in, sockaddr_sco], addrlen const[8])
sendmsg$sco(fd sock_sco, msg ptr[in, array[int8]], f const[0])
recvmsg$sco(fd sock_sco, msg ptr[inout, array[int8]], f const[0])
getsockopt$sco_SCO_OPTIONS(fd sock_sco, level const[17], optname const[SCO_OPTIONS], optval ptr[out, int32], optlen ptr[in, int32])

sockaddr_sco {
	sco_family const[AF_BLUETOOTH, int16]
	sco_bdaddr array[int8, 6]
}
|}

let sco_entry : Types.entry =
  Types.socket_entry ~name:"sco_sock" ~existing_spec:sco_existing_spec ~in_table6:true
    ~source:sco_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "sco_sock_ops";
        gt_socket = Some (31, 5, 2);
        gt_ioctls = [];
        gt_setsockopts =
          [
            { Types.gc_name = "BT_VOICE"; gc_arg_type = Some "bt_voice"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "BT_PKT_STATUS"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "SCO_OPTIONS"; gc_arg_type = None; gc_dir = Syzlang.Ast.Out };
          ];
        gt_syscalls = [ "socket"; "bind"; "connect"; "sendmsg"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

let entries = [ caif_entry; llc_entry; rfcomm_entry; sco_entry ]
