(** Virtualization drivers of Table 5: kvm, vhost-net, vhost-vsock, vmci
    and vsock.

    kvm is the paper's flagship dependency case: [KVM_CREATE_VM] and
    [KVM_CREATE_VCPU] return *new* file descriptors dispatching through
    [kvm_vm_fops] / [kvm_vcpu_fops] ([anon_inode_getfd]). Discovering
    those two handlers is what gives KernelGPT its 42.5%/65.2% coverage
    edge in §5.2.1. *)

(* ------------------------------------------------------------------ *)
(* kvm                                                                 *)
(* ------------------------------------------------------------------ *)

let kvm_source =
  {|
#define KVMIO 0xae
#define KVM_API_VERSION 12
#define KVM_MAX_VCPUS 8
#define KVM_MAX_MEMSLOTS 32
#define KVM_MEM_LOG_DIRTY_PAGES 1
#define KVM_MEM_READONLY 2

#define KVM_GET_API_VERSION _IO(KVMIO, 0x00)
#define KVM_CREATE_VM _IO(KVMIO, 0x01)
#define KVM_CHECK_EXTENSION _IO(KVMIO, 0x03)
#define KVM_GET_VCPU_MMAP_SIZE _IO(KVMIO, 0x04)
#define KVM_GET_MSR_INDEX_LIST _IOWR(KVMIO, 0x02, struct kvm_msr_list)

#define KVM_CREATE_VCPU _IO(KVMIO, 0x41)
#define KVM_SET_USER_MEMORY_REGION _IOW(KVMIO, 0x46, struct kvm_userspace_memory_region)
#define KVM_GET_DIRTY_LOG _IOW(KVMIO, 0x42, struct kvm_dirty_log)
#define KVM_CREATE_IRQCHIP _IO(KVMIO, 0x60)
#define KVM_IRQ_LINE _IOW(KVMIO, 0x61, struct kvm_irq_level)
#define KVM_CREATE_PIT2 _IOW(KVMIO, 0x77, struct kvm_pit_config)
#define KVM_SET_TSS_ADDR _IO(KVMIO, 0x47)

#define KVM_RUN _IO(KVMIO, 0x80)
#define KVM_GET_REGS _IOR(KVMIO, 0x81, struct kvm_regs)
#define KVM_SET_REGS _IOW(KVMIO, 0x82, struct kvm_regs)
#define KVM_GET_SREGS _IOR(KVMIO, 0x83, struct kvm_sregs)
#define KVM_SET_SREGS _IOW(KVMIO, 0x84, struct kvm_sregs)
#define KVM_INTERRUPT _IOW(KVMIO, 0x86, struct kvm_interrupt)
#define KVM_SET_CPUID2 _IOW(KVMIO, 0x90, struct kvm_cpuid2)

struct kvm_msr_list {
  u32 nmsrs;          /* number of msrs in entries */
  u32 indices[16];
};

struct kvm_userspace_memory_region {
  u32 slot;
  u32 flags;
  u64 guest_phys_addr;
  u64 memory_size;    /* bytes */
  u64 userspace_addr;
};

struct kvm_dirty_log {
  u32 slot;
  u32 padding;
  u64 dirty_bitmap;
};

struct kvm_irq_level {
  u32 irq;
  u32 level;
};

struct kvm_pit_config {
  u32 flags;
  u32 pad[15];
};

struct kvm_regs {
  u64 rax;
  u64 rbx;
  u64 rcx;
  u64 rdx;
  u64 rsi;
  u64 rdi;
  u64 rsp;
  u64 rbp;
  u64 rip;
  u64 rflags;
};

struct kvm_segment {
  u64 base;
  u32 limit;
  u16 selector;
  u8 type;
  u8 present;
};

struct kvm_sregs {
  struct kvm_segment cs;
  struct kvm_segment ds;
  struct kvm_segment es;
  struct kvm_segment ss;
  u64 cr0;
  u64 cr2;
  u64 cr3;
  u64 cr4;
  u64 efer;
};

struct kvm_interrupt {
  u32 irq;
};

struct kvm_cpuid_entry2 {
  u32 function;
  u32 index;
  u32 flags;
  u32 eax;
  u32 ebx;
  u32 ecx;
  u32 edx;
};

struct kvm_cpuid2 {
  u32 nent;          /* number of entries */
  u32 padding;
  struct kvm_cpuid_entry2 entries[8];
};

struct kvm_vm_state {
  int created;
  int vcpus;
  int irqchip;
  int pit;
  u32 memslots_used;
  u64 tss_addr;
};

struct kvm_vcpu_state {
  int running;
  int cpuid_set;
  u64 rip;
};

static struct kvm_vm_state _kvm_vm;
static struct kvm_vcpu_state _kvm_vcpu;

static long kvm_vcpu_ioctl(struct file *filp, unsigned int ioctl, unsigned long arg)
{
  struct kvm_regs regs;
  struct kvm_sregs sregs;
  struct kvm_interrupt irq;
  struct kvm_cpuid2 cpuid;
  switch (ioctl) {
  case KVM_RUN:
    if (!_kvm_vcpu.cpuid_set)
      return -ENOEXEC;
    _kvm_vcpu.running = 1;
    return 0;
  case KVM_GET_REGS:
    regs.rip = _kvm_vcpu.rip;
    if (copy_to_user((void *)arg, &regs, sizeof(struct kvm_regs)))
      return -EFAULT;
    return 0;
  case KVM_SET_REGS:
    if (copy_from_user(&regs, (void *)arg, sizeof(struct kvm_regs)))
      return -EFAULT;
    _kvm_vcpu.rip = regs.rip;
    return 0;
  case KVM_GET_SREGS:
    if (copy_to_user((void *)arg, &sregs, sizeof(struct kvm_sregs)))
      return -EFAULT;
    return 0;
  case KVM_SET_SREGS:
    if (copy_from_user(&sregs, (void *)arg, sizeof(struct kvm_sregs)))
      return -EFAULT;
    if (sregs.cr0 & 0x80000000) {
      if (sregs.cr4 == 0)
        return -EINVAL;
    }
    return 0;
  case KVM_INTERRUPT:
    if (copy_from_user(&irq, (void *)arg, sizeof(struct kvm_interrupt)))
      return -EFAULT;
    if (irq.irq > 255)
      return -EINVAL;
    if (!_kvm_vcpu.running)
      return -ENXIO;
    return 0;
  case KVM_SET_CPUID2:
    if (copy_from_user(&cpuid, (void *)arg, sizeof(struct kvm_cpuid2)))
      return -EFAULT;
    if (cpuid.nent > 8)
      return -E2BIG;
    _kvm_vcpu.cpuid_set = 1;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations kvm_vcpu_fops = {
  .unlocked_ioctl = kvm_vcpu_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int kvm_vm_ioctl_create_vcpu(void)
{
  if (_kvm_vm.vcpus >= KVM_MAX_VCPUS)
    return -EINVAL;
  _kvm_vm.vcpus = _kvm_vm.vcpus + 1;
  return anon_inode_getfd("kvm-vcpu", &kvm_vcpu_fops, 0, 0);
}

static int kvm_vm_ioctl_set_memory_region(struct kvm_userspace_memory_region *mem)
{
  if (mem->slot >= KVM_MAX_MEMSLOTS)
    return -EINVAL;
  if (mem->memory_size & 0xfff)
    return -EINVAL;
  if (mem->guest_phys_addr & 0xfff)
    return -EINVAL;
  if (mem->flags & ~(KVM_MEM_LOG_DIRTY_PAGES | KVM_MEM_READONLY))
    return -EINVAL;
  _kvm_vm.memslots_used = _kvm_vm.memslots_used + 1;
  return 0;
}

static long kvm_vm_ioctl(struct file *filp, unsigned int ioctl, unsigned long arg)
{
  struct kvm_userspace_memory_region mem;
  struct kvm_dirty_log log;
  struct kvm_irq_level irq_level;
  struct kvm_pit_config pit;
  switch (ioctl) {
  case KVM_CREATE_VCPU:
    return kvm_vm_ioctl_create_vcpu();
  case KVM_SET_USER_MEMORY_REGION:
    if (copy_from_user(&mem, (void *)arg, sizeof(struct kvm_userspace_memory_region)))
      return -EFAULT;
    return kvm_vm_ioctl_set_memory_region(&mem);
  case KVM_GET_DIRTY_LOG:
    if (copy_from_user(&log, (void *)arg, sizeof(struct kvm_dirty_log)))
      return -EFAULT;
    if (log.slot >= KVM_MAX_MEMSLOTS)
      return -EINVAL;
    return 0;
  case KVM_CREATE_IRQCHIP:
    if (_kvm_vm.irqchip)
      return -EEXIST;
    _kvm_vm.irqchip = 1;
    return 0;
  case KVM_IRQ_LINE:
    if (copy_from_user(&irq_level, (void *)arg, sizeof(struct kvm_irq_level)))
      return -EFAULT;
    if (!_kvm_vm.irqchip)
      return -ENXIO;
    if (irq_level.irq > 23)
      return -EINVAL;
    return 0;
  case KVM_CREATE_PIT2:
    if (copy_from_user(&pit, (void *)arg, sizeof(struct kvm_pit_config)))
      return -EFAULT;
    if (!_kvm_vm.irqchip)
      return -ENXIO;
    _kvm_vm.pit = 1;
    return 0;
  case KVM_SET_TSS_ADDR:
    _kvm_vm.tss_addr = arg;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations kvm_vm_fops = {
  .unlocked_ioctl = kvm_vm_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int kvm_dev_ioctl_create_vm(unsigned long type)
{
  if (type != 0)
    return -EINVAL;
  _kvm_vm.created = 1;
  return anon_inode_getfd("kvm-vm", &kvm_vm_fops, 0, 0);
}

static long kvm_dev_ioctl(struct file *filp, unsigned int ioctl, unsigned long arg)
{
  struct kvm_msr_list msrs;
  switch (ioctl) {
  case KVM_GET_API_VERSION:
    if (arg)
      return -EINVAL;
    return KVM_API_VERSION;
  case KVM_CREATE_VM:
    return kvm_dev_ioctl_create_vm(arg);
  case KVM_CHECK_EXTENSION:
    if (arg > 200)
      return 0;
    return 1;
  case KVM_GET_VCPU_MMAP_SIZE:
    if (arg)
      return -EINVAL;
    return 4096;
  case KVM_GET_MSR_INDEX_LIST:
    if (copy_from_user(&msrs, (void *)arg, sizeof(struct kvm_msr_list)))
      return -EFAULT;
    if (msrs.nmsrs > 16)
      return -E2BIG;
    if (copy_to_user((void *)arg, &msrs, sizeof(struct kvm_msr_list)))
      return -EFAULT;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations kvm_chardev_ops = {
  .unlocked_ioctl = kvm_dev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice kvm_dev = {
  .minor = 232,
  .name = "kvm",
  .fops = &kvm_chardev_ops,
};
|}

(* Syzkaller's manual kvm spec: rich but misses the vcpu handler chain. *)
let kvm_existing_spec =
  {|resource fd_kvm[fd]
resource fd_kvm_vm[fd]
openat$kvm(fd const[AT_FDCWD], file ptr[in, string["/dev/kvm"]], flags const[O_RDWR], mode const[0]) fd_kvm
ioctl$KVM_GET_API_VERSION(fd fd_kvm, cmd const[KVM_GET_API_VERSION], arg const[0])
ioctl$KVM_CREATE_VM(fd fd_kvm, cmd const[KVM_CREATE_VM], arg const[0]) fd_kvm_vm
ioctl$KVM_CHECK_EXTENSION(fd fd_kvm, cmd const[KVM_CHECK_EXTENSION], arg intptr)
ioctl$KVM_GET_VCPU_MMAP_SIZE(fd fd_kvm, cmd const[KVM_GET_VCPU_MMAP_SIZE], arg const[0])
ioctl$KVM_SET_USER_MEMORY_REGION(fd fd_kvm_vm, cmd const[KVM_SET_USER_MEMORY_REGION], arg ptr[in, kvm_userspace_memory_region])
ioctl$KVM_CREATE_IRQCHIP(fd fd_kvm_vm, cmd const[KVM_CREATE_IRQCHIP], arg const[0])
ioctl$KVM_IRQ_LINE(fd fd_kvm_vm, cmd const[KVM_IRQ_LINE], arg ptr[in, kvm_irq_level])
ioctl$KVM_SET_TSS_ADDR(fd fd_kvm_vm, cmd const[KVM_SET_TSS_ADDR], arg intptr)

kvm_userspace_memory_region {
	slot int32
	flags int32
	guest_phys_addr int64
	memory_size int64
	userspace_addr int64
}
kvm_irq_level {
	irq int32
	level int32
}
|}

let kvm_entry : Types.entry =
  Types.driver_entry ~name:"kvm" ~display_name:"kvm"
    ~source:kvm_source ~existing_spec:kvm_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/kvm" ];
        gt_fops = "kvm_chardev_ops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("KVM_GET_API_VERSION", None, Syzlang.Ast.In);
              ("KVM_CREATE_VM", None, Syzlang.Ast.In);
              ("KVM_CHECK_EXTENSION", None, Syzlang.Ast.In);
              ("KVM_GET_VCPU_MMAP_SIZE", None, Syzlang.Ast.In);
              ("KVM_GET_MSR_INDEX_LIST", Some "kvm_msr_list", Syzlang.Ast.Inout);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(** Ground truth for the dependent handlers (used by the §5.1.3 audit). *)
let kvm_dep_handlers =
  [
    ( "kvm_vm_fops",
      [
        "KVM_CREATE_VCPU"; "KVM_SET_USER_MEMORY_REGION"; "KVM_GET_DIRTY_LOG";
        "KVM_CREATE_IRQCHIP"; "KVM_IRQ_LINE"; "KVM_CREATE_PIT2"; "KVM_SET_TSS_ADDR";
      ] );
    ( "kvm_vcpu_fops",
      [
        "KVM_RUN"; "KVM_GET_REGS"; "KVM_SET_REGS"; "KVM_GET_SREGS"; "KVM_SET_SREGS";
        "KVM_INTERRUPT"; "KVM_SET_CPUID2";
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* vhost-net                                                           *)
(* ------------------------------------------------------------------ *)

let vhost_net_source =
  {|
#define VHOST_VIRTIO 0xaf
#define VHOST_MAX_QUEUES 2

#define VHOST_GET_FEATURES _IOR(VHOST_VIRTIO, 0x00, u64)
#define VHOST_SET_FEATURES _IOW(VHOST_VIRTIO, 0x00, u64)
#define VHOST_SET_OWNER _IO(VHOST_VIRTIO, 0x01)
#define VHOST_RESET_OWNER _IO(VHOST_VIRTIO, 0x02)
#define VHOST_SET_MEM_TABLE _IOW(VHOST_VIRTIO, 0x03, struct vhost_memory)
#define VHOST_SET_VRING_NUM _IOW(VHOST_VIRTIO, 0x10, struct vhost_vring_state)
#define VHOST_SET_VRING_BASE _IOW(VHOST_VIRTIO, 0x12, struct vhost_vring_state)
#define VHOST_GET_VRING_BASE _IOWR(VHOST_VIRTIO, 0x12, struct vhost_vring_state)
#define VHOST_SET_VRING_ADDR _IOW(VHOST_VIRTIO, 0x11, struct vhost_vring_addr)
#define VHOST_NET_SET_BACKEND _IOW(VHOST_VIRTIO, 0x30, struct vhost_vring_file)

struct vhost_memory_region {
  u64 guest_phys_addr;
  u64 memory_size;
  u64 userspace_addr;
  u64 flags_padding;
};

struct vhost_memory {
  u32 nregions;      /* number of regions that follow */
  u32 padding;
  struct vhost_memory_region regions[4];
};

struct vhost_vring_state {
  u32 index;         /* virtqueue index */
  u32 num;
};

struct vhost_vring_addr {
  u32 index;
  u32 flags;
  u64 desc_user_addr;
  u64 used_user_addr;
  u64 avail_user_addr;
  u64 log_guest_addr;
};

struct vhost_vring_file {
  u32 index;
  s32 fd;            /* tap device fd, -1 to unbind */
};

struct vhost_net_state {
  int owner_set;
  u64 features;
  u32 vring_num[2];
  int backend[2];
};

static struct vhost_net_state _vhost_net;

static long vhost_net_set_backend(struct vhost_vring_file *file)
{
  if (file->index >= VHOST_MAX_QUEUES)
    return -ENOBUFS;
  if (!_vhost_net.owner_set)
    return -EPERM;
  _vhost_net.backend[file->index] = file->fd;
  return 0;
}

static long vhost_net_ioctl(struct file *f, unsigned int ioctl, unsigned long arg)
{
  struct vhost_vring_state state;
  struct vhost_vring_addr addr;
  struct vhost_vring_file backend;
  struct vhost_memory mem;
  u64 features;
  switch (ioctl) {
  case VHOST_GET_FEATURES:
    features = 0x100000000;
    if (copy_to_user((void *)arg, &features, 8))
      return -EFAULT;
    return 0;
  case VHOST_SET_FEATURES:
    if (copy_from_user(&features, (void *)arg, 8))
      return -EFAULT;
    if (features & ~0x1ffffffff)
      return -EOPNOTSUPP;
    _vhost_net.features = features;
    return 0;
  case VHOST_SET_OWNER:
    if (_vhost_net.owner_set)
      return -EBUSY;
    _vhost_net.owner_set = 1;
    return 0;
  case VHOST_RESET_OWNER:
    _vhost_net.owner_set = 0;
    return 0;
  case VHOST_SET_MEM_TABLE:
    if (copy_from_user(&mem, (void *)arg, sizeof(struct vhost_memory)))
      return -EFAULT;
    if (mem.nregions > 4)
      return -E2BIG;
    if (!_vhost_net.owner_set)
      return -EPERM;
    return 0;
  case VHOST_SET_VRING_NUM:
    if (copy_from_user(&state, (void *)arg, sizeof(struct vhost_vring_state)))
      return -EFAULT;
    if (state.index >= VHOST_MAX_QUEUES)
      return -ENOBUFS;
    if (state.num == 0 || state.num > 32768)
      return -EINVAL;
    _vhost_net.vring_num[state.index] = state.num;
    return 0;
  case VHOST_SET_VRING_BASE:
    if (copy_from_user(&state, (void *)arg, sizeof(struct vhost_vring_state)))
      return -EFAULT;
    if (state.index >= VHOST_MAX_QUEUES)
      return -ENOBUFS;
    return 0;
  case VHOST_GET_VRING_BASE:
    if (copy_from_user(&state, (void *)arg, sizeof(struct vhost_vring_state)))
      return -EFAULT;
    if (state.index >= VHOST_MAX_QUEUES)
      return -ENOBUFS;
    if (copy_to_user((void *)arg, &state, sizeof(struct vhost_vring_state)))
      return -EFAULT;
    return 0;
  case VHOST_SET_VRING_ADDR:
    if (copy_from_user(&addr, (void *)arg, sizeof(struct vhost_vring_addr)))
      return -EFAULT;
    if (addr.index >= VHOST_MAX_QUEUES)
      return -ENOBUFS;
    if (addr.flags & ~1)
      return -EINVAL;
    return 0;
  case VHOST_NET_SET_BACKEND:
    if (copy_from_user(&backend, (void *)arg, sizeof(struct vhost_vring_file)))
      return -EFAULT;
    return vhost_net_set_backend(&backend);
  default:
    return -ENOIOCTLCMD;
  }
}

static int vhost_net_open(struct inode *inode, struct file *f)
{
  _vhost_net.owner_set = 0;
  return 0;
}

static int vhost_net_release(struct inode *inode, struct file *f)
{
  _vhost_net.owner_set = 0;
  return 0;
}

static const struct file_operations vhost_net_fops = {
  .open = vhost_net_open,
  .release = vhost_net_release,
  .unlocked_ioctl = vhost_net_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice vhost_net_misc = {
  .minor = 238,
  .name = "vhost-net",
  .fops = &vhost_net_fops,
};
|}

let vhost_net_existing_spec =
  {|resource fd_vhost_net[fd]
openat$vhost_net(fd const[AT_FDCWD], file ptr[in, string["/dev/vhost-net"]], flags const[O_RDWR], mode const[0]) fd_vhost_net
ioctl$VHOST_GET_FEATURES(fd fd_vhost_net, cmd const[VHOST_GET_FEATURES], arg ptr[out, int64])
ioctl$VHOST_SET_FEATURES(fd fd_vhost_net, cmd const[VHOST_SET_FEATURES], arg ptr[in, int64])
ioctl$VHOST_SET_OWNER(fd fd_vhost_net, cmd const[VHOST_SET_OWNER], arg const[0])
ioctl$VHOST_RESET_OWNER(fd fd_vhost_net, cmd const[VHOST_RESET_OWNER], arg const[0])
ioctl$VHOST_SET_MEM_TABLE(fd fd_vhost_net, cmd const[VHOST_SET_MEM_TABLE], arg ptr[in, vhost_memory])
ioctl$VHOST_SET_VRING_NUM(fd fd_vhost_net, cmd const[VHOST_SET_VRING_NUM], arg ptr[in, vhost_vring_state])
ioctl$VHOST_SET_VRING_BASE(fd fd_vhost_net, cmd const[VHOST_SET_VRING_BASE], arg ptr[in, vhost_vring_state])
ioctl$VHOST_GET_VRING_BASE(fd fd_vhost_net, cmd const[VHOST_GET_VRING_BASE], arg ptr[inout, vhost_vring_state])
ioctl$VHOST_SET_VRING_ADDR(fd fd_vhost_net, cmd const[VHOST_SET_VRING_ADDR], arg ptr[in, vhost_vring_addr])
ioctl$VHOST_NET_SET_BACKEND(fd fd_vhost_net, cmd const[VHOST_NET_SET_BACKEND], arg ptr[in, vhost_vring_file])

vhost_memory {
	nregions int32
	padding int32
	regions array[int8, 128]
}
vhost_vring_state {
	index int32
	num int32
}
vhost_vring_addr {
	index int32
	flags int32
	desc_user_addr int64
	used_user_addr int64
	avail_user_addr int64
	log_guest_addr int64
}
vhost_vring_file {
	index int32
	fd int32
}
|}

let vhost_net_entry : Types.entry =
  Types.driver_entry ~name:"vhost_net" ~display_name:"vhost-net"
    ~source:vhost_net_source ~existing_spec:vhost_net_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/vhost-net" ];
        gt_fops = "vhost_net_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("VHOST_GET_FEATURES", None, Syzlang.Ast.Out);
              ("VHOST_SET_FEATURES", None, Syzlang.Ast.In);
              ("VHOST_SET_OWNER", None, Syzlang.Ast.In);
              ("VHOST_RESET_OWNER", None, Syzlang.Ast.In);
              ("VHOST_SET_MEM_TABLE", Some "vhost_memory", Syzlang.Ast.In);
              ("VHOST_SET_VRING_NUM", Some "vhost_vring_state", Syzlang.Ast.In);
              ("VHOST_SET_VRING_BASE", Some "vhost_vring_state", Syzlang.Ast.In);
              ("VHOST_GET_VRING_BASE", Some "vhost_vring_state", Syzlang.Ast.Inout);
              ("VHOST_SET_VRING_ADDR", Some "vhost_vring_addr", Syzlang.Ast.In);
              ("VHOST_NET_SET_BACKEND", Some "vhost_vring_file", Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* vhost-vsock                                                         *)
(* ------------------------------------------------------------------ *)

let vhost_vsock_source =
  {|
#define VHOST_VIRTIO 0xaf
#define VHOST_VSOCK_SET_GUEST_CID _IOW(VHOST_VIRTIO, 0x60, u64)
#define VHOST_VSOCK_SET_RUNNING _IOW(VHOST_VIRTIO, 0x61, int)
#define VHOST_SET_OWNER _IO(VHOST_VIRTIO, 0x01)
#define VHOST_GET_FEATURES _IOR(VHOST_VIRTIO, 0x00, u64)
#define VHOST_SET_FEATURES _IOW(VHOST_VIRTIO, 0x00, u64)
#define VHOST_VSOCK_CID_MIN 3

struct vhost_vsock_state {
  int owner_set;
  int running;
  u64 guest_cid;
  u64 features;
};

static struct vhost_vsock_state _vhost_vsock;

static int vhost_vsock_set_cid(u64 guest_cid)
{
  if (guest_cid < VHOST_VSOCK_CID_MIN)
    return -EINVAL;
  if (guest_cid > 0xffffffff)
    return -EINVAL;
  _vhost_vsock.guest_cid = guest_cid;
  return 0;
}

static long vhost_vsock_dev_ioctl(struct file *f, unsigned int ioctl, unsigned long arg)
{
  u64 guest_cid;
  u64 features;
  int start;
  switch (ioctl) {
  case VHOST_VSOCK_SET_GUEST_CID:
    if (copy_from_user(&guest_cid, (void *)arg, 8))
      return -EFAULT;
    return vhost_vsock_set_cid(guest_cid);
  case VHOST_VSOCK_SET_RUNNING:
    if (copy_from_user(&start, (void *)arg, 4))
      return -EFAULT;
    if (start && _vhost_vsock.guest_cid == 0)
      return -EINVAL;
    _vhost_vsock.running = start;
    return 0;
  case VHOST_SET_OWNER:
    if (_vhost_vsock.owner_set)
      return -EBUSY;
    _vhost_vsock.owner_set = 1;
    return 0;
  case VHOST_GET_FEATURES:
    features = 3;
    if (copy_to_user((void *)arg, &features, 8))
      return -EFAULT;
    return 0;
  case VHOST_SET_FEATURES:
    if (copy_from_user(&features, (void *)arg, 8))
      return -EFAULT;
    _vhost_vsock.features = features;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int vhost_vsock_dev_open(struct inode *inode, struct file *file)
{
  _vhost_vsock.owner_set = 0;
  _vhost_vsock.running = 0;
  return 0;
}

static const struct file_operations vhost_vsock_fops = {
  .open = vhost_vsock_dev_open,
  .unlocked_ioctl = vhost_vsock_dev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice vhost_vsock_misc = {
  .minor = 241,
  .name = "vhost-vsock",
  .fops = &vhost_vsock_fops,
};
|}

let vhost_vsock_existing_spec =
  {|resource fd_vhost_vsock[fd]
openat$vhost_vsock(fd const[AT_FDCWD], file ptr[in, string["/dev/vhost-vsock"]], flags const[O_RDWR], mode const[0]) fd_vhost_vsock
ioctl$VHOST_VSOCK_SET_GUEST_CID(fd fd_vhost_vsock, cmd const[VHOST_VSOCK_SET_GUEST_CID], arg ptr[in, int64])
ioctl$VHOST_VSOCK_SET_RUNNING(fd fd_vhost_vsock, cmd const[VHOST_VSOCK_SET_RUNNING], arg ptr[in, int32])
|}

let vhost_vsock_entry : Types.entry =
  Types.driver_entry ~name:"vhost_vsock" ~display_name:"vhost-vsock"
    ~source:vhost_vsock_source ~existing_spec:vhost_vsock_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/vhost-vsock" ];
        gt_fops = "vhost_vsock_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("VHOST_VSOCK_SET_GUEST_CID", None, Syzlang.Ast.In);
              ("VHOST_VSOCK_SET_RUNNING", None, Syzlang.Ast.In);
              ("VHOST_SET_OWNER", None, Syzlang.Ast.In);
              ("VHOST_GET_FEATURES", None, Syzlang.Ast.Out);
              ("VHOST_SET_FEATURES", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* vmci                                                                *)
(* ------------------------------------------------------------------ *)

let vmci_source =
  {|
#define VMCI_MAGIC 7
#define VMCI_VERSION 0x10000
#define VMCI_MAX_DATAGRAM 69632

#define IOCTL_VMCI_VERSION _IO(VMCI_MAGIC, 0x9f)
#define IOCTL_VMCI_INIT_CONTEXT _IOW(VMCI_MAGIC, 0xa0, struct vmci_init_blk)
#define IOCTL_VMCI_DATAGRAM_SEND _IOWR(VMCI_MAGIC, 0xa2, struct vmci_datagram_snd_rcv_info)
#define IOCTL_VMCI_DATAGRAM_RECEIVE _IOWR(VMCI_MAGIC, 0xa3, struct vmci_datagram_snd_rcv_info)
#define IOCTL_VMCI_GET_CONTEXT_ID _IOR(VMCI_MAGIC, 0xa7, u32)
#define IOCTL_VMCI_SET_NOTIFY _IOW(VMCI_MAGIC, 0xcb, struct vmci_set_notify_info)
#define IOCTL_VMCI_NOTIFY_RESOURCE _IOWR(VMCI_MAGIC, 0xcc, struct vmci_dbell_notify_resource_info)

struct vmci_init_blk {
  u32 cid;
  u32 flags;
};

struct vmci_datagram_snd_rcv_info {
  u64 addr;      /* userspace datagram buffer */
  u32 len;       /* datagram length */
  s32 result;
};

struct vmci_set_notify_info {
  u64 notify_uva;
  s32 result;
  u32 pad;
};

struct vmci_dbell_notify_resource_info {
  u32 resource;
  u16 action;
  u16 pad;
  s32 result;
};

struct vmci_host_state {
  int ct_initialized;
  u32 cid;
  int notify_set;
};

static struct vmci_host_state _vmci;

static int vmci_host_setup_notify(struct vmci_set_notify_info *info)
{
  if (info->notify_uva == 0)
    return -EINVAL;
  _vmci.notify_set = 1;
  info->result = 0;
  return 0;
}

static long vmci_host_unlocked_ioctl(struct file *filp, unsigned int iocmd,
                                     unsigned long ioarg)
{
  struct vmci_init_blk init_blk;
  struct vmci_datagram_snd_rcv_info dg;
  struct vmci_set_notify_info notify;
  struct vmci_dbell_notify_resource_info dbell;
  switch (iocmd) {
  case IOCTL_VMCI_VERSION:
    return VMCI_VERSION;
  case IOCTL_VMCI_INIT_CONTEXT:
    if (copy_from_user(&init_blk, (void *)ioarg, sizeof(struct vmci_init_blk)))
      return -EFAULT;
    if (_vmci.ct_initialized)
      return -EINVAL;
    if (init_blk.flags > 1)
      return -EINVAL;
    _vmci.ct_initialized = 1;
    _vmci.cid = init_blk.cid;
    return 0;
  case IOCTL_VMCI_DATAGRAM_SEND:
    if (!_vmci.ct_initialized)
      return -EINVAL;
    if (copy_from_user(&dg, (void *)ioarg, sizeof(struct vmci_datagram_snd_rcv_info)))
      return -EFAULT;
    if (dg.len > VMCI_MAX_DATAGRAM)
      return -EINVAL;
    dg.result = dg.len;
    if (copy_to_user((void *)ioarg, &dg, sizeof(struct vmci_datagram_snd_rcv_info)))
      return -EFAULT;
    return 0;
  case IOCTL_VMCI_DATAGRAM_RECEIVE:
    if (!_vmci.ct_initialized)
      return -EINVAL;
    if (copy_from_user(&dg, (void *)ioarg, sizeof(struct vmci_datagram_snd_rcv_info)))
      return -EFAULT;
    dg.result = 0;
    if (copy_to_user((void *)ioarg, &dg, sizeof(struct vmci_datagram_snd_rcv_info)))
      return -EFAULT;
    return 0;
  case IOCTL_VMCI_GET_CONTEXT_ID:
    if (copy_to_user((void *)ioarg, &_vmci.cid, 4))
      return -EFAULT;
    return 0;
  case IOCTL_VMCI_SET_NOTIFY:
    if (copy_from_user(&notify, (void *)ioarg, sizeof(struct vmci_set_notify_info)))
      return -EFAULT;
    return vmci_host_setup_notify(&notify);
  case IOCTL_VMCI_NOTIFY_RESOURCE:
    if (!_vmci.notify_set)
      return -EINVAL;
    if (copy_from_user(&dbell, (void *)ioarg, sizeof(struct vmci_dbell_notify_resource_info)))
      return -EFAULT;
    if (dbell.action > 2)
      return -EINVAL;
    return 0;
  default:
    return -EINVAL;
  }
}

static int vmci_host_open(struct inode *inode, struct file *filp)
{
  _vmci.ct_initialized = 0;
  return 0;
}

static const struct file_operations vmuser_fops = {
  .open = vmci_host_open,
  .unlocked_ioctl = vmci_host_unlocked_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice vmci_host_miscdev = {
  .minor = 165,
  .name = "vmci",
  .fops = &vmuser_fops,
};
|}

let vmci_existing_spec =
  {|resource fd_vmci[fd]
openat$vmci(fd const[AT_FDCWD], file ptr[in, string["/dev/vmci"]], flags const[O_RDWR], mode const[0]) fd_vmci
ioctl$IOCTL_VMCI_VERSION(fd fd_vmci, cmd const[IOCTL_VMCI_VERSION], arg const[0])
ioctl$IOCTL_VMCI_INIT_CONTEXT(fd fd_vmci, cmd const[IOCTL_VMCI_INIT_CONTEXT], arg ptr[in, vmci_init_blk])
ioctl$IOCTL_VMCI_DATAGRAM_SEND(fd fd_vmci, cmd const[IOCTL_VMCI_DATAGRAM_SEND], arg ptr[inout, vmci_datagram_snd_rcv_info])
ioctl$IOCTL_VMCI_GET_CONTEXT_ID(fd fd_vmci, cmd const[IOCTL_VMCI_GET_CONTEXT_ID], arg ptr[out, int32])

vmci_init_blk {
	cid int32
	flags int32
}
vmci_datagram_snd_rcv_info {
	addr int64
	len int32
	result int32
}
|}

let vmci_entry : Types.entry =
  Types.driver_entry ~name:"vmci" ~display_name:"vmci"
    ~source:vmci_source ~existing_spec:vmci_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/vmci" ];
        gt_fops = "vmuser_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("IOCTL_VMCI_VERSION", None, Syzlang.Ast.In);
              ("IOCTL_VMCI_INIT_CONTEXT", Some "vmci_init_blk", Syzlang.Ast.In);
              ("IOCTL_VMCI_DATAGRAM_SEND", Some "vmci_datagram_snd_rcv_info", Syzlang.Ast.Inout);
              ("IOCTL_VMCI_DATAGRAM_RECEIVE", Some "vmci_datagram_snd_rcv_info", Syzlang.Ast.Inout);
              ("IOCTL_VMCI_GET_CONTEXT_ID", None, Syzlang.Ast.Out);
              ("IOCTL_VMCI_SET_NOTIFY", Some "vmci_set_notify_info", Syzlang.Ast.In);
              ("IOCTL_VMCI_NOTIFY_RESOURCE", Some "vmci_dbell_notify_resource_info", Syzlang.Ast.Inout);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* vsock (the /dev/vsock misc device)                                  *)
(* ------------------------------------------------------------------ *)

let vsock_source =
  {|
#define IOCTL_VM_SOCKETS_GET_LOCAL_CID _IO(7, 0xb9)
#define VMADDR_CID_HOST 2

static u32 _vsock_local_cid;

static long vsock_dev_do_ioctl(struct file *filp, unsigned int cmd, unsigned long arg)
{
  u32 cid;
  switch (cmd) {
  case IOCTL_VM_SOCKETS_GET_LOCAL_CID:
    cid = VMADDR_CID_HOST;
    if (_vsock_local_cid != 0)
      cid = _vsock_local_cid;
    if (copy_to_user((void *)arg, &cid, 4))
      return -EFAULT;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static long vsock_dev_ioctl(struct file *filp, unsigned int cmd, unsigned long arg)
{
  return vsock_dev_do_ioctl(filp, cmd, arg);
}

static const struct file_operations vsock_device_ops = {
  .unlocked_ioctl = vsock_dev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice vsock_device = {
  .minor = 121,
  .name = "vsock",
  .fops = &vsock_device_ops,
};
|}

let vsock_existing_spec =
  {|resource fd_vsock[fd]
openat$vsock(fd const[AT_FDCWD], file ptr[in, string["/dev/vsock"]], flags const[O_RDWR], mode const[0]) fd_vsock
|}

let vsock_entry : Types.entry =
  Types.driver_entry ~name:"vsock" ~display_name:"vsock"
    ~source:vsock_source ~existing_spec:vsock_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/vsock" ];
        gt_fops = "vsock_device_ops";
        gt_socket = None;
        gt_ioctls =
          [ { Types.gc_name = "IOCTL_VM_SOCKETS_GET_LOCAL_CID"; gc_arg_type = None; gc_dir = Syzlang.Ast.Out } ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

let entries = [ kvm_entry; vhost_net_entry; vhost_vsock_entry; vmci_entry; vsock_entry ]
