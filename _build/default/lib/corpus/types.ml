(** Registry metadata for corpus modules.

    Every driver or socket in the synthetic kernel is described by an
    {!entry}: its mini-C source, the *ground truth* about its interface
    (device paths, operation-handler symbol, command set), and evaluation
    flags (loaded under the syzbot config, present in the paper's
    Table 5/6, covered by hand-written Syzkaller specs, ...).

    Ground truth is authored together with the source and is used only by
    the virtual kernel (to boot the module) and by the correctness audit
    (§5.1.3); the analyses under test must infer everything from the
    source text alone. *)

type kind = Driver | Socket

(** Ground truth about one generic-syscall command (an [ioctl] command or
    a [setsockopt]/[getsockopt] option). *)
type gt_command = {
  gc_name : string;  (** macro name, e.g. ["DM_LIST_DEVICES"] *)
  gc_arg_type : string option;  (** struct/union name of the argument *)
  gc_dir : Syzlang.Ast.dir;  (** direction of the argument pointer *)
}

type gt = {
  gt_paths : string list;  (** true device paths, e.g. ["/dev/mapper/control"] *)
  gt_fops : string;  (** the operation-handler global symbol *)
  gt_socket : (int * int * int) option;  (** domain, type, protocol *)
  gt_ioctls : gt_command list;  (** driver ioctl commands *)
  gt_setsockopts : gt_command list;  (** socket options (sockets only) *)
  gt_syscalls : string list;  (** plain syscalls: open/read/bind/sendto/... *)
}

type entry = {
  name : string;  (** registry key, e.g. "dm" *)
  display_name : string;  (** paper-table row label, e.g. "loop#" *)
  kind : kind;
  source : string;  (** mini-C module source *)
  gt : gt;
  loaded : bool;  (** loaded under the syzbot configuration *)
  hw_required : bool;  (** needs hardware; excluded from generation *)
  existing_spec : string option;  (** hand-written Syzkaller spec, if any *)
  in_table5 : bool;
  in_table6 : bool;
}

let driver_entry ~name ?(display_name = name) ~source ~gt
    ?(loaded = true) ?(hw_required = false) ?existing_spec
    ?(in_table5 = false) () =
  {
    name;
    display_name;
    kind = Driver;
    source;
    gt;
    loaded;
    hw_required;
    existing_spec;
    in_table5;
    in_table6 = false;
  }

let socket_entry ~name ?(display_name = name) ~source ~gt
    ?(loaded = true) ?existing_spec ?(in_table6 = false) () =
  {
    name;
    display_name;
    kind = Socket;
    source;
    gt;
    loaded;
    hw_required = false;
    existing_spec;
    in_table5 = false;
    in_table6;
  }

(** Known-bug record for Table 4. *)
type bug = {
  bug_title : string;  (** crash title as the virtual kernel reports it *)
  bug_cve : string option;
  bug_module : string;  (** registry key of the module containing the bug *)
  bug_confirmed : bool;
  bug_fixed : bool;
}
