(** Internet-family sockets of the corpus: l2tp_ip6, mptcp, packet,
    phonet_dgram and pppol2tp (five of the ten Table 6 rows).

    l2tp_ip6 carries the Table 4 bug "memory leak in ip6_append_data":
    oversized sends drop the queued skb on the error path. *)

(* ------------------------------------------------------------------ *)
(* l2tp_ip6 (AF_INET6, SOCK_DGRAM, IPPROTO_L2TP)                       *)
(* ------------------------------------------------------------------ *)

let l2tp_ip6_source =
  {|
#define IPPROTO_L2TP 115
#define IPV6_TCLASS 67
#define IPV6_DONTFRAG 62
#define IPV6_RECVPKTINFO 49
#define IPV6_PKTINFO 50
#define IPV6_MTU 24
#define IPV6_V6ONLY 26
#define IPV6_HOPLIMIT 52
#define IPV6_MULTICAST_HOPS 18
#define L2TP_MAX_PAYLOAD 65535

struct in6_addr {
  u8 s6_addr[16];
};

struct sockaddr_l2tpip6 {
  u16 l2tp_family;
  u16 l2tp_unused;
  u32 l2tp_flowinfo;
  struct in6_addr l2tp_addr;
  u32 l2tp_scope_id;
  u32 l2tp_conn_id;       /* connection id of the tunnel */
};

struct l2tp_ip6_sock {
  int bound;
  int connected;
  u32 conn_id;
  int tclass;
  int dontfrag;
  int v6only;
  int hoplimit;
  u32 mtu;
};

static struct l2tp_ip6_sock _l2tp6_sk;

static int l2tp_ip6_bind(struct socket *sock, struct sockaddr *uaddr, int addr_len)
{
  struct sockaddr_l2tpip6 *addr;
  addr = (struct sockaddr_l2tpip6 *)uaddr;
  if (addr_len < 20)
    return -EINVAL;
  if (addr->l2tp_family != AF_INET6)
    return -EAFNOSUPPORT;
  if (_l2tp6_sk.bound)
    return -EINVAL;
  if (addr->l2tp_conn_id == 0)
    return -EINVAL;
  _l2tp6_sk.bound = 1;
  _l2tp6_sk.conn_id = addr->l2tp_conn_id;
  return 0;
}

static int l2tp_ip6_connect(struct socket *sock, struct sockaddr *uaddr, int addr_len,
                            int flags)
{
  struct sockaddr_l2tpip6 *addr;
  addr = (struct sockaddr_l2tpip6 *)uaddr;
  if (addr->l2tp_family != AF_INET6)
    return -EAFNOSUPPORT;
  if (!_l2tp6_sk.bound)
    return -EINVAL;
  _l2tp6_sk.connected = 1;
  return 0;
}

static int ip6_append_data(struct l2tp_ip6_sock *lsk, struct msghdr *msg, size_t len)
{
  void *skb;
  skb = kmalloc(256, GFP_KERNEL);
  if (!skb)
    return -ENOMEM;
  if (len > L2TP_MAX_PAYLOAD) {
    /* error path forgets to free the queued skb */
    return -EMSGSIZE;
  }
  if (lsk->dontfrag && len > lsk->mtu && lsk->mtu != 0) {
    kfree(skb);
    return -EMSGSIZE;
  }
  kfree(skb);
  return len;
}

static int l2tp_ip6_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_l2tp6_sk.bound)
    return -ENOTCONN;
  if (!msg->msg_name && !_l2tp6_sk.connected)
    return -EDESTADDRREQ;
  return ip6_append_data(&_l2tp6_sk, msg, len);
}

static int l2tp_ip6_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                            int msg_flags)
{
  if (!_l2tp6_sk.bound)
    return -ENOTCONN;
  return 0;
}

static int l2tp_ip6_setsockopt(struct socket *sock, int level, int optname, char *optval,
                               unsigned int optlen)
{
  int val;
  if (optlen < 4)
    return -EINVAL;
  if (copy_from_user(&val, optval, 4))
    return -EFAULT;
  switch (optname) {
  case IPV6_TCLASS:
    if (val < -1 || val > 255)
      return -EINVAL;
    _l2tp6_sk.tclass = val;
    return 0;
  case IPV6_DONTFRAG:
    _l2tp6_sk.dontfrag = val;
    return 0;
  case IPV6_V6ONLY:
    if (_l2tp6_sk.bound)
      return -EINVAL;
    _l2tp6_sk.v6only = val;
    return 0;
  case IPV6_MTU:
    if (val < 1280)
      return -EINVAL;
    _l2tp6_sk.mtu = val;
    return 0;
  case IPV6_HOPLIMIT:
    _l2tp6_sk.hoplimit = val;
    return 0;
  case IPV6_MULTICAST_HOPS:
    if (val < -1 || val > 255)
      return -EINVAL;
    return 0;
  case IPV6_RECVPKTINFO:
    return 0;
  case IPV6_PKTINFO:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int l2tp_ip6_getsockopt(struct socket *sock, int level, int optname, char *optval,
                               int *optlen)
{
  switch (optname) {
  case IPV6_TCLASS:
    return 0;
  case IPV6_DONTFRAG:
    return 0;
  case IPV6_V6ONLY:
    return 0;
  case IPV6_MTU:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int l2tp_ip6_release(struct socket *sock)
{
  _l2tp6_sk.bound = 0;
  _l2tp6_sk.connected = 0;
  return 0;
}

static const struct proto_ops l2tp_ip6_ops = {
  .family = AF_INET6,
  .owner = THIS_MODULE,
  .release = l2tp_ip6_release,
  .bind = l2tp_ip6_bind,
  .connect = l2tp_ip6_connect,
  .setsockopt = l2tp_ip6_setsockopt,
  .getsockopt = l2tp_ip6_getsockopt,
  .sendmsg = l2tp_ip6_sendmsg,
  .recvmsg = l2tp_ip6_recvmsg,
};
|}

let l2tp_ip6_existing_spec =
  {|resource sock_l2tp6[fd]
socket$l2tp_ip6(domain const[AF_INET6], type const[SOCK_DGRAM], proto const[115]) sock_l2tp6
bind$l2tp_ip6(fd sock_l2tp6, addr ptr[in, sockaddr_l2tpip6], addrlen const[36])
recvmsg$l2tp_ip6(fd sock_l2tp6, msg ptr[inout, array[int8]], f const[0])
getsockopt$l2tp_ip6_IPV6_TCLASS(fd sock_l2tp6, level const[41], optname const[IPV6_TCLASS], optval ptr[out, int32], optlen ptr[in, int32])
getsockopt$l2tp_ip6_IPV6_MTU(fd sock_l2tp6, level const[41], optname const[IPV6_MTU], optval ptr[out, int32], optlen ptr[in, int32])
setsockopt$l2tp_ip6_IPV6_TCLASS(fd sock_l2tp6, level const[41], optname const[IPV6_TCLASS], optval ptr[in, int32], optlen const[4])
setsockopt$l2tp_ip6_IPV6_V6ONLY(fd sock_l2tp6, level const[41], optname const[IPV6_V6ONLY], optval ptr[in, int32], optlen const[4])

sockaddr_l2tpip6 {
	l2tp_family const[AF_INET6, int16]
	l2tp_unused int16
	l2tp_flowinfo int32
	l2tp_addr array[int8, 16]
	l2tp_scope_id int32
	l2tp_conn_id int32
}
|}

let l2tp_ip6_entry : Types.entry =
  Types.socket_entry ~name:"l2tp_ip6" ~existing_spec:l2tp_ip6_existing_spec ~in_table6:true
    ~source:l2tp_ip6_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "l2tp_ip6_ops";
        gt_socket = Some (10, 2, 115);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [
              "IPV6_TCLASS"; "IPV6_DONTFRAG"; "IPV6_V6ONLY"; "IPV6_MTU"; "IPV6_HOPLIMIT";
              "IPV6_MULTICAST_HOPS"; "IPV6_RECVPKTINFO"; "IPV6_PKTINFO";
            ];
        gt_syscalls =
          [ "socket"; "bind"; "connect"; "sendmsg"; "sendto"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* mptcp (AF_INET, SOCK_STREAM, IPPROTO_MPTCP)                         *)
(* ------------------------------------------------------------------ *)

let mptcp_source =
  {|
#define IPPROTO_MPTCP 262
#define MPTCP_INFO 1
#define MPTCP_TCPINFO 2
#define MPTCP_SUBFLOW_ADDRS 3
#define MPTCP_FULL_INFO 4
#define SO_KEEPALIVE 9
#define TCP_NODELAY 1
#define TCP_MAXSEG 2
#define TCP_CONGESTION 13

struct sockaddr_in {
  u16 sin_family;
  u16 sin_port;
  u32 sin_addr;
  u8 sin_zero[8];
};

struct mptcp_info {
  u8 mptcpi_subflows;
  u8 mptcpi_add_addr_signal;
  u8 mptcpi_add_addr_accepted;
  u8 mptcpi_subflows_max;
  u32 mptcpi_flags;
  u32 mptcpi_token;
  u64 mptcpi_write_seq;
  u64 mptcpi_snd_una;
  u64 mptcpi_rcv_nxt;
};

struct mptcp_subflow_data {
  u32 size_subflow_data;
  u32 num_subflows;       /* number of subflow entries that follow */
  u32 size_kernel;
  u32 size_user;
};

struct mptcp_sock_state {
  int bound;
  int listening;
  int connected;
  int nodelay;
  int keepalive;
  u32 maxseg;
  char congestion[16];
};

static struct mptcp_sock_state _mptcp_sk;

static int mptcp_bind(struct socket *sock, struct sockaddr *uaddr, int addr_len)
{
  struct sockaddr_in *sin;
  sin = (struct sockaddr_in *)uaddr;
  if (addr_len < 16)
    return -EINVAL;
  if (sin->sin_family != AF_INET)
    return -EAFNOSUPPORT;
  _mptcp_sk.bound = 1;
  return 0;
}

static int mptcp_listen(struct socket *sock, int backlog)
{
  if (!_mptcp_sk.bound)
    return -EINVAL;
  if (backlog < 0)
    return -EINVAL;
  _mptcp_sk.listening = 1;
  return 0;
}

static int mptcp_connect(struct socket *sock, struct sockaddr *uaddr, int addr_len, int flags)
{
  struct sockaddr_in *sin;
  sin = (struct sockaddr_in *)uaddr;
  if (sin->sin_family != AF_INET)
    return -EAFNOSUPPORT;
  if (_mptcp_sk.listening)
    return -EINVAL;
  _mptcp_sk.connected = 1;
  return 0;
}

static int mptcp_accept(struct socket *sock, struct socket *newsock, int flags)
{
  if (!_mptcp_sk.listening)
    return -EINVAL;
  return 0;
}

static int mptcp_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_mptcp_sk.connected)
    return -ENOTCONN;
  if (len > 0x200000)
    return -EMSGSIZE;
  return len;
}

static int mptcp_recvmsg(struct socket *sock, struct msghdr *msg, size_t size, int msg_flags)
{
  if (!_mptcp_sk.connected)
    return -ENOTCONN;
  return 0;
}

static int mptcp_setsockopt(struct socket *sock, int level, int optname, char *optval,
                            unsigned int optlen)
{
  int val;
  switch (optname) {
  case TCP_NODELAY:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    _mptcp_sk.nodelay = val;
    return 0;
  case TCP_MAXSEG:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    if (val < 88 || val > 65535)
      return -EINVAL;
    _mptcp_sk.maxseg = val;
    return 0;
  case TCP_CONGESTION:
    if (optlen > 16)
      return -EINVAL;
    strncpy(_mptcp_sk.congestion, optval, 16);
    return 0;
  case SO_KEEPALIVE:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    _mptcp_sk.keepalive = val;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int mptcp_getsockopt(struct socket *sock, int level, int optname, char *optval,
                            int *optlen)
{
  struct mptcp_info info;
  struct mptcp_subflow_data sf;
  switch (optname) {
  case MPTCP_INFO:
    memset(&info, 0, sizeof(struct mptcp_info));
    info.mptcpi_subflows = 1;
    info.mptcpi_token = 0xdead;
    if (copy_to_user(optval, &info, sizeof(struct mptcp_info)))
      return -EFAULT;
    return 0;
  case MPTCP_TCPINFO:
    if (copy_from_user(&sf, optval, sizeof(struct mptcp_subflow_data)))
      return -EFAULT;
    if (sf.size_subflow_data < 16)
      return -EINVAL;
    return 0;
  case MPTCP_SUBFLOW_ADDRS:
    if (copy_from_user(&sf, optval, sizeof(struct mptcp_subflow_data)))
      return -EFAULT;
    if (sf.num_subflows > 8)
      return -EINVAL;
    return 0;
  case MPTCP_FULL_INFO:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int mptcp_release(struct socket *sock)
{
  _mptcp_sk.bound = 0;
  _mptcp_sk.connected = 0;
  _mptcp_sk.listening = 0;
  return 0;
}

static const struct proto_ops mptcp_stream_ops = {
  .family = AF_INET,
  .owner = THIS_MODULE,
  .release = mptcp_release,
  .bind = mptcp_bind,
  .connect = mptcp_connect,
  .accept = mptcp_accept,
  .listen = mptcp_listen,
  .setsockopt = mptcp_setsockopt,
  .getsockopt = mptcp_getsockopt,
  .sendmsg = mptcp_sendmsg,
  .recvmsg = mptcp_recvmsg,
};
|}

let mptcp_existing_spec =
  {|resource sock_mptcp[fd]
socket$mptcp(domain const[AF_INET], type const[SOCK_STREAM], proto const[262]) sock_mptcp
bind$mptcp(fd sock_mptcp, addr ptr[in, sockaddr_in], addrlen const[16])
connect$mptcp(fd sock_mptcp, addr ptr[in, sockaddr_in], addrlen const[16])
listen$mptcp(fd sock_mptcp, backlog int32)
sendmsg$mptcp(fd sock_mptcp, msg ptr[in, array[int8]], f const[0])
getsockopt$mptcp_MPTCP_INFO(fd sock_mptcp, level const[284], optname const[MPTCP_INFO], optval ptr[out, mptcp_info], optlen ptr[in, int32])

sockaddr_in {
	sin_family const[AF_INET, int16]
	sin_port int16
	sin_addr int32
	sin_zero array[int8, 8]
}
mptcp_info {
	mptcpi_subflows int8
	mptcpi_add_addr_signal int8
	mptcpi_add_addr_accepted int8
	mptcpi_subflows_max int8
	mptcpi_flags int32
	mptcpi_token int32
	mptcpi_write_seq int64
	mptcpi_snd_una int64
	mptcpi_rcv_nxt int64
}
|}

let mptcp_entry : Types.entry =
  Types.socket_entry ~name:"mptcp" ~existing_spec:mptcp_existing_spec ~in_table6:true
    ~source:mptcp_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "mptcp_stream_ops";
        gt_socket = Some (2, 1, 262);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun (n, t) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = Syzlang.Ast.In })
            [
              ("TCP_NODELAY", None); ("TCP_MAXSEG", None); ("TCP_CONGESTION", None);
              ("SO_KEEPALIVE", None);
              ("MPTCP_INFO", Some "mptcp_info");
              ("MPTCP_TCPINFO", Some "mptcp_subflow_data");
              ("MPTCP_SUBFLOW_ADDRS", Some "mptcp_subflow_data");
              ("MPTCP_FULL_INFO", None);
            ];
        gt_syscalls =
          [ "socket"; "bind"; "connect"; "listen"; "accept"; "sendmsg"; "recvmsg";
            "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* packet (AF_PACKET, SOCK_RAW)                                        *)
(* ------------------------------------------------------------------ *)

let packet_source =
  {|
#define ETH_P_ALL 3
#define PACKET_ADD_MEMBERSHIP 1
#define PACKET_DROP_MEMBERSHIP 2
#define PACKET_RX_RING 5
#define PACKET_TX_RING 13
#define PACKET_VERSION 10
#define PACKET_RESERVE 12
#define PACKET_FANOUT 18
#define PACKET_QDISC_BYPASS 20

struct sockaddr_ll {
  u16 sll_family;
  u16 sll_protocol;
  s32 sll_ifindex;
  u16 sll_hatype;
  u8 sll_pkttype;
  u8 sll_halen;
  u8 sll_addr[8];
};

struct tpacket_req {
  u32 tp_block_size;   /* minimal size of contiguous block */
  u32 tp_block_nr;     /* number of blocks */
  u32 tp_frame_size;   /* size of frame */
  u32 tp_frame_nr;     /* total number of frames */
};

struct packet_mreq {
  s32 mr_ifindex;
  u16 mr_type;
  u16 mr_alen;
  u8 mr_address[8];
};

struct packet_sock_state {
  int bound;
  int version;
  int fanout;
  u32 reserve;
  int rx_ring_set;
};

static struct packet_sock_state _packet_sk;

static int packet_bind(struct socket *sock, struct sockaddr *uaddr, int addr_len)
{
  struct sockaddr_ll *sll;
  sll = (struct sockaddr_ll *)uaddr;
  if (addr_len < 12)
    return -EINVAL;
  if (sll->sll_family != AF_PACKET)
    return -EINVAL;
  if (sll->sll_ifindex < 0)
    return -ENODEV;
  _packet_sk.bound = 1;
  return 0;
}

static int packet_set_ring(struct tpacket_req *req)
{
  if (req->tp_block_nr == 0)
    return 0;
  if (req->tp_block_size == 0)
    return -EINVAL;
  if (req->tp_frame_size == 0)
    return -EINVAL;
  if (req->tp_frame_nr != req->tp_block_size / req->tp_frame_size * req->tp_block_nr)
    return -EINVAL;
  _packet_sk.rx_ring_set = 1;
  return 0;
}

static int packet_setsockopt(struct socket *sock, int level, int optname, char *optval,
                             unsigned int optlen)
{
  struct tpacket_req req;
  struct packet_mreq mreq;
  int val;
  switch (optname) {
  case PACKET_ADD_MEMBERSHIP:
  case PACKET_DROP_MEMBERSHIP:
    if (copy_from_user(&mreq, optval, sizeof(struct packet_mreq)))
      return -EFAULT;
    if (mreq.mr_alen > 8)
      return -EINVAL;
    return 0;
  case PACKET_RX_RING:
  case PACKET_TX_RING:
    if (copy_from_user(&req, optval, sizeof(struct tpacket_req)))
      return -EFAULT;
    return packet_set_ring(&req);
  case PACKET_VERSION:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    if (val < 0 || val > 2)
      return -EINVAL;
    if (_packet_sk.rx_ring_set)
      return -EBUSY;
    _packet_sk.version = val;
    return 0;
  case PACKET_RESERVE:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    if (val > 4194304)
      return -EINVAL;
    _packet_sk.reserve = val;
    return 0;
  case PACKET_FANOUT:
    if (copy_from_user(&val, optval, 4))
      return -EFAULT;
    _packet_sk.fanout = val;
    return 0;
  case PACKET_QDISC_BYPASS:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int packet_getsockopt(struct socket *sock, int level, int optname, char *optval,
                             int *optlen)
{
  switch (optname) {
  case PACKET_VERSION:
    return 0;
  case PACKET_RESERVE:
    return 0;
  case PACKET_FANOUT:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int packet_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_packet_sk.bound && !msg->msg_name)
    return -EDESTADDRREQ;
  if (len > 65535)
    return -EMSGSIZE;
  return len;
}

static int packet_recvmsg(struct socket *sock, struct msghdr *msg, size_t size, int msg_flags)
{
  if (!_packet_sk.bound)
    return -ENOTCONN;
  return 0;
}

static int packet_release(struct socket *sock)
{
  _packet_sk.bound = 0;
  _packet_sk.rx_ring_set = 0;
  return 0;
}

static const struct proto_ops packet_ops = {
  .family = AF_PACKET,
  .owner = THIS_MODULE,
  .release = packet_release,
  .bind = packet_bind,
  .setsockopt = packet_setsockopt,
  .getsockopt = packet_getsockopt,
  .sendmsg = packet_sendmsg,
  .recvmsg = packet_recvmsg,
};
|}

let packet_existing_spec =
  {|resource sock_packet[fd]
socket$packet(domain const[AF_PACKET], type const[SOCK_RAW], proto const[768]) sock_packet
bind$packet(fd sock_packet, addr ptr[in, sockaddr_ll], addrlen const[20])
sendto$packet(fd sock_packet, buf ptr[in, array[int8]], len intptr, f const[0], addr ptr[in, sockaddr_ll], addrlen const[20])
recvmsg$packet(fd sock_packet, msg ptr[inout, array[int8]], f const[0])
setsockopt$packet_rx_ring(fd sock_packet, level const[263], optname const[PACKET_RX_RING], optval ptr[in, tpacket_req], optlen const[16])
setsockopt$packet_version(fd sock_packet, level const[263], optname const[PACKET_VERSION], optval ptr[in, int32], optlen const[4])
setsockopt$packet_reserve(fd sock_packet, level const[263], optname const[PACKET_RESERVE], optval ptr[in, int32], optlen const[4])
getsockopt$packet_version(fd sock_packet, level const[263], optname const[PACKET_VERSION], optval ptr[out, int32], optlen ptr[in, int32])

sockaddr_ll {
	sll_family const[AF_PACKET, int16]
	sll_protocol int16
	sll_ifindex int32
	sll_hatype int16
	sll_pkttype int8
	sll_halen int8
	sll_addr array[int8, 8]
}
tpacket_req {
	tp_block_size int32
	tp_block_nr int32
	tp_frame_size int32
	tp_frame_nr int32
}
|}

let packet_entry : Types.entry =
  Types.socket_entry ~name:"packet" ~existing_spec:packet_existing_spec ~in_table6:true
    ~source:packet_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "packet_ops";
        gt_socket = Some (17, 3, 0);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun (n, t) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = Syzlang.Ast.In })
            [
              ("PACKET_ADD_MEMBERSHIP", Some "packet_mreq");
              ("PACKET_DROP_MEMBERSHIP", Some "packet_mreq");
              ("PACKET_RX_RING", Some "tpacket_req");
              ("PACKET_TX_RING", Some "tpacket_req");
              ("PACKET_VERSION", None);
              ("PACKET_RESERVE", None);
              ("PACKET_FANOUT", None);
              ("PACKET_QDISC_BYPASS", None);
            ];
        gt_syscalls =
          [ "socket"; "bind"; "sendmsg"; "sendto"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* phonet_dgram (AF_PHONET, SOCK_DGRAM)                                *)
(* ------------------------------------------------------------------ *)

let phonet_source =
  {|
#define PNPIPE_ENCAP 1
#define PNPIPE_IFINDEX 2
#define PNPIPE_HANDLE 3
#define PNADDR_ANY 0
#define PNADDR_BROADCAST 0xfc

struct sockaddr_pn {
  u16 spn_family;
  u8 spn_obj;
  u8 spn_dev;          /* phonet device address */
  u8 spn_resource;
  u8 spn_zero[11];
};

struct phonet_sock_state {
  int bound;
  u8 obj;
  int encap;
  int handle;
};

static struct phonet_sock_state _pn_sk;

static int pn_socket_bind(struct socket *sock, struct sockaddr *addr, int len)
{
  struct sockaddr_pn *spn;
  spn = (struct sockaddr_pn *)addr;
  if (len < 16)
    return -EINVAL;
  if (spn->spn_family != AF_PHONET)
    return -EAFNOSUPPORT;
  if (spn->spn_dev != PNADDR_ANY && spn->spn_dev != PNADDR_BROADCAST)
    return -EADDRNOTAVAIL;
  _pn_sk.bound = 1;
  _pn_sk.obj = spn->spn_obj;
  return 0;
}

static int pn_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  struct sockaddr_pn *target;
  if (!msg->msg_name)
    return -EDESTADDRREQ;
  target = (struct sockaddr_pn *)msg->msg_name;
  if (target->spn_family != AF_PHONET)
    return -EAFNOSUPPORT;
  if (len > 1024)
    return -EMSGSIZE;
  return len;
}

static int pn_recvmsg(struct socket *sock, struct msghdr *msg, size_t size, int msg_flags)
{
  if (!_pn_sk.bound)
    return -ENOTCONN;
  return 0;
}

static int pn_setsockopt(struct socket *sock, int level, int optname, char *optval,
                         unsigned int optlen)
{
  int val;
  if (copy_from_user(&val, optval, 4))
    return -EFAULT;
  switch (optname) {
  case PNPIPE_ENCAP:
    if (val < 0 || val > 1)
      return -EINVAL;
    _pn_sk.encap = val;
    return 0;
  case PNPIPE_HANDLE:
    _pn_sk.handle = val;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int pn_getsockopt(struct socket *sock, int level, int optname, char *optval,
                         int *optlen)
{
  switch (optname) {
  case PNPIPE_ENCAP:
    return 0;
  case PNPIPE_IFINDEX:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int pn_release(struct socket *sock)
{
  _pn_sk.bound = 0;
  return 0;
}

static const struct proto_ops phonet_dgram_ops = {
  .family = AF_PHONET,
  .owner = THIS_MODULE,
  .release = pn_release,
  .bind = pn_socket_bind,
  .setsockopt = pn_setsockopt,
  .getsockopt = pn_getsockopt,
  .sendmsg = pn_sendmsg,
  .recvmsg = pn_recvmsg,
};
|}

let phonet_existing_spec =
  {|resource sock_phonet[fd]
socket$phonet_dgram(domain const[AF_PHONET], type const[SOCK_DGRAM], proto const[0]) sock_phonet
bind$phonet(fd sock_phonet, addr ptr[in, sockaddr_pn], addrlen const[16])
recvmsg$phonet(fd sock_phonet, msg ptr[inout, array[int8]], f const[0])

sockaddr_pn {
	spn_family const[AF_PHONET, int16]
	spn_obj int8
	spn_dev int8
	spn_resource int8
	spn_zero array[int8, 11]
}
|}

let phonet_entry : Types.entry =
  Types.socket_entry ~name:"phonet_dgram" ~existing_spec:phonet_existing_spec ~in_table6:true
    ~source:phonet_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "phonet_dgram_ops";
        gt_socket = Some (35, 2, 0);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [ "PNPIPE_ENCAP"; "PNPIPE_IFINDEX"; "PNPIPE_HANDLE" ];
        gt_syscalls = [ "socket"; "bind"; "sendmsg"; "sendto"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* pppol2tp (AF_PPPOX, SOCK_DGRAM)                                     *)
(* ------------------------------------------------------------------ *)

let pppol2tp_source =
  {|
#define PX_PROTO_OL2TP 1
#define PPPOL2TP_SO_DEBUG 1
#define PPPOL2TP_SO_RECVSEQ 2
#define PPPOL2TP_SO_SENDSEQ 3
#define PPPOL2TP_SO_LNSMODE 4
#define PPPOL2TP_SO_REORDERTO 5

struct pppol2tp_addr {
  s32 pid;
  s32 fd;              /* tunnel management socket */
  u16 s_tunnel;        /* local tunnel id */
  u16 s_session;       /* local session id */
  u16 d_tunnel;        /* peer tunnel id */
  u16 d_session;       /* peer session id */
};

struct sockaddr_pppol2tp {
  u16 sa_family;
  u32 sa_protocol;
  struct pppol2tp_addr pppol2tp;
};

struct pppol2tp_state {
  int connected;
  u16 tunnel;
  u16 session;
  int sendseq;
  int recvseq;
  int lnsmode;
  int reorderto;
  int debug;
};

static struct pppol2tp_state _pppol2tp_sk;

static int pppol2tp_connect(struct socket *sock, struct sockaddr *uaddr, int addr_len,
                            int flags)
{
  struct sockaddr_pppol2tp *sp;
  sp = (struct sockaddr_pppol2tp *)uaddr;
  if (addr_len < 20)
    return -EINVAL;
  if (sp->sa_protocol != PX_PROTO_OL2TP)
    return -EINVAL;
  if (sp->pppol2tp.s_tunnel == 0)
    return -EINVAL;
  if (sp->pppol2tp.fd < 0)
    return -EBADF;
  _pppol2tp_sk.connected = 1;
  _pppol2tp_sk.tunnel = sp->pppol2tp.s_tunnel;
  _pppol2tp_sk.session = sp->pppol2tp.s_session;
  return 0;
}

static int pppol2tp_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)
{
  if (!_pppol2tp_sk.connected)
    return -ENOTCONN;
  if (len > 32768)
    return -EMSGSIZE;
  return len;
}

static int pppol2tp_recvmsg(struct socket *sock, struct msghdr *msg, size_t size,
                            int msg_flags)
{
  if (!_pppol2tp_sk.connected)
    return -ENOTCONN;
  return 0;
}

static int pppol2tp_setsockopt(struct socket *sock, int level, int optname, char *optval,
                               unsigned int optlen)
{
  int val;
  if (optlen < 4)
    return -EINVAL;
  if (copy_from_user(&val, optval, 4))
    return -EFAULT;
  if (!_pppol2tp_sk.connected)
    return -ENOTCONN;
  switch (optname) {
  case PPPOL2TP_SO_DEBUG:
    _pppol2tp_sk.debug = val;
    return 0;
  case PPPOL2TP_SO_RECVSEQ:
    if (val != 0 && val != 1)
      return -EINVAL;
    _pppol2tp_sk.recvseq = val;
    return 0;
  case PPPOL2TP_SO_SENDSEQ:
    if (val != 0 && val != 1)
      return -EINVAL;
    _pppol2tp_sk.sendseq = val;
    return 0;
  case PPPOL2TP_SO_LNSMODE:
    if (val != 0 && val != 1)
      return -EINVAL;
    _pppol2tp_sk.lnsmode = val;
    return 0;
  case PPPOL2TP_SO_REORDERTO:
    _pppol2tp_sk.reorderto = val;
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int pppol2tp_getsockopt(struct socket *sock, int level, int optname, char *optval,
                               int *optlen)
{
  if (!_pppol2tp_sk.connected)
    return -ENOTCONN;
  switch (optname) {
  case PPPOL2TP_SO_DEBUG:
    return 0;
  case PPPOL2TP_SO_RECVSEQ:
    return 0;
  case PPPOL2TP_SO_SENDSEQ:
    return 0;
  default:
    return -ENOPROTOOPT;
  }
}

static int pppol2tp_release(struct socket *sock)
{
  _pppol2tp_sk.connected = 0;
  return 0;
}

static const struct proto_ops pppol2tp_ops = {
  .family = AF_PPPOX,
  .owner = THIS_MODULE,
  .release = pppol2tp_release,
  .connect = pppol2tp_connect,
  .setsockopt = pppol2tp_setsockopt,
  .getsockopt = pppol2tp_getsockopt,
  .sendmsg = pppol2tp_sendmsg,
  .recvmsg = pppol2tp_recvmsg,
};
|}

let pppol2tp_existing_spec =
  {|resource sock_pppol2tp[fd]
socket$pppol2tp(domain const[AF_PPPOX], type const[SOCK_DGRAM], proto const[1]) sock_pppol2tp
connect$pppol2tp(fd sock_pppol2tp, addr ptr[in, sockaddr_pppol2tp], addrlen const[26])
sendmsg$pppol2tp(fd sock_pppol2tp, msg ptr[in, array[int8]], f const[0])
recvmsg$pppol2tp(fd sock_pppol2tp, msg ptr[inout, array[int8]], f const[0])
setsockopt$pppol2tp_debug(fd sock_pppol2tp, level const[273], optname const[PPPOL2TP_SO_DEBUG], optval ptr[in, int32], optlen const[4])

sockaddr_pppol2tp {
	sa_family const[AF_PPPOX, int16]
	sa_protocol int32
	pid int32
	fd int32
	s_tunnel int16
	s_session int16
	d_tunnel int16
	d_session int16
}
|}

let pppol2tp_entry : Types.entry =
  Types.socket_entry ~name:"pppol2tp" ~existing_spec:pppol2tp_existing_spec ~in_table6:true
    ~source:pppol2tp_source
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = "pppol2tp_ops";
        gt_socket = Some (24, 2, 1);
        gt_ioctls = [];
        gt_setsockopts =
          List.map
            (fun n -> { Types.gc_name = n; gc_arg_type = None; gc_dir = Syzlang.Ast.In })
            [
              "PPPOL2TP_SO_DEBUG"; "PPPOL2TP_SO_RECVSEQ"; "PPPOL2TP_SO_SENDSEQ";
              "PPPOL2TP_SO_LNSMODE"; "PPPOL2TP_SO_REORDERTO";
            ];
        gt_syscalls = [ "socket"; "connect"; "sendmsg"; "recvmsg"; "setsockopt"; "getsockopt" ];
      }
    ()

let entries = [ l2tp_ip6_entry; mptcp_entry; packet_entry; phonet_entry; pppol2tp_entry ]
