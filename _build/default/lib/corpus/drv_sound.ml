(** Sound-subsystem drivers of Table 5: controlC0 (ALSA control),
    timer (ALSA timer) and mISDNtimer.

    controlC0 and timer are the two rows where SyzDescribe infers a wrong
    device name ("Err" in Table 5): their paths come from a format string
    inside the sound-core registration helper, which the name-field rule
    cannot see. *)

(* ------------------------------------------------------------------ *)
(* controlC0 (ALSA control)                                            *)
(* ------------------------------------------------------------------ *)

let control_source =
  {|
#define SNDRV_CTL_IOCTL_PVERSION _IOR('U', 0x00, int)
#define SNDRV_CTL_IOCTL_CARD_INFO _IOR('U', 0x01, struct snd_ctl_card_info)
#define SNDRV_CTL_IOCTL_ELEM_LIST _IOWR('U', 0x10, struct snd_ctl_elem_list)
#define SNDRV_CTL_IOCTL_ELEM_INFO _IOWR('U', 0x11, struct snd_ctl_elem_info)
#define SNDRV_CTL_IOCTL_ELEM_READ _IOWR('U', 0x12, struct snd_ctl_elem_value)
#define SNDRV_CTL_IOCTL_ELEM_WRITE _IOWR('U', 0x13, struct snd_ctl_elem_value)
#define SNDRV_CTL_IOCTL_ELEM_LOCK _IOW('U', 0x14, struct snd_ctl_elem_id)
#define SNDRV_CTL_IOCTL_ELEM_UNLOCK _IOW('U', 0x15, struct snd_ctl_elem_id)
#define SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS _IOWR('U', 0x16, int)
#define SNDRV_CTL_IOCTL_TLV_READ _IOWR('U', 0x1a, struct snd_ctl_tlv)
#define SNDRV_CTL_IOCTL_POWER_STATE _IOR('U', 0xd1, int)
#define SNDRV_CTL_ELEM_COUNT 8

struct snd_ctl_elem_id {
  u32 numid;          /* numeric identifier of the element */
  u32 iface;
  u32 device;
  u32 subdevice;
  char name[44];
  u32 index;
};

struct snd_ctl_card_info {
  s32 card;
  char id[16];
  char driver[16];
  char name[32];
  char longname[80];
  char mixername[80];
};

struct snd_ctl_elem_list {
  u32 offset;
  u32 space;         /* number of ids allocated in pids */
  u32 used;
  u32 count;
  u64 pids;
};

struct snd_ctl_elem_info {
  struct snd_ctl_elem_id id;
  u32 type;
  u32 access;
  u32 count;
  s32 owner;
};

struct snd_ctl_elem_value {
  struct snd_ctl_elem_id id;
  u32 indirect;
  s64 value[16];
};

struct snd_ctl_tlv {
  u32 numid;
  u32 length;       /* bytes in tlv */
  u32 tlv[8];
};

struct snd_ctl_state {
  int subscribed;
  int locked_elem;
};

static struct snd_ctl_state _snd_ctl;

static int snd_ctl_elem_id_valid(struct snd_ctl_elem_id *id)
{
  if (id->numid == 0 || id->numid > SNDRV_CTL_ELEM_COUNT)
    return -ENOENT;
  return 0;
}

static long snd_ctl_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct snd_ctl_card_info info;
  struct snd_ctl_elem_list list;
  struct snd_ctl_elem_info elem_info;
  struct snd_ctl_elem_value elem_value;
  struct snd_ctl_elem_id elem_id;
  struct snd_ctl_tlv tlv;
  int val;
  int err;
  switch (cmd) {
  case SNDRV_CTL_IOCTL_PVERSION:
    val = 0x20008;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case SNDRV_CTL_IOCTL_CARD_INFO:
    memset(&info, 0, sizeof(struct snd_ctl_card_info));
    info.card = 0;
    strncpy(info.id, "Dummy", 16);
    if (copy_to_user((void *)arg, &info, sizeof(struct snd_ctl_card_info)))
      return -EFAULT;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_LIST:
    if (copy_from_user(&list, (void *)arg, sizeof(struct snd_ctl_elem_list)))
      return -EFAULT;
    if (list.space > 1024)
      return -ENOMEM;
    list.count = SNDRV_CTL_ELEM_COUNT;
    list.used = list.space;
    if (copy_to_user((void *)arg, &list, sizeof(struct snd_ctl_elem_list)))
      return -EFAULT;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_INFO:
    if (copy_from_user(&elem_info, (void *)arg, sizeof(struct snd_ctl_elem_info)))
      return -EFAULT;
    err = snd_ctl_elem_id_valid(&elem_info.id);
    if (err)
      return err;
    elem_info.count = 2;
    if (copy_to_user((void *)arg, &elem_info, sizeof(struct snd_ctl_elem_info)))
      return -EFAULT;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_READ:
    if (copy_from_user(&elem_value, (void *)arg, sizeof(struct snd_ctl_elem_value)))
      return -EFAULT;
    err = snd_ctl_elem_id_valid(&elem_value.id);
    if (err)
      return err;
    if (copy_to_user((void *)arg, &elem_value, sizeof(struct snd_ctl_elem_value)))
      return -EFAULT;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_WRITE:
    if (copy_from_user(&elem_value, (void *)arg, sizeof(struct snd_ctl_elem_value)))
      return -EFAULT;
    err = snd_ctl_elem_id_valid(&elem_value.id);
    if (err)
      return err;
    if (_snd_ctl.locked_elem == elem_value.id.numid)
      return -EPERM;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_LOCK:
    if (copy_from_user(&elem_id, (void *)arg, sizeof(struct snd_ctl_elem_id)))
      return -EFAULT;
    err = snd_ctl_elem_id_valid(&elem_id);
    if (err)
      return err;
    if (_snd_ctl.locked_elem)
      return -EBUSY;
    _snd_ctl.locked_elem = elem_id.numid;
    return 0;
  case SNDRV_CTL_IOCTL_ELEM_UNLOCK:
    if (copy_from_user(&elem_id, (void *)arg, sizeof(struct snd_ctl_elem_id)))
      return -EFAULT;
    if (_snd_ctl.locked_elem != elem_id.numid)
      return -EPERM;
    _snd_ctl.locked_elem = 0;
    return 0;
  case SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _snd_ctl.subscribed = val;
    return 0;
  case SNDRV_CTL_IOCTL_TLV_READ:
    if (copy_from_user(&tlv, (void *)arg, sizeof(struct snd_ctl_tlv)))
      return -EFAULT;
    if (tlv.length < 8)
      return -EINVAL;
    if (tlv.numid == 0)
      return -EINVAL;
    return 0;
  case SNDRV_CTL_IOCTL_POWER_STATE:
    val = 0;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static int snd_ctl_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations snd_ctl_f_ops = {
  .open = snd_ctl_open,
  .unlocked_ioctl = snd_ctl_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int snd_ctl_dev_register(void)
{
  /* the device name is built by the sound core from a format string,
     invisible to name-field pattern rules */
  snd_register_device(0, &snd_ctl_f_ops, "controlC%i");
  return 0;
}
|}

let control_existing_spec =
  {|resource fd_snd_ctl[fd]
openat$sndctl(fd const[AT_FDCWD], file ptr[in, string["/dev/snd/controlC0"]], flags const[O_RDWR], mode const[0]) fd_snd_ctl
ioctl$SNDRV_CTL_IOCTL_PVERSION(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_PVERSION], arg ptr[out, int32])
ioctl$SNDRV_CTL_IOCTL_CARD_INFO(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_CARD_INFO], arg ptr[out, snd_ctl_card_info])
ioctl$SNDRV_CTL_IOCTL_ELEM_LIST(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_LIST], arg ptr[inout, snd_ctl_elem_list])
ioctl$SNDRV_CTL_IOCTL_ELEM_INFO(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_INFO], arg ptr[inout, snd_ctl_elem_info])
ioctl$SNDRV_CTL_IOCTL_ELEM_READ(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_READ], arg ptr[inout, snd_ctl_elem_value])
ioctl$SNDRV_CTL_IOCTL_ELEM_WRITE(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_WRITE], arg ptr[inout, snd_ctl_elem_value])
ioctl$SNDRV_CTL_IOCTL_ELEM_LOCK(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_LOCK], arg ptr[in, snd_ctl_elem_id])
ioctl$SNDRV_CTL_IOCTL_ELEM_UNLOCK(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_ELEM_UNLOCK], arg ptr[in, snd_ctl_elem_id])
ioctl$SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS], arg ptr[inout, int32])
ioctl$SNDRV_CTL_IOCTL_TLV_READ(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_TLV_READ], arg ptr[inout, snd_ctl_tlv])
ioctl$SNDRV_CTL_IOCTL_POWER_STATE(fd fd_snd_ctl, cmd const[SNDRV_CTL_IOCTL_POWER_STATE], arg ptr[out, int32])

snd_ctl_elem_id {
	numid int32
	iface int32
	device int32
	subdevice int32
	name array[int8, 44]
	index int32
}
snd_ctl_card_info {
	card int32
	id array[int8, 16]
	driver array[int8, 16]
	name array[int8, 32]
	longname array[int8, 80]
	mixername array[int8, 80]
}
snd_ctl_elem_list {
	offset int32
	space int32
	used int32
	count int32
	pids int64
}
snd_ctl_elem_info {
	id snd_ctl_elem_id
	type int32
	access int32
	count int32
	owner int32
}
snd_ctl_elem_value {
	id snd_ctl_elem_id
	indirect int32
	value array[int64, 16]
}
snd_ctl_tlv {
	numid int32
	length int32
	tlv array[int32, 8]
}
|}

let control_entry : Types.entry =
  Types.driver_entry ~name:"snd_control" ~display_name:"controlC#"
    ~source:control_source ~existing_spec:control_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/snd/controlC0" ];
        gt_fops = "snd_ctl_f_ops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("SNDRV_CTL_IOCTL_PVERSION", None, Syzlang.Ast.Out);
              ("SNDRV_CTL_IOCTL_CARD_INFO", Some "snd_ctl_card_info", Syzlang.Ast.Out);
              ("SNDRV_CTL_IOCTL_ELEM_LIST", Some "snd_ctl_elem_list", Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_ELEM_INFO", Some "snd_ctl_elem_info", Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_ELEM_READ", Some "snd_ctl_elem_value", Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_ELEM_WRITE", Some "snd_ctl_elem_value", Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_ELEM_LOCK", Some "snd_ctl_elem_id", Syzlang.Ast.In);
              ("SNDRV_CTL_IOCTL_ELEM_UNLOCK", Some "snd_ctl_elem_id", Syzlang.Ast.In);
              ("SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS", None, Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_TLV_READ", Some "snd_ctl_tlv", Syzlang.Ast.Inout);
              ("SNDRV_CTL_IOCTL_POWER_STATE", None, Syzlang.Ast.Out);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* timer (ALSA timer)                                                  *)
(* ------------------------------------------------------------------ *)

let timer_source =
  {|
#define SNDRV_TIMER_IOCTL_PVERSION _IOR('T', 0x00, int)
#define SNDRV_TIMER_IOCTL_NEXT_DEVICE _IOWR('T', 0x01, struct snd_timer_id)
#define SNDRV_TIMER_IOCTL_SELECT _IOW('T', 0x10, struct snd_timer_select)
#define SNDRV_TIMER_IOCTL_INFO _IOR('T', 0x11, struct snd_timer_info)
#define SNDRV_TIMER_IOCTL_PARAMS _IOW('T', 0x12, struct snd_timer_params)
#define SNDRV_TIMER_IOCTL_STATUS _IOR('T', 0x14, struct snd_timer_status)
#define SNDRV_TIMER_IOCTL_START _IO('T', 0xa0)
#define SNDRV_TIMER_IOCTL_STOP _IO('T', 0xa1)
#define SNDRV_TIMER_IOCTL_CONTINUE _IO('T', 0xa2)
#define SNDRV_TIMER_IOCTL_PAUSE _IO('T', 0xa3)

struct snd_timer_id {
  s32 dev_class;
  s32 dev_sclass;
  s32 card;
  s32 device;
  s32 subdevice;
};

struct snd_timer_select {
  struct snd_timer_id id;
  u8 reserved[32];
};

struct snd_timer_info {
  u32 flags;
  s32 card;
  u8 id[64];
  u8 name[80];
  u64 reserved0;
  u64 resolution;
};

struct snd_timer_params {
  u32 flags;
  u32 ticks;        /* requested resolution in ticks */
  u32 queue_size;
  u32 reserved0;
  u32 filter;
};

struct snd_timer_status {
  u64 tstamp_sec;
  u64 tstamp_nsec;
  u32 resolution;
  u32 lost;
  u32 overrun;
  u32 queue;
};

struct snd_timer_user {
  int selected;
  int running;
  u32 ticks;
};

static struct snd_timer_user _snd_timer;

static long snd_timer_user_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct snd_timer_id id;
  struct snd_timer_select sel;
  struct snd_timer_info info;
  struct snd_timer_params params;
  struct snd_timer_status status;
  int val;
  switch (cmd) {
  case SNDRV_TIMER_IOCTL_PVERSION:
    val = 0x20007;
    if (copy_to_user((void *)arg, &val, 4))
      return -EFAULT;
    return 0;
  case SNDRV_TIMER_IOCTL_NEXT_DEVICE:
    if (copy_from_user(&id, (void *)arg, sizeof(struct snd_timer_id)))
      return -EFAULT;
    id.device = id.device + 1;
    if (copy_to_user((void *)arg, &id, sizeof(struct snd_timer_id)))
      return -EFAULT;
    return 0;
  case SNDRV_TIMER_IOCTL_SELECT:
    if (copy_from_user(&sel, (void *)arg, sizeof(struct snd_timer_select)))
      return -EFAULT;
    if (sel.id.dev_class < 0 || sel.id.dev_class > 4)
      return -EINVAL;
    _snd_timer.selected = 1;
    return 0;
  case SNDRV_TIMER_IOCTL_INFO:
    if (!_snd_timer.selected)
      return -EBADFD;
    memset(&info, 0, sizeof(struct snd_timer_info));
    info.resolution = 1000000;
    if (copy_to_user((void *)arg, &info, sizeof(struct snd_timer_info)))
      return -EFAULT;
    return 0;
  case SNDRV_TIMER_IOCTL_PARAMS:
    if (!_snd_timer.selected)
      return -EBADFD;
    if (copy_from_user(&params, (void *)arg, sizeof(struct snd_timer_params)))
      return -EFAULT;
    if (params.ticks == 0)
      return -EINVAL;
    if (params.queue_size > 1024)
      return -EINVAL;
    _snd_timer.ticks = params.ticks;
    return 0;
  case SNDRV_TIMER_IOCTL_STATUS:
    if (!_snd_timer.selected)
      return -EBADFD;
    memset(&status, 0, sizeof(struct snd_timer_status));
    if (copy_to_user((void *)arg, &status, sizeof(struct snd_timer_status)))
      return -EFAULT;
    return 0;
  case SNDRV_TIMER_IOCTL_START:
    if (!_snd_timer.selected)
      return -EBADFD;
    if (_snd_timer.ticks == 0)
      return -EINVAL;
    _snd_timer.running = 1;
    return 0;
  case SNDRV_TIMER_IOCTL_STOP:
    if (!_snd_timer.running)
      return -EBADFD;
    _snd_timer.running = 0;
    return 0;
  case SNDRV_TIMER_IOCTL_CONTINUE:
    if (!_snd_timer.selected)
      return -EBADFD;
    _snd_timer.running = 1;
    return 0;
  case SNDRV_TIMER_IOCTL_PAUSE:
    if (!_snd_timer.running)
      return -EBADFD;
    _snd_timer.running = 0;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int snd_timer_user_open(struct inode *inode, struct file *file)
{
  _snd_timer.selected = 0;
  _snd_timer.running = 0;
  return 0;
}

static const struct file_operations snd_timer_f_ops = {
  .open = snd_timer_user_open,
  .unlocked_ioctl = snd_timer_user_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int snd_timer_register(void)
{
  snd_register_device(1, &snd_timer_f_ops, "timer");
  return 0;
}
|}

let timer_existing_spec =
  {|resource fd_snd_timer[fd]
openat$sndtimer(fd const[AT_FDCWD], file ptr[in, string["/dev/snd/timer"]], flags const[O_RDWR], mode const[0]) fd_snd_timer
ioctl$SNDRV_TIMER_IOCTL_PVERSION(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_PVERSION], arg ptr[out, int32])
ioctl$SNDRV_TIMER_IOCTL_NEXT_DEVICE(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_NEXT_DEVICE], arg ptr[inout, snd_timer_id])
ioctl$SNDRV_TIMER_IOCTL_SELECT(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_SELECT], arg ptr[in, snd_timer_select])
ioctl$SNDRV_TIMER_IOCTL_INFO(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_INFO], arg ptr[out, snd_timer_info])
ioctl$SNDRV_TIMER_IOCTL_PARAMS(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_PARAMS], arg ptr[in, snd_timer_params])
ioctl$SNDRV_TIMER_IOCTL_STATUS(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_STATUS], arg ptr[out, snd_timer_status])
ioctl$SNDRV_TIMER_IOCTL_START(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_START], arg const[0])
ioctl$SNDRV_TIMER_IOCTL_STOP(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_STOP], arg const[0])
ioctl$SNDRV_TIMER_IOCTL_CONTINUE(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_CONTINUE], arg const[0])
ioctl$SNDRV_TIMER_IOCTL_PAUSE(fd fd_snd_timer, cmd const[SNDRV_TIMER_IOCTL_PAUSE], arg const[0])

snd_timer_id {
	dev_class int32
	dev_sclass int32
	card int32
	device int32
	subdevice int32
}
snd_timer_select {
	id snd_timer_id
	reserved array[int8, 32]
}
snd_timer_info {
	flags int32
	card int32
	id array[int8, 64]
	name array[int8, 80]
	reserved0 int64
	resolution int64
}
snd_timer_params {
	flags int32
	ticks int32
	queue_size int32
	reserved0 int32
	filter int32
}
snd_timer_status {
	tstamp_sec int64
	tstamp_nsec int64
	resolution int32
	lost int32
	overrun int32
	queue int32
}
|}

let timer_entry : Types.entry =
  Types.driver_entry ~name:"snd_timer" ~display_name:"timer"
    ~source:timer_source ~existing_spec:timer_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/snd/timer" ];
        gt_fops = "snd_timer_f_ops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("SNDRV_TIMER_IOCTL_PVERSION", None, Syzlang.Ast.Out);
              ("SNDRV_TIMER_IOCTL_NEXT_DEVICE", Some "snd_timer_id", Syzlang.Ast.Inout);
              ("SNDRV_TIMER_IOCTL_SELECT", Some "snd_timer_select", Syzlang.Ast.In);
              ("SNDRV_TIMER_IOCTL_INFO", Some "snd_timer_info", Syzlang.Ast.Out);
              ("SNDRV_TIMER_IOCTL_PARAMS", Some "snd_timer_params", Syzlang.Ast.In);
              ("SNDRV_TIMER_IOCTL_STATUS", Some "snd_timer_status", Syzlang.Ast.Out);
              ("SNDRV_TIMER_IOCTL_START", None, Syzlang.Ast.In);
              ("SNDRV_TIMER_IOCTL_STOP", None, Syzlang.Ast.In);
              ("SNDRV_TIMER_IOCTL_CONTINUE", None, Syzlang.Ast.In);
              ("SNDRV_TIMER_IOCTL_PAUSE", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* mISDNtimer                                                          *)
(* ------------------------------------------------------------------ *)

let misdn_source =
  {|
#define IMADDTIMER _IOR('I', 64, int)
#define IMDELTIMER _IOR('I', 65, int)
#define MISDN_MAX_TIMERS 4

static int _misdn_timers[4];

static long mISDN_ioctl(struct file *filep, unsigned int cmd, unsigned long arg)
{
  int timeout;
  int id;
  int i;
  switch (cmd) {
  case IMADDTIMER:
    if (copy_from_user(&timeout, (void *)arg, 4))
      return -EFAULT;
    if (timeout <= 0)
      return -EINVAL;
    for (i = 0; i < MISDN_MAX_TIMERS; i = i + 1) {
      if (_misdn_timers[i] == 0) {
        _misdn_timers[i] = timeout;
        id = i + 1;
        if (copy_to_user((void *)arg, &id, 4))
          return -EFAULT;
        return 0;
      }
    }
    return -ENOSPC;
  case IMDELTIMER:
    if (copy_from_user(&id, (void *)arg, 4))
      return -EFAULT;
    if (id <= 0 || id > MISDN_MAX_TIMERS)
      return -EINVAL;
    if (_misdn_timers[id - 1] == 0)
      return -ENOENT;
    _misdn_timers[id - 1] = 0;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static ssize_t mISDN_read(struct file *filep, char *buf, size_t count, loff_t *off)
{
  if (count < 4)
    return -ENOSPC;
  return 4;
}

static int mISDN_open(struct inode *ino, struct file *filep)
{
  return 0;
}

static const struct file_operations mISDN_fops = {
  .open = mISDN_open,
  .read = mISDN_read,
  .unlocked_ioctl = mISDN_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice mISDNtimer = {
  .minor = 255,
  .name = "mISDNtimer",
  .fops = &mISDN_fops,
};
|}

let misdn_existing_spec =
  {|resource fd_misdn[fd]
openat$misdntimer(fd const[AT_FDCWD], file ptr[in, string["/dev/mISDNtimer"]], flags const[O_RDWR], mode const[0]) fd_misdn
ioctl$IMADDTIMER(fd fd_misdn, cmd const[IMADDTIMER], arg ptr[inout, int32])
ioctl$IMDELTIMER(fd fd_misdn, cmd const[IMDELTIMER], arg ptr[in, int32])
|}

let misdn_entry : Types.entry =
  Types.driver_entry ~name:"misdn_timer" ~display_name:"mISDNtimer"
    ~source:misdn_source ~existing_spec:misdn_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/mISDNtimer" ];
        gt_fops = "mISDN_fops";
        gt_socket = None;
        gt_ioctls =
          [
            { Types.gc_name = "IMADDTIMER"; gc_arg_type = None; gc_dir = Syzlang.Ast.Inout };
            { Types.gc_name = "IMDELTIMER"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "read" ];
      }
    ()

let entries = [ control_entry; timer_entry; misdn_entry ]
