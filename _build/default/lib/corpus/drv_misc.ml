(** Remaining misc drivers of Table 5: udmabuf, i2c-0, capi20,
    qat_adf_ctl, ppp, rfkill and usbmon0. *)

(* ------------------------------------------------------------------ *)
(* udmabuf                                                             *)
(* ------------------------------------------------------------------ *)

let udmabuf_source =
  {|
#define UDMABUF_CREATE _IOW('u', 0x42, struct udmabuf_create)
#define UDMABUF_CREATE_LIST _IOW('u', 0x43, struct udmabuf_create_list)
#define UDMABUF_FLAGS_CLOEXEC 1
#define UDMABUF_MAX_ITEMS 64

struct udmabuf_create {
  u32 memfd;
  u32 flags;
  u64 offset;      /* page aligned */
  u64 size;        /* page aligned */
};

struct udmabuf_create_item {
  u32 memfd;
  u32 __pad;
  u64 offset;
  u64 size;
};

struct udmabuf_create_list {
  u32 flags;
  u32 count;      /* number of items that follow */
  struct udmabuf_create_item list[4];
};

static int _udmabuf_count;

static long udmabuf_create_one(struct udmabuf_create *create)
{
  if (create->flags & ~UDMABUF_FLAGS_CLOEXEC)
    return -EINVAL;
  if (create->offset & 0xfff)
    return -EINVAL;
  if (create->size & 0xfff)
    return -EINVAL;
  if (create->size == 0)
    return -EINVAL;
  _udmabuf_count = _udmabuf_count + 1;
  return 100 + _udmabuf_count;
}

static long udmabuf_ioctl(struct file *filp, unsigned int ioctl, unsigned long arg)
{
  struct udmabuf_create create;
  struct udmabuf_create_list head;
  switch (ioctl) {
  case UDMABUF_CREATE:
    if (copy_from_user(&create, (void *)arg, sizeof(struct udmabuf_create)))
      return -EFAULT;
    return udmabuf_create_one(&create);
  case UDMABUF_CREATE_LIST:
    if (copy_from_user(&head, (void *)arg, sizeof(struct udmabuf_create_list)))
      return -EFAULT;
    if (head.count > UDMABUF_MAX_ITEMS)
      return -EINVAL;
    if (head.count == 0)
      return -EINVAL;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations udmabuf_fops = {
  .unlocked_ioctl = udmabuf_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice udmabuf_misc = {
  .minor = 130,
  .name = "udmabuf",
  .fops = &udmabuf_fops,
};
|}

let udmabuf_existing_spec =
  {|resource fd_udmabuf[fd]
openat$udmabuf(fd const[AT_FDCWD], file ptr[in, string["/dev/udmabuf"]], flags const[O_RDWR], mode const[0]) fd_udmabuf
ioctl$UDMABUF_CREATE(fd fd_udmabuf, cmd const[UDMABUF_CREATE], arg ptr[in, udmabuf_create])
ioctl$UDMABUF_CREATE_LIST(fd fd_udmabuf, cmd const[UDMABUF_CREATE_LIST], arg ptr[in, array[int8]])

udmabuf_create {
	memfd int32
	flags int32
	offset int64
	size int64
}
|}

let udmabuf_entry : Types.entry =
  Types.driver_entry ~name:"udmabuf" ~display_name:"udmabuf"
    ~source:udmabuf_source ~existing_spec:udmabuf_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/udmabuf" ];
        gt_fops = "udmabuf_fops";
        gt_socket = None;
        gt_ioctls =
          [
            { Types.gc_name = "UDMABUF_CREATE"; gc_arg_type = Some "udmabuf_create"; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "UDMABUF_CREATE_LIST"; gc_arg_type = Some "udmabuf_create_list"; gc_dir = Syzlang.Ast.In };
          ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* i2c-0                                                               *)
(* ------------------------------------------------------------------ *)

let i2c_source =
  {|
#define I2C_RETRIES 0x0701
#define I2C_TIMEOUT 0x0702
#define I2C_SLAVE 0x0703
#define I2C_SLAVE_FORCE 0x0706
#define I2C_TENBIT 0x0704
#define I2C_FUNCS 0x0705
#define I2C_RDWR 0x0707
#define I2C_PEC 0x0708
#define I2C_SMBUS 0x0720
#define I2C_RDWR_IOCTL_MAX_MSGS 42

struct i2c_msg {
  u16 addr;
  u16 flags;
  u16 len;        /* length of buf */
  u64 buf;
};

struct i2c_rdwr_ioctl_data {
  u64 msgs;       /* pointer to i2c_msg array */
  u32 nmsgs;      /* number of messages */
};

struct i2c_smbus_ioctl_data {
  u8 read_write;
  u8 command;
  u32 size;
  u64 data;
};

struct i2c_client_state {
  u16 addr;
  int tenbit;
  int pec;
  int retries;
  int timeout;
};

static struct i2c_client_state _i2c;

static long i2cdev_ioctl(struct file *fp, unsigned int cmd, unsigned long arg)
{
  struct i2c_rdwr_ioctl_data rdwr;
  struct i2c_smbus_ioctl_data smbus;
  u64 funcs;
  switch (cmd) {
  case I2C_SLAVE:
  case I2C_SLAVE_FORCE:
    if (arg > 0x3ff)
      return -EINVAL;
    if (!_i2c.tenbit && arg > 0x7f)
      return -EINVAL;
    _i2c.addr = arg;
    return 0;
  case I2C_TENBIT:
    _i2c.tenbit = arg != 0;
    return 0;
  case I2C_PEC:
    _i2c.pec = arg != 0;
    return 0;
  case I2C_FUNCS:
    funcs = 0xeff0009;
    if (copy_to_user((void *)arg, &funcs, 8))
      return -EFAULT;
    return 0;
  case I2C_RDWR:
    if (copy_from_user(&rdwr, (void *)arg, sizeof(struct i2c_rdwr_ioctl_data)))
      return -EFAULT;
    if (rdwr.nmsgs > I2C_RDWR_IOCTL_MAX_MSGS)
      return -EINVAL;
    if (rdwr.nmsgs == 0)
      return -EINVAL;
    return rdwr.nmsgs;
  case I2C_SMBUS:
    if (copy_from_user(&smbus, (void *)arg, sizeof(struct i2c_smbus_ioctl_data)))
      return -EFAULT;
    if (smbus.read_write > 1)
      return -EINVAL;
    if (smbus.size > 8)
      return -EINVAL;
    return 0;
  case I2C_RETRIES:
    if (arg > 100)
      return -EINVAL;
    _i2c.retries = arg;
    return 0;
  case I2C_TIMEOUT:
    if (arg == 0 || arg > 1000)
      return -EINVAL;
    _i2c.timeout = arg;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int i2cdev_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations i2cdev_fops = {
  .open = i2cdev_open,
  .unlocked_ioctl = i2cdev_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int i2c_dev_init(void)
{
  register_chrdev(89, "i2c", &i2cdev_fops);
  device_create(0, 0, 0, 0, "i2c-0");
  return 0;
}
|}

let i2c_existing_spec =
  {|resource fd_i2c[fd]
openat$i2c(fd const[AT_FDCWD], file ptr[in, string["/dev/i2c-0"]], flags const[O_RDWR], mode const[0]) fd_i2c
ioctl$I2C_SLAVE(fd fd_i2c, cmd const[I2C_SLAVE], arg intptr)
ioctl$I2C_SLAVE_FORCE(fd fd_i2c, cmd const[I2C_SLAVE_FORCE], arg intptr)
ioctl$I2C_TENBIT(fd fd_i2c, cmd const[I2C_TENBIT], arg intptr)
ioctl$I2C_PEC(fd fd_i2c, cmd const[I2C_PEC], arg intptr)
ioctl$I2C_FUNCS(fd fd_i2c, cmd const[I2C_FUNCS], arg ptr[out, int64])
ioctl$I2C_RDWR(fd fd_i2c, cmd const[I2C_RDWR], arg ptr[in, i2c_rdwr_ioctl_data])
ioctl$I2C_SMBUS(fd fd_i2c, cmd const[I2C_SMBUS], arg ptr[in, i2c_smbus_ioctl_data])
ioctl$I2C_RETRIES(fd fd_i2c, cmd const[I2C_RETRIES], arg intptr)
ioctl$I2C_TIMEOUT(fd fd_i2c, cmd const[I2C_TIMEOUT], arg intptr)

i2c_rdwr_ioctl_data {
	msgs int64
	nmsgs int32
}
i2c_smbus_ioctl_data {
	read_write int8
	command int8
	size int32
	data int64
}
|}

let i2c_entry : Types.entry =
  Types.driver_entry ~name:"i2c" ~display_name:"i2c-#"
    ~source:i2c_source ~existing_spec:i2c_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/i2c-0" ];
        gt_fops = "i2cdev_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("I2C_RETRIES", None, Syzlang.Ast.In);
              ("I2C_TIMEOUT", None, Syzlang.Ast.In);
              ("I2C_SLAVE", None, Syzlang.Ast.In);
              ("I2C_SLAVE_FORCE", None, Syzlang.Ast.In);
              ("I2C_TENBIT", None, Syzlang.Ast.In);
              ("I2C_FUNCS", None, Syzlang.Ast.Out);
              ("I2C_RDWR", Some "i2c_rdwr_ioctl_data", Syzlang.Ast.In);
              ("I2C_PEC", None, Syzlang.Ast.In);
              ("I2C_SMBUS", Some "i2c_smbus_ioctl_data", Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* capi20                                                              *)
(* ------------------------------------------------------------------ *)

let capi_source =
  {|
#define CAPI_REGISTER _IOW('C', 0x01, struct capi_register_params)
#define CAPI_GET_MANUFACTURER _IOWR('C', 0x06, int)
#define CAPI_GET_VERSION _IOWR('C', 0x07, struct capi_version)
#define CAPI_GET_SERIAL _IOWR('C', 0x08, int)
#define CAPI_GET_PROFILE _IOWR('C', 0x09, struct capi_profile)
#define CAPI_MANUFACTURER_CMD _IOWR('C', 0x20, struct capi_manufacturer_cmd)
#define CAPI_GET_ERRCODE _IOR('C', 0x21, u16)
#define CAPI_INSTALLED _IOR('C', 0x22, u16)
#define CAPI_GET_FLAGS _IOR('C', 0x23, unsigned int)
#define CAPI_SET_FLAGS _IOR('C', 0x24, unsigned int)
#define CAPI_CLR_FLAGS _IOR('C', 0x25, unsigned int)
#define CAPI_NCCI_OPENCOUNT _IOR('C', 0x26, unsigned int)
#define CAPI_MAX_CONTR 4

struct capi_register_params {
  u32 level3cnt;      /* number of level-3 connections */
  u32 datablkcnt;
  u32 datablklen;
};

struct capi_version {
  u32 majorversion;
  u32 minorversion;
  u32 majormanuversion;
  u32 minormanuversion;
};

struct capi_profile {
  u16 ncontroller;    /* number of installed controllers */
  u16 nbchannel;
  u32 goptions;
  u32 support1;
  u32 support2;
  u32 support3;
};

struct capi_manufacturer_cmd {
  unsigned long cmd;
  u64 data;
};

struct capidev {
  int registered;
  u32 flags;
  u16 errcode;
};

static struct capidev _capidev;

static int capi20_register(struct capi_register_params *rp)
{
  if (rp->level3cnt > 240)
    return -EINVAL;
  if (rp->datablkcnt > 255 || rp->datablkcnt < 2)
    return -EINVAL;
  _capidev.registered = 1;
  return 0;
}

static long capi_unlocked_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct capi_register_params rp;
  struct capi_version version;
  struct capi_profile profile;
  struct capi_manufacturer_cmd mcmd;
  u16 val16;
  unsigned int flags;
  switch (cmd) {
  case CAPI_REGISTER:
    if (copy_from_user(&rp, (void *)arg, sizeof(struct capi_register_params)))
      return -EFAULT;
    return capi20_register(&rp);
  case CAPI_GET_MANUFACTURER:
    if (!_capidev.registered)
      return -ESRCH;
    return 0;
  case CAPI_GET_VERSION:
    version.majorversion = 2;
    version.minorversion = 0;
    if (copy_to_user((void *)arg, &version, sizeof(struct capi_version)))
      return -EFAULT;
    return 0;
  case CAPI_GET_SERIAL:
    if (!_capidev.registered)
      return -ESRCH;
    return 0;
  case CAPI_GET_PROFILE:
    profile.ncontroller = CAPI_MAX_CONTR;
    profile.nbchannel = 2;
    if (copy_to_user((void *)arg, &profile, sizeof(struct capi_profile)))
      return -EFAULT;
    return 0;
  case CAPI_MANUFACTURER_CMD:
    if (!capable(0))
      return -EPERM;
    if (copy_from_user(&mcmd, (void *)arg, sizeof(struct capi_manufacturer_cmd)))
      return -EFAULT;
    return 0;
  case CAPI_GET_ERRCODE:
    val16 = _capidev.errcode;
    if (copy_to_user((void *)arg, &val16, 2))
      return -EFAULT;
    return 0;
  case CAPI_INSTALLED:
    return 0;
  case CAPI_GET_FLAGS:
    if (copy_to_user((void *)arg, &_capidev.flags, 4))
      return -EFAULT;
    return 0;
  case CAPI_SET_FLAGS:
    if (copy_from_user(&flags, (void *)arg, 4))
      return -EFAULT;
    _capidev.flags = _capidev.flags | flags;
    return 0;
  case CAPI_CLR_FLAGS:
    if (copy_from_user(&flags, (void *)arg, 4))
      return -EFAULT;
    _capidev.flags = _capidev.flags & ~flags;
    return 0;
  case CAPI_NCCI_OPENCOUNT:
    if (!_capidev.registered)
      return -ESRCH;
    return 0;
  default:
    return -EINVAL;
  }
}

static int capi_open(struct inode *inode, struct file *file)
{
  _capidev.registered = 0;
  return 0;
}

static const struct file_operations capi_fops = {
  .open = capi_open,
  .unlocked_ioctl = capi_unlocked_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice capi_device = {
  .minor = 68,
  .name = "capi20",
  .fops = &capi_fops,
};
|}

let capi_existing_spec =
  {|resource fd_capi[fd]
openat$capi20(fd const[AT_FDCWD], file ptr[in, string["/dev/capi20"]], flags const[O_RDWR], mode const[0]) fd_capi
ioctl$CAPI_REGISTER(fd fd_capi, cmd const[CAPI_REGISTER], arg ptr[in, capi_register_params])
ioctl$CAPI_GET_MANUFACTURER(fd fd_capi, cmd const[CAPI_GET_MANUFACTURER], arg ptr[inout, int32])
ioctl$CAPI_GET_VERSION(fd fd_capi, cmd const[CAPI_GET_VERSION], arg ptr[out, capi_version])
ioctl$CAPI_GET_SERIAL(fd fd_capi, cmd const[CAPI_GET_SERIAL], arg ptr[inout, int32])
ioctl$CAPI_GET_PROFILE(fd fd_capi, cmd const[CAPI_GET_PROFILE], arg ptr[out, capi_profile])
ioctl$CAPI_GET_ERRCODE(fd fd_capi, cmd const[CAPI_GET_ERRCODE], arg ptr[out, int16])
ioctl$CAPI_INSTALLED(fd fd_capi, cmd const[CAPI_INSTALLED], arg const[0])
ioctl$CAPI_GET_FLAGS(fd fd_capi, cmd const[CAPI_GET_FLAGS], arg ptr[out, int32])
ioctl$CAPI_SET_FLAGS(fd fd_capi, cmd const[CAPI_SET_FLAGS], arg ptr[in, int32])
ioctl$CAPI_CLR_FLAGS(fd fd_capi, cmd const[CAPI_CLR_FLAGS], arg ptr[in, int32])
ioctl$CAPI_NCCI_OPENCOUNT(fd fd_capi, cmd const[CAPI_NCCI_OPENCOUNT], arg ptr[in, int32])

capi_register_params {
	level3cnt int32
	datablkcnt int32
	datablklen int32
}
capi_version {
	majorversion int32
	minorversion int32
	majormanuversion int32
	minormanuversion int32
}
capi_profile {
	ncontroller int16
	nbchannel int16
	goptions int32
	support1 int32
	support2 int32
	support3 int32
}
|}

let capi_entry : Types.entry =
  Types.driver_entry ~name:"capi20" ~display_name:"capi20"
    ~source:capi_source ~existing_spec:capi_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/capi20" ];
        gt_fops = "capi_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("CAPI_REGISTER", Some "capi_register_params", Syzlang.Ast.In);
              ("CAPI_GET_MANUFACTURER", None, Syzlang.Ast.Inout);
              ("CAPI_GET_VERSION", Some "capi_version", Syzlang.Ast.Out);
              ("CAPI_GET_SERIAL", None, Syzlang.Ast.Inout);
              ("CAPI_GET_PROFILE", Some "capi_profile", Syzlang.Ast.Out);
              ("CAPI_MANUFACTURER_CMD", Some "capi_manufacturer_cmd", Syzlang.Ast.In);
              ("CAPI_GET_ERRCODE", None, Syzlang.Ast.Out);
              ("CAPI_INSTALLED", None, Syzlang.Ast.In);
              ("CAPI_GET_FLAGS", None, Syzlang.Ast.Out);
              ("CAPI_SET_FLAGS", None, Syzlang.Ast.In);
              ("CAPI_CLR_FLAGS", None, Syzlang.Ast.In);
              ("CAPI_NCCI_OPENCOUNT", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* qat_adf_ctl                                                         *)
(* ------------------------------------------------------------------ *)

let qat_source =
  {|
#define ADF_CTL_IOC_MAGIC 'a'
#define IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS _IOW(ADF_CTL_IOC_MAGIC, 0, struct adf_user_cfg_ctl_data)
#define IOCTL_STOP_ACCEL_DEV _IOW(ADF_CTL_IOC_MAGIC, 1, struct adf_user_cfg_ctl_data)
#define IOCTL_START_ACCEL_DEV _IOW(ADF_CTL_IOC_MAGIC, 2, struct adf_user_cfg_ctl_data)
#define IOCTL_STATUS_ACCEL_DEV _IOW(ADF_CTL_IOC_MAGIC, 3, u32)
#define IOCTL_GET_NUM_DEVICES _IOW(ADF_CTL_IOC_MAGIC, 4, s32)
#define IOCTL_RESERVED _IOW(ADF_CTL_IOC_MAGIC, 5, u32)
#define ADF_MAX_DEVICES 2

struct adf_user_cfg_ctl_data {
  u64 config_section;   /* pointer to section list */
  u8 device_id;
};

struct adf_accel_state {
  int configured;
  int started;
};

static struct adf_accel_state _adf_devs[2];

static long adf_ctl_ioctl(struct file *fp, unsigned int cmd, unsigned long arg)
{
  struct adf_user_cfg_ctl_data ctl_data;
  s32 num;
  switch (cmd) {
  case IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS:
    if (copy_from_user(&ctl_data, (void *)arg, sizeof(struct adf_user_cfg_ctl_data)))
      return -EFAULT;
    if (ctl_data.device_id >= ADF_MAX_DEVICES)
      return -ENODEV;
    _adf_devs[ctl_data.device_id].configured = 1;
    return 0;
  case IOCTL_START_ACCEL_DEV:
    if (copy_from_user(&ctl_data, (void *)arg, sizeof(struct adf_user_cfg_ctl_data)))
      return -EFAULT;
    if (ctl_data.device_id >= ADF_MAX_DEVICES)
      return -ENODEV;
    if (!_adf_devs[ctl_data.device_id].configured)
      return -EFAULT;
    _adf_devs[ctl_data.device_id].started = 1;
    return 0;
  case IOCTL_STOP_ACCEL_DEV:
    if (copy_from_user(&ctl_data, (void *)arg, sizeof(struct adf_user_cfg_ctl_data)))
      return -EFAULT;
    if (ctl_data.device_id >= ADF_MAX_DEVICES)
      return -ENODEV;
    if (!_adf_devs[ctl_data.device_id].started)
      return -ENODEV;
    _adf_devs[ctl_data.device_id].started = 0;
    return 0;
  case IOCTL_STATUS_ACCEL_DEV:
    if (copy_from_user(&num, (void *)arg, 4))
      return -EFAULT;
    if (num >= ADF_MAX_DEVICES)
      return -ENODEV;
    return _adf_devs[num].started;
  case IOCTL_GET_NUM_DEVICES:
    num = ADF_MAX_DEVICES;
    if (copy_to_user((void *)arg, &num, 4))
      return -EFAULT;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int adf_ctl_open(struct inode *inode, struct file *file)
{
  return 0;
}

static const struct file_operations adf_ctl_ops = {
  .open = adf_ctl_open,
  .unlocked_ioctl = adf_ctl_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice adf_ctl_misc = {
  .minor = 140,
  .name = "qat_adf_ctl",
  .fops = &adf_ctl_ops,
};
|}

let qat_existing_spec =
  {|resource fd_qat[fd]
openat$qat_adf_ctl(fd const[AT_FDCWD], file ptr[in, string["/dev/qat_adf_ctl"]], flags const[O_RDWR], mode const[0]) fd_qat
ioctl$IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS(fd fd_qat, cmd const[IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS], arg ptr[in, adf_user_cfg_ctl_data])
ioctl$IOCTL_STOP_ACCEL_DEV(fd fd_qat, cmd const[IOCTL_STOP_ACCEL_DEV], arg ptr[in, adf_user_cfg_ctl_data])
ioctl$IOCTL_START_ACCEL_DEV(fd fd_qat, cmd const[IOCTL_START_ACCEL_DEV], arg ptr[in, adf_user_cfg_ctl_data])
ioctl$IOCTL_STATUS_ACCEL_DEV(fd fd_qat, cmd const[IOCTL_STATUS_ACCEL_DEV], arg ptr[in, int32])
ioctl$IOCTL_GET_NUM_DEVICES(fd fd_qat, cmd const[IOCTL_GET_NUM_DEVICES], arg ptr[out, int32])

adf_user_cfg_ctl_data {
	config_section int64
	device_id int8
}
|}

let qat_entry : Types.entry =
  Types.driver_entry ~name:"qat_adf_ctl" ~display_name:"qat_adf_ctl"
    ~source:qat_source ~existing_spec:qat_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/qat_adf_ctl" ];
        gt_fops = "adf_ctl_ops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS", Some "adf_user_cfg_ctl_data", Syzlang.Ast.In);
              ("IOCTL_STOP_ACCEL_DEV", Some "adf_user_cfg_ctl_data", Syzlang.Ast.In);
              ("IOCTL_START_ACCEL_DEV", Some "adf_user_cfg_ctl_data", Syzlang.Ast.In);
              ("IOCTL_STATUS_ACCEL_DEV", None, Syzlang.Ast.In);
              ("IOCTL_GET_NUM_DEVICES", None, Syzlang.Ast.Out);
              ("IOCTL_RESERVED", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* ppp                                                                 *)
(* ------------------------------------------------------------------ *)

let ppp_source =
  {|
#define PPPIOCNEWUNIT _IOWR('t', 62, int)
#define PPPIOCATTACH _IOW('t', 61, int)
#define PPPIOCDETACH _IOW('t', 60, int)
#define PPPIOCSMRU _IOW('t', 82, int)
#define PPPIOCSFLAGS _IOW('t', 89, int)
#define PPPIOCGFLAGS _IOR('t', 90, int)
#define PPPIOCGUNIT _IOR('t', 86, int)
#define PPPIOCSMAXCID _IOW('t', 81, int)
#define PPPIOCGIDLE _IOR('t', 63, struct ppp_idle)
#define PPPIOCSCOMPRESS _IOW('t', 77, struct ppp_option_data)
#define PPPIOCGNPMODE _IOWR('t', 76, struct npioctl)
#define PPPIOCSNPMODE _IOW('t', 75, struct npioctl)
#define PPPIOCSPASS _IOW('t', 71, struct sock_fprog)
#define PPPIOCSACTIVE _IOW('t', 70, struct sock_fprog)
#define PPP_MRU 1500
#define PPP_MAX_UNITS 4

struct ppp_idle {
  u64 xmit_idle;
  u64 recv_idle;
};

struct ppp_option_data {
  u64 ptr;
  u32 length;     /* length of the option data at ptr */
  s32 transmit;
};

struct npioctl {
  s32 protocol;
  s32 mode;
};

struct sock_fprog {
  u16 len;        /* number of BPF instructions */
  u64 filter;
};

struct ppp_file_state {
  int unit;       /* -1 when not attached *
*/
  u32 mru;
  u32 flags;
  int maxcid;
};

static struct ppp_file_state _ppp;
static int _ppp_units;

static int ppp_new_unit(void)
{
  if (_ppp_units >= PPP_MAX_UNITS)
    return -ENOSPC;
  _ppp_units = _ppp_units + 1;
  _ppp.unit = _ppp_units;
  return _ppp.unit;
}

static long ppp_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct ppp_idle idle;
  struct ppp_option_data data;
  struct npioctl npi;
  struct sock_fprog fprog;
  int val;
  switch (cmd) {
  case PPPIOCNEWUNIT:
    return ppp_new_unit();
  case PPPIOCATTACH:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val <= 0 || val > _ppp_units)
      return -ENXIO;
    _ppp.unit = val;
    return 0;
  case PPPIOCDETACH:
    if (_ppp.unit == 0)
      return -EINVAL;
    _ppp.unit = 0;
    return 0;
  case PPPIOCSMRU:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 128 || val > 65535)
      return -EINVAL;
    _ppp.mru = val;
    return 0;
  case PPPIOCSFLAGS:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    _ppp.flags = val;
    return 0;
  case PPPIOCGFLAGS:
    if (copy_to_user((void *)arg, &_ppp.flags, 4))
      return -EFAULT;
    return 0;
  case PPPIOCGUNIT:
    if (_ppp.unit == 0)
      return -ENXIO;
    if (copy_to_user((void *)arg, &_ppp.unit, 4))
      return -EFAULT;
    return 0;
  case PPPIOCSMAXCID:
    if (copy_from_user(&val, (void *)arg, 4))
      return -EFAULT;
    if (val < 0 || val > 255)
      return -EINVAL;
    _ppp.maxcid = val;
    return 0;
  case PPPIOCGIDLE:
    idle.xmit_idle = 0;
    idle.recv_idle = 0;
    if (copy_to_user((void *)arg, &idle, sizeof(struct ppp_idle)))
      return -EFAULT;
    return 0;
  case PPPIOCSCOMPRESS:
    if (copy_from_user(&data, (void *)arg, sizeof(struct ppp_option_data)))
      return -EFAULT;
    if (data.length > 64)
      return -EINVAL;
    return 0;
  case PPPIOCGNPMODE:
  case PPPIOCSNPMODE:
    if (copy_from_user(&npi, (void *)arg, sizeof(struct npioctl)))
      return -EFAULT;
    if (npi.protocol != 0x21 && npi.protocol != 0x57)
      return -EINVAL;
    if (cmd == PPPIOCGNPMODE) {
      npi.mode = 0;
      if (copy_to_user((void *)arg, &npi, sizeof(struct npioctl)))
        return -EFAULT;
    }
    return 0;
  case PPPIOCSPASS:
  case PPPIOCSACTIVE:
    if (copy_from_user(&fprog, (void *)arg, sizeof(struct sock_fprog)))
      return -EFAULT;
    if (fprog.len > 64)
      return -EINVAL;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int ppp_open(struct inode *inode, struct file *file)
{
  _ppp.unit = 0;
  return 0;
}

static const struct file_operations ppp_device_fops = {
  .open = ppp_open,
  .unlocked_ioctl = ppp_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice ppp_misc = {
  .minor = 108,
  .name = "ppp",
  .fops = &ppp_device_fops,
};
|}

let ppp_existing_spec =
  {|resource fd_ppp[fd]
openat$ppp(fd const[AT_FDCWD], file ptr[in, string["/dev/ppp"]], flags const[O_RDWR], mode const[0]) fd_ppp
ioctl$PPPIOCNEWUNIT(fd fd_ppp, cmd const[PPPIOCNEWUNIT], arg ptr[inout, int32])
ioctl$PPPIOCATTACH(fd fd_ppp, cmd const[PPPIOCATTACH], arg ptr[in, int32])
ioctl$PPPIOCDETACH(fd fd_ppp, cmd const[PPPIOCDETACH], arg ptr[in, int32])
ioctl$PPPIOCSMRU(fd fd_ppp, cmd const[PPPIOCSMRU], arg ptr[in, int32])
ioctl$PPPIOCSFLAGS(fd fd_ppp, cmd const[PPPIOCSFLAGS], arg ptr[in, int32])
ioctl$PPPIOCGFLAGS(fd fd_ppp, cmd const[PPPIOCGFLAGS], arg ptr[out, int32])
ioctl$PPPIOCGUNIT(fd fd_ppp, cmd const[PPPIOCGUNIT], arg ptr[out, int32])
ioctl$PPPIOCSMAXCID(fd fd_ppp, cmd const[PPPIOCSMAXCID], arg ptr[in, int32])
ioctl$PPPIOCGIDLE(fd fd_ppp, cmd const[PPPIOCGIDLE], arg ptr[out, ppp_idle])

ppp_idle {
	xmit_idle int64
	recv_idle int64
}
|}

let ppp_entry : Types.entry =
  Types.driver_entry ~name:"ppp" ~display_name:"ppp"
    ~source:ppp_source ~existing_spec:ppp_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/ppp" ];
        gt_fops = "ppp_device_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("PPPIOCNEWUNIT", None, Syzlang.Ast.Inout);
              ("PPPIOCATTACH", None, Syzlang.Ast.In);
              ("PPPIOCDETACH", None, Syzlang.Ast.In);
              ("PPPIOCSMRU", None, Syzlang.Ast.In);
              ("PPPIOCSFLAGS", None, Syzlang.Ast.In);
              ("PPPIOCGFLAGS", None, Syzlang.Ast.Out);
              ("PPPIOCGUNIT", None, Syzlang.Ast.Out);
              ("PPPIOCSMAXCID", None, Syzlang.Ast.In);
              ("PPPIOCGIDLE", Some "ppp_idle", Syzlang.Ast.Out);
              ("PPPIOCSCOMPRESS", Some "ppp_option_data", Syzlang.Ast.In);
              ("PPPIOCGNPMODE", Some "npioctl", Syzlang.Ast.Inout);
              ("PPPIOCSNPMODE", Some "npioctl", Syzlang.Ast.In);
              ("PPPIOCSPASS", Some "sock_fprog", Syzlang.Ast.In);
              ("PPPIOCSACTIVE", Some "sock_fprog", Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* rfkill                                                              *)
(* ------------------------------------------------------------------ *)

let rfkill_source =
  {|
#define RFKILL_IOC_MAGIC 'R'
#define RFKILL_IOCTL_NOINPUT _IO(RFKILL_IOC_MAGIC, 1)
#define RFKILL_IOCTL_MAX_SIZE _IOW(RFKILL_IOC_MAGIC, 2, u32)
#define RFKILL_EVENT_SIZE 9

struct rfkill_event {
  u32 idx;
  u8 type;
  u8 op;
  u8 soft;       /* soft-blocked */
  u8 hard;       /* hard-blocked */
};

struct rfkill_data {
  int input_handler;
  u32 max_size;
};

static struct rfkill_data _rfkill;

static long rfkill_fop_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  u32 size;
  switch (cmd) {
  case RFKILL_IOCTL_NOINPUT:
    _rfkill.input_handler = 0;
    return 0;
  case RFKILL_IOCTL_MAX_SIZE:
    if (copy_from_user(&size, (void *)arg, 4))
      return -EFAULT;
    if (size < RFKILL_EVENT_SIZE)
      return -EINVAL;
    _rfkill.max_size = size;
    return 0;
  default:
    return -ENOIOCTLCMD;
  }
}

static ssize_t rfkill_fop_write(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (count < RFKILL_EVENT_SIZE)
    return -EINVAL;
  return count;
}

static ssize_t rfkill_fop_read(struct file *file, char *buf, size_t count, loff_t *ppos)
{
  if (count < RFKILL_EVENT_SIZE)
    return -EINVAL;
  return RFKILL_EVENT_SIZE;
}

static const struct file_operations rfkill_fops = {
  .read = rfkill_fop_read,
  .write = rfkill_fop_write,
  .unlocked_ioctl = rfkill_fop_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static struct miscdevice rfkill_miscdev = {
  .minor = 242,
  .name = "rfkill",
  .fops = &rfkill_fops,
};
|}

let rfkill_existing_spec =
  {|resource fd_rfkill[fd]
openat$rfkill(fd const[AT_FDCWD], file ptr[in, string["/dev/rfkill"]], flags const[O_RDWR], mode const[0]) fd_rfkill
read$rfkill(fd fd_rfkill, buf ptr[out, array[int8]], len intptr)
write$rfkill(fd fd_rfkill, buf ptr[in, array[int8]], len intptr)
|}

let rfkill_entry : Types.entry =
  Types.driver_entry ~name:"rfkill" ~display_name:"rfkill"
    ~source:rfkill_source ~existing_spec:rfkill_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/rfkill" ];
        gt_fops = "rfkill_fops";
        gt_socket = None;
        gt_ioctls =
          [
            { Types.gc_name = "RFKILL_IOCTL_NOINPUT"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
            { Types.gc_name = "RFKILL_IOCTL_MAX_SIZE"; gc_arg_type = None; gc_dir = Syzlang.Ast.In };
          ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "read"; "write" ];
      }
    ()

(* ------------------------------------------------------------------ *)
(* usbmon0                                                             *)
(* ------------------------------------------------------------------ *)

let usbmon_source =
  {|
#define MON_IOC_MAGIC 0x92
#define MON_IOCQ_URB_LEN _IO(MON_IOC_MAGIC, 1)
#define MON_IOCG_STATS _IOR(MON_IOC_MAGIC, 3, struct mon_bin_stats)
#define MON_IOCT_RING_SIZE _IO(MON_IOC_MAGIC, 4)
#define MON_IOCQ_RING_SIZE _IO(MON_IOC_MAGIC, 5)
#define MON_IOCX_GET _IOW(MON_IOC_MAGIC, 6, struct mon_bin_get)
#define MON_IOCX_MFETCH _IOWR(MON_IOC_MAGIC, 7, struct mon_bin_mfetch)
#define MON_IOCH_MFLUSH _IO(MON_IOC_MAGIC, 8)
#define CHUNK_SIZE 4096
#define BUFF_MAX 1048576
#define BUFF_MIN 8192

struct mon_bin_stats {
  u32 queued;
  u32 dropped;
};

struct mon_bin_get {
  u64 hdr;
  u64 data;
  u64 alloc;       /* byte size of the data buffer */
};

struct mon_bin_mfetch {
  u64 offvec;      /* vector of fetched events */
  u32 nfetch;      /* number of events to fetch */
  u32 nflush;      /* number of events to flush */
};

struct mon_reader_bin {
  u32 ring_size;
  u32 queued;
  u32 dropped;
};

static struct mon_reader_bin _usbmon;

static long mon_bin_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  struct mon_bin_stats stats;
  struct mon_bin_get getb;
  struct mon_bin_mfetch mfetch;
  switch (cmd) {
  case MON_IOCQ_URB_LEN:
    return 0;
  case MON_IOCG_STATS:
    stats.queued = _usbmon.queued;
    stats.dropped = _usbmon.dropped;
    if (copy_to_user((void *)arg, &stats, sizeof(struct mon_bin_stats)))
      return -EFAULT;
    return 0;
  case MON_IOCT_RING_SIZE:
    if (arg < BUFF_MIN || arg > BUFF_MAX)
      return -EINVAL;
    if (arg % CHUNK_SIZE != 0)
      return -EINVAL;
    _usbmon.ring_size = arg;
    return 0;
  case MON_IOCQ_RING_SIZE:
    return _usbmon.ring_size;
  case MON_IOCX_GET:
    if (copy_from_user(&getb, (void *)arg, sizeof(struct mon_bin_get)))
      return -EFAULT;
    if (getb.alloc > BUFF_MAX)
      return -EINVAL;
    if (_usbmon.queued == 0)
      return -EAGAIN;
    return 0;
  case MON_IOCX_MFETCH:
    if (copy_from_user(&mfetch, (void *)arg, sizeof(struct mon_bin_mfetch)))
      return -EFAULT;
    if (mfetch.nflush > _usbmon.queued)
      return -EINVAL;
    _usbmon.queued = _usbmon.queued - mfetch.nflush;
    if (copy_to_user((void *)arg, &mfetch, sizeof(struct mon_bin_mfetch)))
      return -EFAULT;
    return 0;
  case MON_IOCH_MFLUSH:
    if (arg > _usbmon.queued)
      return -EINVAL;
    _usbmon.queued = _usbmon.queued - arg;
    return 0;
  default:
    return -ENOTTY;
  }
}

static int mon_bin_open(struct inode *inode, struct file *file)
{
  _usbmon.ring_size = 65536;
  return 0;
}

static const struct file_operations mon_fops_binary = {
  .open = mon_bin_open,
  .unlocked_ioctl = mon_bin_ioctl,
  .owner = THIS_MODULE,
  .llseek = noop_llseek,
};

static int mon_bin_init(void)
{
  cdev_init(0, &mon_fops_binary);
  cdev_add(0, 0, 1);
  device_create(0, 0, 0, 0, "usbmon0");
  return 0;
}
|}

let usbmon_existing_spec =
  {|resource fd_usbmon[fd]
openat$usbmon(fd const[AT_FDCWD], file ptr[in, string["/dev/usbmon0"]], flags const[O_RDONLY], mode const[0]) fd_usbmon
ioctl$MON_IOCQ_URB_LEN(fd fd_usbmon, cmd const[MON_IOCQ_URB_LEN], arg const[0])
ioctl$MON_IOCG_STATS(fd fd_usbmon, cmd const[MON_IOCG_STATS], arg ptr[out, mon_bin_stats])
ioctl$MON_IOCT_RING_SIZE(fd fd_usbmon, cmd const[MON_IOCT_RING_SIZE], arg intptr)
ioctl$MON_IOCQ_RING_SIZE(fd fd_usbmon, cmd const[MON_IOCQ_RING_SIZE], arg const[0])
ioctl$MON_IOCH_MFLUSH(fd fd_usbmon, cmd const[MON_IOCH_MFLUSH], arg intptr)

mon_bin_stats {
	queued int32
	dropped int32
}
|}

let usbmon_entry : Types.entry =
  Types.driver_entry ~name:"usbmon" ~display_name:"usbmon#"
    ~source:usbmon_source ~existing_spec:usbmon_existing_spec ~in_table5:true
    ~gt:
      {
        Types.gt_paths = [ "/dev/usbmon0" ];
        gt_fops = "mon_fops_binary";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (n, t, d) -> { Types.gc_name = n; gc_arg_type = t; gc_dir = d })
            [
              ("MON_IOCQ_URB_LEN", None, Syzlang.Ast.In);
              ("MON_IOCG_STATS", Some "mon_bin_stats", Syzlang.Ast.Out);
              ("MON_IOCT_RING_SIZE", None, Syzlang.Ast.In);
              ("MON_IOCQ_RING_SIZE", None, Syzlang.Ast.In);
              ("MON_IOCX_GET", Some "mon_bin_get", Syzlang.Ast.In);
              ("MON_IOCX_MFETCH", Some "mon_bin_mfetch", Syzlang.Ast.Inout);
              ("MON_IOCH_MFLUSH", None, Syzlang.Ast.In);
            ];
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ()

let entries =
  [ udmabuf_entry; i2c_entry; capi_entry; qat_entry; ppp_entry; rfkill_entry; usbmon_entry ]
