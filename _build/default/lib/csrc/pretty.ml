(** Pretty-printer from the mini-C AST back to C-like source text.

    Used to render definitions into oracle prompts (the stand-in for the
    paper's [ExtractCode]) and to measure prompt sizes in tokens. *)

let rec type_prefix = function
  | Ast.Void -> "void"
  | Ast.Bool -> "bool"
  | Ast.Int { signed = true; width = 8 } -> "char"
  | Ast.Int { signed = true; width = 16 } -> "short"
  | Ast.Int { signed = true; width = 32 } -> "int"
  | Ast.Int { signed = true; width = 64 } -> "long"
  | Ast.Int { signed = false; width = 8 } -> "unsigned char"
  | Ast.Int { signed = false; width = 16 } -> "unsigned short"
  | Ast.Int { signed = false; width = 32 } -> "unsigned int"
  | Ast.Int { signed = false; width = 64 } -> "unsigned long"
  | Ast.Int { signed; width } ->
      Printf.sprintf "%s%d_t" (if signed then "int" else "uint") width
  | Ast.Named n -> n
  | Ast.Ptr t -> type_prefix t ^ " *"
  | Ast.Array (t, _) -> type_prefix t
  | Ast.Struct_ref n -> "struct " ^ n
  | Ast.Union_ref n -> "union " ^ n
  | Ast.Enum_ref n -> "enum " ^ n
  | Ast.Func_ptr (ret, args) ->
      Printf.sprintf "%s (*)(%s)" (type_prefix ret)
        (String.concat ", " (List.map type_prefix args))

let type_suffix = function
  | Ast.Array (_, Some 0) -> "[]"
  | Ast.Array (_, Some n) -> Printf.sprintf "[%d]" n
  | Ast.Array (_, None) -> "[]"
  | _ -> ""

let unop_str = function Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Bit_not -> "~"

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Land -> "&&"
  | Ast.Lor -> "||"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let escape_c_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_str (e : Ast.expr) : string =
  match e with
  | Ast.Const_int v ->
      if Int64.compare v 4096L > 0 then Printf.sprintf "0x%Lx" v else Int64.to_string v
  | Ast.Const_char c -> Printf.sprintf "'%c'" c
  | Ast.Const_str s -> Printf.sprintf "\"%s\"" (escape_c_string s)
  | Ast.Ident s -> s
  | Ast.Unop (op, a) -> Printf.sprintf "%s%s" (unop_str op) (atom a)
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "%s %s %s" (atom a) (binop_str op) (atom b)
  | Ast.Assign (a, b) -> Printf.sprintf "%s = %s" (expr_str a) (expr_str b)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Ast.Member (a, f) -> Printf.sprintf "%s.%s" (atom a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (atom a) f
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (atom a) (expr_str i)
  | Ast.Cast (ty, a) -> Printf.sprintf "(%s)%s" (type_prefix ty) (atom a)
  | Ast.Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (type_prefix ty)
  | Ast.Sizeof_expr a -> Printf.sprintf "sizeof(%s)" (expr_str a)
  | Ast.Ternary (c, t, f) ->
      Printf.sprintf "%s ? %s : %s" (atom c) (expr_str t) (expr_str f)
  | Ast.Addr_of a -> Printf.sprintf "&%s" (atom a)
  | Ast.Deref a -> Printf.sprintf "*%s" (atom a)
  | Ast.Type_arg ty -> type_prefix ty

and atom e =
  match e with
  | Ast.Const_int _ | Ast.Const_char _ | Ast.Const_str _ | Ast.Ident _ | Ast.Call _
  | Ast.Member _ | Ast.Arrow _ | Ast.Index _ | Ast.Sizeof_type _ | Ast.Sizeof_expr _
  | Ast.Type_arg _ ->
      expr_str e
  | _ -> "(" ^ expr_str e ^ ")"

let indent n = String.make (n * 2) ' '

let rec stmt_lines lvl (s : Ast.stmt) : string list =
  let pad = indent lvl in
  match s.node with
  | Ast.Expr_stmt e -> [ pad ^ expr_str e ^ ";" ]
  | Ast.Decl_stmt (ty, name, init) ->
      let init_s = match init with Some e -> " = " ^ expr_str e | None -> "" in
      [ Printf.sprintf "%s%s %s%s%s;" pad (type_prefix ty) name (type_suffix ty) init_s ]
  | Ast.If (c, t, e) ->
      let head = Printf.sprintf "%sif (%s) {" pad (expr_str c) in
      let body = List.concat_map (stmt_lines (lvl + 1)) t in
      let tail =
        match e with
        | None -> [ pad ^ "}" ]
        | Some e ->
            (pad ^ "} else {") :: (List.concat_map (stmt_lines (lvl + 1)) e @ [ pad ^ "}" ])
      in
      (head :: body) @ tail
  | Ast.Switch (c, cases) ->
      let head = Printf.sprintf "%sswitch (%s) {" pad (expr_str c) in
      let case_lines case =
        let labels =
          List.map
            (function
              | Ast.Case e -> Printf.sprintf "%scase %s:" pad (expr_str e)
              | Ast.Default -> pad ^ "default:")
            case.Ast.labels
        in
        labels @ List.concat_map (stmt_lines (lvl + 1)) case.Ast.case_body
      in
      (head :: List.concat_map case_lines cases) @ [ pad ^ "}" ]
  | Ast.While (c, b) ->
      (Printf.sprintf "%swhile (%s) {" pad (expr_str c)
      :: List.concat_map (stmt_lines (lvl + 1)) b)
      @ [ pad ^ "}" ]
  | Ast.Do_while (b, c) ->
      ((pad ^ "do {") :: List.concat_map (stmt_lines (lvl + 1)) b)
      @ [ Printf.sprintf "%s} while (%s);" pad (expr_str c) ]
  | Ast.For (i, c, u, b) ->
      let opt = function Some e -> expr_str e | None -> "" in
      (Printf.sprintf "%sfor (%s; %s; %s) {" pad (opt i) (opt c) (opt u)
      :: List.concat_map (stmt_lines (lvl + 1)) b)
      @ [ pad ^ "}" ]
  | Ast.Return None -> [ pad ^ "return;" ]
  | Ast.Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_str e) ]
  | Ast.Break -> [ pad ^ "break;" ]
  | Ast.Continue -> [ pad ^ "continue;" ]
  | Ast.Goto l -> [ Printf.sprintf "%sgoto %s;" pad l ]
  | Ast.Label l -> [ Printf.sprintf "%s%s:" (indent (max 0 (lvl - 1))) l ]
  | Ast.Block b ->
      ((pad ^ "{") :: List.concat_map (stmt_lines (lvl + 1)) b) @ [ pad ^ "}" ]

let func_str (f : Ast.func_def) : string =
  let params =
    match f.fun_params with
    | [] -> "void"
    | ps ->
        String.concat ", "
          (List.map (fun (ty, n) -> Printf.sprintf "%s %s" (type_prefix ty) n) ps)
  in
  let head =
    Printf.sprintf "%s%s %s(%s)"
      (if f.fun_static then "static " else "")
      (type_prefix f.fun_ret) f.fun_name params
  in
  if f.fun_body = [] then head ^ ";"
  else
    String.concat "\n"
      ((head ^ " {") :: (List.concat_map (stmt_lines 1) f.fun_body @ [ "}" ]))

let field_str (fld : Ast.field) : string =
  let comment = match fld.field_comment with Some c -> Printf.sprintf " /* %s */" c | None -> "" in
  match fld.field_type with
  | Ast.Func_ptr (ret, args) ->
      Printf.sprintf "  %s (*%s)(%s);%s" (type_prefix ret) fld.field_name
        (String.concat ", " (List.map type_prefix args))
        comment
  | ty ->
      Printf.sprintf "  %s %s%s;%s" (type_prefix ty) fld.field_name (type_suffix ty) comment

let composite_str (c : Ast.composite_def) : string =
  let kw = match c.comp_kind with Ast.Struct -> "struct" | Ast.Union -> "union" in
  String.concat "\n"
    ((Printf.sprintf "%s %s {" kw c.comp_name :: List.map field_str c.fields) @ [ "};" ])

let enum_str (e : Ast.enum_def) : string =
  let item i =
    match i.Ast.item_value with
    | Some v -> Printf.sprintf "  %s = %s," i.Ast.item_name (expr_str v)
    | None -> Printf.sprintf "  %s," i.Ast.item_name
  in
  let name = match e.enum_name with Some n -> " " ^ n | None -> "" in
  String.concat "\n" ((Printf.sprintf "enum%s {" name :: List.map item e.items) @ [ "};" ])

let rec ginit_str = function
  | Ast.Init_expr e -> expr_str e
  | Ast.Init_designated fields ->
      "{\n"
      ^ String.concat ""
          (List.map (fun (f, v) -> Printf.sprintf "  .%s = %s,\n" f (ginit_str v)) fields)
      ^ "}"
  | Ast.Init_list items -> "{ " ^ String.concat ", " (List.map ginit_str items) ^ " }"

let global_str (g : Ast.global_def) : string =
  let init = match g.global_init with Some i -> " = " ^ ginit_str i | None -> "" in
  Printf.sprintf "%s%s %s%s%s;"
    (if g.global_static then "static " else "")
    (type_prefix g.global_type) g.global_name (type_suffix g.global_type) init

let macro_str (m : Ast.macro_def) : string =
  Printf.sprintf "#define %s %s" m.macro_name
    (String.concat " " (List.map Token.to_string m.macro_body))

let typedef_str (t : Ast.typedef_def) : string =
  Printf.sprintf "typedef %s %s;" (type_prefix t.td_type) t.td_name

let decl_str = function
  | Ast.D_composite c -> composite_str c
  | Ast.D_enum e -> enum_str e
  | Ast.D_func f -> func_str f
  | Ast.D_global g -> global_str g
  | Ast.D_macro m -> macro_str m
  | Ast.D_typedef t -> typedef_str t

let file_str (f : Ast.file) : string =
  String.concat "\n\n" (List.map decl_str f.decls)
