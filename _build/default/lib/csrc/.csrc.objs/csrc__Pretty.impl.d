lib/csrc/pretty.ml: Ast Buffer Int64 List Printf String Token
