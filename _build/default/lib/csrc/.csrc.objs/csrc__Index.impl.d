lib/csrc/index.ml: Ast Char Hashtbl Int64 List Parser Pretty Printf String Token
