lib/csrc/parser.ml: Array Ast Buffer Hashtbl Int64 Lexer List Loc Printf String Token
