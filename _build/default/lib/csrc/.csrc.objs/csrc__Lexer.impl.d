lib/csrc/lexer.ml: Array Buffer Int64 List Printf String Token
