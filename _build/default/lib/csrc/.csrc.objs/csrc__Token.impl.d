lib/csrc/token.ml: Int64 Printf
