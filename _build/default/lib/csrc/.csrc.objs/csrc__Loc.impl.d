lib/csrc/loc.ml: Format Int String
