lib/csrc/ast.ml: Fun List Loc Option Printf String Token
