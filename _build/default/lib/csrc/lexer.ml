(** Hand-written lexer for the mini-C dialect.

    Comments are not discarded: they are collected into a side table keyed
    by line number so the parser can attach them to struct fields and
    declarations. The analysis oracle uses those comments to infer
    semantic relations (the paper's "textual comprehension" advantage). *)

exception Error of string * int (* message, line *)

type comment = { text : string; cline : int }

type result = {
  tokens : Token.spanned array;
  comments : comment list; (* in source order *)
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let lex (src : string) : result =
  let n = String.length src in
  let tokens = ref [] in
  let comments = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let in_define = ref false in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let emit tok = tokens := { Token.tok; line = !line } :: !tokens in
  let error msg = raise (Error (msg, !line)) in
  let lex_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let lex_number () =
    let start = !pos in
    let hex =
      match (cur (), peek 1) with
      | Some '0', Some ('x' | 'X') ->
          advance ();
          advance ();
          true
      | _ -> false
    in
    let valid c = if hex then is_hex_digit c else is_digit c in
    while (match cur () with Some c -> valid c | None -> false) do
      advance ()
    done;
    (* swallow integer suffixes: U, L, UL, ULL, ... *)
    while (match cur () with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    let text =
      (* strip suffix characters for conversion *)
      let len = ref (String.length text) in
      while !len > 0 && (match text.[!len - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false) do
        decr len
      done;
      String.sub text 0 !len
    in
    match Int64.of_string_opt text with
    | Some v -> v
    | None -> error (Printf.sprintf "invalid integer literal %S" text)
  in
  let lex_string () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | None -> error "unterminated string literal"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match cur () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some '0' ->
              Buffer.add_char buf '\000';
              advance ();
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> error "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let lex_char () =
    advance ();
    (* opening quote *)
    let c =
      match cur () with
      | Some '\\' -> (
          advance ();
          match cur () with
          | Some 'n' -> '\n'
          | Some 't' -> '\t'
          | Some '0' -> '\000'
          | Some c -> c
          | None -> error "unterminated char literal")
      | Some c -> c
      | None -> error "unterminated char literal"
    in
    advance ();
    (match cur () with
    | Some '\'' -> advance ()
    | _ -> error "unterminated char literal");
    c
  in
  let skip_line_comment () =
    let start = !pos + 2 in
    let l = !line in
    while (match cur () with Some c when c <> '\n' -> true | _ -> false) do
      advance ()
    done;
    let text = String.trim (String.sub src start (!pos - start)) in
    comments := { text; cline = l } :: !comments
  in
  let skip_block_comment () =
    let l = !line in
    advance ();
    advance ();
    let start = !pos in
    let rec go () =
      match (cur (), peek 1) with
      | Some '*', Some '/' ->
          let text = String.trim (String.sub src start (!pos - start)) in
          comments := { text; cline = l } :: !comments;
          advance ();
          advance ()
      | Some _, _ ->
          advance ();
          go ()
      | None, _ -> error "unterminated block comment"
    in
    go ()
  in
  let lex_directive () =
    advance ();
    (* '#' *)
    let word = lex_ident () in
    match word with
    | "define" ->
        in_define := true;
        emit Token.Hash_define
    | "include" ->
        (* consume to end of line, discarded *)
        while (match cur () with Some c when c <> '\n' -> true | _ -> false) do
          advance ()
        done;
        emit Token.Hash_include
    | other -> error (Printf.sprintf "unsupported directive #%s" other)
  in
  let rec loop () =
    match cur () with
    | None ->
        if !in_define then (
          in_define := false;
          emit Token.Newline);
        emit Token.Eof
    | Some '\n' ->
        if !in_define then (
          in_define := false;
          emit Token.Newline);
        advance ();
        loop ()
    | Some (' ' | '\t' | '\r') ->
        advance ();
        loop ()
    | Some '/' when peek 1 = Some '/' ->
        skip_line_comment ();
        loop ()
    | Some '/' when peek 1 = Some '*' ->
        skip_block_comment ();
        loop ()
    | Some '#' ->
        lex_directive ();
        loop ()
    | Some '"' ->
        let s = lex_string () in
        emit (Token.Str_lit s);
        loop ()
    | Some '\'' ->
        let c = lex_char () in
        emit (Token.Char_lit c);
        loop ()
    | Some c when is_digit c ->
        let v = lex_number () in
        emit (Token.Int_lit v);
        loop ()
    | Some c when is_ident_start c ->
        let id = lex_ident () in
        (match Token.keyword_of_string id with
        | Some kw -> emit kw
        | None -> emit (Token.Ident id));
        loop ()
    | Some c ->
        let two a = advance (); advance (); emit a in
        let three a = advance (); advance (); advance (); emit a in
        let one a = advance (); emit a in
        (match (c, peek 1, peek 2) with
        | '.', Some '.', Some '.' -> three Token.Ellipsis
        | '-', Some '>', _ -> two Token.Arrow
        | '<', Some '<', Some '=' -> three Token.Shl_assign
        | '>', Some '>', Some '=' -> three Token.Shr_assign
        | '<', Some '<', _ -> two Token.Shl
        | '>', Some '>', _ -> two Token.Shr
        | '<', Some '=', _ -> two Token.Le
        | '>', Some '=', _ -> two Token.Ge
        | '=', Some '=', _ -> two Token.Eq_eq
        | '!', Some '=', _ -> two Token.Bang_eq
        | '&', Some '&', _ -> two Token.Amp_amp
        | '|', Some '|', _ -> two Token.Pipe_pipe
        | '+', Some '+', _ -> two Token.Plus_plus
        | '-', Some '-', _ -> two Token.Minus_minus
        | '+', Some '=', _ -> two Token.Plus_assign
        | '-', Some '=', _ -> two Token.Minus_assign
        | '*', Some '=', _ -> two Token.Star_assign
        | '/', Some '=', _ -> two Token.Slash_assign
        | '&', Some '=', _ -> two Token.Amp_assign
        | '|', Some '=', _ -> two Token.Pipe_assign
        | '^', Some '=', _ -> two Token.Caret_assign
        | '(', _, _ -> one Token.Lparen
        | ')', _, _ -> one Token.Rparen
        | '{', _, _ -> one Token.Lbrace
        | '}', _, _ -> one Token.Rbrace
        | '[', _, _ -> one Token.Lbracket
        | ']', _, _ -> one Token.Rbracket
        | ';', _, _ -> one Token.Semi
        | ',', _, _ -> one Token.Comma
        | '.', _, _ -> one Token.Dot
        | ':', _, _ -> one Token.Colon
        | '?', _, _ -> one Token.Question
        | '+', _, _ -> one Token.Plus
        | '-', _, _ -> one Token.Minus
        | '*', _, _ -> one Token.Star
        | '/', _, _ -> one Token.Slash
        | '%', _, _ -> one Token.Percent
        | '&', _, _ -> one Token.Amp
        | '|', _, _ -> one Token.Pipe
        | '^', _, _ -> one Token.Caret
        | '~', _, _ -> one Token.Tilde
        | '!', _, _ -> one Token.Bang
        | '<', _, _ -> one Token.Lt
        | '>', _, _ -> one Token.Gt
        | '=', _, _ -> one Token.Assign
        | _ -> error (Printf.sprintf "unexpected character %C" c));
        loop ()
  in
  loop ();
  { tokens = Array.of_list (List.rev !tokens); comments = List.rev !comments }
