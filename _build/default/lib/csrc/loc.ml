(** Source locations within the synthetic kernel corpus. *)

type t = { file : string; line : int }

let dummy = { file = "<none>"; line = 0 }

let make ~file ~line = { file; line }

let pp fmt { file; line } = Format.fprintf fmt "%s:%d" file line

let to_string loc = Format.asprintf "%a" pp loc

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let equal a b = compare a b = 0
