(** Tokens of the mini-C dialect used by the synthetic kernel corpus. *)

type t =
  | Ident of string
  | Int_lit of int64
  | Char_lit of char
  | Str_lit of string
  (* keywords *)
  | Kw_struct
  | Kw_union
  | Kw_enum
  | Kw_static
  | Kw_const
  | Kw_unsigned
  | Kw_signed
  | Kw_void
  | Kw_char
  | Kw_short
  | Kw_int
  | Kw_long
  | Kw_bool
  | Kw_if
  | Kw_else
  | Kw_switch
  | Kw_case
  | Kw_default
  | Kw_while
  | Kw_for
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_goto
  | Kw_sizeof
  | Kw_typedef
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow
  | Colon
  | Question
  | Ellipsis
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Lt
  | Gt
  | Le
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Shl
  | Shr
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Amp_assign
  | Pipe_assign
  | Caret_assign
  | Shl_assign
  | Shr_assign
  | Plus_plus
  | Minus_minus
  (* preprocessor *)
  | Hash_define
  | Hash_include
  | Newline (* significant only right after a #define body *)
  | Eof

let keyword_of_string = function
  | "struct" -> Some Kw_struct
  | "union" -> Some Kw_union
  | "enum" -> Some Kw_enum
  | "static" -> Some Kw_static
  | "const" -> Some Kw_const
  | "unsigned" -> Some Kw_unsigned
  | "signed" -> Some Kw_signed
  | "void" -> Some Kw_void
  | "char" -> Some Kw_char
  | "short" -> Some Kw_short
  | "int" -> Some Kw_int
  | "long" -> Some Kw_long
  | "bool" -> Some Kw_bool
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "switch" -> Some Kw_switch
  | "case" -> Some Kw_case
  | "default" -> Some Kw_default
  | "while" -> Some Kw_while
  | "for" -> Some Kw_for
  | "do" -> Some Kw_do
  | "return" -> Some Kw_return
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | "goto" -> Some Kw_goto
  | "sizeof" -> Some Kw_sizeof
  | "typedef" -> Some Kw_typedef
  | _ -> None

let to_string = function
  | Ident s -> s
  | Int_lit i -> Int64.to_string i
  | Char_lit c -> Printf.sprintf "'%c'" c
  | Str_lit s -> Printf.sprintf "%S" s
  | Kw_struct -> "struct"
  | Kw_union -> "union"
  | Kw_enum -> "enum"
  | Kw_static -> "static"
  | Kw_const -> "const"
  | Kw_unsigned -> "unsigned"
  | Kw_signed -> "signed"
  | Kw_void -> "void"
  | Kw_char -> "char"
  | Kw_short -> "short"
  | Kw_int -> "int"
  | Kw_long -> "long"
  | Kw_bool -> "bool"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_switch -> "switch"
  | Kw_case -> "case"
  | Kw_default -> "default"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_do -> "do"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_goto -> "goto"
  | Kw_sizeof -> "sizeof"
  | Kw_typedef -> "typedef"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Arrow -> "->"
  | Colon -> ":"
  | Question -> "?"
  | Ellipsis -> "..."
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Shl -> "<<"
  | Shr -> ">>"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Amp_assign -> "&="
  | Pipe_assign -> "|="
  | Caret_assign -> "^="
  | Shl_assign -> "<<="
  | Shr_assign -> ">>="
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Hash_define -> "#define"
  | Hash_include -> "#include"
  | Newline -> "\\n"
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b

(** A token paired with the line it starts on. *)
type spanned = { tok : t; line : int }
