(** Recursive-descent parser for the mini-C dialect.

    Statement ids ([sid]) are drawn from a caller-supplied counter so that
    they are unique across the whole corpus; the virtual kernel uses them
    as coverage points. *)

exception Error of string * Loc.t

type state = {
  toks : Token.spanned array;
  mutable pos : int;
  file : string;
  sid : int ref;
  mutable typedefs : (string, unit) Hashtbl.t;
  comments : Lexer.comment list;
}

let builtin_typedefs =
  [
    "u8"; "u16"; "u32"; "u64"; "s8"; "s16"; "s32"; "s64";
    "__u8"; "__u16"; "__u32"; "__u64"; "__s8"; "__s16"; "__s32"; "__s64";
    "size_t"; "ssize_t"; "loff_t"; "off_t"; "pid_t"; "uid_t"; "gid_t";
    "uint"; "ulong"; "ushort"; "uintptr_t"; "dev_t"; "umode_t"; "fmode_t";
    "poll_table"; "wait_queue_head_t"; "spinlock_t"; "atomic_t"; "gfp_t";
  ]

let qualifiers =
  [ "__user"; "__init"; "__exit"; "__iomem"; "__force"; "__rcu"; "inline"; "volatile"; "__must_check" ]

let make ~file ~sid (lexed : Lexer.result) =
  let typedefs = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace typedefs n ()) builtin_typedefs;
  { toks = lexed.tokens; pos = 0; file; sid; typedefs; comments = lexed.comments }

let cur st = st.toks.(st.pos).Token.tok

let cur_line st = st.toks.(st.pos).Token.line

let loc st = Loc.make ~file:st.file ~line:(cur_line st)

let peek st off =
  let i = st.pos + off in
  if i < Array.length st.toks then st.toks.(i).Token.tok else Token.Eof

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Error (msg, loc st))

let expect st tok =
  if Token.equal (cur st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (cur st)))

let accept st tok =
  if Token.equal (cur st) tok then (
    advance st;
    true)
  else false

let expect_ident st =
  match cur st with
  | Token.Ident s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier but found %s" (Token.to_string t))

let fresh_sid st =
  let v = !(st.sid) in
  st.sid := v + 1;
  v

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let skip_qualifiers st =
  let rec go () =
    match cur st with
    | Token.Kw_const ->
        advance st;
        go ()
    | Token.Ident id when List.mem id qualifiers ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let is_typedef_name st id = Hashtbl.mem st.typedefs id

(** Does the current token start a type? Used to disambiguate casts,
    declarations, and type arguments to the [_IO*] builtins. *)
let starts_type st =
  match cur st with
  | Token.Kw_struct | Token.Kw_union | Token.Kw_enum | Token.Kw_void | Token.Kw_bool
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long | Token.Kw_unsigned
  | Token.Kw_signed | Token.Kw_const ->
      true
  | Token.Ident id -> is_typedef_name st id || List.mem id qualifiers
  | _ -> false

(** Parse a base type (no pointers/arrays): [unsigned long], [struct x],
    [u32], ... *)
let parse_base_type st : Ast.ctype =
  skip_qualifiers st;
  let int_of ~signed words =
    (* words: list of short/long/int/char tokens seen *)
    match words with
    | [ `Char ] -> Ast.Int { signed; width = 8 }
    | [ `Short ] | [ `Short; `Int ] -> Ast.Int { signed; width = 16 }
    | [] | [ `Int ] -> Ast.Int { signed; width = 32 }
    | [ `Long ] | [ `Long; `Int ] | [ `Long; `Long ] | [ `Long; `Long; `Int ] ->
        Ast.Int { signed; width = 64 }
    | _ -> error st "unsupported integer type"
  in
  let rec gather acc =
    match cur st with
    | Token.Kw_char ->
        advance st;
        gather (acc @ [ `Char ])
    | Token.Kw_short ->
        advance st;
        gather (acc @ [ `Short ])
    | Token.Kw_int ->
        advance st;
        gather (acc @ [ `Int ])
    | Token.Kw_long ->
        advance st;
        gather (acc @ [ `Long ])
    | _ -> acc
  in
  match cur st with
  | Token.Kw_void ->
      advance st;
      Ast.Void
  | Token.Kw_bool ->
      advance st;
      Ast.Bool
  | Token.Kw_unsigned ->
      advance st;
      let words = gather [] in
      int_of ~signed:false words
  | Token.Kw_signed ->
      advance st;
      let words = gather [] in
      int_of ~signed:true words
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long ->
      let words = gather [] in
      int_of ~signed:true words
  | Token.Kw_struct ->
      advance st;
      let name = expect_ident st in
      Ast.Struct_ref name
  | Token.Kw_union ->
      advance st;
      let name = expect_ident st in
      Ast.Union_ref name
  | Token.Kw_enum ->
      advance st;
      let name = expect_ident st in
      Ast.Enum_ref name
  | Token.Ident id when is_typedef_name st id ->
      advance st;
      Ast.Named id
  | t -> error st (Printf.sprintf "expected type but found %s" (Token.to_string t))

let parse_pointers st ty =
  let rec go ty =
    (* qualifiers such as [__user] may appear before or after each star *)
    skip_qualifiers st;
    if accept st Token.Star then (
      skip_qualifiers st;
      go (Ast.Ptr ty))
    else ty
  in
  go ty

(** Parse a full abstract type (base + pointers), as used for casts,
    sizeof, and unnamed function-pointer parameters. *)
let parse_abstract_type st : Ast.ctype =
  let base = parse_base_type st in
  parse_pointers st base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Token.Plus -> Some (Ast.Add, 9)
  | Token.Minus -> Some (Ast.Sub, 9)
  | Token.Star -> Some (Ast.Mul, 10)
  | Token.Slash -> Some (Ast.Div, 10)
  | Token.Percent -> Some (Ast.Mod, 10)
  | Token.Shl -> Some (Ast.Shl, 8)
  | Token.Shr -> Some (Ast.Shr, 8)
  | Token.Lt -> Some (Ast.Lt, 7)
  | Token.Le -> Some (Ast.Le, 7)
  | Token.Gt -> Some (Ast.Gt, 7)
  | Token.Ge -> Some (Ast.Ge, 7)
  | Token.Eq_eq -> Some (Ast.Eq, 6)
  | Token.Bang_eq -> Some (Ast.Ne, 6)
  | Token.Amp -> Some (Ast.Band, 5)
  | Token.Caret -> Some (Ast.Bxor, 4)
  | Token.Pipe -> Some (Ast.Bor, 3)
  | Token.Amp_amp -> Some (Ast.Land, 2)
  | Token.Pipe_pipe -> Some (Ast.Lor, 1)
  | _ -> None

let compound_assign_of_token = function
  | Token.Plus_assign -> Some Ast.Add
  | Token.Minus_assign -> Some Ast.Sub
  | Token.Star_assign -> Some Ast.Mul
  | Token.Slash_assign -> Some Ast.Div
  | Token.Amp_assign -> Some Ast.Band
  | Token.Pipe_assign -> Some Ast.Bor
  | Token.Caret_assign -> Some Ast.Bxor
  | Token.Shl_assign -> Some Ast.Shl
  | Token.Shr_assign -> Some Ast.Shr
  | _ -> None

let rec parse_expr st : Ast.expr = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match cur st with
  | Token.Assign ->
      advance st;
      let rhs = parse_assign st in
      Ast.Assign (lhs, rhs)
  | t -> (
      match compound_assign_of_token t with
      | Some op ->
          advance st;
          let rhs = parse_assign st in
          Ast.Assign (lhs, Ast.Binop (op, lhs, rhs))
      | None -> lhs)

and parse_ternary st =
  let cond = parse_binary st 1 in
  if accept st Token.Question then (
    let t = parse_expr st in
    expect st Token.Colon;
    let f = parse_ternary st in
    Ast.Ternary (cond, t, f))
  else cond

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec go lhs =
    match binop_of_token (cur st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        go (Ast.Binop (op, lhs, rhs))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match cur st with
  | Token.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Token.Bang ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.Tilde ->
      advance st;
      Ast.Unop (Ast.Bit_not, parse_unary st)
  | Token.Star ->
      advance st;
      Ast.Deref (parse_unary st)
  | Token.Amp ->
      advance st;
      Ast.Addr_of (parse_unary st)
  | Token.Plus_plus ->
      advance st;
      let e = parse_unary st in
      Ast.Assign (e, Ast.Binop (Ast.Add, e, Ast.Const_int 1L))
  | Token.Minus_minus ->
      advance st;
      let e = parse_unary st in
      Ast.Assign (e, Ast.Binop (Ast.Sub, e, Ast.Const_int 1L))
  | Token.Kw_sizeof ->
      advance st;
      expect st Token.Lparen;
      let e =
        if starts_type st then (
          let ty = parse_abstract_type st in
          Ast.Sizeof_type ty)
        else Ast.Sizeof_expr (parse_expr st)
      in
      expect st Token.Rparen;
      e
  | Token.Lparen when starts_type_for_cast st ->
      advance st;
      let ty = parse_abstract_type st in
      expect st Token.Rparen;
      let e = parse_unary st in
      Ast.Cast (ty, e)
  | _ -> parse_postfix st

(* A '(' begins a cast only if the token after it starts a type. [const]
   alone is not enough since the corpus never casts to a bare qualifier. *)
and starts_type_for_cast st =
  match peek st 1 with
  | Token.Kw_struct | Token.Kw_union | Token.Kw_enum | Token.Kw_void | Token.Kw_bool
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long | Token.Kw_unsigned
  | Token.Kw_signed | Token.Kw_const ->
      true
  | Token.Ident id -> is_typedef_name st id
  | _ -> false

and parse_postfix st =
  let e = parse_primary st in
  let e = glue_strings st e in
  let rec go e =
    match cur st with
    | Token.Dot ->
        advance st;
        let f = expect_ident st in
        go (Ast.Member (e, f))
    | Token.Arrow ->
        advance st;
        let f = expect_ident st in
        go (Ast.Arrow (e, f))
    | Token.Lbracket ->
        advance st;
        let idx = parse_expr st in
        expect st Token.Rbracket;
        go (Ast.Index (e, idx))
    | Token.Plus_plus ->
        advance st;
        go (Ast.Assign (e, Ast.Binop (Ast.Add, e, Ast.Const_int 1L)))
    | Token.Minus_minus ->
        advance st;
        go (Ast.Assign (e, Ast.Binop (Ast.Sub, e, Ast.Const_int 1L)))
    | _ -> e
  in
  go e

(* C pastes adjacent string literals after macro expansion; the corpus
   relies on this for device paths like [DM_DIR "/" DM_CONTROL_NODE].
   Juxtaposed (string | macro-identifier) runs become a concatenation
   chain encoded with [Add], which {!Index.eval_string} folds. *)
and glue_strings st e =
  let is_strish = function Ast.Const_str _ -> true | _ -> false in
  let rec loop e seen_str =
    match cur st with
    | Token.Str_lit s ->
        advance st;
        loop (Ast.Binop (Ast.Add, e, Ast.Const_str s)) true
    | Token.Ident id when seen_str && not (Token.equal (peek st 1) Token.Lparen) ->
        advance st;
        loop (Ast.Binop (Ast.Add, e, Ast.Ident id)) seen_str
    | _ -> e
  in
  loop e (is_strish e)

and parse_call_args st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else
    let rec go acc =
      let arg =
        if starts_type st && not_an_expression_head st then Ast.Type_arg (parse_abstract_type st)
        else parse_expr st
      in
      if accept st Token.Comma then go (arg :: acc)
      else (
        expect st Token.Rparen;
        List.rev (arg :: acc))
    in
    go []

(* [struct x] in argument position is always a type argument; a typedef
   name is one only when not followed by an operator that would make it an
   expression. *)
and not_an_expression_head st =
  match cur st with
  | Token.Kw_struct | Token.Kw_union | Token.Kw_enum | Token.Kw_void | Token.Kw_unsigned
  | Token.Kw_signed | Token.Kw_bool ->
      true
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long -> true
  | Token.Ident id when is_typedef_name st id -> (
      match peek st 1 with
      | Token.Comma | Token.Rparen | Token.Star -> true
      | _ -> false)
  | _ -> false

and parse_primary st =
  match cur st with
  | Token.Int_lit v ->
      advance st;
      Ast.Const_int v
  | Token.Char_lit c ->
      advance st;
      Ast.Const_char c
  | Token.Str_lit s ->
      advance st;
      (* adjacent string literals concatenate, as in C *)
      let buf = Buffer.create (String.length s + 8) in
      Buffer.add_string buf s;
      let rec glue () =
        match cur st with
        | Token.Str_lit s2 ->
            advance st;
            Buffer.add_string buf s2;
            glue ()
        | _ -> ()
      in
      glue ();
      Ast.Const_str (Buffer.contents buf)
  | Token.Ident name -> (
      advance st;
      match cur st with
      | Token.Lparen ->
          let args = parse_call_args st in
          Ast.Call (name, args)
      | _ -> Ast.Ident name)
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | t -> error st (Printf.sprintf "expected expression but found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt st node = { Ast.sid = fresh_sid st; sloc = loc st; node }

let rec parse_stmt st : Ast.stmt =
  let l = loc st in
  let mk node = { Ast.sid = fresh_sid st; sloc = l; node } in
  match cur st with
  | Token.Lbrace -> mk (Ast.Block (parse_block st))
  | Token.Kw_if ->
      advance st;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      let then_b = parse_stmt_as_block st in
      let else_b =
        if accept st Token.Kw_else then Some (parse_stmt_as_block st) else None
      in
      mk (Ast.If (cond, then_b, else_b))
  | Token.Kw_switch ->
      advance st;
      expect st Token.Lparen;
      let scrutinee = parse_expr st in
      expect st Token.Rparen;
      expect st Token.Lbrace;
      let cases = parse_switch_cases st in
      expect st Token.Rbrace;
      mk (Ast.Switch (scrutinee, cases))
  | Token.Kw_while ->
      advance st;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      let body = parse_stmt_as_block st in
      mk (Ast.While (cond, body))
  | Token.Kw_do ->
      advance st;
      let body = parse_stmt_as_block st in
      expect st Token.Kw_while;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      expect st Token.Semi;
      mk (Ast.Do_while (body, cond))
  | Token.Kw_for ->
      advance st;
      expect st Token.Lparen;
      let init =
        if Token.equal (cur st) Token.Semi then None
        else if starts_type st then (
          (* desugar "for (int i = 0; ...)" into a decl before the loop is
             not possible here, so we keep the init as an assignment and
             rely on implicit declaration by the interpreter *)
          let _ty = parse_abstract_type st in
          let name = expect_ident st in
          expect st Token.Assign;
          let v = parse_expr st in
          Some (Ast.Assign (Ast.Ident name, v)))
        else Some (parse_expr st)
      in
      expect st Token.Semi;
      let cond = if Token.equal (cur st) Token.Semi then None else Some (parse_expr st) in
      expect st Token.Semi;
      let step = if Token.equal (cur st) Token.Rparen then None else Some (parse_expr st) in
      expect st Token.Rparen;
      let body = parse_stmt_as_block st in
      mk (Ast.For (init, cond, step, body))
  | Token.Kw_return ->
      advance st;
      let e = if Token.equal (cur st) Token.Semi then None else Some (parse_expr st) in
      expect st Token.Semi;
      mk (Ast.Return e)
  | Token.Kw_break ->
      advance st;
      expect st Token.Semi;
      mk Ast.Break
  | Token.Kw_continue ->
      advance st;
      expect st Token.Semi;
      mk Ast.Continue
  | Token.Kw_goto ->
      advance st;
      let label = expect_ident st in
      expect st Token.Semi;
      mk (Ast.Goto label)
  | Token.Ident name when Token.equal (peek st 1) Token.Colon ->
      advance st;
      advance st;
      mk (Ast.Label name)
  | _ when starts_type st && is_decl_lookahead st ->
      let ty = parse_abstract_type st in
      let name = expect_ident st in
      let ty =
        if accept st Token.Lbracket then (
          let size =
            match cur st with
            | Token.Int_lit v ->
                advance st;
                Some (Int64.to_int v)
            | Token.Ident _ ->
                let _ = parse_expr st in
                Some 0
            | _ -> None
          in
          expect st Token.Rbracket;
          Ast.Array (ty, size))
        else ty
      in
      let init = if accept st Token.Assign then Some (parse_expr st) else None in
      expect st Token.Semi;
      mk (Ast.Decl_stmt (ty, name, init))
  | _ ->
      let e = parse_expr st in
      expect st Token.Semi;
      mk (Ast.Expr_stmt e)

(* Lookahead to distinguish a declaration from an expression statement:
   after the type there must be an identifier followed by '=', ';' or '['. *)
and is_decl_lookahead st =
  match cur st with
  | Token.Kw_struct | Token.Kw_union | Token.Kw_enum | Token.Kw_void | Token.Kw_bool
  | Token.Kw_char | Token.Kw_short | Token.Kw_int | Token.Kw_long | Token.Kw_unsigned
  | Token.Kw_signed | Token.Kw_const ->
      true
  | Token.Ident id when is_typedef_name st id -> (
      match peek st 1 with
      | Token.Ident _ | Token.Star -> true
      | _ -> false)
  | Token.Ident id when List.mem id qualifiers -> true
  | _ -> false

and parse_stmt_as_block st : Ast.block =
  if Token.equal (cur st) Token.Lbrace then parse_block st else [ parse_stmt st ]

and parse_block st : Ast.block =
  expect st Token.Lbrace;
  let rec go acc =
    if Token.equal (cur st) Token.Rbrace then (
      advance st;
      List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

and parse_switch_cases st : Ast.switch_case list =
  let parse_labels () =
    let rec go acc =
      match cur st with
      | Token.Kw_case ->
          advance st;
          let e = parse_expr st in
          expect st Token.Colon;
          go (Ast.Case e :: acc)
      | Token.Kw_default ->
          advance st;
          expect st Token.Colon;
          go (Ast.Default :: acc)
      | _ -> List.rev acc
    in
    go []
  in
  let rec parse_cases acc =
    match cur st with
    | Token.Rbrace -> List.rev acc
    | Token.Kw_case | Token.Kw_default ->
        let labels = parse_labels () in
        let rec body acc =
          match cur st with
          | Token.Kw_case | Token.Kw_default | Token.Rbrace -> List.rev acc
          | _ -> body (parse_stmt st :: acc)
        in
        let case_body = body [] in
        parse_cases ({ Ast.labels; case_body } :: acc)
    | t -> error st (Printf.sprintf "expected case/default but found %s" (Token.to_string t))
  in
  parse_cases []

(* ------------------------------------------------------------------ *)
(* Top-level declarations                                              *)
(* ------------------------------------------------------------------ *)

(** Comment attached to a source line: a trailing comment on the same line,
    or a comment *alone* on the preceding line (a trailing comment of the
    previous declaration does not carry over). *)
let comment_for st line =
  let same = List.find_opt (fun c -> c.Lexer.cline = line) st.comments in
  match same with
  | Some c -> Some c.Lexer.text
  | None -> (
      match List.find_opt (fun c -> c.Lexer.cline = line - 1) st.comments with
      | Some c ->
          let has_code_on_line =
            Array.exists
              (fun (t : Token.spanned) -> t.line = line - 1 && t.tok <> Token.Eof)
              st.toks
          in
          if has_code_on_line then None else Some c.Lexer.text
      | None -> None)

let parse_field st : Ast.field =
  let line = cur_line st in
  let base = parse_base_type st in
  (* function-pointer field: [ret ( *name )(args)] *)
  if Token.equal (cur st) Token.Lparen && Token.equal (peek st 1) Token.Star then (
    advance st;
    advance st;
    let name = expect_ident st in
    expect st Token.Rparen;
    expect st Token.Lparen;
    let args =
      if accept st Token.Rparen then []
      else
        let rec go acc =
          let ty = parse_abstract_type st in
          (* optional parameter name *)
          (match cur st with Token.Ident _ -> advance st | _ -> ());
          if accept st Token.Comma then go (ty :: acc)
          else (
            expect st Token.Rparen;
            List.rev (ty :: acc))
        in
        go []
    in
    expect st Token.Semi;
    { Ast.field_name = name; field_type = Ast.Func_ptr (base, args); field_comment = comment_for st line })
  else
    let ty = parse_pointers st base in
    let name = expect_ident st in
    let ty =
      if accept st Token.Lbracket then (
        let size =
          match cur st with
          | Token.Int_lit v ->
              advance st;
              Some (Int64.to_int v)
          | Token.Rbracket -> None
          | _ ->
              (* symbolic array size: treat as fixed, size resolved later *)
              let _ = parse_expr st in
              Some 0
        in
        expect st Token.Rbracket;
        Ast.Array (ty, size))
      else ty
    in
    expect st Token.Semi;
    { Ast.field_name = name; field_type = ty; field_comment = comment_for st line }

let parse_composite st kind : Ast.composite_def =
  let comp_loc = loc st in
  (match kind with
  | Ast.Struct -> expect st Token.Kw_struct
  | Ast.Union -> expect st Token.Kw_union);
  let name = expect_ident st in
  expect st Token.Lbrace;
  let rec fields acc =
    if Token.equal (cur st) Token.Rbrace then (
      advance st;
      List.rev acc)
    else fields (parse_field st :: acc)
  in
  let fields = fields [] in
  expect st Token.Semi;
  { Ast.comp_kind = kind; comp_name = name; fields; comp_loc }

let parse_enum st : Ast.enum_def =
  let enum_loc = loc st in
  expect st Token.Kw_enum;
  let name = match cur st with
    | Token.Ident n ->
        advance st;
        Some n
    | _ -> None
  in
  expect st Token.Lbrace;
  let rec items acc =
    match cur st with
    | Token.Rbrace ->
        advance st;
        List.rev acc
    | Token.Ident item_name ->
        advance st;
        let item_value = if accept st Token.Assign then Some (parse_expr st) else None in
        let _ = accept st Token.Comma in
        items ({ Ast.item_name; item_value } :: acc)
    | t -> error st (Printf.sprintf "expected enum item but found %s" (Token.to_string t))
  in
  let items = items [] in
  expect st Token.Semi;
  { Ast.enum_name = name; items; enum_loc }

let rec parse_ginit st : Ast.ginit =
  if Token.equal (cur st) Token.Lbrace then (
    advance st;
    if Token.equal (cur st) Token.Dot then (
      (* designated initializer *)
      let rec go acc =
        expect st Token.Dot;
        let fname = expect_ident st in
        expect st Token.Assign;
        let v = parse_ginit st in
        let acc = (fname, v) :: acc in
        if accept st Token.Comma then
          if Token.equal (cur st) Token.Rbrace then (
            advance st;
            List.rev acc)
          else go acc
        else (
          expect st Token.Rbrace;
          List.rev acc)
      in
      Ast.Init_designated (go []))
    else
      let rec go acc =
        if Token.equal (cur st) Token.Rbrace then (
          advance st;
          List.rev acc)
        else
          let v = parse_ginit st in
          let acc = v :: acc in
          if accept st Token.Comma then go acc
          else (
            expect st Token.Rbrace;
            List.rev acc)
      in
      Ast.Init_list (go []))
  else Ast.Init_expr (parse_expr st)

let parse_macro st : Ast.macro_def =
  let macro_loc = loc st in
  expect st Token.Hash_define;
  let name = expect_ident st in
  let rec body acc =
    match cur st with
    | Token.Newline ->
        advance st;
        List.rev acc
    | Token.Eof -> List.rev acc
    | t ->
        advance st;
        body (t :: acc)
  in
  { Ast.macro_name = name; macro_body = body []; macro_loc }

(** Parse one top-level declaration. *)
let parse_decl st : Ast.decl option =
  match cur st with
  | Token.Eof -> None
  | Token.Hash_include ->
      advance st;
      (* includes carry no information in the synthetic corpus *)
      Some (D_macro { macro_name = "__include__"; macro_body = []; macro_loc = loc st })
  | Token.Hash_define -> Some (Ast.D_macro (parse_macro st))
  | Token.Kw_typedef ->
      let td_loc = loc st in
      advance st;
      let ty = parse_abstract_type st in
      let name = expect_ident st in
      expect st Token.Semi;
      Hashtbl.replace st.typedefs name ();
      Some (Ast.D_typedef { td_name = name; td_type = ty; td_loc })
  | Token.Kw_struct when Token.equal (peek st 2) Token.Lbrace ->
      Some (Ast.D_composite (parse_composite st Ast.Struct))
  | Token.Kw_union when Token.equal (peek st 2) Token.Lbrace ->
      Some (Ast.D_composite (parse_composite st Ast.Union))
  | Token.Kw_enum when Token.equal (peek st 1) Token.Lbrace || Token.equal (peek st 2) Token.Lbrace ->
      Some (Ast.D_enum (parse_enum st))
  | _ ->
      (* function or global *)
      let gloc = loc st in
      let static = accept st Token.Kw_static in
      skip_qualifiers st;
      let base = parse_base_type st in
      let ty = parse_pointers st base in
      let name = expect_ident st in
      if Token.equal (cur st) Token.Lparen then (
        (* function definition *)
        advance st;
        let params =
          if accept st Token.Rparen then []
          else if Token.equal (cur st) Token.Kw_void && Token.equal (peek st 1) Token.Rparen then (
            advance st;
            advance st;
            [])
          else
            let rec go acc =
              let pty = parse_abstract_type st in
              let pname = match cur st with
                | Token.Ident n ->
                    advance st;
                    n
                | _ -> "_"
              in
              (* array parameter decays to pointer *)
              let pty =
                if accept st Token.Lbracket then (
                  (match cur st with Token.Int_lit _ -> advance st | _ -> ());
                  expect st Token.Rbracket;
                  Ast.Ptr pty)
                else pty
              in
              if accept st Token.Comma then go ((pty, pname) :: acc)
              else (
                expect st Token.Rparen;
                List.rev ((pty, pname) :: acc))
            in
            go []
        in
        if accept st Token.Semi then
          (* forward declaration: keep as a macro-like marker, no body *)
          Some
            (Ast.D_func
               { fun_name = name; fun_ret = ty; fun_params = params; fun_body = [];
                 fun_static = static; fun_loc = gloc })
        else
          let body = parse_block st in
          Some
            (Ast.D_func
               { fun_name = name; fun_ret = ty; fun_params = params; fun_body = body;
                 fun_static = static; fun_loc = gloc }))
      else
        let ty =
          if accept st Token.Lbracket then (
            let size =
              match cur st with
              | Token.Int_lit v ->
                  advance st;
                  Some (Int64.to_int v)
              | Token.Rbracket -> None
              | _ ->
                  let _ = parse_expr st in
                  Some 0
            in
            expect st Token.Rbracket;
            Ast.Array (ty, size))
          else ty
        in
        let init = if accept st Token.Assign then Some (parse_ginit st) else None in
        expect st Token.Semi;
        Some
          (Ast.D_global
             { global_name = name; global_type = ty; global_init = init;
               global_static = static; global_loc = gloc })

let parse_file ~file ~sid (src : string) : Ast.file =
  let lexed = Lexer.lex src in
  let st = make ~file ~sid lexed in
  let rec go acc =
    match parse_decl st with
    | None -> List.rev acc
    | Some (Ast.D_macro { macro_name = "__include__"; _ }) -> go acc
    | Some d -> go (d :: acc)
  in
  { Ast.path = file; decls = go [] }

(** Parse a raw token list (e.g. a macro body) as a single expression.
    [extra_typedefs] extends the builtin typedef table so that type
    arguments such as [struct dm_ioctl] inside [_IOWR(...)] parse. *)
let expr_of_tokens ?(extra_typedefs = []) (toks : Token.t list) : Ast.expr =
  let spanned =
    Array.of_list
      (List.map (fun t -> { Token.tok = t; line = 0 }) toks
      @ [ { Token.tok = Token.Eof; line = 0 } ])
  in
  let st = make ~file:"<macro>" ~sid:(ref 0) { Lexer.tokens = spanned; comments = [] } in
  List.iter (fun n -> Hashtbl.replace st.typedefs n ()) extra_typedefs;
  parse_expr st

let _ = mk_stmt (* silence unused warning helper *)
