(** Abstract syntax of the mini-C dialect.

    The dialect covers the subset of kernel C that driver and socket
    implementations in the synthetic corpus use: struct/union/enum
    definitions with designated initializers, function definitions with
    the usual statements, object-like macros (whose bodies may use the
    [_IO*] ioctl-encoding builtins), and function-pointer struct fields
    used to register operation handlers. *)

type ctype =
  | Void
  | Bool
  | Int of { signed : bool; width : int }  (** width in bits: 8/16/32/64 *)
  | Named of string  (** typedef name, e.g. [size_t], [u32] *)
  | Ptr of ctype
  | Array of ctype * int option  (** [None] encodes a flexible array member *)
  | Struct_ref of string
  | Union_ref of string
  | Enum_ref of string
  | Func_ptr of ctype * ctype list  (** return type, parameter types *)

type unop = Neg | Not | Bit_not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Const_int of int64
  | Const_char of char
  | Const_str of string
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Member of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Index of expr * expr
  | Cast of ctype * expr
  | Sizeof_type of ctype
  | Sizeof_expr of expr
  | Ternary of expr * expr * expr
  | Addr_of of expr
  | Deref of expr
  | Type_arg of ctype  (** type used in argument position, e.g. [_IOWR('x',0,struct s)] *)

type stmt = { sid : int; sloc : Loc.t; node : stmt_node }

and stmt_node =
  | Expr_stmt of expr
  | Decl_stmt of ctype * string * expr option
  | If of expr * block * block option
  | Switch of expr * switch_case list
  | While of expr * block
  | Do_while of block * expr
  | For of expr option * expr option * expr option * block
  | Return of expr option
  | Break
  | Continue
  | Goto of string
  | Label of string
  | Block of block

and block = stmt list

and switch_case = { labels : case_label list; case_body : block }

and case_label = Case of expr | Default

type field = {
  field_name : string;
  field_type : ctype;
  field_comment : string option;  (** trailing or preceding comment, if any *)
}

type composite_kind = Struct | Union

type composite_def = {
  comp_kind : composite_kind;
  comp_name : string;
  fields : field list;
  comp_loc : Loc.t;
}

type enum_item = { item_name : string; item_value : expr option }

type enum_def = { enum_name : string option; items : enum_item list; enum_loc : Loc.t }

type func_def = {
  fun_name : string;
  fun_ret : ctype;
  fun_params : (ctype * string) list;
  fun_body : block;
  fun_static : bool;
  fun_loc : Loc.t;
}

(** Initializer of a global definition. *)
type ginit =
  | Init_expr of expr
  | Init_designated of (string * ginit) list  (** [.field = v, ...] *)
  | Init_list of ginit list

type global_def = {
  global_name : string;
  global_type : ctype;
  global_init : ginit option;
  global_static : bool;
  global_loc : Loc.t;
}

type macro_def = {
  macro_name : string;
  macro_body : Token.t list;  (** raw body tokens, parsed on demand *)
  macro_loc : Loc.t;
}

type typedef_def = { td_name : string; td_type : ctype; td_loc : Loc.t }

type decl =
  | D_composite of composite_def
  | D_enum of enum_def
  | D_func of func_def
  | D_global of global_def
  | D_macro of macro_def
  | D_typedef of typedef_def

type file = { path : string; decls : decl list }

(* -------------------------------------------------------------------- *)
(* Small helpers shared across the analyses                             *)
(* -------------------------------------------------------------------- *)

let u8 = Int { signed = false; width = 8 }
let u16 = Int { signed = false; width = 16 }
let u32 = Int { signed = false; width = 32 }
let u64 = Int { signed = false; width = 64 }
let s8 = Int { signed = true; width = 8 }
let s16 = Int { signed = true; width = 16 }
let s32 = Int { signed = true; width = 32 }
let s64 = Int { signed = true; width = 64 }

let rec ctype_to_string = function
  | Void -> "void"
  | Bool -> "bool"
  | Int { signed = true; width = 32 } -> "int"
  | Int { signed = true; width } -> Printf.sprintf "s%d" width
  | Int { signed = false; width } -> Printf.sprintf "u%d" width
  | Named n -> n
  | Ptr t -> ctype_to_string t ^ " *"
  | Array (t, Some n) -> Printf.sprintf "%s[%d]" (ctype_to_string t) n
  | Array (t, None) -> Printf.sprintf "%s[]" (ctype_to_string t)
  | Struct_ref n -> "struct " ^ n
  | Union_ref n -> "union " ^ n
  | Enum_ref n -> "enum " ^ n
  | Func_ptr (ret, args) ->
      Printf.sprintf "%s (*)(%s)" (ctype_to_string ret)
        (String.concat ", " (List.map ctype_to_string args))

let decl_name = function
  | D_composite c -> c.comp_name
  | D_enum e -> Option.value e.enum_name ~default:"<anon-enum>"
  | D_func f -> f.fun_name
  | D_global g -> g.global_name
  | D_macro m -> m.macro_name
  | D_typedef t -> t.td_name

let decl_loc = function
  | D_composite c -> c.comp_loc
  | D_enum e -> e.enum_loc
  | D_func f -> f.fun_loc
  | D_global g -> g.global_loc
  | D_macro m -> m.macro_loc
  | D_typedef t -> t.td_loc

(** Fold over every statement of a block, depth first. *)
let rec fold_block f acc (b : block) = List.fold_left (fold_stmt f) acc b

and fold_stmt f acc (s : stmt) =
  let acc = f acc s in
  match s.node with
  | Expr_stmt _ | Decl_stmt _ | Return _ | Break | Continue | Goto _ | Label _ -> acc
  | If (_, t, e) ->
      let acc = fold_block f acc t in
      (match e with Some e -> fold_block f acc e | None -> acc)
  | Switch (_, cases) ->
      List.fold_left (fun acc c -> fold_block f acc c.case_body) acc cases
  | While (_, b) | Do_while (b, _) | For (_, _, _, b) | Block b -> fold_block f acc b

(** All statements of a function body, in source order. *)
let stmts_of_body body = List.rev (fold_block (fun acc s -> s :: acc) [] body)

(** Fold over every expression appearing in a statement (shallow wrt nested
    statements; use {!fold_block} to reach those). *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const_int _ | Const_char _ | Const_str _ | Ident _ | Sizeof_type _ | Type_arg _ -> acc
  | Unop (_, a) | Cast (_, a) | Sizeof_expr a | Addr_of a | Deref a
  | Member (a, _) | Arrow (a, _) ->
      fold_expr f acc a
  | Binop (_, a, b) | Assign (a, b) | Index (a, b) ->
      fold_expr f (fold_expr f acc a) b
  | Ternary (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

let exprs_of_stmt (s : stmt) : expr list =
  match s.node with
  | Expr_stmt e -> [ e ]
  | Decl_stmt (_, _, Some e) -> [ e ]
  | Decl_stmt (_, _, None) -> []
  | If (c, _, _) -> [ c ]
  | Switch (c, _) -> [ c ]
  | While (c, _) -> [ c ]
  | Do_while (_, c) -> [ c ]
  | For (a, b, c, _) -> List.filter_map Fun.id [ a; b; c ]
  | Return (Some e) -> [ e ]
  | Return None | Break | Continue | Goto _ | Label _ | Block _ -> []

(** Names of all functions called anywhere in [body]. *)
let called_functions (body : block) : string list =
  let add acc = function Call (name, _) -> name :: acc | _ -> acc in
  fold_block
    (fun acc s -> List.fold_left (fun acc e -> fold_expr add acc e) acc (exprs_of_stmt s))
    [] body
  |> List.rev
  |> List.sort_uniq String.compare
