(** Assembling syzlang specifications from stage outputs. *)

open Syzlang.Ast

let resource_for name = "fd_" ^ name

let sock_resource_for name = "sock_" ^ name

let comp_kind_of types name =
  match List.find_opt (fun c -> c.comp_name = name) types with
  | Some { comp_kind = Union; _ } -> Union_ref name
  | _ -> Struct_ref name

let width_of_bytes = function
  | 1 -> I8
  | 2 -> I16
  | 4 -> I32
  | _ -> I64

let values_set_name (i : Prompt.ident) = String.lowercase_ascii i.id_cmd ^ "_values"

let arg_field ~types (i : Prompt.ident) : field =
  match (i.id_arg_type, i.id_copy_size) with
  | Some t, _ -> { fname = "arg"; ftyp = Ptr (i.id_arg_dir, comp_kind_of types t) }
  | None, Some sz ->
      let w = width_of_bytes sz in
      let inner =
        if i.id_values <> [] then Flags (values_set_name i, w) else Int (w, None)
      in
      { fname = "arg"; ftyp = Ptr (i.id_arg_dir, inner) }
  | None, None -> { fname = "arg"; ftyp = Int (Iptr, None) }

(** Flag sets for the scalar commands whose valid values were inferred. *)
let flag_sets_of (idents : Prompt.ident list) : flag_set list =
  List.filter_map
    (fun (i : Prompt.ident) ->
      if i.id_values <> [] && i.id_arg_type = None && i.id_copy_size <> None then
        Some { set_name = values_set_name i; set_values = i.id_values }
      else None)
    idents

let ioctl_call ~res ~types ?ret (i : Prompt.ident) : syscall =
  {
    call_name = "ioctl";
    variant = Some i.id_cmd;
    args =
      [
        { fname = "fd"; ftyp = Resource_ref res };
        { fname = "cmd"; ftyp = Const (const_of_name i.id_cmd, Iptr) };
        arg_field ~types i;
      ];
    ret;
  }

let openat_call ~name ~res ~path : syscall =
  {
    call_name = "openat";
    variant = Some name;
    args =
      [
        { fname = "fd"; ftyp = Const (const_of_name "AT_FDCWD", Iptr) };
        { fname = "file"; ftyp = Ptr (In, String (Some path)) };
        { fname = "flags"; ftyp = Const (const_of_name "O_RDWR", Iptr) };
        { fname = "mode"; ftyp = Const (const_of_value 0L, Iptr) };
      ];
    ret = Some res;
  }

(** A dependent handler (e.g. kvm's VM fd): the resource it produces and
    its own commands. *)
type dep_block = {
  db_ops : string;  (** ops-global symbol *)
  db_res : string;  (** resource name for fds it backs *)
  db_create_cmd : string;  (** parent command producing the fd *)
  db_idents : Prompt.ident list;
}

let driver_spec ~(name : string) ~(path : string) ~(idents : Prompt.ident list)
    ~(types : comp_def list) ~(deps : dep_block list)
    ~(plain : string list (* read/write/poll/mmap fields present *)) : spec =
  let res = resource_for name in
  let dep_for cmd = List.find_opt (fun d -> d.db_create_cmd = cmd) deps in
  let main_calls =
    List.map
      (fun (i : Prompt.ident) ->
        match dep_for i.id_cmd with
        | Some d -> ioctl_call ~res ~types ~ret:d.db_res i
        | None -> ioctl_call ~res ~types i)
      idents
  in
  let dep_calls =
    List.concat_map
      (fun d ->
        List.map
          (fun (i : Prompt.ident) ->
            match List.find_opt (fun d2 -> d2.db_create_cmd = i.id_cmd) deps with
            | Some d2 when d2.db_ops <> d.db_ops -> ioctl_call ~res:d.db_res ~types ~ret:d2.db_res i
            | _ -> ioctl_call ~res:d.db_res ~types i)
          d.db_idents)
      deps
  in
  let plain_calls =
    List.filter_map
      (fun op ->
        match op with
        | "read" ->
            Some
              {
                call_name = "read";
                variant = Some name;
                args =
                  [
                    { fname = "fd"; ftyp = Resource_ref res };
                    { fname = "buf"; ftyp = Ptr (Out, Array (Int (I8, None), None)) };
                    { fname = "len"; ftyp = Int (Iptr, None) };
                  ];
                ret = None;
              }
        | "write" ->
            Some
              {
                call_name = "write";
                variant = Some name;
                args =
                  [
                    { fname = "fd"; ftyp = Resource_ref res };
                    { fname = "buf"; ftyp = Ptr (In, Array (Int (I8, None), None)) };
                    { fname = "len"; ftyp = Int (Iptr, None) };
                  ];
                ret = None;
              }
        | "poll" ->
            Some
              {
                call_name = "poll";
                variant = Some name;
                args = [ { fname = "fd"; ftyp = Resource_ref res } ];
                ret = None;
              }
        | _ -> None)
      plain
  in
  let close_call =
    {
      call_name = "close";
      variant = Some name;
      args = [ { fname = "fd"; ftyp = Resource_ref res } ];
      ret = None;
    }
  in
  {
    spec_name = name;
    resources =
      { res_name = res; res_underlying = "fd" }
      :: List.map (fun d -> { res_name = d.db_res; res_underlying = "fd" }) deps;
    syscalls =
      (openat_call ~name ~res ~path :: main_calls) @ dep_calls @ plain_calls @ [ close_call ];
    types;
    flag_sets = flag_sets_of (idents @ List.concat_map (fun d -> d.db_idents) deps);
  }

(* ------------------------------------------------------------------ *)
(* Sockets                                                             *)
(* ------------------------------------------------------------------ *)

type socket_shape = {
  sk_triple : int * int * int;
  sk_sockaddr : string option;  (** sockaddr struct for bind/connect *)
  sk_sockaddr_size : int;
  sk_msg_control : string option;  (** struct behind msg_control, if read *)
  sk_setsockopts : Prompt.ident list;
  sk_getsockopts : Prompt.ident list;
  sk_plain : string list;  (** which proto_ops fields exist *)
}

let socket_spec ~(name : string) ~(shape : socket_shape) ~(types : comp_def list) : spec =
  let res = sock_resource_for name in
  let d, t, p = shape.sk_triple in
  let t = if t = 0 then 2 else t in
  let socket_call =
    {
      call_name = "socket";
      variant = Some name;
      args =
        [
          { fname = "domain"; ftyp = Const (const_of_value (Int64.of_int d), Iptr) };
          { fname = "type"; ftyp = Const (const_of_value (Int64.of_int t), Iptr) };
          { fname = "proto"; ftyp = Const (const_of_value (Int64.of_int p), Iptr) };
        ];
      ret = Some res;
    }
  in
  let addr_field =
    match shape.sk_sockaddr with
    | Some s -> { fname = "addr"; ftyp = Ptr (In, comp_kind_of types s) }
    | None -> { fname = "addr"; ftyp = Ptr (In, Array (Int (I8, None), Some 16)) }
  in
  let addrlen =
    { fname = "addrlen"; ftyp = Const (const_of_value (Int64.of_int shape.sk_sockaddr_size), Iptr) }
  in
  let plain op =
    match op with
    | "bind" | "connect" ->
        Some
          {
            call_name = op;
            variant = Some name;
            args = [ { fname = "fd"; ftyp = Resource_ref res }; addr_field; addrlen ];
            ret = None;
          }
    | "listen" ->
        Some
          {
            call_name = "listen";
            variant = Some name;
            args =
              [ { fname = "fd"; ftyp = Resource_ref res }; { fname = "backlog"; ftyp = Int (I32, None) } ];
            ret = None;
          }
    | "accept" ->
        Some
          {
            call_name = "accept";
            variant = Some name;
            args = [ { fname = "fd"; ftyp = Resource_ref res } ];
            ret = Some res;
          }
    | "sendmsg" ->
        Some
          {
            call_name = "sendmsg";
            variant = Some name;
            args =
              [
                { fname = "fd"; ftyp = Resource_ref res };
                { fname = "msg"; ftyp = Ptr (In, Struct_ref (name ^ "_msghdr")) };
                { fname = "len"; ftyp = Int (Iptr, None) };
              ];
            ret = None;
          }
    | "recvmsg" ->
        Some
          {
            call_name = "recvmsg";
            variant = Some name;
            args =
              [
                { fname = "fd"; ftyp = Resource_ref res };
                { fname = "msg"; ftyp = Ptr (Inout, Struct_ref (name ^ "_msghdr")) };
                { fname = "len"; ftyp = Int (Iptr, None) };
                { fname = "f"; ftyp = Int (I32, None) };
              ];
            ret = None;
          }
    | "shutdown" ->
        Some
          {
            call_name = "shutdown";
            variant = Some name;
            args =
              [ { fname = "fd"; ftyp = Resource_ref res }; { fname = "how"; ftyp = Int (I32, Some { lo = 0L; hi = 2L }) } ];
            ret = None;
          }
    | _ -> None
  in
  let plain_calls = List.filter_map plain shape.sk_plain in
  let sendto_call =
    if List.mem "sendmsg" shape.sk_plain then
      [
        {
          call_name = "sendto";
          variant = Some name;
          args =
            [
              { fname = "fd"; ftyp = Resource_ref res };
              { fname = "buf"; ftyp = Ptr (In, Array (Int (I8, None), None)) };
              { fname = "len"; ftyp = Int (Iptr, None) };
              { fname = "f"; ftyp = Const (const_of_value 0L, Iptr) };
              addr_field;
              addrlen;
            ];
          ret = None;
        };
      ]
    else []
  in
  let sockopt_call ~get (i : Prompt.ident) =
    let dir = if get then Out else In in
    let optval =
      match i.id_arg_type with
      | Some ty -> { fname = "optval"; ftyp = Ptr (dir, comp_kind_of types ty) }
      | None ->
          let inner =
            if (not get) && i.id_values <> [] then Flags (values_set_name i, I32)
            else Int (I32, None)
          in
          { fname = "optval"; ftyp = Ptr (dir, inner) }
    in
    {
      call_name = (if get then "getsockopt" else "setsockopt");
      variant = Some i.id_cmd;
      args =
        [
          { fname = "fd"; ftyp = Resource_ref res };
          { fname = "level"; ftyp = Const (const_of_value 0L, Iptr) };
          { fname = "optname"; ftyp = Const (const_of_name i.id_cmd, Iptr) };
          optval;
          { fname = "optlen"; ftyp = Const (const_of_value 16L, Iptr) };
        ];
      ret = None;
    }
  in
  let sockopt_calls =
    List.map (sockopt_call ~get:false) shape.sk_setsockopts
    @ List.map (sockopt_call ~get:true) shape.sk_getsockopts
  in
  (* per-socket msghdr type so sendmsg/recvmsg carry typed payloads *)
  let msghdr_type =
    if List.mem "sendmsg" shape.sk_plain || List.mem "recvmsg" shape.sk_plain then
      [
        {
          comp_name = name ^ "_msghdr";
          comp_kind = Struct;
          comp_fields =
            [
              {
                fname = "msg_name";
                ftyp =
                  (match shape.sk_sockaddr with
                  | Some s -> Ptr (In, comp_kind_of types s)
                  | None -> Int (I64, None));
              };
              { fname = "msg_namelen"; ftyp = Int (I32, None) };
              { fname = "msg_iov"; ftyp = Ptr (In, Array (Int (I8, None), None)) };
              { fname = "msg_iovlen"; ftyp = Int (I64, None) };
              {
                fname = "msg_control";
                ftyp =
                  (match shape.sk_msg_control with
                  | Some c -> Ptr (In, comp_kind_of types c)
                  | None -> Int (I64, None));
              };
              { fname = "msg_controllen"; ftyp = Int (I64, None) };
              { fname = "msg_flags"; ftyp = Int (I32, None) };
            ];
        };
      ]
    else []
  in
  {
    spec_name = name;
    resources = [ { res_name = res; res_underlying = "fd" } ];
    syscalls = (socket_call :: plain_calls) @ sendto_call @ sockopt_calls;
    types = types @ msghdr_type;
    flag_sets = flag_sets_of shape.sk_setsockopts;
  }
