(** End-to-end KernelGPT pipeline (§3): extraction → iterative stages →
    specification synthesis → validation and repair. *)

type mode =
  | Iterative  (** the paper's multi-stage Algorithm 1 *)
  | All_in_one  (** the §5.2.3 ablation: everything in one prompt *)

type outcome = {
  o_entry : string;  (** registry key of the module *)
  o_spec : Syzlang.Ast.spec option;
  o_valid : bool;  (** passed validation intact (possibly after repair) *)
  o_usable : bool;
      (** the final spec validates, possibly after pruning unrepairable
          descriptions — usable for fuzzing even when not "valid" *)
  o_direct_valid : bool;  (** passed validation before any repair *)
  o_repaired : bool;  (** repair changed the spec *)
  o_errors : Syzlang.Validate.error list;  (** errors that remain *)
  o_queries : int;  (** oracle queries spent on this module *)
  o_tokens : int;  (** prompt tokens spent on this module *)
  o_iterations : int;  (** Algorithm 1 rounds across all stages *)
}

val failed_outcome : string -> outcome

(** Validate a spec against the kernel index and repair it by consulting
    the oracle with the error messages, up to three rounds. Returns the
    (possibly fixed) spec, whether it now validates, whether any repair
    was applied, and the remaining errors. *)
val validate_and_repair :
  oracle:Oracle.t ->
  kernel:Csrc.Index.t ->
  Syzlang.Ast.spec ->
  Syzlang.Ast.spec * bool * bool * Syzlang.Validate.error list

(** Generate a specification for one corpus module (driver or socket). *)
val run :
  ?mode:mode -> oracle:Oracle.t -> kernel:Csrc.Index.t -> Corpus.Types.entry -> outcome
