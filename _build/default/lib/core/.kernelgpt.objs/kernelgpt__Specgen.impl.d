lib/core/specgen.ml: Int64 List Prompt String Syzlang
