lib/core/pipeline.ml: Corpus Csrc Engine Extractor Hashtbl List Option Oracle Prompt Specgen String Syzlang
