lib/core/engine.ml: Csrc Extractor Hashtbl List Oracle Prompt String Syzlang
