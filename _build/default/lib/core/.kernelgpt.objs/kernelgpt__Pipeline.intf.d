lib/core/pipeline.mli: Corpus Csrc Oracle Syzlang
