lib/core/extractor.ml: Buffer Corpus Csrc Hashtbl List Prompt String Syzlang
