(** Source-code extractor — the reproduction of the paper's LLVM-based
    component (§4).

    Pattern-matches the parsed module source for driver and socket
    operation handlers (initializations of the [unlocked_ioctl] /
    [ioctl] / [setsockopt] fields), locates the registration symbol the
    device name hides behind, and serves definition source text on
    demand (the [ExtractCode] of Algorithm 1). Ground-truth registry
    metadata is never consulted. *)

type handler_info = {
  hi_ops_global : string;  (** the fops/proto_ops symbol *)
  hi_is_socket : bool;
  hi_handlers : (string * string) list;  (** op field -> handler function *)
  hi_reg_symbol : string option;  (** miscdevice global or init function *)
}

(** Parse a module source (with the shared header) into its own index. *)
let module_index (source : string) : Csrc.Index.t =
  let sid = ref 0 in
  Csrc.Index.of_files (Corpus.Headers.parse_with_header ~sid ~file:"module.c" source)

let handler_field_names =
  [
    "open"; "release"; "unlocked_ioctl"; "compat_ioctl"; "ioctl"; "read"; "write"; "poll";
    "mmap"; "llseek"; "bind"; "connect"; "accept"; "listen"; "shutdown"; "setsockopt";
    "getsockopt"; "sendmsg"; "recvmsg"; "getname";
  ]

let ops_of_global (g : Csrc.Ast.global_def) : handler_info option =
  let is_socket =
    match g.global_type with
    | Csrc.Ast.Struct_ref "proto_ops" -> Some true
    | Csrc.Ast.Struct_ref "file_operations" -> Some false
    | _ -> None
  in
  match (is_socket, g.global_init) with
  | Some hi_is_socket, Some (Csrc.Ast.Init_designated fields) ->
      let hi_handlers =
        List.filter_map
          (fun (fname, init) ->
            match init with
            | Csrc.Ast.Init_expr (Csrc.Ast.Ident fn)
              when List.mem fname handler_field_names && fn <> "noop_llseek" ->
                Some (fname, fn)
            | _ -> None)
          fields
      in
      if hi_handlers = [] then None
      else
        Some { hi_ops_global = g.global_name; hi_is_socket; hi_handlers; hi_reg_symbol = None }
  | _ -> None

(** Find the symbol that registers [ops]: a [miscdevice] global whose
    [.fops] points at it, or a function that references it (the
    cdev/init-function pattern). *)
let find_reg_symbol (idx : Csrc.Index.t) (ops : string) : string option =
  let misc =
    List.find_map
      (fun (g : Csrc.Ast.global_def) ->
        match (g.global_type, g.global_init) with
        | Csrc.Ast.Struct_ref "miscdevice", Some (Csrc.Ast.Init_designated fields) ->
            let points_at_ops =
              List.exists
                (fun (_, init) ->
                  match init with
                  | Csrc.Ast.Init_expr (Csrc.Ast.Addr_of (Csrc.Ast.Ident s)) -> s = ops
                  | _ -> false)
                fields
            in
            if points_at_ops then Some g.global_name else None
        | _ -> None)
      (Csrc.Index.all_globals idx)
  in
  match misc with
  | Some _ -> misc
  | None ->
      (* an init function that *registers* the ops symbol: it must both
         mention the symbol and call a registration helper *)
      let registration_calls =
        [ "device_create"; "cdev_init"; "register_chrdev"; "misc_register";
          "snd_register_device"; "sock_register"; "proto_register" ]
      in
      List.find_map
        (fun (fd : Csrc.Ast.func_def) ->
          if fd.fun_body = [] then None
          else
            let mentions = ref false in
            let registers = ref false in
            Csrc.Ast.fold_block
              (fun () s ->
                List.iter
                  (fun e ->
                    Csrc.Ast.fold_expr
                      (fun () e ->
                        (match e with
                        | Csrc.Ast.Ident n | Csrc.Ast.Addr_of (Csrc.Ast.Ident n) when n = ops ->
                            mentions := true
                        | Csrc.Ast.Call (callee, _) when List.mem callee registration_calls ->
                            registers := true
                        | _ -> ()))
                      () e)
                  (Csrc.Ast.exprs_of_stmt s))
              () fd.fun_body;
            if !mentions && !registers then Some fd.fun_name else None)
        (Csrc.Index.all_functions idx)

(** All operation handlers of a module, with registration symbols. *)
let extract (idx : Csrc.Index.t) : handler_info list =
  Csrc.Index.all_globals idx
  |> List.filter_map ops_of_global
  |> List.map (fun hi -> { hi with hi_reg_symbol = find_reg_symbol idx hi.hi_ops_global })

(** The main handler of a module: the ops global that is actually
    registered (has a registration symbol), preferring it over dependent
    anon-inode handlers like [kvm_vm_fops]. *)
let main_handler (infos : handler_info list) : handler_info option =
  match List.filter (fun hi -> hi.hi_reg_symbol <> None) infos with
  | hi :: _ -> Some hi
  | [] -> ( match infos with hi :: _ -> Some hi | [] -> None)

let find_handler (infos : handler_info list) (ops : string) : handler_info option =
  List.find_opt (fun hi -> hi.hi_ops_global = ops) infos

(** Source text of the named definition (function, struct, macro, ...). *)
let snippet (idx : Csrc.Index.t) (name : string) : Prompt.snippet option =
  match Csrc.Index.extract_source idx name with
  | Some text -> Some { Prompt.snip_name = name; snip_text = text }
  | None -> None

(** One snippet holding all [#define]s of the module (protocol numbers,
    command macros) — used by socket-triple inference. *)
let module_macros_snippet (idx : Csrc.Index.t) : Prompt.snippet =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : Csrc.Ast.file) ->
      if f.path <> "include/kernel.h" then
        List.iter
          (fun d ->
            match d with
            | Csrc.Ast.D_macro m when m.macro_body <> [] ->
                Buffer.add_string buf (Csrc.Pretty.macro_str m ^ "\n")
            | _ -> ())
          f.decls)
    idx.Csrc.Index.files;
  { Prompt.snip_name = "module-macros"; snip_text = Buffer.contents buf }

(** Struct the handler casts one of [param_names] to (sockaddr
    recovery): the [(struct X * ) uaddr] idiom. *)
let cast_struct_of_param (idx : Csrc.Index.t) (fn : string) ~(param_names : string list) :
    string option =
  match Csrc.Index.find_function idx fn with
  | None | Some { fun_body = []; _ } -> None
  | Some fd ->
      let found = ref None in
      let visit e =
        match e with
        | Csrc.Ast.Cast (Csrc.Ast.Ptr (Csrc.Ast.Struct_ref sn), inner) when !found = None ->
            let rec base = function
              | Csrc.Ast.Ident v -> Some v
              | Csrc.Ast.Cast (_, e) -> base e
              | _ -> None
            in
            (match base inner with
            | Some v when List.mem v param_names -> found := Some sn
            | _ -> ())
        | _ -> ()
      in
      Csrc.Ast.fold_block
        (fun () s ->
          List.iter (fun e -> Csrc.Ast.fold_expr (fun () e -> visit e) () e)
            (Csrc.Ast.exprs_of_stmt s))
        () fd.fun_body;
      !found

(** Equality constraints a handler enforces on fields of [struct_name]:
    the [if (sa->family != AF_RDS) return ...] idiom. Returns field ->
    required constant. *)
let field_constraints (idx : Csrc.Index.t) (fns : string list) ~(struct_name : string) :
    (string * Syzlang.Ast.const_ref) list =
  let fields =
    match Csrc.Index.find_composite idx struct_name with
    | Some cd -> List.map (fun f -> f.Csrc.Ast.field_name) cd.fields
    | None -> []
  in
  let out = ref [] in
  let note f rhs =
    if List.mem f fields && not (List.mem_assoc f !out) then
      match rhs with
      | Csrc.Ast.Ident n when Csrc.Index.eval_macro idx n <> None ->
          out := (f, Syzlang.Ast.const_of_name n) :: !out
      | Csrc.Ast.Const_int v -> out := (f, Syzlang.Ast.const_of_value v) :: !out
      | _ -> ()
  in
  let visit e =
    match e with
    | Csrc.Ast.Binop (Csrc.Ast.Ne, Csrc.Ast.Arrow (_, f), rhs) -> note f rhs
    | Csrc.Ast.Binop (Csrc.Ast.Ne, lhs, Csrc.Ast.Arrow (_, f)) -> note f lhs
    (* array fields checked on their first element: [p->version[0] != V] *)
    | Csrc.Ast.Binop (Csrc.Ast.Ne, Csrc.Ast.Index (Csrc.Ast.Arrow (_, f), _), rhs) ->
        note f rhs
    | Csrc.Ast.Binop (Csrc.Ast.Ne, lhs, Csrc.Ast.Index (Csrc.Ast.Arrow (_, f), _)) ->
        note f lhs
    | Csrc.Ast.Binop (Csrc.Ast.Ne, Csrc.Ast.Member (_, f), rhs) -> note f rhs
    | Csrc.Ast.Binop (Csrc.Ast.Ne, Csrc.Ast.Index (Csrc.Ast.Member (_, f), _), rhs) ->
        note f rhs
    | _ -> ()
  in
  List.iter
    (fun fn ->
      match Csrc.Index.find_function idx fn with
      | Some fd when fd.fun_body <> [] ->
          Csrc.Ast.fold_block
            (fun () s ->
              List.iter (fun e -> Csrc.Ast.fold_expr (fun () e -> visit e) () e)
                (Csrc.Ast.exprs_of_stmt s))
            () fd.fun_body
      | _ -> ())
    fns;
  !out

(** Struct the sendmsg handler casts [msg->msg_control] to. *)
let msg_control_struct (idx : Csrc.Index.t) (fn : string) : string option =
  match Csrc.Index.find_function idx fn with
  | None | Some { fun_body = []; _ } -> None
  | Some fd ->
      let found = ref None in
      let rec is_msg_control = function
        | Csrc.Ast.Arrow (_, "msg_control") | Csrc.Ast.Member (_, "msg_control") -> true
        | Csrc.Ast.Cast (_, e) -> is_msg_control e
        | _ -> false
      in
      let visit e =
        match e with
        | Csrc.Ast.Cast (Csrc.Ast.Ptr (Csrc.Ast.Struct_ref sn), inner)
          when !found = None && is_msg_control inner ->
            found := Some sn
        | _ -> ()
      in
      Csrc.Ast.fold_block
        (fun () s ->
          List.iter (fun e -> Csrc.Ast.fold_expr (fun () e -> visit e) () e)
            (Csrc.Ast.exprs_of_stmt s))
        () fd.fun_body;
      !found

(** Struct the msg_name pointer is cast to in a sendmsg handler. *)
let msg_name_struct (idx : Csrc.Index.t) (fn : string) : string option =
  match Csrc.Index.find_function idx fn with
  | None | Some { fun_body = []; _ } -> None
  | Some fd ->
      let found = ref None in
      let rec is_msg_name = function
        | Csrc.Ast.Arrow (_, "msg_name") | Csrc.Ast.Member (_, "msg_name") -> true
        | Csrc.Ast.Cast (_, e) -> is_msg_name e
        | _ -> false
      in
      let visit e =
        match e with
        | Csrc.Ast.Cast (Csrc.Ast.Ptr (Csrc.Ast.Struct_ref sn), inner)
          when !found = None && is_msg_name inner ->
            found := Some sn
        | _ -> ()
      in
      Csrc.Ast.fold_block
        (fun () s ->
          List.iter (fun e -> Csrc.Ast.fold_expr (fun () e -> visit e) () e)
            (Csrc.Ast.exprs_of_stmt s))
        () fd.fun_body;
      !found

(** Transitive closure of functions called from [fn] that the module
    defines, for the dependency-analysis prompt. *)
let call_closure (idx : Csrc.Index.t) (fn : string) ~(depth : int) : string list =
  let seen = Hashtbl.create 16 in
  let rec go d name =
    if d > depth || Hashtbl.mem seen name then ()
    else
      match Csrc.Index.find_function idx name with
      | Some fd when fd.fun_body <> [] ->
          Hashtbl.replace seen name ();
          List.iter
            (fun callee -> if not (Corpus.Kapi.is_builtin callee) then go (d + 1) callee)
            (Csrc.Ast.called_functions fd.fun_body)
      | _ -> ()
  in
  go 0 fn;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare
