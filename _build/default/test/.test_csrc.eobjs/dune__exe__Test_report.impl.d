test/test_report.ml: Alcotest Array Corpus Lazy List Report Syzlang
