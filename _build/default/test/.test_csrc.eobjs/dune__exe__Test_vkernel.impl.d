test/test_vkernel.ml: Alcotest Array Corpus Csrc Int64 Lazy List Machine Printf Value Vkernel
