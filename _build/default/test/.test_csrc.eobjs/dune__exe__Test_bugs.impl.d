test/test_bugs.ml: Alcotest Corpus Csrc Machine Value Vkernel
