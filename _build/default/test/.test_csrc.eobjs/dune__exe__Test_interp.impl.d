test/test_interp.ml: Alcotest Corpus Csrc Vkernel
