test/test_vkernel.mli:
