test/test_machine.ml: Alcotest Array Corpus Csrc Int64 List Machine Printf Unix Value Vkernel
