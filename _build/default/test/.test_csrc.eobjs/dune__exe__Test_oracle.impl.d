test/test_oracle.ml: Alcotest Corpus Csrc Lazy List Oracle Printf Profile Prompt String Syzlang
