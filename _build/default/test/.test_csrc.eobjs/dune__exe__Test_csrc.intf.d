test/test_csrc.mli:
