test/test_csrc.ml: Alcotest Array Csrc Int64 List Option Printf QCheck QCheck_alcotest String
