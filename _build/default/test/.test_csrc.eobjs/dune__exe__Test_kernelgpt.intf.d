test/test_kernelgpt.mli:
