test/test_syzlang.ml: Alcotest Baseline Corpus Csrc Gen Int64 Lazy List Printf QCheck QCheck_alcotest Syzlang Vkernel
