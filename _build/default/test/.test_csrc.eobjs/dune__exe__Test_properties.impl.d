test/test_properties.ml: Alcotest Baseline Corpus Csrc Fuzzer Hashtbl Int64 Kernelgpt List Oracle Printf Profile QCheck QCheck_alcotest Syzlang Vkernel
