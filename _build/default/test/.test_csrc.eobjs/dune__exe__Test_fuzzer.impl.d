test/test_fuzzer.ml: Alcotest Corpus Fuzzer Hashtbl Int64 Kernelgpt Lazy List Option Oracle Profile QCheck QCheck_alcotest String Syzlang Vkernel
