test/test_syzlang.mli:
