test/test_kernelgpt.ml: Alcotest Baseline Corpus Kernelgpt List Oracle Profile Syzlang Vkernel
