test/test_corpus.ml: Alcotest Baseline Corpus Csrc Lazy List String Vkernel
