(* End-to-end tests of the virtual kernel on the device-mapper driver. *)

open Vkernel

let machine = lazy (Machine.boot [ Corpus.Drv_dm.entry ])

let dm_cmd name =
  let m = Lazy.force machine in
  match Csrc.Index.eval_macro m.Machine.index name with
  | Some v -> v
  | None -> Alcotest.failf "macro %s not found" name

let dm_ioctl_data ?(version = 4L) ?(data_size = 312L) ?(name = "") ?(uuid = "")
    ?(target_count = 0L) ?(flags = 0L) () =
  Value.U_struct
    ( "dm_ioctl",
      [
        ("version", Value.U_arr [ Value.U_int version; Value.U_int 0L; Value.U_int 0L ]);
        ("data_size", Value.U_int data_size);
        ("data_start", Value.U_int 0L);
        ("target_count", Value.U_int target_count);
        ("open_count", Value.U_int 0L);
        ("flags", Value.U_int flags);
        ("event_nr", Value.U_int 0L);
        ("name", Value.U_str name);
        ("uuid", Value.U_str uuid);
      ] )

let openat_dm = { Machine.c_name = "openat"; c_args = [ P_int (-100L); P_str "/dev/mapper/control" ] }

let ioctl cmd data =
  { Machine.c_name = "ioctl"; c_args = [ P_result 0; P_int (dm_cmd cmd); P_data data ] }

let exec prog = Machine.exec_prog (Lazy.force machine) prog

let test_open () =
  let r = exec [ openat_dm ] in
  Alcotest.(check bool) "open succeeds" true (Int64.compare r.retvals.(0) 0L >= 0);
  Alcotest.(check bool) "no crash" true (r.crash = None)

let test_open_wrong_path () =
  let r = exec [ { Machine.c_name = "openat"; c_args = [ P_int (-100L); P_str "/dev/device-mapper" ] } ] in
  Alcotest.(check int64) "ENOENT" (-2L) r.retvals.(0)

let test_version_ioctl () =
  let r = exec [ openat_dm; ioctl "DM_VERSION" (dm_ioctl_data ()) ] in
  Alcotest.(check int64) "DM_VERSION returns 0" 0L r.retvals.(1);
  Alcotest.(check bool) "no crash" true (r.crash = None)

let test_bad_version_rejected () =
  let r = exec [ openat_dm; ioctl "DM_LIST_DEVICES" (dm_ioctl_data ~version:3L ()) ] in
  Alcotest.(check int64) "EINVAL" (-22L) r.retvals.(1)

let test_dev_create_and_status () =
  let r =
    exec
      [
        openat_dm;
        ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_DEV_STATUS" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_DEV_STATUS" (dm_ioctl_data ~name:"missing" ());
      ]
  in
  Alcotest.(check int64) "create ok" 0L r.retvals.(1);
  Alcotest.(check int64) "status ok" 0L r.retvals.(2);
  Alcotest.(check int64) "status of missing is ENXIO" (-6L) r.retvals.(3);
  Alcotest.(check bool) "no crash" true (r.crash = None)

let test_kmalloc_bug_ctl_ioctl () =
  (* CVE-2024-23851: data_size unchecked before kvmalloc *)
  let r =
    exec [ openat_dm; ioctl "DM_LIST_DEVICES" (dm_ioctl_data ~data_size:0x8000_0000L ()) ]
  in
  match r.crash with
  | Some c -> Alcotest.(check string) "crash title" "kmalloc bug in ctl_ioctl" c.cr_title
  | None -> Alcotest.fail "expected a crash"

let test_kmalloc_bug_dm_table_create () =
  (* CVE-2023-52429: target_count unchecked before kvmalloc in table load *)
  let r =
    exec
      [
        openat_dm;
        ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_TABLE_LOAD" (dm_ioctl_data ~name:"vol0" ~target_count:0xffff_ffffL ());
      ]
  in
  match r.crash with
  | Some c ->
      Alcotest.(check string) "crash title" "kmalloc bug in dm_table_create" c.cr_title
  | None -> Alcotest.fail "expected a crash"

let test_gpf_cleanup_mapped_device () =
  (* CVE-2024-50277: remove a suspended device that never loaded a table *)
  let r =
    exec
      [
        openat_dm;
        ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_DEV_SUSPEND" (dm_ioctl_data ~name:"vol0" ~flags:2L ());
        ioctl "DM_DEV_REMOVE" (dm_ioctl_data ~name:"vol0" ());
      ]
  in
  match r.crash with
  | Some c ->
      Alcotest.(check string)
        "crash title" "general protection fault in cleanup_mapped_device" c.cr_title
  | None -> Alcotest.fail "expected a crash"

let test_no_crash_on_normal_lifecycle () =
  let r =
    exec
      [
        openat_dm;
        ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_TABLE_LOAD" (dm_ioctl_data ~name:"vol0" ~target_count:2L ());
        ioctl "DM_TABLE_STATUS" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_TABLE_CLEAR" (dm_ioctl_data ~name:"vol0" ());
        ioctl "DM_DEV_REMOVE" (dm_ioctl_data ~name:"vol0" ());
        { Machine.c_name = "close"; c_args = [ P_result 0 ] };
      ]
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) (Printf.sprintf "call %d ok" i) true (Int64.compare v 0L >= 0))
    r.retvals;
  Alcotest.(check bool) "no crash" true (r.crash = None)

let test_coverage_grows_with_depth () =
  let shallow = exec [ openat_dm; ioctl "DM_VERSION" (dm_ioctl_data ()) ] in
  let deep =
    exec
      [
        openat_dm;
        ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"a" ());
        ioctl "DM_TABLE_LOAD" (dm_ioctl_data ~name:"a" ~target_count:1L ());
        ioctl "DM_TABLE_STATUS" (dm_ioctl_data ~name:"a" ());
      ]
  in
  Alcotest.(check bool) "deep program covers more" true
    (List.length deep.coverage > List.length shallow.coverage)

let test_wrong_cmd_value_shallow () =
  (* using the raw nr (2) as the command — SyzDescribe's mistake from
     Figure 2c — must bounce off the _IOC_TYPE check *)
  let r =
    exec
      [
        openat_dm;
        { Machine.c_name = "ioctl"; c_args = [ P_result 0; P_int 2L; P_data (dm_ioctl_data ()) ] };
      ]
  in
  Alcotest.(check int64) "ENOTTY" (-25L) r.retvals.(1)

let test_bad_fd () =
  let r = exec [ { Machine.c_name = "ioctl"; c_args = [ P_int 99L; P_int 0L; P_null ] } ] in
  Alcotest.(check int64) "EBADF" (-9L) r.retvals.(0)

let test_null_arg_efault () =
  let r = exec [ openat_dm; { Machine.c_name = "ioctl"; c_args = [ P_result 0; P_int (dm_cmd "DM_LIST_DEVICES"); P_null ] } ] in
  Alcotest.(check int64) "EFAULT" (-14L) r.retvals.(1)

let test_state_isolated_between_programs () =
  let p1 = exec [ openat_dm; ioctl "DM_DEV_CREATE" (dm_ioctl_data ~name:"vol0" ()) ] in
  Alcotest.(check int64) "created in program 1" 0L p1.retvals.(1);
  let p2 = exec [ openat_dm; ioctl "DM_DEV_STATUS" (dm_ioctl_data ~name:"vol0" ()) ] in
  Alcotest.(check int64) "not visible in program 2" (-6L) p2.retvals.(1)

let test_module_attribution () =
  let m = Lazy.force machine in
  let r = exec [ openat_dm; ioctl "DM_VERSION" (dm_ioctl_data ()) ] in
  let modules =
    List.filter_map (Machine.module_of_sid m) r.coverage |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "all covered statements belong to dm" [ "dm" ] modules

let () =
  Alcotest.run "vkernel"
    [
      ( "dm-basic",
        [
          Alcotest.test_case "open" `Quick test_open;
          Alcotest.test_case "open wrong path" `Quick test_open_wrong_path;
          Alcotest.test_case "version ioctl" `Quick test_version_ioctl;
          Alcotest.test_case "bad version rejected" `Quick test_bad_version_rejected;
          Alcotest.test_case "create + status" `Quick test_dev_create_and_status;
          Alcotest.test_case "normal lifecycle" `Quick test_no_crash_on_normal_lifecycle;
          Alcotest.test_case "bad fd" `Quick test_bad_fd;
          Alcotest.test_case "null arg" `Quick test_null_arg_efault;
          Alcotest.test_case "state isolation" `Quick test_state_isolated_between_programs;
        ] );
      ( "dm-bugs",
        [
          Alcotest.test_case "kmalloc bug in ctl_ioctl" `Quick test_kmalloc_bug_ctl_ioctl;
          Alcotest.test_case "kmalloc bug in dm_table_create" `Quick test_kmalloc_bug_dm_table_create;
          Alcotest.test_case "gpf in cleanup_mapped_device" `Quick test_gpf_cleanup_mapped_device;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "depth grows coverage" `Quick test_coverage_grows_with_depth;
          Alcotest.test_case "wrong cmd is shallow" `Quick test_wrong_cmd_value_shallow;
          Alcotest.test_case "module attribution" `Quick test_module_attribution;
        ] );
    ]
