(* Smoke tests of the experiment layer: suite assembly and the
   statistics tables (fuzzing-heavy experiments run at tiny budgets). *)

let ctx = lazy (Report.Suites.build ())

let test_suites_assemble () =
  let ctx = Lazy.force ctx in
  let syz = Report.Suites.syzkaller_suite ctx in
  let sd = Report.Suites.syzdescribe_suite ctx in
  let kg = Report.Suites.kernelgpt_suite ctx in
  let n s = Syzlang.Ast.count_syscalls s in
  Alcotest.(check bool) "syzkaller suite non-trivial" true (n syz > 500);
  Alcotest.(check bool) "syzdescribe adds syscalls" true (n sd > n syz);
  Alcotest.(check bool) "kernelgpt adds syscalls" true (n kg > n syz)

let test_table1_shape () =
  let t = Report.Exp_specs.table1 (Lazy.force ctx) in
  Alcotest.(check int) "278 drivers" 278 t.drivers.t1_total;
  Alcotest.(check int) "81 sockets" 81 t.sockets.t1_total;
  (* the paper's shape: KernelGPT validates most incomplete handlers,
     SyzDescribe far fewer, and never sockets *)
  Alcotest.(check bool) "drivers incomplete subset" true
    (t.drivers.t1_incomplete < t.drivers.t1_total);
  Alcotest.(check bool) "kgpt >= 80% of incomplete drivers" true
    (t.drivers.t1_kgpt_valid * 10 >= t.drivers.t1_incomplete * 8);
  Alcotest.(check bool) "kgpt handles sockets" true (t.sockets.t1_kgpt_valid > 0);
  Alcotest.(check (option int)) "sd sockets N/A" None t.sockets.t1_sd_valid;
  (match t.drivers.t1_sd_valid with
  | Some sd -> Alcotest.(check bool) "sd well below kgpt" true (sd < t.drivers.t1_kgpt_valid)
  | None -> Alcotest.fail "sd driver count missing")

let test_table2_shape () =
  let t = Report.Exp_specs.table2 (Lazy.force ctx) in
  Alcotest.(check bool) "kgpt generates driver syscalls" true (t.kg_driver.t2_syscalls > 100);
  Alcotest.(check bool) "kgpt generates socket syscalls" true (t.kg_socket.t2_syscalls > 100);
  Alcotest.(check bool) "kgpt more types than sd" true (t.kg_driver.t2_types > t.sd_driver.t2_types)

let test_fig7_sums () =
  let ctx = Lazy.force ctx in
  let h = Report.Exp_specs.fig7 ctx Corpus.Types.Driver in
  let bucketed = Array.fold_left ( + ) 0 h.buckets in
  Alcotest.(check int) "histogram partitions loaded drivers" 278 (bucketed + h.none_missing)

let test_table3_tiny () =
  let t = Report.Exp_fuzz.table3 ~reps:1 ~budget:300 (Lazy.force ctx) in
  Alcotest.(check int) "three suites" 3 (List.length t.rows);
  List.iter
    (fun (r : Report.Exp_fuzz.suite_result) ->
      Alcotest.(check bool) (r.sr_name ^ " has coverage") true (r.sr_cov > 0.0))
    t.rows

let test_correctness_audit () =
  let a = Report.Exp_correctness.audit (Lazy.force ctx) in
  Alcotest.(check bool) "audits a few dozen drivers" true (a.a_drivers > 20);
  (* §5.1.3 shape: the vast majority of commands are recovered *)
  Alcotest.(check bool) "missing tail is small" true (a.a_missing_cmds * 5 < a.a_total_cmds)

let test_module_suite_merges () =
  let ctx = Lazy.force ctx in
  let dm = Report.Suites.module_suite ctx "dm" in
  Alcotest.(check bool) "dm module suite has the generated ioctls" true
    (Syzlang.Ast.count_syscalls dm >= 18)

let () =
  let t n f = Alcotest.test_case n `Quick f in
  Alcotest.run "report"
    [
      ( "experiments",
        [
          t "suites assemble" test_suites_assemble;
          t "table1 shape" test_table1_shape;
          t "table2 shape" test_table2_shape;
          t "fig7 partitions" test_fig7_sums;
          t "table3 tiny run" test_table3_tiny;
          t "correctness audit" test_correctness_audit;
          t "module suite" test_module_suite_merges;
        ] );
    ]
