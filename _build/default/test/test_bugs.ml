(* Reachability of every Table 4 bug: a hand-written syscall program per
   bug must trigger exactly the expected crash title. This pins down the
   substrate the fuzzing experiments rely on. *)

open Vkernel

let exec name prog =
  let entry = Corpus.Registry.find_exn name in
  let machine = Machine.boot [ entry ] in
  Machine.exec_prog machine prog

let cmd name macro =
  let entry = Corpus.Registry.find_exn name in
  let machine = Machine.boot [ entry ] in
  match Csrc.Index.eval_macro machine.Machine.index macro with
  | Some v -> v
  | None -> Alcotest.failf "macro %s not found in %s" macro name

let check_crash title res =
  match res.Machine.crash with
  | Some c -> Alcotest.(check string) "crash title" title c.cr_title
  | None -> Alcotest.failf "expected crash %S but none occurred" title

let openat path = { Machine.c_name = "openat"; c_args = [ P_int (-100L); P_str path ] }

let ioctl fd cmdv data = { Machine.c_name = "ioctl"; c_args = [ P_result fd; P_int cmdv; data ] }

let close fd = { Machine.c_name = "close"; c_args = [ P_result fd ] }

let u fields name = Value.U_struct (name, fields)

(* -------------------- dm -------------------- *)

let dm_arg ?(data_size = 400L) ?(name = "") ?(flags = 0L) ?(count = 0L) () =
  u
    [
      ("version", Value.U_arr [ Value.U_int 4L ]);
      ("data_size", Value.U_int data_size);
      ("target_count", Value.U_int count);
      ("flags", Value.U_int flags);
      ("name", Value.U_str name);
    ]
    "dm_ioctl"

let test_dm_kmalloc_ctl () =
  let c = cmd "dm" "DM_LIST_DEVICES" in
  exec "dm" [ openat "/dev/mapper/control"; ioctl 0 c (P_data (dm_arg ~data_size:0x9000_0000L ())) ]
  |> check_crash "kmalloc bug in ctl_ioctl"

let test_dm_kmalloc_table_create () =
  let create = cmd "dm" "DM_DEV_CREATE" and load = cmd "dm" "DM_TABLE_LOAD" in
  exec "dm"
    [
      openat "/dev/mapper/control";
      ioctl 0 create (P_data (dm_arg ~name:"v" ()));
      ioctl 0 load (P_data (dm_arg ~name:"v" ~count:0xffffffffL ()));
    ]
  |> check_crash "kmalloc bug in dm_table_create"

let test_dm_cleanup_gpf () =
  let create = cmd "dm" "DM_DEV_CREATE"
  and susp = cmd "dm" "DM_DEV_SUSPEND"
  and remove = cmd "dm" "DM_DEV_REMOVE" in
  exec "dm"
    [
      openat "/dev/mapper/control";
      ioctl 0 create (P_data (dm_arg ~name:"v" ()));
      ioctl 0 susp (P_data (dm_arg ~name:"v" ~flags:2L ()));
      ioctl 0 remove (P_data (dm_arg ~name:"v" ()));
    ]
  |> check_crash "general protection fault in cleanup_mapped_device"

(* -------------------- cec -------------------- *)

let cec_msg ?(len = 2L) ?(timeout = 0L) ?(flags = 0L) () =
  u [ ("len", Value.U_int len); ("timeout", Value.U_int timeout); ("flags", Value.U_int flags) ] "cec_msg"

let cec_log_addrs ?(num = 1L) () =
  u [ ("num_log_addrs", Value.U_int num); ("log_addr_type", Value.U_str "\001") ] "cec_log_addrs"

let cec_configure fd =
  (* set a physical address, then claim logical addresses *)
  [
    ioctl fd (cmd "cec" "CEC_ADAP_S_PHYS_ADDR") (P_data (Value.U_int 0x1000L));
    ioctl fd (cmd "cec" "CEC_ADAP_S_LOG_ADDRS") (P_data (cec_log_addrs ()));
  ]

let test_cec_task_hung () =
  exec "cec"
    [ openat "/dev/cec0"; ioctl 0 (cmd "cec" "CEC_ADAP_S_LOG_ADDRS") (P_data (cec_log_addrs ())) ]
  |> check_crash "INFO: task hung in cec_claim_log_addrs"

let test_cec_gpf_done_ts () =
  exec "cec"
    [ openat "/dev/cec0"; ioctl 0 (cmd "cec" "CEC_TRANSMIT") (P_data (cec_msg ~flags:2L ())) ]
  |> check_crash "general protection fault in cec_transmit_done_ts"

let test_cec_odebug () =
  exec "cec"
    (openat "/dev/cec0" :: cec_configure 0
    @ [
        ioctl 0 (cmd "cec" "CEC_TRANSMIT") (P_data (cec_msg ~timeout:0L ()));
        ioctl 0 (cmd "cec" "CEC_TRANSMIT") (P_data (cec_msg ~timeout:0L ()));
      ])
  |> check_crash "ODEBUG bug in cec_transmit_msg_fh"

let test_cec_data_cancel () =
  exec "cec"
    (openat "/dev/cec0" :: cec_configure 0
    @ [
        ioctl 0 (cmd "cec" "CEC_TRANSMIT") (P_data (cec_msg ~timeout:100L ~flags:1L ()));
        close 0;
      ])
  |> check_crash "WARNING in cec_data_cancel"

let test_cec_uaf () =
  exec "cec"
    ([ openat "/dev/cec0"; openat "/dev/cec0" ]
    @ cec_configure 0
    @ [
        ioctl 1 (cmd "cec" "CEC_S_MODE") (P_data (Value.U_int 0xe0L));
        close 1;
        ioctl 0 (cmd "cec" "CEC_TRANSMIT") (P_data (cec_msg ~timeout:0L ()));
      ])
  |> check_crash "KASAN: slab-use-after-free Read in cec_queue_msg_fh"

(* -------------------- btrfs -------------------- *)

let vol_args ?(fd = 1L) ~name () =
  u [ ("fd", Value.U_int fd); ("name", Value.U_str name) ] "btrfs_ioctl_vol_args"

let test_btrfs_bug_on () =
  exec "btrfs_control"
    [
      openat "/dev/btrfs-control";
      ioctl 0 (cmd "btrfs_control" "BTRFS_IOC_SCAN_DEV") (P_data (vol_args ~name:"d" ()));
      ioctl 0 (cmd "btrfs_control" "BTRFS_IOC_SNAP_CREATE") (P_data (vol_args ~fd:0L ~name:"d" ()));
    ]
  |> check_crash "kernel BUG in btrfs_get_root_ref"

let test_btrfs_reloc_gpf () =
  exec "btrfs_control"
    [
      openat "/dev/btrfs-control";
      ioctl 0 (cmd "btrfs_control" "BTRFS_IOC_SCAN_DEV") (P_data (vol_args ~fd:(-1L) ~name:"d" ()));
      ioctl 0 (cmd "btrfs_control" "BTRFS_IOC_DEVICES_READY") (P_data (vol_args ~name:"d" ()));
    ]
  |> check_crash "general protection fault in btrfs_update_reloc_root"

(* -------------------- ubi -------------------- *)

let ubi_req ?(mtd = 1L) ?(vid = 32L) ?(beb = 20L) () =
  u
    [ ("ubi_num", Value.U_int 0L); ("mtd_num", Value.U_int mtd);
      ("vid_hdr_offset", Value.U_int vid); ("max_beb_per1024", Value.U_int beb) ]
    "ubi_attach_req"

let test_ubi_zero_vmalloc () =
  exec "ubi"
    [ openat "/dev/ubi_ctrl"; ioctl 0 (cmd "ubi" "UBI_IOCATT") (P_data (ubi_req ~vid:32L ())) ]
  |> check_crash "zero-size vmalloc in ubi_read_volume_table"

let test_ubi_leak () =
  exec "ubi"
    [
      openat "/dev/ubi_ctrl";
      ioctl 0 (cmd "ubi" "UBI_IOCATT") (P_data (ubi_req ~vid:4096L ()));
      ioctl 0 (cmd "ubi" "UBI_IOCATT") (P_data (ubi_req ~vid:4096L ()));
      close 0;
    ]
  |> check_crash "memory leak in ubi_attach"

(* -------------------- posix clock -------------------- *)

let test_posix_clock_leak () =
  exec "posix_clock" [ openat "/dev/ptp0"; openat "/dev/ptp0"; close 0 ]
  |> check_crash "memory leak in posix_clock_open"

(* -------------------- dvb -------------------- *)

let test_dvb_deadlock () =
  let pes =
    u [ ("pid", Value.U_int 16L); ("pes_type", Value.U_int 1L) ] "dmx_pes_filter_params"
  in
  exec "dvb_demux"
    [
      openat "/dev/dvb/adapter0/demux0";
      ioctl 0 (cmd "dvb_demux" "DMX_SET_PES_FILTER") (P_data pes);
      close 0;
    ]
  |> check_crash "possible deadlock in dvb_demux_release"

let test_dvb_add_pid_leak () =
  let pid = Machine.P_data (Value.U_int 16L) in
  exec "dvb_demux"
    [
      openat "/dev/dvb/adapter0/demux0";
      ioctl 0 (cmd "dvb_demux" "DMX_ADD_PID") pid;
      ioctl 0 (cmd "dvb_demux" "DMX_ADD_PID") pid;
      close 0;
    ]
  |> check_crash "memory leak in dvb_dmxdev_add_pid"

let test_dvb_expbuf_gpf () =
  let exp = u [ ("index", Value.U_int 0L) ] "dmx_exportbuffer" in
  exec "dvb_demux"
    [ openat "/dev/dvb/adapter0/demux0"; ioctl 0 (cmd "dvb_demux" "DMX_EXPBUF") (P_data exp) ]
  |> check_crash "general protection fault in dvb_vb2_expbuf"

let test_dvr_leak () =
  let c = cmd "dvb_dvr" "DMX_SET_BUFFER_SIZE" in
  exec "dvb_dvr"
    [
      openat "/dev/dvb/adapter0/dvr0";
      ioctl 0 c (P_int 8192L);
      ioctl 0 c (P_int 16384L);
      close 0;
    ]
  |> check_crash "memory leak in dvb_dvr_do_ioctl"

(* -------------------- vgadget -------------------- *)

let test_usb_ep_queue_warn () =
  let req = u [ ("ep_num", Value.U_int 0L); ("req_id", Value.U_int 0L) ] "vg_request" in
  exec "vgadget"
    [ openat "/dev/vgadget0"; ioctl 0 (cmd "vgadget" "GADGET_EP_QUEUE") (P_data req) ]
  |> check_crash "WARNING in usb_ep_queue"

let test_vep_queue_list () =
  let ep = u [ ("ep_num", Value.U_int 0L); ("maxpacket", Value.U_int 64L) ] "vg_ep_desc" in
  let req = u [ ("ep_num", Value.U_int 0L); ("req_id", Value.U_int 1L) ] "vg_request" in
  exec "vgadget"
    [
      openat "/dev/vgadget0";
      ioctl 0 (cmd "vgadget" "GADGET_EP_ENABLE") (P_data ep);
      ioctl 0 (cmd "vgadget" "GADGET_EP_QUEUE") (P_data req);
      ioctl 0 (cmd "vgadget" "GADGET_EP_QUEUE") (P_data req);
    ]
  |> check_crash "BUG: corrupted list in vep_queue"

let test_uvc_divide () =
  let bufs = u [ ("count", Value.U_int 4L) ] "uvc_requestbuffers" in
  exec "vgadget"
    [ openat "/dev/vgadget0"; ioctl 0 (cmd "vgadget" "UVC_REQBUFS") (P_data bufs) ]
  |> check_crash "divide error in uvc_queue_setup"

let test_vb2_reqbufs_warn () =
  let fmt =
    u
      [ ("width", Value.U_int 64L); ("height", Value.U_int 64L);
        ("bytesperline", Value.U_int 64L); ("sizeimage", Value.U_int 4096L) ]
      "uvc_format"
  in
  let bufs = u [ ("count", Value.U_int 4L) ] "uvc_requestbuffers" in
  exec "vgadget"
    [
      openat "/dev/vgadget0";
      ioctl 0 (cmd "vgadget" "UVC_SET_FORMAT") (P_data fmt);
      ioctl 0 (cmd "vgadget" "UVC_REQBUFS") (P_data bufs);
      ioctl 0 (cmd "vgadget" "UVC_STREAMON") (P_int 0L);
      ioctl 0 (cmd "vgadget" "UVC_REQBUFS") (P_data bufs);
    ]
  |> check_crash "WARNING in vb2_core_reqbufs"

(* -------------------- nbd -------------------- *)

let test_nbd_task_hung () =
  exec "nbd"
    [
      openat "/dev/nbd0";
      ioctl 0 (cmd "nbd" "NBD_SET_SOCK") (P_int 4L);
      ioctl 0 (cmd "nbd" "NBD_DO_IT") (P_int 0L);
    ]
  |> check_crash "INFO: task hung in __rq_qos_throttle"

(* -------------------- rds -------------------- *)

let test_rds_oob () =
  let addr =
    u [ ("sin_family", Value.U_int 21L); ("sin_port", Value.U_int 5L); ("sin_addr", Value.U_int 1L) ]
      "sockaddr_rds"
  in
  let trace =
    u [ ("rx_traces", Value.U_int 2L); ("rx_trace_pos", Value.U_str "\200\200") ] "rds_rx_trace_so"
  in
  let msg =
    u [ ("msg_name", addr); ("msg_control", trace); ("msg_controllen", Value.U_int 5L) ]
      (* field names follow the generated msghdr type *) "rds_msghdr"
  in
  let res =
    exec "rds"
      [
        { Machine.c_name = "socket"; c_args = [ P_int 21L; P_int 5L; P_int 0L ] };
        { Machine.c_name = "bind"; c_args = [ P_result 0; P_data addr; P_int 16L ] };
        { Machine.c_name = "sendmsg"; c_args = [ P_result 0; P_data msg; P_int 64L ] };
      ]
  in
  check_crash "UBSAN: array-index-out-of-bounds in rds_cmsg_recv" res

(* -------------------- l2tp_ip6 -------------------- *)

let test_l2tp_leak () =
  let addr =
    u [ ("l2tp_family", Value.U_int 10L); ("l2tp_conn_id", Value.U_int 7L) ] "sockaddr_l2tpip6"
  in
  let res =
    exec "l2tp_ip6"
      [
        { Machine.c_name = "socket"; c_args = [ P_int 10L; P_int 2L; P_int 115L ] };
        { Machine.c_name = "bind"; c_args = [ P_result 0; P_data addr; P_int 36L ] };
        {
          Machine.c_name = "sendto";
          c_args =
            [ P_result 0; P_data (Value.U_str "xx"); P_int 100_000L; P_int 0L; P_data addr; P_int 36L ];
        };
        { Machine.c_name = "close"; c_args = [ P_result 0 ] };
      ]
  in
  check_crash "memory leak in ip6_append_data" res

let () =
  let t n f = Alcotest.test_case n `Quick f in
  Alcotest.run "table4-bugs"
    [
      ( "dm",
        [
          t "kmalloc ctl_ioctl" test_dm_kmalloc_ctl;
          t "kmalloc dm_table_create" test_dm_kmalloc_table_create;
          t "gpf cleanup_mapped_device" test_dm_cleanup_gpf;
        ] );
      ( "cec",
        [
          t "task hung claim_log_addrs" test_cec_task_hung;
          t "gpf transmit_done_ts" test_cec_gpf_done_ts;
          t "odebug transmit_msg_fh" test_cec_odebug;
          t "warning data_cancel" test_cec_data_cancel;
          t "uaf queue_msg_fh" test_cec_uaf;
        ] );
      ( "btrfs",
        [ t "bug_on get_root_ref" test_btrfs_bug_on; t "gpf update_reloc_root" test_btrfs_reloc_gpf ] );
      ("ubi", [ t "zero vmalloc" test_ubi_zero_vmalloc; t "leak ubi_attach" test_ubi_leak ]);
      ("posix-clock", [ t "leak open" test_posix_clock_leak ]);
      ( "dvb",
        [
          t "deadlock release" test_dvb_deadlock;
          t "leak add_pid" test_dvb_add_pid_leak;
          t "gpf expbuf" test_dvb_expbuf_gpf;
          t "leak dvr ioctl" test_dvr_leak;
        ] );
      ( "vgadget",
        [
          t "warn usb_ep_queue" test_usb_ep_queue_warn;
          t "corrupted list vep_queue" test_vep_queue_list;
          t "divide uvc_queue_setup" test_uvc_divide;
          t "warn vb2_core_reqbufs" test_vb2_reqbufs_warn;
        ] );
      ("nbd", [ t "task hung rq_qos_throttle" test_nbd_task_hung ]);
      ("rds", [ t "oob rds_cmsg_recv" test_rds_oob ]);
      ("l2tp", [ t "leak ip6_append_data" test_l2tp_leak ]);
    ]
