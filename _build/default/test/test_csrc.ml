(* Tests for the mini-C lexer, parser, pretty-printer and index. *)

let dm_snippet =
  {|
#define DM_DIR "mapper"
#define DM_CONTROL_NODE "control"
#define DM_NAME "device-mapper"
#define DM_IOCTL 0xfd
#define DM_VERSION_CMD 0
#define DM_LIST_DEVICES_CMD 2
#define DM_VERSION _IOWR(DM_IOCTL, DM_VERSION_CMD, struct dm_ioctl)
#define DM_LIST_DEVICES _IOWR(DM_IOCTL, DM_LIST_DEVICES_CMD, struct dm_ioctl)

struct dm_ioctl {
  u32 version[3];  /* protocol version */
  u32 data_size;   /* total size of data passed in, including this struct */
  u32 data_start;
  char name[128];
  u64 event_nr;
};

static int dm_open(struct file *filp)
{
  return 0;
}

static long ctl_ioctl(struct file *file, unsigned int command, struct dm_ioctl *u)
{
  unsigned int cmd;
  cmd = _IOC_NR(command);
  if (cmd == DM_VERSION_CMD)
    return 0;
  return lookup_ioctl(cmd, u);
}

static long dm_ctl_ioctl(struct file *file, unsigned int command, unsigned long u)
{
  return ctl_ioctl(file, command, (struct dm_ioctl *)u);
}

static const struct file_operations _ctl_fops = {
  .open = dm_open,
  .unlocked_ioctl = dm_ctl_ioctl,
};

static struct miscdevice _dm_misc = {
  .minor = 12,
  .name = DM_NAME,
  .nodename = DM_DIR "/" DM_CONTROL_NODE,
  .fops = &_ctl_fops,
};
|}

let parse src =
  let sid = ref 0 in
  Csrc.Parser.parse_file ~file:"test.c" ~sid src

let index_of src = Csrc.Index.of_files [ parse src ]

let test_lex_basics () =
  let r = Csrc.Lexer.lex "int x = 0x10; // hi\n" in
  let kinds = Array.to_list r.tokens |> List.map (fun s -> s.Csrc.Token.tok) in
  Alcotest.(check int) "token count" 6 (List.length kinds);
  Alcotest.(check int) "comment count" 1 (List.length r.comments);
  match kinds with
  | [ Csrc.Token.Kw_int; Csrc.Token.Ident "x"; Csrc.Token.Assign; Csrc.Token.Int_lit 16L; Csrc.Token.Semi; Csrc.Token.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_char_and_string () =
  let r = Csrc.Lexer.lex {|"a\nb" 'x' '\n'|} in
  match Array.to_list r.tokens |> List.map (fun s -> s.Csrc.Token.tok) with
  | [ Csrc.Token.Str_lit "a\nb"; Csrc.Token.Char_lit 'x'; Csrc.Token.Char_lit '\n'; Csrc.Token.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_suffixes () =
  let r = Csrc.Lexer.lex "42UL 0xffULL 7L" in
  match Array.to_list r.tokens |> List.map (fun s -> s.Csrc.Token.tok) with
  | [ Csrc.Token.Int_lit 42L; Csrc.Token.Int_lit 255L; Csrc.Token.Int_lit 7L; Csrc.Token.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_parse_dm () =
  let f = parse dm_snippet in
  let names = List.map Csrc.Ast.decl_name f.decls in
  Alcotest.(check bool) "has ctl_ioctl" true (List.mem "ctl_ioctl" names);
  Alcotest.(check bool) "has dm_ioctl struct" true (List.mem "dm_ioctl" names);
  Alcotest.(check bool) "has _dm_misc" true (List.mem "_dm_misc" names)

let test_struct_fields_and_comments () =
  let idx = index_of dm_snippet in
  match Csrc.Index.find_composite idx "dm_ioctl" with
  | None -> Alcotest.fail "dm_ioctl not indexed"
  | Some cd ->
      Alcotest.(check int) "field count" 5 (List.length cd.fields);
      let f0 = List.nth cd.fields 0 in
      Alcotest.(check (option string))
        "version comment" (Some "protocol version") f0.field_comment;
      let f3 = List.nth cd.fields 3 in
      Alcotest.(check string) "name field" "name" f3.field_name;
      (match f3.field_type with
      | Csrc.Ast.Array (Csrc.Ast.Int { signed = true; width = 8 }, Some 128) -> ()
      | _ -> Alcotest.fail "name should be char[128]")

let test_macro_eval () =
  let idx = index_of dm_snippet in
  (match Csrc.Index.eval_macro idx "DM_IOCTL" with
  | Some v -> Alcotest.(check int64) "DM_IOCTL" 0xfdL v
  | None -> Alcotest.fail "DM_IOCTL not constant");
  match Csrc.Index.eval_macro idx "DM_LIST_DEVICES" with
  | Some v ->
      (* _IOWR = dir 3 << 30 | size << 16 | 0xfd << 8 | 2 *)
      let size = Int64.of_int (Csrc.Index.sizeof idx (Csrc.Ast.Struct_ref "dm_ioctl")) in
      let expected =
        Int64.logor
          (Int64.shift_left 3L 30)
          (Int64.logor (Int64.shift_left size 16) (Int64.logor (Int64.shift_left 0xfdL 8) 2L))
      in
      Alcotest.(check int64) "DM_LIST_DEVICES encoding" expected v
  | None -> Alcotest.fail "DM_LIST_DEVICES not constant"

let test_string_macro_concat () =
  let idx = index_of dm_snippet in
  match Csrc.Index.find_global idx "_dm_misc" with
  | None -> Alcotest.fail "_dm_misc not found"
  | Some g -> (
      match g.global_init with
      | Some (Csrc.Ast.Init_designated fields) -> (
          let nodename = List.assoc "nodename" fields in
          match nodename with
          | Csrc.Ast.Init_expr e -> (
              match Csrc.Index.eval_string idx e with
              | Some s -> Alcotest.(check string) "nodename" "mapper/control" s
              | None -> Alcotest.fail "nodename not a string")
          | _ -> Alcotest.fail "nodename initializer shape")
      | _ -> Alcotest.fail "_dm_misc initializer shape")

let test_layout () =
  let idx = index_of dm_snippet in
  (* 3*4 (version) + 4 + 4 + 128 + pad(4) + 8 = 160 *)
  Alcotest.(check int) "sizeof dm_ioctl" 160
    (Csrc.Index.sizeof idx (Csrc.Ast.Struct_ref "dm_ioctl"));
  let offsets = Csrc.Index.field_offsets idx
      (Option.get (Csrc.Index.find_composite idx "dm_ioctl")) in
  Alcotest.(check int) "offset of event_nr" 152 (List.assoc "event_nr" offsets)

let test_ioc_nr () =
  let idx = index_of dm_snippet in
  let cmd = Option.get (Csrc.Index.eval_macro idx "DM_LIST_DEVICES") in
  let nr =
    Csrc.Index.eval idx (Csrc.Ast.Call ("_IOC_NR", [ Csrc.Ast.Const_int cmd ]))
  in
  Alcotest.(check int64) "_IOC_NR" 2L nr

let test_pretty_roundtrip () =
  let f = parse dm_snippet in
  let printed = Csrc.Pretty.file_str f in
  (* re-parsing the printed text must succeed and keep the same decls *)
  let f2 = parse printed in
  Alcotest.(check int) "same decl count" (List.length f.decls) (List.length f2.decls);
  Alcotest.(check (list string))
    "same decl names"
    (List.map Csrc.Ast.decl_name f.decls)
    (List.map Csrc.Ast.decl_name f2.decls)

let test_switch_parse () =
  let src =
    {|
static long vol_cdev_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
  int err = 0;
  switch (cmd) {
  case 1:
  case 2:
    err = 1;
    break;
  default:
    err = -25;
    break;
  }
  return err;
}
|}
  in
  let f = parse src in
  match f.decls with
  | [ Csrc.Ast.D_func fd ] ->
      let stmts = Csrc.Ast.stmts_of_body fd.fun_body in
      let has_switch =
        List.exists (fun s -> match s.Csrc.Ast.node with Csrc.Ast.Switch _ -> true | _ -> false) stmts
      in
      Alcotest.(check bool) "has switch" true has_switch;
      let sw =
        List.find_map
          (fun s -> match s.Csrc.Ast.node with Csrc.Ast.Switch (_, cs) -> Some cs | _ -> None)
          stmts
        |> Option.get
      in
      Alcotest.(check int) "case groups" 2 (List.length sw);
      Alcotest.(check int) "labels in first group" 2 (List.length (List.hd sw).labels)
  | _ -> Alcotest.fail "expected one function"

let test_goto_and_labels () =
  let src =
    {|
static int f(int x)
{
  if (x < 0)
    goto out;
  x = x + 1;
out:
  return x;
}
|}
  in
  let f = parse src in
  match f.decls with
  | [ Csrc.Ast.D_func fd ] ->
      let stmts = Csrc.Ast.stmts_of_body fd.fun_body in
      let kinds =
        List.filter_map
          (fun s ->
            match s.Csrc.Ast.node with
            | Csrc.Ast.Goto l -> Some ("goto:" ^ l)
            | Csrc.Ast.Label l -> Some ("label:" ^ l)
            | _ -> None)
          stmts
      in
      Alcotest.(check (list string)) "goto/label" [ "goto:out"; "label:out" ] kinds
  | _ -> Alcotest.fail "expected one function"

let test_called_functions () =
  let f = parse dm_snippet in
  let ctl =
    List.find_map
      (function Csrc.Ast.D_func fd when fd.fun_name = "ctl_ioctl" -> Some fd | _ -> None)
      f.decls
    |> Option.get
  in
  let calls = Csrc.Ast.called_functions ctl.fun_body in
  Alcotest.(check bool) "calls lookup_ioctl" true (List.mem "lookup_ioctl" calls);
  Alcotest.(check bool) "calls _IOC_NR" true (List.mem "_IOC_NR" calls)

let test_enum_values () =
  let src = {|
enum vdev_state {
  VDEV_IDLE,
  VDEV_RUNNING,
  VDEV_ERROR = 10,
  VDEV_DEAD,
};
|} in
  let idx = index_of src in
  let check name v =
    match Csrc.Index.find_enum_item idx name with
    | Some e -> Alcotest.(check int64) name v (Csrc.Index.eval idx e)
    | None -> Alcotest.fail (name ^ " missing")
  in
  check "VDEV_IDLE" 0L;
  check "VDEV_RUNNING" 1L;
  check "VDEV_ERROR" 10L;
  check "VDEV_DEAD" 11L

let test_unions_and_nested () =
  let src =
    {|
struct inner { u32 a; u32 b; };
union payload {
  struct inner in;
  u64 raw;
  char bytes[16];
};
|}
  in
  let idx = index_of src in
  Alcotest.(check int) "sizeof union" 16
    (Csrc.Index.sizeof idx (Csrc.Ast.Union_ref "payload"))

let test_flexible_array () =
  let src = {|
struct vfio_irq_set {
  u32 argsz;
  u32 count;
  u8 data[];
};
|} in
  let idx = index_of src in
  Alcotest.(check int) "sizeof with flexible member" 8
    (Csrc.Index.sizeof idx (Csrc.Ast.Struct_ref "vfio_irq_set"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_extract_source () =
  let idx = index_of dm_snippet in
  (match Csrc.Index.extract_source idx "ctl_ioctl" with
  | Some src ->
      Alcotest.(check bool) "contains _IOC_NR" true (contains src "_IOC_NR")
  | None -> Alcotest.fail "ctl_ioctl source missing");
  match Csrc.Index.extract_source idx "dm_ioctl" with
  | Some src ->
      Alcotest.(check bool) "struct source has data_size" true (contains src "data_size")
  | None -> Alcotest.fail "dm_ioctl source missing"

let qcheck_roundtrip_ints =
  QCheck.Test.make ~name:"int literal lex roundtrip" ~count:200
    QCheck.(int_bound 0xffffff)
    (fun n ->
      let src = Printf.sprintf "int x = %d;" n in
      let r = Csrc.Lexer.lex src in
      match Array.to_list r.tokens |> List.map (fun s -> s.Csrc.Token.tok) with
      | [ Csrc.Token.Kw_int; Csrc.Token.Ident "x"; Csrc.Token.Assign; Csrc.Token.Int_lit v; Csrc.Token.Semi; Csrc.Token.Eof ] ->
          Int64.to_int v = n
      | _ -> false)

let () =
  Alcotest.run "csrc"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "char and string" `Quick test_lex_char_and_string;
          Alcotest.test_case "suffixes" `Quick test_lex_suffixes;
          QCheck_alcotest.to_alcotest qcheck_roundtrip_ints;
        ] );
      ( "parser",
        [
          Alcotest.test_case "dm snippet" `Quick test_parse_dm;
          Alcotest.test_case "fields and comments" `Quick test_struct_fields_and_comments;
          Alcotest.test_case "switch" `Quick test_switch_parse;
          Alcotest.test_case "goto and labels" `Quick test_goto_and_labels;
          Alcotest.test_case "called functions" `Quick test_called_functions;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
        ] );
      ( "index",
        [
          Alcotest.test_case "macro eval" `Quick test_macro_eval;
          Alcotest.test_case "string macro concat" `Quick test_string_macro_concat;
          Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "ioc nr" `Quick test_ioc_nr;
          Alcotest.test_case "enum values" `Quick test_enum_values;
          Alcotest.test_case "unions" `Quick test_unions_and_nested;
          Alcotest.test_case "flexible array" `Quick test_flexible_array;
          Alcotest.test_case "extract source" `Quick test_extract_source;
        ] );
    ]
