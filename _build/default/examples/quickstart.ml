(** Quickstart: generate a syscall specification for one driver and fuzz
    it, end to end.

    Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a module from the synthetic kernel corpus. *)
  let entry = Corpus.Registry.find_exn "btrfs_control" in
  Printf.printf "Module: %s (device %s)\n\n" entry.name (List.hd entry.gt.gt_paths);

  (* 2. Boot a virtual kernel containing just that module. *)
  let machine = Vkernel.Machine.boot [ entry ] in
  let kernel = machine.Vkernel.Machine.index in

  (* 3. Create the analysis LLM (deterministic oracle, GPT-4 profile)
        and run the KernelGPT pipeline: extraction, iterative identifier
        deduction, type recovery, dependency analysis, validation and
        repair. *)
  let oracle = Oracle.create ~profile:Profile.gpt4 ~knowledge:kernel () in
  let outcome = Kernelgpt.Pipeline.run ~oracle ~kernel entry in
  let spec =
    match outcome.o_spec with
    | Some s -> s
    | None -> failwith "specification generation failed"
  in
  Printf.printf "Generated specification (valid=%b, %d oracle queries):\n\n%s\n"
    outcome.o_valid outcome.o_queries
    (Syzlang.Printer.spec_str spec);

  (* 4. Fuzz the module with the generated specification. *)
  let result = Fuzzer.Campaign.run ~seed:42 ~budget:20_000 ~machine spec in
  Printf.printf "Fuzzing: %d executions, %d statements covered\n" result.executions
    (Fuzzer.Campaign.total_coverage result);
  match Fuzzer.Campaign.crash_titles result with
  | [] -> print_endline "No crashes found (try a bigger budget)."
  | titles ->
      print_endline "Crashes found:";
      List.iter (Printf.printf "  - %s\n") titles
