(** A whole-kernel fuzzing campaign comparing the three specification
    suites of the paper's Table 3: hand-written Syzkaller descriptions,
    Syzkaller + SyzDescribe, and Syzkaller + KernelGPT.

    Run with:  dune exec examples/fuzz_campaign.exe *)

let () =
  Printf.printf "Booting the synthetic kernel (%d loaded handlers)...\n%!"
    (List.length (Corpus.Registry.loaded ()));
  let entries = Corpus.Registry.loaded () in
  let machine = Vkernel.Machine.boot entries in
  let kernel = machine.Vkernel.Machine.index in

  (* Suite 1: the manual specs shipped with the corpus. *)
  let syzkaller = Baseline.Syzkaller_specs.suite entries in

  (* Suite 2: + SyzDescribe output for every driver it supports. *)
  let sd_specs =
    List.filter_map (fun e -> (Baseline.Syzdescribe.run e).sd_spec) entries
  in
  let syzdescribe =
    Syzlang.Merge.merge_all ~name:"syzkaller+syzdescribe" (syzkaller :: sd_specs)
  in

  (* Suite 3: + KernelGPT output for the under-described handlers. *)
  let oracle = Oracle.create ~profile:Profile.gpt4 ~knowledge:kernel () in
  let kg_specs =
    List.filter_map
      (fun e ->
        if Baseline.Syzkaller_specs.is_incomplete e then
          match Kernelgpt.Pipeline.run ~oracle ~kernel e with
          | { o_valid = true; o_spec = Some s; _ } -> Some s
          | _ -> None
        else None)
      entries
  in
  Printf.printf "KernelGPT generated %d specifications (%d oracle queries).\n%!"
    (List.length kg_specs) oracle.Oracle.queries;
  let kernelgpt =
    Syzlang.Merge.merge_all ~name:"syzkaller+kernelgpt" (syzkaller :: kg_specs)
  in

  let budget = 8000 in
  let fuzz name spec =
    let t0 = Unix.gettimeofday () in
    let res = Fuzzer.Campaign.run ~seed:11 ~budget ~machine spec in
    Printf.printf "%-26s cov=%5d crashes=%d (%d syscalls, %.1fs)\n%!" name
      (Fuzzer.Campaign.total_coverage res)
      (Hashtbl.length res.crashes)
      (Syzlang.Ast.count_syscalls spec)
      (Unix.gettimeofday () -. t0);
    res
  in
  Printf.printf "\nFuzzing %d executions per suite:\n" budget;
  let base = fuzz "Syzkaller" syzkaller in
  let _ = fuzz "Syzkaller + SyzDescribe" syzdescribe in
  let kg = fuzz "Syzkaller + KernelGPT" kernelgpt in
  let unique =
    Hashtbl.fold
      (fun sid () acc -> if Hashtbl.mem base.coverage sid then acc else acc + 1)
      kg.coverage 0
  in
  Printf.printf "\nKernelGPT adds %d statements beyond plain Syzkaller.\n" unique;
  print_endline "Crashes only the KernelGPT suite reached:";
  List.iter
    (fun t -> if not (Hashtbl.mem base.crashes t) then Printf.printf "  - %s\n" t)
    (Fuzzer.Campaign.crash_titles kg)
