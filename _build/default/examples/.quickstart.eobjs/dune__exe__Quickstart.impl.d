examples/quickstart.ml: Corpus Fuzzer Kernelgpt List Oracle Printf Profile Syzlang Vkernel
