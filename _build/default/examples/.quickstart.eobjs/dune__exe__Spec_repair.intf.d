examples/spec_repair.mli:
