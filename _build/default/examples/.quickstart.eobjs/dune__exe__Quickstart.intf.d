examples/quickstart.mli:
