examples/spec_repair.ml: Corpus Kernelgpt List Option Oracle Printf Profile Prompt String Syzlang Vkernel
