examples/device_mapper_case_study.ml: Baseline Corpus Csrc Fuzzer Hashtbl Kernelgpt List Oracle Printf Profile String Syzlang Vkernel
