examples/fuzz_campaign.ml: Baseline Corpus Fuzzer Hashtbl Kernelgpt List Oracle Printf Profile Syzlang Unix Vkernel
