(** The paper's running example (Figure 2): the device-mapper driver.

    Shows why the device mapper defeats rule-based static analysis —
    the [.nodename] registration field and the [_IOC_NR] command rewrite
    — by generating specifications with both SyzDescribe and KernelGPT
    and executing each against the virtual kernel.

    Run with:  dune exec examples/device_mapper_case_study.exe *)

let line = String.make 72 '-'

let () =
  let entry = Corpus.Registry.find_exn "dm" in
  let machine = Vkernel.Machine.boot [ entry ] in
  let kernel = machine.Vkernel.Machine.index in

  print_endline line;
  print_endline "The registration source (Figure 2a/2b):";
  print_endline line;
  let midx = Kernelgpt.Extractor.module_index entry.source in
  (match Csrc.Index.extract_source midx "_ctl_fops" with
  | Some s -> print_endline s
  | None -> ());
  (match Csrc.Index.extract_source midx "_dm_misc" with
  | Some s -> print_endline s
  | None -> ());

  (* --- SyzDescribe --- *)
  print_endline line;
  print_endline "SyzDescribe (static rules — Figure 2c):";
  print_endline line;
  (match (Baseline.Syzdescribe.run entry).sd_spec with
  | Some spec ->
      let text = Syzlang.Printer.spec_str spec in
      (* print only the head: the wrong device name and raw command values *)
      String.split_on_char '\n' text
      |> List.filteri (fun i _ -> i < 6)
      |> List.iter print_endline;
      print_endline "...";
      let res = Fuzzer.Campaign.run ~seed:7 ~budget:10_000 ~machine spec in
      Printf.printf
        "\n=> wrong device name (/dev/device-mapper) and raw _IOC_NR values:\n\
         \   coverage %d, crashes %d\n"
        (Fuzzer.Campaign.total_coverage res)
        (Hashtbl.length res.crashes)
  | None -> print_endline "(no spec)");

  (* --- KernelGPT --- *)
  print_endline line;
  print_endline "KernelGPT (iterative LLM analysis — Figure 2d):";
  print_endline line;
  let oracle = Oracle.create ~profile:Profile.gpt4 ~knowledge:kernel () in
  let out = Kernelgpt.Pipeline.run ~oracle ~kernel entry in
  (match out.o_spec with
  | Some spec ->
      let text = Syzlang.Printer.spec_str spec in
      String.split_on_char '\n' text
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter print_endline;
      print_endline "...";
      Printf.printf "\n(repaired after validation: %b)\n" out.o_repaired;
      let res = Fuzzer.Campaign.run ~seed:7 ~budget:60_000 ~machine spec in
      Printf.printf
        "=> correct nodename path and encoded commands: coverage %d, crashes:\n"
        (Fuzzer.Campaign.total_coverage res);
      List.iter (Printf.printf "   - %s\n") (Fuzzer.Campaign.crash_titles res)
  | None -> print_endline "(no spec)");
  print_endline line;
  print_endline
    "The two dm CVEs of Table 4 (CVE-2024-23851, CVE-2023-52429) are only\n\
     reachable through the KernelGPT specification."
