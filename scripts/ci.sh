#!/bin/sh
# CI: build, run the full test suite, then check the --jobs determinism
# contract — a parallel run of a quick experiment must print tables
# byte-identical to the sequential run.
#
# Usage: scripts/ci.sh  (from the repository root)
set -eu

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== parallel-vs-sequential equivalence (table3, quick) =="
# Wall-clock lines ("Booting...", "(N loaded handlers; ...s)", "Total
# experiment time") are not run-to-run deterministic; everything else —
# every table row and summary number — must match exactly. The pool's
# own report goes to stderr and never pollutes stdout.
filter() {
  grep -v -e '^Booting synthetic kernel' \
          -e 'loaded handlers;' \
          -e '^Total experiment time:'
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

dune exec --no-build bench/main.exe -- --exp table3 --jobs 1 2>/dev/null | filter > "$tmp/seq.out"
dune exec --no-build bench/main.exe -- --exp table3 --jobs 4 2>/dev/null | filter > "$tmp/par.out"

if ! diff -u "$tmp/seq.out" "$tmp/par.out"; then
  echo "FAIL: --jobs 4 output differs from sequential run" >&2
  exit 1
fi
echo "OK: --jobs 4 table3 output is byte-identical to sequential"

echo "== traced run: stdout unchanged, JSONL valid =="
# Tracing and metrics must not leak into stdout, and the emitted trace
# must parse and cover every major span kind.
dune exec --no-build bench/main.exe -- --exp table3 --jobs 4 \
  --trace "$tmp/trace.jsonl" --metrics 2>"$tmp/traced.err" | filter > "$tmp/traced.out"

if ! diff -u "$tmp/seq.out" "$tmp/traced.out"; then
  echo "FAIL: --trace/--metrics changed stdout" >&2
  exit 1
fi
echo "OK: traced --jobs 4 stdout is byte-identical to sequential untraced"

if ! grep -q '^\[metrics\] oracle\.queries' "$tmp/traced.err"; then
  echo "FAIL: no metrics summary on stderr" >&2
  exit 1
fi

dune exec --no-build bin/kernelgpt_cli.exe -- trace "$tmp/trace.jsonl" \
  --expect pipeline --expect pipeline.stage --expect oracle.query \
  --expect pool.run --expect pool.task --expect fuzz.campaign
echo "OK: trace JSONL parses and contains the expected span kinds"

echo "== CI green =="
