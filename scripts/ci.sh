#!/bin/sh
# CI: build, run the full test suite, then check the --jobs determinism
# contract — a parallel run of a quick experiment must print tables
# byte-identical to the sequential run.
#
# Usage: scripts/ci.sh  (from the repository root)
set -eu

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== parallel-vs-sequential equivalence (table3, quick) =="
# Wall-clock lines ("Booting...", "(N loaded handlers; ...s)", "Total
# experiment time") are not run-to-run deterministic; everything else —
# every table row and summary number — must match exactly. The pool's
# own report goes to stderr and never pollutes stdout.
filter() {
  grep -v -e '^Booting synthetic kernel' \
          -e 'loaded handlers;' \
          -e '^Total experiment time:'
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

dune exec --no-build bench/main.exe -- --exp table3 --jobs 1 2>/dev/null | filter > "$tmp/seq.out"
dune exec --no-build bench/main.exe -- --exp table3 --jobs 4 2>/dev/null | filter > "$tmp/par.out"

if ! diff -u "$tmp/seq.out" "$tmp/par.out"; then
  echo "FAIL: --jobs 4 output differs from sequential run" >&2
  exit 1
fi
echo "OK: --jobs 4 table3 output is byte-identical to sequential"

echo "== traced run: stdout unchanged, JSONL valid =="
# Tracing and metrics must not leak into stdout, and the emitted trace
# must parse and cover every major span kind.
dune exec --no-build bench/main.exe -- --exp table3 --jobs 4 \
  --trace "$tmp/trace.jsonl" --metrics 2>"$tmp/traced.err" | filter > "$tmp/traced.out"

if ! diff -u "$tmp/seq.out" "$tmp/traced.out"; then
  echo "FAIL: --trace/--metrics changed stdout" >&2
  exit 1
fi
echo "OK: traced --jobs 4 stdout is byte-identical to sequential untraced"

if ! grep -q '^\[metrics\] oracle\.queries' "$tmp/traced.err"; then
  echo "FAIL: no metrics summary on stderr" >&2
  exit 1
fi

dune exec --no-build bin/kernelgpt_cli.exe -- trace "$tmp/trace.jsonl" \
  --expect pipeline --expect pipeline.stage --expect oracle.query \
  --expect pool.run --expect pool.task --expect fuzz.campaign
echo "OK: trace JSONL parses and contains the expected span kinds"

echo "== fault injection: recovery at a moderate rate =="
# A 15% fault plan must be fully absorbed by the retry layer: every
# injected fault recovered, zero degraded modules, and the experiment
# tables identical to the un-faulted run (the oracle is deterministic,
# so a recovered query returns exactly what an unfaulted one would).
dune exec --no-build bench/main.exe -- --exp table3 --faults 15 2>/dev/null \
  | filter > "$tmp/f15.out"

if ! grep -q '^All injected transient faults recovered (0 degraded modules' "$tmp/f15.out"; then
  echo "FAIL: --faults 15 did not fully recover" >&2
  grep -A2 '^| TOTAL' "$tmp/f15.out" >&2 || true
  exit 1
fi
if ! grep -Eq '^\| TOTAL +\| +[1-9][0-9]* \|' "$tmp/f15.out"; then
  echo "FAIL: --faults 15 injected no faults at all" >&2
  exit 1
fi
sed -n '/^Table 3/,$p' "$tmp/f15.out" > "$tmp/f15.tables"
sed -n '/^Table 3/,$p' "$tmp/seq.out" > "$tmp/seq.tables"
if ! diff -u "$tmp/seq.tables" "$tmp/f15.tables"; then
  echo "FAIL: recovered --faults 15 tables differ from the un-faulted run" >&2
  exit 1
fi
echo "OK: --faults 15 recovered every fault; tables identical to un-faulted run"

echo "== fault injection: sharding does not change faulted output =="
# Clock/breaker state resets at every module boundary, so even a fault
# rate high enough to trip circuit breakers must print the same tables
# no matter how modules are sharded over workers. (--query-budget is
# the documented exception and is deliberately absent here.)
dune exec --no-build bench/main.exe -- --exp table3 --faults 60:5 --jobs 1 2>/dev/null | filter > "$tmp/f60seq.out"
dune exec --no-build bench/main.exe -- --exp table3 --faults 60:5 --jobs 4 2>/dev/null | filter > "$tmp/f60par.out"
if ! diff -u "$tmp/f60seq.out" "$tmp/f60par.out"; then
  echo "FAIL: --faults 60:5 output depends on --jobs" >&2
  exit 1
fi
echo "OK: --faults 60:5 --jobs 4 output is byte-identical to --jobs 1"

echo "== fault injection: same seed, same run =="
dune exec --no-build bench/main.exe -- --exp table3 --faults 15:7 2>/dev/null | filter > "$tmp/s7a.out"
dune exec --no-build bench/main.exe -- --exp table3 --faults 15:7 2>/dev/null | filter > "$tmp/s7b.out"
if ! diff -u "$tmp/s7a.out" "$tmp/s7b.out"; then
  echo "FAIL: --faults 15:7 is not reproducible" >&2
  exit 1
fi
echo "OK: --faults 15:7 twice produces byte-identical output"

echo "== fault injection off: client is a pass-through =="
# --faults 0 still routes every query through the fault-tolerant client
# (plan set, rate zero), so this catches any accounting or ordering the
# client layer might leak into the pipeline.
# Strip the resilience section (its leading blank line included); the
# rest must match the no-client run exactly.
strip_resilience() {
  awk '
    skip == 1 { if ($0 ~ /^All injected|degraded queries left/) skip = 0; next }
    $0 == "Resilience (oracle fault injection)" { blank = 0; skip = 1; next }
    blank == 1 { print ""; blank = 0 }
    $0 == "" { blank = 1; next }
    { print }
    END { if (blank) print "" }
  '
}
dune exec --no-build bench/main.exe -- --exp table3 --faults 0 2>/dev/null \
  | filter | strip_resilience > "$tmp/f0.out"
if ! diff -u "$tmp/seq.out" "$tmp/f0.out"; then
  echo "FAIL: --faults 0 output differs from a run without the client layer" >&2
  exit 1
fi
echo "OK: --faults 0 output is byte-identical to a run without fault injection"

echo "== checkpoint/resume: interrupted run finishes byte-identical =="
# Run a campaign to completion; run the same campaign stopping at a
# mid-point checkpoint (stdout must stay empty — the resumed run owns
# the report); resume it. The resumed stdout must equal the
# uninterrupted one except for wall-clock timings.
normalize_time() { sed 's/in [0-9.]*s/in Xs/'; }

dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  2>/dev/null | normalize_time > "$tmp/fuzz_full.out"
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --checkpoint "$tmp/ck.jsonl" --stop-after 1400 2>/dev/null > "$tmp/fuzz_stop.out"
if [ -s "$tmp/fuzz_stop.out" ]; then
  echo "FAIL: a stopped campaign wrote to stdout" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --checkpoint "$tmp/ck.jsonl" --resume 2>/dev/null | normalize_time > "$tmp/fuzz_resumed.out"
if ! diff -u "$tmp/fuzz_full.out" "$tmp/fuzz_resumed.out"; then
  echo "FAIL: resumed campaign output differs from the uninterrupted run" >&2
  exit 1
fi
echo "OK: stop at 1400/3000 + --resume matches the uninterrupted run"

echo "== checkpoint corruption: descriptive failure =="
# A truncated checkpoint must fail --resume with a descriptive error
# (and a nonzero exit), and --resume-or-fresh must fall back with a
# warning instead.
head -c 200 "$tmp/ck.jsonl" > "$tmp/ck_trunc.jsonl"
if dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 \
     --checkpoint "$tmp/ck_trunc.jsonl" --resume >/dev/null 2>"$tmp/trunc.err"; then
  echo "FAIL: --resume accepted a truncated checkpoint" >&2
  exit 1
fi
if ! grep -q 'truncated checkpoint' "$tmp/trunc.err"; then
  echo "FAIL: truncated-checkpoint error is not descriptive:" >&2
  cat "$tmp/trunc.err" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 300 --seed 3 \
  --checkpoint "$tmp/ck_trunc.jsonl" --resume-or-fresh >/dev/null 2>"$tmp/fresh.err"
if ! grep -q 'starting fresh' "$tmp/fresh.err"; then
  echo "FAIL: --resume-or-fresh did not fall back to a fresh campaign" >&2
  exit 1
fi
echo "OK: truncation fails --resume descriptively; --resume-or-fresh falls back"

echo "== executor fault injection: deterministic and shard-independent =="
# An --exec-faults plan is a pure hash of the execution index, so the
# supervised tables and resilience summary must be byte-identical
# across --jobs values and across repeated runs.
dune exec --no-build bench/main.exe -- --exp table3 --exec-faults 10:3 --jobs 1 2>/dev/null | filter > "$tmp/ef_seq.out"
dune exec --no-build bench/main.exe -- --exp table3 --exec-faults 10:3 --jobs 4 2>/dev/null | filter > "$tmp/ef_par.out"
if ! diff -u "$tmp/ef_seq.out" "$tmp/ef_par.out"; then
  echo "FAIL: --exec-faults 10:3 output depends on --jobs" >&2
  exit 1
fi
if ! grep -q 'executor reboots' "$tmp/ef_seq.out"; then
  echo "FAIL: --exec-faults 10:3 printed no executor resilience summary" >&2
  exit 1
fi
if ! grep -Eq '[1-9][0-9]* executions lost' "$tmp/ef_seq.out"; then
  echo "FAIL: --exec-faults 10:3 lost no work at all" >&2
  exit 1
fi
echo "OK: --exec-faults 10:3 --jobs 4 output is byte-identical to --jobs 1"

echo "== oracle cache: warm runs are byte-identical and query-free =="
# A cold run populates the cache; warm runs (sequential and sharded)
# must print byte-identical tables while performing ZERO oracle queries
# — every answer replays from the cache, so the warm --metrics registry
# has no oracle.queries counter at all, only cache hits.
dune exec --no-build bench/main.exe -- --exp table3 --jobs 1 \
  --oracle-cache "$tmp/oracle_cache.jsonl" 2>/dev/null | filter > "$tmp/cache_cold.out"
if ! diff -u "$tmp/seq.out" "$tmp/cache_cold.out"; then
  echo "FAIL: --oracle-cache changed the cold run's stdout" >&2
  exit 1
fi
dune exec --no-build bench/main.exe -- --exp table3 --jobs 1 --metrics \
  --oracle-cache "$tmp/oracle_cache.jsonl" 2>"$tmp/cache_warm.err" | filter > "$tmp/cache_warm1.out"
dune exec --no-build bench/main.exe -- --exp table3 --jobs 4 \
  --oracle-cache "$tmp/oracle_cache.jsonl" 2>/dev/null | filter > "$tmp/cache_warm4.out"
if ! diff -u "$tmp/cache_cold.out" "$tmp/cache_warm1.out"; then
  echo "FAIL: warm --jobs 1 run differs from the cold run" >&2
  exit 1
fi
if ! diff -u "$tmp/cache_cold.out" "$tmp/cache_warm4.out"; then
  echo "FAIL: warm --jobs 4 run differs from the cold run" >&2
  exit 1
fi
if grep -q '^\[metrics\] oracle\.queries' "$tmp/cache_warm.err"; then
  echo "FAIL: warm run still performed oracle queries:" >&2
  grep '^\[metrics\] oracle\.' "$tmp/cache_warm.err" >&2
  exit 1
fi
if ! grep -q '^\[metrics\] oracle\.cache\.hits' "$tmp/cache_warm.err"; then
  echo "FAIL: warm run recorded no cache hits" >&2
  exit 1
fi
if ! grep -q '^Oracle cache: .*100\.0% hit rate' "$tmp/cache_warm.err"; then
  echo "FAIL: warm run's stderr summary is not a 100% hit rate:" >&2
  grep '^Oracle cache:' "$tmp/cache_warm.err" >&2 || true
  exit 1
fi
echo "OK: warm cache runs (--jobs 1 and 4) are byte-identical and query-free"

echo "== oracle cache corruption: descriptive failure =="
head -c 120 "$tmp/oracle_cache.jsonl" > "$tmp/oracle_cache_bad.jsonl"
if dune exec --no-build bin/kernelgpt_cli.exe -- generate dm \
     --oracle-cache "$tmp/oracle_cache_bad.jsonl" >/dev/null 2>"$tmp/cache_bad.err"; then
  echo "FAIL: generate accepted a truncated oracle cache" >&2
  exit 1
fi
if ! grep -q 'truncated oracle cache' "$tmp/cache_bad.err"; then
  echo "FAIL: truncated-cache error is not descriptive:" >&2
  cat "$tmp/cache_bad.err" >&2
  exit 1
fi
echo "OK: a truncated oracle cache fails descriptively"

echo "== engine differential: compiled and interpreted are byte-identical =="
# The compiled (jump-table) engine is a pure performance layer: for any
# seed it must generate the same programs, observe the same coverage
# and crashes, and print the same report as the legacy AST-walking
# engine — plain, under executor fault injection, and across a
# checkpoint written by one engine and resumed by the other (the
# engine is a run-time choice, never part of the checkpoint).
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --interpreted 2>/dev/null | normalize_time > "$tmp/fuzz_interp.out"
if ! diff -u "$tmp/fuzz_full.out" "$tmp/fuzz_interp.out"; then
  echo "FAIL: --interpreted fuzz output differs from the compiled engine" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --exec-faults 10:3 2>/dev/null | normalize_time > "$tmp/fuzz_ef_c.out"
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --exec-faults 10:3 --interpreted 2>/dev/null | normalize_time > "$tmp/fuzz_ef_i.out"
if ! diff -u "$tmp/fuzz_ef_c.out" "$tmp/fuzz_ef_i.out"; then
  echo "FAIL: engines diverge under --exec-faults 10:3" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --interpreted --checkpoint "$tmp/ck_engine.jsonl" --stop-after 1400 2>/dev/null >/dev/null
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --checkpoint "$tmp/ck_engine.jsonl" --resume 2>/dev/null | normalize_time > "$tmp/fuzz_xres.out"
if ! diff -u "$tmp/fuzz_full.out" "$tmp/fuzz_xres.out"; then
  echo "FAIL: compiled resume of an interpreted checkpoint diverges" >&2
  exit 1
fi
dune exec --no-build bench/main.exe -- --exp table4 --jobs 1 \
  --bench-out "$tmp/bench_c1.json" 2>/dev/null | filter > "$tmp/t4_c1.out"
dune exec --no-build bench/main.exe -- --exp table4 --jobs 4 \
  --bench-out "$tmp/bench_c4.json" 2>/dev/null | filter > "$tmp/t4_c4.out"
dune exec --no-build bench/main.exe -- --exp table4 --jobs 1 --interpreted \
  --bench-out "$tmp/bench_i1.json" 2>/dev/null | filter > "$tmp/t4_i1.out"
dune exec --no-build bench/main.exe -- --exp table4 --jobs 4 --interpreted \
  --bench-out "$tmp/bench_i4.json" 2>/dev/null | filter > "$tmp/t4_i4.out"
for v in c4 i1 i4; do
  if ! diff -u "$tmp/t4_c1.out" "$tmp/t4_$v.out"; then
    echo "FAIL: table4 stdout ($v) differs across engine/jobs" >&2
    exit 1
  fi
done
echo "OK: both engines are byte-identical (plain, --exec-faults, cross-engine resume, table4 jobs 1/4)"

echo "== stress module: engine differential on the executor stress driver =="
# The stress corpus module (goto loops over top-level labels, a
# six-parameter helper called with 2 and 9 arguments, a parameter
# shadowing a global, implicit locals, high-arity builtins) lives
# outside the population (Registry.extras) and is reachable only by
# name, so running it here cannot perturb any other seeded output.
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  2>/dev/null | normalize_time > "$tmp/stress_c.out"
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  --interpreted 2>/dev/null | normalize_time > "$tmp/stress_i.out"
if ! diff -u "$tmp/stress_c.out" "$tmp/stress_i.out"; then
  echo "FAIL: engines diverge on the stress module" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  --exec-faults 10:3 2>/dev/null | normalize_time > "$tmp/stress_ef_c.out"
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  --exec-faults 10:3 --interpreted 2>/dev/null | normalize_time > "$tmp/stress_ef_i.out"
if ! diff -u "$tmp/stress_ef_c.out" "$tmp/stress_ef_i.out"; then
  echo "FAIL: engines diverge on the stress module under --exec-faults 10:3" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  --interpreted --checkpoint "$tmp/ck_stress.jsonl" --stop-after 1400 2>/dev/null >/dev/null
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz stress --budget 3000 --seed 5 --repro \
  --checkpoint "$tmp/ck_stress.jsonl" --resume 2>/dev/null | normalize_time > "$tmp/stress_xres.out"
if ! diff -u "$tmp/stress_c.out" "$tmp/stress_xres.out"; then
  echo "FAIL: compiled resume of an interpreted stress checkpoint diverges" >&2
  exit 1
fi
echo "OK: stress-module differentials (plain, --exec-faults 10:3, cross-engine resume)"

echo "== BENCH artifact: well-formed JSON with non-zero throughput =="
# Every report run writes a BENCH_*.json throughput artifact. It must
# parse as JSON, carry the engine that produced it, and report a
# strictly positive execution count and execs/sec for the table it ran.
check_bench() {
  file=$1; want_engine=$2
  python3 - "$file" "$want_engine" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["format"] == "kernelgpt-bench" and d["schema"] == 1, "bad format/schema"
assert d["engine"] == sys.argv[2], "engine %r != %r" % (d["engine"], sys.argv[2])
tables = {t["name"]: t for t in d["tables"]}
t4 = tables["table4"]
assert t4["executions"] > 0, "zero executions"
assert t4["execs_per_s"] > 0, "zero execs/sec"
assert d["total_wall_s"] > 0, "zero total wall clock"
EOF
}
for spec in "bench_c1 compiled" "bench_c4 compiled" "bench_i1 interpreted" "bench_i4 interpreted"; do
  set -- $spec
  if ! check_bench "$tmp/$1.json" "$2"; then
    echo "FAIL: BENCH artifact $1.json is malformed" >&2
    exit 1
  fi
done
echo "OK: all four table4 BENCH artifacts are well-formed with non-zero execs/sec"

echo "== BENCH sanity: compiled engine beats interpreted =="
# The compiled engine exists to be faster; a ratio at or below 1.0
# means a regression snuck past the micro-benchmarks.
if ! python3 - "$tmp/bench_c1.json" "$tmp/bench_i1.json" <<'EOF'
import json, sys
c = {t["name"]: t for t in json.load(open(sys.argv[1]))["tables"]}["table4"]["execs_per_s"]
i = {t["name"]: t for t in json.load(open(sys.argv[2]))["tables"]}["table4"]["execs_per_s"]
assert c > i, "compiled %.0f execs/s <= interpreted %.0f execs/s" % (c, i)
print("compiled %.0f execs/s vs interpreted %.0f execs/s (%.2fx)" % (c, i, c / i))
EOF
then
  echo "FAIL: compiled engine is not faster than the interpreted engine" >&2
  exit 1
fi
echo "OK: compiled throughput exceeds interpreted on table4"

echo "== BENCH regression gate: within 0.9x of the committed baseline =="
# The committed BENCH_*_quick.json artifacts record the throughput this
# machine reached when they were last refreshed. A run below 0.9x the
# committed number means an execution-path performance regression (the
# 10% headroom absorbs scheduler noise). Ambient machine load can eat
# that headroom on any single run, so a failing measurement is retried
# on a fresh run, best of three: a real regression fails all three, a
# load spike doesn't. A gate passing well above 1.0x means the
# artifacts are stale and should be refreshed.
check_regression() {
  fresh=$1; committed=$2; label=$3
  python3 - "$fresh" "$committed" "$label" <<'EOF'
import json, sys
fresh = {t["name"]: t for t in json.load(open(sys.argv[1]))["tables"]}["table4"]["execs_per_s"]
committed = {t["name"]: t for t in json.load(open(sys.argv[2]))["tables"]}["table4"]["execs_per_s"]
ratio = fresh / committed
print("%s: %.0f execs/s vs committed %.0f (%.2fx)" % (sys.argv[3], fresh, committed, ratio))
assert ratio >= 0.9, "%s throughput regressed to %.2fx of the committed baseline" % (sys.argv[3], ratio)
EOF
}
gate() {
  first=$1; committed=$2; label=$3; engine_flag=$4
  if check_regression "$first" "$committed" "$label"; then return 0; fi
  for retry in 1 2; do
    echo "retrying $label bench (attempt $((retry + 1))/3, ruling out a load spike)"
    # shellcheck disable=SC2086
    dune exec --no-build bench/main.exe -- --exp table4 --jobs 1 $engine_flag \
      --bench-out "$tmp/bench_retry.json" >/dev/null 2>&1
    if check_regression "$tmp/bench_retry.json" "$committed" "$label"; then return 0; fi
  done
  return 1
}
if ! gate "$tmp/bench_c1.json" BENCH_table4_quick.json compiled ""; then
  echo "FAIL: compiled table4 throughput fell below 0.9x the committed baseline (best of 3)" >&2
  exit 1
fi
if ! gate "$tmp/bench_i1.json" BENCH_table4-interpreted_quick.json interpreted "--interpreted"; then
  echo "FAIL: interpreted table4 throughput fell below 0.9x the committed baseline (best of 3)" >&2
  exit 1
fi
echo "OK: both engines are within 0.9x of their committed BENCH baselines"

echo "== UCB scheduling: stop/resume, shard independence, sched pinning =="
# The UCB scheduler's state (per-slot visit/reward counters, operator
# credit) lives in the checkpoint, so a stopped --sched ucb campaign
# must resume byte-identical to an uninterrupted one; and because picks
# are a pure function of the checkpointed counters (zero RNG draws),
# the report must not depend on --jobs either.
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --sched ucb 2>/dev/null | normalize_time > "$tmp/fuzz_ucb_full.out"
if diff -q "$tmp/fuzz_full.out" "$tmp/fuzz_ucb_full.out" >/dev/null; then
  echo "FAIL: --sched ucb output is identical to uniform (scheduler not wired in?)" >&2
  exit 1
fi
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --sched ucb --checkpoint "$tmp/ck_ucb.jsonl" --stop-after 1400 2>/dev/null >/dev/null
dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
  --sched ucb --checkpoint "$tmp/ck_ucb.jsonl" --resume 2>/dev/null \
  | normalize_time > "$tmp/fuzz_ucb_res.out"
if ! diff -u "$tmp/fuzz_ucb_full.out" "$tmp/fuzz_ucb_res.out"; then
  echo "FAIL: resumed --sched ucb campaign differs from the uninterrupted run" >&2
  exit 1
fi
if dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 --repro \
     --checkpoint "$tmp/ck_ucb.jsonl" --resume >/dev/null 2>"$tmp/sched_mismatch.err"; then
  echo "FAIL: a uniform resume accepted a --sched ucb checkpoint" >&2
  exit 1
fi
if ! grep -q 'checkpoint was taken with --sched ucb' "$tmp/sched_mismatch.err"; then
  echo "FAIL: sched-mismatch error is not descriptive:" >&2
  cat "$tmp/sched_mismatch.err" >&2
  exit 1
fi
dune exec --no-build bench/main.exe -- --exp table4 --sched ucb --jobs 1 \
  --bench-out "$tmp/bench_u1.json" 2>/dev/null | filter > "$tmp/t4_u1.out"
dune exec --no-build bench/main.exe -- --exp table4 --sched ucb --jobs 4 \
  --bench-out "$tmp/bench_u4.json" 2>/dev/null | filter > "$tmp/t4_u4.out"
if ! diff -u "$tmp/t4_u1.out" "$tmp/t4_u4.out"; then
  echo "FAIL: table4 --sched ucb stdout depends on --jobs" >&2
  exit 1
fi
echo "OK: --sched ucb stop/resume matches, rejects uniform resume, jobs 1/4 identical"

echo "== checkpoint version skew: descriptive rejection =="
# A checkpoint from an older format (version 1: no scheduler state)
# must be refused with an error that names both versions — never
# misread as corruption or silently half-loaded.
python3 - "$tmp/ck_ucb.jsonl" "$tmp/ck_v1.jsonl" <<'EOF'
import sys
# program payloads can hold raw non-UTF-8 bytes, so stay binary throughout
lines = [l for l in open(sys.argv[1], "rb").read().split(b"\n") if l]
body_lines = lines[:-1]  # drop the checksum record
assert b'"version":2' in body_lines[0], b"unexpected header: " + body_lines[0]
body_lines[0] = body_lines[0].replace(b'"version":2', b'"version":1')
body = b"\n".join(body_lines) + b"\n"
h = 0xcbf29ce484222325
for c in body:
    h = ((h ^ c) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
open(sys.argv[2], "wb").write(body + b'{"checksum":"fnv1a64:%016x"}\n' % h)
EOF
if dune exec --no-build bin/kernelgpt_cli.exe -- fuzz dm --budget 3000 --seed 3 \
     --checkpoint "$tmp/ck_v1.jsonl" --resume >/dev/null 2>"$tmp/skew.err"; then
  echo "FAIL: --resume accepted a version-1 checkpoint" >&2
  exit 1
fi
if ! grep -q 'unsupported checkpoint version 1 (this build reads version 2)' "$tmp/skew.err"; then
  echo "FAIL: version-skew error is not descriptive:" >&2
  cat "$tmp/skew.err" >&2
  exit 1
fi
echo "OK: a version-1 checkpoint is rejected naming both versions"

echo "== pool fault injection: deterministic recovery, pass-through, quarantine =="
# Worker-pool faults fire on a pure hash of (seed, label, attempt), so a
# plan's stdout — retry counts, quarantine counts, degraded rows — must
# be byte-identical for any --jobs. A fully-recovered plan must print
# the very tables of an unfaulted run (plus its own resilience section),
# and a rate-100 plan must degrade rows instead of crashing the run.
strip_pool_resilience() {
  awk '
    skip == 1 { if ($0 ~ /^All injected pool faults|quarantined task\(s\) left/) skip = 0; next }
    $0 == "Resilience (worker pool fault injection)" { blank = 0; skip = 1; next }
    blank == 1 { print ""; blank = 0 }
    $0 == "" { blank = 1; next }
    { print }
    END { if (blank) print "" }
  '
}
dune exec --no-build bench/main.exe -- --exp table3 --pool-faults 15:7 --jobs 1 2>/dev/null | filter > "$tmp/pf_seq.out"
dune exec --no-build bench/main.exe -- --exp table3 --pool-faults 15:7 --jobs 4 2>/dev/null | filter > "$tmp/pf_par.out"
if ! diff -u "$tmp/pf_seq.out" "$tmp/pf_par.out"; then
  echo "FAIL: --pool-faults 15:7 output depends on --jobs" >&2
  exit 1
fi
if ! grep -Eq '^[1-9][0-9]* injected worker faults' "$tmp/pf_seq.out"; then
  echo "FAIL: --pool-faults 15:7 injected no worker faults at all" >&2
  exit 1
fi
if ! grep -q '^All injected pool faults recovered within the retry budget' "$tmp/pf_seq.out"; then
  echo "FAIL: --pool-faults 15:7 did not fully recover" >&2
  grep 'quarantined' "$tmp/pf_seq.out" >&2 || true
  exit 1
fi
strip_pool_resilience < "$tmp/pf_seq.out" > "$tmp/pf_strip.out"
if ! diff -u "$tmp/seq.out" "$tmp/pf_strip.out"; then
  echo "FAIL: recovered --pool-faults 15:7 tables differ from the un-faulted run" >&2
  exit 1
fi
dune exec --no-build bench/main.exe -- --exp table3 --pool-faults 0 2>/dev/null \
  | filter | strip_pool_resilience > "$tmp/pf0.out"
if ! diff -u "$tmp/seq.out" "$tmp/pf0.out"; then
  echo "FAIL: --pool-faults 0 output differs from a run without pool fault injection" >&2
  exit 1
fi
if ! dune exec --no-build bench/main.exe -- --exp table3 --pool-faults 100:3 --jobs 4 \
     --metrics 2>"$tmp/pfq.err" | filter > "$tmp/pfq.out"; then
  echo "FAIL: a rate-100 pool fault plan crashed the run instead of degrading it" >&2
  exit 1
fi
if ! grep -q '\[degraded .*/.* reps\]' "$tmp/pfq.out"; then
  echo "FAIL: quarantined campaigns did not render as degraded rows" >&2
  exit 1
fi
if ! grep -Eq 'quarantined task\(s\) left [1-9][0-9]* degraded table row' "$tmp/pfq.out"; then
  echo "FAIL: quarantine summary missing from the pool resilience section" >&2
  exit 1
fi
if ! grep -Eq '^\[metrics\] pool\.quarantined +[1-9]' "$tmp/pfq.err"; then
  echo "FAIL: no pool.quarantined metric on stderr" >&2
  grep '^\[metrics\] pool\.' "$tmp/pfq.err" >&2 || true
  exit 1
fi
echo "OK: pool faults recover byte-identically (jobs 1/4), rate 0 passes through, rate 100 degrades"

echo "== CI green =="
