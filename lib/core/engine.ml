(** Algorithm 1 — LLM-guided iterative analysis.

    Each stage starts from a set of target definitions, prompts the
    oracle with their source, and recurses on whatever the oracle marks
    [UNKNOWN], up to [max_iter] rounds. The visited set prevents
    re-analysis; everything is fully automated. *)

let max_iter = 5

type stage_stats = { mutable iterations : int; mutable analyzed : int }

let new_stats () = { iterations = 0; analyzed = 0 }

(** Identifier deduction (§3.1.1): follow dispatched functions until the
    command values and argument types are known. A degraded query (the
    fault-tolerant client gave up) skips that target: the stage keeps
    every identifier it already has. *)
let identifier_stage ~(client : Client.t) ~(module_index : Csrc.Index.t)
    ~(handler_fn : string) ~(stats : stage_stats) : Prompt.ident list =
  Obs.with_span
    ~attrs:(fun () -> [ ("fn", Obs.Json.Str handler_fn) ])
    ~kind:"pipeline.stage" "identifier"
  @@ fun () ->
  let idents = ref [] in
  let visited = Hashtbl.create 8 in
  let rec go step targets =
    if step > max_iter || targets = [] then ()
    else begin
      stats.iterations <- stats.iterations + 1;
      let next =
        List.concat_map
          (fun (fn, usage) ->
            if Hashtbl.mem visited fn then []
            else begin
              Hashtbl.replace visited fn ();
              match Extractor.snippet module_index fn with
              | None -> []
              | Some snip ->
                  stats.analyzed <- stats.analyzed + 1;
                  match
                    Client.query client
                      {
                        Prompt.task = Prompt.Identifier_deduction { handler_fn = fn };
                        (* the module's own #defines ride along so command
                           macros resolve against the right header *)
                        snippets = [ snip; Extractor.module_macros_snippet module_index ];
                        usage;
                      }
                  with
                  | None -> []
                  | Some resp ->
                      idents := List.rev_append resp.Prompt.r_idents !idents;
                      List.map
                        (fun (u : Prompt.unknown) -> (u.u_name, [ u.u_usage ]))
                        resp.r_unknown
            end)
          targets
      in
      go (step + 1) next
    end
  in
  go 1 [ (handler_fn, []) ];
  (* deduplicate, keeping handler source order: dispatch order usually is
     setup order (create before load), which downstream program
     generation exploits *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (i : Prompt.ident) ->
      if Hashtbl.mem seen i.id_cmd then false
      else begin
        Hashtbl.replace seen i.id_cmd ();
        true
      end)
    (List.rev !idents)

(** Type recovery (§3.1.2): translate argument structs, chasing nested
    types marked unknown. *)
let type_stage ~(client : Client.t) ~(module_index : Csrc.Index.t)
    ~(type_names : string list) ~(stats : stage_stats) : Syzlang.Ast.comp_def list =
  Obs.with_span
    ~attrs:(fun () -> [ ("targets", Obs.Json.Int (List.length type_names)) ])
    ~kind:"pipeline.stage" "type"
  @@ fun () ->
  let types = ref [] in
  let visited = Hashtbl.create 8 in
  let rec go step targets =
    if step > max_iter || targets = [] then ()
    else begin
      stats.iterations <- stats.iterations + 1;
      let next =
        List.concat_map
          (fun tn ->
            if Hashtbl.mem visited tn then []
            else begin
              Hashtbl.replace visited tn ();
              match Extractor.snippet module_index tn with
              | None -> []
              | Some snip ->
                  stats.analyzed <- stats.analyzed + 1;
                  match
                    Client.query client
                      {
                        Prompt.task = Prompt.Type_recovery { type_name = tn };
                        snippets = [ snip ];
                        usage = [];
                      }
                  with
                  | None -> []
                  | Some resp ->
                      types := resp.Prompt.r_types @ !types;
                      resp.Prompt.r_nested_types
            end)
          targets
      in
      go (step + 1) next
    end
  in
  go 1 type_names;
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (c : Syzlang.Ast.comp_def) ->
      if Hashtbl.mem seen c.comp_name then false
      else begin
        Hashtbl.replace seen c.comp_name ();
        true
      end)
    (List.rev !types)

(** Dependency analysis (§3.1.3): present the handler and the functions
    it reaches, and let the oracle spot resource-producing commands. *)
let dependency_stage ~(client : Client.t) ~(module_index : Csrc.Index.t)
    ~(handler_fn : string) ~(stats : stage_stats) : Prompt.dep list =
  Obs.with_span
    ~attrs:(fun () -> [ ("fn", Obs.Json.Str handler_fn) ])
    ~kind:"pipeline.stage" "dependency"
  @@ fun () ->
  stats.iterations <- stats.iterations + 1;
  let fns = Extractor.call_closure module_index handler_fn ~depth:3 in
  let snippets = List.filter_map (Extractor.snippet module_index) fns in
  stats.analyzed <- stats.analyzed + List.length snippets;
  match
    Client.query client
      { Prompt.task = Prompt.Dependency_analysis { handler_fn }; snippets; usage = [] }
  with
  | None -> []
  | Some resp -> resp.Prompt.r_deps

(** Device-name inference for the registration symbol. *)
let device_stage ~(client : Client.t) ~(module_index : Csrc.Index.t)
    ~(reg_symbol : string) : string option =
  Obs.with_span
    ~attrs:(fun () -> [ ("symbol", Obs.Json.Str reg_symbol) ])
    ~kind:"pipeline.stage" "device"
  @@ fun () ->
  let snippets = List.filter_map (Extractor.snippet module_index) [ reg_symbol ] in
  match
    Client.query client
      { Prompt.task = Prompt.Device_name { reg_symbol }; snippets; usage = [] }
  with
  | None -> None
  | Some resp -> (
      match resp.Prompt.r_device_paths with p :: _ -> Some p | [] -> None)

(** Socket-triple inference for a proto_ops symbol. *)
let socket_stage ~(client : Client.t) ~(module_index : Csrc.Index.t)
    ~(ops_symbol : string) : (int * int * int) option =
  Obs.with_span
    ~attrs:(fun () -> [ ("symbol", Obs.Json.Str ops_symbol) ])
    ~kind:"pipeline.stage" "socket"
  @@ fun () ->
  let snippets =
    List.filter_map (Extractor.snippet module_index) [ ops_symbol ]
    @ [ Extractor.module_macros_snippet module_index ]
  in
  match
    Client.query client
      { Prompt.task = Prompt.Socket_triple { ops_symbol }; snippets; usage = [] }
  with
  | None -> None
  | Some resp -> resp.Prompt.r_socket_triple

(** §5.2.3 ablation: all related code in one prompt, one query. *)
let all_in_one ~(client : Client.t) ~(module_index : Csrc.Index.t) ~(handler_fn : string) :
    Prompt.ident list * Syzlang.Ast.comp_def list * Prompt.dep list =
  Obs.with_span
    ~attrs:(fun () -> [ ("fn", Obs.Json.Str handler_fn) ])
    ~kind:"pipeline.stage" "all-in-one"
  @@ fun () ->
  let fns = Extractor.call_closure module_index handler_fn ~depth:4 in
  (* include every struct any of those functions reference, plus their
     nested structs — everything, as the ablation prescribes *)
  let structs =
    List.concat_map
      (fun fn ->
        match Csrc.Index.find_function module_index fn with
        | Some fd ->
            List.filter_map
              (fun (s : Csrc.Ast.stmt) ->
                match s.Csrc.Ast.node with
                | Csrc.Ast.Decl_stmt (Csrc.Ast.Struct_ref sn, _, _) -> Some sn
                | _ -> None)
              (Csrc.Ast.stmts_of_body fd.fun_body)
        | None -> [])
      fns
    |> List.sort_uniq String.compare
  in
  let nested =
    List.concat_map
      (fun sn ->
        match Csrc.Index.find_composite module_index sn with
        | Some cd ->
            List.filter_map
              (fun (f : Csrc.Ast.field) ->
                match f.field_type with
                | Csrc.Ast.Struct_ref n | Csrc.Ast.Union_ref n
                | Csrc.Ast.Array (Csrc.Ast.Struct_ref n, _) ->
                    Some n
                | _ -> None)
              cd.fields
        | None -> [])
      structs
  in
  let names = fns @ structs @ nested |> List.sort_uniq String.compare in
  let snippets = List.filter_map (Extractor.snippet module_index) names in
  match
    Client.query client
      { Prompt.task = Prompt.All_in_one { handler_fn }; snippets; usage = [] }
  with
  | None -> ([], [], [])
  | Some resp -> (resp.Prompt.r_idents, resp.Prompt.r_types, resp.Prompt.r_deps)
