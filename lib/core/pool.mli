(** Fault-isolating work-stealing pool on OCaml 5 [Domain]s.

    The report runner uses this to shard independent experiment tasks
    (driver/socket campaigns, seed repetitions, ablation cells) across
    cores. Results come back as an array in task-submission order, so
    callers can merge them deterministically: a run with [jobs] > 1 must
    produce byte-identical tables to the sequential run.

    Scheduling is work-stealing: every worker owns a deque seeded
    round-robin with task indices, pops its own work from the front, and
    steals from the tail of a sibling's deque when it runs dry. Failure
    is isolated per task: an attempt that raises is retried a bounded
    number of times (requeued at the head of the {e next} worker's
    deque, so a different domain picks it up), a task that exhausts its
    retry budget is {e quarantined} — reported as a {!Failed} outcome
    instead of killing the run — and a worker domain whose [init] raises
    dies alone, degrading the pool to the survivors, whose stealing
    drains the dead worker's deque.

    Workers share nothing: any mutable state a task needs (an
    [Oracle.t], a [Vkernel.Machine.t]) must be built by the worker
    itself via [init]. Per-attempt wall-clock timings are accumulated in
    a global, mutex-protected log for the end-of-run speedup report; the
    log is bounded (top slowest kept, aggregate counters stay exact —
    see {!summary.s_timings_dropped}).

    {b Determinism contract.} Task outcomes depend only on the task
    function and the fault plan, never on scheduling: with faults off,
    stdout of any caller is byte-identical for any [jobs]; with a fault
    plan, injected faults are a pure hash of [(seed, label, attempt)],
    so outcomes (and every count derived from them: injections, retries,
    stalls, quarantines) are identical for any [jobs] and across resumed
    runs. The exceptions are {!summary.s_steals}, [s_worker_deaths], and
    [s_flagged] (real stragglers), which depend on actual scheduling —
    they are reported on [stderr]/metrics only, never on stdout. Labels
    must be unique within a run for the fault plan to be well-defined;
    every caller's labels (and the ["task-<i>"] default) are. *)

(** Number of cores the runtime recommends using ([--jobs 0] resolves to
    this). *)
val cpu_count : unit -> int

(** Deterministic, seeded worker-fault injection — the pool twin of
    [--faults] (oracle transport) and [--exec-faults] (executor wedges).
    A plan fires on a pure hash of [(seed, label, attempt)]: the same
    RATE:SEED reproduces the same task crashes and stalls for any
    [jobs] value and across [--resume]. *)
module Faults : sig
  type plan = { rate_pct : int; seed : int }

  val default_seed : int
  val make : ?seed:int -> rate_pct:int -> unit -> plan

  (** Parse ["RATE"] or ["RATE:SEED"] (rate 0-100). *)
  val parse_spec : string -> (plan, string) result

  val spec_to_string : plan -> string

  type kind =
    | Crash  (** the attempt raises {!Injected_fault} instead of running *)
    | Stall
        (** the attempt runs normally but is flagged as a straggler, as
            if it had overrun its deadline *)

  (** Pure decision for one attempt of the task named [label]; [None]
      when the attempt proceeds unharmed. Crashes outnumber stalls 3:1. *)
  val decide : plan -> label:string -> attempt:int -> kind option
end

(** Raised (and caught by the retry machinery) in place of a task
    attempt the fault plan crashed; carries the task label. *)
exception Injected_fault of string

(** Process-wide default fault plan, picked up by every pool run that
    does not pass its own [?faults] — how the [--pool-faults] CLI flag
    reaches the pool. [None] (the initial state) disables injection. *)
val set_faults : Faults.plan option -> unit

val current_faults : unit -> Faults.plan option

(** Process-wide default per-task deadline in seconds, picked up by
    every pool run that does not pass its own [?deadline_s]. The
    watchdog only {e flags} stragglers (metrics + timing log) — domains
    cannot be killed, so an overrunning task keeps its worker. *)
val set_deadline : float option -> unit

val current_deadline : unit -> float option

(** Attempts per task = [retries + 1]. *)
val default_retries : int

type failure = {
  f_exn : exn;  (** the last attempt's exception *)
  f_backtrace : Printexc.raw_backtrace;
  f_attempts : int;  (** attempts consumed (0 if the task never ran) *)
}

(** What one task produced. [Failed] means quarantined: every attempt
    raised (or no surviving worker could run it). *)
type 'a outcome = Ok of 'a | Failed of failure

type timing = {
  tm_label : string;  (** task label, e.g. ["table5:dm:kgpt:rep2"] *)
  tm_worker : int;  (** index of the worker domain that ran it *)
  tm_seconds : float;  (** attempt wall-clock *)
  tm_attempt : int;  (** 0 for the first attempt *)
  tm_ok : bool;  (** whether this attempt succeeded *)
  tm_flagged : bool;  (** straggler: overran the deadline or stalled *)
}

type summary = {
  s_tasks : int;  (** tasks submitted since the last [reset_stats] *)
  s_workers : int;  (** largest pool size used *)
  s_wall_seconds : float;  (** wall-clock spent inside pool runs *)
  s_busy_seconds : float;
      (** sum of per-attempt wall-clocks, failed attempts included *)
  s_steals : int;  (** tasks taken from a sibling's deque (stderr-only) *)
  s_retries : int;  (** failed attempts that were requeued *)
  s_quarantined : int;  (** tasks that exhausted their retry budget *)
  s_worker_deaths : int;  (** workers whose [init] raised (stderr-only) *)
  s_flagged : int;  (** attempts flagged by the deadline watchdog *)
  s_faults_injected : int;  (** injected crashes + stalls *)
  s_stalls : int;  (** injected stalls among them *)
  s_timings_dropped : int;
      (** timing entries evicted from the bounded log; aggregate
          counters above remain exact *)
}

(** [map_outcomes ~jobs ~init ~f items] runs every task to a per-task
    {!outcome}, in input order. Each worker first builds private state
    with [init]; every attempt it executes receives that state. A task
    whose attempt raises is retried up to [retries] more times (default
    {!default_retries}), each retry requeued so another worker can pick
    it up; a task that exhausts the budget comes back as [Failed] with
    the last exception, backtrace, and attempt count. [deadline_s] arms
    the straggler watchdog for this run. [faults] overrides the global
    plan from {!set_faults}. [jobs <= 1] runs sequentially in the
    calling domain (no domain is spawned); the retry/quarantine/fault
    machinery behaves identically, so outcomes match any parallel run. *)
val map_outcomes :
  ?jobs:int ->
  ?label:(int -> 'a -> string) ->
  ?retries:int ->
  ?deadline_s:float ->
  ?faults:Faults.plan ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a array ->
  'b outcome array

(** [map_init] is {!map_outcomes} for callers that need every task to
    succeed: after the pool fully drains (all tasks resolved, retries
    included — no early abort), if any task was quarantined the
    {e lowest-index} quarantined task's exception is re-raised with its
    backtrace. The choice is deterministic: it depends on task indices,
    never on which worker failed first. *)
val map_init :
  ?jobs:int ->
  ?label:(int -> 'a -> string) ->
  ?retries:int ->
  ?deadline_s:float ->
  ?faults:Faults.plan ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a array ->
  'b array

(** [map ~jobs f items] is {!map_init} with unit worker state. *)
val map :
  ?jobs:int ->
  ?label:(int -> 'a -> string) ->
  ?retries:int ->
  ?deadline_s:float ->
  ?faults:Faults.plan ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** Clear the global timing log and resilience counters. *)
val reset_stats : unit -> unit

(** Aggregate of every pool run since the last [reset_stats]. *)
val stats : unit -> summary

(** Per-attempt timings recorded since the last [reset_stats], slowest
    first. At most a bounded number of entries survive (the slowest
    ones); {!summary.s_timings_dropped} counts evictions. *)
val timings : unit -> timing list

(** Print the run summary (tasks, workers, busy vs wall time, speedup,
    and — when any occurred — steals, retries, quarantines, worker
    deaths, and straggler flags) and, with [per_task], the surviving
    per-attempt wall-clocks. The runner sends this to [stderr] so table
    output on [stdout] stays byte-identical to a sequential run. *)
val report : ?per_task:bool -> out_channel -> unit
