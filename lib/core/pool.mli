(** Fixed-size work pool on OCaml 5 [Domain]s.

    The report runner uses this to shard independent experiment tasks
    (driver/socket campaigns, seed repetitions, ablation cells) across
    cores. Results come back as an array in task-submission order, so
    callers can merge them deterministically: a run with [jobs] > 1 must
    produce byte-identical tables to the sequential run.

    Workers share nothing: any mutable state a task needs (an
    [Oracle.t], a [Vkernel.Machine.t]) must be built by the worker
    itself via [init]. Per-task wall-clock timings are accumulated in a
    global, mutex-protected log for the end-of-run speedup report. *)

(** Number of cores the runtime recommends using ([--jobs 0] resolves to
    this). *)
val cpu_count : unit -> int

type timing = {
  tm_label : string;  (** task label, e.g. ["table5:dm:kgpt:rep2"] *)
  tm_worker : int;  (** index of the worker domain that ran it *)
  tm_seconds : float;  (** task wall-clock *)
}

type summary = {
  s_tasks : int;  (** tasks executed since the last [reset_stats] *)
  s_workers : int;  (** largest pool size used *)
  s_wall_seconds : float;  (** wall-clock spent inside pool runs *)
  s_busy_seconds : float;  (** sum of per-task wall-clocks *)
}

(** [map ~jobs f items] applies [f] to every element of [items] on a
    pool of [min jobs (Array.length items)] worker domains and returns
    the results in input order. [jobs <= 1] (the default) runs
    sequentially in the calling domain — no domain is spawned, so
    behavior is exactly that of [Array.map]. If any task raises, the
    first exception is re-raised in the caller after the pool drains. *)
val map :
  ?jobs:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a array -> 'b array

(** [map_init ~jobs ~init ~f items] is [map], except each worker first
    builds private state with [init] and every task it pulls receives
    that state. Use this to give each worker its own machine/oracle.
    With [jobs <= 1], [init] runs once in the calling domain. *)
val map_init :
  ?jobs:int ->
  ?label:(int -> 'a -> string) ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a array ->
  'b array

(** Clear the global timing log. *)
val reset_stats : unit -> unit

(** Aggregate of every pool run since the last [reset_stats]. *)
val stats : unit -> summary

(** Per-task timings recorded since the last [reset_stats], slowest
    first. *)
val timings : unit -> timing list

(** Print the run summary (tasks, workers, busy vs wall time, speedup)
    and, with [per_task], every task's wall-clock. The runner sends this
    to [stderr] so table output on [stdout] stays byte-identical to a
    sequential run. *)
val report : ?per_task:bool -> out_channel -> unit
