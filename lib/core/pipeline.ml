(** End-to-end KernelGPT pipeline for one operation handler:
    extraction → iterative stages → spec synthesis → validation and
    repair (§3). *)

type mode = Iterative | All_in_one

type outcome = {
  o_entry : string;  (** registry key of the module *)
  o_spec : Syzlang.Ast.spec option;
  o_valid : bool;  (** passed validation intact (possibly after repair) *)
  o_usable : bool;
      (** the final spec validates, possibly after pruning descriptions
          that could not be repaired — usable for fuzzing even when not
          counted "valid" *)
  o_direct_valid : bool;  (** passed validation before any repair *)
  o_repaired : bool;  (** repair changed the spec *)
  o_errors : Syzlang.Validate.error list;  (** remaining errors *)
  o_queries : int;
  o_tokens : int;
  o_iterations : int;
  o_faults : int;  (** transport faults injected into this module's queries *)
  o_retries : int;  (** attempts retried after a fault *)
  o_recovered : int;  (** queries that succeeded after ≥ 1 fault *)
  o_degraded : int;  (** queries that never succeeded (partial results) *)
}

let failed_outcome name =
  {
    o_entry = name;
    o_spec = None;
    o_valid = false;
    o_usable = false;
    o_direct_valid = false;
    o_repaired = false;
    o_errors = [];
    o_queries = 0;
    o_tokens = 0;
    o_iterations = 0;
    o_faults = 0;
    o_retries = 0;
    o_recovered = 0;
    o_degraded = 0;
  }

let max_repair_rounds = 3

(** Rounds the repair loop may skip — refund rather than spend — when
    every query in the round degraded; bounds the loop when the oracle
    never comes back. *)
let max_skipped_rounds = 3

(** Validate and, if needed, repair a spec by consulting the oracle with
    the error messages (§3.2). A round in which {e every} repair query
    degraded (the fault-tolerant client gave up on all of them) is
    skipped, not spent: it does not count against [max_repair_rounds],
    and up to [max_skipped_rounds] such rounds are refunded before the
    loop gives up. A round where the oracle did answer but nothing
    improved ends the loop early — it is out of ideas, not out of
    luck. *)
let validate_and_repair ?client ~(oracle : Oracle.t) ~(kernel : Csrc.Index.t)
    (spec : Syzlang.Ast.spec) : Syzlang.Ast.spec * bool * bool * Syzlang.Validate.error list =
  let client = match client with Some c -> c | None -> Client.pass_through oracle in
  let errors0 = Syzlang.Validate.validate ~kernel spec in
  if errors0 = [] then begin
    Obs.Metrics.incr "repair.outcome.direct";
    (spec, true, false, [])
  end
  else begin
    let spec = ref spec in
    let errors = ref errors0 in
    let round = ref 0 in
    let skipped = ref 0 in
    let changed = ref false in
    Obs.with_span
      ~attrs:(fun () ->
        [
          ("errors_initial", Obs.Json.Int (List.length errors0));
          ("errors_final", Obs.Json.Int (List.length !errors));
          ("rounds", Obs.Json.Int !round);
        ])
      ~kind:"pipeline.stage" "validate"
    @@ fun () ->
    while !errors <> [] && !round < max_repair_rounds do
      incr round;
      Obs.Metrics.incr "repair.rounds";
      let errors_before = List.length !errors in
      Obs.with_span
        ~attrs:(fun () ->
          [
            ("errors_before", Obs.Json.Int errors_before);
            ("errors_after", Obs.Json.Int (List.length !errors));
          ])
        ~kind:"repair.round"
        ("round-" ^ string_of_int !round)
      @@ fun () ->
      let progressed = ref false in
      let degraded = ref 0 in
      List.iter
        (fun (e : Syzlang.Validate.error) ->
          let item = Syzlang.Validate.item_to_string e.err_item in
          let description =
            (* the offending description, as text, for the repair prompt *)
            match e.err_item with
            | Syzlang.Validate.In_syscall full -> (
                match
                  List.find_opt
                    (fun c -> Syzlang.Ast.syscall_full_name c = full)
                    !spec.Syzlang.Ast.syscalls
                with
                | Some c -> Syzlang.Printer.syscall_str c
                | None -> full)
            | Syzlang.Validate.In_type tn -> (
                match
                  List.find_opt (fun c -> c.Syzlang.Ast.comp_name = tn) !spec.Syzlang.Ast.types
                with
                | Some c -> Syzlang.Printer.comp_str c
                | None -> tn)
            | Syzlang.Validate.In_flag_set n | Syzlang.Validate.In_resource n -> n
          in
          match
            Client.query client
              {
                Prompt.task = Prompt.Repair { item; description; error = e.err_msg };
                snippets = [];
                usage = [];
              }
          with
          | None -> incr degraded
          | Some resp -> (
              match (resp.Prompt.r_repaired, e.err_ident) with
              | Some good, Some bad ->
                  let next = Syzlang.Rewrite.substitute_name !spec ~bad ~good in
                  if next <> !spec then begin
                    spec := next;
                    progressed := true;
                    changed := true
                  end
              | _ ->
                  (* no fix, or an error that names no identifier (empty
                     struct, bad ioctl shape, ...): nothing to substitute *)
                  ()))
        !errors;
      errors := Syzlang.Validate.validate ~kernel !spec;
      if not !progressed then
        if !degraded = errors_before && !skipped < max_skipped_rounds then begin
          (* every query this round degraded: the oracle was down, not
             out of answers.  Refund the round so the full repair budget
             retries once the client recovers; [max_skipped_rounds]
             keeps the loop finite when it never does *)
          incr skipped;
          decr round;
          Obs.Metrics.incr "repair.skipped_rounds"
        end
        else
          (* at least one query got a real answer and nothing improved
             (or the skip budget is spent): stop retrying *)
          round := max_repair_rounds
    done;
    Obs.Metrics.incr
      (if !errors = [] then "repair.outcome.fixed" else "repair.outcome.failed");
    (!spec, !errors = [], !changed, !errors)
  end

(** Drop the descriptions validation still rejects (what a maintainer
    does with an unrepairable entry before merging the rest). Iterates to
    a fixpoint since removing a type can orphan a syscall. *)
let prune ~(kernel : Csrc.Index.t) (spec : Syzlang.Ast.spec) :
    Syzlang.Ast.spec * Syzlang.Validate.error list =
  let rec go spec rounds =
    let errors = Syzlang.Validate.validate ~kernel spec in
    if errors = [] || rounds = 0 then (spec, errors)
    else begin
      let bad_calls =
        List.filter_map
          (fun (e : Syzlang.Validate.error) ->
            match e.err_item with Syzlang.Validate.In_syscall s -> Some s | _ -> None)
          errors
      in
      let bad_resources =
        List.filter_map
          (fun (e : Syzlang.Validate.error) ->
            match e.err_item with Syzlang.Validate.In_resource r -> Some r | _ -> None)
          errors
      in
      let bad_types =
        List.filter_map
          (fun (e : Syzlang.Validate.error) ->
            match e.err_item with Syzlang.Validate.In_type t -> Some t | _ -> None)
          errors
      in
      let bad_sets =
        List.filter_map
          (fun (e : Syzlang.Validate.error) ->
            match e.err_item with Syzlang.Validate.In_flag_set f -> Some f | _ -> None)
          errors
      in
      let spec =
        {
          spec with
          Syzlang.Ast.syscalls =
            List.filter
              (fun (c : Syzlang.Ast.syscall) ->
                (not (List.mem (Syzlang.Ast.syscall_full_name c) bad_calls))
                (* a syscall returning a pruned resource is orphaned too *)
                && not
                     (match c.Syzlang.Ast.ret with
                     | Some r -> List.mem r bad_resources
                     | None -> false))
              spec.Syzlang.Ast.syscalls;
          resources =
            List.filter
              (fun (r : Syzlang.Ast.resource_def) ->
                not (List.mem r.Syzlang.Ast.res_name bad_resources))
              spec.Syzlang.Ast.resources;
          types =
            List.filter (fun c -> not (List.mem c.Syzlang.Ast.comp_name bad_types)) spec.types;
          flag_sets =
            List.filter (fun f -> not (List.mem f.Syzlang.Ast.set_name bad_sets)) spec.flag_sets;
        }
      in
      go spec (rounds - 1)
    end
  in
  go spec 4

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let ioctl_fn_of (hi : Extractor.handler_info) : string option =
  match List.assoc_opt "unlocked_ioctl" hi.hi_handlers with
  | Some fn -> Some fn
  | None -> List.assoc_opt "ioctl" hi.hi_handlers

(** Stamp an outcome with the client's resilience deltas since [s0] —
    applied to every exit of a module run, failed ones included, so the
    report's fault accounting misses nothing. *)
let resilient ~(client : Client.t) ~(s0 : Client.stats) (o : outcome) : outcome =
  let d = Client.diff (Client.snapshot client) s0 in
  {
    o with
    o_faults = d.Client.s_faults;
    o_retries = d.Client.s_retries;
    o_recovered = d.Client.s_recovered;
    o_degraded = d.Client.s_degraded;
  }

let run_driver ~(mode : mode) ~(client : Client.t) ~(kernel : Csrc.Index.t)
    (entry : Corpus.Types.entry) : outcome =
  let oracle = Client.oracle client in
  let q0 = oracle.Oracle.queries and t0 = oracle.Oracle.prompt_tokens in
  let s0 = Client.snapshot client in
  let resilient = resilient ~client ~s0 in
  let midx, infos =
    Obs.with_span
      ~attrs:(fun () -> [ ("entry", Obs.Json.Str entry.name) ])
      ~kind:"pipeline.stage" "extraction"
    @@ fun () ->
    let midx = Extractor.module_index entry.source in
    (midx, Extractor.extract midx)
  in
  match Extractor.main_handler infos with
  | None -> resilient (failed_outcome entry.name)
  | Some hi -> (
      let stats = Engine.new_stats () in
      let device_path =
        match hi.hi_reg_symbol with
        | Some reg -> Engine.device_stage ~client ~module_index:midx ~reg_symbol:reg
        | None -> None
      in
      match device_path with
      | None -> resilient (failed_outcome entry.name)
      | Some path ->
          let idents, types, deps =
            match (mode, ioctl_fn_of hi) with
            | _, None -> ([], [], [])
            | Iterative, Some ioctl_fn ->
                let idents =
                  Engine.identifier_stage ~client ~module_index:midx ~handler_fn:ioctl_fn ~stats
                in
                let deps =
                  Engine.dependency_stage ~client ~module_index:midx ~handler_fn:ioctl_fn ~stats
                in
                let type_names =
                  List.filter_map (fun (i : Prompt.ident) -> i.id_arg_type) idents
                  |> List.sort_uniq String.compare
                in
                (idents, Engine.type_stage ~client ~module_index:midx ~type_names ~stats, deps)
            | All_in_one, Some ioctl_fn ->
                let idents, types, deps =
                  Engine.all_in_one ~client ~module_index:midx ~handler_fn:ioctl_fn
                in
                stats.Engine.iterations <- 1;
                (idents, types, deps)
          in
          (* dependent handlers (anon-inode fds): analyze their commands *)
          let dep_blocks, dep_types =
            List.fold_left
              (fun (blocks, extra_types) (d : Prompt.dep) ->
                match Extractor.find_handler infos d.dep_ops with
                | None -> (blocks, extra_types)
                | Some dep_hi -> (
                    match ioctl_fn_of dep_hi with
                    | None -> (blocks, extra_types)
                    | Some dep_fn when mode = Iterative ->
                        let dep_idents =
                          Engine.identifier_stage ~client ~module_index:midx ~handler_fn:dep_fn
                            ~stats
                        in
                        let dep_deps =
                          Engine.dependency_stage ~client ~module_index:midx ~handler_fn:dep_fn
                            ~stats
                        in
                        let tn =
                          List.filter_map (fun (i : Prompt.ident) -> i.id_arg_type) dep_idents
                          |> List.sort_uniq String.compare
                        in
                        let tys =
                          Engine.type_stage ~client ~module_index:midx ~type_names:tn ~stats
                        in
                        let block =
                          {
                            Specgen.db_ops = d.dep_ops;
                            db_res = "fd_" ^ entry.name ^ "_" ^ d.dep_ops;
                            db_create_cmd = d.dep_cmd;
                            db_idents = dep_idents;
                          }
                        in
                        (* second-level deps (kvm vcpu) *)
                        let blocks2 =
                          List.filter_map
                            (fun (d2 : Prompt.dep) ->
                              match Extractor.find_handler infos d2.dep_ops with
                              | Some hi2 when d2.dep_ops <> d.dep_ops -> (
                                  match ioctl_fn_of hi2 with
                                  | Some fn2 ->
                                      let ids2 =
                                        Engine.identifier_stage ~client ~module_index:midx
                                          ~handler_fn:fn2 ~stats
                                      in
                                      Some
                                        {
                                          Specgen.db_ops = d2.dep_ops;
                                          db_res = "fd_" ^ entry.name ^ "_" ^ d2.dep_ops;
                                          db_create_cmd = d2.dep_cmd;
                                          db_idents = ids2;
                                        }
                                  | None -> None)
                              | _ -> None)
                            dep_deps
                        in
                        let types2 =
                          List.concat_map
                            (fun b ->
                              let tn =
                                List.filter_map
                                  (fun (i : Prompt.ident) -> i.id_arg_type)
                                  b.Specgen.db_idents
                                |> List.sort_uniq String.compare
                              in
                              Engine.type_stage ~client ~module_index:midx ~type_names:tn ~stats)
                            blocks2
                        in
                        ((block :: blocks2) @ blocks, tys @ types2 @ extra_types)
                    | Some _ -> (blocks, extra_types)))
              ([], []) deps
          in
          let all_types =
            let seen = Hashtbl.create 16 in
            List.filter
              (fun (c : Syzlang.Ast.comp_def) ->
                if Hashtbl.mem seen c.comp_name then false
                else (
                  Hashtbl.replace seen c.comp_name ();
                  true))
              (types @ dep_types)
          in
          (* semantic value constraints on struct fields (version checks
             and the like) become const fields, as real Syzkaller specs
             hand-write them *)
          let all_types =
            match ioctl_fn_of hi with
            | None -> all_types
            | Some ioctl_fn ->
                let fns = Extractor.call_closure midx ioctl_fn ~depth:3 in
                List.map
                  (fun (cd : Syzlang.Ast.comp_def) ->
                    let constraints =
                      Extractor.field_constraints midx fns ~struct_name:cd.comp_name
                    in
                    if constraints = [] then cd
                    else
                      {
                        cd with
                        comp_fields =
                          List.map
                            (fun (f : Syzlang.Ast.field) ->
                              match (List.assoc_opt f.fname constraints, f.ftyp) with
                              | Some c, Syzlang.Ast.Int (w, _) ->
                                  { f with ftyp = Syzlang.Ast.Const (c, w) }
                              | Some c, Syzlang.Ast.Array (Syzlang.Ast.Int (w, _), n) ->
                                  { f with ftyp = Syzlang.Ast.Array (Syzlang.Ast.Const (c, w), n) }
                              | _ -> f)
                            cd.comp_fields;
                      })
                  all_types
          in
          let plain = List.map fst hi.hi_handlers in
          let spec =
            Specgen.driver_spec ~name:entry.name ~path ~idents ~types:all_types
              ~deps:dep_blocks ~plain
          in
          let spec, valid, repaired, errors =
            validate_and_repair ~client ~oracle ~kernel spec
          in
          let spec, errors =
            if valid then (spec, errors)
            else begin
              Obs.Metrics.incr "repair.pruned_specs";
              prune ~kernel spec
            end
          in
          resilient
            {
              o_entry = entry.name;
              o_spec = Some spec;
              o_valid = valid;
              o_usable = errors = [];
              o_direct_valid = (valid && not repaired);
              o_repaired = repaired;
              o_errors = errors;
              o_queries = oracle.Oracle.queries - q0;
              o_tokens = oracle.Oracle.prompt_tokens - t0;
              o_iterations = stats.Engine.iterations;
              o_faults = 0;
              o_retries = 0;
              o_recovered = 0;
              o_degraded = 0;
            })

(* ------------------------------------------------------------------ *)
(* Sockets                                                             *)
(* ------------------------------------------------------------------ *)

let run_socket ~(mode : mode) ~(client : Client.t) ~(kernel : Csrc.Index.t)
    (entry : Corpus.Types.entry) : outcome =
  let oracle = Client.oracle client in
  let q0 = oracle.Oracle.queries and t0 = oracle.Oracle.prompt_tokens in
  let s0 = Client.snapshot client in
  let resilient = resilient ~client ~s0 in
  let midx, infos =
    Obs.with_span
      ~attrs:(fun () -> [ ("entry", Obs.Json.Str entry.name) ])
      ~kind:"pipeline.stage" "extraction"
    @@ fun () ->
    let midx = Extractor.module_index entry.source in
    (midx, Extractor.extract midx)
  in
  match List.find_opt (fun hi -> hi.Extractor.hi_is_socket) infos with
  | None -> resilient (failed_outcome entry.name)
  | Some hi -> (
      let stats = Engine.new_stats () in
      match Engine.socket_stage ~client ~module_index:midx ~ops_symbol:hi.hi_ops_global with
      | None -> resilient (failed_outcome entry.name)
      | Some triple ->
          let handler name = List.assoc_opt name hi.hi_handlers in
          let run_opts fn_opt =
            match (fn_opt, mode) with
            | None, _ -> []
            | Some fn, Iterative ->
                Engine.identifier_stage ~client ~module_index:midx ~handler_fn:fn ~stats
            | Some fn, All_in_one ->
                let ids, _, _ = Engine.all_in_one ~client ~module_index:midx ~handler_fn:fn in
                ids
          in
          let setsockopts = run_opts (handler "setsockopt") in
          let getsockopts = run_opts (handler "getsockopt") in
          let sockaddr =
            List.find_map
              (fun field ->
                match handler field with
                | Some fn ->
                    Extractor.cast_struct_of_param midx fn
                      ~param_names:[ "uaddr"; "addr"; "sa" ]
                | None -> None)
              [ "bind"; "connect" ]
          in
          let msg_control =
            match handler "sendmsg" with
            | Some fn -> (
                match Extractor.msg_control_struct midx fn with
                | Some c -> Some c
                | None ->
                    (* the cast may be in a helper *)
                    List.find_map
                      (fun callee -> Extractor.msg_control_struct midx callee)
                      (Extractor.call_closure midx fn ~depth:2))
            | None -> None
          in
          let sockaddr =
            match sockaddr with
            | Some s -> Some s
            | None -> (
                match handler "sendmsg" with
                | Some fn -> Extractor.msg_name_struct midx fn
                | None -> None)
          in
          let type_names =
            (Option.to_list sockaddr @ Option.to_list msg_control
            @ List.filter_map (fun (i : Prompt.ident) -> i.id_arg_type) (setsockopts @ getsockopts)
            )
            |> List.sort_uniq String.compare
          in
          let types = Engine.type_stage ~client ~module_index:midx ~type_names ~stats in
          (* constrain sockaddr fields the handlers require to be exact
             (family checks): semantically valid values, per §2.1 *)
          let types =
            match sockaddr with
            | None -> types
            | Some s ->
                let fns =
                  List.filter_map handler [ "bind"; "connect"; "sendmsg" ]
                in
                let constraints = Extractor.field_constraints midx fns ~struct_name:s in
                List.map
                  (fun (cd : Syzlang.Ast.comp_def) ->
                    if cd.comp_name <> s then cd
                    else
                      {
                        cd with
                        comp_fields =
                          List.map
                            (fun (f : Syzlang.Ast.field) ->
                              match (List.assoc_opt f.fname constraints, f.ftyp) with
                              | Some c, Syzlang.Ast.Int (w, _) ->
                                  { f with ftyp = Syzlang.Ast.Const (c, w) }
                              | _ -> f)
                            cd.comp_fields;
                      })
                  types
          in
          let sockaddr_size =
            match sockaddr with
            | Some s -> Csrc.Index.sizeof midx (Csrc.Ast.Struct_ref s)
            | None -> 16
          in
          let shape =
            {
              Specgen.sk_triple = triple;
              sk_sockaddr = sockaddr;
              sk_sockaddr_size = sockaddr_size;
              sk_msg_control = msg_control;
              sk_setsockopts = setsockopts;
              sk_getsockopts = getsockopts;
              sk_plain = List.map fst hi.hi_handlers;
            }
          in
          let spec = Specgen.socket_spec ~name:entry.name ~shape ~types in
          let spec, valid, repaired, errors =
            validate_and_repair ~client ~oracle ~kernel spec
          in
          let spec, errors =
            if valid then (spec, errors)
            else begin
              Obs.Metrics.incr "repair.pruned_specs";
              prune ~kernel spec
            end
          in
          resilient
            {
              o_entry = entry.name;
              o_spec = Some spec;
              o_valid = valid;
              o_usable = errors = [];
              o_direct_valid = (valid && not repaired);
              o_repaired = repaired;
              o_errors = errors;
              o_queries = oracle.Oracle.queries - q0;
              o_tokens = oracle.Oracle.prompt_tokens - t0;
              o_iterations = stats.Engine.iterations;
              o_faults = 0;
              o_retries = 0;
              o_recovered = 0;
              o_degraded = 0;
            })

(** Generate a specification for one corpus module. *)
let run ?(mode = Iterative) ?client ~(oracle : Oracle.t) ~(kernel : Csrc.Index.t)
    (entry : Corpus.Types.entry) : outcome =
  let client = match client with Some c -> c | None -> Client.pass_through oracle in
  (* module boundary: drop the client's transient state (virtual clock,
     breaker, consecutive failures) so fault handling depends only on
     this module's own queries — never on which modules this worker
     happened to serve before — keeping sharded fault-injected runs
     byte-identical for any --jobs value *)
  if Client.fault_tolerant client then Client.reset_transients client;
  let o = ref None in
  Obs.with_span
    ~attrs:(fun () ->
      let kind =
        match entry.kind with
        | Corpus.Types.Driver -> "driver"
        | Corpus.Types.Socket -> "socket"
      in
      let valid, usable, queries =
        match !o with
        | Some o -> (o.o_valid, o.o_usable, o.o_queries)
        | None -> (false, false, 0)
      in
      [
        ("module_kind", Obs.Json.Str kind);
        ("valid", Obs.Json.Bool valid);
        ("usable", Obs.Json.Bool usable);
        ("queries", Obs.Json.Int queries);
      ])
    ~kind:"pipeline" entry.name
  @@ fun () ->
  Obs.Metrics.incr "pipeline.runs";
  let outcome =
    match entry.kind with
    | Corpus.Types.Driver -> run_driver ~mode ~client ~kernel entry
    | Corpus.Types.Socket -> run_socket ~mode ~client ~kernel entry
  in
  if outcome.o_valid then Obs.Metrics.incr "pipeline.valid";
  if outcome.o_usable then Obs.Metrics.incr "pipeline.usable";
  if outcome.o_repaired then Obs.Metrics.incr "pipeline.repaired";
  o := Some outcome;
  outcome
