(** Fixed-size work pool on OCaml 5 [Domain]s. See pool.mli.

    Scheduling: workers pull the next task index from a shared atomic
    counter, write the result into that task's slot, and log the task's
    wall-clock through a mutex-protected channel. Slots are disjoint per
    task and [Domain.join] orders every slot write before the caller
    reads, so the merge is race-free and results always come back in
    submission order regardless of completion order. *)

let cpu_count () = Domain.recommended_domain_count ()

type timing = { tm_label : string; tm_worker : int; tm_seconds : float }

type summary = {
  s_tasks : int;
  s_workers : int;
  s_wall_seconds : float;
  s_busy_seconds : float;
}

(* ------------------------------------------------------------------ *)
(* Global accounting (mutex-protected; workers log through it)         *)
(* ------------------------------------------------------------------ *)

let log_mutex = Mutex.create ()
let logged : timing list ref = ref []
let pool_runs : (int * int * float) list ref = ref []  (* tasks, workers, wall *)

let with_log f =
  Mutex.lock log_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock log_mutex) f

let reset_stats () =
  with_log (fun () ->
      logged := [];
      pool_runs := [])

let stats () : summary =
  with_log (fun () ->
      let busy = List.fold_left (fun a t -> a +. t.tm_seconds) 0.0 !logged in
      let tasks, workers, wall =
        List.fold_left
          (fun (t, w, s) (t', w', s') -> (t + t', max w w', s +. s'))
          (0, 0, 0.0) !pool_runs
      in
      { s_tasks = tasks; s_workers = workers; s_wall_seconds = wall; s_busy_seconds = busy })

let timings () : timing list =
  with_log (fun () ->
      List.sort (fun a b -> compare b.tm_seconds a.tm_seconds) !logged)

let report ?(per_task = false) oc =
  let s = stats () in
  if s.s_tasks > 0 then begin
    let speedup = if s.s_wall_seconds > 0.0 then s.s_busy_seconds /. s.s_wall_seconds else 1.0 in
    Printf.fprintf oc
      "[pool] %d tasks on up to %d workers: %.2fs task time in %.2fs wall (%.2fx speedup)\n"
      s.s_tasks s.s_workers s.s_busy_seconds s.s_wall_seconds speedup;
    if per_task then
      List.iter
        (fun t ->
          Printf.fprintf oc "[pool]   %-48s worker %d %9.1f ms\n" t.tm_label t.tm_worker
            (t.tm_seconds *. 1000.0))
        (timings ())
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

let finish_run ~t_start ~workers (timings : timing option array) =
  let wall = Unix.gettimeofday () -. t_start in
  with_log (fun () ->
      pool_runs := (Array.length timings, workers, wall) :: !pool_runs;
      Array.iter (function Some t -> logged := t :: !logged | None -> ()) timings);
  if Obs.metrics_on () then begin
    Obs.Metrics.incr "pool.runs";
    Obs.Metrics.incr ~by:(Array.length timings) "pool.tasks";
    Obs.Metrics.observe "pool.run_wall_s" wall;
    Array.iter
      (function
        | Some t ->
            Obs.Metrics.observe "pool.task_s" t.tm_seconds;
            Obs.Metrics.observe (Printf.sprintf "pool.worker%d.task_s" t.tm_worker)
              t.tm_seconds
        | None -> ())
      timings
  end

let map_init ?(jobs = 1) ?label ~(init : unit -> 'w) ~(f : 'w -> 'a -> 'b)
    (items : 'a array) : 'b array =
  let n = Array.length items in
  if n = 0 then [||]
  else
    (* the pool-run span opens on the calling domain, so its id is
       deterministic; every task span is rooted at <run-id>.<task-index>
       below, independent of worker scheduling *)
    Obs.with_span
      ~attrs:(fun () -> [ ("tasks", Obs.Json.Int n) ])
      ~kind:"pool.run" "pool"
    @@ fun () ->
    let ctx = Obs.current_ctx () in
    let label =
      match label with Some l -> l | None -> fun i _ -> "task-" ^ string_of_int i
    in
    let workers = max 1 (min jobs n) in
    let t_start = Unix.gettimeofday () in
    let results : 'b option array = Array.make n None in
    let times : timing option array = Array.make n None in
    let run_task ~worker st i =
      Obs.with_task_span ~worker ~ctx ~index:i ~kind:"pool.task"
        (fun () -> label i items.(i))
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let r = f st items.(i) in
          times.(i) <-
            Some
              {
                tm_label = label i items.(i);
                tm_worker = worker;
                tm_seconds = Unix.gettimeofday () -. t0;
              };
          results.(i) <- Some r)
    in
    if workers = 1 then begin
      (* sequential fast path: no domain, identical to the historical
         per-item loops *)
      let st = init () in
      for i = 0 to n - 1 do
        run_task ~worker:0 st i
      done;
      finish_run ~t_start ~workers times
    end
    else begin
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let fail e =
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      let worker w () =
        match init () with
        | exception e -> fail e
        | st ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n && Atomic.get failure = None then begin
                (try run_task ~worker:w st i with e -> fail e);
                loop ()
              end
            in
            loop ()
      in
      let domains = List.init workers (fun w -> Domain.spawn (worker w)) in
      List.iter Domain.join domains;
      finish_run ~t_start ~workers times;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end;
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
            (* a slot can only stay empty if a worker died before
               reaching it; name the task so the failure is actionable *)
            failwith
              (Printf.sprintf "Pool.map_init: task %d (%s) produced no result" i
                 (label i items.(i))))
      results

let map ?jobs ?label f items =
  map_init ?jobs ?label ~init:(fun () -> ()) ~f:(fun () x -> f x) items
