(** Fault-isolating work-stealing pool on OCaml 5 [Domain]s. See pool.mli.

    Scheduling: every worker owns a deque seeded round-robin with task
    indices; owners pop from the front, idle workers steal from the
    tail of a sibling's deque. A failed attempt is requeued at the head
    of the {e next} worker's deque (so the retry lands on a different
    domain when one exists); a shared atomic [pending] counter drives
    termination. Result slots are disjoint per task and [Domain.join]
    orders every slot write before the caller reads, so the merge is
    race-free and outcomes come back in submission order regardless of
    completion order. Per-task mutable state ([attempts]) is handed
    between workers through the deque mutexes, which order the failing
    worker's writes before the retrying worker's reads. *)

let cpu_count () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Deterministic worker-fault injection                                 *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  type plan = { rate_pct : int; seed : int }

  let default_seed = 1
  let make ?(seed = default_seed) ~rate_pct () = { rate_pct; seed }

  let parse_spec (s : string) : (plan, string) result =
    let rate_of r =
      match int_of_string_opt r with
      | Some pct when pct >= 0 && pct <= 100 -> Ok pct
      | Some _ -> Error (Printf.sprintf "pool fault rate %s out of range (0-100)" r)
      | None ->
          Error (Printf.sprintf "bad pool fault rate %S (expected RATE or RATE:SEED)" r)
    in
    match String.split_on_char ':' s with
    | [ rate ] -> Result.map (fun pct -> make ~rate_pct:pct ()) (rate_of rate)
    | [ rate; seed ] -> (
        match (rate_of rate, int_of_string_opt seed) with
        | Ok pct, Some seed -> Ok (make ~seed ~rate_pct:pct ())
        | (Error _ as e), _ -> e
        | _, None -> Error (Printf.sprintf "bad pool fault seed %S" seed))
    | _ -> Error (Printf.sprintf "bad pool fault spec %S (expected RATE or RATE:SEED)" s)

  let spec_to_string p = Printf.sprintf "%d:%d" p.rate_pct p.seed

  type kind = Crash | Stall

  let kind_to_string = function Crash -> "crash" | Stall -> "stall"

  (* The same deterministic-hash idiom as oracle [Faults.roll]: stable
     across runs and processes, independent of worker count and
     scheduling because it keys only on the run-unique task label and
     the attempt number. *)
  let roll (p : plan) ~(salt : string) ~(label : string) ~(attempt : int)
      ~(modulus : int) : int =
    Hashtbl.hash (p.seed, salt, label, attempt) mod modulus

  let decide (p : plan) ~label ~attempt : kind option =
    if p.rate_pct <= 0 then None
    else if roll p ~salt:"pool.fire" ~label ~attempt ~modulus:100 >= p.rate_pct then None
    else if roll p ~salt:"pool.kind" ~label ~attempt ~modulus:4 = 0 then Some Stall
    else Some Crash
end

exception Injected_fault of string

let () =
  Printexc.register_printer (function
    | Injected_fault lbl -> Some (Printf.sprintf "Pool.Injected_fault(%s)" lbl)
    | _ -> None)

let global_faults : Faults.plan option Atomic.t = Atomic.make None
let set_faults p = Atomic.set global_faults p
let current_faults () = Atomic.get global_faults
let global_deadline : float option Atomic.t = Atomic.make None
let set_deadline d = Atomic.set global_deadline d
let current_deadline () = Atomic.get global_deadline
let default_retries = 2

type failure = {
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
  f_attempts : int;
}

type 'a outcome = Ok of 'a | Failed of failure

type timing = {
  tm_label : string;
  tm_worker : int;
  tm_seconds : float;
  tm_attempt : int;
  tm_ok : bool;
  tm_flagged : bool;
}

type summary = {
  s_tasks : int;
  s_workers : int;
  s_wall_seconds : float;
  s_busy_seconds : float;
  s_steals : int;
  s_retries : int;
  s_quarantined : int;
  s_worker_deaths : int;
  s_flagged : int;
  s_faults_injected : int;
  s_stalls : int;
  s_timings_dropped : int;
}

(* ------------------------------------------------------------------ *)
(* Global accounting (mutex-protected; workers log through it)         *)
(* ------------------------------------------------------------------ *)

(* The per-attempt log is bounded so a long-lived process (daemon mode)
   cannot leak: past [2 * timing_cap] entries it is compacted to the
   [timing_cap] slowest. Aggregate counters stay exact. *)
let timing_cap = 512

let log_mutex = Mutex.create ()
let logged : timing list ref = ref []
let logged_len = ref 0
let timings_dropped = ref 0
let busy_seconds = ref 0.0
let pool_runs : (int * int * float) list ref = ref []  (* tasks, workers, wall *)

let g_steals = Atomic.make 0
let g_retries = Atomic.make 0
let g_quarantined = Atomic.make 0
let g_worker_deaths = Atomic.make 0
let g_flagged = Atomic.make 0
let g_injected = Atomic.make 0
let g_stalls = Atomic.make 0

let with_log f =
  Mutex.lock log_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock log_mutex) f

let reset_stats () =
  with_log (fun () ->
      logged := [];
      logged_len := 0;
      timings_dropped := 0;
      busy_seconds := 0.0;
      pool_runs := []);
  List.iter
    (fun c -> Atomic.set c 0)
    [ g_steals; g_retries; g_quarantined; g_worker_deaths; g_flagged; g_injected; g_stalls ]

let by_slowest a b = compare b.tm_seconds a.tm_seconds

(* callers hold [log_mutex] *)
let compact_log () =
  if !logged_len > 2 * timing_cap then begin
    let sorted = List.sort by_slowest !logged in
    let kept = List.filteri (fun i _ -> i < timing_cap) sorted in
    timings_dropped := !timings_dropped + (!logged_len - timing_cap);
    logged := kept;
    logged_len := timing_cap
  end

let stats () : summary =
  with_log (fun () ->
      let tasks, workers, wall =
        List.fold_left
          (fun (t, w, s) (t', w', s') -> (t + t', max w w', s +. s'))
          (0, 0, 0.0) !pool_runs
      in
      {
        s_tasks = tasks;
        s_workers = workers;
        s_wall_seconds = wall;
        s_busy_seconds = !busy_seconds;
        s_steals = Atomic.get g_steals;
        s_retries = Atomic.get g_retries;
        s_quarantined = Atomic.get g_quarantined;
        s_worker_deaths = Atomic.get g_worker_deaths;
        s_flagged = Atomic.get g_flagged;
        s_faults_injected = Atomic.get g_injected;
        s_stalls = Atomic.get g_stalls;
        s_timings_dropped = !timings_dropped;
      })

let timings () : timing list = with_log (fun () -> List.sort by_slowest !logged)

let report ?(per_task = false) oc =
  let s = stats () in
  if s.s_tasks > 0 then begin
    let speedup = if s.s_wall_seconds > 0.0 then s.s_busy_seconds /. s.s_wall_seconds else 1.0 in
    Printf.fprintf oc
      "[pool] %d tasks on up to %d workers: %.2fs task time in %.2fs wall (%.2fx speedup)\n"
      s.s_tasks s.s_workers s.s_busy_seconds s.s_wall_seconds speedup;
    if
      s.s_faults_injected + s.s_retries + s.s_quarantined + s.s_steals
      + s.s_worker_deaths + s.s_flagged
      > 0
    then
      Printf.fprintf oc
        "[pool] resilience: %d injected faults (%d stalls), %d retries, %d quarantined, \
         %d steals, %d worker deaths, %d straggler flags\n"
        s.s_faults_injected s.s_stalls s.s_retries s.s_quarantined s.s_steals
        s.s_worker_deaths s.s_flagged;
    if per_task then begin
      if s.s_timings_dropped > 0 then
        Printf.fprintf oc "[pool]   (%d slowest attempts shown; %d dropped from the log)\n"
          timing_cap s.s_timings_dropped;
      List.iter
        (fun t ->
          Printf.fprintf oc "[pool]   %-48s worker %d attempt %d %9.1f ms%s%s\n" t.tm_label
            t.tm_worker t.tm_attempt
            (t.tm_seconds *. 1000.0)
            (if t.tm_ok then "" else " FAILED")
            (if t.tm_flagged then " STRAGGLER" else ""))
        (timings ())
    end
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

let finish_run ~t_start ~workers ~tasks (run_timings : timing list) =
  let wall = Unix.gettimeofday () -. t_start in
  with_log (fun () ->
      pool_runs := (tasks, workers, wall) :: !pool_runs;
      List.iter
        (fun t ->
          busy_seconds := !busy_seconds +. t.tm_seconds;
          logged := t :: !logged;
          incr logged_len)
        run_timings;
      compact_log ());
  if Obs.metrics_on () then begin
    Obs.Metrics.incr "pool.runs";
    Obs.Metrics.incr ~by:tasks "pool.tasks";
    Obs.Metrics.observe "pool.run_wall_s" wall;
    List.iter
      (fun t ->
        Obs.Metrics.observe "pool.task_s" t.tm_seconds;
        Obs.Metrics.observe (Printf.sprintf "pool.worker%d.task_s" t.tm_worker) t.tm_seconds)
      run_timings
  end

(* One deque per worker. A plain mutex-protected list is plenty: tasks
   number in the hundreds and each holds the lock for O(length). *)
type deque = { mutable dq : int list; mu : Mutex.t }

let with_deque d f =
  Mutex.lock d.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.mu) f

let pop_front d =
  with_deque d (fun () ->
      match d.dq with
      | [] -> None
      | i :: tl ->
          d.dq <- tl;
          Some i)

let push_front d i = with_deque d (fun () -> d.dq <- i :: d.dq)

let pop_back d =
  with_deque d (fun () ->
      match List.rev d.dq with
      | [] -> None
      | i :: rtl ->
          d.dq <- List.rev rtl;
          Some i)

let map_outcomes ?(jobs = 1) ?label ?(retries = default_retries) ?deadline_s ?faults
    ~(init : unit -> 'w) ~(f : 'w -> 'a -> 'b) (items : 'a array) : 'b outcome array =
  let n = Array.length items in
  if n = 0 then [||]
  else
    (* the pool-run span opens on the calling domain, so its id is
       deterministic; every task span is rooted at <run-id>.<task-index>
       below, independent of worker scheduling *)
    Obs.with_span
      ~attrs:(fun () -> [ ("tasks", Obs.Json.Int n) ])
      ~kind:"pool.run" "pool"
    @@ fun () ->
    let ctx = Obs.current_ctx () in
    let label =
      match label with Some l -> l | None -> fun i _ -> "task-" ^ string_of_int i
    in
    let faults = match faults with Some _ as p -> p | None -> current_faults () in
    let deadline = match deadline_s with Some _ as d -> d | None -> current_deadline () in
    let retries = max 0 retries in
    let workers = max 1 (min jobs n) in
    let t_start = Unix.gettimeofday () in
    let results : 'b outcome option array = Array.make n None in
    let attempts = Array.make n 0 in
    let flagged = Array.init n (fun _ -> Atomic.make false) in
    let pending = Atomic.make n in
    let deques = Array.init workers (fun _ -> { dq = []; mu = Mutex.create () }) in
    for i = n - 1 downto 0 do
      let d = deques.(i mod workers) in
      d.dq <- i :: d.dq
    done;
    (* worker w's current task and its start time, for the watchdog *)
    let inflight : (int * float) option Atomic.t array =
      Array.init workers (fun _ -> Atomic.make None)
    in
    let deaths : (exn * Printexc.raw_backtrace) option array = Array.make workers None in
    let wtimes : timing list array = Array.make workers [] in
    let flag_task i =
      if not (Atomic.exchange flagged.(i) true) then begin
        Atomic.incr g_flagged;
        Obs.Metrics.incr "pool.deadline_flagged"
      end
    in
    let watchdog_scan () =
      match deadline with
      | None -> ()
      | Some dl ->
          let now = Unix.gettimeofday () in
          Array.iter
            (fun slot ->
              match Atomic.get slot with
              | Some (i, t0) when now -. t0 > dl -> flag_task i
              | Some _ | None -> ())
            inflight
    in
    (* Run one attempt of task [i]; returns [`Resolved] or [`Requeue].
       Everything — fault decision, the task body, retry/quarantine
       bookkeeping — happens inside the task span, so trace events get
       deterministic ids and no exception ever escapes to the worker
       loop. *)
    let run_attempt ~worker st i =
      let lbl = label i items.(i) in
      let attempt = attempts.(i) in
      attempts.(i) <- attempt + 1;
      let fault =
        match faults with Some p -> Faults.decide p ~label:lbl ~attempt | None -> None
      in
      (* attrs stay [] on the clean first-attempt path so a faults-off
         trace is byte-identical (modulo timings) to a sequential one *)
      let span_attrs = ref [] in
      Obs.with_task_span ~worker ~ctx ~index:i ~kind:"pool.task"
        ~attrs:(fun () -> !span_attrs)
        (fun () -> lbl)
        (fun () ->
          if attempt > 0 then span_attrs := [ ("attempt", Obs.Json.Int attempt) ];
          let t0 = Unix.gettimeofday () in
          Atomic.set inflight.(worker) (Some (i, t0));
          let res =
            match fault with
            | Some k ->
                span_attrs :=
                  !span_attrs @ [ ("fault", Obs.Json.Str (Faults.kind_to_string k)) ];
                Atomic.incr g_injected;
                Obs.Metrics.incr "pool.faults.injected";
                Obs.event ~kind:"pool.fault"
                  ~attrs:(fun () ->
                    [
                      ("fault", Obs.Json.Str (Faults.kind_to_string k));
                      ("attempt", Obs.Json.Int attempt);
                    ])
                  lbl;
                (match k with
                | Faults.Crash ->
                    (* the attempt never runs, so a later retry observes
                       exactly the state a clean first attempt would *)
                    `Err (Injected_fault lbl, Printexc.get_callstack 0)
                | Faults.Stall -> (
                    Atomic.incr g_stalls;
                    Obs.Metrics.incr "pool.stalls";
                    flag_task i;
                    match f st items.(i) with
                    | v -> `Res v
                    | exception e -> `Err (e, Printexc.get_raw_backtrace ())))
            | None -> (
                match f st items.(i) with
                | v -> `Res v
                | exception e -> `Err (e, Printexc.get_raw_backtrace ()))
          in
          let dt = Unix.gettimeofday () -. t0 in
          Atomic.set inflight.(worker) None;
          (* completion-time backstop: catches overruns the watchdog
             missed, and the only check a sequential run gets *)
          (match deadline with Some dl when dt > dl -> flag_task i | Some _ | None -> ());
          let ok = match res with `Res _ -> true | `Err _ -> false in
          wtimes.(worker) <-
            {
              tm_label = lbl;
              tm_worker = worker;
              tm_seconds = dt;
              tm_attempt = attempt;
              tm_ok = ok;
              tm_flagged = Atomic.get flagged.(i);
            }
            :: wtimes.(worker);
          match res with
          | `Res v ->
              results.(i) <- Some (Ok v);
              `Resolved
          | `Err (e, bt) ->
              let used = attempt + 1 in
              if used > retries then begin
                Atomic.incr g_quarantined;
                Obs.Metrics.incr "pool.quarantined";
                span_attrs :=
                  !span_attrs @ [ ("outcome", Obs.Json.Str "quarantined") ];
                Obs.event ~kind:"pool.quarantine"
                  ~attrs:(fun () -> [ ("attempts", Obs.Json.Int used) ])
                  lbl;
                results.(i) <-
                  Some (Failed { f_exn = e; f_backtrace = bt; f_attempts = used });
                `Resolved
              end
              else begin
                Atomic.incr g_retries;
                Obs.Metrics.incr "pool.retries";
                span_attrs := !span_attrs @ [ ("outcome", Obs.Json.Str "retry") ];
                Obs.event ~kind:"pool.retry"
                  ~attrs:(fun () -> [ ("attempt", Obs.Json.Int attempt) ])
                  lbl;
                `Requeue
              end)
    in
    let execute ~worker st i =
      match run_attempt ~worker st i with
      | `Resolved -> Atomic.decr pending
      | `Requeue ->
          (* head of the next worker's deque: with more than one worker
             the retry lands on a different domain; with one it is the
             very next task popped, preserving sequential order *)
          push_front deques.((worker + 1) mod workers) i
    in
    let steal w =
      let rec scan k =
        if k >= workers then None
        else
          match pop_back deques.((w + k) mod workers) with
          | Some i ->
              Atomic.incr g_steals;
              Obs.Metrics.incr "pool.steals";
              Some i
          | None -> scan (k + 1)
      in
      scan 1
    in
    let worker_loop w () =
      match init () with
      | exception e ->
          (* this worker dies alone; survivors steal its deque dry *)
          deaths.(w) <- Some (e, Printexc.get_raw_backtrace ());
          Atomic.incr g_worker_deaths;
          Obs.Metrics.incr "pool.worker_deaths"
      | st ->
          let spins = ref 0 in
          let rec loop () =
            match pop_front deques.(w) with
            | Some i ->
                execute ~worker:w st i;
                loop ()
            | None -> (
                match steal w with
                | Some i ->
                    execute ~worker:w st i;
                    loop ()
                | None ->
                    if Atomic.get pending > 0 then begin
                      incr spins;
                      if !spins land 1023 = 0 then begin
                        watchdog_scan ();
                        Unix.sleepf 0.0002
                      end
                      else Domain.cpu_relax ();
                      loop ()
                    end)
          in
          loop ()
    in
    if workers = 1 then
      (* sequential fast path: same loop, no domain spawned *)
      worker_loop 0 ()
    else begin
      let domains = List.init workers (fun w -> Domain.spawn (worker_loop w)) in
      List.iter Domain.join domains
    end;
    (* tasks no surviving worker could run (every worker died): fail
       them with the first death, lowest worker index — deterministic *)
    let first_death =
      let rec find w = if w >= workers then None else
          match deaths.(w) with Some _ as d -> d | None -> find (w + 1)
      in
      find 0
    in
    let unresolved = ref 0 in
    for i = 0 to n - 1 do
      if results.(i) = None then begin
        incr unresolved;
        match first_death with
        | Some (e, bt) ->
            results.(i) <- Some (Failed { f_exn = e; f_backtrace = bt; f_attempts = 0 })
        | None ->
            (* unreachable: a live worker never abandons a task *)
            results.(i) <-
              Some
                (Failed
                   {
                     f_exn =
                       Failure
                         (Printf.sprintf "Pool: task %d (%s) was never run" i
                            (label i items.(i)));
                     f_backtrace = Printexc.get_callstack 0;
                     f_attempts = 0;
                   })
      end
    done;
    if !unresolved > 0 then begin
      Atomic.fetch_and_add g_quarantined !unresolved |> ignore;
      Obs.Metrics.incr ~by:!unresolved "pool.quarantined"
    end;
    let run_timings =
      Array.fold_left (fun acc l -> List.rev_append l acc) [] wtimes
    in
    finish_run ~t_start ~workers ~tasks:n run_timings;
    Array.map (function Some o -> o | None -> assert false) results

let map_init ?jobs ?label ?retries ?deadline_s ?faults ~init ~f items =
  let outs = map_outcomes ?jobs ?label ?retries ?deadline_s ?faults ~init ~f items in
  (* all tasks ran to resolution first (no early abort); only then is
     the lowest-index quarantined task's exception re-raised, so the
     choice never depends on which worker failed first *)
  Array.iter
    (function
      | Failed fl -> Printexc.raise_with_backtrace fl.f_exn fl.f_backtrace
      | Ok _ -> ())
    outs;
  Array.map (function Ok v -> v | Failed _ -> assert false) outs

let map ?jobs ?label ?retries ?deadline_s ?faults f items =
  map_init ?jobs ?label ?retries ?deadline_s ?faults ~init:(fun () -> ())
    ~f:(fun () x -> f x) items
