(** End-to-end KernelGPT pipeline (§3): extraction → iterative stages →
    specification synthesis → validation and repair. *)

type mode =
  | Iterative  (** the paper's multi-stage Algorithm 1 *)
  | All_in_one  (** the §5.2.3 ablation: everything in one prompt *)

type outcome = {
  o_entry : string;  (** registry key of the module *)
  o_spec : Syzlang.Ast.spec option;
  o_valid : bool;  (** passed validation intact (possibly after repair) *)
  o_usable : bool;
      (** the final spec validates, possibly after pruning unrepairable
          descriptions — usable for fuzzing even when not "valid" *)
  o_direct_valid : bool;  (** passed validation before any repair *)
  o_repaired : bool;  (** repair changed the spec *)
  o_errors : Syzlang.Validate.error list;  (** errors that remain *)
  o_queries : int;  (** oracle queries spent on this module *)
  o_tokens : int;  (** prompt tokens spent on this module *)
  o_iterations : int;  (** Algorithm 1 rounds across all stages *)
  o_faults : int;  (** transport faults injected into this module's queries *)
  o_retries : int;  (** attempts retried after a fault *)
  o_recovered : int;  (** queries that succeeded after ≥ 1 fault *)
  o_degraded : int;
      (** queries that never succeeded — the module was built from
          partial results (zero whenever fault injection is off) *)
}

val failed_outcome : string -> outcome

(** Validate a spec against the kernel index and repair it by consulting
    the oracle with the error messages, up to three rounds. Returns the
    (possibly fixed) spec, whether it now validates, whether any repair
    was applied, and the remaining errors. Repair queries go through
    [client] when given (defaults to a pass-through around [oracle]). A
    round in which every query degraded (the fault-tolerant client gave
    up) is refunded rather than spent — it does not count against the
    three rounds, and up to three such skips are tolerated before the
    loop gives up; a round the oracle answered without improving
    anything ends the loop early. *)
val validate_and_repair :
  ?client:Client.t ->
  oracle:Oracle.t ->
  kernel:Csrc.Index.t ->
  Syzlang.Ast.spec ->
  Syzlang.Ast.spec * bool * bool * Syzlang.Validate.error list

(** Drop the descriptions validation still rejects, iterating to a
    fixpoint: an unrepairable resource takes the syscalls returning it
    with it, and a dropped type orphans its users in later rounds. *)
val prune :
  kernel:Csrc.Index.t ->
  Syzlang.Ast.spec ->
  Syzlang.Ast.spec * Syzlang.Validate.error list

(** Generate a specification for one corpus module (driver or socket).
    All oracle traffic goes through [client] when given — fault
    injection, retries, budgets (defaults to a pass-through around
    [oracle], which leaves behavior and output bit-for-bit unchanged). *)
val run :
  ?mode:mode ->
  ?client:Client.t ->
  oracle:Oracle.t ->
  kernel:Csrc.Index.t ->
  Corpus.Types.entry ->
  outcome
