(** E5: bug detection by the new specifications — the paper's Table 4.

    Each bug-carrying module is fuzzed with its combined
    (Syzkaller + KernelGPT) specification; the same campaigns run with
    the Syzkaller-only and SyzDescribe suites to confirm the baselines
    cannot trigger the bugs (the ✗/✗ columns). *)

type bug_row = {
  br_bug : Corpus.Types.bug;
  br_found_kgpt : bool;
  br_found_syzkaller : bool;
  br_found_syzdescribe : bool;
  br_deg_kgpt : bool;  (** that family's campaign for this module was quarantined *)
  br_deg_syzkaller : bool;
  br_deg_syzdescribe : bool;
}

type table4 = {
  bug_rows : bug_row list;
  t4_exec : Exp_resilience.exec_totals;  (** executor-supervisor totals *)
}

let fuzz_module ?(cache : (string, Vkernel.Machine.t) Hashtbl.t option) ~(budget : int)
    ~(seeds : int) ?supervisor ?engine ?sched (name : string) (spec : Syzlang.Ast.spec) :
    (string, unit) Hashtbl.t * Exp_resilience.exec_totals =
  let titles = Hashtbl.create 8 in
  let exec = ref Exp_resilience.exec_empty in
  (match Corpus.Registry.find name with
  | None -> ()
  | Some entry ->
      (* boot is deterministic and the machine is read-only after it, so
         a worker reuses one machine per module across the three suite
         families instead of re-booting (and re-JITting) each time *)
      let machine =
        match cache with
        | None -> Vkernel.Machine.boot [ entry ]
        | Some cache -> (
            match Hashtbl.find_opt cache name with
            | Some m -> m
            | None ->
                let m = Vkernel.Machine.boot [ entry ] in
                Hashtbl.replace cache name m;
                m)
      in
      for s = 1 to seeds do
        let res =
          Fuzzer.Campaign.run ~seed:(s * 1299721) ~budget ?supervisor ?engine ?sched ~machine
            spec
        in
        exec := Exp_resilience.exec_add !exec res;
        Hashtbl.iter (fun t _ -> Hashtbl.replace titles t ()) res.crashes
      done);
  (titles, !exec)

let table4 ?(budget = 30_000) ?(seeds = 3) ?(jobs = 1) ?supervisor ?engine ?sched
    (ctx : Suites.ctx) : table4 =
  let modules =
    List.sort_uniq compare (List.map (fun b -> b.Corpus.Types.bug_module) Corpus.Registry.bugs)
  in
  (* one pool task per (suite family, module); the crash-title sets
     merge by union, which is order-insensitive *)
  let families =
    [
      ("kgpt", fun m -> Some (Suites.module_suite ctx m));
      ( "syz",
        fun m -> Option.bind (Corpus.Registry.find m) Baseline.Syzkaller_specs.spec_of_entry );
      ("sd", fun m -> Suites.sd_spec ctx m);
    ]
  in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (tag, suite_of) ->
           List.filter_map (fun m -> Option.map (fun s -> (tag, m, s)) (suite_of m)) modules)
         families)
  in
  let results =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (tag, m, _) -> Printf.sprintf "table4:%s:%s" tag m)
      ~init:(fun () -> Hashtbl.create 8)
      ~f:(fun cache (_, m, spec) ->
        fuzz_module ~cache ~budget ~seeds ?supervisor ?engine ?sched m spec)
      tasks
  in
  let degraded = Hashtbl.create 8 in
  let found_with tag =
    let tbl = Hashtbl.create 32 in
    Array.iteri
      (fun i r ->
        let tag', m, _ = tasks.(i) in
        match r with
        | Kernelgpt.Pool.Ok (titles, _) ->
            if tag' = tag then Hashtbl.iter (fun t () -> Hashtbl.replace tbl t ()) titles
        | Kernelgpt.Pool.Failed _ -> Hashtbl.replace degraded (tag', m) ())
      results;
    tbl
  in
  let kgpt_found = found_with "kgpt" in
  let syz_found = found_with "syz" in
  let sd_found = found_with "sd" in
  let deg tag m = Hashtbl.mem degraded (tag, m) in
  {
    t4_exec =
      Array.fold_left
        (fun acc r ->
          match r with
          | Kernelgpt.Pool.Ok (_, e) -> Exp_resilience.exec_sum acc e
          | Kernelgpt.Pool.Failed _ -> acc)
        Exp_resilience.exec_empty results;
    bug_rows =
      List.map
        (fun (b : Corpus.Types.bug) ->
          {
            br_bug = b;
            br_found_kgpt = Hashtbl.mem kgpt_found b.bug_title;
            br_found_syzkaller = Hashtbl.mem syz_found b.bug_title;
            br_found_syzdescribe = Hashtbl.mem sd_found b.bug_title;
            br_deg_kgpt = deg "kgpt" b.bug_module;
            br_deg_syzkaller = deg "syz" b.bug_module;
            br_deg_syzdescribe = deg "sd" b.bug_module;
          })
        Corpus.Registry.bugs;
  }

let print_table4 (t : table4) =
  Table.section "Table 4: New bugs detected by KernelGPT";
  (* "?" = that family's campaign for the module was quarantined, so
     "not found" would overclaim — the cell is explicitly unknown *)
  let mark ?(degraded = false) b = if b then "X" else if degraded then "?" else "-" in
  let any_degraded = ref false in
  Table.print
    ~align:[ Table.L; Table.L; Table.L; Table.L; Table.L; Table.L; Table.L ]
    ~header:
      [ "Crash with new specs"; "New"; "Confirmed"; "Fixed"; "CVE"; "Syzkaller"; "SyzDescribe" ]
    (List.map
       (fun r ->
         let b = r.br_bug in
         if
           (r.br_deg_kgpt && not r.br_found_kgpt)
           || (r.br_deg_syzkaller && not r.br_found_syzkaller)
           || (r.br_deg_syzdescribe && not r.br_found_syzdescribe)
         then begin
           any_degraded := true;
           Exp_resilience.note_degraded ()
         end;
         [
           b.bug_title;
           mark ~degraded:r.br_deg_kgpt r.br_found_kgpt;
           mark b.bug_confirmed;
           mark b.bug_fixed;
           Option.value b.bug_cve ~default:"";
           mark ~degraded:r.br_deg_syzkaller r.br_found_syzkaller;
           mark ~degraded:r.br_deg_syzdescribe r.br_found_syzdescribe;
         ])
       t.bug_rows);
  if !any_degraded then
    Printf.printf "? = campaign quarantined by the worker pool; result unknown\n";
  let found = List.length (List.filter (fun r -> r.br_found_kgpt) t.bug_rows) in
  let base =
    List.length (List.filter (fun r -> r.br_found_syzkaller || r.br_found_syzdescribe) t.bug_rows)
  in
  Printf.printf "Total: %d/%d bugs found with KernelGPT specs; %d by baselines\n" found
    (List.length t.bug_rows) base
