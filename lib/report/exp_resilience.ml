(** Resilience table (fault-injection runs): how much of the injected
    oracle-transport trouble the fault-tolerant client absorbed, per
    module and in total. Only printed when a fault plan or a query
    budget is active — un-faulted reports are byte-identical to runs
    that predate fault injection. *)

type row = {
  r_entry : string;
  r_faults : int;
  r_retries : int;
  r_recovered : int;
  r_degraded : int;
}

type t = {
  rows : row list;  (** fault-touched modules, in entry order *)
  modules : int;  (** modules generated (fault-touched or not) *)
  total_faults : int;
  total_retries : int;
  total_recovered : int;
  total_degraded : int;  (** degraded queries across the run *)
  degraded_modules : int;  (** modules with at least one degraded query *)
}

let collect (ctx : Suites.ctx) : t =
  let rows =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        match Suites.kgpt_outcome ctx e.name with
        | Some (o : Kernelgpt.Pipeline.outcome)
          when o.o_faults > 0 || o.o_degraded > 0 ->
            Some
              {
                r_entry = e.name;
                r_faults = o.o_faults;
                r_retries = o.o_retries;
                r_recovered = o.o_recovered;
                r_degraded = o.o_degraded;
              }
        | _ -> None)
      (Suites.generation_targets ctx.entries)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    rows;
    modules = Hashtbl.length ctx.kgpt;
    total_faults = sum (fun r -> r.r_faults);
    total_retries = sum (fun r -> r.r_retries);
    total_recovered = sum (fun r -> r.r_recovered);
    total_degraded = sum (fun r -> r.r_degraded);
    degraded_modules = List.length (List.filter (fun r -> r.r_degraded > 0) rows);
  }

let print (t : t) =
  Table.section "Resilience (oracle fault injection)";
  let row r =
    [
      r.r_entry;
      Table.fmt_int r.r_faults;
      Table.fmt_int r.r_retries;
      Table.fmt_int r.r_recovered;
      Table.fmt_int r.r_degraded;
    ]
  in
  let total =
    [
      "TOTAL";
      Table.fmt_int t.total_faults;
      Table.fmt_int t.total_retries;
      Table.fmt_int t.total_recovered;
      Table.fmt_int t.total_degraded;
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ "module"; "faults"; "retries"; "recovered"; "degraded" ]
    (List.map row t.rows @ [ total ]);
  if t.total_degraded = 0 then
    Printf.printf
      "All injected transient faults recovered (0 degraded modules out of %d).\n"
      t.modules
  else
    Printf.printf
      "%d degraded queries left %d of %d modules on partial results.\n"
      t.total_degraded t.degraded_modules t.modules
