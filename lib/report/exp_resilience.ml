(** Resilience table (fault-injection runs): how much of the injected
    oracle-transport trouble the fault-tolerant client absorbed, per
    module and in total. Only printed when a fault plan or a query
    budget is active — un-faulted reports are byte-identical to runs
    that predate fault injection. *)

type row = {
  r_entry : string;
  r_faults : int;
  r_retries : int;
  r_recovered : int;
  r_degraded : int;
}

type t = {
  rows : row list;  (** fault-touched modules, in entry order *)
  modules : int;  (** modules generated (fault-touched or not) *)
  total_faults : int;
  total_retries : int;
  total_recovered : int;
  total_degraded : int;  (** degraded queries across the run *)
  degraded_modules : int;  (** modules with at least one degraded query *)
}

let collect (ctx : Suites.ctx) : t =
  let rows =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        match Suites.kgpt_outcome ctx e.name with
        | Some (o : Kernelgpt.Pipeline.outcome)
          when o.o_faults > 0 || o.o_degraded > 0 ->
            Some
              {
                r_entry = e.name;
                r_faults = o.o_faults;
                r_retries = o.o_retries;
                r_recovered = o.o_recovered;
                r_degraded = o.o_degraded;
              }
        | _ -> None)
      (Suites.generation_targets ctx.entries)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    rows;
    modules = Hashtbl.length ctx.kgpt;
    total_faults = sum (fun r -> r.r_faults);
    total_retries = sum (fun r -> r.r_retries);
    total_recovered = sum (fun r -> r.r_recovered);
    total_degraded = sum (fun r -> r.r_degraded);
    degraded_modules = List.length (List.filter (fun r -> r.r_degraded > 0) rows);
  }

(** Executor-side resilience (fuzzing under [--exec-faults]): what the
    {!Fuzzer.Supervisor} absorbed across every campaign of a report run.
    Campaigns shard over the pool in a fixed order, so the sums are
    deterministic across [--jobs] values. *)
type exec_totals = {
  e_campaigns : int;
  e_execs : int;  (** program executions performed (feeds BENCH_*.json) *)
  e_restarts : int;  (** executor instances rebooted after wedging *)
  e_lost : int;  (** executions lost to injected wedges *)
}

let exec_empty = { e_campaigns = 0; e_execs = 0; e_restarts = 0; e_lost = 0 }

let exec_add (t : exec_totals) (r : Fuzzer.Campaign.result) : exec_totals =
  {
    e_campaigns = t.e_campaigns + 1;
    e_execs = t.e_execs + r.Fuzzer.Campaign.executions;
    e_restarts = t.e_restarts + r.Fuzzer.Campaign.exec_restarts;
    e_lost = t.e_lost + r.Fuzzer.Campaign.exec_lost;
  }

let exec_sum (a : exec_totals) (b : exec_totals) : exec_totals =
  {
    e_campaigns = a.e_campaigns + b.e_campaigns;
    e_execs = a.e_execs + b.e_execs;
    e_restarts = a.e_restarts + b.e_restarts;
    e_lost = a.e_lost + b.e_lost;
  }

let print_exec (t : exec_totals) =
  Table.section "Resilience (executor fault injection)";
  Printf.printf
    "%d campaigns: %d executor reboots, %d executions lost to injected wedges.\n"
    t.e_campaigns t.e_restarts t.e_lost

let print (t : t) =
  Table.section "Resilience (oracle fault injection)";
  let row r =
    [
      r.r_entry;
      Table.fmt_int r.r_faults;
      Table.fmt_int r.r_retries;
      Table.fmt_int r.r_recovered;
      Table.fmt_int r.r_degraded;
    ]
  in
  let total =
    [
      "TOTAL";
      Table.fmt_int t.total_faults;
      Table.fmt_int t.total_retries;
      Table.fmt_int t.total_recovered;
      Table.fmt_int t.total_degraded;
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ "module"; "faults"; "retries"; "recovered"; "degraded" ]
    (List.map row t.rows @ [ total ]);
  if t.total_degraded = 0 then
    Printf.printf
      "All injected transient faults recovered (0 degraded modules out of %d).\n"
      t.modules
  else
    Printf.printf
      "%d degraded queries left %d of %d modules on partial results.\n"
      t.total_degraded t.degraded_modules t.modules
