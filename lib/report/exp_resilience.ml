(** Resilience table (fault-injection runs): how much of the injected
    oracle-transport trouble the fault-tolerant client absorbed, per
    module and in total. Only printed when a fault plan or a query
    budget is active — un-faulted reports are byte-identical to runs
    that predate fault injection. *)

type row = {
  r_entry : string;
  r_faults : int;
  r_retries : int;
  r_recovered : int;
  r_degraded : int;
}

type t = {
  rows : row list;  (** fault-touched modules, in entry order *)
  modules : int;  (** modules generated (fault-touched or not) *)
  total_faults : int;
  total_retries : int;
  total_recovered : int;
  total_degraded : int;  (** degraded queries across the run *)
  degraded_modules : int;  (** modules with at least one degraded query *)
}

let collect (ctx : Suites.ctx) : t =
  let rows =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        match Suites.kgpt_outcome ctx e.name with
        | Some (o : Kernelgpt.Pipeline.outcome)
          when o.o_faults > 0 || o.o_degraded > 0 ->
            Some
              {
                r_entry = e.name;
                r_faults = o.o_faults;
                r_retries = o.o_retries;
                r_recovered = o.o_recovered;
                r_degraded = o.o_degraded;
              }
        | _ -> None)
      (Suites.generation_targets ctx.entries)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    rows;
    modules = Hashtbl.length ctx.kgpt;
    total_faults = sum (fun r -> r.r_faults);
    total_retries = sum (fun r -> r.r_retries);
    total_recovered = sum (fun r -> r.r_recovered);
    total_degraded = sum (fun r -> r.r_degraded);
    degraded_modules = List.length (List.filter (fun r -> r.r_degraded > 0) rows);
  }

(** Executor-side resilience (fuzzing under [--exec-faults]): what the
    {!Fuzzer.Supervisor} absorbed across every campaign of a report run.
    Campaigns shard over the pool in a fixed order, so the sums are
    deterministic across [--jobs] values. *)
type exec_totals = {
  e_campaigns : int;
  e_execs : int;  (** program executions performed (feeds BENCH_*.json) *)
  e_restarts : int;  (** executor instances rebooted after wedging *)
  e_lost : int;  (** executions lost to injected wedges *)
}

let exec_empty = { e_campaigns = 0; e_execs = 0; e_restarts = 0; e_lost = 0 }

let exec_add (t : exec_totals) (r : Fuzzer.Campaign.result) : exec_totals =
  {
    e_campaigns = t.e_campaigns + 1;
    e_execs = t.e_execs + r.Fuzzer.Campaign.executions;
    e_restarts = t.e_restarts + r.Fuzzer.Campaign.exec_restarts;
    e_lost = t.e_lost + r.Fuzzer.Campaign.exec_lost;
  }

let exec_sum (a : exec_totals) (b : exec_totals) : exec_totals =
  {
    e_campaigns = a.e_campaigns + b.e_campaigns;
    e_execs = a.e_execs + b.e_execs;
    e_restarts = a.e_restarts + b.e_restarts;
    e_lost = a.e_lost + b.e_lost;
  }

let print_exec (t : exec_totals) =
  Table.section "Resilience (executor fault injection)";
  Printf.printf
    "%d campaigns: %d executor reboots, %d executions lost to injected wedges.\n"
    t.e_campaigns t.e_restarts t.e_lost

(* --------------------------------------------------------------- *)
(* Worker-pool resilience (report runs under [--pool-faults])       *)
(* --------------------------------------------------------------- *)

(* Tables register the degraded rows they actually rendered, so the
   summary can report "quarantined tasks -> degraded rows" without
   re-deriving table layout here. *)
let degraded_row_count = ref 0

let reset_pool_notes () = degraded_row_count := 0
let note_degraded ?(rows = 1) () = degraded_row_count := !degraded_row_count + rows

type pool_totals = {
  p_injected : int;  (** injected worker faults (crashes + stalls) *)
  p_crashes : int;
  p_stalls : int;
  p_retries : int;  (** failed attempts requeued to another worker *)
  p_quarantined : int;  (** tasks that exhausted their retry budget *)
  p_degraded_rows : int;  (** table rows rendered with degraded cells *)
}

(* Everything here is a pure function of the fault plan (hash of
   label/attempt), never of scheduling, so the section below is safe to
   print on stdout: byte-identical for any [--jobs]. Steals, worker
   deaths, and real straggler flags stay on stderr ({!Pool.report}). *)
let pool_totals () : pool_totals =
  let s = Kernelgpt.Pool.stats () in
  {
    p_injected = s.s_faults_injected;
    p_crashes = s.s_faults_injected - s.s_stalls;
    p_stalls = s.s_stalls;
    p_retries = s.s_retries;
    p_quarantined = s.s_quarantined;
    p_degraded_rows = !degraded_row_count;
  }

let print_pool ?(degraded_modules = []) (t : pool_totals) =
  Table.section "Resilience (worker pool fault injection)";
  Printf.printf
    "%d injected worker faults (%d task crashes, %d stalls); %d retries, %d tasks \
     quarantined.\n"
    t.p_injected t.p_crashes t.p_stalls t.p_retries t.p_quarantined;
  if t.p_quarantined = 0 then
    Printf.printf
      "All injected pool faults recovered within the retry budget; every table is \
       complete.\n"
  else begin
    Printf.printf
      "%d quarantined task(s) left %d degraded table row(s); the run completed on the \
       survivors.\n"
      t.p_quarantined t.p_degraded_rows;
    List.iter
      (fun (name, why) -> Printf.printf "  degraded pipeline: %s (%s)\n" name why)
      degraded_modules
  end

let print (t : t) =
  Table.section "Resilience (oracle fault injection)";
  let row r =
    [
      r.r_entry;
      Table.fmt_int r.r_faults;
      Table.fmt_int r.r_retries;
      Table.fmt_int r.r_recovered;
      Table.fmt_int r.r_degraded;
    ]
  in
  let total =
    [
      "TOTAL";
      Table.fmt_int t.total_faults;
      Table.fmt_int t.total_retries;
      Table.fmt_int t.total_recovered;
      Table.fmt_int t.total_degraded;
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ "module"; "faults"; "retries"; "recovered"; "degraded" ]
    (List.map row t.rows @ [ total ]);
  if t.total_degraded = 0 then
    Printf.printf
      "All injected transient faults recovered (0 degraded modules out of %d).\n"
      t.modules
  else
    Printf.printf
      "%d degraded queries left %d of %d modules on partial results.\n"
      t.total_degraded t.degraded_modules t.modules
