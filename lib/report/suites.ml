(** Shared experiment context: the booted kernel, generated
    specifications, and the three specification suites the paper
    compares (Syzkaller, Syzkaller+SyzDescribe, Syzkaller+KernelGPT). *)

type ctx = {
  machine : Vkernel.Machine.t;  (** whole loaded kernel *)
  kernel : Csrc.Index.t;
  entries : Corpus.Types.entry list;  (** loaded modules *)
  oracle : Oracle.t;
  query_budget : Client.budget option;
      (** the run's shared query budget, when one was set *)
  kgpt : (string, Kernelgpt.Pipeline.outcome) Hashtbl.t;
  sd : (string, Baseline.Syzdescribe.outcome) Hashtbl.t;
  degraded : (string * string) list;
      (** pipeline tasks quarantined by the pool (entry name, reason),
          in entry order; downstream suites treat them as spec-less *)
}

(** Modules KernelGPT generates specs for in §5.1: loaded handlers with
    missing descriptions. §5.2 additionally targets the Table 5/6
    modules. *)
let generation_targets (entries : Corpus.Types.entry list) : Corpus.Types.entry list =
  List.filter
    (fun (e : Corpus.Types.entry) ->
      Baseline.Syzkaller_specs.is_incomplete e || e.in_table5 || e.in_table6)
    entries

(** Build the shared context. [jobs > 1] shards the per-entry pipeline
    runs over a domain pool; every worker boots its own machine and
    oracle (both carry mutable state — the definition index memoizes,
    the oracle counts), and the outcomes are merged in entry order, so
    the context is identical to a sequential build. A [faults] plan
    and/or a [query_budget] route every pipeline query through a
    fault-tolerant {!Client} (the budget is one atomic counter shared by
    all workers); with neither set the client is a pass-through and the
    build is bit-for-bit what it always was. A [cache] is shared by
    every worker's client: any worker's oracle answer serves them all,
    and on a warm cache the build performs no oracle queries at all
    while reporting the cold run's costs ({!Cache.replay}). *)
let build ?(profile = Profile.gpt4) ?(jobs = 1) ?faults ?query_budget ?cache () : ctx =
  let entries = Corpus.Registry.loaded () in
  let machine = Vkernel.Machine.boot entries in
  let kernel = machine.Vkernel.Machine.index in
  let budget = Option.map Client.budget query_budget in
  let client_of oracle = Client.create ?plan:faults ?query_budget:budget ?cache oracle in
  let oracle = Oracle.create ~profile ~knowledge:kernel () in
  let kgpt = Hashtbl.create 256 in
  let sd = Hashtbl.create 256 in
  let targets = Array.of_list (generation_targets entries) in
  let outcomes =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (e : Corpus.Types.entry) -> "pipeline:" ^ e.name)
      ~init:(fun () ->
        (* every worker — the sequential one included — gets a private
           oracle; accounting folds from the successful outcomes below,
           so a retried attempt never double-counts queries or tokens *)
        if jobs <= 1 then (client_of (Oracle.create ~profile ~knowledge:kernel ()), kernel)
        else
          let m = Vkernel.Machine.boot entries in
          let k = m.Vkernel.Machine.index in
          (client_of (Oracle.create ~profile ~knowledge:k ()), k))
      ~f:(fun (client, kernel) (e : Corpus.Types.entry) ->
        let oracle = Client.oracle client in
        (Kernelgpt.Pipeline.run ~client ~oracle ~kernel e, Baseline.Syzdescribe.run e))
      targets
  in
  let degraded = ref [] in
  Array.iteri
    (fun i out ->
      let e = targets.(i) in
      match out with
      | Kernelgpt.Pool.Ok ((kg_out : Kernelgpt.Pipeline.outcome), sd_out) ->
          Hashtbl.replace kgpt e.Corpus.Types.name kg_out;
          Hashtbl.replace sd e.Corpus.Types.name sd_out;
          oracle.Oracle.queries <- oracle.Oracle.queries + kg_out.o_queries;
          oracle.Oracle.prompt_tokens <- oracle.Oracle.prompt_tokens + kg_out.o_tokens
      | Kernelgpt.Pool.Failed fl ->
          degraded := (e.Corpus.Types.name, Printexc.to_string fl.f_exn) :: !degraded)
    outcomes;
  {
    machine;
    kernel;
    entries;
    oracle;
    query_budget = budget;
    kgpt;
    sd;
    degraded = List.rev !degraded;
  }

let kgpt_outcome ctx name = Hashtbl.find_opt ctx.kgpt name

let kgpt_spec ctx name : Syzlang.Ast.spec option =
  match Hashtbl.find_opt ctx.kgpt name with
  | Some o when o.Kernelgpt.Pipeline.o_usable -> o.o_spec
  | _ -> None

let sd_spec ctx name : Syzlang.Ast.spec option =
  match Hashtbl.find_opt ctx.sd name with
  | Some o -> o.Baseline.Syzdescribe.sd_spec
  | None -> None

(** Suite 1: the hand-written Syzkaller descriptions. *)
let syzkaller_suite ctx : Syzlang.Ast.spec =
  Baseline.Syzkaller_specs.suite ~name:"syzkaller" ctx.entries

(** Suite 2: Syzkaller + SyzDescribe-generated driver specs. *)
let syzdescribe_suite ctx : Syzlang.Ast.spec =
  let extra = List.filter_map (fun (e : Corpus.Types.entry) -> sd_spec ctx e.name) ctx.entries in
  Syzlang.Merge.merge_all ~name:"syzkaller+syzdescribe" (syzkaller_suite ctx :: extra)

(** Suite 3: Syzkaller + KernelGPT-generated specs for the handlers with
    missing descriptions. *)
let kernelgpt_suite ctx : Syzlang.Ast.spec =
  let extra =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        if Baseline.Syzkaller_specs.is_incomplete e then kgpt_spec ctx e.name else None)
      ctx.entries
  in
  Syzlang.Merge.merge_all ~name:"syzkaller+kernelgpt" (syzkaller_suite ctx :: extra)

(** Per-module suite for Table 4-style bug hunting: the module's manual
    spec (if any) merged with its generated one. *)
let module_suite ctx (name : string) : Syzlang.Ast.spec =
  let manual =
    Option.bind (Corpus.Registry.find name) Baseline.Syzkaller_specs.spec_of_entry
  in
  Syzlang.Merge.merge_all ~name (Option.to_list (kgpt_spec ctx name) @ Option.to_list manual)
