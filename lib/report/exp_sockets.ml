(** E7: per-socket comparison — the paper's Table 6 (Syzkaller vs
    KernelGPT; SyzDescribe cannot analyze sockets). *)

type cell = {
  c_sys : int;
  c_cov : float option;  (** mean over surviving reps; [None] if none survived *)
  c_crash : float;
  c_dropped : int;  (** repetitions quarantined by the pool *)
}

type row = { r_name : string; r_syzkaller : cell option; r_kernelgpt : cell option }

type table6 = {
  socket_rows : row list;
  t6_execs : int;  (** total program executions (feeds BENCH_*.json) *)
}

(* Sharded exactly like Table 5: one pool task per
   (socket, suite, repetition), machines cached per worker, cells merged
   in task-layout order (see Exp_drivers). *)

let table6 ?(reps = 3) ?(budget = 4000) ?(jobs = 1) ?engine ?sched (ctx : Suites.ctx) :
    table6 =
  let entries = Corpus.Registry.table6 () in
  let specs_of (e : Corpus.Types.entry) =
    [
      ("syz", Baseline.Syzkaller_specs.spec_of_entry e);
      ("kgpt", Suites.kgpt_spec ctx e.name);
    ]
  in
  let tasks =
    List.concat_map
      (fun (e : Corpus.Types.entry) ->
        List.concat_map
          (fun (tag, spec) ->
            match spec with
            | None -> []
            | Some spec ->
                List.init reps (fun r ->
                    {
                      Exp_drivers.tk_entry = e;
                      tk_suite = tag;
                      tk_spec = spec;
                      tk_rep = r + 1;
                      tk_seed_base = 7907;
                      tk_budget = budget;
                    }))
          (specs_of e))
      entries
  in
  let results =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (tk : Exp_drivers.task) ->
        Printf.sprintf "table6:%s:%s:rep%d" tk.tk_entry.name tk.tk_suite tk.tk_rep)
      ~init:(fun () -> Hashtbl.create 8)
      ~f:(Exp_drivers.run_task ?engine ?sched) (Array.of_list tasks)
  in
  let cursor = ref 0 in
  let take spec =
    match spec with
    | None -> None
    | Some spec ->
        let per_rep = List.init reps (fun i -> results.(!cursor + i)) in
        cursor := !cursor + reps;
        let ok =
          List.filter_map
            (function Kernelgpt.Pool.Ok r -> Some r | Kernelgpt.Pool.Failed _ -> None)
            per_rep
        in
        let dropped = List.length per_rep - List.length ok in
        let covs = List.fold_left (fun acc (c, _, _) -> c :: acc) [] ok in
        let crashes = List.fold_left (fun acc (_, x, _) -> x :: acc) [] ok in
        let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
        Some
          {
            c_sys = Syzlang.Ast.count_syscalls spec;
            c_cov = (if ok = [] then None else Some (mean covs));
            c_crash = mean crashes;
            c_dropped = dropped;
          }
  in
  let rows =
    List.map
      (fun (e : Corpus.Types.entry) ->
        match specs_of e with
        | [ (_, manual); (_, kg) ] ->
            (* sequence the takes: the shared cursor makes evaluation
               order significant, and record fields evaluate in
               unspecified order *)
            let r_syzkaller = take manual in
            let r_kernelgpt = take kg in
            { r_name = e.display_name; r_syzkaller; r_kernelgpt }
        | suites ->
            failwith
              (Printf.sprintf
                 "Exp_sockets.table6: entry %s produced %d suites, expected 2 \
                  (syzkaller, kernelgpt)"
                 e.name (List.length suites)))
      entries
  in
  {
    socket_rows = List.sort (fun a b -> compare a.r_name b.r_name) rows;
    t6_execs =
      Array.fold_left
        (fun acc r ->
          match r with
          | Kernelgpt.Pool.Ok (_, _, e) -> acc + e
          | Kernelgpt.Pool.Failed _ -> acc)
        0 results;
  }

(* degraded markers: "123*" = mean over the surviving repetitions only,
   "?" = every repetition of the cell was quarantined *)
let cell_strings = function
  | Some c ->
      [
        string_of_int c.c_sys;
        (match (c.c_cov, c.c_dropped) with
        | Some f, 0 -> Printf.sprintf "%.0f" f
        | Some f, _ -> Printf.sprintf "%.0f*" f
        | None, _ -> "?");
        Table.fmt_float c.c_crash;
      ]
  | None -> [ "-"; "-"; "-" ]

let cell_dropped = function Some c -> c.c_dropped | None -> 0

let print_table6 (t : table6) =
  Table.section "Table 6: Socket specification comparison";
  let row_dropped r = cell_dropped r.r_syzkaller + cell_dropped r.r_kernelgpt in
  let rows =
    List.map
      (fun r ->
        if row_dropped r > 0 then Exp_resilience.note_degraded ();
        (r.r_name :: cell_strings r.r_syzkaller) @ cell_strings r.r_kernelgpt)
      t.socket_rows
  in
  let sum f =
    List.fold_left
      (fun (s, c, x) r ->
        match f r with
        | Some cell ->
            (s + cell.c_sys, c +. Option.value cell.c_cov ~default:0.0, x +. cell.c_crash)
        | None -> (s, c, x))
      (0, 0.0, 0.0) t.socket_rows
  in
  let s1, c1, x1 = sum (fun r -> r.r_syzkaller) in
  let s2, c2, x2 = sum (fun r -> r.r_kernelgpt) in
  let total =
    [
      "Total"; string_of_int s1; Printf.sprintf "%.0f" c1; Table.fmt_float x1;
      string_of_int s2; Printf.sprintf "%.0f" c2; Table.fmt_float x2;
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Syz #Sys"; "Syz Cov"; "Syz Crash"; "KGPT #Sys"; "KGPT Cov"; "KGPT Crash" ]
    (rows @ [ total ]);
  if List.exists (fun r -> row_dropped r > 0) t.socket_rows then
    Printf.printf
      "* = mean over surviving reps; ? = all reps quarantined by the worker pool\n"
