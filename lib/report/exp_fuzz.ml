(** E4: overall fuzzing effectiveness — the paper's Table 3.

    Three suites over the whole loaded kernel, [reps] repetitions with
    different seeds; the execution budget stands in for the 24-hour
    sessions. "Unique Cov" counts the statements a suite reaches that
    plain Syzkaller misses, matching the paper's definition. *)

type suite_result = {
  sr_name : string;
  sr_cov : float;  (** mean total coverage over surviving repetitions *)
  sr_unique : int;  (** statements beyond the Syzkaller-only union *)
  sr_crashes : float;  (** mean unique crashes *)
  sr_union_cov : (int, unit) Hashtbl.t;
  sr_reps : int;  (** repetitions scheduled *)
  sr_dropped : int;  (** repetitions quarantined by the pool *)
}

let suite_of_reps ~name (reps : Fuzzer.Campaign.result Kernelgpt.Pool.outcome list) :
    suite_result =
  let union = Hashtbl.create 4096 in
  let covs = ref [] in
  let crashes = ref [] in
  let dropped = ref 0 in
  List.iter
    (function
      | Kernelgpt.Pool.Failed _ -> incr dropped
      | Kernelgpt.Pool.Ok (res : Fuzzer.Campaign.result) ->
          covs := float_of_int (Fuzzer.Campaign.total_coverage res) :: !covs;
          crashes := float_of_int (Hashtbl.length res.crashes) :: !crashes;
          Hashtbl.iter (fun sid () -> Hashtbl.replace union sid ()) res.coverage)
    reps;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  {
    sr_name = name;
    sr_cov = mean !covs;
    sr_unique = 0;
    sr_crashes = mean !crashes;
    sr_union_cov = union;
    sr_reps = List.length reps;
    sr_dropped = !dropped;
  }

type table3 = {
  rows : suite_result list;
  t3_exec : Exp_resilience.exec_totals;  (** executor-supervisor totals *)
}

let table3 ?(reps = 3) ?(budget = 6000) ?(jobs = 1) ?supervisor ?engine ?sched
    (ctx : Suites.ctx) : table3 =
  let suites =
    [|
      ("Syzkaller", Suites.syzkaller_suite ctx);
      ("Syzkaller + SyzDescribe", Suites.syzdescribe_suite ctx);
      ("Syzkaller + KernelGPT", Suites.kernelgpt_suite ctx);
    |]
  in
  (* one task per (suite, repetition); each repetition is an independent
     campaign, so the whole table shards across the pool. Workers boot a
     private machine (the index memoizes during execution); coverage
     statement ids are assigned by boot order over the same entry list,
     so results merge exactly. *)
  let tasks =
    Array.init
      (Array.length suites * reps)
      (fun i -> (i / reps, (i mod reps) + 1))
  in
  let results =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (si, rep) -> Printf.sprintf "table3:%s:rep%d" (fst suites.(si)) rep)
      ~init:(fun () ->
        if jobs <= 1 then ctx.Suites.machine else Vkernel.Machine.boot ctx.entries)
      ~f:(fun machine (si, rep) ->
        Fuzzer.Campaign.run ~seed:(rep * 7919) ~budget ?supervisor ?engine ?sched ~machine
          (snd suites.(si)))
      tasks
  in
  let reps_of si = Array.to_list (Array.sub results (si * reps) reps) in
  let syz = suite_of_reps ~name:(fst suites.(0)) (reps_of 0) in
  let sd = suite_of_reps ~name:(fst suites.(1)) (reps_of 1) in
  let kg = suite_of_reps ~name:(fst suites.(2)) (reps_of 2) in
  let unique_vs_syz (r : suite_result) =
    Hashtbl.fold
      (fun sid () acc -> if Hashtbl.mem syz.sr_union_cov sid then acc else acc + 1)
      r.sr_union_cov 0
  in
  {
    rows =
      [
        syz;
        { sd with sr_unique = unique_vs_syz sd };
        { kg with sr_unique = unique_vs_syz kg };
      ];
    t3_exec =
      Array.fold_left
        (fun acc r ->
          match r with
          | Kernelgpt.Pool.Ok res -> Exp_resilience.exec_add acc res
          | Kernelgpt.Pool.Failed _ -> acc)
        Exp_resilience.exec_empty results;
  }

let print_table3 (t : table3) =
  Table.section "Table 3: Overall effectiveness (3 repetitions)";
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Cov"; "Unique Cov"; "Crash" ]
    (List.map
       (fun r ->
         let name =
           if r.sr_dropped > 0 then begin
             Exp_resilience.note_degraded ();
             Printf.sprintf "%s [degraded %d/%d reps]" r.sr_name r.sr_dropped r.sr_reps
           end
           else r.sr_name
         in
         [
           name;
           Printf.sprintf "%.0f" r.sr_cov;
           (if r.sr_unique = 0 && r.sr_name = "Syzkaller" then "-" else string_of_int r.sr_unique);
           Table.fmt_float r.sr_crashes;
         ])
       t.rows)
