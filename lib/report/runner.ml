(** Experiment runner: regenerates every table and figure of the paper's
    evaluation. The [scale] knob trades execution budget for wall time —
    [Quick] for CI, [Full] for EXPERIMENTS.md numbers. *)

type scale = Quick | Full

type budgets = {
  t3_reps : int;
  t3_budget : int;
  t4_budget : int;
  t4_seeds : int;
  t5_reps : int;
  t5_budget : int;
  t6_reps : int;
  t6_budget : int;
  abl_reps : int;
  abl_budget : int;
  absched_budget : int;
  absched_seeds : int;
}

let budgets_of = function
  | Quick ->
      {
        t3_reps = 1; t3_budget = 1500; t4_budget = 6000; t4_seeds = 1;
        t5_reps = 1; t5_budget = 1200; t6_reps = 1; t6_budget = 1200;
        abl_reps = 1; abl_budget = 1200;
        absched_budget = 4000; absched_seeds = 1;
      }
  | Full ->
      {
        t3_reps = 3; t3_budget = 12_000; t4_budget = 60_000; t4_seeds = 3;
        t5_reps = 3; t5_budget = 6000; t6_reps = 3; t6_budget = 6000;
        abl_reps = 3; abl_budget = 4000;
        absched_budget = 20_000; absched_seeds = 3;
      }

type which =
  | All
  | Table1
  | Fig7
  | Table2
  | Table3
  | Table4
  | Table5
  | Table6
  | Ablation_iter
  | Ablation_llm
  | Ablation_sched
  | Correctness

let which_of_string = function
  | "all" -> Some All
  | "table1" -> Some Table1
  | "fig7" -> Some Fig7
  | "table2" -> Some Table2
  | "table3" -> Some Table3
  | "table4" -> Some Table4
  | "table5" -> Some Table5
  | "table6" -> Some Table6
  | "ablation-iter" -> Some Ablation_iter
  | "ablation-llm" -> Some Ablation_llm
  | "ablation-sched" -> Some Ablation_sched
  | "correctness" -> Some Correctness
  | _ -> None

let wants which target =
  which = All || which = target

let string_of_which = function
  | All -> "all"
  | Table1 -> "table1"
  | Fig7 -> "fig7"
  | Table2 -> "table2"
  | Table3 -> "table3"
  | Table4 -> "table4"
  | Table5 -> "table5"
  | Table6 -> "table6"
  | Ablation_iter -> "ablation-iter"
  | Ablation_llm -> "ablation-llm"
  | Ablation_sched -> "ablation-sched"
  | Correctness -> "correctness"

(** Regenerate the paper's artifacts. [jobs > 1] shards independent
    campaigns, repetitions, and pipeline runs over a pool of worker
    domains ({!Kernelgpt.Pool}); results are merged in a fixed order, so
    the tables printed on stdout are byte-identical to a sequential run.
    The pool's timing report (with per-task wall-clocks when [--metrics]
    is on) goes to stderr; [--trace] additionally records every stage,
    query, task, and campaign as a span.

    [faults] injects deterministic oracle-transport faults into the
    generation phase and [query_budget] caps its total query attempts;
    either adds a resilience table right after generation.
    [exec_faults] injects deterministic executor wedges into the Table
    3/4 campaigns (the {!Fuzzer.Supervisor}) and adds an executor
    resilience section after the tables. [pool_faults] injects
    deterministic worker-pool faults ({!Kernelgpt.Pool.Faults}) into
    every pool task of the run: tasks that recover within the retry
    budget leave stdout untouched, quarantined tasks render as
    explicitly degraded rows, and a pool resilience section prints after
    the tables (its numbers are a pure function of the plan, so stdout
    stays byte-identical for any [jobs]). With none of the fault layers,
    output is byte-identical to a run without them.

    [oracle_cache] routes every generation and ablation query through a
    shared {!Cache}: on a warm cache the whole report performs zero
    oracle queries yet prints byte-identical tables (accounting replay).
    Flushing the cache and summarizing its hit rate (on stderr, so
    stdout stays byte-identical between cold and warm runs) is the
    caller's job.

    [engine] picks the campaign execution engine for every fuzzing
    table ({!Fuzzer.Campaign.engine}; default [Compiled]). The two
    engines print byte-identical tables — the knob exists so CI can
    diff them and BENCH artifacts can compare their throughput.

    [sched] picks the corpus/operator scheduling mode for every fuzzing
    table ({!Fuzzer.Schedule.mode}; default [Uniform]). The scheduling
    ablation ([Ablation_sched]) always runs both modes side by side,
    regardless of this knob.

    [bench] collects per-phase wall clocks and execution counts into a
    {!Bench_json} artifact. Collection never touches stdout, so runs
    with and without a collector print identical tables; writing the
    file is the caller's job. *)
let run ?(scale = Quick) ?(which = All) ?(jobs = 1) ?faults ?query_budget ?exec_faults
    ?pool_faults ?oracle_cache ?engine ?sched ?bench () =
  let b = budgets_of scale in
  Obs.with_span
    ~attrs:(fun () ->
      [
        ("scale", Obs.Json.Str (match scale with Quick -> "quick" | Full -> "full"));
        ("which", Obs.Json.Str (string_of_which which));
      ])
    ~kind:"report" "experiments"
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Kernelgpt.Pool.reset_stats ();
  Kernelgpt.Pool.set_faults pool_faults;
  Exp_resilience.reset_pool_notes ();
  Printf.printf "Booting synthetic kernel and generating specifications...\n%!";
  let ctx = Suites.build ~jobs ?faults ?query_budget ?cache:oracle_cache () in
  (match bench with
  | Some b ->
      let specs =
        Hashtbl.fold
          (fun _ (o : Kernelgpt.Pipeline.outcome) n -> if o.o_valid then n + 1 else n)
          ctx.Suites.kgpt 0
      in
      Bench_json.set_generation b
        ~wall_s:(Unix.gettimeofday () -. t0)
        ~specs ~queries:ctx.oracle.Oracle.queries
  | None -> ());
  (* time one table and feed its wall clock + execution count to the
     collector; stdout is untouched either way *)
  let timed name execs_of f =
    let w0 = Unix.gettimeofday () in
    let r = f () in
    (match bench with
    | Some b ->
        Bench_json.add_table b ~name ~wall_s:(Unix.gettimeofday () -. w0)
          ~executions:(execs_of r)
    | None -> ());
    r
  in
  Printf.printf "  (%d loaded handlers; %d oracle queries, %d prompt tokens so far; %.1fs)\n%!"
    (List.length ctx.entries) ctx.oracle.Oracle.queries ctx.oracle.Oracle.prompt_tokens
    (Unix.gettimeofday () -. t0);
  if faults <> None || query_budget <> None then begin
    Exp_resilience.print (Exp_resilience.collect ctx);
    match ctx.Suites.query_budget with
    | Some b ->
        Printf.printf "Query budget: %d of %d attempts used.\n" (Client.budget_used b)
          (Client.budget_total b)
    | None -> ()
  end;
  if wants which Table1 then Exp_specs.print_table1 (Exp_specs.table1 ctx);
  if wants which Fig7 then Exp_specs.print_fig7 ctx;
  if wants which Table2 then Exp_specs.print_table2 (Exp_specs.table2 ctx);
  let exec_totals = ref Exp_resilience.exec_empty in
  if wants which Table3 then begin
    let t3 =
      timed "table3" (fun t -> t.Exp_fuzz.t3_exec.Exp_resilience.e_execs) @@ fun () ->
      Exp_fuzz.table3 ~reps:b.t3_reps ~budget:b.t3_budget ~jobs ?supervisor:exec_faults
        ?engine ?sched ctx
    in
    exec_totals := Exp_resilience.exec_sum !exec_totals t3.Exp_fuzz.t3_exec;
    Exp_fuzz.print_table3 t3
  end;
  if wants which Table4 then begin
    let t4 =
      timed "table4" (fun t -> t.Exp_bugs.t4_exec.Exp_resilience.e_execs) @@ fun () ->
      Exp_bugs.table4 ~budget:b.t4_budget ~seeds:b.t4_seeds ~jobs ?supervisor:exec_faults
        ?engine ?sched ctx
    in
    exec_totals := Exp_resilience.exec_sum !exec_totals t4.Exp_bugs.t4_exec;
    Exp_bugs.print_table4 t4
  end;
  if wants which Table5 then
    Exp_drivers.print_table5
      (timed "table5" (fun t -> t.Exp_drivers.t5_execs) @@ fun () ->
       Exp_drivers.table5 ~reps:b.t5_reps ~budget:b.t5_budget ~jobs ?engine ?sched ctx);
  if wants which Table6 then
    Exp_sockets.print_table6
      (timed "table6" (fun t -> t.Exp_sockets.t6_execs) @@ fun () ->
       Exp_sockets.table6 ~reps:b.t6_reps ~budget:b.t6_budget ~jobs ?engine ?sched ctx);
  let abl_execs (a : Exp_ablation.ablation) =
    List.fold_left
      (fun acc (v : Exp_ablation.variant_result) -> acc + v.v_execs)
      0 (a.iter_rows @ a.llm_rows)
  in
  (match which with
  | All ->
      Exp_ablation.print
        (timed "ablation" abl_execs @@ fun () ->
         Exp_ablation.run ~reps:b.abl_reps ~budget:b.abl_budget ~jobs ?cache:oracle_cache
           ?engine ())
  | Ablation_iter | Ablation_llm ->
      let a =
        timed "ablation" abl_execs @@ fun () ->
        Exp_ablation.run ~reps:b.abl_reps ~budget:b.abl_budget ~jobs ?cache:oracle_cache
          ?engine ()
      in
      if which = Ablation_iter then Exp_ablation.print_rows "Ablation 1" a.iter_rows
      else Exp_ablation.print_rows "Ablation 2" a.llm_rows
  | _ -> ());
  if wants which Ablation_sched then
    Exp_ablation.print_sched
      (timed "ablation-sched" (fun a -> a.Exp_ablation.sa_execs) @@ fun () ->
       Exp_ablation.run_sched ~budget:b.absched_budget ~seeds:b.absched_seeds ~jobs ?engine
         ctx);
  if wants which Correctness then Exp_correctness.print (Exp_correctness.audit ctx);
  if exec_faults <> None then Exp_resilience.print_exec !exec_totals;
  (* the pool section also prints when a run without a plan quarantined
     real failures — degradation is never silent *)
  let pt = Exp_resilience.pool_totals () in
  if pool_faults <> None || pt.Exp_resilience.p_quarantined > 0 then
    Exp_resilience.print_pool ~degraded_modules:ctx.Suites.degraded pt;
  (match bench with
  | Some bch -> Bench_json.set_total bch (Unix.gettimeofday () -. t0)
  | None -> ());
  Printf.printf "\nTotal experiment time: %.1fs\n" (Unix.gettimeofday () -. t0);
  if jobs > 1 then Kernelgpt.Pool.report ~per_task:(Obs.metrics_on ()) stderr
