(** E6: per-driver comparison — the paper's Table 5.

    Each Table 5 driver is fuzzed in isolation with each of the three
    specifications (only the syscalls of that spec enabled, as §5.2
    prescribes), [reps] seeds each; Cov is the mean coverage inside the
    driver's module. *)

type cell = { c_sys : int option; c_cov : float option; c_crash : float }

type row = {
  r_name : string;  (** paper row label *)
  r_syzkaller : cell;
  r_syzdescribe : cell;
  r_kernelgpt : cell;
}

type table5 = {
  driver_rows : row list;
  t5_execs : int;  (** total program executions (feeds BENCH_*.json) *)
}

let na = { c_sys = None; c_cov = None; c_crash = 0.0 }

(* One pool task per (driver, suite, repetition). Workers cache one
   booted machine per driver — [Vkernel.Machine.boot [entry]] is
   deterministic, so every worker's machine assigns the same statement
   ids and cells merge exactly regardless of which worker ran them. *)

type task = {
  tk_entry : Corpus.Types.entry;
  tk_suite : string;
  tk_spec : Syzlang.Ast.spec;
  tk_rep : int;
  tk_seed_base : int;
  tk_budget : int;
}

let run_task ?engine ?sched (cache : (string, Vkernel.Machine.t) Hashtbl.t) (tk : task) :
    float * float * int =
  let machine =
    match Hashtbl.find_opt cache tk.tk_entry.name with
    | Some m -> m
    | None ->
        let m = Vkernel.Machine.boot [ tk.tk_entry ] in
        Hashtbl.replace cache tk.tk_entry.name m;
        m
  in
  let res =
    Fuzzer.Campaign.run ~seed:(tk.tk_rep * tk.tk_seed_base) ~budget:tk.tk_budget ?engine
      ?sched ~machine tk.tk_spec
  in
  ( float_of_int (Fuzzer.Campaign.module_coverage machine res tk.tk_entry.name),
    float_of_int (Hashtbl.length res.crashes),
    res.executions )

(** Fold [reps] per-repetition (coverage, crashes) results into a cell,
    averaging in the same order the sequential loop did. *)
let cell_of_reps (spec : Syzlang.Ast.spec) (per_rep : (float * float * int) list) : cell =
  let covs = List.fold_left (fun acc (c, _, _) -> c :: acc) [] per_rep in
  let crashes = List.fold_left (fun acc (_, x, _) -> x :: acc) [] per_rep in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  {
    c_sys = Some (Syzlang.Ast.count_syscalls spec);
    c_cov = Some (mean covs);
    c_crash = mean crashes;
  }

let table5 ?(reps = 3) ?(budget = 4000) ?(jobs = 1) ?engine ?sched (ctx : Suites.ctx) :
    table5 =
  let entries = Corpus.Registry.table5 () in
  let specs_of (e : Corpus.Types.entry) =
    [
      ("syz", Baseline.Syzkaller_specs.spec_of_entry e);
      ("sd", Suites.sd_spec ctx e.name);
      ("kgpt", Suites.kgpt_spec ctx e.name);
    ]
  in
  let tasks =
    List.concat_map
      (fun (e : Corpus.Types.entry) ->
        List.concat_map
          (fun (tag, spec) ->
            match spec with
            | None -> []
            | Some spec ->
                List.init reps (fun r ->
                    {
                      tk_entry = e;
                      tk_suite = tag;
                      tk_spec = spec;
                      tk_rep = r + 1;
                      tk_seed_base = 104729;
                      tk_budget = budget;
                    }))
          (specs_of e))
      entries
  in
  let results =
    Kernelgpt.Pool.map_init ~jobs
      ~label:(fun _ tk -> Printf.sprintf "table5:%s:%s:rep%d" tk.tk_entry.name tk.tk_suite tk.tk_rep)
      ~init:(fun () -> Hashtbl.create 8)
      ~f:(run_task ?engine ?sched) (Array.of_list tasks)
  in
  (* walk cells in the same order the tasks were laid out *)
  let cursor = ref 0 in
  let take spec =
    match spec with
    | None -> na
    | Some spec ->
        let per_rep = List.init reps (fun i -> results.(!cursor + i)) in
        cursor := !cursor + reps;
        cell_of_reps spec per_rep
  in
  let rows =
    List.map
      (fun (e : Corpus.Types.entry) ->
        match specs_of e with
        | [ (_, manual); (_, sd); (_, kg) ] ->
            (* the cursor walks the task layout, so the takes must run
               left-to-right — record fields evaluate in unspecified
               (right-to-left in practice) order, which crossed the
               syzkaller/kernelgpt columns *)
            let r_syzkaller = take manual in
            let r_syzdescribe = take sd in
            let r_kernelgpt = take kg in
            { r_name = e.display_name; r_syzkaller; r_syzdescribe; r_kernelgpt }
        | suites ->
            failwith
              (Printf.sprintf
                 "Exp_drivers.table5: entry %s produced %d suites, expected 3 \
                  (syzkaller, syzdescribe, kernelgpt)"
                 e.name (List.length suites)))
      entries
  in
  (* the two drivers dropped from Linux 6 stay as N/A rows *)
  let na_row name =
    { r_name = name; r_syzkaller = na; r_syzdescribe = na; r_kernelgpt = na }
  in
  let rows = na_row "ashmem" :: na_row "fd#" :: rows in
  {
    driver_rows = List.sort (fun a b -> compare a.r_name b.r_name) rows;
    t5_execs = Array.fold_left (fun acc (_, _, e) -> acc + e) 0 results;
  }

let cell_strings (c : cell) =
  [
    (match c.c_sys with Some n -> string_of_int n | None -> "N/A");
    (match c.c_cov with Some f -> Printf.sprintf "%.0f" f | None -> "-");
  ]

let print_table5 (t : table5) =
  Table.section "Table 5: Driver specification comparison (#Sys / Cov)";
  let rows =
    List.map
      (fun r ->
        (r.r_name :: cell_strings r.r_syzkaller)
        @ cell_strings r.r_syzdescribe @ cell_strings r.r_kernelgpt)
      t.driver_rows
  in
  let sum f =
    List.fold_left (fun acc r -> acc + Option.value (f r) ~default:0) 0 t.driver_rows
  in
  let sumc f =
    List.fold_left (fun acc r -> acc +. Option.value (f r) ~default:0.0) 0.0 t.driver_rows
  in
  let total =
    [
      "Total";
      string_of_int (sum (fun r -> r.r_syzkaller.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzkaller.c_cov));
      string_of_int (sum (fun r -> r.r_syzdescribe.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzdescribe.c_cov));
      string_of_int (sum (fun r -> r.r_kernelgpt.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_kernelgpt.c_cov));
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Syz #Sys"; "Syz Cov"; "SD #Sys"; "SD Cov"; "KGPT #Sys"; "KGPT Cov" ]
    (rows @ [ total ]);
  (* who wins where *)
  let wins =
    List.fold_left
      (fun (s, d, k) r ->
        match (r.r_syzkaller.c_cov, r.r_syzdescribe.c_cov, r.r_kernelgpt.c_cov) with
        | Some a, b, Some c ->
            let b = Option.value b ~default:0.0 in
            if c >= a && c >= b then (s, d, k + 1)
            else if a >= b && a >= c then (s + 1, d, k)
            else (s, d + 1, k)
        | _ -> (s, d, k))
      (0, 0, 0) t.driver_rows
  in
  let s, d, k = wins in
  Printf.printf "Best coverage: KernelGPT on %d drivers, Syzkaller on %d, SyzDescribe on %d\n" k s d;
  let crash_total f =
    List.fold_left (fun acc r -> acc +. (f r).c_crash) 0.0 t.driver_rows
  in
  Printf.printf "Unique crashes (avg totals): Syzkaller %.1f, SyzDescribe %.1f, KernelGPT %.1f\n"
    (crash_total (fun r -> r.r_syzkaller))
    (crash_total (fun r -> r.r_syzdescribe))
    (crash_total (fun r -> r.r_kernelgpt))
