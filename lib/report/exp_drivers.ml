(** E6: per-driver comparison — the paper's Table 5.

    Each Table 5 driver is fuzzed in isolation with each of the three
    specifications (only the syscalls of that spec enabled, as §5.2
    prescribes), [reps] seeds each; Cov is the mean coverage inside the
    driver's module. *)

type cell = {
  c_sys : int option;
  c_cov : float option;  (** mean over surviving reps; [None] if none survived *)
  c_crash : float;
  c_dropped : int;  (** repetitions quarantined by the pool *)
}

type row = {
  r_name : string;  (** paper row label *)
  r_syzkaller : cell;
  r_syzdescribe : cell;
  r_kernelgpt : cell;
}

type table5 = {
  driver_rows : row list;
  t5_execs : int;  (** total program executions (feeds BENCH_*.json) *)
}

let na = { c_sys = None; c_cov = None; c_crash = 0.0; c_dropped = 0 }

(* One pool task per (driver, suite, repetition). Workers cache one
   booted machine per driver — [Vkernel.Machine.boot [entry]] is
   deterministic, so every worker's machine assigns the same statement
   ids and cells merge exactly regardless of which worker ran them. *)

type task = {
  tk_entry : Corpus.Types.entry;
  tk_suite : string;
  tk_spec : Syzlang.Ast.spec;
  tk_rep : int;
  tk_seed_base : int;
  tk_budget : int;
}

let run_task ?engine ?sched (cache : (string, Vkernel.Machine.t) Hashtbl.t) (tk : task) :
    float * float * int =
  let machine =
    match Hashtbl.find_opt cache tk.tk_entry.name with
    | Some m -> m
    | None ->
        let m = Vkernel.Machine.boot [ tk.tk_entry ] in
        Hashtbl.replace cache tk.tk_entry.name m;
        m
  in
  let res =
    Fuzzer.Campaign.run ~seed:(tk.tk_rep * tk.tk_seed_base) ~budget:tk.tk_budget ?engine
      ?sched ~machine tk.tk_spec
  in
  ( float_of_int (Fuzzer.Campaign.module_coverage machine res tk.tk_entry.name),
    float_of_int (Hashtbl.length res.crashes),
    res.executions )

(** Fold [reps] per-repetition (coverage, crashes) outcomes into a cell,
    averaging the surviving repetitions in the same order the sequential
    loop did; quarantined repetitions count as dropped. *)
let cell_of_reps (spec : Syzlang.Ast.spec)
    (per_rep : (float * float * int) Kernelgpt.Pool.outcome list) : cell =
  let ok = List.filter_map (function Kernelgpt.Pool.Ok r -> Some r | Kernelgpt.Pool.Failed _ -> None) per_rep in
  let dropped = List.length per_rep - List.length ok in
  let covs = List.fold_left (fun acc (c, _, _) -> c :: acc) [] ok in
  let crashes = List.fold_left (fun acc (_, x, _) -> x :: acc) [] ok in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  {
    c_sys = Some (Syzlang.Ast.count_syscalls spec);
    c_cov = (if ok = [] then None else Some (mean covs));
    c_crash = mean crashes;
    c_dropped = dropped;
  }

let table5 ?(reps = 3) ?(budget = 4000) ?(jobs = 1) ?engine ?sched (ctx : Suites.ctx) :
    table5 =
  let entries = Corpus.Registry.table5 () in
  let specs_of (e : Corpus.Types.entry) =
    [
      ("syz", Baseline.Syzkaller_specs.spec_of_entry e);
      ("sd", Suites.sd_spec ctx e.name);
      ("kgpt", Suites.kgpt_spec ctx e.name);
    ]
  in
  let tasks =
    List.concat_map
      (fun (e : Corpus.Types.entry) ->
        List.concat_map
          (fun (tag, spec) ->
            match spec with
            | None -> []
            | Some spec ->
                List.init reps (fun r ->
                    {
                      tk_entry = e;
                      tk_suite = tag;
                      tk_spec = spec;
                      tk_rep = r + 1;
                      tk_seed_base = 104729;
                      tk_budget = budget;
                    }))
          (specs_of e))
      entries
  in
  let results =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ tk -> Printf.sprintf "table5:%s:%s:rep%d" tk.tk_entry.name tk.tk_suite tk.tk_rep)
      ~init:(fun () -> Hashtbl.create 8)
      ~f:(run_task ?engine ?sched) (Array.of_list tasks)
  in
  (* walk cells in the same order the tasks were laid out *)
  let cursor = ref 0 in
  let take spec =
    match spec with
    | None -> na
    | Some spec ->
        let per_rep = List.init reps (fun i -> results.(!cursor + i)) in
        cursor := !cursor + reps;
        cell_of_reps spec per_rep
  in
  let rows =
    List.map
      (fun (e : Corpus.Types.entry) ->
        match specs_of e with
        | [ (_, manual); (_, sd); (_, kg) ] ->
            (* the cursor walks the task layout, so the takes must run
               left-to-right — record fields evaluate in unspecified
               (right-to-left in practice) order, which crossed the
               syzkaller/kernelgpt columns *)
            let r_syzkaller = take manual in
            let r_syzdescribe = take sd in
            let r_kernelgpt = take kg in
            { r_name = e.display_name; r_syzkaller; r_syzdescribe; r_kernelgpt }
        | suites ->
            failwith
              (Printf.sprintf
                 "Exp_drivers.table5: entry %s produced %d suites, expected 3 \
                  (syzkaller, syzdescribe, kernelgpt)"
                 e.name (List.length suites)))
      entries
  in
  (* the two drivers dropped from Linux 6 stay as N/A rows *)
  let na_row name =
    { r_name = name; r_syzkaller = na; r_syzdescribe = na; r_kernelgpt = na }
  in
  let rows = na_row "ashmem" :: na_row "fd#" :: rows in
  {
    driver_rows = List.sort (fun a b -> compare a.r_name b.r_name) rows;
    t5_execs =
      Array.fold_left
        (fun acc r ->
          match r with
          | Kernelgpt.Pool.Ok (_, _, e) -> acc + e
          | Kernelgpt.Pool.Failed _ -> acc)
        0 results;
  }

(* degraded markers: "123*" = mean over the surviving repetitions only,
   "?" = every repetition of the cell was quarantined *)
let cell_strings (c : cell) =
  [
    (match c.c_sys with Some n -> string_of_int n | None -> "N/A");
    (match (c.c_cov, c.c_dropped) with
    | Some f, 0 -> Printf.sprintf "%.0f" f
    | Some f, _ -> Printf.sprintf "%.0f*" f
    | None, 0 -> "-"
    | None, _ -> "?");
  ]

let row_dropped r = r.r_syzkaller.c_dropped + r.r_syzdescribe.c_dropped + r.r_kernelgpt.c_dropped

let print_table5 (t : table5) =
  Table.section "Table 5: Driver specification comparison (#Sys / Cov)";
  let rows =
    List.map
      (fun r ->
        if row_dropped r > 0 then Exp_resilience.note_degraded ();
        (r.r_name :: cell_strings r.r_syzkaller)
        @ cell_strings r.r_syzdescribe @ cell_strings r.r_kernelgpt)
      t.driver_rows
  in
  let sum f =
    List.fold_left (fun acc r -> acc + Option.value (f r) ~default:0) 0 t.driver_rows
  in
  let sumc f =
    List.fold_left (fun acc r -> acc +. Option.value (f r) ~default:0.0) 0.0 t.driver_rows
  in
  let total =
    [
      "Total";
      string_of_int (sum (fun r -> r.r_syzkaller.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzkaller.c_cov));
      string_of_int (sum (fun r -> r.r_syzdescribe.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_syzdescribe.c_cov));
      string_of_int (sum (fun r -> r.r_kernelgpt.c_sys));
      Printf.sprintf "%.0f" (sumc (fun r -> r.r_kernelgpt.c_cov));
    ]
  in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "Syz #Sys"; "Syz Cov"; "SD #Sys"; "SD Cov"; "KGPT #Sys"; "KGPT Cov" ]
    (rows @ [ total ]);
  if List.exists (fun r -> row_dropped r > 0) t.driver_rows then
    Printf.printf
      "* = mean over surviving reps; ? = all reps quarantined by the worker pool\n";
  (* who wins where *)
  let wins =
    List.fold_left
      (fun (s, d, k) r ->
        match (r.r_syzkaller.c_cov, r.r_syzdescribe.c_cov, r.r_kernelgpt.c_cov) with
        | Some a, b, Some c ->
            let b = Option.value b ~default:0.0 in
            if c >= a && c >= b then (s, d, k + 1)
            else if a >= b && a >= c then (s + 1, d, k)
            else (s, d + 1, k)
        | _ -> (s, d, k))
      (0, 0, 0) t.driver_rows
  in
  let s, d, k = wins in
  Printf.printf "Best coverage: KernelGPT on %d drivers, Syzkaller on %d, SyzDescribe on %d\n" k s d;
  let crash_total f =
    List.fold_left (fun acc r -> acc +. (f r).c_crash) 0.0 t.driver_rows
  in
  Printf.printf "Unique crashes (avg totals): Syzkaller %.1f, SyzDescribe %.1f, KernelGPT %.1f\n"
    (crash_total (fun r -> r.r_syzkaller))
    (crash_total (fun r -> r.r_syzdescribe))
    (crash_total (fun r -> r.r_kernelgpt))
