(** E8/E9: the §5.2.3 ablations — iterative multi-stage prompting vs
    all-in-one prompting, and the LLM-choice study. Both run on the first
    ten valid Table 5 drivers, as the paper does. *)

type variant_result = {
  v_name : string;
  v_syscalls : int;
  v_types : int;
  v_cov : float;
  v_queries : int;
  v_tokens : int;
  v_execs : int;  (** total program executions (feeds BENCH_*.json) *)
  v_drivers : int;  (** drivers scheduled for this variant *)
  v_dropped : int;  (** drivers quarantined by the pool *)
}

(* Each driver is an independent pool task: the worker boots the
   driver's machine, runs the pipeline, and fuzzes the resulting spec.
   Per-driver partials fold in registry order, so the floating-point
   coverage sum matches the sequential loop exactly. *)
let measure ~(name : string) ~(profile : Profile.t) ~(mode : Kernelgpt.Pipeline.mode)
    ?(reps = 2) ?(budget = 3000) ?(jobs = 1) ?cache ?engine () : variant_result =
  let drivers = Array.of_list (Corpus.Registry.ablation_drivers ()) in
  let partials =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (e : Corpus.Types.entry) -> Printf.sprintf "ablation:%s:%s" name e.name)
      ~init:(fun () -> ())
      ~f:(fun () (e : Corpus.Types.entry) ->
        let machine = Vkernel.Machine.boot [ e ] in
        let kernel = machine.Vkernel.Machine.index in
        let oracle = Oracle.create ~profile ~knowledge:kernel () in
        (* without a cache this client is a plain pass-through *)
        let client = Client.create ?cache oracle in
        let out = Kernelgpt.Pipeline.run ~mode ~client ~oracle ~kernel e in
        match out.o_spec with
        | Some spec when out.o_valid ->
            let covs = ref 0.0 in
            let execs = ref 0 in
            for rep = 1 to reps do
              let res = Fuzzer.Campaign.run ~seed:(rep * 31337) ~budget ?engine ~machine spec in
              execs := !execs + res.executions;
              covs := !covs +. float_of_int (Fuzzer.Campaign.module_coverage machine res e.name)
            done;
            ( out.o_queries,
              out.o_tokens,
              !execs,
              Some
                ( Syzlang.Ast.count_syscalls spec,
                  Syzlang.Ast.count_types spec,
                  !covs /. float_of_int reps ) )
        | _ -> (out.o_queries, out.o_tokens, 0, None))
      drivers
  in
  let syscalls = ref 0 and types = ref 0 in
  let cov = ref 0.0 in
  let queries = ref 0 and tokens = ref 0 in
  let execs = ref 0 in
  let dropped = ref 0 in
  Array.iter
    (function
      | Kernelgpt.Pool.Failed _ -> incr dropped
      | Kernelgpt.Pool.Ok (q, t, e, fuzzed) -> (
          queries := !queries + q;
          tokens := !tokens + t;
          execs := !execs + e;
          match fuzzed with
          | Some (s, ty, c) ->
              syscalls := !syscalls + s;
              types := !types + ty;
              cov := !cov +. c
          | None -> ()))
    partials;
  {
    v_name = name;
    v_syscalls = !syscalls;
    v_types = !types;
    v_cov = !cov;
    v_queries = !queries;
    v_tokens = !tokens;
    v_execs = !execs;
    v_drivers = Array.length drivers;
    v_dropped = !dropped;
  }

type ablation = { iter_rows : variant_result list; llm_rows : variant_result list }

let run ?(reps = 2) ?(budget = 3000) ?(jobs = 1) ?cache ?engine () : ablation =
  let m = measure ~reps ~budget ~jobs ?cache ?engine in
  {
    iter_rows =
      [
        m ~name:"Iterative multi-stage" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"All-in-one prompt" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.All_in_one ();
      ];
    llm_rows =
      [
        m ~name:"GPT-3.5" ~profile:Profile.gpt35 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"GPT-4" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"GPT-4o" ~profile:Profile.gpt4o ~mode:Kernelgpt.Pipeline.Iterative ();
      ];
  }

let print_rows title rows =
  Table.section title;
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "#Syscalls"; "#Types"; "Cov"; "Queries"; "Prompt tokens" ]
    (List.map
       (fun v ->
         let name =
           if v.v_dropped > 0 then begin
             Exp_resilience.note_degraded ();
             Printf.sprintf "%s [degraded %d/%d drivers]" v.v_name v.v_dropped v.v_drivers
           end
           else v.v_name
         in
         [
           name;
           string_of_int v.v_syscalls;
           string_of_int v.v_types;
           Printf.sprintf "%.0f" v.v_cov;
           string_of_int v.v_queries;
           string_of_int v.v_tokens;
         ])
       rows)

let print (a : ablation) =
  print_rows "Ablation 1 (§5.2.3): iterative multi-stage vs all-in-one prompting" a.iter_rows;
  print_rows "Ablation 2 (§5.2.3): LLM choice" a.llm_rows

(* ------------------------------------------------------------------ *)
(* Scheduling ablation: uniform vs UCB over the Table 4 bug modules    *)
(* ------------------------------------------------------------------ *)

type sched_row = {
  s_module : string;
  s_uniform_ttc : int option;
      (** executions to the first crash under uniform scheduling
          (best over seeds); [None] when no seed crashed *)
  s_ucb_ttc : int option;  (** same, under UCB scheduling *)
  s_uniform_cov : float;  (** mean module coverage, uniform *)
  s_ucb_cov : float;  (** mean module coverage, UCB *)
  s_uniform_deg : bool;  (** that mode's campaign task was quarantined *)
  s_ucb_deg : bool;
}

type sched_ablation = { sched_rows : sched_row list; sa_execs : int }

(* One pool task per (module, mode): the Table 4 bug modules fuzzed with
   their combined suite under each scheduling mode, [seeds] campaigns
   each. Time-to-first-crash is the best (minimum) first-crash execution
   counter across seeds — the "how fast does the scheduler steer into
   the bug" number. *)
let run_sched ?(budget = 20_000) ?(seeds = 3) ?(jobs = 1) ?engine (ctx : Suites.ctx) :
    sched_ablation =
  let modules =
    List.sort_uniq compare
      (List.map (fun b -> b.Corpus.Types.bug_module) Corpus.Registry.bugs)
  in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun m -> [ (m, Fuzzer.Schedule.Uniform); (m, Fuzzer.Schedule.Ucb) ])
         modules)
  in
  let results =
    Kernelgpt.Pool.map_outcomes ~jobs
      ~label:(fun _ (m, mode) ->
        Printf.sprintf "ablation-sched:%s:%s" m (Fuzzer.Schedule.mode_to_string mode))
      ~init:(fun () -> Hashtbl.create 8)
      ~f:(fun cache (m, mode) ->
        match Corpus.Registry.find m with
        | None -> (None, 0.0, 0)
        | Some entry ->
            let machine =
              match Hashtbl.find_opt cache m with
              | Some mc -> mc
              | None ->
                  let mc = Vkernel.Machine.boot [ entry ] in
                  Hashtbl.replace cache m mc;
                  mc
            in
            let spec = Suites.module_suite ctx m in
            (* TTC scores the module's Table 4 *injected* bugs only:
               campaigns also surface shallow emergent crashes within a
               handful of executions, which would saturate the metric *)
            let injected =
              List.filter_map
                (fun (b : Corpus.Types.bug) ->
                  if b.bug_module = m then Some b.bug_title else None)
                Corpus.Registry.bugs
            in
            let ttc = ref None in
            let cov = ref 0.0 in
            let execs = ref 0 in
            for s = 1 to seeds do
              let res =
                Fuzzer.Campaign.run ~seed:(s * 1299721) ~budget ?engine ~sched:mode
                  ~machine spec
              in
              execs := !execs + res.executions;
              cov := !cov +. float_of_int (Fuzzer.Campaign.module_coverage machine res m);
              List.iter
                (fun (title, e) ->
                  if List.mem title injected then
                    match !ttc with
                    | Some best when best <= e -> ()
                    | _ -> ttc := Some e)
                res.first_crash_execs
            done;
            (!ttc, !cov /. float_of_int (max 1 seeds), !execs))
      tasks
  in
  let find_mode m mode =
    (* a quarantined task leaves the mode's numbers unknown, not zero *)
    let row = ref ((None, 0.0, 0), false) in
    Array.iteri
      (fun i r ->
        let m', mode' = tasks.(i) in
        if m' = m && mode' = mode then
          match r with
          | Kernelgpt.Pool.Ok v -> row := (v, false)
          | Kernelgpt.Pool.Failed _ -> row := ((None, 0.0, 0), true))
      results;
    !row
  in
  {
    sched_rows =
      List.map
        (fun m ->
          let (u_ttc, u_cov, _), u_deg = find_mode m Fuzzer.Schedule.Uniform in
          let (a_ttc, a_cov, _), a_deg = find_mode m Fuzzer.Schedule.Ucb in
          {
            s_module = m;
            s_uniform_ttc = u_ttc;
            s_ucb_ttc = a_ttc;
            s_uniform_cov = u_cov;
            s_ucb_cov = a_cov;
            s_uniform_deg = u_deg;
            s_ucb_deg = a_deg;
          })
        modules;
    sa_execs =
      Array.fold_left
        (fun acc r ->
          match r with
          | Kernelgpt.Pool.Ok (_, _, e) -> acc + e
          | Kernelgpt.Pool.Failed _ -> acc)
        0 results;
  }

let print_sched (a : sched_ablation) =
  Table.section "Ablation 3: uniform vs UCB seed/operator scheduling (Table 4 modules)";
  let ttc ~degraded = function
    | Some e -> string_of_int e
    | None -> if degraded then "?" else "-"
  in
  let cov ~degraded c = if degraded then "?" else Printf.sprintf "%.0f" c in
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ "Module"; "Uniform TTC"; "UCB TTC"; "Uniform Cov"; "UCB Cov" ]
    (List.map
       (fun r ->
         if r.s_uniform_deg || r.s_ucb_deg then Exp_resilience.note_degraded ();
         [
           r.s_module;
           ttc ~degraded:r.s_uniform_deg r.s_uniform_ttc;
           ttc ~degraded:r.s_ucb_deg r.s_ucb_ttc;
           cov ~degraded:r.s_uniform_deg r.s_uniform_cov;
           cov ~degraded:r.s_ucb_deg r.s_ucb_cov;
         ])
       a.sched_rows);
  if List.exists (fun r -> r.s_uniform_deg || r.s_ucb_deg) a.sched_rows then
    Printf.printf "? = campaign quarantined by the worker pool; result unknown\n";
  (* TTC = executions to the first *injected* (Table 4) crash, best
     seed; lower is better; "-" = never triggered within budget *)
  let wins =
    List.length
      (List.filter
         (fun r ->
           (* a degraded mode has an unknown TTC, not a losing one *)
           (not (r.s_uniform_deg || r.s_ucb_deg))
           &&
           match (r.s_uniform_ttc, r.s_ucb_ttc) with
           | Some u, Some a -> a < u
           | None, Some _ -> true
           | _ -> false)
         a.sched_rows)
  in
  Printf.printf "UCB reaches the first injected crash earlier on %d/%d modules\n" wins
    (List.length a.sched_rows)
