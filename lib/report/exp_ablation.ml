(** E8/E9: the §5.2.3 ablations — iterative multi-stage prompting vs
    all-in-one prompting, and the LLM-choice study. Both run on the first
    ten valid Table 5 drivers, as the paper does. *)

type variant_result = {
  v_name : string;
  v_syscalls : int;
  v_types : int;
  v_cov : float;
  v_queries : int;
  v_tokens : int;
  v_execs : int;  (** total program executions (feeds BENCH_*.json) *)
}

(* Each driver is an independent pool task: the worker boots the
   driver's machine, runs the pipeline, and fuzzes the resulting spec.
   Per-driver partials fold in registry order, so the floating-point
   coverage sum matches the sequential loop exactly. *)
let measure ~(name : string) ~(profile : Profile.t) ~(mode : Kernelgpt.Pipeline.mode)
    ?(reps = 2) ?(budget = 3000) ?(jobs = 1) ?cache ?engine () : variant_result =
  let drivers = Array.of_list (Corpus.Registry.ablation_drivers ()) in
  let partials =
    Kernelgpt.Pool.map ~jobs
      ~label:(fun _ (e : Corpus.Types.entry) -> Printf.sprintf "ablation:%s:%s" name e.name)
      (fun (e : Corpus.Types.entry) ->
        let machine = Vkernel.Machine.boot [ e ] in
        let kernel = machine.Vkernel.Machine.index in
        let oracle = Oracle.create ~profile ~knowledge:kernel () in
        (* without a cache this client is a plain pass-through *)
        let client = Client.create ?cache oracle in
        let out = Kernelgpt.Pipeline.run ~mode ~client ~oracle ~kernel e in
        match out.o_spec with
        | Some spec when out.o_valid ->
            let covs = ref 0.0 in
            let execs = ref 0 in
            for rep = 1 to reps do
              let res = Fuzzer.Campaign.run ~seed:(rep * 31337) ~budget ?engine ~machine spec in
              execs := !execs + res.executions;
              covs := !covs +. float_of_int (Fuzzer.Campaign.module_coverage machine res e.name)
            done;
            ( out.o_queries,
              out.o_tokens,
              !execs,
              Some
                ( Syzlang.Ast.count_syscalls spec,
                  Syzlang.Ast.count_types spec,
                  !covs /. float_of_int reps ) )
        | _ -> (out.o_queries, out.o_tokens, 0, None))
      drivers
  in
  let syscalls = ref 0 and types = ref 0 in
  let cov = ref 0.0 in
  let queries = ref 0 and tokens = ref 0 in
  let execs = ref 0 in
  Array.iter
    (fun (q, t, e, fuzzed) ->
      queries := !queries + q;
      tokens := !tokens + t;
      execs := !execs + e;
      match fuzzed with
      | Some (s, ty, c) ->
          syscalls := !syscalls + s;
          types := !types + ty;
          cov := !cov +. c
      | None -> ())
    partials;
  {
    v_name = name;
    v_syscalls = !syscalls;
    v_types = !types;
    v_cov = !cov;
    v_queries = !queries;
    v_tokens = !tokens;
    v_execs = !execs;
  }

type ablation = { iter_rows : variant_result list; llm_rows : variant_result list }

let run ?(reps = 2) ?(budget = 3000) ?(jobs = 1) ?cache ?engine () : ablation =
  let m = measure ~reps ~budget ~jobs ?cache ?engine in
  {
    iter_rows =
      [
        m ~name:"Iterative multi-stage" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"All-in-one prompt" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.All_in_one ();
      ];
    llm_rows =
      [
        m ~name:"GPT-3.5" ~profile:Profile.gpt35 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"GPT-4" ~profile:Profile.gpt4 ~mode:Kernelgpt.Pipeline.Iterative ();
        m ~name:"GPT-4o" ~profile:Profile.gpt4o ~mode:Kernelgpt.Pipeline.Iterative ();
      ];
  }

let print_rows title rows =
  Table.section title;
  Table.print
    ~align:[ Table.L; Table.R; Table.R; Table.R; Table.R; Table.R ]
    ~header:[ ""; "#Syscalls"; "#Types"; "Cov"; "Queries"; "Prompt tokens" ]
    (List.map
       (fun v ->
         [
           v.v_name;
           string_of_int v.v_syscalls;
           string_of_int v.v_types;
           Printf.sprintf "%.0f" v.v_cov;
           string_of_int v.v_queries;
           string_of_int v.v_tokens;
         ])
       rows)

let print (a : ablation) =
  print_rows "Ablation 1 (§5.2.3): iterative multi-stage vs all-in-one prompting" a.iter_rows;
  print_rows "Ablation 2 (§5.2.3): LLM choice" a.llm_rows
