(** BENCH_*.json emission: machine-readable throughput numbers for a
    report run.

    The runner times each phase with wall clocks that never touch
    stdout (the tables stay byte-identical with or without a collector)
    and folds the totals into one JSON artifact:

    {v
    { "format": "kernelgpt-bench", "schema": 1,
      "engine": "compiled", "sched": "uniform",
      "scale": "quick", "which": "all", "jobs": 1,
      "generation": { "wall_s": ..., "specs": N, "specs_per_s": ...,
                      "oracle_queries": N, "oracle_queries_per_s": ... },
      "tables": [ { "name": "table4", "wall_s": ...,
                    "executions": N, "execs_per_s": ... }, ... ],
      "total_wall_s": ... }
    v}

    [executions] counts the programs the campaigns actually ran
    ({!Fuzzer.Campaign.result.executions} summed over every campaign of
    the table), not a budget estimate, so fault-injected runs report
    their real throughput. Non-fuzzing tables (1, 2, fig 7,
    correctness) are simply never added.

    The file is written atomically (temp file + [Sys.rename], like the
    oracle answer cache) and parsed back before the rename: a torn or
    malformed artifact is a hard error, never a silently corrupt one. *)

module J = Obs.Json

type table = { bt_name : string; bt_wall_s : float; bt_executions : int }

type t = {
  b_engine : string;
  b_sched : string;
  b_scale : string;
  b_which : string;
  b_jobs : int;
  mutable b_gen_wall_s : float;
  mutable b_gen_specs : int;
  mutable b_gen_queries : int;
  mutable b_tables : table list;  (** reverse order of {!add_table} calls *)
  mutable b_total_wall_s : float;
}

let create ~engine ~sched ~scale ~which ~jobs =
  {
    b_engine = engine;
    b_sched = sched;
    b_scale = scale;
    b_which = which;
    b_jobs = jobs;
    b_gen_wall_s = 0.0;
    b_gen_specs = 0;
    b_gen_queries = 0;
    b_tables = [];
    b_total_wall_s = 0.0;
  }

let set_generation (t : t) ~wall_s ~specs ~queries =
  t.b_gen_wall_s <- wall_s;
  t.b_gen_specs <- specs;
  t.b_gen_queries <- queries

let add_table (t : t) ~name ~wall_s ~executions =
  t.b_tables <- { bt_name = name; bt_wall_s = wall_s; bt_executions = executions } :: t.b_tables

let set_total (t : t) wall_s = t.b_total_wall_s <- wall_s

let rate count wall_s = if wall_s > 0.0 then float_of_int count /. wall_s else 0.0

let to_json (t : t) : J.t =
  J.Obj
    [
      ("format", J.Str "kernelgpt-bench");
      ("schema", J.Int 1);
      ("engine", J.Str t.b_engine);
      ("sched", J.Str t.b_sched);
      ("scale", J.Str t.b_scale);
      ("which", J.Str t.b_which);
      ("jobs", J.Int t.b_jobs);
      ( "generation",
        J.Obj
          [
            ("wall_s", J.Float t.b_gen_wall_s);
            ("specs", J.Int t.b_gen_specs);
            ("specs_per_s", J.Float (rate t.b_gen_specs t.b_gen_wall_s));
            ("oracle_queries", J.Int t.b_gen_queries);
            ("oracle_queries_per_s", J.Float (rate t.b_gen_queries t.b_gen_wall_s));
          ] );
      ( "tables",
        J.List
          (List.rev_map
             (fun tb ->
               J.Obj
                 [
                   ("name", J.Str tb.bt_name);
                   ("wall_s", J.Float tb.bt_wall_s);
                   ("executions", J.Int tb.bt_executions);
                   ("execs_per_s", J.Float (rate tb.bt_executions tb.bt_wall_s));
                 ])
             t.b_tables) );
      ("total_wall_s", J.Float t.b_total_wall_s);
    ]

(** Write the artifact atomically. The body is parsed back before the
    rename; a self-check failure leaves no file behind. *)
let write (t : t) ~(file : string) : unit =
  let body = J.to_string (to_json t) ^ "\n" in
  (match J.parse body with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "Bench_json.write: emitted invalid JSON (%s)" e));
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc body;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file
