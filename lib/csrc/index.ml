(** Kernel definition index.

    This is the reproduction of the paper's LLVM-based "kernel definition
    extraction": it compiles all definitions of functions, structs, unions,
    enums and macros found in the corpus into lookup tables, evaluates
    integer constants (including the Linux [_IO*] ioctl encodings), and
    computes struct layouts for [sizeof]. Both the analysis oracle and the
    virtual kernel are built on top of it. *)

(** Constant value of a bare identifier, memoized per index. *)
type ident_const = C_int of int64 | C_str of string | C_none

type t = {
  files : Ast.file list;
  functions : (string, Ast.func_def) Hashtbl.t;
  composites : (string, Ast.composite_def) Hashtbl.t;
  enums_by_item : (string, Ast.expr) Hashtbl.t;  (* item name -> value expr *)
  enum_defs : (string, Ast.enum_def) Hashtbl.t;
  macros : (string, Ast.macro_def) Hashtbl.t;
  typedefs : (string, Ast.ctype) Hashtbl.t;
  globals : (string, Ast.global_def) Hashtbl.t;
  macro_value_cache : (string, int64 option) Hashtbl.t;
      (** memoized macro evaluations — case labels re-evaluate their
          macros on every switch execution otherwise *)
  ident_cache : (string, ident_const) Hashtbl.t;
      (** memoized identifier-constant lookups (enums, macros, strings) *)
  all_macro_values_cache : (string * int64) list option ref;
      (** memoized {!all_macro_values} result — per index, so worker
          domains (each with its own index) never share the slot and two
          alternating indexes never evict each other *)
}

let empty () =
  {
    files = [];
    functions = Hashtbl.create 256;
    composites = Hashtbl.create 256;
    enums_by_item = Hashtbl.create 256;
    enum_defs = Hashtbl.create 64;
    macros = Hashtbl.create 512;
    typedefs = Hashtbl.create 64;
    globals = Hashtbl.create 128;
    macro_value_cache = Hashtbl.create 1024;
    ident_cache = Hashtbl.create 1024;
    all_macro_values_cache = ref None;
  }

let add_file t (f : Ast.file) : t =
  List.iter
    (fun decl ->
      match decl with
      | Ast.D_func fd ->
          (* a definition with a body wins over a forward declaration *)
          let keep =
            match Hashtbl.find_opt t.functions fd.fun_name with
            | Some existing -> existing.fun_body <> [] && fd.fun_body = []
            | None -> false
          in
          if not keep then Hashtbl.replace t.functions fd.fun_name fd
      | Ast.D_composite cd -> Hashtbl.replace t.composites cd.comp_name cd
      | Ast.D_enum ed ->
          (match ed.enum_name with
          | Some n -> Hashtbl.replace t.enum_defs n ed
          | None -> ());
          (* enum items without explicit values count up from the last one *)
          let counter = ref 0L in
          List.iter
            (fun item ->
              (match item.Ast.item_value with
              | Some (Ast.Const_int v) -> counter := v
              | Some _ -> ()
              | None -> ());
              let value =
                match item.Ast.item_value with
                | Some e -> e
                | None -> Ast.Const_int !counter
              in
              Hashtbl.replace t.enums_by_item item.Ast.item_name value;
              counter := Int64.add !counter 1L)
            ed.items
      | Ast.D_macro md -> Hashtbl.replace t.macros md.macro_name md
      | Ast.D_typedef td -> Hashtbl.replace t.typedefs td.td_name td.td_type
      | Ast.D_global gd -> Hashtbl.replace t.globals gd.global_name gd)
    f.decls;
  t.all_macro_values_cache := None;
  { t with files = t.files @ [ f ] }

let of_files files = List.fold_left add_file (empty ()) files

let find_function t name = Hashtbl.find_opt t.functions name
let find_composite t name = Hashtbl.find_opt t.composites name
let find_macro t name = Hashtbl.find_opt t.macros name
let find_global t name = Hashtbl.find_opt t.globals name
let find_typedef t name = Hashtbl.find_opt t.typedefs name
let find_enum_item t name = Hashtbl.find_opt t.enums_by_item name

let typedef_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.typedefs []

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let builtin_named_width = function
  | "u8" | "__u8" | "s8" | "__s8" -> Some 1
  | "u16" | "__u16" | "s16" | "__s16" -> Some 2
  | "u32" | "__u32" | "s32" | "__s32" | "uint" | "pid_t" | "uid_t" | "gid_t" | "dev_t"
  | "umode_t" | "fmode_t" | "atomic_t" | "gfp_t" ->
      Some 4
  | "u64" | "__u64" | "s64" | "__s64" | "size_t" | "ssize_t" | "loff_t" | "off_t"
  | "ulong" | "uintptr_t" ->
      Some 8
  | "ushort" -> Some 2
  | _ -> None

(** Size and alignment of a type, in bytes. Flexible array members have
    size zero; opaque named types fall back to pointer size. *)
let rec size_align t (ty : Ast.ctype) : int * int =
  match ty with
  | Ast.Void -> (0, 1)
  | Ast.Bool -> (1, 1)
  | Ast.Int { width; _ } ->
      let b = width / 8 in
      (b, b)
  | Ast.Ptr _ | Ast.Func_ptr _ -> (8, 8)
  | Ast.Named n -> (
      match builtin_named_width n with
      | Some b -> (b, b)
      | None -> (
          match find_typedef t n with
          | Some ty' -> size_align t ty'
          | None -> (8, 8)))
  | Ast.Array (elem, Some n) ->
      let es, ea = size_align t elem in
      (es * n, ea)
  | Ast.Array (elem, None) ->
      let _, ea = size_align t elem in
      (0, ea)
  | Ast.Enum_ref _ -> (4, 4)
  | Ast.Struct_ref name | Ast.Union_ref name -> (
      match find_composite t name with
      | None -> (8, 8) (* opaque kernel-internal struct *)
      | Some cd -> composite_size_align t cd)

and composite_size_align t (cd : Ast.composite_def) : int * int =
  match cd.comp_kind with
  | Ast.Union ->
      List.fold_left
        (fun (sz, al) fld ->
          let fs, fa = size_align t fld.Ast.field_type in
          (max sz fs, max al fa))
        (0, 1) cd.fields
  | Ast.Struct ->
      let off, align =
        List.fold_left
          (fun (off, align) fld ->
            let fs, fa = size_align t fld.Ast.field_type in
            let off = (off + fa - 1) / fa * fa in
            (off + fs, max align fa))
          (0, 1) cd.fields
      in
      let size = (off + align - 1) / align * align in
      (size, align)

let sizeof t ty = fst (size_align t ty)

(** Byte offset of each field of a struct (unions: all zero). *)
let field_offsets t (cd : Ast.composite_def) : (string * int) list =
  match cd.comp_kind with
  | Ast.Union -> List.map (fun f -> (f.Ast.field_name, 0)) cd.fields
  | Ast.Struct ->
      let _, offsets =
        List.fold_left
          (fun (off, acc) fld ->
            let fs, fa = size_align t fld.Ast.field_type in
            let off = (off + fa - 1) / fa * fa in
            (off + fs, (fld.Ast.field_name, off) :: acc))
          (0, []) cd.fields
      in
      List.rev offsets

(* ------------------------------------------------------------------ *)
(* Constant evaluation                                                 *)
(* ------------------------------------------------------------------ *)

exception Not_const of string

let ioc_none = 0L
let ioc_write = 1L
let ioc_read = 2L

let ioc ~dir ~typ ~nr ~size =
  Int64.logor
    (Int64.shift_left dir 30)
    (Int64.logor (Int64.shift_left size 16) (Int64.logor (Int64.shift_left typ 8) nr))

(* C pastes adjacent string literals after macro expansion, so a body like
   [DM_DIR "/" DM_CONTROL_NODE] only parses once the string-valued macros
   are spliced in. Expansion is limited to macros whose bodies contain a
   string literal; numeric macros resolve lazily during evaluation. *)
let rec expand_string_tokens t depth toks =
  if depth > 4 then toks
  else
    List.concat_map
      (fun tok ->
        match tok with
        | Token.Ident n -> (
            match find_macro t n with
            | Some md
              when List.exists
                     (function Token.Str_lit _ -> true | _ -> false)
                     md.macro_body ->
                expand_string_tokens t (depth + 1) md.macro_body
            | _ -> [ tok ])
        | _ -> [ tok ])
      toks

let macro_expr t (md : Ast.macro_def) : Ast.expr =
  Parser.expr_of_tokens ~extra_typedefs:(typedef_names t)
    (expand_string_tokens t 0 md.macro_body)

(** Evaluate an integer constant expression, resolving identifiers through
    macros and enums and expanding the [_IO*] builtin macros. Raises
    {!Not_const} when the expression is not a compile-time constant. *)
let rec eval t (e : Ast.expr) : int64 =
  match e with
  | Ast.Const_int v -> v
  | Ast.Const_char c -> Int64.of_int (Char.code c)
  | Ast.Const_str _ -> raise (Not_const "string literal")
  | Ast.Ident name -> (
      match find_enum_item t name with
      | Some v -> eval t v
      | None -> (
          match find_macro t name with
          | Some md -> eval t (macro_expr t md)
          | None -> raise (Not_const ("unresolved identifier " ^ name))))
  | Ast.Unop (op, a) -> (
      let v = eval t a in
      match op with
      | Ast.Neg -> Int64.neg v
      | Ast.Not -> if Int64.equal v 0L then 1L else 0L
      | Ast.Bit_not -> Int64.lognot v)
  | Ast.Binop (op, a, b) -> (
      let va = eval t a and vb = eval t b in
      let bool_of f = if f then 1L else 0L in
      match op with
      | Ast.Add -> Int64.add va vb
      | Ast.Sub -> Int64.sub va vb
      | Ast.Mul -> Int64.mul va vb
      | Ast.Div -> if Int64.equal vb 0L then raise (Not_const "div by zero") else Int64.div va vb
      | Ast.Mod -> if Int64.equal vb 0L then raise (Not_const "mod by zero") else Int64.rem va vb
      | Ast.Shl -> Int64.shift_left va (Int64.to_int vb)
      | Ast.Shr -> Int64.shift_right_logical va (Int64.to_int vb)
      | Ast.Band -> Int64.logand va vb
      | Ast.Bor -> Int64.logor va vb
      | Ast.Bxor -> Int64.logxor va vb
      | Ast.Land -> bool_of ((not (Int64.equal va 0L)) && not (Int64.equal vb 0L))
      | Ast.Lor -> bool_of ((not (Int64.equal va 0L)) || not (Int64.equal vb 0L))
      | Ast.Eq -> bool_of (Int64.equal va vb)
      | Ast.Ne -> bool_of (not (Int64.equal va vb))
      | Ast.Lt -> bool_of (Int64.compare va vb < 0)
      | Ast.Le -> bool_of (Int64.compare va vb <= 0)
      | Ast.Gt -> bool_of (Int64.compare va vb > 0)
      | Ast.Ge -> bool_of (Int64.compare va vb >= 0))
  | Ast.Ternary (c, a, b) -> if not (Int64.equal (eval t c) 0L) then eval t a else eval t b
  | Ast.Cast (_, a) -> eval t a
  | Ast.Sizeof_type ty -> Int64.of_int (sizeof t ty)
  | Ast.Sizeof_expr _ -> raise (Not_const "sizeof of expression")
  | Ast.Call (name, args) -> eval_builtin t name args
  | Ast.Assign _ | Ast.Member _ | Ast.Arrow _ | Ast.Index _ | Ast.Addr_of _ | Ast.Deref _ ->
      raise (Not_const "non-constant expression")
  | Ast.Type_arg ty -> Int64.of_int (sizeof t ty)

and eval_builtin t name args : int64 =
  let arg i =
    match List.nth_opt args i with
    | Some a -> a
    | None -> raise (Not_const (Printf.sprintf "%s: missing argument %d" name i))
  in
  let size_of_arg a =
    match a with
    | Ast.Type_arg ty -> Int64.of_int (sizeof t ty)
    | e -> eval t e
  in
  match name with
  | "_IO" -> ioc ~dir:ioc_none ~typ:(eval t (arg 0)) ~nr:(eval t (arg 1)) ~size:0L
  | "_IOR" -> ioc ~dir:ioc_read ~typ:(eval t (arg 0)) ~nr:(eval t (arg 1)) ~size:(size_of_arg (arg 2))
  | "_IOW" -> ioc ~dir:ioc_write ~typ:(eval t (arg 0)) ~nr:(eval t (arg 1)) ~size:(size_of_arg (arg 2))
  | "_IOWR" ->
      ioc ~dir:(Int64.logor ioc_read ioc_write) ~typ:(eval t (arg 0)) ~nr:(eval t (arg 1))
        ~size:(size_of_arg (arg 2))
  | "_IOC" ->
      ioc ~dir:(eval t (arg 0)) ~typ:(eval t (arg 1)) ~nr:(eval t (arg 2)) ~size:(size_of_arg (arg 3))
  | "_IOC_NR" -> Int64.logand (eval t (arg 0)) 0xffL
  | "_IOC_TYPE" -> Int64.logand (Int64.shift_right_logical (eval t (arg 0)) 8) 0xffL
  | "_IOC_SIZE" -> Int64.logand (Int64.shift_right_logical (eval t (arg 0)) 16) 0x3fffL
  | "_IOC_DIR" -> Int64.logand (Int64.shift_right_logical (eval t (arg 0)) 30) 0x3L
  | other -> raise (Not_const ("call to non-constant function " ^ other))

let eval_opt t e = try Some (eval t e) with Not_const _ -> None

(** Evaluate a macro by name, if it denotes an integer constant.
    Memoized: macro definitions never change after indexing. *)
let eval_macro t name =
  match Hashtbl.find_opt t.macro_value_cache name with
  | Some v -> v
  | None ->
      let v =
        match find_macro t name with
        | None -> None
        | Some md -> (
            try Some (eval t (macro_expr t md)) with Not_const _ | Parser.Error _ -> None)
      in
      Hashtbl.replace t.macro_value_cache name v;
      v

(** All macros of this index that evaluate to an integer constant.
    Memoized per index (definitions never change after indexing), so
    worker domains — each owning its own index — never contend on a
    shared slot, and two indexes used alternately keep their own
    results. *)
let all_macro_values t : (string * int64) list =
  match !(t.all_macro_values_cache) with
  | Some vs -> vs
  | None ->
      let vs =
        Hashtbl.fold
          (fun name _ acc ->
            match eval_macro t name with Some v -> (name, v) :: acc | None -> acc)
          t.macros []
      in
      t.all_macro_values_cache := Some vs;
      vs

(** A macro that expands to a string constant (device names, paths). *)
let rec string_macro t name : string option =
  match find_macro t name with
  | None -> None
  | Some md -> (
      try
        match macro_expr t md with
        | Ast.Const_str s -> Some s
        | Ast.Ident other -> string_macro t other
        | _ -> None
      with Parser.Error _ -> None)

(** Resolve an expression of string type to its literal value: handles
    literals, string macros, and the implicit concatenation produced by
    [DM_DIR "/" DM_CONTROL_NODE]-style macro bodies (the lexer keeps the
    pieces as adjacent tokens which the macro parser folds; identifiers
    adjacent to strings are resolved here). *)
let rec eval_string t (e : Ast.expr) : string option =
  match e with
  | Ast.Const_str s -> Some s
  | Ast.Ident name -> (
      match string_macro t name with
      | Some s -> Some s
      | None -> (
          (* a macro body like [DM_DIR "/" DM_CONTROL_NODE] parses as a
             call-free juxtaposition only if the parser folded it; to stay
             robust we also try evaluating the macro body as Binop Add *)
          match find_macro t name with
          | Some md -> (
              try eval_string t (macro_expr t md) with Parser.Error _ -> None)
          | None -> None))
  | Ast.Binop (Ast.Add, a, b) -> (
      match (eval_string t a, eval_string t b) with
      | Some x, Some y -> Some (x ^ y)
      | _ -> None)
  | _ -> None

(** Memoized constant lookup for a bare identifier: enum item, integer
    macro, or string macro — the interpreter's hottest path. *)
let ident_const (t : t) (name : string) : ident_const =
  match Hashtbl.find_opt t.ident_cache name with
  | Some v -> v
  | None ->
      let v =
        match find_enum_item t name with
        | Some e -> ( match eval_opt t e with Some i -> C_int i | None -> C_none)
        | None -> (
            match eval_macro t name with
            | Some i -> C_int i
            | None -> (
                match string_macro t name with Some s -> C_str s | None -> C_none))
      in
      Hashtbl.replace t.ident_cache name v;
      v

(** All definitions whose name matches, rendered as source text: the
    [ExtractCode] stand-in for oracle prompts. *)
let extract_source t (name : string) : string option =
  match find_function t name with
  | Some fd when fd.fun_body <> [] -> Some (Pretty.func_str fd)
  | _ -> (
      match find_composite t name with
      | Some cd -> Some (Pretty.composite_str cd)
      | None -> (
          match Hashtbl.find_opt t.enum_defs name with
          | Some ed -> Some (Pretty.enum_str ed)
          | None -> (
              match find_macro t name with
              | Some md -> Some (Pretty.macro_str md)
              | None -> (
                  match find_global t name with
                  | Some gd -> Some (Pretty.global_str gd)
                  | None -> None))))

(** Source files that define [name], for diagnostics. *)
let defining_file t (name : string) : string option =
  List.find_map
    (fun f ->
      if List.exists (fun d -> String.equal (Ast.decl_name d) name) f.Ast.decls then
        Some f.Ast.path
      else None)
    t.files

let all_functions t = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.functions []
let all_composites t = Hashtbl.fold (fun _ cd acc -> cd :: acc) t.composites []
let all_globals t = Hashtbl.fold (fun _ gd acc -> gd :: acc) t.globals []

let stats t =
  ( Hashtbl.length t.functions,
    Hashtbl.length t.composites,
    Hashtbl.length t.macros,
    Hashtbl.length t.globals )
