(** Interpreter for the mini-C dialect.

    Executes driver/socket handler functions against the corpus AST with:
    - per-statement coverage (statement ids are the coverage points,
      standing in for KCOV);
    - a tracked heap: use-after-free, double-free, oversized/zero-sized
      allocations, leaked objects;
    - lock, list and completion modeling for deadlock / list-corruption /
      task-hung crashes;
    - userspace data ({!Value.uval}) crossing the boundary only through
      [copy_from_user]-style builtins, field-by-field, so that wrong
      specifications produce kernel-side zeroes instead of meaningful
      values.

    Values use {!Value}'s tagged representation: integers that fit 63
    bits are immediates, so the arithmetic core below allocates nothing
    on its fast paths. Cold paths match through {!Value.view}; hot paths
    use {!Value.is_imm}/{!Value.imm}/{!Value.boxed} directly. *)

open Value

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Goto_exc of string
exception Exec_error of string
exception Exec_timeout

type state = {
  index : Csrc.Index.t;
  globals : value Stbl.t;
  coverage : (int, unit) Hashtbl.t;
  layouts : layout Stbl.t;
      (** memoized composite layout plans for {!typed_obj}: the field
          walk, type classification and composite lookup happen once per
          struct name, not once per instantiation. Owned by the machine
          and shared across the per-execution states it creates. *)
  frames : Pool.t;
      (** free-list pool for the jit's per-call slot arrays. Owned by
          the machine (like [layouts]) so steady-state execution reuses
          frames across programs instead of allocating per guest call. *)
  mutable tracked_objs : obj list;  (** explicit allocations, for leak scan *)
  mutable next_oid : int;
  mutable steps : int;
  step_budget : int;
  mutable depth : int;
  mutable spawn_fd : (string -> int64) option;
      (** installed by the syscall layer: allocate a new file descriptor
          backed by the named operation-handler global
          ([anon_inode_getfd], used by kvm-style drivers) *)
  mutable on_cover : int -> unit;
      (** coverage hook: defaults to recording into {!coverage}; the
          batch executor redirects it into a reusable per-campaign sink
          so hot loops allocate nothing per statement *)
}

(** One composite field in a layout plan: either a shared immutable zero
    (scalars, char arrays — values are never mutated in place, so one
    static value serves every instantiation) or a filler that must
    allocate fresh objects (nested composites, non-char arrays). *)
and filler = F_const of value | F_fill of (state -> string -> value)

and layout = { l_names : string array; l_fillers : filler array }
(** interned field names (shared with every instance as the typed
    object's [tnames]) and how to fill each *)

(* When the caller supplies its own coverage hook the per-state table is
   never consulted — all sink-driven states share this one dead table
   instead of allocating ~20 words each, millions of times per
   campaign. It is never written (the hook replaces the default
   recorder), so sharing it across states and domains is safe. *)
let dead_coverage : (int, unit) Hashtbl.t = Hashtbl.create 1

let create ~(index : Csrc.Index.t) ?layouts ?frames ?(step_budget = 200_000)
    ?on_cover () =
  let coverage =
    match on_cover with Some _ -> dead_coverage | None -> Hashtbl.create 1024
  in
  let st =
    {
      index;
      globals = Stbl.create 16;
      coverage;
      layouts = (match layouts with Some l -> l | None -> Stbl.create 16);
      frames = (match frames with Some f -> f | None -> Pool.create ());
      tracked_objs = [];
      next_oid = 1;
      steps = 0;
      step_budget;
      depth = 0;
      spawn_fd = None;
      on_cover = ignore;
    }
  in
  (st.on_cover <-
     match on_cover with
     | Some f -> f
     | None -> fun sid -> Hashtbl.replace st.coverage sid ());
  st

let new_obj st ~fn ~tracked slots =
  let o = { oid = st.next_oid; alloc_fn = fn; freed = false; data = slots } in
  st.next_oid <- st.next_oid + 1;
  if tracked then st.tracked_objs <- o :: st.tracked_objs;
  o

let fields_obj st ~fn ?(tracked = false) () =
  new_obj st ~fn ~tracked (Fields (Stbl.create 8))

(* ------------------------------------------------------------------ *)
(* Typed object construction                                           *)
(* ------------------------------------------------------------------ *)

let rec is_char_type (index : Csrc.Index.t) (ty : Csrc.Ast.ctype) =
  match ty with
  | Csrc.Ast.Int { width = 8; _ } -> true
  | Csrc.Ast.Named n -> (
      match Csrc.Index.find_typedef index n with
      | Some t -> is_char_type index t
      | None -> n = "u8" || n = "__u8" || n = "s8" || n = "__s8")
  | _ -> false

(* shared immutable zeros: one static value serves every instantiation *)
let empty_str : value = vstr ""

(** Default value for a struct field or local of the given type. *)
let rec zero_value st ~fn (ty : Csrc.Ast.ctype) : value =
  match ty with
  | Csrc.Ast.Void | Csrc.Ast.Bool | Csrc.Ast.Int _ | Csrc.Ast.Named _
  | Csrc.Ast.Enum_ref _ | Csrc.Ast.Ptr _ | Csrc.Ast.Func_ptr _ ->
      vzero
  | Csrc.Ast.Array (elem, _) when is_char_type st.index elem -> empty_str
  | Csrc.Ast.Array (elem, Some n) when n > 0 && n <= 4096 ->
      let cells = Array.init n (fun _ -> zero_value st ~fn elem) in
      vptr (new_obj st ~fn ~tracked:false (Cells cells))
  | Csrc.Ast.Array (_, _) -> vptr (new_obj st ~fn ~tracked:false (Cells [||]))
  | Csrc.Ast.Struct_ref name | Csrc.Ast.Union_ref name -> vptr (typed_obj st ~fn name)

(** Classify a field type once: fields whose zero is an immutable
    scalar share one static value across every instantiation; the rest
    compile to a filler that allocates per instantiation in the same
    order {!zero_value} would. *)
and filler_of (index : Csrc.Index.t) (ty : Csrc.Ast.ctype) : filler =
  match ty with
  | Csrc.Ast.Void | Csrc.Ast.Bool | Csrc.Ast.Int _ | Csrc.Ast.Named _
  | Csrc.Ast.Enum_ref _ | Csrc.Ast.Ptr _ | Csrc.Ast.Func_ptr _ ->
      F_const vzero
  | Csrc.Ast.Array (elem, _) when is_char_type index elem -> F_const empty_str
  | Csrc.Ast.Array (elem, Some n) when n > 0 && n <= 4096 -> (
      match filler_of index elem with
      | F_const z ->
          (* immutable zeros: one shared element value, no per-element
             closure calls (memset, not a field-by-field walk) *)
          F_fill (fun st fn -> vptr (new_obj st ~fn ~tracked:false (Cells (Array.make n z))))
      | F_fill f -> F_fill (fun st fn -> vptr (new_obj st ~fn ~tracked:false (Cells (Array.init n (fun _ -> f st fn))))))
  | Csrc.Ast.Array (_, _) ->
      F_fill (fun st fn -> vptr (new_obj st ~fn ~tracked:false (Cells [||])))
  | Csrc.Ast.Struct_ref name | Csrc.Ast.Union_ref name ->
      F_fill (fun st fn -> vptr (typed_obj st ~fn name))

(** Object for a struct/union type, fields initialized per the layout.
    The layout plan (field list, type classification, composite lookup)
    is computed once per struct name and memoized in [st.layouts].
    Field names are interned so every later probe on them takes the
    {!Value.Stbl} pointer-compare fast path. *)
and typed_obj st ~fn (comp_name : string) : obj =
  let layout =
    match Stbl.find_opt st.layouts comp_name with
    | Some l -> l
    | None ->
        let l =
          match Csrc.Index.find_composite st.index comp_name with
          | Some cd ->
              let fields = Array.of_list cd.fields in
              {
                l_names =
                  Array.map (fun f -> intern f.Csrc.Ast.field_name) fields;
                l_fillers =
                  Array.map (fun f -> filler_of st.index f.Csrc.Ast.field_type) fields;
              }
          | None -> { l_names = [||]; l_fillers = [||] }
        in
        Stbl.replace st.layouts comp_name l;
        l
  in
  let nf = Array.length layout.l_names in
  if nf = 0 then
    (* unknown composite (mutex, timer_list, ...): plain lazy fields,
       every store is an out-of-layout name anyway *)
    new_obj st ~fn ~tracked:false (Fields (Stbl.create 0))
  else begin
    let cells = Array.make nf vzero in
    for i = 0 to nf - 1 do
      match layout.l_fillers.(i) with
      | F_const v -> cells.(i) <- v
      | F_fill f -> cells.(i) <- f st fn
    done;
    new_obj st ~fn ~tracked:false (Typed { tnames = layout.l_names; tcells = cells })
  end

(* ------------------------------------------------------------------ *)
(* Object access                                                       *)
(* ------------------------------------------------------------------ *)

let check_alive ~fn o = if o.freed then Crash.raise_crash Crash.Kasan_uaf fn

(* A store to a name outside a typed object's layout (lock/list/debug
   pseudo-fields like "__locked", "__deref" cell fallbacks) migrates the
   object to the generic hash-table shape, bindings preserved. *)
let migrate_to_fields o (tf : Value.tfields) : value Stbl.t =
  let n = Array.length tf.tnames in
  let tbl = Stbl.create (n + 4) in
  for i = 0 to n - 1 do
    Stbl.replace tbl tf.tnames.(i) tf.tcells.(i)
  done;
  o.data <- Fields tbl;
  tbl

let obj_fields ~fn o =
  check_alive ~fn o;
  match o.data with
  | Fields tbl -> tbl
  | Typed tf -> migrate_to_fields o tf
  | Opaque ->
      (* promote a raw allocation on first structured access *)
      let tbl = Stbl.create 8 in
      o.data <- Fields tbl;
      tbl
  | Cells _ -> raise (Exec_error "field access on array object")

let get_field ~fn o name =
  check_alive ~fn o;
  match o.data with
  | Typed tf ->
      let i = Value.tindex tf name in
      if i >= 0 then tf.tcells.(i) else vzero
  | Fields tbl -> (
      match Stbl.find_opt tbl name with Some v -> v | None -> vzero)
  | Opaque ->
      (* promote on read too: the shape switch is observable to the
         structural memcpy/memset arms *)
      o.data <- Fields (Stbl.create 8);
      vzero
  | Cells _ -> raise (Exec_error "field access on array object")

let set_field ~fn o name v =
  check_alive ~fn o;
  match o.data with
  | Typed tf ->
      let i = Value.tindex tf name in
      if i >= 0 then tf.tcells.(i) <- v
      else Stbl.replace (migrate_to_fields o tf) name v
  | Fields tbl -> Stbl.replace tbl name v
  | Opaque ->
      let tbl = Stbl.create 8 in
      o.data <- Fields tbl;
      Stbl.replace tbl name v
  | Cells _ -> raise (Exec_error "field access on array object")

(* Precomputed-hash mirrors for the jit, which knows every field name
   at compile time. [h] must be [Stbl.hash name]. *)
let get_field_h ~fn o h name =
  check_alive ~fn o;
  match o.data with
  | Typed tf ->
      let i = Value.tindex tf name in
      if i >= 0 then tf.tcells.(i) else vzero
  | Fields tbl -> (
      match Stbl.find_opt_h tbl h name with Some v -> v | None -> vzero)
  | Opaque ->
      o.data <- Fields (Stbl.create 8);
      vzero
  | Cells _ -> raise (Exec_error "field access on array object")

let set_field_h ~fn o h name v =
  check_alive ~fn o;
  match o.data with
  | Typed tf ->
      let i = Value.tindex tf name in
      if i >= 0 then tf.tcells.(i) <- v
      else Stbl.replace (migrate_to_fields o tf) name v
  | Fields tbl -> Stbl.replace_h tbl h name v
  | Opaque ->
      let tbl = Stbl.create 8 in
      o.data <- Fields tbl;
      Stbl.replace_h tbl h name v
  | Cells _ -> raise (Exec_error "field access on array object")

(* Structural struct copy: every binding of [src_o] lands in [dst_o].
   Mirrors the historical hash-table/hash-table copy — any combo
   involving a raw or array shape stays a no-op. *)
let copy_struct ~fn dst_o src_o =
  match (dst_o.data, src_o.data) with
  | (Fields _ | Typed _), Fields s -> Stbl.iter (fun k v -> set_field ~fn dst_o k v) s
  | (Fields _ | Typed _), Typed tf ->
      Array.iteri (fun i n -> set_field ~fn dst_o n tf.tcells.(i)) tf.tnames
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Userspace data materialization                                      *)
(* ------------------------------------------------------------------ *)

let rec value_of_uval st ~fn (uv : uval) : value =
  match uv with
  | U_int v -> vint v
  | U_str s -> vstr s
  | U_null -> vzero
  | U_arr xs ->
      (* single pass, left to right like the List.map it replaces: the
         per-element materialization allocates, so order is oid order *)
      let n = List.length xs in
      let cells = Array.make n vzero in
      let rec fill i = function
        | [] -> ()
        | x :: rest ->
            cells.(i) <- value_of_uval st ~fn x;
            fill (i + 1) rest
      in
      fill 0 xs;
      vptr (new_obj st ~fn ~tracked:false (Cells cells))
  | U_struct (_, fields) ->
      let o = fields_obj st ~fn () in
      List.iter (fun (f, v) -> set_field ~fn o f (value_of_uval st ~fn v)) fields;
      vptr o

(** Copy user data into an existing kernel object, field by field. *)
let materialize_into st ~fn (dst : obj) (uv : uval) : unit =
  match uv with
  | U_struct (_, fields) ->
      List.iter (fun (f, v) -> set_field ~fn dst f (value_of_uval st ~fn v)) fields
  | U_int v -> set_field ~fn dst "__scalar" (vint v)
  | U_str s -> set_field ~fn dst "__scalar" (vstr s)
  | U_arr _ -> set_field ~fn dst "__scalar" (value_of_uval st ~fn uv)
  | U_null -> ()

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type env = { st : state; locals : value Stbl.t; fn : string }

type lvalue =
  | L_local of string
  | L_global of string
  | L_field of obj * string
  | L_cell of obj * int


let step_state (st : state) =
  st.steps <- st.steps + 1;
  if st.steps > st.step_budget then raise Exec_timeout

let step env = step_state env.st

let cover env (s : Csrc.Ast.stmt) = env.st.on_cover s.Csrc.Ast.sid

(* Globals initialize lazily on first touch: a whole-kernel boot carries
   a thousand module globals, of which any one program touches a handful. *)
let rec get_global (st : state) (name : string) : value option =
  match Stbl.find_opt st.globals name with
  | Some v -> Some v
  | None -> (
      match Csrc.Index.find_global st.index name with
      | None -> None
      | Some g ->
          let v = init_global st g in
          Stbl.replace st.globals name v;
          Some v)

and init_global (st : state) (g : Csrc.Ast.global_def) : value =
  let fn = "__init" in
  let base =
    match g.global_type with
    | Csrc.Ast.Struct_ref n | Csrc.Ast.Union_ref n -> vptr (typed_obj st ~fn n)
    | Csrc.Ast.Array (elem, Some count) when count > 0 && count <= 4096 ->
        let cells = Array.init count (fun _ -> zero_value st ~fn elem) in
        vptr (new_obj st ~fn ~tracked:false (Cells cells))
    | ty -> zero_value st ~fn ty
  in
  (* publish before applying the initializer so cross-references resolve *)
  Stbl.replace st.globals g.global_name base;
  (match g.global_init with
  | None -> ()
  | Some gi -> (
      match gi with
      | Csrc.Ast.Init_designated fields when not (is_imm base) -> (
          match boxed base with
          | B_ptr o ->
              List.iter (fun (f, gi) -> set_field ~fn o f (init_value st gi)) fields
          | _ -> Stbl.replace st.globals g.global_name (init_value st gi))
      | _ -> Stbl.replace st.globals g.global_name (init_value st gi)));
  match Stbl.find_opt st.globals g.global_name with Some v -> v | None -> base

and get_global_h (st : state) (h : int) (name : string) : value option =
  (* precomputed-hash twin of {!get_global} for callers that resolve
     the same name repeatedly (the machine's handler dispatch) *)
  match Stbl.find_opt_h st.globals h name with
  | Some v -> Some v
  | None -> (
      match Csrc.Index.find_global st.index name with
      | None -> None
      | Some g ->
          let v = init_global st g in
          Stbl.replace_h st.globals h name v;
          Some v)

and init_value (st : state) (gi : Csrc.Ast.ginit) : value =
  let fn = "__init" in
  match gi with
  | Csrc.Ast.Init_expr (Csrc.Ast.Ident name) -> (
      match Csrc.Index.find_function st.index name with
      | Some _ -> vfn name
      | None -> (
          match get_global st name with
          | Some v -> v
          | None -> (
              match Csrc.Index.eval_macro st.index name with
              | Some v -> vint v
              | None -> (
                  match Csrc.Index.find_enum_item st.index name with
                  | Some e -> (
                      match Csrc.Index.eval_opt st.index e with Some v -> vint v | None -> vzero)
                  | None -> (
                      match Csrc.Index.string_macro st.index name with
                      | Some s -> vstr s
                      | None -> vzero)))))
  | Csrc.Ast.Init_expr (Csrc.Ast.Addr_of (Csrc.Ast.Ident name)) -> (
      match get_global st name with Some v -> v | None -> vzero)
  | Csrc.Ast.Init_expr e -> (
      match Csrc.Index.eval_opt st.index e with
      | Some v -> vint v
      | None -> (
          match Csrc.Index.eval_string st.index e with Some s -> vstr s | None -> vzero))
  | Csrc.Ast.Init_designated fields ->
      let o = fields_obj st ~fn () in
      List.iter (fun (f, gi) -> set_field ~fn o f (init_value st gi)) fields;
      vptr o
  | Csrc.Ast.Init_list items ->
      let cells = Array.of_list (List.map (init_value st) items) in
      vptr (new_obj st ~fn ~tracked:false (Cells cells))

let lookup_var env name : value option =
  match Stbl.find_opt env.locals name with
  | Some v -> Some v
  | None -> get_global env.st name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let as_int v = Value.to_int v

let bool_v = vbool

(* Strict binop slow path: at least one operand is boxed. The Ptr/Str
   comparison arms live here; everything else coerces through {!as_int}
   exactly as before. (The historical [Ptr = 0] arms fell through to the
   int path with identical results — Ptr coerces to 1 — so they are
   simply gone.) *)
let binop_slow ~fn (op : Csrc.Ast.binop) (va : value) (vb : value) : value =
  let special =
    match op with
    | Csrc.Ast.Eq | Csrc.Ast.Ne ->
        if is_imm va || is_imm vb then None
        else (
          match (boxed va, boxed vb) with
          | B_ptr x, B_ptr y ->
              let e = x.oid = y.oid in
              Some (vbool (if op = Csrc.Ast.Eq then e else not e))
          | B_str x, B_str y ->
              let e = String.equal x y in
              Some (vbool (if op = Csrc.Ast.Eq then e else not e))
          | _ -> None)
    | _ -> None
  in
  match special with
  | Some r -> r
  | None -> (
      let x = as_int va and y = as_int vb in
      match op with
      | Csrc.Ast.Add -> vint (Int64.add x y)
      | Csrc.Ast.Sub -> vint (Int64.sub x y)
      | Csrc.Ast.Mul -> vint (Int64.mul x y)
      | Csrc.Ast.Div ->
          if Int64.equal y 0L then Crash.raise_crash Crash.Divide_error fn
          else vint (Int64.div x y)
      | Csrc.Ast.Mod ->
          if Int64.equal y 0L then Crash.raise_crash Crash.Divide_error fn
          else vint (Int64.rem x y)
      | Csrc.Ast.Shl -> vint (Int64.shift_left x (Int64.to_int (Int64.logand y 63L)))
      | Csrc.Ast.Shr -> vint (Int64.shift_right_logical x (Int64.to_int (Int64.logand y 63L)))
      | Csrc.Ast.Band -> vint (Int64.logand x y)
      | Csrc.Ast.Bor -> vint (Int64.logor x y)
      | Csrc.Ast.Bxor -> vint (Int64.logxor x y)
      | Csrc.Ast.Eq -> vbool (Int64.equal x y)
      | Csrc.Ast.Ne -> vbool (not (Int64.equal x y))
      | Csrc.Ast.Lt -> vbool (Int64.compare x y < 0)
      | Csrc.Ast.Le -> vbool (Int64.compare x y <= 0)
      | Csrc.Ast.Gt -> vbool (Int64.compare x y > 0)
      | Csrc.Ast.Ge -> vbool (Int64.compare x y >= 0)
      | Csrc.Ast.Land | Csrc.Ast.Lor -> assert false)

(** Strict (non-short-circuit) binary operators over already-evaluated
    values: shared by the tree-walking evaluator and the closure
    compiler ({!Jit}), so both produce identical results and crashes.

    Both-immediate operands take native-int fast paths that allocate
    nothing unless the exact 64-bit result needs the 64th bit; all
    semantics stay 64-bit two's-complement (an immediate is its own
    sign-extension, so native compares, bitwise ops and truncating
    div/mod agree with the [Int64] versions bit for bit). *)
let binop_values ~fn (op : Csrc.Ast.binop) (va : value) (vb : value) : value =
  if is_imm va && is_imm vb then
    let a = imm va and b = imm vb in
    match op with
    | Csrc.Ast.Add ->
        let s = a + b in
        if (a lxor s) land (b lxor s) < 0 then
          vint (Int64.add (Int64.of_int a) (Int64.of_int b))
        else fix s
    | Csrc.Ast.Sub ->
        let s = a - b in
        if (a lxor b) land (a lxor s) < 0 then
          vint (Int64.sub (Int64.of_int a) (Int64.of_int b))
        else fix s
    | Csrc.Ast.Mul ->
        (* exact when both factors fit 31 bits; otherwise fall back to
           the 64-bit multiply and renormalize *)
        if
          a >= -0x4000_0000 && a < 0x4000_0000 && b >= -0x4000_0000
          && b < 0x4000_0000
        then fix (a * b)
        else vint (Int64.mul (Int64.of_int a) (Int64.of_int b))
    | Csrc.Ast.Div ->
        if b = 0 then Crash.raise_crash Crash.Divide_error fn
        else if b = -1 then
          (* negating the 63-bit minimum needs the boxed fallback (and
             native division would trap on it) *)
          vint (Int64.neg (Int64.of_int a))
        else fix (a / b)
    | Csrc.Ast.Mod ->
        if b = 0 then Crash.raise_crash Crash.Divide_error fn
        else if b = -1 then vzero
        else fix (a mod b)
    | Csrc.Ast.Shl -> vint (Int64.shift_left (Int64.of_int a) (b land 63))
    | Csrc.Ast.Shr -> vint (Int64.shift_right_logical (Int64.of_int a) (b land 63))
    | Csrc.Ast.Band -> fix (a land b)
    | Csrc.Ast.Bor -> fix (a lor b)
    | Csrc.Ast.Bxor -> fix (a lxor b)
    | Csrc.Ast.Eq -> vbool (a = b)
    | Csrc.Ast.Ne -> vbool (a <> b)
    | Csrc.Ast.Lt -> vbool (a < b)
    | Csrc.Ast.Le -> vbool (a <= b)
    | Csrc.Ast.Gt -> vbool (a > b)
    | Csrc.Ast.Ge -> vbool (a >= b)
    | Csrc.Ast.Land | Csrc.Ast.Lor -> assert false
  else binop_slow ~fn op va vb

(* ------------------------------------------------------------------ *)
(* Builtins (value level)                                              *)
(* ------------------------------------------------------------------ *)

let expect_obj ~fn what v =
  if is_imm v then
    if imm v = 0 then Crash.raise_crash Crash.Gpf fn
    else raise (Exec_error (Printf.sprintf "%s: %s expects a kernel pointer" fn what))
  else
    match boxed v with
    | B_ptr o -> o
    | _ -> raise (Exec_error (Printf.sprintf "%s: %s expects a kernel pointer" fn what))

(* Every name the [builtin_values] match below handles. The closure
   compiler ({!Jit}) consults this at compile time to decide
   builtin-vs-user dispatch once per call site instead of once per
   execution — keep it in lockstep with the match arms. Builtins shadow
   user functions of the same name, exactly as [eval_call] tries
   [builtin] first. *)
let builtin_names =
  [
    "copy_from_user"; "copy_to_user"; "memdup_user"; "strncpy_from_user"; "kmalloc";
    "kzalloc"; "kvmalloc"; "kcalloc"; "vmalloc"; "vzalloc"; "kfree"; "vfree"; "kvfree";
    "mutex_init"; "spin_lock_init"; "mutex_lock"; "spin_lock"; "mutex_unlock";
    "spin_unlock"; "list_add"; "list_add_tail"; "list_del"; "INIT_LIST_HEAD"; "WARN_ON";
    "WARN_ON_ONCE"; "BUG_ON"; "init_completion"; "complete";
    "wait_for_completion_killable"; "timer_setup"; "mod_timer"; "del_timer";
    "del_timer_sync"; "schedule_timeout"; "msleep"; "capable"; "printk"; "pr_info";
    "pr_err"; "pr_warn"; "memset"; "memcpy"; "memcmp"; "strcmp"; "strncmp"; "strlen";
    "strncpy"; "strscpy"; "snprintf"; "min"; "min_t"; "max"; "max_t";
    "array_index_nospec"; "noop_llseek"; "nonseekable_open"; "stream_open"; "_IOC_NR";
    "_IOC_TYPE"; "_IOC_SIZE"; "_IOC_DIR"; "_IO"; "_IOR"; "_IOW"; "_IOWR"; "_IOC";
    "anon_inode_getfd"; "misc_register"; "misc_deregister"; "register_chrdev";
    "unregister_chrdev"; "cdev_init"; "cdev_add"; "device_create"; "class_create";
    "sock_register"; "proto_register"; "get_user"; "put_user";
  ]

let builtin_tbl : unit Stbl.t =
  let tbl = Stbl.create 128 in
  List.iter (fun n -> Stbl.replace tbl n ()) builtin_names;
  tbl

(** The same set as a name -> dense id map: the dispatch match in
    {!builtin_values_id} is an integer jump table, and the jit resolves
    a call site's id once at compile time instead of re-matching the
    name per execution. *)
let builtin_ids : int Stbl.t =
  let tbl = Stbl.create 128 in
  List.iteri (fun i n -> Stbl.replace tbl n i) builtin_names;
  tbl

(** How a builtin call site reaches its arguments, abstracted over the
    engine: the tree-walking wrapper evaluates argument ASTs on demand,
    the closure compiler ({!Jit}) invokes pre-compiled per-argument
    closures. Arguments stay lazy — several builtins evaluate only some
    of their arguments, or none, or one of them twice, and that order is
    part of the dual-engine identity contract. *)
type builtin_ctx = {
  bn : int;  (** argument count at the call site *)
  bv : int -> value;
      (** evaluate argument [i]; user pointers to plain byte buffers
          read as [Str] (string-builtin view); out of range is 0 *)
  braw : int -> value;  (** evaluate argument [i] without the string view *)
  bstore : int -> value -> bool;
      (** store through argument [i] as an lvalue; false if it is not one *)
  bsstore : int -> value -> bool;
      (** store through an [&x]-shaped argument [i] ([copy_from_user] on
          a scalar local); false if the shape does not match *)
  bfops : unit -> string option;
      (** first [&ident] argument naming an operation-handler global *)
  bio : unit -> value;  (** the [_IO*] encoder applied to the original call *)
}

let builtin_values_id (st : state) ~fn (id : int) (name : string) (b : builtin_ctx) :
    value option =
  let v = b.bv in
  let iv i = as_int (v i) in
  let alloc_checked size ~vmalloc =
    if vmalloc && Int64.equal size 0L then Crash.raise_crash Crash.Zero_size_vmalloc fn;
    if Int64.compare size 0x7fffffffL > 0 then Crash.raise_crash Crash.Kmalloc_bug fn;
    if Int64.compare size 0L <= 0 then vzero
    else vptr (new_obj st ~fn ~tracked:true Opaque)
  in
  let scalar_of_uval = function
    | U_int x -> vint x
    | U_str s -> vstr s
    | U_arr (U_int x :: _) -> vint x
    | U_arr _ | U_struct _ | U_null -> vzero
  in
  match id with
  | 0 -> (
      let src = v 1 in
      let copy_user uv =
        if uv = U_null then vone
        else
          match view (b.braw 0) with
          | Ptr o ->
              check_alive ~fn o;
              materialize_into st ~fn o uv;
              vzero
          | _ -> if b.bsstore 0 (scalar_of_uval uv) then vzero else vone
      in
      match view src with
      | Uptr uv -> Some (copy_user uv)
      | Str s -> Some (copy_user (U_str s))
      | Ptr src_o -> (
          check_alive ~fn src_o;
          match view (b.braw 0) with
          | Ptr dst_o ->
              check_alive ~fn dst_o;
              copy_struct ~fn dst_o src_o;
              Some vzero
          | _ -> Some vone)
      | Int _ | Unit | Fn _ -> Some vone)
  | 1 -> (
      match view (v 0) with
      | Uptr U_null | Int 0L -> Some vone
      | _ -> Some vzero)
  | 2 -> (
      match view (v 0) with
      | Uptr U_null | Int 0L -> Some vzero
      | Uptr uv ->
          let o = new_obj st ~fn ~tracked:true (Fields (Stbl.create 8)) in
          materialize_into st ~fn o uv;
          Some (vptr o)
      | Ptr o -> Some (vptr o)
      | _ -> Some vzero)
  | 3 -> (
      match (view (v 0), view (v 1)) with
      | _, (Uptr U_null | Int 0L) -> Some (vint (-14L))
      | lv, Uptr (U_str s) ->
          (match lv with
          | Ptr o -> set_field ~fn o "__scalar" (vstr s)
          | _ -> ());
          ignore (b.bstore 0 (vstr s));
          Some (vint (Int64.of_int (String.length s)))
      | _, _ -> Some vzero)
  | 4 | 5 -> Some (alloc_checked (iv 0) ~vmalloc:false)
  | 6 -> Some (alloc_checked (iv 0) ~vmalloc:false)
  | 7 -> Some (alloc_checked (Int64.mul (iv 0) (iv 1)) ~vmalloc:false)
  | 8 | 9 -> Some (alloc_checked (iv 0) ~vmalloc:true)
  | 10 | 11 | 12 -> (
      match view (v 0) with
      | Int 0L | Unit -> Some vzero
      | Ptr o ->
          if o.freed then Crash.raise_crash Crash.Double_free fn;
          o.freed <- true;
          Some vzero
      | _ -> Some vzero)
  | 13 | 14 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__locked" vzero;
      Some vzero
  | 15 | 16 ->
      let o = expect_obj ~fn name (v 0) in
      if truthy (get_field ~fn o "__locked") then Crash.raise_crash Crash.Deadlock fn;
      set_field ~fn o "__locked" vone;
      Some vzero
  | 17 | 18 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__locked" vzero;
      Some vzero
  | 19 | 20 ->
      let o = expect_obj ~fn name (v 0) in
      if truthy (get_field ~fn o "__on_list") then
        Crash.raise_crash Crash.List_corruption fn;
      set_field ~fn o "__on_list" vone;
      Some vzero
  | 21 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__on_list" vzero;
      Some vzero
  | 22 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__on_list" vzero;
      Some vzero
  | 23 | 24 ->
      let c = v 0 in
      if truthy c then Crash.raise_crash Crash.Warning fn;
      Some c
  | 25 ->
      if truthy (v 0) then Crash.raise_crash Crash.Kernel_bug fn;
      Some vzero
  | 26 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__done" vzero;
      Some vzero
  | 27 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__done" vone;
      Some vzero
  | 28 ->
      let o = expect_obj ~fn name (v 0) in
      if not (truthy (get_field ~fn o "__done")) then
        Crash.raise_crash Crash.Task_hung fn;
      Some vzero
  | 29 ->
      let o = expect_obj ~fn name (v 0) in
      set_field ~fn o "__pending" vzero;
      Some vzero
  | 30 ->
      let o = expect_obj ~fn name (v 0) in
      if truthy (get_field ~fn o "__pending") then Crash.raise_crash Crash.Odebug fn;
      set_field ~fn o "__pending" vone;
      Some vzero
  | 31 | 32 -> (
      match view (v 0) with
      | Ptr o ->
          set_field ~fn o "__pending" vzero;
          Some vzero
      | _ -> Some vzero)
  | 33 | 34 -> Some vzero
  | 35 -> Some vone
  | 36 | 37 | 38 | 39 -> Some vzero
  | 40 -> (
      match view (v 0) with
      | Ptr o ->
          check_alive ~fn o;
          (match o.data with
          | Fields tbl -> Stbl.reset tbl
          | Typed tf -> Array.fill tf.tcells 0 (Array.length tf.tcells) vzero
          | Cells cells -> Array.fill cells 0 (Array.length cells) (vint (iv 1))
          | Opaque -> ());
          Some (v 0)
      | _ -> Some vzero)
  | 41 -> (
      match (view (v 0), view (v 1)) with
      | Ptr d, Ptr s ->
          check_alive ~fn d;
          check_alive ~fn s;
          (match (d.data, s.data) with
          | Cells dc, Cells sc ->
              Array.blit sc 0 dc 0 (min (Array.length sc) (Array.length dc))
          | _ -> copy_struct ~fn d s);
          Some (v 0)
      | _ -> Some vzero)
  | 42 -> (
      match (view (v 0), view (v 1)) with
      | Str a, Str b -> Some (vint (Int64.of_int (String.compare a b)))
      | Ptr a, Ptr b -> Some (vbool (a.oid <> b.oid))
      | _ -> Some vone)
  | 43 -> (
      match (view (v 0), view (v 1)) with
      | Str a, Str b -> Some (vint (Int64.of_int (String.compare a b)))
      | _ -> Some vone)
  | 44 -> (
      match (view (v 0), view (v 1)) with
      | Str a, Str b ->
          let n = Int64.to_int (iv 2) in
          let trunc s = if String.length s > n then String.sub s 0 n else s in
          Some (vint (Int64.of_int (String.compare (trunc a) (trunc b))))
      | _ -> Some vone)
  | 45 -> (
      match view (v 0) with
      | Str s -> Some (vint (Int64.of_int (String.length s)))
      | _ -> Some vzero)
  | 46 | 47 ->
      let src = match view (v 1) with Str s -> s | _ -> Value.to_string (v 1) in
      let n = Int64.to_int (iv 2) in
      let src = if String.length src > n then String.sub src 0 n else src in
      if b.bstore 0 (vstr src) then Some (vint (Int64.of_int (String.length src)))
      else Some vzero
  | 48 ->
      let text = match view (v 2) with Str s -> s | _ -> Value.to_string (v 2) in
      if b.bstore 0 (vstr text) then Some (vint (Int64.of_int (String.length text)))
      else Some vzero
  | 49 | 50 -> (
      match b.bn with
      | 2 -> Some (vint (min (as_int (b.braw 0)) (as_int (b.braw 1))))
      | 3 -> Some (vint (min (as_int (b.braw 1)) (as_int (b.braw 2))))
      | _ -> Some vzero)
  | 51 | 52 -> (
      match b.bn with
      | 2 -> Some (vint (max (as_int (b.braw 0)) (as_int (b.braw 1))))
      | 3 -> Some (vint (max (as_int (b.braw 1)) (as_int (b.braw 2))))
      | _ -> Some vzero)
  | 53 ->
      let i = iv 0 and n = iv 1 in
      Some (vint (if Int64.compare i n < 0 && Int64.compare i 0L >= 0 then i else 0L))
  | 54 | 55 | 56 -> Some vzero
  | 57 -> Some (vint (Int64.logand (iv 0) 0xffL))
  | 58 -> Some (vint (Int64.logand (Int64.shift_right_logical (iv 0) 8) 0xffL))
  | 59 -> Some (vint (Int64.logand (Int64.shift_right_logical (iv 0) 16) 0x3fffL))
  | 60 -> Some (vint (Int64.logand (Int64.shift_right_logical (iv 0) 30) 0x3L))
  | 61 | 62 | 63 | 64 | 65 ->
      (* constant contexts resolve through the index; runtime occurrences
         use the same encoder *)
      Some (b.bio ())
  | 66 -> (
      (* anon_inode_getfd("name", &some_fops, priv, flags) returns a fresh
         fd dispatching through the given operation handler *)
      match (b.bfops (), st.spawn_fd) with
      | Some g, Some spawn -> Some (vint (spawn g))
      | _ -> Some (vint (-22L)))
  | 67 | 68 | 69 | 70
  | 71 | 72 | 73 | 74 | 75
  | 76 ->
      Some vzero
  | 77 | 78 -> Some vzero
  | _ -> None


(** The name-keyed face of {!builtin_values_id}: the value-level
    builtin core shared by both engines. *)
let builtin_values (st : state) ~fn (name : string) (b : builtin_ctx) : value option =
  match Stbl.find_opt builtin_ids name with
  | Some id -> builtin_values_id st ~fn id name b
  | None -> None

let rec eval env (e : Csrc.Ast.expr) : value =
  match e with
  | Csrc.Ast.Const_int v -> vint v
  | Csrc.Ast.Const_char c -> fix (Char.code c)
  | Csrc.Ast.Const_str s -> vstr s
  | Csrc.Ast.Ident name -> eval_ident env name
  | Csrc.Ast.Unop (op, a) -> (
      let v = eval env a in
      match op with
      | Csrc.Ast.Neg -> vneg v
      | Csrc.Ast.Not -> vbool (not (truthy v))
      | Csrc.Ast.Bit_not -> vlognot v)
  | Csrc.Ast.Binop (op, a, b) -> eval_binop env op a b
  | Csrc.Ast.Assign (lhs, rhs) ->
      let v = eval env rhs in
      store env (eval_lval env lhs) v;
      v
  | Csrc.Ast.Call (name, args) -> eval_call env name args
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let base = eval env a in
      if is_imm base then Crash.raise_crash Crash.Gpf env.fn
      else
        match boxed base with
        | B_ptr o -> get_field ~fn:env.fn o f
        | B_uptr (U_struct (_, fields)) -> (
            match List.assoc_opt f fields with
            | Some uv -> value_of_uval env.st ~fn:env.fn uv
            | None -> vzero)
        | B_uptr U_null | B_i64 _ -> Crash.raise_crash Crash.Gpf env.fn
        | _ -> raise (Exec_error (Printf.sprintf "%s: bad field base for .%s" env.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let idx = Int64.to_int (as_int (eval env i)) in
      let base = eval env a in
      if is_imm base then
        if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn else vzero
      else
        match boxed base with
        | B_ptr o -> (
            check_alive ~fn:env.fn o;
            match o.data with
            | Cells cells ->
                if idx < 0 || idx >= Array.length cells then
                  Crash.raise_crash Crash.Ubsan_oob env.fn
                else cells.(idx)
            | Fields _ | Typed _ | Opaque -> vzero)
        | B_str s ->
            if idx >= 0 && idx < String.length s then fix (Char.code s.[idx])
            else vzero
        | B_uptr (U_arr xs) -> (
            match List.nth_opt xs idx with
            | Some uv -> value_of_uval env.st ~fn:env.fn uv
            | None -> vzero)
        | _ -> vzero)
  | Csrc.Ast.Cast (_, a) -> eval env a
  | Csrc.Ast.Sizeof_type ty -> vint (Int64.of_int (Csrc.Index.sizeof env.st.index ty))
  | Csrc.Ast.Sizeof_expr _ -> vint 8L
  | Csrc.Ast.Ternary (c, t, f) -> if truthy (eval env c) then eval env t else eval env f
  | Csrc.Ast.Addr_of a -> (
      (* &x where x is a struct local/global is the object itself; &arr[i]
         likewise when the element is an object *)
      match a with
      | Csrc.Ast.Ident _ | Csrc.Ast.Member _ | Csrc.Ast.Arrow _ | Csrc.Ast.Index _ -> eval env a
      | _ -> eval env a)
  | Csrc.Ast.Deref a ->
      let v = eval env a in
      (if is_imm v then (
         if imm v = 0 then Crash.raise_crash Crash.Gpf env.fn)
       else
         match boxed v with
         | B_ptr o -> check_alive ~fn:env.fn o
         | _ -> ());
      v
  | Csrc.Ast.Type_arg ty -> vint (Int64.of_int (Csrc.Index.sizeof env.st.index ty))

and eval_ident env name =
  match lookup_var env name with
  | Some v -> v
  | None -> (
      match Csrc.Index.ident_const env.st.index name with
      | Csrc.Index.C_int v -> vint v
      | Csrc.Index.C_str s -> vstr s
      | Csrc.Index.C_none -> (
          match Csrc.Index.find_function env.st.index name with
          | Some _ -> vfn name
          | None -> vzero))

and eval_binop env op a b =
  match op with
  | Csrc.Ast.Land -> vbool (truthy (eval env a) && truthy (eval env b))
  | Csrc.Ast.Lor -> vbool (truthy (eval env a) || truthy (eval env b))
  | _ ->
      let va = eval env a in
      let vb = eval env b in
      binop_values ~fn:env.fn op va vb

and eval_lval env (e : Csrc.Ast.expr) : lvalue =
  match e with
  | Csrc.Ast.Ident name ->
      if Stbl.mem env.locals name then L_local name
      else if get_global env.st name <> None then L_global name
      else L_local name (* implicit declaration (for-loop desugaring) *)
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let base = eval env a in
      if is_imm base then Crash.raise_crash Crash.Gpf env.fn
      else
        match boxed base with
        | B_ptr o ->
            check_alive ~fn:env.fn o;
            L_field (o, f)
        | B_i64 _ -> Crash.raise_crash Crash.Gpf env.fn
        | _ -> raise (Exec_error (Printf.sprintf "%s: bad lvalue base for .%s" env.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let idx = Int64.to_int (as_int (eval env i)) in
      let base = eval env a in
      if is_imm base then
        if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn
        else raise (Exec_error (env.fn ^ ": bad array lvalue"))
      else
        match boxed base with
        | B_ptr o -> (
            check_alive ~fn:env.fn o;
            match o.data with
            | Cells cells ->
                if idx < 0 || idx >= Array.length cells then
                  Crash.raise_crash Crash.Ubsan_oob env.fn
                else L_cell (o, idx)
            | Fields _ | Typed _ | Opaque -> L_field (o, Printf.sprintf "__idx%d" idx))
        | _ -> raise (Exec_error (env.fn ^ ": bad array lvalue")))
  | Csrc.Ast.Deref a -> (
      let base = eval env a in
      if is_imm base then
        if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn
        else raise (Exec_error (env.fn ^ ": bad deref lvalue"))
      else
        match boxed base with
        | B_ptr o ->
            check_alive ~fn:env.fn o;
            L_field (o, "__deref")
        | _ -> raise (Exec_error (env.fn ^ ": bad deref lvalue")))
  | Csrc.Ast.Cast (_, a) -> eval_lval env a
  | _ -> raise (Exec_error (env.fn ^ ": expression is not an lvalue"))

and store env (lv : lvalue) (v : value) : unit =
  match lv with
  | L_local name -> Stbl.replace env.locals name v
  | L_global name -> Stbl.replace env.st.globals name v
  | L_field (o, f) -> set_field ~fn:env.fn o f v
  | L_cell (o, idx) -> (
      match o.data with
      | Cells cells -> cells.(idx) <- v
      | Fields _ | Typed _ | Opaque -> raise (Exec_error "cell store on non-array"))

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

and eval_call env name (args : Csrc.Ast.expr list) : value =
  match builtin env name args with
  | Some v -> v
  | None -> (
      match Csrc.Index.find_function env.st.index name with
      | Some fd when fd.fun_body <> [] ->
          let argv = List.map (eval env) args in
          call_function env.st name fd argv
      | Some _ | None -> vzero)

(* The expr-level face of {!builtin_values}: evaluates arguments on
   demand through the tree walker. The name check up front keeps the
   (cheap) context record off the user-function call path entirely. *)
and builtin env name (args : Csrc.Ast.expr list) : value option =
  match Stbl.find_opt builtin_ids name with
  | None -> None
  | Some id -> begin
    let arg i =
      match List.nth_opt args i with
      | Some e -> e
      | None -> Csrc.Ast.Const_int 0L
    in
    (* [copy_from_user(&local, src, n)] on a scalar local cannot go
       through value semantics; resolve the destination as an lvalue *)
    let strip_addr e =
      let rec strip = function
        | Csrc.Ast.Cast (_, e) -> strip e
        | Csrc.Ast.Addr_of e -> Some e
        | _ -> None
      in
      strip e
    in
    let b =
      {
        bn = List.length args;
        bv =
          (fun i ->
            (* user pointers to plain byte buffers behave like strings
               for the string builtins *)
            let x = eval env (arg i) in
            if is_imm x then x
            else match boxed x with B_uptr (U_str s) -> vstr s | _ -> x);
        braw = (fun i -> eval env (arg i));
        bstore =
          (fun i sv ->
            try
              store env (eval_lval env (arg i)) sv;
              true
            with Exec_error _ -> false);
        bsstore =
          (fun i sv ->
            match strip_addr (arg i) with
            | Some inner -> (
                try
                  store env (eval_lval env inner) sv;
                  true
                with Exec_error _ -> false)
            | None -> false);
        bfops =
          (fun () ->
            let rec find = function
              | Csrc.Ast.Addr_of (Csrc.Ast.Ident g) -> Some g
              | Csrc.Ast.Cast (_, e) -> find e
              | _ -> None
            in
            List.find_map find args);
        bio =
          (fun () ->
            match Csrc.Index.eval_opt env.st.index (Csrc.Ast.Call (name, args)) with
            | Some x -> vint x
            | None -> vzero);
      }
    in
    builtin_values_id env.st ~fn:env.fn id name b
  end

(* ------------------------------------------------------------------ *)
(* Statements and functions                                            *)
(* ------------------------------------------------------------------ *)

and exec_stmt env (s : Csrc.Ast.stmt) : unit =
  step env;
  cover env s;
  match s.Csrc.Ast.node with
  | Csrc.Ast.Expr_stmt e -> ignore (eval env e)
  | Csrc.Ast.Decl_stmt (ty, name, init) ->
      let v =
        match init with
        | Some e -> eval env e
        | None -> zero_value env.st ~fn:env.fn ty
      in
      Stbl.replace env.locals name v
  | Csrc.Ast.If (c, t, f) ->
      if truthy (eval env c) then exec_block env t
      else ( match f with Some f -> exec_block env f | None -> ())
  | Csrc.Ast.Switch (scrut, cases) -> exec_switch env scrut cases
  | Csrc.Ast.While (c, body) ->
      (try
         while truthy (eval env c) do
           step env;
           try exec_block env body with Continue_exc -> ()
         done
       with Break_exc -> ())
  | Csrc.Ast.Do_while (body, c) ->
      (try
         let continue_loop = ref true in
         while !continue_loop do
           step env;
           (try exec_block env body with Continue_exc -> ());
           continue_loop := truthy (eval env c)
         done
       with Break_exc -> ())
  | Csrc.Ast.For (init, cond, upd, body) ->
      (match init with Some e -> ignore (eval env e) | None -> ());
      (try
         let check () = match cond with Some c -> truthy (eval env c) | None -> true in
         while check () do
           step env;
           (try exec_block env body with Continue_exc -> ());
           match upd with Some u -> ignore (eval env u) | None -> ()
         done
       with Break_exc -> ())
  | Csrc.Ast.Return e ->
      let v = match e with Some e -> eval env e | None -> vunit in
      raise (Return_exc v)
  | Csrc.Ast.Break -> raise Break_exc
  | Csrc.Ast.Continue -> raise Continue_exc
  | Csrc.Ast.Goto l -> raise (Goto_exc l)
  | Csrc.Ast.Label _ -> ()
  | Csrc.Ast.Block b -> exec_block env b

and exec_block env (b : Csrc.Ast.block) : unit = List.iter (exec_stmt env) b

and exec_switch env scrut cases =
  let key = as_int (eval env scrut) in
  let matches case =
    List.exists
      (function
        | Csrc.Ast.Case e -> Int64.equal (as_int (eval env e)) key
        | Csrc.Ast.Default -> false)
      case.Csrc.Ast.labels
  in
  let is_default case = List.mem Csrc.Ast.Default case.Csrc.Ast.labels in
  let rec find_start i = function
    | [] -> None
    | c :: rest -> if matches c then Some i else find_start (i + 1) rest
  in
  let start =
    match find_start 0 cases with
    | Some i -> Some i
    | None -> (
        let rec find_default i = function
          | [] -> None
          | c :: rest -> if is_default c then Some i else find_default (i + 1) rest
        in
        find_default 0 cases)
  in
  match start with
  | None -> ()
  | Some i -> (
      let rest = List.filteri (fun j _ -> j >= i) cases in
      try List.iter (fun c -> exec_block env c.Csrc.Ast.case_body) rest
      with Break_exc -> ())

and call_function (st : state) (fname : string) (fd : Csrc.Ast.func_def) (argv : value list)
    : value =
  if st.depth > 64 then raise (Exec_error ("recursion too deep at " ^ fname));
  st.depth <- st.depth + 1;
  let locals = Stbl.create 16 in
  (* one simultaneous walk over params/argv: extra arguments are
     dropped, missing parameters read as zero *)
  let rec bind params argv =
    match (params, argv) with
    | [], _ -> ()
    | (_, pname) :: ps, [] ->
        Stbl.replace locals pname vzero;
        bind ps []
    | (_, pname) :: ps, a :: rest ->
        Stbl.replace locals pname a;
        bind ps rest
  in
  bind fd.fun_params argv;
  let env = { st; locals; fn = fname } in
  (* label -> tail of the body, built at most once per call; the first
     occurrence of a duplicated label wins, matching the Jit's
     compile-time label table *)
  let label_map =
    lazy
      (let rec go acc = function
         | [] -> List.rev acc
         | s :: rest -> (
             match s.Csrc.Ast.node with
             | Csrc.Ast.Label l when not (List.mem_assoc l acc) ->
                 go ((l, s :: rest) :: acc) rest
             | _ -> go acc rest)
       in
       go [] fd.fun_body)
  in
  let result =
    let rec run stmts =
      try
        List.iter (exec_stmt env) stmts;
        vunit
      with
      | Return_exc v -> v
      | Goto_exc l -> (
          match List.assoc_opt l (Lazy.force label_map) with
          | Some rest -> run rest
          | None -> raise (Exec_error (Printf.sprintf "%s: unknown label %s" fname l)))
    in
    run fd.fun_body
  in
  st.depth <- st.depth - 1;
  result

(** Entry point used by the syscall layer: call a named function with
    already-evaluated arguments. *)
let call st fname (argv : value list) : value =
  match Csrc.Index.find_function st.index fname with
  | Some fd when fd.fun_body <> [] -> call_function st fname fd argv
  | Some _ | None -> raise (Exec_error ("no such function " ^ fname))

(* ------------------------------------------------------------------ *)
(* Leak detection                                                      *)
(* ------------------------------------------------------------------ *)

(** Objects allocated by the program, never freed, and unreachable from
    the given roots — kmemleak's definition. Returns their allocation
    sites. *)
let leaked_objects (st : state) ~(roots : value list) : string list =
  (* nothing tracked means nothing can leak: skip the mark phase, which
     otherwise walks every touched global's object graph per execution *)
  if st.tracked_objs = [] then []
  else begin
  (* oids count up from 1 per state, so the reached set is a bitmap
     indexed by oid — the mark phase visits every live object and a
     hash table here costs a probe per edge *)
  let reached = Bytes.make ((st.next_oid lsr 3) + 1) '\000' in
  let mem oid =
    Char.code (Bytes.unsafe_get reached (oid lsr 3)) land (1 lsl (oid land 7)) <> 0
  in
  let add oid =
    Bytes.unsafe_set reached (oid lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get reached (oid lsr 3)) lor (1 lsl (oid land 7))))
  in
  let rec mark v =
    if not (is_imm v) then
      match boxed v with
      | B_ptr o ->
          if not (mem o.oid) then begin
            add o.oid;
            match o.data with
            | Fields tbl -> Stbl.iter (fun _ v -> mark v) tbl
            | Typed tf -> Array.iter mark tf.tcells
            | Cells cells -> Array.iter mark cells
            | Opaque -> ()
          end
      | _ -> ()
  in
  List.iter mark roots;
  Stbl.iter (fun _ v -> mark v) st.globals;
  List.filter_map
    (fun o ->
      if (not o.freed) && not (mem o.oid) then Some o.alloc_fn else None)
    st.tracked_objs
  end
