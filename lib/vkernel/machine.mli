(** The virtual kernel machine: boots corpus modules, dispatches
    syscalls, executes whole programs and reports coverage and crashes.

    This is the stand-in for the paper's QEMU/KCOV fuzzing target.
    Device paths and socket triples come from the registry's ground
    truth (the moral equivalent of booting the modules); everything else
    runs from the same mini-C sources the analyses read, through either
    the tree-walking {!Interp} or the closure-compiled {!Jit} executor
    (the default — both are exact mirrors). Syscall names resolve
    through a jump table rather than a per-call string match. *)

(** One syscall argument as the fuzzer passes it. *)
type parg =
  | P_int of int64
  | P_str of string
  | P_data of Value.uval  (** a user pointer carrying generated data *)
  | P_null
  | P_result of int  (** the file descriptor returned by call #i *)

type call = { c_name : string; c_args : parg list }

type prog = call list

type crash_report = { cr_title : string; cr_call : int }

type exec_result = {
  retvals : int64 array;
  crash : crash_report option;
  coverage : int list;  (** statement ids executed *)
  timed_out : bool;
      (** a call (or exit-path release) exhausted the step budget; the
          kmemleak scan is skipped for such runs, since "leaks" of an
          interrupted program are an artifact of the budget *)
}

type device = { dev_module : string; dev_fops : string }

type socket_reg = { sock_module : string; sock_ops : string }

type t = {
  index : Csrc.Index.t;
  devices : (string * device) list;
  sockets : ((int * int * int) * socket_reg) list;
  sid_module : (int, string) Hashtbl.t;
  modules : string list;
  jit : Jit.t Lazy.t;
      (** closure-compiled function bodies and global-initializer plans;
          forced by campaign init (or on first execution) so boots that
          never execute programs pay nothing *)
  layouts : Interp.layout Value.Stbl.t;
      (** composite layout plans shared by every per-execution state *)
  frames : Value.Pool.t;
      (** free-list pool for call frames (jit slot arrays), shared by
          every per-execution state like [layouts] *)
  n_sids : int;  (** statement-id count, sizes coverage bitmaps *)
}

(** Boot the machine over the given corpus entries: parse all module
    sources with the shared header into one definition index with
    globally unique statement ids, and register devices and sockets. *)
val boot : Corpus.Types.entry list -> t

(** Which module a covered statement belongs to. *)
val module_of_sid : t -> int -> string option

(** Which executor runs handler bodies. Both are exact semantic mirrors
    — identical coverage, crashes, and return values; [`Jit] (the
    default) compiles each function body to closures once per machine
    instead of re-walking the AST per execution. *)
type engine = [ `Jit | `Interp ]

(** Reusable per-campaign coverage collector: a bitmap over statement
    ids plus the list of sids touched by the current execution
    ([cs_buf.(0 .. cs_n-1)]). Recording allocates nothing once warm. *)
type cov_sink = {
  mutable cs_bits : Bytes.t;
  mutable cs_buf : int array;
  mutable cs_n : int;
  mutable cs_hook : int -> unit;
      (** [sink_record] on this sink, built once by {!new_sink} *)
}

val new_sink : t -> cov_sink

(** Clear the touched bits and rewind the buffer for the next run. *)
val sink_reset : cov_sink -> unit

(** Execute a program against a fresh kernel state: run each call, close
    remaining file descriptors at exit (release handlers may crash), and
    run the kmemleak-style reachability scan. Deterministic. *)
val exec_prog : ?step_budget:int -> ?engine:engine -> t -> prog -> exec_result

(** Like {!exec_prog}, but statement coverage lands in [sink] instead of
    the result's [coverage] list (which comes back empty): the campaign
    hot loop reads [sink.cs_buf] and {!sink_reset}s it, touching no
    per-execution allocations. *)
val exec_prog_sink :
  ?step_budget:int -> ?engine:engine -> sink:cov_sink -> t -> prog -> exec_result
