(** The virtual kernel machine: boots corpus modules, dispatches
    syscalls, executes whole programs and reports coverage and crashes.

    This is the stand-in for the paper's QEMU/KCOV fuzzing target.
    Device paths and socket triples come from the registry's ground
    truth (the moral equivalent of booting the modules); everything else
    is interpreted from the same mini-C sources the analyses read. *)

(** One syscall argument as the fuzzer passes it. *)
type parg =
  | P_int of int64
  | P_str of string
  | P_data of Value.uval  (** a user pointer carrying generated data *)
  | P_null
  | P_result of int  (** the file descriptor returned by call #i *)

type call = { c_name : string; c_args : parg list }

type prog = call list

type crash_report = { cr_title : string; cr_call : int }

type exec_result = {
  retvals : int64 array;
  crash : crash_report option;
  coverage : int list;  (** statement ids executed *)
  timed_out : bool;
      (** a call (or exit-path release) exhausted the step budget; the
          kmemleak scan is skipped for such runs, since "leaks" of an
          interrupted program are an artifact of the budget *)
}

type device = { dev_module : string; dev_fops : string }

type socket_reg = { sock_module : string; sock_ops : string }

type t = {
  index : Csrc.Index.t;
  devices : (string * device) list;
  sockets : ((int * int * int) * socket_reg) list;
  sid_module : (int, string) Hashtbl.t;
  modules : string list;
}

(** Boot the machine over the given corpus entries: parse all module
    sources with the shared header into one definition index with
    globally unique statement ids, and register devices and sockets. *)
val boot : Corpus.Types.entry list -> t

(** Which module a covered statement belongs to. *)
val module_of_sid : t -> int -> string option

(** Execute a program against a fresh kernel state: run each call, close
    remaining file descriptors at exit (release handlers may crash), and
    run the kmemleak-style reachability scan. Deterministic. *)
val exec_prog : ?step_budget:int -> t -> prog -> exec_result
