(** Runtime values of the virtual kernel.

    Two value worlds meet here:
    - {!uval} is *userspace data*: the argument trees the fuzzer
      generates from syzlang types and passes through the syscall
      boundary (the equivalent of the bytes Syzkaller writes into the
      target process' memory);
    - {!value} is *kernel data*: what the interpreter computes with.

    Kernel heap objects track allocation site and liveness so that
    use-after-free, double-free and leak detection work like KASAN and
    kmemleak do in the paper's fuzzing campaigns. *)

(** Userspace argument data. Struct fields are keyed by the field names of
    the syzlang type the fuzzer generated from; [copy_from_user]
    materializes them into kernel objects by name. A spec with wrong or
    meaningless field names (e.g. static-analysis output with [field_0]
    style names) therefore produces kernel-side garbage — the simulator's
    stand-in for a wrong byte layout. *)
type uval =
  | U_int of int64
  | U_str of string
  | U_arr of uval list
  | U_struct of string * (string * uval) list
  | U_null

(** String-keyed hashtable for object fields, globals and locals — the
    executor's hottest data structure. A bespoke monomorphic table
    rather than [Hashtbl]: without flambda, both the generic [Hashtbl]
    (polymorphic compare on every probe) and a [Hashtbl.Make] instance
    (indirect calls through the functor record per operation) leave
    measurable dispatch cost in the hot loops. Chained buckets with
    mutable cells, direct [String.equal] probes and an inline FNV-1a
    hash keep every call monomorphic and direct. *)
module Stbl = struct
  type 'a cell = Nil | Cell of { ckey : string; mutable cval : 'a; mutable cnext : 'a cell }

  type 'a t = { mutable buckets : 'a cell array; mutable size : int }

  (* FNV-1a over the first 16 bytes, seeded with the length: keys are
     identifiers, so a bounded pure-OCaml loop beats a hashing C call;
     longer keys sharing prefix and length just share a bucket. *)
  let hash (s : string) =
    let n = String.length s in
    let m = if n > 16 then 16 else n in
    let h = ref (0x811c9dc5 lxor n) in
    for i = 0 to m - 1 do
      h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193
    done;
    !h

  let rec pow2 c n = if c >= n then c else pow2 (c * 2) n

  let create n : 'a t = { buckets = Array.make (pow2 4 (min n 65536)) Nil; size = 0 }

  let resize (t : 'a t) =
    let old = t.buckets in
    let nmask = (2 * Array.length old) - 1 in
    let nb = Array.make (nmask + 1) Nil in
    Array.iter
      (fun c ->
        let rec go = function
          | Nil -> ()
          | Cell ({ ckey; cnext; _ } as c) ->
              let i = hash ckey land nmask in
              c.cnext <- nb.(i);
              nb.(i) <- Cell c;
              go cnext
        in
        go c)
      old;
    t.buckets <- nb

  let find_opt (t : 'a t) (key : string) : 'a option =
    let rec go = function
      | Nil -> None
      | Cell { ckey; cval; cnext } -> if String.equal ckey key then Some cval else go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  (* [_h] variants take the hash precomputed: the jit hashes each
     static key once at compile time instead of once per executed
     access. [h] must be [hash key]. *)
  let find_opt_h (t : 'a t) (h : int) (key : string) : 'a option =
    let rec go = function
      | Nil -> None
      | Cell { ckey; cval; cnext } -> if String.equal ckey key then Some cval else go cnext
    in
    go t.buckets.(h land (Array.length t.buckets - 1))

  let find (t : 'a t) (key : string) : 'a =
    let rec go = function
      | Nil -> raise Not_found
      | Cell { ckey; cval; cnext } -> if String.equal ckey key then cval else go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  let mem (t : 'a t) (key : string) : bool =
    let rec go = function
      | Nil -> false
      | Cell { ckey; cnext; _ } -> String.equal ckey key || go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  let replace (t : 'a t) (key : string) (v : 'a) : unit =
    let i = hash key land (Array.length t.buckets - 1) in
    let rec go = function
      | Nil ->
          t.buckets.(i) <- Cell { ckey = key; cval = v; cnext = t.buckets.(i) };
          t.size <- t.size + 1;
          if t.size > 2 * Array.length t.buckets then resize t
      | Cell ({ ckey; _ } as c) -> if String.equal ckey key then c.cval <- v else go c.cnext
    in
    go t.buckets.(i)

  let replace_h (t : 'a t) (h : int) (key : string) (v : 'a) : unit =
    let i = h land (Array.length t.buckets - 1) in
    let rec go = function
      | Nil ->
          t.buckets.(i) <- Cell { ckey = key; cval = v; cnext = t.buckets.(i) };
          t.size <- t.size + 1;
          if t.size > 2 * Array.length t.buckets then resize t
      | Cell ({ ckey; _ } as c) -> if String.equal ckey key then c.cval <- v else go c.cnext
    in
    go t.buckets.(i)

  let iter (f : string -> 'a -> unit) (t : 'a t) : unit =
    Array.iter
      (fun c ->
        let rec go = function
          | Nil -> ()
          | Cell { ckey; cval; cnext } ->
              f ckey cval;
              go cnext
        in
        go c)
      t.buckets

  let reset (t : 'a t) : unit =
    Array.fill t.buckets 0 (Array.length t.buckets) Nil;
    t.size <- 0

  let length (t : 'a t) = t.size
end

type obj = {
  oid : int;
  alloc_fn : string;  (** function that allocated the object *)
  mutable freed : bool;
  mutable data : slots;
}

and slots =
  | Fields of value Stbl.t  (** struct-like object (lazy fields) *)
  | Cells of value array  (** fixed-size array object *)
  | Opaque  (** raw allocation never accessed structurally *)

and value =
  | Int of int64
  | Str of string
  | Ptr of obj
  | Fn of string  (** function pointer *)
  | Uptr of uval  (** userspace pointer carrying the user data *)
  | Unit

let is_zero = function
  | Int 0L -> true
  | Unit -> true
  | Uptr U_null -> true (* a NULL user pointer is falsy, like in C *)
  | Str "" -> false
  | _ -> false

let truthy v = not (is_zero v)

let to_int = function
  | Int v -> v
  | Str _ | Ptr _ | Fn _ | Uptr _ -> 1L
  | Unit -> 0L

(** Render a value for traces and debugging. *)
let rec to_string = function
  | Int v -> Int64.to_string v
  | Str s -> Printf.sprintf "%S" s
  | Ptr o -> Printf.sprintf "<obj#%d%s>" o.oid (if o.freed then " freed" else "")
  | Fn f -> Printf.sprintf "<fn %s>" f
  | Uptr u -> Printf.sprintf "<user %s>" (uval_to_string u)
  | Unit -> "()"

and uval_to_string = function
  | U_int v -> Int64.to_string v
  | U_str s -> Printf.sprintf "%S" s
  | U_arr xs ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map uval_to_string xs))
  | U_struct (name, fields) ->
      Printf.sprintf "%s{%s}" name
        (String.concat "; "
           (List.map (fun (f, v) -> f ^ "=" ^ uval_to_string v) fields))
  | U_null -> "NULL"
