(** Runtime values of the virtual kernel.

    Two value worlds meet here:
    - {!uval} is *userspace data*: the argument trees the fuzzer
      generates from syzlang types and passes through the syscall
      boundary (the equivalent of the bytes Syzkaller writes into the
      target process' memory);
    - {!value} is *kernel data*: what the interpreter computes with.

    Kernel heap objects track allocation site and liveness so that
    use-after-free, double-free and leak detection work like KASAN and
    kmemleak do in the paper's fuzzing campaigns. *)

(** Userspace argument data. Struct fields are keyed by the field names of
    the syzlang type the fuzzer generated from; [copy_from_user]
    materializes them into kernel objects by name. A spec with wrong or
    meaningless field names (e.g. static-analysis output with [field_0]
    style names) therefore produces kernel-side garbage — the simulator's
    stand-in for a wrong byte layout. *)
type uval =
  | U_int of int64
  | U_str of string
  | U_arr of uval list
  | U_struct of string * (string * uval) list
  | U_null

(** String-keyed hashtable for object fields, globals and locals — the
    executor's hottest data structure. A bespoke monomorphic table
    rather than [Hashtbl]: without flambda, both the generic [Hashtbl]
    (polymorphic compare on every probe) and a [Hashtbl.Make] instance
    (indirect calls through the functor record per operation) leave
    measurable dispatch cost in the hot loops. Chained buckets with
    mutable cells, direct [String.equal] probes and an inline FNV-1a
    hash keep every call monomorphic and direct. Probes try physical
    equality first: keys fixed at spec-load time go through {!intern},
    so the common hit is a single pointer compare. *)
module Stbl = struct
  type 'a cell = Nil | Cell of { ckey : string; mutable cval : 'a; mutable cnext : 'a cell }

  type 'a t = { mutable buckets : 'a cell array; mutable size : int }

  (* FNV-1a over the first 16 bytes, seeded with the length: keys are
     identifiers, so a bounded pure-OCaml loop beats a hashing C call;
     longer keys sharing prefix and length just share a bucket. *)
  let hash (s : string) =
    let n = String.length s in
    let m = if n > 16 then 16 else n in
    let h = ref (0x811c9dc5 lxor n) in
    for i = 0 to m - 1 do
      h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193
    done;
    !h

  let rec pow2 c n = if c >= n then c else pow2 (c * 2) n

  let create n : 'a t = { buckets = Array.make (pow2 4 (min n 65536)) Nil; size = 0 }

  let resize (t : 'a t) =
    let old = t.buckets in
    let nmask = (2 * Array.length old) - 1 in
    let nb = Array.make (nmask + 1) Nil in
    Array.iter
      (fun c ->
        let rec go = function
          | Nil -> ()
          | Cell ({ ckey; cnext; _ } as c) ->
              let i = hash ckey land nmask in
              c.cnext <- nb.(i);
              nb.(i) <- Cell c;
              go cnext
        in
        go c)
      old;
    t.buckets <- nb

  let find_opt (t : 'a t) (key : string) : 'a option =
    let rec go = function
      | Nil -> None
      | Cell { ckey; cval; cnext } ->
          if ckey == key || String.equal ckey key then Some cval else go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  (* [_h] variants take the hash precomputed: the jit hashes each
     static key once at compile time instead of once per executed
     access. [h] must be [hash key]. *)
  let find_opt_h (t : 'a t) (h : int) (key : string) : 'a option =
    let rec go = function
      | Nil -> None
      | Cell { ckey; cval; cnext } ->
          if ckey == key || String.equal ckey key then Some cval else go cnext
    in
    go t.buckets.(h land (Array.length t.buckets - 1))

  let find (t : 'a t) (key : string) : 'a =
    let rec go = function
      | Nil -> raise Not_found
      | Cell { ckey; cval; cnext } ->
          if ckey == key || String.equal ckey key then cval else go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  let mem (t : 'a t) (key : string) : bool =
    let rec go = function
      | Nil -> false
      | Cell { ckey; cnext; _ } -> ckey == key || String.equal ckey key || go cnext
    in
    go t.buckets.(hash key land (Array.length t.buckets - 1))

  let replace (t : 'a t) (key : string) (v : 'a) : unit =
    let i = hash key land (Array.length t.buckets - 1) in
    let rec go = function
      | Nil ->
          t.buckets.(i) <- Cell { ckey = key; cval = v; cnext = t.buckets.(i) };
          t.size <- t.size + 1;
          if t.size > 2 * Array.length t.buckets then resize t
      | Cell ({ ckey; _ } as c) ->
          if ckey == key || String.equal ckey key then c.cval <- v else go c.cnext
    in
    go t.buckets.(i)

  let replace_h (t : 'a t) (h : int) (key : string) (v : 'a) : unit =
    let i = h land (Array.length t.buckets - 1) in
    let rec go = function
      | Nil ->
          t.buckets.(i) <- Cell { ckey = key; cval = v; cnext = t.buckets.(i) };
          t.size <- t.size + 1;
          if t.size > 2 * Array.length t.buckets then resize t
      | Cell ({ ckey; _ } as c) ->
          if ckey == key || String.equal ckey key then c.cval <- v else go c.cnext
    in
    go t.buckets.(i)

  let iter (f : string -> 'a -> unit) (t : 'a t) : unit =
    Array.iter
      (fun c ->
        let rec go = function
          | Nil -> ()
          | Cell { ckey; cval; cnext } ->
              f ckey cval;
              go cnext
        in
        go c)
      t.buckets

  let reset (t : 'a t) : unit =
    Array.fill t.buckets 0 (Array.length t.buckets) Nil;
    t.size <- 0

  let length (t : 'a t) = t.size
end

(** Interned identifier strings. Field names, global names and fd-handler
    keys are fixed at spec-load time; routing them through one table
    makes every later {!Stbl} probe on them hit the physical-equality
    fast path. The table is only consulted at compile/boot time (never
    on the execution hot path), so one global mutex is enough for the
    worker domains. *)
let intern : string -> string =
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let mu = Mutex.create () in
  fun s ->
    Mutex.lock mu;
    let r =
      match Hashtbl.find_opt tbl s with
      | Some s' -> s'
      | None ->
          Hashtbl.add tbl s s;
          s
    in
    Mutex.unlock mu;
    r

(** The kernel value representation. Guest programs compute almost
    exclusively with integers, so the hot case is *tagged*: any int64
    whose value fits in OCaml's native 63-bit immediate range is stored
    unboxed (no allocation per arithmetic result); everything else —
    including the rare integers that genuinely need the 64th bit — lives
    in a boxed constructor. The representation is sealed behind this
    module so the tag games stay in one place; the rest of the system
    uses the [v*] smart constructors, {!view} for cold-path matching,
    and {!is_imm}/{!imm}/{!boxed} for allocation-free hot-path
    inspection.

    Invariant (load-bearing for polymorphic [=] on values, which the
    differential tests use): [B_i64] never holds a 63-bit-representable
    value — {!vint} normalizes — so semantically equal integers always
    have identical representation. *)
module Repr : sig
  type value

  type obj = {
    oid : int;
    alloc_fn : string;  (** function that allocated the object *)
    mutable freed : bool;
    mutable data : slots;
  }

  and slots =
    | Fields of value Stbl.t  (** struct-like object (lazy fields) *)
    | Cells of value array  (** fixed-size array object *)
    | Typed of tfields
        (** struct object of a known composite: dense layout-indexed
            cells, no per-object hash table. [tnames] is the layout's
            interned field-name array, shared by every instantiation;
            a store to a name outside the layout migrates the object
            to [Fields]. *)
    | Opaque  (** raw allocation never accessed structurally *)

  and tfields = { tnames : string array; tcells : value array }

  (** The boxed cases. Every constructor carries an argument so each is
      a heap block (tags 0..6) and can never be confused with an
      immediate fixnum. *)
  type boxed =
    | B_i64 of int64  (** integer needing the full 64th bit *)
    | B_str of string
    | B_ptr of obj
    | B_fn of string  (** function pointer *)
    | B_uptr of uval  (** userspace pointer carrying the user data *)
    | B_unit of unit
    | B_unbound of unit  (** jit slot sentinel; never escapes a frame *)

  val is_imm : value -> bool
  (** [is_imm v] is true iff [v] is an immediate fixnum. *)

  val imm : value -> int
  (** The fixnum payload. Precondition: [is_imm v]. *)

  val fix : int -> value
  (** Make an immediate fixnum (the int *is* the 64-bit value,
      sign-extended). *)

  val boxed : value -> boxed
  (** The boxed view. Precondition: [not (is_imm v)]. *)

  val of_boxed : boxed -> value
end = struct
  type value = Obj.t

  type obj = {
    oid : int;
    alloc_fn : string;
    mutable freed : bool;
    mutable data : slots;
  }

  and slots =
    | Fields of value Stbl.t
    | Cells of value array
    | Typed of tfields
    | Opaque

  and tfields = { tnames : string array; tcells : value array }

  type boxed =
    | B_i64 of int64
    | B_str of string
    | B_ptr of obj
    | B_fn of string
    | B_uptr of uval
    | B_unit of unit
    | B_unbound of unit

  let[@inline] is_imm (v : value) = Obj.is_int v
  let[@inline] imm (v : value) : int = Obj.magic v
  let[@inline] fix (n : int) : value = Obj.repr n
  let[@inline] boxed (v : value) : boxed = Obj.magic v
  let[@inline] of_boxed (b : boxed) : value = Obj.repr b
end

include Repr

(** Index of [name] in a typed object's layout, or -1. Layout names are
    interned, so probes with interned names resolve on the pointer
    compare; tree-walker probes (raw AST strings) fall through to the
    content compare in the same pass. *)
let tindex (tf : tfields) (name : string) : int =
  let names = tf.tnames in
  let n = Array.length names in
  let rec go i =
    if i >= n then -1
    else
      let ni = Array.unsafe_get names i in
      if ni == name || String.equal ni name then i else go (i + 1)
  in
  go 0

(* Smart constructors. [vint] is the only one with logic: normalize to
   the immediate representation whenever the value fits 63 bits. *)

let[@inline] vint (v : int64) : value =
  let n = Int64.to_int v in
  if Int64.of_int n = v then fix n else of_boxed (B_i64 v)

let vstr (s : string) : value = of_boxed (B_str s)
let vptr (o : obj) : value = of_boxed (B_ptr o)
let vfn (f : string) : value = of_boxed (B_fn f)
let vuptr (u : uval) : value = of_boxed (B_uptr u)
let vunit : value = of_boxed (B_unit ())

(* Static singleton: the jit compares slots against it with [==]/[!=].
   A dedicated constructor (not a magic string) so no reachable value
   can collide with it, and no immediate ever equals a heap block. *)
let unbound : value = of_boxed (B_unbound ())
let vzero : value = fix 0
let vone : value = fix 1
let[@inline] vbool (b : bool) : value = if b then vone else vzero

(** Structural view for cold-path matching; allocates for immediates, so
    hot paths should use {!is_imm}/{!imm}/{!boxed} directly. The
    constructor names are the historical [value] constructors. *)
type view =
  | Int of int64
  | Str of string
  | Ptr of obj
  | Fn of string
  | Uptr of uval
  | Unit

let view (v : value) : view =
  if is_imm v then Int (Int64.of_int (imm v))
  else
    match boxed v with
    | B_i64 x -> Int x
    | B_str s -> Str s
    | B_ptr o -> Ptr o
    | B_fn f -> Fn f
    | B_uptr u -> Uptr u
    | B_unit () -> Unit
    | B_unbound () -> Unit (* defensive: the sentinel never escapes *)

let is_zero (v : value) =
  if is_imm v then imm v = 0
  else
    match boxed v with
    | B_unit () -> true
    | B_uptr U_null -> true (* a NULL user pointer is falsy, like in C *)
    (* B_i64 is never zero by the normalization invariant; Str "" is
       truthy like any other pointer-ish value. *)
    | _ -> false

let[@inline] truthy v = not (is_zero v)

let to_int (v : value) : int64 =
  if is_imm v then Int64.of_int (imm v)
  else
    match boxed v with
    | B_i64 x -> x
    | B_str _ | B_ptr _ | B_fn _ | B_uptr _ -> 1L
    | B_unit () | B_unbound () -> 0L

(* Unary arithmetic, shared by both engines so their fast paths cannot
   drift: negation must box exactly when the operand is the 63-bit
   minimum (whose negation needs the 64th... 63rd bit of magnitude);
   bitwise-not of a sign-extended immediate is itself sign-extended, so
   it never boxes. *)
let vneg (v : value) : value =
  if is_imm v then
    let n = imm v in
    if n = min_int then vint (Int64.neg (Int64.of_int n)) else fix (-n)
  else vint (Int64.neg (to_int v))

let vlognot (v : value) : value =
  if is_imm v then fix (lnot (imm v)) else vint (Int64.lognot (to_int v))

(** Render a value for traces and debugging. *)
let rec to_string (v : value) =
  match view v with
  | Int v -> Int64.to_string v
  | Str s -> Printf.sprintf "%S" s
  | Ptr o -> Printf.sprintf "<obj#%d%s>" o.oid (if o.freed then " freed" else "")
  | Fn f -> Printf.sprintf "<fn %s>" f
  | Uptr u -> Printf.sprintf "<user %s>" (uval_to_string u)
  | Unit -> "()"

and uval_to_string = function
  | U_int v -> Int64.to_string v
  | U_str s -> Printf.sprintf "%S" s
  | U_arr xs ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map uval_to_string xs))
  | U_struct (name, fields) ->
      Printf.sprintf "%s{%s}" name
        (String.concat "; "
           (List.map (fun (f, v) -> f ^ "=" ^ uval_to_string v) fields))
  | U_null -> "NULL"

(** Free-list pool for the jit's per-call slot arrays, bucketed by
    exact size. Steady-state execution recycles a handful of frame
    shapes millions of times; acquiring from the pool replaces a
    [caml_make_vect] per guest call with an array-stack pop. Released
    arrays are scrubbed back to {!unbound} (the acquire contract), and
    frames lost to an exception unwind are simply collected — the pool
    never owns a frame that is still in use. One pool per executor
    machine; machines are single-domain, so no locking. *)
module Pool = struct
  (* recursion depth is capped at 64 frames, so a bucket never needs to
     hold more than that many frames of one size *)
  let max_size = 64 (* frames wider than this are allocated fresh *)
  let max_depth = 64

  type bucket = { mutable stack : value array array; mutable top : int }

  type t = bucket array (* index = frame size, 0..max_size *)

  let create () : t =
    Array.init (max_size + 1) (fun _ -> { stack = [||]; top = 0 })

  let[@inline] acquire (p : t) (n : int) : value array =
    if n > max_size then Array.make n unbound
    else
      let b = Array.unsafe_get p n in
      if b.top > 0 then begin
        b.top <- b.top - 1;
        let a = Array.unsafe_get b.stack b.top in
        Array.unsafe_set b.stack b.top [||];
        a
      end
      else Array.make n unbound

  let[@inline] release (p : t) (a : value array) : unit =
    let n = Array.length a in
    if n > 0 && n <= max_size then begin
      let b = Array.unsafe_get p n in
      let cap = Array.length b.stack in
      if b.top = cap && cap < max_depth then begin
        let ncap = if cap = 0 then 4 else min (2 * cap) max_depth in
        let ns = Array.make ncap [||] in
        Array.blit b.stack 0 ns 0 cap;
        b.stack <- ns
      end;
      if b.top < Array.length b.stack then begin
        Array.fill a 0 n unbound;
        Array.unsafe_set b.stack b.top a;
        b.top <- b.top + 1
      end
    end
end
