(** The virtual kernel machine: boots the corpus, exposes the syscall
    interface, executes syscall programs, and reports coverage + crashes.

    This is the stand-in for the QEMU/KCOV fuzzing target of the paper's
    evaluation. Device paths and socket triples come from the registry's
    ground truth (the moral equivalent of actually booting the modules);
    everything else — handler dispatch, argument passing, crash
    detection — runs from the same mini-C sources that the analyses
    under test read, either through the tree-walking {!Interp} or the
    closure-compiled {!Jit} (the default; both are exact mirrors).

    Syscalls dispatch through a jump table (name resolved to an opcode
    once, handlers in a dense array), the UNIX trap-vector idiom, rather
    than re-matching the name string per call. *)

type parg =
  | P_int of int64
  | P_str of string
  | P_data of Value.uval  (** user pointer payload *)
  | P_null
  | P_result of int  (** file descriptor produced by call #i of the program *)

type call = { c_name : string; c_args : parg list }

type prog = call list

type crash_report = { cr_title : string; cr_call : int (* index of the crashing call *) }

type exec_result = {
  retvals : int64 array;
  crash : crash_report option;
  coverage : int list;  (** statement ids executed *)
  timed_out : bool;  (** a call (or exit-path release) exhausted the step budget *)
}

type device = { dev_module : string; dev_fops : string }

type socket_reg = { sock_module : string; sock_ops : string }

type t = {
  index : Csrc.Index.t;
  devices : (string * device) list;
  sockets : ((int * int * int) * socket_reg) list;
  sid_module : (int, string) Hashtbl.t;
  modules : string list;
  jit : Jit.t Lazy.t;
      (** closure-compiled function bodies; forced on first execution so
          boots that never execute programs pay nothing *)
  layouts : Interp.layout Value.Stbl.t;
      (** composite layout plans shared by every per-execution state:
          the index is frozen after boot, so a struct's field walk is
          computed once per machine, not once per instantiation *)
  frames : Value.Pool.t;
      (** free-list pool for call frames (jit slot arrays), shared by
          every per-execution state of this machine like [layouts] *)
  n_sids : int;  (** statement-id count, sizes coverage bitmaps *)
}

let module_file_name (e : Corpus.Types.entry) =
  match e.kind with
  | Corpus.Types.Driver -> Printf.sprintf "drivers/%s.c" e.name
  | Corpus.Types.Socket -> Printf.sprintf "net/%s.c" e.name

(** Boot the machine over the given corpus entries (normally the loaded
    ones). Parses every module together with the shared header into a
    single definition index with globally unique statement ids. *)
let boot (entries : Corpus.Types.entry list) : t =
  let sid = ref 0 in
  let header =
    Csrc.Parser.parse_file ~file:"include/kernel.h" ~sid Corpus.Headers.kernel_h
  in
  let sid_module = Hashtbl.create 4096 in
  let files =
    List.map
      (fun (e : Corpus.Types.entry) ->
        let before = !sid in
        let f = Csrc.Parser.parse_file ~file:(module_file_name e) ~sid e.source in
        for s = before to !sid - 1 do
          Hashtbl.replace sid_module s e.name
        done;
        f)
      entries
  in
  let index = Csrc.Index.of_files (header :: files) in
  let devices =
    List.concat_map
      (fun (e : Corpus.Types.entry) ->
        if e.kind = Corpus.Types.Driver then
          List.map
            (fun path -> (path, { dev_module = e.name; dev_fops = e.gt.gt_fops }))
            e.gt.gt_paths
        else [])
      entries
  in
  let sockets =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        match e.gt.gt_socket with
        | Some triple when e.kind = Corpus.Types.Socket ->
            Some (triple, { sock_module = e.name; sock_ops = e.gt.gt_fops })
        | _ -> None)
      entries
  in
  {
    index;
    devices;
    sockets;
    sid_module;
    modules = List.map (fun (e : Corpus.Types.entry) -> e.name) entries;
    jit = lazy (Jit.of_index index);
    layouts = Value.Stbl.create 64;
    frames = Value.Pool.create ();
    n_sids = !sid;
  }

let module_of_sid t sid = Hashtbl.find_opt t.sid_module sid

(* ------------------------------------------------------------------ *)
(* Coverage sink                                                       *)
(* ------------------------------------------------------------------ *)

(** Reusable per-campaign coverage collector: a bitmap over statement
    ids plus the list of ids touched this execution. Recording and
    resetting allocate nothing once the buffers are warm, so the hot
    loop's coverage bookkeeping is O(touched), not O(programs ×
    hashtable). *)
type cov_sink = {
  mutable cs_bits : Bytes.t;  (** bit per sid, set while touched this run *)
  mutable cs_buf : int array;  (** sids touched this run, first [cs_n] *)
  mutable cs_n : int;
  mutable cs_hook : int -> unit;
      (** [sink_record] on this sink, built once — the hot loop hands it
          to every execution's state instead of closing over the sink
          again per program *)
}

let sink_record (sk : cov_sink) (sid : int) : unit =
  let byte = sid lsr 3 in
  if byte >= Bytes.length sk.cs_bits then begin
    (* sids past boot's count (defensive; spawned code can't add any) *)
    let nb = Bytes.make (byte + 64) '\000' in
    Bytes.blit sk.cs_bits 0 nb 0 (Bytes.length sk.cs_bits);
    sk.cs_bits <- nb
  end;
  let b = Char.code (Bytes.unsafe_get sk.cs_bits byte) in
  let bit = 1 lsl (sid land 7) in
  if b land bit = 0 then begin
    Bytes.unsafe_set sk.cs_bits byte (Char.unsafe_chr (b lor bit));
    if sk.cs_n >= Array.length sk.cs_buf then begin
      let nbuf = Array.make (2 * Array.length sk.cs_buf) 0 in
      Array.blit sk.cs_buf 0 nbuf 0 sk.cs_n;
      sk.cs_buf <- nbuf
    end;
    sk.cs_buf.(sk.cs_n) <- sid;
    sk.cs_n <- sk.cs_n + 1
  end

let new_sink (t : t) : cov_sink =
  let sk =
    {
      cs_bits = Bytes.make ((t.n_sids / 8) + 1) '\000';
      cs_buf = Array.make 1024 0;
      cs_n = 0;
      cs_hook = ignore;
    }
  in
  sk.cs_hook <- (fun sid -> sink_record sk sid);
  sk

(** Clear only the touched bits (not the whole bitmap) and rewind the
    buffer, readying the sink for the next execution. *)
let sink_reset (sk : cov_sink) : unit =
  for i = 0 to sk.cs_n - 1 do
    let sid = sk.cs_buf.(i) in
    let byte = sid lsr 3 in
    let b = Char.code (Bytes.unsafe_get sk.cs_bits byte) in
    Bytes.unsafe_set sk.cs_bits byte (Char.unsafe_chr (b land lnot (1 lsl (sid land 7))))
  done;
  sk.cs_n <- 0

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

(** Which executor runs handler bodies. Both are exact mirrors; [`Jit]
    (the default) compiles each function to closures once per machine. *)
type engine = [ `Jit | `Interp ]

type fd_entry = {
  fd_file : Value.obj;  (** the [struct file] (or [struct socket]) object *)
  fd_inode : Value.obj;
  fd_ops : string;  (** name of the fops / proto_ops global *)
  fd_ops_h : int;  (** [Value.Stbl.hash fd_ops], computed once at fd creation *)
  fd_is_socket : bool;
}

type run = {
  machine : t;
  st : Interp.state;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  use_jit : bool;
}

let errno v = Int64.neg (Int64.of_int v)

(* Handler field names interned and hashed once: dispatch resolves fops
   globals and their function-pointer fields on every syscall, so the
   string hashes are hoisted out of the hot path (for both engines),
   and interning lets the field probe hit the pointer-compare fast path
   against layout-built field names. *)
let f_open = Value.intern "open"
let f_release = Value.intern "release"
let f_poll = Value.intern "poll"
let f_mmap = Value.intern "mmap"
let f_connect = Value.intern "connect"
let f_accept = Value.intern "accept"
let f_ioctl = Value.intern "ioctl"
let f_unlocked_ioctl = Value.intern "unlocked_ioctl"
let f_sendmsg = Value.intern "sendmsg"
let f_recvmsg = Value.intern "recvmsg"
let h_open = Value.Stbl.hash f_open
let h_release = Value.Stbl.hash f_release
let h_poll = Value.Stbl.hash f_poll
let h_mmap = Value.Stbl.hash f_mmap
let h_connect = Value.Stbl.hash f_connect
let h_accept = Value.Stbl.hash f_accept
let h_ioctl = Value.Stbl.hash f_ioctl
let h_unlocked_ioctl = Value.Stbl.hash f_unlocked_ioctl
let h_sendmsg = Value.Stbl.hash f_sendmsg
let h_recvmsg = Value.Stbl.hash f_recvmsg

let handler run ~(ops : string) ~(oh : int) (field : string) (fh : int) : string option =
  (* the fops global initializes lazily on first touch; each engine
     runs its own initializer form (compiled plan vs AST walk), which
     produce identical objects in identical order *)
  let fops =
    if run.use_jit then Jit.get_global_h (Lazy.force run.machine.jit) run.st oh ops
    else Interp.get_global_h run.st oh ops
  in
  match fops with
  | Some v -> (
      match Value.view v with
      | Value.Ptr o -> (
          match Value.view (Interp.get_field_h ~fn:"__dispatch" o fh field) with
          | Value.Fn name -> Some name
          | _ -> None)
      | _ -> None)
  | None -> None

let call_handler run ~ops ~oh field fh args ~(default : int64) : int64 =
  match handler run ~ops ~oh field fh with
  | None -> default
  | Some fname ->
      Value.to_int
        (if run.use_jit then Jit.call (Lazy.force run.machine.jit) run.st fname args
         else Interp.call run.st fname args)

let resolve_fd run (retvals : int64 array) (a : parg) : fd_entry option * int64 =
  match a with
  | P_result i when i >= 0 && i < Array.length retvals ->
      let v = retvals.(i) in
      if Int64.compare v 0L >= 0 then (Hashtbl.find_opt run.fds (Int64.to_int v), v)
      else (None, v)
  | P_int v -> (Hashtbl.find_opt run.fds (Int64.to_int v), v)
  | P_str _ | P_data _ | P_null | P_result _ -> (None, -1L)

let arg_value (a : parg) (retvals : int64 array) : Value.value =
  match a with
  | P_int v -> Value.vint v
  | P_str s -> Value.vstr s
  | P_data uv -> Value.vuptr uv
  | P_null -> Value.vzero
  | P_result i ->
      if i >= 0 && i < Array.length retvals then Value.vint retvals.(i)
      else Value.vint (-1L)

let nth_arg args i = match List.nth_opt args i with Some a -> a | None -> P_null

let new_fd run entry =
  let fd = run.next_fd in
  run.next_fd <- fd + 1;
  Hashtbl.replace run.fds fd entry;
  Int64.of_int fd

(* Per-syscall handlers for the dispatch table. Each takes the raw call
   so shared handlers (openat/open, read/write, ...) can branch on the
   name where the old match arms did. *)

let get args i = nth_arg args i

let val_of args retvals i = arg_value (nth_arg args i) retvals

let int_of args retvals i = Value.to_int (val_of args retvals i)

let op_open (run : run) (retvals : int64 array) (c : call) : int64 =
  let st = run.st in
  let fn = "__syscall" in
  let args = c.c_args in
  let path = match get args 1 with P_str s -> s | _ -> "" in
  let path =
    if c.c_name = "open" then (match get args 0 with P_str s -> s | _ -> path) else path
  in
  ignore retvals;
  match List.assoc_opt path run.machine.devices with
  | None -> errno 2 (* ENOENT *)
  | Some dev ->
      let file = Interp.typed_obj st ~fn "file" in
      let inode = Interp.typed_obj st ~fn "inode" in
      let r =
        call_handler run ~ops:dev.dev_fops ~oh:(Value.Stbl.hash dev.dev_fops) f_open h_open
          [ Value.vptr inode; Value.vptr file ]
          ~default:0L
      in
      if Int64.compare r 0L < 0 then r
      else
        new_fd run
          {
            fd_file = file;
            fd_inode = inode;
            fd_ops = dev.dev_fops;
            fd_ops_h = Value.Stbl.hash dev.dev_fops;
            fd_is_socket = false;
          }

let op_socket (run : run) (retvals : int64 array) (c : call) : int64 =
  let st = run.st in
  let fn = "__syscall" in
  let args = c.c_args in
  let domain = Int64.to_int (int_of args retvals 0) in
  let styp = Int64.to_int (int_of args retvals 1) in
  let proto = Int64.to_int (int_of args retvals 2) in
  let lookup k = List.assoc_opt k run.machine.sockets in
  let by_pred pred =
    List.find_map
      (fun ((d, t, p), reg) -> if pred d t p then Some reg else None)
      run.machine.sockets
  in
  (* families commonly accept several socket types; match the most
     specific registration available *)
  let resolved =
    match lookup (domain, styp, proto) with
    | Some s -> Some s
    | None -> (
        match lookup (domain, styp, 0) with
        | Some s -> Some s
        | None -> (
            match
              if proto <> 0 then by_pred (fun d _ p -> d = domain && p = proto) else None
            with
            | Some s -> Some s
            | None -> by_pred (fun d _ _ -> d = domain)))
  in
  match resolved with
  | None -> errno 97 (* EAFNOSUPPORT *)
  | Some reg ->
      let sock = Interp.typed_obj st ~fn "socket" in
      Interp.set_field ~fn sock "sk_type" (Value.vint (Int64.of_int styp));
      let inode = Interp.typed_obj st ~fn "inode" in
      new_fd run
        {
          fd_file = sock;
          fd_inode = inode;
          fd_ops = reg.sock_ops;
          fd_ops_h = Value.Stbl.hash reg.sock_ops;
          fd_is_socket = true;
        }

let op_close (run : run) (retvals : int64 array) (c : call) : int64 =
  match resolve_fd run retvals (get c.c_args 0) with
  | None, _ -> errno 9
  | Some e, fdnum ->
      Hashtbl.remove run.fds (Int64.to_int fdnum);
      if e.fd_is_socket then
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_release h_release
          [ Value.vptr e.fd_file ] ~default:0L
      else
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_release h_release
          [ Value.vptr e.fd_inode; Value.vptr e.fd_file ]
          ~default:0L

let op_ioctl (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ ->
      let cmd = int_of args retvals 1 in
      let argv = val_of args retvals 2 in
      let field, fh =
        if e.fd_is_socket then (f_ioctl, h_ioctl) else (f_unlocked_ioctl, h_unlocked_ioctl)
      in
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h field fh
        [ Value.vptr e.fd_file; Value.vint cmd; argv ]
        ~default:(errno 25 (* ENOTTY *))

let op_rw (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ ->
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h c.c_name (Value.Stbl.hash c.c_name)
        [ Value.vptr e.fd_file; val_of args retvals 1; val_of args retvals 2; Value.vzero ]
        ~default:(errno 22)

let op_poll (run : run) (retvals : int64 array) (c : call) : int64 =
  match resolve_fd run retvals (get c.c_args 0) with
  | None, _ -> errno 9
  | Some e, _ ->
      if e.fd_is_socket then
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_poll h_poll
          [ Value.vzero; Value.vptr e.fd_file; Value.vzero ]
          ~default:0L
      else
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_poll h_poll
          [ Value.vptr e.fd_file; Value.vzero ] ~default:0L

let op_mmap (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ ->
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_mmap h_mmap
        [ Value.vptr e.fd_file; val_of args retvals 1 ]
        ~default:(errno 19)

let op_sock_generic (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      (* the kernel copies the sockaddr before invoking the handler:
         a NULL user pointer faults at the boundary *)
      if c.c_name = "bind" && Value.is_zero (val_of args retvals 1) then errno 14
      else
        let rest =
          match c.c_name with
          | "bind" -> [ val_of args retvals 1; val_of args retvals 2 ]
          | "listen" | "shutdown" -> [ val_of args retvals 1 ]
          | _ -> []
        in
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h c.c_name (Value.Stbl.hash c.c_name)
          (Value.vptr e.fd_file :: rest)
          ~default:(errno 95)
  | Some _, _ -> errno 88 (* ENOTSOCK *)

let op_connect (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      if Value.is_zero (val_of args retvals 1) then errno 14
      else
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_connect h_connect
          [ Value.vptr e.fd_file; val_of args retvals 1; val_of args retvals 2; Value.vzero ]
          ~default:(errno 95)
  | Some _, _ -> errno 88

let op_accept (run : run) (retvals : int64 array) (c : call) : int64 =
  let st = run.st in
  let fn = "__syscall" in
  match resolve_fd run retvals (get c.c_args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      let newsock = Interp.typed_obj st ~fn "socket" in
      let r =
        call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_accept h_accept
          [ Value.vptr e.fd_file; Value.vptr newsock; Value.vzero ]
          ~default:(errno 95)
      in
      if Int64.compare r 0L < 0 then r
      else
        new_fd run
          {
            fd_file = newsock;
            fd_inode = Interp.typed_obj st ~fn "inode";
            fd_ops = e.fd_ops;
            fd_ops_h = e.fd_ops_h;
            fd_is_socket = true;
          }
  | Some _, _ -> errno 88

let op_sockopt (run : run) (retvals : int64 array) (c : call) : int64 =
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h c.c_name (Value.Stbl.hash c.c_name)
        [
          Value.vptr e.fd_file;
          val_of args retvals 1;
          val_of args retvals 2;
          val_of args retvals 3;
          val_of args retvals 4;
        ]
        ~default:(errno 92 (* ENOPROTOOPT *))
  | Some _, _ -> errno 88

let op_sendrecvmsg (run : run) (retvals : int64 array) (c : call) : int64 =
  let st = run.st in
  let fn = "__syscall" in
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      let msg = Interp.typed_obj st ~fn "msghdr" in
      (match Value.view (val_of args retvals 1) with
      | Value.Uptr uv -> Interp.materialize_into st ~fn msg uv
      | _ -> ());
      let extra =
        if c.c_name = "recvmsg" then
          [ int_of args retvals 2; Value.to_int (val_of args retvals 3) ]
        else [ int_of args retvals 2 ]
      in
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h c.c_name (Value.Stbl.hash c.c_name)
        (Value.vptr e.fd_file :: Value.vptr msg :: List.map Value.vint extra)
        ~default:(errno 95)
  | Some _, _ -> errno 88

let op_sendto (run : run) (retvals : int64 array) (c : call) : int64 =
  (* sendto(fd, buf, len, flags, addr, addrlen) is lowered onto the
     module's sendmsg/recvmsg handler via a synthesized msghdr *)
  let st = run.st in
  let fn = "__syscall" in
  let args = c.c_args in
  match resolve_fd run retvals (get args 0) with
  | None, _ -> errno 9
  | Some e, _ when e.fd_is_socket ->
      let msg = Interp.typed_obj st ~fn "msghdr" in
      Interp.set_field ~fn msg "msg_iov" (val_of args retvals 1);
      Interp.set_field ~fn msg "msg_name" (val_of args retvals 4);
      Interp.set_field ~fn msg "msg_namelen" (Value.vint (int_of args retvals 5));
      let field, fh =
        if c.c_name = "sendto" then (f_sendmsg, h_sendmsg) else (f_recvmsg, h_recvmsg)
      in
      let extra =
        if field == f_recvmsg then [ int_of args retvals 2; int_of args retvals 3 ]
        else [ int_of args retvals 2 ]
      in
      call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h field fh
        (Value.vptr e.fd_file :: Value.vptr msg :: List.map Value.vint extra)
        ~default:(errno 95)
  | Some _, _ -> errno 88

(* The jump table: syscall names resolve to an opcode once (hash lookup)
   and dispatch indexes a dense handler array. *)
let syscall_table : (string * (run -> int64 array -> call -> int64)) array =
  [|
    ("openat", op_open);
    ("open", op_open);
    ("socket", op_socket);
    ("close", op_close);
    ("ioctl", op_ioctl);
    ("read", op_rw);
    ("write", op_rw);
    ("poll", op_poll);
    ("mmap", op_mmap);
    ("bind", op_sock_generic);
    ("listen", op_sock_generic);
    ("shutdown", op_sock_generic);
    ("connect", op_connect);
    ("accept", op_accept);
    ("setsockopt", op_sockopt);
    ("getsockopt", op_sockopt);
    ("sendmsg", op_sendrecvmsg);
    ("recvmsg", op_sendrecvmsg);
    ("sendto", op_sendto);
    ("recvfrom", op_sendto);
  |]

let opcode : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun i (name, _) -> Hashtbl.replace tbl name i) syscall_table;
  tbl

let dispatch : (run -> int64 array -> call -> int64) array = Array.map snd syscall_table

(** Execute one syscall. Returns the syscall return value; crashes
    propagate as {!Crash.Crash}. *)
let exec_call (run : run) (retvals : int64 array) (c : call) : int64 =
  match Hashtbl.find_opt opcode c.c_name with
  | Some op -> dispatch.(op) run retvals c
  | None -> errno 38 (* ENOSYS *)

(** Execute a whole program against a fresh kernel state. *)
let exec_prog_core ~(step_budget : int) ~(engine : engine) ~(sink : cov_sink option)
    (t : t) (prog : prog) : exec_result =
  let on_cover = match sink with Some sk -> Some sk.cs_hook | None -> None in
  let st =
    Interp.create ~index:t.index ~layouts:t.layouts ~frames:t.frames ~step_budget
      ?on_cover ()
  in
  let run =
    { machine = t; st; fds = Hashtbl.create 8; next_fd = 3; use_jit = engine = `Jit }
  in
  st.Interp.spawn_fd <-
    Some
      (fun ops_global ->
        let file = Interp.typed_obj st ~fn:"anon_inode" "file" in
        let inode = Interp.typed_obj st ~fn:"anon_inode" "inode" in
        new_fd run
          {
            fd_file = file;
            fd_inode = inode;
            fd_ops = ops_global;
            fd_ops_h = Value.Stbl.hash ops_global;
            fd_is_socket = false;
          });
  let n = List.length prog in
  let retvals = Array.make n (-1L) in
  let crash = ref None in
  let timed_out = ref false in
  let rec go i = function
    | [] -> ()
    | c :: rest -> (
        match exec_call run retvals c with
        | r ->
            retvals.(i) <- r;
            go (i + 1) rest
        | exception Crash.Crash cr ->
            crash := Some { cr_title = Crash.title cr; cr_call = i }
        | exception Interp.Exec_timeout ->
            retvals.(i) <- errno 4 (* EINTR: stuck call *);
            timed_out := true
        | exception Interp.Exec_error _ ->
            retvals.(i) <- errno 22;
            go (i + 1) rest)
  in
  go 0 prog;
  (* process exit: close remaining fds (release handlers may crash too).
     A timed-out program left st.steps at the budget, so every release
     would re-raise Exec_timeout on its first step and get swallowed —
     grant the exit path a small fresh budget so releases actually run
     (the kernel's exit path is not subject to the caller's quantum). *)
  let release_headroom = 10_000 in
  if st.Interp.steps > st.Interp.step_budget - release_headroom then
    st.Interp.steps <- max 0 (st.Interp.step_budget - release_headroom);
  if !crash = None then begin
    let open_fds = Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) run.fds [] in
    let open_fds = List.sort (fun (a, _) (b, _) -> compare a b) open_fds in
    (try
       List.iter
         (fun (fd, e) ->
           Hashtbl.remove run.fds fd;
           if e.fd_is_socket then
             ignore
               (call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_release h_release
                  [ Value.vptr e.fd_file ] ~default:0L)
           else
             ignore
               (call_handler run ~ops:e.fd_ops ~oh:e.fd_ops_h f_release h_release
                  [ Value.vptr e.fd_inode; Value.vptr e.fd_file ]
                  ~default:0L))
         open_fds
     with
    | Crash.Crash cr -> crash := Some { cr_title = Crash.title cr; cr_call = n - 1 }
    | Interp.Exec_timeout ->
        timed_out := true
    | Interp.Exec_error _ -> ())
  end;
  (* kmemleak scan over what is still reachable. Skipped when the
     program (or its exit path) timed out: an interrupted program never
     got to run its release handlers to completion, so "leaks" found
     here are an artifact of the exhausted budget, not bugs. *)
  if !crash = None && not !timed_out then begin
    let roots =
      Hashtbl.fold
        (fun _ e acc -> Value.vptr e.fd_file :: Value.vptr e.fd_inode :: acc)
        run.fds []
    in
    match Interp.leaked_objects st ~roots with
    | [] -> ()
    | site :: _ ->
        crash :=
          Some { cr_title = Crash.title { Crash.kind = Crash.Memory_leak; fn = site }; cr_call = n - 1 }
  end;
  let coverage =
    match sink with
    | Some _ -> [] (* the sink holds it; don't rebuild a list per exec *)
    | None -> Hashtbl.fold (fun sid () acc -> sid :: acc) st.Interp.coverage []
  in
  { retvals; crash = !crash; coverage; timed_out = !timed_out }

let exec_prog ?(step_budget = 200_000) ?(engine : engine = `Jit) (t : t) (prog : prog) :
    exec_result =
  exec_prog_core ~step_budget ~engine ~sink:None t prog

(** Like {!exec_prog}, but coverage lands in [sink] (bitmap + touched
    list) instead of the result's [coverage] list, which comes back
    empty. The caller reads the sink and {!sink_reset}s it before the
    next execution. *)
let exec_prog_sink ?(step_budget = 200_000) ?(engine : engine = `Jit) ~(sink : cov_sink)
    (t : t) (prog : prog) : exec_result =
  exec_prog_core ~step_budget ~engine ~sink:(Some sink) t prog
