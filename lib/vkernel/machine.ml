(** The virtual kernel machine: boots the corpus, exposes the syscall
    interface, executes syscall programs, and reports coverage + crashes.

    This is the stand-in for the QEMU/KCOV fuzzing target of the paper's
    evaluation. Device paths and socket triples come from the registry's
    ground truth (the moral equivalent of actually booting the modules);
    everything else — handler dispatch, argument passing, crash
    detection — is interpreted from the same mini-C sources that the
    analyses under test read. *)

type parg =
  | P_int of int64
  | P_str of string
  | P_data of Value.uval  (** user pointer payload *)
  | P_null
  | P_result of int  (** file descriptor produced by call #i of the program *)

type call = { c_name : string; c_args : parg list }

type prog = call list

type crash_report = { cr_title : string; cr_call : int (* index of the crashing call *) }

type exec_result = {
  retvals : int64 array;
  crash : crash_report option;
  coverage : int list;  (** statement ids executed *)
  timed_out : bool;  (** a call (or exit-path release) exhausted the step budget *)
}

type device = { dev_module : string; dev_fops : string }

type socket_reg = { sock_module : string; sock_ops : string }

type t = {
  index : Csrc.Index.t;
  devices : (string * device) list;
  sockets : ((int * int * int) * socket_reg) list;
  sid_module : (int, string) Hashtbl.t;
  modules : string list;
}

let module_file_name (e : Corpus.Types.entry) =
  match e.kind with
  | Corpus.Types.Driver -> Printf.sprintf "drivers/%s.c" e.name
  | Corpus.Types.Socket -> Printf.sprintf "net/%s.c" e.name

(** Boot the machine over the given corpus entries (normally the loaded
    ones). Parses every module together with the shared header into a
    single definition index with globally unique statement ids. *)
let boot (entries : Corpus.Types.entry list) : t =
  let sid = ref 0 in
  let header =
    Csrc.Parser.parse_file ~file:"include/kernel.h" ~sid Corpus.Headers.kernel_h
  in
  let sid_module = Hashtbl.create 4096 in
  let files =
    List.map
      (fun (e : Corpus.Types.entry) ->
        let before = !sid in
        let f = Csrc.Parser.parse_file ~file:(module_file_name e) ~sid e.source in
        for s = before to !sid - 1 do
          Hashtbl.replace sid_module s e.name
        done;
        f)
      entries
  in
  let index = Csrc.Index.of_files (header :: files) in
  let devices =
    List.concat_map
      (fun (e : Corpus.Types.entry) ->
        if e.kind = Corpus.Types.Driver then
          List.map
            (fun path -> (path, { dev_module = e.name; dev_fops = e.gt.gt_fops }))
            e.gt.gt_paths
        else [])
      entries
  in
  let sockets =
    List.filter_map
      (fun (e : Corpus.Types.entry) ->
        match e.gt.gt_socket with
        | Some triple when e.kind = Corpus.Types.Socket ->
            Some (triple, { sock_module = e.name; sock_ops = e.gt.gt_fops })
        | _ -> None)
      entries
  in
  {
    index;
    devices;
    sockets;
    sid_module;
    modules = List.map (fun (e : Corpus.Types.entry) -> e.name) entries;
  }

let module_of_sid t sid = Hashtbl.find_opt t.sid_module sid

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

type fd_entry = {
  fd_file : Value.obj;  (** the [struct file] (or [struct socket]) object *)
  fd_inode : Value.obj;
  fd_ops : string;  (** name of the fops / proto_ops global *)
  fd_is_socket : bool;
}

type run = {
  machine : t;
  st : Interp.state;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
}

let errno v = Int64.neg (Int64.of_int v)

let handler run ~(ops : string) (field : string) : string option =
  match Interp.get_global run.st ops with
  | Some (Value.Ptr o) -> (
      match Interp.get_field ~fn:"__dispatch" o field with
      | Value.Fn name -> Some name
      | _ -> None)
  | _ -> None

let call_handler run ~ops field args ~(default : int64) : int64 =
  match handler run ~ops field with
  | None -> default
  | Some fname -> Value.to_int (Interp.call run.st fname args)

let resolve_fd run (retvals : int64 array) (a : parg) : fd_entry option * int64 =
  match a with
  | P_result i when i >= 0 && i < Array.length retvals ->
      let v = retvals.(i) in
      if Int64.compare v 0L >= 0 then (Hashtbl.find_opt run.fds (Int64.to_int v), v)
      else (None, v)
  | P_int v -> (Hashtbl.find_opt run.fds (Int64.to_int v), v)
  | P_str _ | P_data _ | P_null | P_result _ -> (None, -1L)

let arg_value (a : parg) (retvals : int64 array) : Value.value =
  match a with
  | P_int v -> Value.Int v
  | P_str s -> Value.Str s
  | P_data uv -> Value.Uptr uv
  | P_null -> Value.Int 0L
  | P_result i ->
      if i >= 0 && i < Array.length retvals then Value.Int retvals.(i) else Value.Int (-1L)

let nth_arg args i = match List.nth_opt args i with Some a -> a | None -> P_null

let new_fd run entry =
  let fd = run.next_fd in
  run.next_fd <- fd + 1;
  Hashtbl.replace run.fds fd entry;
  Int64.of_int fd

(** Execute one syscall. Returns the syscall return value; crashes
    propagate as {!Crash.Crash}. *)
let exec_call (run : run) (retvals : int64 array) (c : call) : int64 =
  let st = run.st in
  let fn = "__syscall" in
  let args = c.c_args in
  let get i = nth_arg args i in
  let val_of i = arg_value (get i) retvals in
  let int_of i = Value.to_int (val_of i) in
  match c.c_name with
  | "openat" | "open" -> (
      let path = match get 1 with P_str s -> s | _ -> "" in
      let path = if c.c_name = "open" then (match get 0 with P_str s -> s | _ -> path) else path in
      match List.assoc_opt path run.machine.devices with
      | None -> errno 2 (* ENOENT *)
      | Some dev ->
          let file = Interp.typed_obj st ~fn "file" in
          let inode = Interp.typed_obj st ~fn "inode" in
          let r =
            call_handler run ~ops:dev.dev_fops "open"
              [ Value.Ptr inode; Value.Ptr file ]
              ~default:0L
          in
          if Int64.compare r 0L < 0 then r
          else
            new_fd run
              { fd_file = file; fd_inode = inode; fd_ops = dev.dev_fops; fd_is_socket = false })
  | "socket" -> (
      let domain = Int64.to_int (int_of 0) in
      let styp = Int64.to_int (int_of 1) in
      let proto = Int64.to_int (int_of 2) in
      let lookup k = List.assoc_opt k run.machine.sockets in
      let by_pred pred =
        List.find_map
          (fun ((d, t, p), reg) -> if pred d t p then Some reg else None)
          run.machine.sockets
      in
      (* families commonly accept several socket types; match the most
         specific registration available *)
      let resolved =
        match lookup (domain, styp, proto) with
        | Some s -> Some s
        | None -> (
            match lookup (domain, styp, 0) with
            | Some s -> Some s
            | None -> (
                match
                  if proto <> 0 then by_pred (fun d _ p -> d = domain && p = proto) else None
                with
                | Some s -> Some s
                | None -> by_pred (fun d _ _ -> d = domain)))
      in
      match resolved with
      | None -> errno 97 (* EAFNOSUPPORT *)
      | Some reg ->
          let sock = Interp.typed_obj st ~fn "socket" in
          Interp.set_field ~fn sock "sk_type" (Value.Int (Int64.of_int styp));
          let inode = Interp.typed_obj st ~fn "inode" in
          new_fd run
            { fd_file = sock; fd_inode = inode; fd_ops = reg.sock_ops; fd_is_socket = true })
  | "close" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, fdnum ->
          Hashtbl.remove run.fds (Int64.to_int fdnum);
          let field = if e.fd_is_socket then "release" else "release" in
          if e.fd_is_socket then
            call_handler run ~ops:e.fd_ops field [ Value.Ptr e.fd_file ] ~default:0L
          else
            call_handler run ~ops:e.fd_ops field
              [ Value.Ptr e.fd_inode; Value.Ptr e.fd_file ]
              ~default:0L)
  | "ioctl" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ ->
          let cmd = int_of 1 in
          let argv = val_of 2 in
          let field = if e.fd_is_socket then "ioctl" else "unlocked_ioctl" in
          call_handler run ~ops:e.fd_ops field
            [ Value.Ptr e.fd_file; Value.Int cmd; argv ]
            ~default:(errno 25 (* ENOTTY *)))
  | "read" | "write" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ ->
          call_handler run ~ops:e.fd_ops c.c_name
            [ Value.Ptr e.fd_file; val_of 1; val_of 2; Value.Int 0L ]
            ~default:(errno 22))
  | "poll" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ ->
          if e.fd_is_socket then
            call_handler run ~ops:e.fd_ops "poll"
              [ Value.Int 0L; Value.Ptr e.fd_file; Value.Int 0L ]
              ~default:0L
          else
            call_handler run ~ops:e.fd_ops "poll"
              [ Value.Ptr e.fd_file; Value.Int 0L ]
              ~default:0L)
  | "mmap" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ ->
          call_handler run ~ops:e.fd_ops "mmap"
            [ Value.Ptr e.fd_file; val_of 1 ]
            ~default:(errno 19))
  | "bind" | "listen" | "shutdown" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          (* the kernel copies the sockaddr before invoking the handler:
             a NULL user pointer faults at the boundary *)
          if c.c_name = "bind" && Value.is_zero (val_of 1) then errno 14
          else
            let rest =
              match c.c_name with
              | "bind" -> [ val_of 1; val_of 2 ]
              | "listen" | "shutdown" -> [ val_of 1 ]
              | _ -> []
            in
            call_handler run ~ops:e.fd_ops c.c_name
              (Value.Ptr e.fd_file :: rest)
              ~default:(errno 95)
      | Some _, _ -> errno 88 (* ENOTSOCK *))
  | "connect" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          if Value.is_zero (val_of 1) then errno 14
          else
            call_handler run ~ops:e.fd_ops "connect"
              [ Value.Ptr e.fd_file; val_of 1; val_of 2; Value.Int 0L ]
              ~default:(errno 95)
      | Some _, _ -> errno 88)
  | "accept" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          let newsock = Interp.typed_obj st ~fn "socket" in
          let r =
            call_handler run ~ops:e.fd_ops "accept"
              [ Value.Ptr e.fd_file; Value.Ptr newsock; Value.Int 0L ]
              ~default:(errno 95)
          in
          if Int64.compare r 0L < 0 then r
          else
            new_fd run
              {
                fd_file = newsock;
                fd_inode = Interp.typed_obj st ~fn "inode";
                fd_ops = e.fd_ops;
                fd_is_socket = true;
              }
      | Some _, _ -> errno 88)
  | "setsockopt" | "getsockopt" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          call_handler run ~ops:e.fd_ops c.c_name
            [ Value.Ptr e.fd_file; val_of 1; val_of 2; val_of 3; val_of 4 ]
            ~default:(errno 92 (* ENOPROTOOPT *))
      | Some _, _ -> errno 88)
  | "sendmsg" | "recvmsg" -> (
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          let msg = Interp.typed_obj st ~fn "msghdr" in
          (match val_of 1 with
          | Value.Uptr uv -> Interp.materialize_into st ~fn msg uv
          | _ -> ());
          let extra =
            if c.c_name = "recvmsg" then [ int_of 2; Value.to_int (val_of 3) ]
            else [ int_of 2 ]
          in
          call_handler run ~ops:e.fd_ops c.c_name
            (Value.Ptr e.fd_file :: Value.Ptr msg
            :: List.map (fun v -> Value.Int v) extra)
            ~default:(errno 95)
      | Some _, _ -> errno 88)
  | "sendto" | "recvfrom" -> (
      (* sendto(fd, buf, len, flags, addr, addrlen) is lowered onto the
         module's sendmsg/recvmsg handler via a synthesized msghdr *)
      match resolve_fd run retvals (get 0) with
      | None, _ -> errno 9
      | Some e, _ when e.fd_is_socket ->
          let msg = Interp.typed_obj st ~fn "msghdr" in
          Interp.set_field ~fn msg "msg_iov" (val_of 1);
          Interp.set_field ~fn msg "msg_name" (val_of 4);
          Interp.set_field ~fn msg "msg_namelen" (Value.Int (int_of 5));
          let field = if c.c_name = "sendto" then "sendmsg" else "recvmsg" in
          let extra = if field = "recvmsg" then [ int_of 2; int_of 3 ] else [ int_of 2 ] in
          call_handler run ~ops:e.fd_ops field
            (Value.Ptr e.fd_file :: Value.Ptr msg
            :: List.map (fun v -> Value.Int v) extra)
            ~default:(errno 95)
      | Some _, _ -> errno 88)
  | other ->
      ignore other;
      errno 38 (* ENOSYS *)

(** Execute a whole program against a fresh kernel state. *)
let exec_prog ?(step_budget = 200_000) (t : t) (prog : prog) : exec_result =
  let st = Interp.create ~index:t.index ~step_budget () in
  let run = { machine = t; st; fds = Hashtbl.create 8; next_fd = 3 } in
  st.Interp.spawn_fd <-
    Some
      (fun ops_global ->
        let file = Interp.typed_obj st ~fn:"anon_inode" "file" in
        let inode = Interp.typed_obj st ~fn:"anon_inode" "inode" in
        new_fd run { fd_file = file; fd_inode = inode; fd_ops = ops_global; fd_is_socket = false });
  let n = List.length prog in
  let retvals = Array.make n (-1L) in
  let crash = ref None in
  let timed_out = ref false in
  let rec go i = function
    | [] -> ()
    | c :: rest -> (
        match exec_call run retvals c with
        | r ->
            retvals.(i) <- r;
            go (i + 1) rest
        | exception Crash.Crash cr ->
            crash := Some { cr_title = Crash.title cr; cr_call = i }
        | exception Interp.Exec_timeout ->
            retvals.(i) <- errno 4 (* EINTR: stuck call *);
            timed_out := true
        | exception Interp.Exec_error _ ->
            retvals.(i) <- errno 22;
            go (i + 1) rest)
  in
  go 0 prog;
  (* process exit: close remaining fds (release handlers may crash too).
     A timed-out program left st.steps at the budget, so every release
     would re-raise Exec_timeout on its first step and get swallowed —
     grant the exit path a small fresh budget so releases actually run
     (the kernel's exit path is not subject to the caller's quantum). *)
  let release_headroom = 10_000 in
  if st.Interp.steps > st.Interp.step_budget - release_headroom then
    st.Interp.steps <- max 0 (st.Interp.step_budget - release_headroom);
  if !crash = None then begin
    let open_fds = Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) run.fds [] in
    let open_fds = List.sort (fun (a, _) (b, _) -> compare a b) open_fds in
    (try
       List.iter
         (fun (fd, e) ->
           Hashtbl.remove run.fds fd;
           if e.fd_is_socket then
             ignore (call_handler run ~ops:e.fd_ops "release" [ Value.Ptr e.fd_file ] ~default:0L)
           else
             ignore
               (call_handler run ~ops:e.fd_ops "release"
                  [ Value.Ptr e.fd_inode; Value.Ptr e.fd_file ]
                  ~default:0L))
         open_fds
     with
    | Crash.Crash cr -> crash := Some { cr_title = Crash.title cr; cr_call = n - 1 }
    | Interp.Exec_timeout ->
        timed_out := true
    | Interp.Exec_error _ -> ())
  end;
  (* kmemleak scan over what is still reachable. Skipped when the
     program (or its exit path) timed out: an interrupted program never
     got to run its release handlers to completion, so "leaks" found
     here are an artifact of the exhausted budget, not bugs. *)
  if !crash = None && not !timed_out then begin
    let roots =
      Hashtbl.fold (fun _ e acc -> Value.Ptr e.fd_file :: Value.Ptr e.fd_inode :: acc) run.fds []
    in
    match Interp.leaked_objects st ~roots with
    | [] -> ()
    | site :: _ ->
        crash :=
          Some { cr_title = Crash.title { Crash.kind = Crash.Memory_leak; fn = site }; cr_call = n - 1 }
  end;
  let coverage = Hashtbl.fold (fun sid () acc -> sid :: acc) st.Interp.coverage [] in
  { retvals; crash = !crash; coverage; timed_out = !timed_out }
