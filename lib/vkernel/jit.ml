(** Closure compiler for the mini-C dialect (the "jump-table executor").

    {!Interp} re-walks the AST on every execution: each statement match,
    identifier classification, builtin-vs-user decision and label search
    happens again for every program a campaign runs. This module lowers
    each function body once into a flat array of closures — statements
    become [env -> unit], expressions [env -> value], gotos jump through
    a precomputed label table, and call sites decide builtin vs user
    dispatch at compile time.

    The compiled code is an exact semantic mirror of {!Interp}: it
    shares the interpreter's state, environment, builtins, crash and
    timeout machinery, and performs the same side effects in the same
    order, so coverage sets, crash titles and return values are
    identical executor-for-executor. Only the dispatch cost differs.
    [scripts/ci.sh] and the QCheck differential suite hold the two
    executors to byte-identical behaviour. *)

open Value

type fun_code = {
  fc_name : string;
  fc_params : string list;
  fc_body : (Interp.env -> unit) array;
  fc_labels : (string * int) list;
      (** top-level label -> statement index; first occurrence wins,
          like the interpreter's label search *)
}

type t = { index : Csrc.Index.t; funs : (string, fun_code) Hashtbl.t }

let builtin_set : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 128 in
  List.iter (fun n -> Hashtbl.replace tbl n ()) Interp.builtin_names;
  tbl

(* ------------------------------------------------------------------ *)
(* Function invocation                                                 *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Interp.call_function], including its depth accounting (no
   unwind-protect: an escaping exception leaves the depth bumped there
   too, and the two executors must drift identically). *)
let exec_fun (st : Interp.state) (fc : fun_code) (argv : value list) : value =
  if st.Interp.depth > 64 then
    raise (Interp.Exec_error ("recursion too deep at " ^ fc.fc_name));
  st.Interp.depth <- st.Interp.depth + 1;
  let locals = Hashtbl.create 16 in
  List.iteri
    (fun i pname ->
      let v = match List.nth_opt argv i with Some v -> v | None -> Int 0L in
      Hashtbl.replace locals pname v)
    fc.fc_params;
  let env = { Interp.st; locals; fn = fc.fc_name } in
  let n = Array.length fc.fc_body in
  let rec run i =
    try
      for j = i to n - 1 do
        fc.fc_body.(j) env
      done;
      Unit
    with
    | Interp.Return_exc v -> v
    | Interp.Goto_exc l -> (
        match List.assoc_opt l fc.fc_labels with
        | Some j -> run j
        | None ->
            raise (Interp.Exec_error (Printf.sprintf "%s: unknown label %s" fc.fc_name l)))
  in
  let result = run 0 in
  st.Interp.depth <- st.Interp.depth - 1;
  result

(** Call a compiled function by name: the {!Interp.call} of this
    executor, with the same error on missing/bodyless functions. *)
let call (eng : t) (st : Interp.state) (fname : string) (argv : value list) : value =
  match Hashtbl.find_opt eng.funs fname with
  | Some fc -> exec_fun st fc argv
  | None -> raise (Interp.Exec_error ("no such function " ^ fname))

(* in-program call expression: unknown or bodyless callees yield 0
   without evaluating arguments, exactly like [Interp.eval_call] *)
let invoke (eng : t) (st : Interp.state) (fname : string) (argv : value list) : value =
  match Hashtbl.find_opt eng.funs fname with
  | Some fc -> exec_fun st fc argv
  | None -> Int 0L

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec compile_expr (eng : t) (e : Csrc.Ast.expr) : Interp.env -> value =
  match e with
  | Csrc.Ast.Const_int v ->
      let c = Int v in
      fun _ -> c
  | Csrc.Ast.Const_char ch ->
      let c = Int (Int64.of_int (Char.code ch)) in
      fun _ -> c
  | Csrc.Ast.Const_str s ->
      let c = Str s in
      fun _ -> c
  | Csrc.Ast.Ident name ->
      (* locals and globals resolve at runtime (implicit declarations,
         lazy global init); the constant fallback chain is pure on the
         index, so resolve it once here *)
      let fallback =
        match Csrc.Index.ident_const eng.index name with
        | Csrc.Index.C_int v -> Int v
        | Csrc.Index.C_str s -> Str s
        | Csrc.Index.C_none -> (
            match Csrc.Index.find_function eng.index name with
            | Some _ -> Fn name
            | None -> Int 0L)
      in
      fun env -> (
        match Hashtbl.find_opt env.Interp.locals name with
        | Some v -> v
        | None -> (
            match Interp.get_global env.Interp.st name with
            | Some v -> v
            | None -> fallback))
  | Csrc.Ast.Unop (op, a) -> (
      let ca = compile_expr eng a in
      match op with
      | Csrc.Ast.Neg -> fun env -> Int (Int64.neg (Interp.as_int (ca env)))
      | Csrc.Ast.Not -> fun env -> Interp.bool_v (not (truthy (ca env)))
      | Csrc.Ast.Bit_not -> fun env -> Int (Int64.lognot (Interp.as_int (ca env))))
  | Csrc.Ast.Binop (op, a, b) -> (
      match op with
      | Csrc.Ast.Land ->
          let ca = compile_expr eng a and cb = compile_expr eng b in
          fun env -> Interp.bool_v (truthy (ca env) && truthy (cb env))
      | Csrc.Ast.Lor ->
          let ca = compile_expr eng a and cb = compile_expr eng b in
          fun env -> Interp.bool_v (truthy (ca env) || truthy (cb env))
      | _ ->
          let ca = compile_expr eng a and cb = compile_expr eng b in
          fun env ->
            let va = ca env in
            let vb = cb env in
            Interp.binop_values ~fn:env.Interp.fn op va vb)
  | Csrc.Ast.Assign (lhs, rhs) ->
      let cr = compile_expr eng rhs in
      let cl = compile_lval eng lhs in
      fun env ->
        let v = cr env in
        Interp.store env (cl env) v;
        v
  | Csrc.Ast.Call (name, args) -> compile_call eng name args
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let ca = compile_expr eng a in
      fun env ->
        match ca env with
        | Ptr o -> Interp.get_field ~fn:env.Interp.fn o f
        | Uptr (U_struct (_, fields)) -> (
            match List.assoc_opt f fields with
            | Some uv -> Interp.value_of_uval env.Interp.st ~fn:env.Interp.fn uv
            | None -> Int 0L)
        | Int 0L | Uptr U_null -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | Int _ -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | _ ->
            raise
              (Interp.Exec_error
                 (Printf.sprintf "%s: bad field base for .%s" env.Interp.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let ci = compile_expr eng i in
      let ca = compile_expr eng a in
      fun env ->
        let idx = Int64.to_int (Interp.as_int (ci env)) in
        match ca env with
        | Ptr o -> (
            Interp.check_alive ~fn:env.Interp.fn o;
            match o.data with
            | Cells cells ->
                if idx < 0 || idx >= Array.length cells then
                  Crash.raise_crash Crash.Ubsan_oob env.Interp.fn
                else cells.(idx)
            | Fields _ | Opaque -> Int 0L)
        | Str s ->
            if idx >= 0 && idx < String.length s then Int (Int64.of_int (Char.code s.[idx]))
            else Int 0L
        | Uptr (U_arr xs) -> (
            match List.nth_opt xs idx with
            | Some uv -> Interp.value_of_uval env.Interp.st ~fn:env.Interp.fn uv
            | None -> Int 0L)
        | Int 0L -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | _ -> Int 0L)
  | Csrc.Ast.Cast (_, a) -> compile_expr eng a
  | Csrc.Ast.Sizeof_type ty ->
      let c = Int (Int64.of_int (Csrc.Index.sizeof eng.index ty)) in
      fun _ -> c
  | Csrc.Ast.Sizeof_expr _ -> fun _ -> Int 8L
  | Csrc.Ast.Ternary (c, t, f) ->
      let cc = compile_expr eng c and ct = compile_expr eng t and cf = compile_expr eng f in
      fun env -> if truthy (cc env) then ct env else cf env
  | Csrc.Ast.Addr_of a ->
      (* &x evaluates x itself for every lvalue shape, like the
         interpreter *)
      compile_expr eng a
  | Csrc.Ast.Deref a -> (
      let ca = compile_expr eng a in
      fun env ->
        match ca env with
        | Ptr o ->
            Interp.check_alive ~fn:env.Interp.fn o;
            Ptr o
        | Int 0L -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | v -> v)
  | Csrc.Ast.Type_arg ty ->
      let c = Int (Int64.of_int (Csrc.Index.sizeof eng.index ty)) in
      fun _ -> c

and compile_lval (eng : t) (e : Csrc.Ast.expr) : Interp.env -> Interp.lvalue =
  match e with
  | Csrc.Ast.Ident name ->
      fun env ->
        if Hashtbl.mem env.Interp.locals name then Interp.L_local name
        else if Interp.get_global env.Interp.st name <> None then Interp.L_global name
        else Interp.L_local name
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let ca = compile_expr eng a in
      fun env ->
        match ca env with
        | Ptr o ->
            Interp.check_alive ~fn:env.Interp.fn o;
            Interp.L_field (o, f)
        | Int _ -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | _ ->
            raise
              (Interp.Exec_error
                 (Printf.sprintf "%s: bad lvalue base for .%s" env.Interp.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let ci = compile_expr eng i in
      let ca = compile_expr eng a in
      fun env ->
        let idx = Int64.to_int (Interp.as_int (ci env)) in
        match ca env with
        | Ptr o -> (
            Interp.check_alive ~fn:env.Interp.fn o;
            match o.data with
            | Cells cells ->
                if idx < 0 || idx >= Array.length cells then
                  Crash.raise_crash Crash.Ubsan_oob env.Interp.fn
                else Interp.L_cell (o, idx)
            | Fields _ | Opaque -> Interp.L_field (o, Printf.sprintf "__idx%d" idx))
        | Int 0L -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | _ -> raise (Interp.Exec_error (env.Interp.fn ^ ": bad array lvalue")))
  | Csrc.Ast.Deref a -> (
      let ca = compile_expr eng a in
      fun env ->
        match ca env with
        | Ptr o ->
            Interp.check_alive ~fn:env.Interp.fn o;
            Interp.L_field (o, "__deref")
        | Int 0L -> Crash.raise_crash Crash.Gpf env.Interp.fn
        | _ -> raise (Interp.Exec_error (env.Interp.fn ^ ": bad deref lvalue")))
  | Csrc.Ast.Cast (_, a) -> compile_lval eng a
  | _ -> fun env -> raise (Interp.Exec_error (env.Interp.fn ^ ": expression is not an lvalue"))

and compile_call (eng : t) (name : string) (args : Csrc.Ast.expr list) : Interp.env -> value
    =
  (* the user-function decision is stable: the index is frozen after
     boot, so resolve it once per call site *)
  let user_path : (Interp.env -> value) option =
    match Csrc.Index.find_function eng.index name with
    | Some fd when fd.Csrc.Ast.fun_body <> [] ->
        let cargs = List.map (compile_expr eng) args in
        Some
          (fun env ->
            let argv = List.map (fun c -> c env) cargs in
            invoke eng env.Interp.st name argv)
    | Some _ | None -> None
  in
  if Hashtbl.mem builtin_set name then
    (* builtins evaluate their argument expressions themselves — some
       lazily, some as lvalues — so hand them the AST unchanged *)
    match user_path with
    | Some up ->
        fun env -> (
          match Interp.builtin env name args with Some v -> v | None -> up env)
    | None ->
        fun env -> (
          match Interp.builtin env name args with Some v -> v | None -> Int 0L)
  else match user_path with Some up -> up | None -> fun _ -> Int 0L

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

and compile_stmt (eng : t) (s : Csrc.Ast.stmt) : Interp.env -> unit =
  let sid = s.Csrc.Ast.sid in
  let node = compile_node eng s.Csrc.Ast.node in
  fun env ->
    Interp.step env;
    env.Interp.st.Interp.on_cover sid;
    node env

and compile_node (eng : t) (node : Csrc.Ast.stmt_node) : Interp.env -> unit =
  match node with
  | Csrc.Ast.Expr_stmt e ->
      let ce = compile_expr eng e in
      fun env -> ignore (ce env)
  | Csrc.Ast.Decl_stmt (ty, name, init) -> (
      match init with
      | Some e ->
          let ce = compile_expr eng e in
          fun env -> Hashtbl.replace env.Interp.locals name (ce env)
      | None ->
          fun env ->
            Hashtbl.replace env.Interp.locals name
              (Interp.zero_value env.Interp.st ~fn:env.Interp.fn ty))
  | Csrc.Ast.If (c, t, f) -> (
      let cc = compile_expr eng c in
      let ct = compile_block eng t in
      match f with
      | Some f ->
          let cf = compile_block eng f in
          fun env -> if truthy (cc env) then ct env else cf env
      | None -> fun env -> if truthy (cc env) then ct env)
  | Csrc.Ast.Switch (scrut, cases) ->
      let cscrut = compile_expr eng scrut in
      let clabels =
        Array.of_list
          (List.map
             (fun c ->
               List.filter_map
                 (function
                   | Csrc.Ast.Case e -> Some (compile_expr eng e)
                   | Csrc.Ast.Default -> None)
                 c.Csrc.Ast.labels)
             cases)
      in
      let cbodies =
        Array.of_list (List.map (fun c -> compile_block eng c.Csrc.Ast.case_body) cases)
      in
      let default_idx =
        let rec find i = function
          | [] -> None
          | c :: rest ->
              if List.mem Csrc.Ast.Default c.Csrc.Ast.labels then Some i
              else find (i + 1) rest
        in
        find 0 cases
      in
      let ncases = Array.length cbodies in
      fun env ->
        let key = Interp.as_int (cscrut env) in
        let start =
          let rec find i =
            if i >= ncases then default_idx
            else if
              List.exists (fun ce -> Int64.equal (Interp.as_int (ce env)) key) clabels.(i)
            then Some i
            else find (i + 1)
          in
          find 0
        in
        (match start with
        | None -> ()
        | Some i -> (
            try
              for j = i to ncases - 1 do
                cbodies.(j) env
              done
            with Interp.Break_exc -> ()))
  | Csrc.Ast.While (c, body) ->
      let cc = compile_expr eng c in
      let cb = compile_block eng body in
      fun env -> (
        try
          while truthy (cc env) do
            Interp.step env;
            try cb env with Interp.Continue_exc -> ()
          done
        with Interp.Break_exc -> ())
  | Csrc.Ast.Do_while (body, c) ->
      let cb = compile_block eng body in
      let cc = compile_expr eng c in
      fun env -> (
        try
          let continue_loop = ref true in
          while !continue_loop do
            Interp.step env;
            (try cb env with Interp.Continue_exc -> ());
            continue_loop := truthy (cc env)
          done
        with Interp.Break_exc -> ())
  | Csrc.Ast.For (init, cond, upd, body) ->
      let cinit = Option.map (compile_expr eng) init in
      let ccond = Option.map (compile_expr eng) cond in
      let cupd = Option.map (compile_expr eng) upd in
      let cb = compile_block eng body in
      fun env ->
        (match cinit with Some c -> ignore (c env) | None -> ());
        (try
           let check () = match ccond with Some c -> truthy (c env) | None -> true in
           while check () do
             Interp.step env;
             (try cb env with Interp.Continue_exc -> ());
             match cupd with Some u -> ignore (u env) | None -> ()
           done
         with Interp.Break_exc -> ())
  | Csrc.Ast.Return e -> (
      match e with
      | Some e ->
          let ce = compile_expr eng e in
          fun env -> raise (Interp.Return_exc (ce env))
      | None -> fun _ -> raise (Interp.Return_exc Unit))
  | Csrc.Ast.Break -> fun _ -> raise Interp.Break_exc
  | Csrc.Ast.Continue -> fun _ -> raise Interp.Continue_exc
  | Csrc.Ast.Goto l ->
      let exn = Interp.Goto_exc l in
      fun _ -> raise exn
  | Csrc.Ast.Label _ -> fun _ -> ()
  | Csrc.Ast.Block b -> compile_block eng b

and compile_block (eng : t) (b : Csrc.Ast.block) : Interp.env -> unit =
  match b with
  | [] -> fun _ -> ()
  | [ s ] -> compile_stmt eng s
  | _ ->
      let arr = Array.of_list (List.map (compile_stmt eng) b) in
      fun env -> Array.iter (fun f -> f env) arr

(* ------------------------------------------------------------------ *)
(* Whole-index compilation                                             *)
(* ------------------------------------------------------------------ *)

let compile_fun (eng : t) (name : string) (fd : Csrc.Ast.func_def) : fun_code =
  let body = Array.of_list (List.map (compile_stmt eng) fd.Csrc.Ast.fun_body) in
  let labels =
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) (s : Csrc.Ast.stmt) ->
              match s.Csrc.Ast.node with
              | Csrc.Ast.Label l when not (List.mem_assoc l acc) -> (i + 1, (l, i) :: acc)
              | _ -> (i + 1, acc))
            (0, []) fd.Csrc.Ast.fun_body))
  in
  {
    fc_name = name;
    fc_params = List.map snd fd.Csrc.Ast.fun_params;
    fc_body = body;
    fc_labels = labels;
  }

(** Compile every function with a body, once. The index is frozen after
    {!Machine.boot}, so the table is read-only afterwards. *)
let of_index (index : Csrc.Index.t) : t =
  let eng = { index; funs = Hashtbl.create 256 } in
  Hashtbl.iter
    (fun name (fd : Csrc.Ast.func_def) ->
      if fd.Csrc.Ast.fun_body <> [] then Hashtbl.replace eng.funs name (compile_fun eng name fd))
    index.Csrc.Index.functions;
  eng
