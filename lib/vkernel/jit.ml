(** Closure compiler for the mini-C dialect (the "jump-table executor").

    {!Interp} re-walks the AST on every execution: each statement match,
    identifier classification, builtin-vs-user decision and label search
    happens again for every program a campaign runs. This module lowers
    each function body once into a flat array of closures — statements
    become [jenv -> unit], expressions [jenv -> value] — and resolves
    everything a frozen index can resolve at compile time:

    - every local and parameter name becomes an integer slot into a
      pooled [value array] (no per-call hashtable, no string hashing,
      and — via {!Value.Pool} — no per-call array allocation on the hot
      path);
    - builtin call sites pre-compile one closure per argument and per
      lvalue argument plus one {!Interp.builtin_ctx} record per site
      (the current frame threads through a mutable cell, so steady-state
      builtin execution allocates nothing for dispatch);
    - user call sites resolve their callee's compiled code once;
    - [goto] raises a pre-resolved statement index instead of searching
      a label list;
    - each global's initializer is lowered once ({!get_global} runs the
      compiled plan on first touch instead of re-walking the AST per
      fresh state);
    - every static field and global name is {!Value.intern}ed, so the
      [Stbl] probes the compiled code performs hit the pointer-compare
      fast path.

    The compiled code is an exact semantic mirror of {!Interp}: it
    shares the interpreter's state, builtins, crash and timeout
    machinery, and performs the same side effects (including object
    allocation order) in the same order, so coverage sets, crash titles
    and return values are identical executor-for-executor. Only the
    dispatch cost differs. [scripts/ci.sh] and the QCheck differential
    suite hold the two executors to byte-identical behaviour. *)

open Value

(** Pre-resolved [goto]: the payload is the target statement index in
    the current function's body array. *)
exception Goto_idx of int

(* The slot sentinel is {!Value.unbound}: a dedicated static block no
   program can construct (immediates never equal a heap block, and the
   [B_unbound] constructor is private to slot bookkeeping), compared
   physically. It marks a slot whose declaration has not executed yet,
   so name resolution falls back to globals/constants exactly where the
   interpreter's hashtable probe would miss. *)
let unbound : value = Value.unbound

(** Per-call frame of a compiled function. *)
type jenv = { st : Interp.state; slots : value array; fn : string }

type fun_code = {
  fc_name : string;
  fc_nslots : int;
  fc_params : int array;  (** slot of each parameter, in order *)
  fc_body : (jenv -> unit) array;
}

type t = {
  index : Csrc.Index.t;
  funs : fun_code Stbl.t;
  ginits : (Interp.state -> value) Stbl.t;
      (** compiled global initializers, one plan per global *)
  dummy_env : jenv;
      (** placeholder frame for builtin-site context cells before their
          first invocation; never executed against *)
}

(* The frame a builtin call site's pre-built context closures read
   through: set on entry, restored on exit (builtins can re-enter the
   same site through a user-function callee). *)
type ctx_cell = { mutable ccur : jenv }

(* Per-function compile context: name -> slot is decided here, on
   demand, so every mention of a name in one function shares a slot. *)
type ctx = {
  eng : t;
  cfn : string;
  clabels : (string * int) list;
      (** top-level label -> statement index; first occurrence wins,
          like the interpreter's label search *)
  cslots : int Stbl.t;
  mutable cnslots : int;
  mutable ctop : bool;
      (** compiling a direct child of the function body (not nested in
          any block) — the region where a declaration dominates every
          later mention of its name *)
  mutable cdefer : (int * int * int * (Interp.state -> value)) list;
      (** (slot, oid-base slot, oid count, zero builder) for
          declarations whose zero construction is deferred to first
          read; see [Decl_stmt] below *)
}

let slot_of (ctx : ctx) (name : string) : int =
  match Stbl.find_opt ctx.cslots name with
  | Some i -> i
  | None ->
      let i = ctx.cnslots in
      ctx.cnslots <- i + 1;
      Stbl.replace ctx.cslots name i;
      i

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

(** Mirror of {!Interp.get_global}: same lazy-on-first-touch contract
    and the same object allocation order, but running the compiled
    initializer plan instead of re-walking the AST. *)
let get_global_h (eng : t) (st : Interp.state) (h : int) (name : string) : value option =
  match Stbl.find_opt_h st.Interp.globals h name with
  | Some v -> Some v
  | None -> (
      match Stbl.find_opt eng.ginits name with
      | None -> None
      | Some init ->
          let v = init st in
          Stbl.replace_h st.Interp.globals h name v;
          Some v)

let get_global (eng : t) (st : Interp.state) (name : string) : value option =
  get_global_h eng st (Stbl.hash name) name

(* Mirror of [Interp.zero_value], with every type decision taken at
   compile time. Composite zeroing delegates to [Interp.typed_obj] at
   runtime: it is already a single pass over the frozen layout, and
   sharing it guarantees identical field defaults and oid order. *)
let rec compile_zero (eng : t) ~(fn : string) (ty : Csrc.Ast.ctype) :
    Interp.state -> value =
  match ty with
  | Csrc.Ast.Void | Csrc.Ast.Bool | Csrc.Ast.Int _ | Csrc.Ast.Named _
  | Csrc.Ast.Enum_ref _ | Csrc.Ast.Ptr _ | Csrc.Ast.Func_ptr _ ->
      fun _ -> vzero
  | Csrc.Ast.Array (elem, _) when Interp.is_char_type eng.index elem ->
      fun _ -> Interp.empty_str
  | Csrc.Ast.Array (elem, Some n) when n > 0 && n <= 4096 ->
      let cz = compile_zero eng ~fn elem in
      fun st -> vptr (Interp.new_obj st ~fn ~tracked:false (Cells (Array.init n (fun _ -> cz st))))
  | Csrc.Ast.Array (_, _) ->
      fun st -> vptr (Interp.new_obj st ~fn ~tracked:false (Cells [||]))
  | Csrc.Ast.Struct_ref name | Csrc.Ast.Union_ref name ->
      fun st -> vptr (Interp.typed_obj st ~fn name)

(* Mirror of [Interp.init_value]: all index lookups (function names,
   macros, enum items, string macros, constant folding) happen here,
   once; only references to other globals stay runtime thunks, because
   they must observe — and trigger — lazy initialization in state
   order. *)
let rec compile_init (eng : t) (gi : Csrc.Ast.ginit) : Interp.state -> value =
  let fn = "__init" in
  match gi with
  | Csrc.Ast.Init_expr (Csrc.Ast.Ident name) -> (
      match Csrc.Index.find_function eng.index name with
      | Some _ ->
          let c = vfn name in
          fun _ -> c
      | None -> (
          match Csrc.Index.find_global eng.index name with
          | Some _ ->
              let name = intern name in
              let gh = Stbl.hash name in
              fun st -> (
                match get_global_h eng st gh name with Some v -> v | None -> vzero)
          | None -> (
              let c =
                match Csrc.Index.eval_macro eng.index name with
                | Some v -> vint v
                | None -> (
                    match Csrc.Index.find_enum_item eng.index name with
                    | Some e -> (
                        match Csrc.Index.eval_opt eng.index e with
                        | Some v -> vint v
                        | None -> vzero)
                    | None -> (
                        match Csrc.Index.string_macro eng.index name with
                        | Some s -> vstr s
                        | None -> vzero))
              in
              fun _ -> c)))
  | Csrc.Ast.Init_expr (Csrc.Ast.Addr_of (Csrc.Ast.Ident name)) -> (
      match Csrc.Index.find_global eng.index name with
      | Some _ ->
          let name = intern name in
          let gh = Stbl.hash name in
          fun st -> (match get_global_h eng st gh name with Some v -> v | None -> vzero)
      | None -> fun _ -> vzero)
  | Csrc.Ast.Init_expr e ->
      let c =
        match Csrc.Index.eval_opt eng.index e with
        | Some v -> vint v
        | None -> (
            match Csrc.Index.eval_string eng.index e with
            | Some s -> vstr s
            | None -> vzero)
      in
      fun _ -> c
  | Csrc.Ast.Init_designated fields ->
      let cfields =
        List.map
          (fun (f, gi) ->
            let f = intern f in
            (f, Stbl.hash f, compile_init eng gi))
          fields
      in
      fun st ->
        let o = Interp.fields_obj st ~fn () in
        List.iter (fun (f, fh, ci) -> Interp.set_field_h ~fn o fh f (ci st)) cfields;
        vptr o
  | Csrc.Ast.Init_list items ->
      let citems = List.map (compile_init eng) items in
      fun st ->
        vptr
          (Interp.new_obj st ~fn ~tracked:false
             (Cells (Array.of_list (List.map (fun ci -> ci st) citems))))

(* Mirror of [Interp.init_global]. The base shape is static, so the
   designated-initializer-in-place vs replace-the-binding decision is
   taken at compile time. *)
let compile_ginit (eng : t) (g : Csrc.Ast.global_def) : Interp.state -> value =
  let fn = "__init" in
  let name = g.Csrc.Ast.global_name in
  let base : Interp.state -> value =
    match g.Csrc.Ast.global_type with
    | Csrc.Ast.Struct_ref n | Csrc.Ast.Union_ref n ->
        fun st -> vptr (Interp.typed_obj st ~fn n)
    | Csrc.Ast.Array (elem, Some count) when count > 0 && count <= 4096 ->
        let cz = compile_zero eng ~fn elem in
        fun st ->
          vptr
            (Interp.new_obj st ~fn ~tracked:false
               (Cells (Array.init count (fun _ -> cz st))))
    | ty -> compile_zero eng ~fn ty
  in
  let finish st base_v =
    match Stbl.find_opt st.Interp.globals name with Some v -> v | None -> base_v
  in
  match g.Csrc.Ast.global_init with
  | None ->
      fun st ->
        let bv = base st in
        Stbl.replace st.Interp.globals name bv;
        finish st bv
  | Some gi ->
      let ptr_base =
        match g.Csrc.Ast.global_type with
        | Csrc.Ast.Struct_ref _ | Csrc.Ast.Union_ref _ -> true
        | Csrc.Ast.Array (_, Some c) when c > 0 && c <= 4096 -> true
        | Csrc.Ast.Array (elem, _) -> not (Interp.is_char_type eng.index elem)
        | _ -> false
      in
      (match (ptr_base, gi) with
      | true, Csrc.Ast.Init_designated fields ->
          let cfields =
            List.map
              (fun (f, gi) ->
                let f = intern f in
                (f, Stbl.hash f, compile_init eng gi))
              fields
          in
          fun st ->
            let bv = base st in
            (* publish before applying the initializer so
               cross-references resolve *)
            Stbl.replace st.Interp.globals name bv;
            (if not (is_imm bv) then
               match boxed bv with
               | B_ptr o ->
                   List.iter
                     (fun (f, fh, ci) -> Interp.set_field_h ~fn o fh f (ci st))
                     cfields
               | _ -> ());
            finish st bv
      | _ ->
          let cinit = compile_init eng gi in
          fun st ->
            let bv = base st in
            Stbl.replace st.Interp.globals name bv;
            Stbl.replace st.Interp.globals name (cinit st);
            finish st bv)

(* ------------------------------------------------------------------ *)
(* Function invocation                                                 *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Interp.call_function], including its depth accounting (no
   unwind-protect: an escaping exception leaves the depth bumped there
   too, and the two executors must drift identically). Parameter
   binding is one simultaneous walk: extra arguments are dropped,
   missing parameters read as zero. Frames come from the state's
   {!Value.Pool} and return to it on normal completion; a frame lost to
   an exception unwind is simply collected. *)
let rec exec_fun (st : Interp.state) (fc : fun_code) (argv : value list) : value =
  if st.Interp.depth > 64 then
    raise (Interp.Exec_error ("recursion too deep at " ^ fc.fc_name));
  st.Interp.depth <- st.Interp.depth + 1;
  let slots = Pool.acquire st.Interp.frames fc.fc_nslots in
  let params = fc.fc_params in
  let nparams = Array.length params in
  let rec bind i argv =
    if i < nparams then
      match argv with
      | [] ->
          slots.(params.(i)) <- vzero;
          bind (i + 1) []
      | a :: rest ->
          slots.(params.(i)) <- a;
          bind (i + 1) rest
  in
  bind 0 argv;
  exec_body st fc slots

and exec_body (st : Interp.state) (fc : fun_code) (slots : value array) : value =
  let env = { st; slots; fn = fc.fc_name } in
  let n = Array.length fc.fc_body in
  let rec run i =
    try
      for j = i to n - 1 do
        fc.fc_body.(j) env
      done;
      vunit
    with
    | Interp.Return_exc v -> v
    | Goto_idx j -> run j
  in
  let result = run 0 in
  st.Interp.depth <- st.Interp.depth - 1;
  Pool.release st.Interp.frames slots;
  result

(** Entry for compiled call sites: arguments evaluate (all of them,
    left to right, exactly as the list walk did) straight into the
    callee's slot array — no intermediate argument list. *)
and exec_fun_args (st : Interp.state) (fc : fun_code) (cargs : (jenv -> value) array)
    (caller : jenv) : value =
  let slots = Pool.acquire st.Interp.frames fc.fc_nslots in
  let params = fc.fc_params in
  let nparams = Array.length params in
  let ncargs = Array.length cargs in
  for k = 0 to ncargs - 1 do
    let v = cargs.(k) caller in
    if k < nparams then slots.(params.(k)) <- v
  done;
  for k = ncargs to nparams - 1 do
    slots.(params.(k)) <- vzero
  done;
  if st.Interp.depth > 64 then
    raise (Interp.Exec_error ("recursion too deep at " ^ fc.fc_name));
  st.Interp.depth <- st.Interp.depth + 1;
  exec_body st fc slots

(** Call a compiled function by name: the {!Interp.call} of this
    executor, with the same error on missing/bodyless functions. *)
let call (eng : t) (st : Interp.state) (fname : string) (argv : value list) : value =
  match Stbl.find_opt eng.funs fname with
  | Some fc -> exec_fun st fc argv
  | None -> raise (Interp.Exec_error ("no such function " ^ fname))

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec compile_expr (ctx : ctx) (e : Csrc.Ast.expr) : jenv -> value =
  match e with
  | Csrc.Ast.Const_int v ->
      let c = vint v in
      fun _ -> c
  | Csrc.Ast.Const_char ch ->
      let c = fix (Char.code ch) in
      fun _ -> c
  | Csrc.Ast.Const_str s ->
      let c = vstr s in
      fun _ -> c
  | Csrc.Ast.Ident name -> (
      (* local vs global vs constant is decided here; only "has the
         declaration run yet" (and lazy global init) stays runtime *)
      let i = slot_of ctx name in
      match List.find_opt (fun (j, _, _, _) -> j = i) ctx.cdefer with
      | Some (_, ib, k, cz) ->
          (* deferred declaration: the slot is unbound until the first
             read, which builds the zero object inside the oid range the
             declaration reserved — the oid stream is exactly the eager
             one, so nothing downstream can tell the difference *)
          fun env ->
            let s = env.slots.(i) in
            if s != unbound then s
            else begin
              let st = env.st in
              let saved = st.Interp.next_oid in
              st.Interp.next_oid <- imm env.slots.(ib);
              let v = cz st in
              assert (st.Interp.next_oid = imm env.slots.(ib) + k);
              st.Interp.next_oid <- saved;
              env.slots.(i) <- v;
              v
            end
      | None ->
      let eng = ctx.eng in
      if Csrc.Index.find_global eng.index name <> None then
        let name = intern name in
        let gh = Stbl.hash name in
        fun env ->
          let s = env.slots.(i) in
          if s != unbound then s
          else (match get_global_h eng env.st gh name with Some v -> v | None -> vzero)
      else
        let fallback =
          match Csrc.Index.ident_const eng.index name with
          | Csrc.Index.C_int v -> vint v
          | Csrc.Index.C_str s -> vstr s
          | Csrc.Index.C_none -> (
              match Csrc.Index.find_function eng.index name with
              | Some _ -> vfn name
              | None -> vzero)
        in
        fun env ->
          let s = env.slots.(i) in
          if s != unbound then s else fallback)
  | Csrc.Ast.Unop (op, a) -> (
      let ca = compile_expr ctx a in
      match op with
      | Csrc.Ast.Neg -> fun env -> vneg (ca env)
      | Csrc.Ast.Not -> fun env -> vbool (not (truthy (ca env)))
      | Csrc.Ast.Bit_not -> fun env -> vlognot (ca env))
  | Csrc.Ast.Binop (op, a, b) -> (
      match op with
      | Csrc.Ast.Land ->
          let ca = compile_expr ctx a and cb = compile_expr ctx b in
          fun env -> vbool (truthy (ca env) && truthy (cb env))
      | Csrc.Ast.Lor ->
          let ca = compile_expr ctx a and cb = compile_expr ctx b in
          fun env -> vbool (truthy (ca env) || truthy (cb env))
      | _ ->
          let ca = compile_expr ctx a and cb = compile_expr ctx b in
          fun env ->
            let va = ca env in
            let vb = cb env in
            Interp.binop_values ~fn:env.fn op va vb)
  | Csrc.Ast.Assign (lhs, rhs) ->
      let cr = compile_expr ctx rhs in
      let cs = compile_store ctx lhs in
      fun env ->
        let v = cr env in
        cs env v;
        v
  | Csrc.Ast.Call (name, args) -> compile_call ctx name args
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let ca = compile_expr ctx a in
      let f = intern f in
      let fh = Stbl.hash f in
      fun env ->
        let base = ca env in
        if is_imm base then Crash.raise_crash Crash.Gpf env.fn
        else
          match boxed base with
          | B_ptr o -> Interp.get_field_h ~fn:env.fn o fh f
          | B_uptr (U_struct (_, fields)) -> (
              match List.assoc_opt f fields with
              | Some uv -> Interp.value_of_uval env.st ~fn:env.fn uv
              | None -> vzero)
          | B_uptr U_null | B_i64 _ -> Crash.raise_crash Crash.Gpf env.fn
          | _ -> raise (Interp.Exec_error (Printf.sprintf "%s: bad field base for .%s" env.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let ci = compile_expr ctx i in
      let ca = compile_expr ctx a in
      fun env ->
        let idx = Int64.to_int (Interp.as_int (ci env)) in
        let base = ca env in
        if is_imm base then
          if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn else vzero
        else
          match boxed base with
          | B_ptr o -> (
              Interp.check_alive ~fn:env.fn o;
              match o.data with
              | Cells cells ->
                  if idx < 0 || idx >= Array.length cells then
                    Crash.raise_crash Crash.Ubsan_oob env.fn
                  else cells.(idx)
              | Fields _ | Typed _ | Opaque -> vzero)
          | B_str s ->
              if idx >= 0 && idx < String.length s then fix (Char.code s.[idx])
              else vzero
          | B_uptr (U_arr xs) -> (
              match List.nth_opt xs idx with
              | Some uv -> Interp.value_of_uval env.st ~fn:env.fn uv
              | None -> vzero)
          | _ -> vzero)
  | Csrc.Ast.Cast (_, a) -> compile_expr ctx a
  | Csrc.Ast.Sizeof_type ty ->
      let c = vint (Int64.of_int (Csrc.Index.sizeof ctx.eng.index ty)) in
      fun _ -> c
  | Csrc.Ast.Sizeof_expr _ -> fun _ -> vint 8L
  | Csrc.Ast.Ternary (c, t, f) ->
      let cc = compile_expr ctx c and ct = compile_expr ctx t and cf = compile_expr ctx f in
      fun env -> if truthy (cc env) then ct env else cf env
  | Csrc.Ast.Addr_of a ->
      (* &x evaluates x itself for every lvalue shape, like the
         interpreter *)
      compile_expr ctx a
  | Csrc.Ast.Deref a -> (
      let ca = compile_expr ctx a in
      fun env ->
        let v = ca env in
        (if is_imm v then (
           if imm v = 0 then Crash.raise_crash Crash.Gpf env.fn)
         else
           match boxed v with
           | B_ptr o -> Interp.check_alive ~fn:env.fn o
           | _ -> ());
        v)
  | Csrc.Ast.Type_arg ty ->
      let c = vint (Int64.of_int (Csrc.Index.sizeof ctx.eng.index ty)) in
      fun _ -> c

(* Mirror of [Interp.eval_lval] + [Interp.store], fused: the lvalue
   shape is static, so no intermediate [lvalue] value is built. The
   returned closure evaluates exactly what [eval_lval] would (index
   before base, same crashes), then performs the store. *)
and compile_store (ctx : ctx) (e : Csrc.Ast.expr) : jenv -> value -> unit =
  match e with
  | Csrc.Ast.Ident name ->
      let i = slot_of ctx name in
      if Csrc.Index.find_global ctx.eng.index name <> None then
        let eng = ctx.eng in
        let name = intern name in
        let gh = Stbl.hash name in
        fun env v ->
          if env.slots.(i) != unbound then env.slots.(i) <- v
          else begin
            (* the interpreter's lvalue probe forces the global's lazy
               initialization (and its object allocations) before the
               store overwrites the binding — keep that order *)
            ignore (get_global_h eng env.st gh name);
            Stbl.replace_h env.st.Interp.globals gh name v
          end
      else fun env v -> env.slots.(i) <- v
  | Csrc.Ast.Member (a, f) | Csrc.Ast.Arrow (a, f) -> (
      let ca = compile_expr ctx a in
      let f = intern f in
      let fh = Stbl.hash f in
      fun env v ->
        let base = ca env in
        if is_imm base then Crash.raise_crash Crash.Gpf env.fn
        else
          match boxed base with
          | B_ptr o ->
              Interp.check_alive ~fn:env.fn o;
              Interp.set_field_h ~fn:env.fn o fh f v
          | B_i64 _ -> Crash.raise_crash Crash.Gpf env.fn
          | _ -> raise (Interp.Exec_error (Printf.sprintf "%s: bad lvalue base for .%s" env.fn f)))
  | Csrc.Ast.Index (a, i) -> (
      let ci = compile_expr ctx i in
      let ca = compile_expr ctx a in
      fun env v ->
        let idx = Int64.to_int (Interp.as_int (ci env)) in
        let base = ca env in
        if is_imm base then
          if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn
          else raise (Interp.Exec_error (env.fn ^ ": bad array lvalue"))
        else
          match boxed base with
          | B_ptr o -> (
              Interp.check_alive ~fn:env.fn o;
              match o.data with
              | Cells cells ->
                  if idx < 0 || idx >= Array.length cells then
                    Crash.raise_crash Crash.Ubsan_oob env.fn
                  else cells.(idx) <- v
              | Fields _ | Typed _ | Opaque ->
                  Interp.set_field ~fn:env.fn o (Printf.sprintf "__idx%d" idx) v)
          | _ -> raise (Interp.Exec_error (env.fn ^ ": bad array lvalue")))
  | Csrc.Ast.Deref a -> (
      let ca = compile_expr ctx a in
      fun env v ->
        let base = ca env in
        if is_imm base then
          if imm base = 0 then Crash.raise_crash Crash.Gpf env.fn
          else raise (Interp.Exec_error (env.fn ^ ": bad deref lvalue"))
        else
          match boxed base with
          | B_ptr o ->
              Interp.check_alive ~fn:env.fn o;
              Interp.set_field ~fn:env.fn o "__deref" v
          | _ -> raise (Interp.Exec_error (env.fn ^ ": bad deref lvalue")))
  | Csrc.Ast.Cast (_, a) -> compile_store ctx a
  | _ -> fun env _ -> raise (Interp.Exec_error (env.fn ^ ": expression is not an lvalue"))

and compile_call (ctx : ctx) (name : string) (args : Csrc.Ast.expr list) : jenv -> value =
  let eng = ctx.eng in
  (* the user-function decision is stable: the index is frozen after
     boot, so resolve it once per call site (the compiled code is
     fetched lazily because the callee may not be compiled yet) *)
  let user_path : (jenv -> value) option =
    match Csrc.Index.find_function eng.index name with
    | Some fd when fd.Csrc.Ast.fun_body <> [] ->
        let cargs = Array.of_list (List.map (compile_expr ctx) args) in
        let fc_cell = ref None in
        Some
          (fun env ->
            let fc =
              match !fc_cell with
              | Some fc -> fc
              | None ->
                  let fc = Stbl.find eng.funs name in
                  fc_cell := Some fc;
                  fc
            in
            exec_fun_args env.st fc cargs env)
    | Some _ | None -> None
  in
  match Stbl.find_opt Interp.builtin_ids name with
  | Some bid -> begin
    (* builtins see their arguments through {!Interp.builtin_ctx}: one
       pre-compiled closure per argument / lvalue argument, evaluated
       only when the builtin asks, in the same order as the tree
       walker *)
    let n = List.length args in
    let cargs = Array.of_list (List.map (compile_expr ctx) args) in
    let cstores = Array.of_list (List.map (compile_store ctx) args) in
    let csstores =
      Array.of_list
        (List.map
           (fun a ->
             let rec strip = function
               | Csrc.Ast.Cast (_, e) -> strip e
               | Csrc.Ast.Addr_of e -> Some e
               | _ -> None
             in
             match strip a with
             | Some inner -> Some (compile_store ctx inner)
             | None -> None)
           args)
    in
    let fops =
      let rec find = function
        | Csrc.Ast.Addr_of (Csrc.Ast.Ident g) -> Some g
        | Csrc.Ast.Cast (_, e) -> find e
        | _ -> None
      in
      List.find_map find args
    in
    let io_const =
      match Csrc.Index.eval_opt eng.index (Csrc.Ast.Call (name, args)) with
      | Some v -> vint v
      | None -> vzero
    in
    (* constant-returning builtins never consult their context (the
       tree walker's lazy callbacks mean it never evaluates their
       arguments either), so the whole call compiles to its constant *)
    match name with
    | "schedule_timeout" | "msleep" | "printk" | "pr_info" | "pr_err" | "pr_warn"
    | "noop_llseek" | "nonseekable_open" | "stream_open" | "get_user" | "put_user"
    | "misc_register" | "misc_deregister" | "register_chrdev" | "unregister_chrdev"
    | "cdev_init" | "cdev_add" | "device_create" | "class_create" | "sock_register"
    | "proto_register" ->
        fun _ -> vzero
    | "capable" -> fun _ -> vone
    | "_IO" | "_IOR" | "_IOW" | "_IOWR" | "_IOC" -> fun _ -> io_const
    | _ ->
        (* one context record per call site, not per execution: the
           closures reach the live frame through [cell], which the
           invocation wrapper saves/restores (re-entry through a
           recursive user callee must see its own frame, and an
           escaping crash/timeout must not leave a stale one) *)
        let cell = { ccur = eng.dummy_env } in
        let b : Interp.builtin_ctx =
          {
            Interp.bn = n;
            bv =
              (fun i ->
                if i < n then (
                  let x = cargs.(i) cell.ccur in
                  if is_imm x then x
                  else match boxed x with B_uptr (U_str s) -> vstr s | _ -> x)
                else vzero);
            braw = (fun i -> if i < n then cargs.(i) cell.ccur else vzero);
            bstore =
              (fun i sv ->
                i < n
                &&
                try
                  cstores.(i) cell.ccur sv;
                  true
                with Interp.Exec_error _ -> false);
            bsstore =
              (fun i sv ->
                i < n
                &&
                match csstores.(i) with
                | Some cs -> (
                    try
                      cs cell.ccur sv;
                      true
                    with Interp.Exec_error _ -> false)
                | None -> false);
            bfops = (fun () -> fops);
            bio = (fun () -> io_const);
          }
        in
        let invoke env =
          let saved = cell.ccur in
          cell.ccur <- env;
          match Interp.builtin_values_id env.st ~fn:env.fn bid name b with
          | r ->
              cell.ccur <- saved;
              r
          | exception e ->
              cell.ccur <- saved;
              raise e
        in
        (match user_path with
        | Some up ->
            fun env -> (
              match invoke env with
              | Some v -> v
              | None -> up env)
        | None ->
            fun env -> (
              match invoke env with
              | Some v -> v
              | None -> vzero))
    end
  | None -> ( match user_path with Some up -> up | None -> fun _ -> vzero)

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

and compile_stmt (ctx : ctx) (s : Csrc.Ast.stmt) : jenv -> unit =
  let sid = s.Csrc.Ast.sid in
  let node = compile_node ctx s.Csrc.Ast.node in
  (* step accounting inlined: this wrapper runs once per executed guest
     statement, the hottest closure in the engine *)
  fun env ->
    let st = env.st in
    st.Interp.steps <- st.Interp.steps + 1;
    if st.Interp.steps > st.Interp.step_budget then raise Interp.Exec_timeout;
    st.Interp.on_cover sid;
    node env

and compile_node (ctx : ctx) (node : Csrc.Ast.stmt_node) : jenv -> unit =
  match node with
  | Csrc.Ast.Expr_stmt e ->
      let ce = compile_expr ctx e in
      fun env -> ignore (ce env)
  | Csrc.Ast.Decl_stmt (ty, name, init) -> (
      let fresh = Stbl.find_opt ctx.cslots name = None in
      let i = slot_of ctx name in
      match init with
      | Some e ->
          let ce = compile_expr ctx e in
          fun env -> env.slots.(i) <- ce env
      | None ->
          let cz = compile_zero ctx.eng ~fn:ctx.cfn ty in
          (* Composite locals are expensive to zero (an object per
             struct, per nested array, per nested struct), and ioctl
             handlers habitually declare one scratch struct per command
             up front while each execution touches at most one. When the
             declaration provably dominates every mention of the name —
             it is a top-level statement, the function has no labels (so
             no goto can bypass it), the name was never mentioned before
             it, and it shadows no global — construction can wait for
             the first read. The declaration still reserves the exact
             oid range eager zeroing would have consumed (the count is
             static per type, measured once here on a scratch state), so
             the object-id stream — observable through pointer rendering
             and leak-bitmap sizing — is byte-identical to eager
             execution, and the tree-walking engine needs no mirror. *)
          let deferrable =
            fresh && ctx.ctop
            && ctx.clabels = []
            && Csrc.Index.find_global ctx.eng.index name = None
          in
          let k =
            if deferrable then (
              let scratch = ctx.eng.dummy_env.st in
              let before = scratch.Interp.next_oid in
              ignore (cz scratch);
              scratch.Interp.next_oid - before)
            else 0
          in
          if k > 0 then begin
            let ib = slot_of ctx ("\000defer." ^ name) in
            ctx.cdefer <- (i, ib, k, cz) :: ctx.cdefer;
            fun env ->
              let st = env.st in
              env.slots.(ib) <- fix st.Interp.next_oid;
              st.Interp.next_oid <- st.Interp.next_oid + k
          end
          else fun env -> env.slots.(i) <- cz env.st)
  | Csrc.Ast.If (c, t, f) -> (
      let cc = compile_expr ctx c in
      let ct = compile_block ctx t in
      match f with
      | Some f ->
          let cf = compile_block ctx f in
          fun env -> if truthy (cc env) then ct env else cf env
      | None -> fun env -> if truthy (cc env) then ct env)
  | Csrc.Ast.Switch (scrut, cases) ->
      let cscrut = compile_expr ctx scrut in
      let cbodies =
        Array.of_list (List.map (fun c -> compile_block ctx c.Csrc.Ast.case_body) cases)
      in
      let default_idx =
        let rec find i = function
          | [] -> None
          | c :: rest ->
              if List.mem Csrc.Ast.Default c.Csrc.Ast.labels then Some i
              else find (i + 1) rest
        in
        find 0 cases
      in
      let ncases = Array.length cbodies in
      (* case labels are C constant expressions; when the index folds
         every one the dispatch becomes a scan of a static int64 table
         instead of a per-execution closure evaluation per label *)
      let static_labels =
        let exception Dynamic in
        try
          Some
            (Array.of_list
               (List.map
                  (fun c ->
                    Array.of_list
                      (List.filter_map
                         (function
                           | Csrc.Ast.Case e -> (
                               match Csrc.Index.eval_opt ctx.eng.index e with
                               | Some v -> Some v
                               | None -> raise Dynamic)
                           | Csrc.Ast.Default -> None)
                         c.Csrc.Ast.labels))
                  cases))
        with Dynamic -> None
      in
      let run_from start env =
        match start with
        | None -> ()
        | Some i -> (
            try
              for j = i to ncases - 1 do
                cbodies.(j) env
              done
            with Interp.Break_exc -> ())
      in
      (match static_labels with
      | Some slabels ->
          fun env ->
            let key = Interp.as_int (cscrut env) in
            let start =
              let rec find i =
                if i >= ncases then default_idx
                else if Array.exists (Int64.equal key) slabels.(i) then Some i
                else find (i + 1)
              in
              find 0
            in
            run_from start env
      | None ->
          let clabels =
            Array.of_list
              (List.map
                 (fun c ->
                   List.filter_map
                     (function
                       | Csrc.Ast.Case e -> Some (compile_expr ctx e)
                       | Csrc.Ast.Default -> None)
                     c.Csrc.Ast.labels)
                 cases)
          in
          fun env ->
            let key = Interp.as_int (cscrut env) in
            let start =
              let rec find i =
                if i >= ncases then default_idx
                else if
                  List.exists
                    (fun ce -> Int64.equal (Interp.as_int (ce env)) key)
                    clabels.(i)
                then Some i
                else find (i + 1)
              in
              find 0
            in
            run_from start env)
  | Csrc.Ast.While (c, body) ->
      let cc = compile_expr ctx c in
      let cb = compile_block ctx body in
      fun env -> (
        try
          while truthy (cc env) do
            Interp.step_state env.st;
            try cb env with Interp.Continue_exc -> ()
          done
        with Interp.Break_exc -> ())
  | Csrc.Ast.Do_while (body, c) ->
      let cb = compile_block ctx body in
      let cc = compile_expr ctx c in
      fun env -> (
        try
          let continue_loop = ref true in
          while !continue_loop do
            Interp.step_state env.st;
            (try cb env with Interp.Continue_exc -> ());
            continue_loop := truthy (cc env)
          done
        with Interp.Break_exc -> ())
  | Csrc.Ast.For (init, cond, upd, body) ->
      let cinit = Option.map (compile_expr ctx) init in
      let ccond = Option.map (compile_expr ctx) cond in
      let cupd = Option.map (compile_expr ctx) upd in
      let cb = compile_block ctx body in
      fun env ->
        (match cinit with Some c -> ignore (c env) | None -> ());
        (try
           let check () = match ccond with Some c -> truthy (c env) | None -> true in
           while check () do
             Interp.step_state env.st;
             (try cb env with Interp.Continue_exc -> ());
             match cupd with Some u -> ignore (u env) | None -> ()
           done
         with Interp.Break_exc -> ())
  | Csrc.Ast.Return e -> (
      match e with
      | Some e ->
          let ce = compile_expr ctx e in
          fun env -> raise (Interp.Return_exc (ce env))
      | None -> fun _ -> raise (Interp.Return_exc vunit))
  | Csrc.Ast.Break -> fun _ -> raise Interp.Break_exc
  | Csrc.Ast.Continue -> fun _ -> raise Interp.Continue_exc
  | Csrc.Ast.Goto l -> (
      (* resolved against the top-level label table at compile time;
         unknown labels keep the interpreter's exact error *)
      match List.assoc_opt l ctx.clabels with
      | Some j ->
          let exn = Goto_idx j in
          fun _ -> raise exn
      | None ->
          let exn =
            Interp.Exec_error (Printf.sprintf "%s: unknown label %s" ctx.cfn l)
          in
          fun _ -> raise exn)
  | Csrc.Ast.Label _ -> fun _ -> ()
  | Csrc.Ast.Block b -> compile_block ctx b

and compile_block (ctx : ctx) (b : Csrc.Ast.block) : jenv -> unit =
  (* children of any nested block are not "top of the function body":
     declarations inside them don't qualify for deferral *)
  let saved = ctx.ctop in
  ctx.ctop <- false;
  let r =
    match b with
    | [] -> fun _ -> ()
    | [ s ] -> compile_stmt ctx s
    | _ ->
        let arr = Array.of_list (List.map (compile_stmt ctx) b) in
        fun env -> Array.iter (fun f -> f env) arr
  in
  ctx.ctop <- saved;
  r

(* ------------------------------------------------------------------ *)
(* Whole-index compilation                                             *)
(* ------------------------------------------------------------------ *)

let compile_fun (eng : t) (name : string) (fd : Csrc.Ast.func_def) : fun_code =
  let labels =
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) (s : Csrc.Ast.stmt) ->
              match s.Csrc.Ast.node with
              | Csrc.Ast.Label l when not (List.mem_assoc l acc) -> (i + 1, (l, i) :: acc)
              | _ -> (i + 1, acc))
            (0, []) fd.Csrc.Ast.fun_body))
  in
  let ctx =
    {
      eng;
      cfn = name;
      clabels = labels;
      cslots = Stbl.create 16;
      cnslots = 0;
      ctop = true;
      cdefer = [];
    }
  in
  let params = Array.of_list (List.map (fun (_, p) -> slot_of ctx p) fd.Csrc.Ast.fun_params) in
  let body = Array.of_list (List.map (compile_stmt ctx) fd.Csrc.Ast.fun_body) in
  { fc_name = name; fc_nslots = ctx.cnslots; fc_params = params; fc_body = body }

(** Compile every global initializer and every function with a body,
    once. The index is frozen after {!Machine.boot}, so both tables are
    read-only afterwards. *)
let of_index (index : Csrc.Index.t) : t =
  let dummy_env =
    { st = Interp.create ~index (); slots = [||]; fn = "__never_run" }
  in
  let eng = { index; funs = Stbl.create 256; ginits = Stbl.create 256; dummy_env } in
  Hashtbl.iter
    (fun name g -> Stbl.replace eng.ginits name (compile_ginit eng g))
    index.Csrc.Index.globals;
  Hashtbl.iter
    (fun name (fd : Csrc.Ast.func_def) ->
      if fd.Csrc.Ast.fun_body <> [] then Stbl.replace eng.funs name (compile_fun eng name fd))
    index.Csrc.Index.functions;
  eng
