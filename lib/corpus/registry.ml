(** The assembled synthetic kernel.

    Hand-modeled drivers and sockets (high fidelity, carrying the Table 4
    bugs and the Table 5/6 rows) plus the procedurally generated long
    tail, scaled to the paper's §5.1 population: 666 driver and 85 socket
    operation handlers scanned under allyesconfig, of which 278 drivers
    and 81 sockets are loaded under the syzbot configuration. *)

let hand_drivers : Types.entry list =
  [
    Drv_dm.entry;
    Drv_cec.entry;
    Drv_btrfs.entry;
    Drv_ubi.entry;
    Drv_posix_clock.entry;
    Drv_dvb.demux_entry;
    Drv_dvb.dvr_entry;
    Drv_vgadget.entry;
  ]
  @ Drv_virt.entries @ Drv_block.entries @ Drv_char.entries @ Drv_misc.entries
  @ Drv_sound.entries

let hand_sockets : Types.entry list = Sock_rds.entry :: (Sock_net.entries @ Sock_link.entries)

(* Paper population targets (§5.1). *)
let total_drivers = 666
let total_sockets = 85
let loaded_drivers = 278
let loaded_sockets = 81

let generated : Types.entry list Lazy.t =
  lazy
    (let nh_drv = List.length hand_drivers in
     let nh_sock = List.length hand_sockets in
     Gen.population ~seed:7
       ~n_drivers:(total_drivers - nh_drv)
       ~loaded_drivers:(loaded_drivers - nh_drv)
       ~n_sockets:(total_sockets - nh_sock)
       ~loaded_sockets:(loaded_sockets - nh_sock)
       ())

(** Every handler in the corpus (hand-written first). *)
let all : Types.entry list Lazy.t =
  lazy (hand_drivers @ hand_sockets @ Lazy.force generated)

let loaded () = List.filter (fun (e : Types.entry) -> e.loaded) (Lazy.force all)

let drivers () = List.filter (fun (e : Types.entry) -> e.kind = Types.Driver) (Lazy.force all)

let sockets () = List.filter (fun (e : Types.entry) -> e.kind = Types.Socket) (Lazy.force all)

(** Off-population extras: modules that exist for the executor's
    engine-differential stress tests. Deliberately NOT part of {!all}
    (or any population/table selector): the §5.1 population counts and
    every seeded campaign schedule stay byte-identical to a tree
    without them. Reachable only by name through {!find}. *)
let extras : Types.entry list = [ Drv_stress.entry ]

let find name =
  match List.find_opt (fun (e : Types.entry) -> e.name = name) (Lazy.force all) with
  | Some e -> Some e
  | None -> List.find_opt (fun (e : Types.entry) -> e.name = name) extras

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: no module %s" name)

let table5 () = List.filter (fun (e : Types.entry) -> e.in_table5) (Lazy.force all)

let table6 () = List.filter (fun (e : Types.entry) -> e.in_table6) (Lazy.force all)

(** Table 4: the injected bugs, their modules and CVE status. *)
let bugs : Types.bug list =
  let b ?cve ?(confirmed = true) ?(fixed = false) bug_title bug_module =
    { Types.bug_title; bug_cve = cve; bug_module; bug_confirmed = confirmed; bug_fixed = fixed }
  in
  [
    b "kmalloc bug in ctl_ioctl" "dm" ~cve:"CVE-2024-23851" ~fixed:true;
    b "kmalloc bug in dm_table_create" "dm" ~cve:"CVE-2023-52429" ~fixed:true;
    b "KASAN: slab-use-after-free Read in cec_queue_msg_fh" "cec" ~cve:"CVE-2024-23848" ~fixed:true;
    b "ODEBUG bug in cec_transmit_msg_fh" "cec" ~fixed:true;
    b "WARNING in cec_data_cancel" "cec" ~fixed:true;
    b "INFO: task hung in cec_claim_log_addrs" "cec";
    b "general protection fault in cec_transmit_done_ts" "cec" ~fixed:true;
    b "kernel BUG in btrfs_get_root_ref" "btrfs_control" ~cve:"CVE-2024-23850" ~fixed:true;
    b "general protection fault in btrfs_update_reloc_root" "btrfs_control";
    b "zero-size vmalloc in ubi_read_volume_table" "ubi" ~cve:"CVE-2024-25739" ~fixed:true;
    b "UBSAN: array-index-out-of-bounds in rds_cmsg_recv" "rds" ~cve:"CVE-2024-23849" ~fixed:true;
    b "memory leak in ubi_attach" "ubi" ~cve:"CVE-2024-25740";
    b "memory leak in posix_clock_open" "posix_clock" ~cve:"CVE-2024-26655" ~fixed:true;
    b "memory leak in ip6_append_data" "l2tp_ip6";
    b "possible deadlock in dvb_demux_release" "dvb_demux" ~confirmed:false;
    b "INFO: task hung in __rq_qos_throttle" "nbd" ~confirmed:false;
    b "WARNING in usb_ep_queue" "vgadget" ~cve:"CVE-2024-25741";
    b "memory leak in dvb_dmxdev_add_pid" "dvb_demux";
    b "memory leak in dvb_dvr_do_ioctl" "dvb_dvr" ~confirmed:false;
    b "general protection fault in dvb_vb2_expbuf" "dvb_demux" ~cve:"CVE-2024-50291" ~fixed:true;
    b "general protection fault in cleanup_mapped_device" "dm" ~cve:"CVE-2024-50277" ~fixed:true;
    b "WARNING in vb2_core_reqbufs" "vgadget";
    b "BUG: corrupted list in vep_queue" "vgadget";
    b "divide error in uvc_queue_setup" "vgadget";
  ]

(** The first ten valid Table 5 drivers, as used by the §5.2.3 ablations. *)
let ablation_drivers () =
  let order =
    [ "btrfs_control"; "capi20"; "snd_control"; "fuse"; "hpet"; "i2c"; "kvm"; "loop_control";
      "loop"; "misdn_timer" ]
  in
  List.filter_map find order
