(** Procedural long-tail population.

    The paper scans 666 driver and 85 socket operation handlers under
    allyesconfig (§5.1). A couple of dozen of those are hand-modeled in
    this corpus; this module synthesizes the remainder with the same
    registration and dispatch idioms, deterministically from a seed:

    - registration: misc [.name] (common), misc [.nodename] (rare),
      cdev + [device_create] in the module init function;
    - dispatch: direct [switch(cmd)], delegation through 1-2 helper
      functions, or the [_IOC_NR(cmd)] rewrite;
    - argument structs with scalar fields, byte arrays, length fields
      tied to arrays, and occasional nested structs;
    - an "existing" hand-written Syzkaller spec covering all, some, or
      none of the commands (driving Table 1's "# Incomplete" and
      Figure 7's missing-percentage histogram). *)

(* Deterministic splitmix-style PRNG so the corpus is reproducible. *)
type rng = { mutable state : int64 }

let rng_make seed = { state = Int64.of_int (seed * 2654435761 + 1) }

let rng_next r =
  let z = Int64.add r.state 0x9E3779B97F4A7C15L in
  r.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int r n =
  if n <= 0 then 0 else Int64.to_int (Int64.rem (Int64.logand (rng_next r) 0x7fffffffL) (Int64.of_int n))

let rand_bool r pct = rand_int r 100 < pct

let pick r xs =
  if xs = [] then invalid_arg "Gen.pick: empty list"
  else List.nth xs (rand_int r (List.length xs))

(* ------------------------------------------------------------------ *)
(* Shapes                                                              *)
(* ------------------------------------------------------------------ *)

type field_shape =
  | F_scalar of string * int  (** name, width in bits *)
  | F_bytes of string * int  (** name, byte-array length *)
  | F_len_of of string * string  (** count field tied to an array field *)
  | F_array32 of string * int

type cmd_shape = {
  cmd_name : string;
  cmd_nr : int;
  cmd_dir : Syzlang.Ast.dir;
  cmd_struct : (string * field_shape list) option;  (** struct name + fields *)
  cmd_guard : int option;  (** scalar validity bound enforced by the body *)
}

type registration = Reg_misc_name | Reg_misc_nodename | Reg_cdev_init

type dispatch = Disp_direct | Disp_delegated | Disp_ioc_nr

type driver_shape = {
  ds_name : string;
  ds_dev : string;
  ds_magic : char;
  ds_reg : registration;
  ds_disp : dispatch;
  ds_cmds : cmd_shape list;
}

let field_names = [ "flags"; "mode"; "index"; "value"; "offset"; "state"; "mask"; "level" ]
let buf_names = [ "name"; "data"; "label"; "payload" ]

let gen_fields r prefix : field_shape list =
  let n = 2 + rand_int r 5 in
  let fields = ref [] in
  for i = 0 to n - 1 do
    let base = pick r field_names in
    let fname = Printf.sprintf "%s_%s%d" prefix base i in
    let shape =
      match rand_int r 10 with
      | 0 | 1 ->
          let buf = Printf.sprintf "%s_%s%d" prefix (pick r buf_names) i in
          F_bytes (buf, 8 * (1 + rand_int r 8))
      | 2 ->
          let arr = Printf.sprintf "%s_items%d" prefix i in
          F_array32 (arr, 2 + rand_int r 6)
      | _ -> F_scalar (fname, pick r [ 8; 16; 32; 32; 32; 64 ])
    in
    fields := shape :: !fields
  done;
  let fields = List.rev !fields in
  (* tie a count field to the first wide array, if any — the len[]
     relation the paper's Figure 5 highlights *)
  match List.find_map (function F_array32 (a, _) -> Some a | _ -> None) fields with
  | Some arr when rand_bool r 60 -> F_len_of (prefix ^ "_count", arr) :: fields
  | _ -> fields

let gen_driver_shape ~(index : int) (r : rng) : driver_shape =
  let ds_name = Printf.sprintf "gdrv%03d" index in
  let ds_dev = Printf.sprintf "g%03d" index in
  let ds_magic = Char.chr (Char.code 'A' + (index mod 26)) in
  let ds_reg =
    match rand_int r 100 with
    | x when x < 70 -> Reg_misc_name
    | x when x < 84 -> Reg_misc_nodename
    | _ -> Reg_cdev_init
  in
  let ds_disp =
    match rand_int r 100 with
    | x when x < 58 -> Disp_direct
    | x when x < 84 -> Disp_delegated
    | _ -> Disp_ioc_nr
  in
  let ncmds = 1 + rand_int r 12 in
  let cmds =
    List.init ncmds (fun i ->
        let cmd_name = Printf.sprintf "G%03d_CMD_%d" index i in
        let with_struct = rand_bool r 55 in
        let cmd_struct =
          if with_struct then
            let sname = Printf.sprintf "g%03d_arg%d" index i in
            Some (sname, gen_fields r (Printf.sprintf "f%d" i))
          else None
        in
        let cmd_dir =
          if not with_struct then Syzlang.Ast.In
          else pick r [ Syzlang.Ast.In; Syzlang.Ast.In; Syzlang.Ast.Inout; Syzlang.Ast.Out ]
        in
        {
          cmd_name;
          cmd_nr = i + 1;
          cmd_dir;
          cmd_struct;
          cmd_guard = (if rand_bool r 70 then Some (4 + rand_int r 60) else None);
        })
  in
  { ds_name; ds_dev; ds_magic; ds_reg; ds_disp; ds_cmds = cmds }

(* ------------------------------------------------------------------ *)
(* Mini-C emission                                                     *)
(* ------------------------------------------------------------------ *)

let field_c = function
  | F_scalar (n, w) -> Printf.sprintf "  u%d %s;" w n
  | F_bytes (n, len) -> Printf.sprintf "  char %s[%d];" n len
  | F_len_of (n, target) -> Printf.sprintf "  u32 %s; /* number of entries in %s */" n target
  | F_array32 (n, len) -> Printf.sprintf "  u32 %s[%d];" n len

let struct_c (sname, fields) =
  String.concat "\n"
    ((Printf.sprintf "struct %s {" sname :: List.map field_c fields) @ [ "};" ])

let first_scalar fields =
  List.find_map (function F_scalar (n, _) -> Some n | F_len_of (n, _) -> Some n | _ -> None) fields

(** Body of one command handler: a guard or two plus state updates, so
    that correct arguments reach strictly more statements. *)
let cmd_body ds (c : cmd_shape) : string list =
  let state = Printf.sprintf "_%s_state" ds.ds_name in
  match c.cmd_struct with
  | None ->
      let guard =
        match c.cmd_guard with
        | Some g -> [ Printf.sprintf "    if (arg > %d)" (g * 16); "      return -EINVAL;" ]
        | None -> []
      in
      guard
      @ [
          Printf.sprintf "    %s = %s + 1;" state state;
          "    return 0;";
        ]
  | Some (sname, fields) ->
      let var = "req" ^ string_of_int c.cmd_nr in
      let copy =
        [
          Printf.sprintf "    if (copy_from_user(&%s, (void *)arg, sizeof(struct %s)))" var sname;
          "      return -EFAULT;";
        ]
      in
      let guard =
        match (c.cmd_guard, first_scalar fields) with
        | Some g, Some f ->
            [
              Printf.sprintf "    if (%s.%s > %d)" var f g;
              "      return -EINVAL;";
            ]
        | _ -> []
      in
      let len_check =
        List.filter_map
          (function
            | F_len_of (n, _) ->
                Some
                  (Printf.sprintf "    if (%s.%s > 64)\n      return -EMSGSIZE;" var n)
            | _ -> None)
          fields
      in
      copy @ guard @ len_check
      @ [
          Printf.sprintf "    %s = %s + 2;" state state;
          "    return 0;";
        ]

let driver_source (ds : driver_shape) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "#define %s_MAGIC '%c'" (String.uppercase_ascii ds.ds_name) ds.ds_magic;
  List.iter
    (fun c ->
      let io =
        match (c.cmd_struct, c.cmd_dir) with
        | None, _ -> Printf.sprintf "_IO(%s_MAGIC, %d)" (String.uppercase_ascii ds.ds_name) c.cmd_nr
        | Some (s, _), Syzlang.Ast.In ->
            Printf.sprintf "_IOW(%s_MAGIC, %d, struct %s)" (String.uppercase_ascii ds.ds_name) c.cmd_nr s
        | Some (s, _), Syzlang.Ast.Out ->
            Printf.sprintf "_IOR(%s_MAGIC, %d, struct %s)" (String.uppercase_ascii ds.ds_name) c.cmd_nr s
        | Some (s, _), Syzlang.Ast.Inout ->
            Printf.sprintf "_IOWR(%s_MAGIC, %d, struct %s)" (String.uppercase_ascii ds.ds_name) c.cmd_nr s
      in
      add "#define %s %s" c.cmd_name io)
    ds.ds_cmds;
  add "";
  List.iter (fun c -> match c.cmd_struct with Some s -> add "%s\n" (struct_c s) | None -> ()) ds.ds_cmds;
  add "static u32 _%s_state;" ds.ds_name;
  add "";
  (* declarations of locals for struct commands *)
  let locals =
    List.filter_map
      (fun c ->
        match c.cmd_struct with
        | Some (sname, _) -> Some (Printf.sprintf "  struct %s req%d;" sname c.cmd_nr)
        | None -> None)
      ds.ds_cmds
  in
  let case_label c =
    match ds.ds_disp with
    | Disp_ioc_nr -> string_of_int c.cmd_nr
    | Disp_direct | Disp_delegated -> c.cmd_name
  in
  let switch_body =
    List.concat_map
      (fun c -> Printf.sprintf "  case %s:" (case_label c) :: cmd_body ds c)
      ds.ds_cmds
    @ [ "  default:"; "    return -ENOTTY;" ]
  in
  (match ds.ds_disp with
  | Disp_direct ->
      add "static long %s_ioctl(struct file *file, unsigned int cmd, unsigned long arg)" ds.ds_name;
      add "{";
      List.iter (fun l -> add "%s" l) locals;
      add "  switch (cmd) {";
      List.iter (fun l -> add "%s" l) switch_body;
      add "  }";
      add "}"
  | Disp_delegated ->
      add "static long %s_do_ioctl(struct file *file, unsigned int cmd, unsigned long arg)" ds.ds_name;
      add "{";
      List.iter (fun l -> add "%s" l) locals;
      add "  switch (cmd) {";
      List.iter (fun l -> add "%s" l) switch_body;
      add "  }";
      add "}";
      add "";
      add "static long %s_ioctl(struct file *file, unsigned int cmd, unsigned long arg)" ds.ds_name;
      add "{";
      add "  return %s_do_ioctl(file, cmd, arg);" ds.ds_name;
      add "}"
  | Disp_ioc_nr ->
      add "static long %s_cmd_ioctl(struct file *file, unsigned int nr, unsigned long arg)" ds.ds_name;
      add "{";
      List.iter (fun l -> add "%s" l) locals;
      add "  switch (nr) {";
      List.iter (fun l -> add "%s" l) switch_body;
      add "  }";
      add "}";
      add "";
      add "static long %s_ioctl(struct file *file, unsigned int cmd, unsigned long arg)" ds.ds_name;
      add "{";
      add "  unsigned int nr;";
      add "  if (_IOC_TYPE(cmd) != %s_MAGIC)" (String.uppercase_ascii ds.ds_name);
      add "    return -ENOTTY;";
      add "  nr = _IOC_NR(cmd);";
      add "  return %s_cmd_ioctl(file, nr, arg);" ds.ds_name;
      add "}");
  add "";
  add "static int %s_open(struct inode *inode, struct file *file)" ds.ds_name;
  add "{";
  add "  _%s_state = 0;" ds.ds_name;
  add "  return 0;";
  add "}";
  add "";
  add "static const struct file_operations %s_fops = {" ds.ds_name;
  add "  .open = %s_open," ds.ds_name;
  add "  .unlocked_ioctl = %s_ioctl," ds.ds_name;
  add "  .owner = THIS_MODULE,";
  add "  .llseek = noop_llseek,";
  add "};";
  add "";
  (match ds.ds_reg with
  | Reg_misc_name ->
      add "static struct miscdevice %s_misc = {" ds.ds_name;
      add "  .minor = %d," (100 + (Hashtbl.hash ds.ds_name mod 100));
      add "  .name = \"%s\"," ds.ds_dev;
      add "  .fops = &%s_fops," ds.ds_name;
      add "};"
  | Reg_misc_nodename ->
      add "static struct miscdevice %s_misc = {" ds.ds_name;
      add "  .minor = %d," (100 + (Hashtbl.hash ds.ds_name mod 100));
      add "  .name = \"%s_legacy\"," ds.ds_name;
      add "  .nodename = \"%s/%s\"," ds.ds_name ds.ds_dev;
      add "  .fops = &%s_fops," ds.ds_name;
      add "};"
  | Reg_cdev_init ->
      add "static int %s_init(void)" ds.ds_name;
      add "{";
      add "  cdev_init(0, &%s_fops);" ds.ds_name;
      add "  cdev_add(0, 0, 1);";
      add "  device_create(0, 0, 0, 0, \"%s%%d\");" ds.ds_dev;
      add "  return 0;";
      add "}");
  Buffer.contents buf

let driver_dev_path (ds : driver_shape) =
  match ds.ds_reg with
  | Reg_misc_name -> "/dev/" ^ ds.ds_dev
  | Reg_cdev_init -> "/dev/" ^ ds.ds_dev ^ "0"
  | Reg_misc_nodename -> Printf.sprintf "/dev/%s/%s" ds.ds_name ds.ds_dev

(* ------------------------------------------------------------------ *)
(* Syzlang emission for "existing" specs                               *)
(* ------------------------------------------------------------------ *)

let syzlang_fields fields =
  List.map
    (fun f ->
      match f with
      | F_scalar (n, w) -> Printf.sprintf "\t%s int%d" n w
      | F_bytes (n, len) -> Printf.sprintf "\t%s array[int8, %d]" n len
      | F_len_of (n, target) -> Printf.sprintf "\t%s len[%s, int32]" n target
      | F_array32 (n, len) -> Printf.sprintf "\t%s array[int32, %d]" n len)
    fields

(** Hand-written-style spec text covering the first [fraction] of the
    commands (1.0 = complete). *)
let existing_spec_text (ds : driver_shape) ~(fraction : float) : string option =
  if fraction <= 0.0 then None
  else begin
    let total = List.length ds.ds_cmds in
    let keep = max 1 (int_of_float (Float.round (fraction *. float_of_int total))) in
    let cmds = List.filteri (fun i _ -> i < keep) ds.ds_cmds in
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    add "resource fd_%s[fd]" ds.ds_name;
    add
      "openat$%s(fd const[AT_FDCWD], file ptr[in, string[\"%s\"]], flags const[O_RDWR], mode const[0]) fd_%s"
      ds.ds_name (driver_dev_path ds) ds.ds_name;
    List.iter
      (fun c ->
        match c.cmd_struct with
        | None ->
            add "ioctl$%s(fd fd_%s, cmd const[%s], arg intptr)" c.cmd_name ds.ds_name c.cmd_name
        | Some (sname, _) ->
            add "ioctl$%s(fd fd_%s, cmd const[%s], arg ptr[%s, %s])" c.cmd_name ds.ds_name
              c.cmd_name
              (Syzlang.Ast.dir_to_string c.cmd_dir)
              sname)
      cmds;
    add "";
    List.iter
      (fun c ->
        match c.cmd_struct with
        | Some (sname, fields) ->
            add "%s {" sname;
            List.iter (fun l -> add "%s" l) (syzlang_fields fields);
            add "}"
        | None -> ())
      cmds;
    Some (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* Socket generation                                                   *)
(* ------------------------------------------------------------------ *)

type socket_shape = {
  ss_name : string;
  ss_domain : int;
  ss_type : int;
  ss_opts : (string * int * (string * field_shape list) option) list;
      (** option name, value, optional struct *)
}

let gen_socket_shape ~(index : int) (r : rng) : socket_shape =
  let ss_name = Printf.sprintf "gsock%02d" index in
  let nopts = 2 + rand_int r 8 in
  let ss_opts =
    List.init nopts (fun i ->
        let name = Printf.sprintf "GS%02d_OPT_%d" index i in
        let with_struct = rand_bool r 35 in
        let st =
          if with_struct then
            Some (Printf.sprintf "gs%02d_opt%d" index i, gen_fields r (Printf.sprintf "o%d" i))
          else None
        in
        (name, i + 1, st))
  in
  { ss_name; ss_domain = 100 + index; ss_type = 1 + rand_int r 2; ss_opts }

let socket_source (ss : socket_shape) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun (name, v, _) -> add "#define %s %d" name v) ss.ss_opts;
  add "";
  List.iter
    (fun (_, _, st) -> match st with Some s -> add "%s\n" (struct_c s) | None -> ())
    ss.ss_opts;
  add "struct %s_addr {" ss.ss_name;
  add "  u16 family;";
  add "  u16 port;";
  add "  u32 addr;";
  add "};";
  add "";
  add "static int _%s_bound;" ss.ss_name;
  add "static u32 _%s_state;" ss.ss_name;
  add "";
  add "static int %s_bind(struct socket *sock, struct sockaddr *uaddr, int len)" ss.ss_name;
  add "{";
  add "  struct %s_addr *a;" ss.ss_name;
  add "  a = (struct %s_addr *)uaddr;" ss.ss_name;
  add "  if (len < 8)";
  add "    return -EINVAL;";
  add "  if (a->family != %d)" ss.ss_domain;
  add "    return -EAFNOSUPPORT;";
  add "  _%s_bound = 1;" ss.ss_name;
  add "  return 0;";
  add "}";
  add "";
  add "static int %s_sendmsg(struct socket *sock, struct msghdr *msg, size_t len)" ss.ss_name;
  add "{";
  add "  if (!_%s_bound)" ss.ss_name;
  add "    return -ENOTCONN;";
  add "  if (len > 8192)";
  add "    return -EMSGSIZE;";
  add "  return len;";
  add "}";
  add "";
  add "static int %s_recvmsg(struct socket *sock, struct msghdr *msg, size_t size, int f)" ss.ss_name;
  add "{";
  add "  if (!_%s_bound)" ss.ss_name;
  add "    return -ENOTCONN;";
  add "  return 0;";
  add "}";
  add "";
  add "static int %s_setsockopt(struct socket *sock, int level, int optname, char *optval, unsigned int optlen)" ss.ss_name;
  add "{";
  List.iter
    (fun (_, _, st) ->
      match st with
      | Some (sname, _) -> add "  struct %s v_%s;" sname sname
      | None -> ())
    ss.ss_opts;
  add "  int val;";
  add "  switch (optname) {";
  List.iter
    (fun (name, _, st) ->
      add "  case %s:" name;
      match st with
      | None ->
          add "    if (copy_from_user(&val, optval, 4))";
          add "      return -EFAULT;";
          add "    _%s_state = _%s_state + val;" ss.ss_name ss.ss_name;
          add "    return 0;"
      | Some (sname, _) ->
          add "    if (copy_from_user(&v_%s, optval, sizeof(struct %s)))" sname sname;
          add "      return -EFAULT;";
          add "    _%s_state = _%s_state + 2;" ss.ss_name ss.ss_name;
          add "    return 0;")
    ss.ss_opts;
  add "  default:";
  add "    return -ENOPROTOOPT;";
  add "  }";
  add "}";
  add "";
  add "static int %s_release(struct socket *sock)" ss.ss_name;
  add "{";
  add "  _%s_bound = 0;" ss.ss_name;
  add "  return 0;";
  add "}";
  add "";
  add "static const struct proto_ops %s_ops = {" ss.ss_name;
  add "  .family = %d," ss.ss_domain;
  add "  .owner = THIS_MODULE,";
  add "  .release = %s_release," ss.ss_name;
  add "  .bind = %s_bind," ss.ss_name;
  add "  .setsockopt = %s_setsockopt," ss.ss_name;
  add "  .sendmsg = %s_sendmsg," ss.ss_name;
  add "  .recvmsg = %s_recvmsg," ss.ss_name;
  add "};";
  Buffer.contents buf

let socket_existing_spec_text (ss : socket_shape) ~(fraction : float) : string option =
  if fraction <= 0.0 then None
  else begin
    let buf = Buffer.create 512 in
    let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    add "resource sock_%s[fd]" ss.ss_name;
    add "socket$%s(domain const[%d], type const[%d], proto const[0]) sock_%s" ss.ss_name
      ss.ss_domain ss.ss_type ss.ss_name;
    if fraction >= 0.999 then begin
      add "bind$%s(fd sock_%s, addr ptr[in, %s_addr], addrlen const[8])" ss.ss_name ss.ss_name
        ss.ss_name;
      add "sendmsg$%s(fd sock_%s, msg ptr[in, array[int8]], f const[0])" ss.ss_name ss.ss_name;
      add "recvmsg$%s(fd sock_%s, msg ptr[inout, array[int8]], f const[0])" ss.ss_name
        ss.ss_name;
      add "%s_addr {" ss.ss_name;
      add "\tfamily const[%d, int16]" ss.ss_domain;
      add "\tport int16";
      add "\taddr int32";
      add "}"
    end;
    let total = List.length ss.ss_opts in
    let keep = int_of_float (Float.round (fraction *. float_of_int total)) in
    List.iteri
      (fun i (name, _, st) ->
        if i < keep then
          match st with
          | None ->
              add
                "setsockopt$%s(fd sock_%s, level const[0], optname const[%s], optval ptr[in, int32], optlen const[4])"
                name ss.ss_name name
          | Some (sname, fields) ->
              add
                "setsockopt$%s(fd sock_%s, level const[0], optname const[%s], optval ptr[in, %s], optlen intptr)"
                name ss.ss_name name sname;
              add "%s {" sname;
              List.iter (fun l -> add "%s" l) (syzlang_fields fields);
              add "}")
      ss.ss_opts;
    Some (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

let driver_entry_of_shape (ds : driver_shape) ~loaded ~hw_required ~spec_fraction : Types.entry =
  let gt_ioctls =
    List.map
      (fun c ->
        {
          Types.gc_name = c.cmd_name;
          gc_arg_type = Option.map fst c.cmd_struct;
          gc_dir = c.cmd_dir;
        })
      ds.ds_cmds
  in
  Types.driver_entry ~name:ds.ds_name ~display_name:ds.ds_dev
    ~source:(driver_source ds)
    ~gt:
      {
        Types.gt_paths = [ driver_dev_path ds ];
        gt_fops = ds.ds_name ^ "_fops";
        gt_socket = None;
        gt_ioctls;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl" ];
      }
    ~loaded ~hw_required
    ?existing_spec:(existing_spec_text ds ~fraction:spec_fraction)
    ()

let socket_entry_of_shape (ss : socket_shape) ~loaded ~spec_fraction : Types.entry =
  let gt_setsockopts =
    List.map
      (fun (name, _, st) ->
        { Types.gc_name = name; gc_arg_type = Option.map fst st; gc_dir = Syzlang.Ast.In })
      ss.ss_opts
  in
  Types.socket_entry ~name:ss.ss_name ~display_name:ss.ss_name
    ~source:(socket_source ss)
    ~gt:
      {
        Types.gt_paths = [];
        gt_fops = ss.ss_name ^ "_ops";
        gt_socket = Some (ss.ss_domain, ss.ss_type, 0);
        gt_ioctls = [];
        gt_setsockopts;
        gt_syscalls = [ "socket"; "bind"; "sendmsg"; "recvmsg"; "setsockopt" ];
      }
    ~loaded
    ?existing_spec:(socket_existing_spec_text ss ~fraction:spec_fraction)
    ()

(** Generate the long-tail population.

    [n_drivers]/[n_sockets] is how many to synthesize; [loaded_drivers]/
    [loaded_sockets] how many of them the syzbot config loads. Spec
    coverage of loaded modules is drawn so that roughly the paper's share
    ends up incomplete. *)
let population ?(seed = 7) ~n_drivers ~loaded_drivers ~n_sockets ~loaded_sockets () :
    Types.entry list =
  let r = rng_make seed in
  let drivers =
    List.init n_drivers (fun i ->
        let shape = gen_driver_shape ~index:i r in
        let loaded = i < loaded_drivers in
        let hw_required = (not loaded) && rand_bool r 40 in
        (* hand-written specs concentrate on mainstream drivers; the
           atypical ones (nodename registration, _IOC_NR rewrites,
           cdev format strings) are exactly the under-described tail *)
        let easy = shape.ds_reg = Reg_misc_name && shape.ds_disp = Disp_direct in
        let spec_fraction =
          if not loaded then 0.0
          else if easy then
            match rand_int r 100 with
            | x when x < 95 -> 1.0
            | x when x < 98 -> 0.3 +. (0.1 *. float_of_int (rand_int r 4))
            | _ -> 0.0
          else
            match rand_int r 100 with
            | x when x < 66 -> 1.0
            | x when x < 81 -> 0.3 +. (0.1 *. float_of_int (rand_int r 4))
            | _ -> 0.0
        in
        driver_entry_of_shape shape ~loaded ~hw_required ~spec_fraction)
  in
  let sockets =
    List.init n_sockets (fun i ->
        let shape = gen_socket_shape ~index:i r in
        let loaded = i < loaded_sockets in
        let spec_fraction =
          if not loaded then 0.0
          else
            match rand_int r 100 with
            | x when x < 25 -> 1.0
            | x when x < 75 -> 0.1 +. (0.1 *. float_of_int (rand_int r 5))
            | _ -> 0.0
        in
        socket_entry_of_shape shape ~loaded ~spec_fraction)
  in
  drivers @ sockets
