(** Executor stress driver ([/dev/stress0]) — not part of the paper
    population.

    This module exists for the engine-differential suite: it leans on
    exactly the executor machinery the compiled engine reimplements
    (top-level labels driven by [goto] loops, a six-parameter helper
    called with too few and too many arguments, a parameter shadowing a
    global, a [goto] that jumps over a local's first write, implicit
    declarations, and the high-arity builtins). It is registered only in
    {!Registry.extras}, so population counts, campaign schedules and
    every seeded RNG stream stay byte-identical to a tree without it. *)

let source =
  {|
#define STRESS_MAGIC 0xb7
#define STRESS_MAX_ROUNDS 64

#define STRESS_SPIN _IOW(STRESS_MAGIC, 1, struct stress_spin_req)
#define STRESS_MIX _IOWR(STRESS_MAGIC, 2, struct stress_mix_req)
#define STRESS_NAME _IOW(STRESS_MAGIC, 3, struct stress_name_req)

struct stress_spin_req {
  u32 rounds;
  u32 step;
};

struct stress_mix_req {
  u32 a;
  u32 b;
  u32 c;
  u32 rsv[4];
};

struct stress_name_req {
  char name[16];
  u32 flags;
};

static int _stress_opens;
static long _stress_acc;   /* shadowed by a parameter in stress_shadow */

/* Six parameters on purpose: call sites below pass 2 and 9 arguments,
 * so missing parameters must read as zero and extras must still be
 * evaluated (for their side effects) and dropped. */
static long stress_mix6(long a, long b, long c, long d, long e, long f)
{
  return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}

/* The parameter shadows the global _stress_acc for the whole body. */
static long stress_shadow(long _stress_acc)
{
  _stress_acc = _stress_acc + 100;
  return _stress_acc;
}

/* goto loop over top-level labels: the label map must be built from
 * the same statement walk in both engines. */
static long stress_spin(long rounds, long step)
{
  long acc;
  long i;
  acc = 0;
  i = 0;
again:
  if (i >= rounds)
    goto done;
  acc = acc + step;
  i = i + 1;
  goto again;
done:
  return acc;
}

/* The goto jumps over tmp's first write: tmp must read as its declared
 * zero afterwards, in both engines. */
static long stress_skip_write(long flag)
{
  long tmp;
  if (flag)
    goto after;
  tmp = 40;
after:
  return tmp + 2;
}

/* counter is never declared: implicit locals resolve the same way in
 * the tree walker and in the slot allocator. */
static long stress_implicit(long x)
{
  counter = x * 2;
  counter = counter + stress_shadow(counter);
  return counter;
}

static int stress_open(struct inode *inode, struct file *fp)
{
  void *buf;
  buf = kzalloc(64, GFP_KERNEL);
  if (!buf)
    return -ENOMEM;
  fp->private_data = buf;
  _stress_opens = _stress_opens + 1;
  return 0;
}

static int stress_release(struct inode *inode, struct file *fp)
{
  if (fp->private_data)
    kfree(fp->private_data);
  fp->private_data = 0;
  _stress_opens = _stress_opens - 1;
  return 0;
}

static long stress_ioctl(struct file *fp, unsigned int cmd, unsigned long arg)
{
  struct stress_spin_req spin;
  struct stress_mix_req mix;
  struct stress_name_req nreq;
  char label[16];
  long r;
  switch (cmd) {
  case STRESS_SPIN:
    if (copy_from_user(&spin, (void *)arg, sizeof(struct stress_spin_req)))
      return -EFAULT;
    if (spin.rounds > STRESS_MAX_ROUNDS)
      return -EINVAL;
    r = stress_spin(spin.rounds, min_t(long, spin.step, 7));
    _stress_acc = _stress_acc + r;
    return 0;
  case STRESS_MIX:
    if (copy_from_user(&mix, (void *)arg, sizeof(struct stress_mix_req)))
      return -EFAULT;
    /* two arguments: c..f read as zero */
    r = stress_mix6(mix.a, mix.b);
    /* nine arguments: the last three evaluate and drop */
    r = r + stress_mix6(mix.a, mix.b, mix.c, 1, 2, 3, stress_skip_write(mix.a),
                        stress_implicit(mix.b), max_t(long, mix.c, 9));
    if (copy_to_user((void *)arg, &mix, sizeof(struct stress_mix_req)))
      return -EFAULT;
    _stress_acc = _stress_acc + r;
    return 0;
  case STRESS_NAME:
    if (copy_from_user(&nreq, (void *)arg, sizeof(struct stress_name_req)))
      return -EFAULT;
    memset(label, 0, 16);
    snprintf(label, 16, "s-%s", nreq.name);
    if (strncmp(nreq.name, "probe", 5) == 0)
      return -EPERM;
    if (nreq.flags > 4)
      return -EINVAL;
    return 0;
  default:
    return -ENOTTY;
  }
}

static const struct file_operations stress_fops = {
  .open = stress_open,
  .release = stress_release,
  .unlocked_ioctl = stress_ioctl,
  .owner = THIS_MODULE,
};

static struct miscdevice stress_misc = {
  .minor = 200,
  .name = "stress0",
  .fops = &stress_fops,
};

static int stress_init(void)
{
  misc_register(&stress_misc);
  return 0;
}
|}

let commands =
  [
    ("STRESS_SPIN", Some "stress_spin_req", Syzlang.Ast.In);
    ("STRESS_MIX", Some "stress_mix_req", Syzlang.Ast.Inout);
    ("STRESS_NAME", Some "stress_name_req", Syzlang.Ast.In);
  ]

let entry : Types.entry =
  Types.driver_entry ~name:"stress" ~display_name:"stress0" ~source
    ~gt:
      {
        Types.gt_paths = [ "/dev/stress0" ];
        gt_fops = "stress_fops";
        gt_socket = None;
        gt_ioctls =
          List.map
            (fun (name, ty, dir) -> { Types.gc_name = name; gc_arg_type = ty; gc_dir = dir })
            commands;
        gt_setsockopts = [];
        gt_syscalls = [ "openat"; "ioctl"; "close" ];
      }
    ()
