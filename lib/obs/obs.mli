(** Structured tracing and metrics for the whole pipeline.

    Zero-overhead when disabled: every recording entry point first reads
    one atomic flag and returns (no allocation, no I/O, no formatting)
    when the corresponding subsystem is off, so instrumented hot paths
    cost one branch in a production run.

    {b Tracing} emits one JSONL record per span (or point event) to a
    caller-provided sink, the [--trace FILE] flag of the CLI and bench
    harness. Spans nest: each domain keeps its own span stack, a child's
    id is [<parent-id>.<child-index>], and pool tasks are rooted at
    [<pool-span>.<task-index>] — ids derive from submission order, never
    from wall clock or worker identity, so the {e span set} of a traced
    run is byte-identical for any [--jobs] value once the volatile ["t"]
    (timing) field is stripped.

    Record schema (one JSON object per line):
    {v
    {"id":"s0.3.1","parent":"s0.3","kind":"oracle.query","name":"identifier",
     "attrs":{...},"t":{"start":1.2,"dur_ms":0.8}}
    v}
    [id], [parent] (null for roots), [kind], [name], and [attrs] are
    deterministic; [t] carries wall-clock data ([start]/[dur_ms] for
    spans, [at] for events, plus [worker] for pool tasks) and is the
    only nondeterministic part.

    {b Metrics} is a process-wide registry of counters, gauges, and
    summary histograms, rendered on stderr at exit (the [--metrics]
    flag). Neither subsystem ever writes to stdout, preserving the
    byte-identical-stdout determinism contract of parallel runs. *)

(** Minimal JSON: just enough to emit and to re-parse/validate traces,
    with [parse (to_string v) = Ok v]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Parse one JSON value; trailing garbage is an error. *)
  val parse : string -> (t, string) result

  (** [member k (Obj kvs)] is the value bound to [k], if any. *)
  val member : string -> t -> t option
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

(** Route trace records to [oc]. The channel stays owned by the caller
    (it is flushed, never closed, by {!finalize}/{!reset}). *)
val enable_trace : out_channel -> unit

(** Open [file] (truncating) and route trace records to it; the file is
    closed by {!finalize} or {!reset}. *)
val enable_trace_file : string -> unit

(** Turn the metrics registry on; {!finalize} renders it to stderr. *)
val enable_metrics : unit -> unit

val tracing : unit -> bool
val metrics_on : unit -> bool

(** Flush the trace sink (a no-op when tracing is off). *)
val flush : unit -> unit

(** Render metrics to stderr (if enabled), flush and close the trace
    sink, and disable both subsystems. Idempotent; also registered via
    [at_exit] by the [enable_*] calls, so a CLI run needs no explicit
    teardown. *)
val finalize : unit -> unit

(** Disable everything, close an owned sink {e without} rendering
    metrics, clear the registry, and reset span-id counters — test
    isolation. *)
val reset : unit -> unit

(* ------------------------------------------------------------------ *)
(* Spans and events                                                    *)
(* ------------------------------------------------------------------ *)

(** [with_span ~kind name f] runs [f] inside a new span. The span is a
    child of the innermost span open on the calling domain (a root
    otherwise — roots are numbered ["s0"], ["s1"], ... in creation
    order). [attrs] is evaluated once, when the span closes, so it can
    report results computed inside [f]; keep its contents deterministic.
    When tracing is off this is exactly [f ()]. If [f] raises, the span
    is emitted with an ["error": true] attribute and the exception is
    re-raised. *)
val with_span :
  ?attrs:(unit -> (string * Json.t) list) ->
  kind:string ->
  string ->
  (unit -> 'a) ->
  'a

(** A capture of the innermost open span, used to root spans on another
    domain (the pool hands one to its workers). *)
type ctx

val current_ctx : unit -> ctx

(** [with_task_span ~ctx ~index ~kind name f] opens a span with the
    deterministic id [<ctx-id>.<index>] and parent [ctx], regardless of
    which domain (or how many) executes it — this is how pool tasks get
    stable ids from submission order. [name] is only evaluated when
    tracing is on; [worker] lands in the volatile ["t"] field. *)
val with_task_span :
  ?attrs:(unit -> (string * Json.t) list) ->
  ?worker:int ->
  ctx:ctx ->
  index:int ->
  kind:string ->
  (unit -> string) ->
  (unit -> 'a) ->
  'a

(** A point record (duration-less) as a child of the current span. *)
val event : ?attrs:(unit -> (string * Json.t) list) -> kind:string -> string -> unit

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

module Metrics : sig
  (** All recorders are no-ops (one atomic read, no allocation) unless
      {!enable_metrics} ran. Thread/domain-safe. *)

  val incr : ?by:int -> string -> unit

  val gauge : string -> float -> unit

  (** Add one observation to the named summary histogram
      (count/sum/min/max/mean). *)
  val observe : string -> float -> unit

  (** Current counter value (0 if absent) — works even when recording is
      disabled, for tests and reports. *)
  val counter_value : string -> int

  (** Print every metric, sorted by name, one ["[metrics] ..."] line
      each. *)
  val render : out_channel -> unit

  val clear : unit -> unit
end

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

type trace_stats = {
  ts_records : int;
  ts_kinds : (string * int) list;  (** kind -> record count, sorted *)
}

(** Parse a JSONL trace file and check every record's schema ([id],
    [kind], [name] strings; [parent] string or null). Returns per-kind
    record counts, or a message naming the first offending line. *)
val validate_trace_file : string -> (trace_stats, string) result
