(** Structured tracing + metrics. See obs.mli for the contract.

    Design notes:
    - the enabled flags are [Atomic.t bool]s read first on every entry
      point, so a disabled call is one load and a conditional branch;
    - span ids are strings built from submission/creation order
      ([s<n>] roots, [<parent>.<k>] children, [<pool>.<i>] pool tasks),
      never from wall clock or worker identity, which is what makes the
      span set of a run independent of [--jobs];
    - each domain has its own span stack (DLS), so workers trace
      concurrently without sharing; the only cross-domain state is the
      sink mutex (one lock per emitted line) and the metrics mutex. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
          (* NaN is not valid JSON; emit null-ish 0.0 guard via %.1f of nan
             would print "nan" — normalize to a parseable form *)
          Buffer.add_string buf
            (if Float.is_nan f then "0.0" else Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf "\":";
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string j =
    let b = Buffer.create 128 in
    write b j;
    Buffer.contents b

  exception Bad of string

  (* recursive-descent parser over a string with a cursor *)
  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'; incr pos
                 | '\\' -> Buffer.add_char b '\\'; incr pos
                 | '/' -> Buffer.add_char b '/'; incr pos
                 | 'n' -> Buffer.add_char b '\n'; incr pos
                 | 'r' -> Buffer.add_char b '\r'; incr pos
                 | 't' -> Buffer.add_char b '\t'; incr pos
                 | 'b' -> Buffer.add_char b '\b'; incr pos
                 | 'f' -> Buffer.add_char b '\012'; incr pos
                 | 'u' ->
                     (* [!pos] sits on the 'u'; helpers read the 4 hex
                        digits after a given 'u' position *)
                     let hex_at upos =
                       if upos + 4 >= n then fail "truncated \\u escape";
                       match int_of_string_opt ("0x" ^ String.sub s (upos + 1) 4) with
                       | Some code -> code
                       | None -> fail "bad \\u escape"
                     in
                     let code = hex_at !pos in
                     if code >= 0xD800 && code <= 0xDBFF then begin
                       (* high surrogate: must pair with \uDC00-\uDFFF;
                          the pair encodes one supplementary scalar *)
                       if
                         not
                           (!pos + 6 < n && s.[!pos + 5] = '\\' && s.[!pos + 6] = 'u')
                       then fail "lone high surrogate in \\u escape";
                       let lo = hex_at (!pos + 6) in
                       if not (lo >= 0xDC00 && lo <= 0xDFFF) then
                         fail "high surrogate not followed by low surrogate";
                       let scalar =
                         0x10000 + (((code - 0xD800) lsl 10) lor (lo - 0xDC00))
                       in
                       Buffer.add_utf_8_uchar b (Uchar.of_int scalar);
                       pos := !pos + 11
                     end
                     else if code >= 0xDC00 && code <= 0xDFFF then
                       fail "lone low surrogate in \\u escape"
                     else begin
                       Buffer.add_utf_8_uchar b (Uchar.of_int code);
                       pos := !pos + 5
                     end
                 | _ -> fail "unknown escape");
              go ()
          | c -> Buffer.add_char b c; incr pos; go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      let text = String.sub s start (!pos - start) in
      let is_float =
        String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
      in
      if is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let kvs = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              kvs := (k, v) :: !kvs;
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; members ()
              | Some '}' -> incr pos
              | _ -> fail "expected , or }"
            in
            members ();
            Obj (List.rev !kvs)
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let xs = ref [] in
            let rec elements () =
              let v = parse_value () in
              xs := v :: !xs;
              skip_ws ();
              match peek () with
              | Some ',' -> incr pos; elements ()
              | Some ']' -> incr pos
              | _ -> fail "expected , or ]"
            in
            elements ();
            List (List.rev !xs)
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing characters";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let trace_flag = Atomic.make false
let metrics_flag = Atomic.make false

let tracing () = Atomic.get trace_flag
let metrics_on () = Atomic.get metrics_flag

let sink_mutex = Mutex.create ()

(* channel, close-on-teardown *)
let sink : (out_channel * bool) option ref = ref None

let with_sink_lock f =
  Mutex.lock sink_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) f

let t0 = Unix.gettimeofday ()
let now_rel () = Unix.gettimeofday () -. t0

(* root spans are numbered in creation order; workers never create
   roots (their spans hang off a pool-task ctx), so in practice this
   counter only advances on the main domain and is deterministic *)
let root_counter = Atomic.make 0

type span = { sp_id : string; mutable sp_children : int }

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let emit_line line =
  with_sink_lock (fun () ->
      match !sink with
      | Some (oc, _) ->
          output_string oc line;
          output_char oc '\n'
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type hist = {
    mutable h_n : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
  }

  type metric =
    | Counter of { mutable c : int }
    | Gauge of { mutable g : float }
    | Hist of hist

  let table : (string, metric) Hashtbl.t = Hashtbl.create 64
  let mu = Mutex.create ()

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let incr ?(by = 1) name =
    if Atomic.get metrics_flag then
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | Some (Counter c) -> c.c <- c.c + by
          | Some _ -> ()
          | None -> Hashtbl.replace table name (Counter { c = by }))

  let gauge name v =
    if Atomic.get metrics_flag then
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | Some (Gauge g) -> g.g <- v
          | Some _ -> ()
          | None -> Hashtbl.replace table name (Gauge { g = v }))

  let observe name v =
    if Atomic.get metrics_flag then
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | Some (Hist h) ->
              h.h_n <- h.h_n + 1;
              h.h_sum <- h.h_sum +. v;
              if v < h.h_min then h.h_min <- v;
              if v > h.h_max then h.h_max <- v
          | Some _ -> ()
          | None ->
              Hashtbl.replace table name (Hist { h_n = 1; h_sum = v; h_min = v; h_max = v }))

  let counter_value name =
    locked (fun () ->
        match Hashtbl.find_opt table name with Some (Counter c) -> c.c | _ -> 0)

  let render oc =
    locked (fun () ->
        let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
        let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
        if rows = [] then Printf.fprintf oc "[metrics] (no metrics recorded)\n"
        else
          List.iter
            (fun (name, m) ->
              match m with
              | Counter c -> Printf.fprintf oc "[metrics] %-42s %12d\n" name c.c
              | Gauge g -> Printf.fprintf oc "[metrics] %-42s %12.3f\n" name g.g
              | Hist h ->
                  Printf.fprintf oc
                    "[metrics] %-42s n=%d sum=%.3f min=%.3f max=%.3f mean=%.3f\n" name h.h_n
                    h.h_sum h.h_min h.h_max
                    (h.h_sum /. float_of_int (max 1 h.h_n)))
            rows;
        flush oc)

  let clear () = locked (fun () -> Hashtbl.reset table)
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let close_sink () =
  with_sink_lock (fun () ->
      (match !sink with
      | Some (oc, close) ->
          flush oc;
          if close then close_out_noerr oc
      | None -> ());
      sink := None);
  Atomic.set trace_flag false

let finalize () =
  if Atomic.get metrics_flag then begin
    Metrics.render stderr;
    Atomic.set metrics_flag false
  end;
  close_sink ()

let at_exit_installed = ref false

let install_at_exit () =
  if not !at_exit_installed then begin
    at_exit_installed := true;
    at_exit finalize
  end

let enable_trace oc =
  close_sink ();
  with_sink_lock (fun () -> sink := Some (oc, false));
  Atomic.set trace_flag true;
  install_at_exit ()

let enable_trace_file file =
  close_sink ();
  let oc = open_out file in
  with_sink_lock (fun () -> sink := Some (oc, true));
  Atomic.set trace_flag true;
  install_at_exit ()

let enable_metrics () =
  Atomic.set metrics_flag true;
  install_at_exit ()

let flush () = with_sink_lock (fun () -> match !sink with Some (oc, _) -> flush oc | None -> ())

let reset () =
  Atomic.set metrics_flag false;
  close_sink ();
  Metrics.clear ();
  Atomic.set root_counter 0;
  Domain.DLS.get stack_key := []

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let record ~id ~parent ~kind ~name ~attrs ~timing =
  let base =
    [
      ("id", Json.Str id);
      ("parent", match parent with Some p -> Json.Str p | None -> Json.Null);
      ("kind", Json.Str kind);
      ("name", Json.Str name);
    ]
  in
  let attrs = match attrs with [] -> [] | a -> [ ("attrs", Json.Obj a) ] in
  Json.to_string (Json.Obj (base @ attrs @ [ ("t", Json.Obj timing) ]))

(* id and parent for a new child of the innermost open span (a fresh
   root if the stack is empty) *)
let alloc_child () =
  match !(Domain.DLS.get stack_key) with
  | sp :: _ ->
      let k = sp.sp_children in
      sp.sp_children <- k + 1;
      (sp.sp_id ^ "." ^ string_of_int k, Some sp.sp_id)
  | [] ->
      let n = Atomic.fetch_and_add root_counter 1 in
      ("s" ^ string_of_int n, None)

let run_span ?attrs ?worker ~id ~parent ~kind ~name f =
  let st = Domain.DLS.get stack_key in
  st := { sp_id = id; sp_children = 0 } :: !st;
  let t_start = now_rel () in
  let finish ok =
    (st := match !st with _ :: tl -> tl | [] -> []);
    let dur_ms = (now_rel () -. t_start) *. 1000.0 in
    let attrs = match attrs with None -> [] | Some thunk -> thunk () in
    let attrs = if ok then attrs else attrs @ [ ("error", Json.Bool true) ] in
    let timing =
      [ ("start", Json.Float t_start); ("dur_ms", Json.Float dur_ms) ]
      @ match worker with None -> [] | Some w -> [ ("worker", Json.Int w) ]
    in
    emit_line (record ~id ~parent ~kind ~name ~attrs ~timing)
  in
  match f () with
  | v ->
      finish true;
      v
  | exception e ->
      finish false;
      raise e

let with_span ?attrs ~kind name f =
  if not (Atomic.get trace_flag) then f ()
  else
    let id, parent = alloc_child () in
    run_span ?attrs ~id ~parent ~kind ~name f

type ctx = string option

let current_ctx () =
  if not (Atomic.get trace_flag) then None
  else match !(Domain.DLS.get stack_key) with sp :: _ -> Some sp.sp_id | [] -> None

let with_task_span ?attrs ?worker ~ctx ~index ~kind name_fn f =
  if not (Atomic.get trace_flag) then f ()
  else
    let id =
      match ctx with
      | Some c -> c ^ "." ^ string_of_int index
      | None -> "t" ^ string_of_int index
    in
    run_span ?attrs ?worker ~id ~parent:ctx ~kind ~name:(name_fn ()) f

let event ?attrs ~kind name =
  if Atomic.get trace_flag then begin
    let id, parent = alloc_child () in
    let attrs = match attrs with None -> [] | Some thunk -> thunk () in
    emit_line
      (record ~id ~parent ~kind ~name ~attrs ~timing:[ ("at", Json.Float (now_rel ())) ])
  end

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

type trace_stats = { ts_records : int; ts_kinds : (string * int) list }

let validate_record (j : Json.t) : (string, string) result =
  let str_field k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  match j with
  | Json.Obj _ -> (
      match (str_field "id", str_field "kind", str_field "name") with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok _, Ok kind, Ok _ -> (
          match Json.member "parent" j with
          | Some (Json.Str _) | Some Json.Null -> Ok kind
          | Some _ -> Error "field \"parent\" is neither string nor null"
          | None -> Error "missing field \"parent\""))
  | _ -> Error "record is not a JSON object"

let validate_trace_file path : (trace_stats, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let kinds = Hashtbl.create 16 in
          let records = ref 0 in
          let lineno = ref 0 in
          let err = ref None in
          (try
             while !err = None do
               let line = input_line ic in
               incr lineno;
               if String.trim line <> "" then
                 match Json.parse line with
                 | Error e -> err := Some (Printf.sprintf "line %d: %s" !lineno e)
                 | Ok j -> (
                     match validate_record j with
                     | Error e -> err := Some (Printf.sprintf "line %d: %s" !lineno e)
                     | Ok kind ->
                         incr records;
                         Hashtbl.replace kinds kind
                           (1 + Option.value (Hashtbl.find_opt kinds kind) ~default:0))
             done
           with End_of_file -> ());
          match !err with
          | Some e -> Error e
          | None ->
              let ts_kinds =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
                |> List.sort (fun (a, _) (b, _) -> String.compare a b)
              in
              Ok { ts_records = !records; ts_kinds })
