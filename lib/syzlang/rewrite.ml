(** Name substitution over specifications — how repairs are applied.

    When the repair model answers "the identifier should be X, not Y",
    the fix is a rename across the whole spec: constant references, type
    references, type definitions, resource declarations and references,
    syscall return resources, and syscall variants that embed the
    name. *)

let substitute_const (bad : string) (good : string) (c : Ast.const_ref) : Ast.const_ref =
  match c.const_name with
  | Some n when n = bad -> { c with const_name = Some good }
  | _ -> c

let rec substitute_typ (bad : string) (good : string) (t : Ast.typ) : Ast.typ =
  match t with
  | Ast.Const (c, w) -> Ast.Const (substitute_const bad good c, w)
  | Ast.Struct_ref n when n = bad -> Ast.Struct_ref good
  | Ast.Union_ref n when n = bad -> Ast.Union_ref good
  | Ast.Resource_ref n when n = bad -> Ast.Resource_ref good
  | Ast.Ptr (d, t) -> Ast.Ptr (d, substitute_typ bad good t)
  | Ast.Array (t, n) -> Ast.Array (substitute_typ bad good t, n)
  | Ast.Len (target, w) when target = bad -> Ast.Len (good, w)
  | Ast.Bytesize (target, w) when target = bad -> Ast.Bytesize (good, w)
  | t -> t

let substitute_field bad good (f : Ast.field) : Ast.field =
  { f with Ast.ftyp = substitute_typ bad good f.Ast.ftyp }

(** Rename every occurrence of [bad] to [good] in the spec. *)
let substitute_name (spec : Ast.spec) ~(bad : string) ~(good : string) : Ast.spec =
  let fix_call (c : Ast.syscall) =
    let variant = match c.Ast.variant with Some v when v = bad -> Some good | v -> v in
    let ret = match c.Ast.ret with Some r when r = bad -> Some good | r -> r in
    { c with Ast.variant; ret; args = List.map (substitute_field bad good) c.Ast.args }
  in
  let fix_resource (r : Ast.resource_def) =
    {
      Ast.res_name = (if r.Ast.res_name = bad then good else r.Ast.res_name);
      res_underlying = (if r.Ast.res_underlying = bad then good else r.Ast.res_underlying);
    }
  in
  let fix_comp (cd : Ast.comp_def) =
    {
      cd with
      Ast.comp_name = (if cd.Ast.comp_name = bad then good else cd.Ast.comp_name);
      comp_fields = List.map (substitute_field bad good) cd.Ast.comp_fields;
    }
  in
  let fix_flag_set (fs : Ast.flag_set) =
    { fs with Ast.set_values = List.map (substitute_const bad good) fs.Ast.set_values }
  in
  {
    spec with
    Ast.resources = List.map fix_resource spec.Ast.resources;
    syscalls = List.map fix_call spec.Ast.syscalls;
    types = List.map fix_comp spec.Ast.types;
    flag_sets = List.map fix_flag_set spec.Ast.flag_sets;
  }
