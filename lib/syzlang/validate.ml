(** Specification validation — the stand-in for Syzkaller's
    [syz-extract] and [syz-generate] tools.

    Validation resolves every symbolic constant against the kernel
    definition index (undefined macro names are exactly the class of
    error the paper's repair phase fixes), checks type and resource
    references, length-field targets, and structural sanity. Errors are
    structured so that the repair loop can match each error back to the
    offending description, as §3.2 of the paper requires. *)

type item =
  | In_syscall of string  (** full syscall name, e.g. [ioctl$DM_VERSION] *)
  | In_type of string
  | In_flag_set of string
  | In_resource of string

let item_to_string = function
  | In_syscall s -> "syscall " ^ s
  | In_type s -> "type " ^ s
  | In_flag_set s -> "flags " ^ s
  | In_resource s -> "resource " ^ s

type error = {
  err_spec : string;
  err_item : item;
  err_msg : string;
  err_ident : string option;
      (** the offending identifier, when the error is about one — what
          the repair loop substitutes. Carried structurally so repair
          never has to re-parse it out of [err_msg]. *)
}

let error_to_string e =
  Printf.sprintf "%s: %s: %s" e.err_spec (item_to_string e.err_item) e.err_msg

(** Constants every kernel build defines; specs may reference them without
    the corpus defining them. *)
let builtin_consts =
  [
    ("AT_FDCWD", -100L);
    ("O_RDONLY", 0L);
    ("O_WRONLY", 1L);
    ("O_RDWR", 2L);
    ("O_NONBLOCK", 0x800L);
    ("O_CLOEXEC", 0o2000000L);
    ("SOCK_STREAM", 1L);
    ("SOCK_DGRAM", 2L);
    ("SOCK_RAW", 3L);
    ("SOCK_SEQPACKET", 5L);
    ("AF_UNSPEC", 0L);
    ("AF_UNIX", 1L);
    ("AF_INET", 2L);
    ("AF_INET6", 10L);
    ("AF_PACKET", 17L);
    ("AF_NETLINK", 16L);
    ("AF_BLUETOOTH", 31L);
    ("AF_RDS", 21L);
    ("AF_LLC", 26L);
    ("AF_CAIF", 37L);
    ("AF_PHONET", 35L);
    ("AF_PPPOX", 24L);
    ("AF_VSOCK", 40L);
    ("AF_MCTP", 45L);
    ("SOL_SOCKET", 1L);
    ("MSG_DONTWAIT", 0x40L);
  ]

(** Resolve a symbolic constant to its value, trying builtins, kernel
    macros and kernel enum items in that order. *)
let resolve_const (kernel : Csrc.Index.t) (c : Ast.const_ref) : int64 option =
  match c.const_value with
  | Some v -> Some v
  | None -> (
      match c.const_name with
      | None -> None
      | Some name -> (
          match List.assoc_opt name builtin_consts with
          | Some v -> Some v
          | None -> (
              match Csrc.Index.eval_macro kernel name with
              | Some v -> Some v
              | None -> (
                  match Csrc.Index.find_enum_item kernel name with
                  | Some e -> Csrc.Index.eval_opt kernel e
                  | None -> None))))

let max_array_size = 1 lsl 20

(** Validate [spec] against [kernel]. Returns all errors found; an empty
    list means the specification passed validation. *)
let validate ~(kernel : Csrc.Index.t) (spec : Ast.spec) : error list =
  let errors = ref [] in
  let err ?ident item msg =
    errors :=
      { err_spec = spec.spec_name; err_item = item; err_msg = msg; err_ident = ident } :: !errors
  in
  let type_names = List.map (fun c -> c.Ast.comp_name) spec.types in
  let resource_names = List.map (fun r -> r.Ast.res_name) spec.resources in
  let flag_set_names = List.map (fun f -> f.Ast.set_name) spec.flag_sets in
  let check_const item (c : Ast.const_ref) =
    match resolve_const kernel c with
    | Some _ -> ()
    | None ->
        err ?ident:c.const_name item
          (Printf.sprintf "unknown const %s" (Ast.const_ref_to_string c))
  in
  let rec check_typ item ?(siblings = []) (t : Ast.typ) =
    match t with
    | Ast.Const (c, _) -> check_const item c
    | Ast.Flags (name, _) ->
        if not (List.mem name flag_set_names) then
          err ~ident:name item (Printf.sprintf "undefined flags %s" name)
    | Ast.Struct_ref name | Ast.Union_ref name ->
        if not (List.mem name type_names) then
          err ~ident:name item (Printf.sprintf "undefined type %s" name)
    | Ast.Resource_ref name ->
        if not (List.mem name resource_names) then
          err ~ident:name item (Printf.sprintf "undefined resource %s" name)
    | Ast.Len (target, _) | Ast.Bytesize (target, _) ->
        if not (List.mem target siblings) then
          err ~ident:target item (Printf.sprintf "len target %s is not a sibling field" target)
    | Ast.Array (elem, size) ->
        (match size with
        | Some n when n < 0 || n > max_array_size ->
            err item (Printf.sprintf "array size %d out of range" n)
        | _ -> ());
        check_typ item ~siblings elem
    | Ast.Ptr (_, inner) -> check_typ item ~siblings inner
    | Ast.Int (_, Some { lo; hi }) ->
        if Int64.compare lo hi > 0 then
          err item (Printf.sprintf "empty int range [%Ld:%Ld]" lo hi)
    | Ast.Int (_, None) | Ast.Buffer _ | Ast.String _ | Ast.Fd | Ast.Void -> ()
  in
  (* duplicate syscall names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let full = Ast.syscall_full_name c in
      if Hashtbl.mem seen full then err (In_syscall full) "duplicate syscall name"
      else Hashtbl.replace seen full ())
    spec.syscalls;
  (* syscalls *)
  List.iter
    (fun c ->
      let full = Ast.syscall_full_name c in
      let item = In_syscall full in
      let siblings = List.map (fun f -> f.Ast.fname) c.Ast.args in
      List.iter (fun f -> check_typ item ~siblings f.Ast.ftyp) c.Ast.args;
      (match c.Ast.ret with
      | Some r when not (List.mem r resource_names) ->
          err ~ident:r item (Printf.sprintf "return resource %s is not declared" r)
      | _ -> ());
      (* an ioctl needs a constant (or flag-set) command argument *)
      if c.Ast.call_name = "ioctl" then
        match c.Ast.args with
        | _fd :: cmd :: _ -> (
            match cmd.Ast.ftyp with
            | Ast.Const _ | Ast.Flags _ -> ()
            | _ -> err item "ioctl command argument must be a const or flags")
        | _ -> err item "ioctl must take at least (fd, cmd)")
    spec.syscalls;
  (* types *)
  List.iter
    (fun cd ->
      let item = In_type cd.Ast.comp_name in
      if cd.Ast.comp_fields = [] then err item "empty struct/union";
      let siblings = List.map (fun f -> f.Ast.fname) cd.Ast.comp_fields in
      List.iter (fun f -> check_typ item ~siblings f.Ast.ftyp) cd.Ast.comp_fields)
    spec.types;
  (* flag sets *)
  List.iter
    (fun fs ->
      let item = In_flag_set fs.Ast.set_name in
      if fs.Ast.set_values = [] then err item "empty flag set";
      List.iter (check_const item) fs.Ast.set_values)
    spec.flag_sets;
  (* resources *)
  List.iter
    (fun r ->
      if r.Ast.res_underlying <> "fd" && not (List.mem r.Ast.res_underlying resource_names)
      then
        err ~ident:r.Ast.res_underlying (In_resource r.Ast.res_name)
          (Printf.sprintf "unknown underlying resource %s" r.Ast.res_underlying))
    spec.resources;
  List.rev !errors

(** Rewrite the spec with every resolvable symbolic constant annotated
    with its numeric value (what [syz-extract] produces). Unresolvable
    constants are left untouched — they will have been reported by
    {!validate}. *)
let resolve_spec ~(kernel : Csrc.Index.t) (spec : Ast.spec) : Ast.spec =
  let fix_const c =
    match resolve_const kernel c with
    | Some v -> { c with Ast.const_value = Some v }
    | None -> c
  in
  let rec fix t =
    match t with
    | Ast.Const (c, w) -> Ast.Const (fix_const c, w)
    | Ast.Ptr (d, t) -> Ast.Ptr (d, fix t)
    | Ast.Array (t, n) -> Ast.Array (fix t, n)
    | t -> t
  in
  let fix_field f = { f with Ast.ftyp = fix f.Ast.ftyp } in
  {
    spec with
    Ast.syscalls =
      List.map (fun c -> { c with Ast.args = List.map fix_field c.Ast.args }) spec.syscalls;
    types =
      List.map
        (fun c -> { c with Ast.comp_fields = List.map fix_field c.Ast.comp_fields })
        spec.types;
    flag_sets =
      List.map
        (fun fs -> { fs with Ast.set_values = List.map fix_const fs.Ast.set_values })
        spec.flag_sets;
  }

(** Errors whose item matches a given syscall/type name — used by the
    repair loop to pair error messages with descriptions. *)
let errors_for_item (errs : error list) (item : item) : error list =
  List.filter (fun e -> e.err_item = item) errs
