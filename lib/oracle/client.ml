(** Fault-tolerant oracle client (see client.mli). *)

type policy = {
  max_attempts : int;
  repair_max_attempts : int;
  base_backoff_ms : int;
  max_backoff_ms : int;
  attempt_latency_ms : int;
  attempt_timeout_ms : int;
  reject_latency_ms : int;
  retry_after_ms : int;
  query_deadline_ms : int;
  breaker_threshold : int;
  breaker_cooldown_ms : int;
}

let default_policy =
  {
    max_attempts = 8;
    repair_max_attempts = 4;
    base_backoff_ms = 100;
    max_backoff_ms = 5_000;
    attempt_latency_ms = 20;
    attempt_timeout_ms = 1_000;
    reject_latency_ms = 1_000;
    retry_after_ms = 2_000;
    query_deadline_ms = 120_000;
    breaker_threshold = 8;
    breaker_cooldown_ms = 30_000;
  }

type budget = { b_total : int; b_used : int Atomic.t }

let budget n = { b_total = n; b_used = Atomic.make 0 }
let budget_total b = b.b_total
let budget_used b = Atomic.get b.b_used

(** Take one unit, exactly (CAS loop — the pool's workers share one
    budget across domains). [false] when the budget is spent. *)
let budget_take (b : budget) : bool =
  let rec go () =
    let u = Atomic.get b.b_used in
    if u >= b.b_total then false
    else if Atomic.compare_and_set b.b_used u (u + 1) then true
    else go ()
  in
  go ()

type stats = {
  mutable s_queries : int;
  mutable s_attempts : int;
  mutable s_faults : int;
  mutable s_retries : int;
  mutable s_recovered : int;
  mutable s_degraded : int;
  mutable s_rejected : int;
  mutable s_breaker_trips : int;
}

let zero_stats () =
  {
    s_queries = 0;
    s_attempts = 0;
    s_faults = 0;
    s_retries = 0;
    s_recovered = 0;
    s_degraded = 0;
    s_rejected = 0;
    s_breaker_trips = 0;
  }

type t = {
  oracle : Oracle.t;
  plan : Faults.plan option;
  policy : policy;
  query_budget : budget option;
  cache : Cache.t option;
  mutable clock : int;  (** virtual milliseconds since creation *)
  mutable consecutive_failures : int;
  mutable breaker_open_until : int;  (** -1 = closed *)
  stats : stats;
}

let create ?plan ?(policy = default_policy) ?query_budget ?cache oracle =
  {
    oracle;
    plan;
    policy;
    query_budget;
    cache;
    clock = 0;
    consecutive_failures = 0;
    breaker_open_until = -1;
    stats = zero_stats ();
  }

let pass_through oracle = create oracle

let oracle t = t.oracle

let fault_tolerant t = t.plan <> None || t.query_budget <> None

let snapshot t = { t.stats with s_queries = t.stats.s_queries }

let diff (later : stats) (earlier : stats) : stats =
  {
    s_queries = later.s_queries - earlier.s_queries;
    s_attempts = later.s_attempts - earlier.s_attempts;
    s_faults = later.s_faults - earlier.s_faults;
    s_retries = later.s_retries - earlier.s_retries;
    s_recovered = later.s_recovered - earlier.s_recovered;
    s_degraded = later.s_degraded - earlier.s_degraded;
    s_rejected = later.s_rejected - earlier.s_rejected;
    s_breaker_trips = later.s_breaker_trips - earlier.s_breaker_trips;
  }

let clock_ms t = t.clock

let reset_transients t =
  t.clock <- 0;
  t.consecutive_failures <- 0;
  t.breaker_open_until <- -1

(* ------------------------------------------------------------------ *)

let trip_breaker (t : t) =
  t.breaker_open_until <- t.clock + t.policy.breaker_cooldown_ms;
  t.consecutive_failures <- 0;
  t.stats.s_breaker_trips <- t.stats.s_breaker_trips + 1;
  Obs.Metrics.incr "oracle.breaker_trips";
  Obs.event ~kind:"oracle.breaker"
    ~attrs:(fun () -> [ ("clock_ms", Obs.Json.Int t.clock) ])
    "trip"

let give_up (t : t) ~(subject : string) ~(reason : string) : 'a option =
  t.stats.s_degraded <- t.stats.s_degraded + 1;
  Obs.Metrics.incr "oracle.degraded";
  Obs.event ~kind:"oracle.degraded"
    ~attrs:(fun () ->
      [ ("reason", Obs.Json.Str reason); ("clock_ms", Obs.Json.Int t.clock) ])
    subject;
  None

(** Fail fast without touching the backend (open breaker, spent
    budget). The pipeline keeps doing real work between queries, so even
    a rejection advances the virtual clock — otherwise an open breaker
    would never reach its cooldown and the half-open probe could never
    fire. *)
let reject (t : t) ~subject ~reason =
  t.clock <- t.clock + t.policy.reject_latency_ms;
  t.stats.s_rejected <- t.stats.s_rejected + 1;
  Obs.Metrics.incr ("oracle." ^ reason);
  give_up t ~subject ~reason

let backoff_ms (t : t) ~(subject : string) ~(attempt : int) (kind : Faults.kind) : int =
  let exp_ms =
    min t.policy.max_backoff_ms (t.policy.base_backoff_ms * (1 lsl min 16 (attempt - 1)))
  in
  let jit =
    match t.plan with
    | Some plan -> Faults.jitter plan ~subject ~attempt ~range_ms:t.policy.base_backoff_ms
    | None -> 0
  in
  let retry_after = match kind with Faults.Rate_limit -> t.policy.retry_after_ms | _ -> 0 in
  exp_ms + jit + retry_after

let query_backend (t : t) (p : Prompt.t) : Prompt.response option =
  if not (fault_tolerant t) then Some (Oracle.query t.oracle p)
  else begin
    t.stats.s_queries <- t.stats.s_queries + 1;
    let subject = Oracle.task_name p.task ^ ":" ^ Oracle.task_subject p.task in
    let max_attempts =
      match p.task with
      | Prompt.Repair _ -> t.policy.repair_max_attempts
      | _ -> t.policy.max_attempts
    in
    if t.breaker_open_until >= 0 && t.clock < t.breaker_open_until then
      (* open circuit: fail fast until the cooldown elapses, then let the
         next query through as the half-open probe *)
      reject t ~subject ~reason:"breaker_rejected"
    else begin
      let probing = t.breaker_open_until >= 0 in
      let started = t.clock in
      let profile = t.oracle.Oracle.profile.Profile.name in
      let rec attempt n =
        if n > max_attempts then give_up t ~subject ~reason:"attempts_exhausted"
        else if
          match t.query_budget with Some b -> not (budget_take b) | None -> false
        then reject t ~subject ~reason:"budget_exhausted"
        else begin
          t.stats.s_attempts <- t.stats.s_attempts + 1;
          match
            match t.plan with
            | None -> None
            | Some plan -> Faults.decide plan ~profile ~subject ~attempt:n
          with
          | None ->
              let resp = Oracle.query t.oracle p in
              t.clock <- t.clock + t.policy.attempt_latency_ms;
              t.consecutive_failures <- 0;
              if probing || t.breaker_open_until >= 0 then t.breaker_open_until <- -1;
              if n > 1 then begin
                t.stats.s_recovered <- t.stats.s_recovered + 1;
                Obs.Metrics.incr "oracle.recovered"
              end;
              Some resp
          | Some kind ->
              t.stats.s_faults <- t.stats.s_faults + 1;
              Obs.Metrics.incr ("oracle.faults." ^ Faults.kind_to_string kind);
              Obs.event ~kind:"oracle.fault"
                ~attrs:(fun () ->
                  [
                    ("subject", Obs.Json.Str subject);
                    ("attempt", Obs.Json.Int n);
                    ("clock_ms", Obs.Json.Int t.clock);
                  ])
                (Faults.kind_to_string kind);
              (* a malformed/truncated payload means the backend served
                 the request — the tokens are spent, the answer useless *)
              (match kind with
              | Faults.Malformed | Faults.Truncated -> ignore (Oracle.query t.oracle p)
              | Faults.Timeout | Faults.Rate_limit | Faults.Server_error -> ());
              t.clock <-
                t.clock
                +
                (match kind with
                | Faults.Timeout -> t.policy.attempt_timeout_ms
                | _ -> t.policy.attempt_latency_ms);
              t.consecutive_failures <- t.consecutive_failures + 1;
              if t.consecutive_failures >= t.policy.breaker_threshold then begin
                trip_breaker t;
                give_up t ~subject ~reason:"breaker_open"
              end
              else if n = max_attempts then give_up t ~subject ~reason:"attempts_exhausted"
              else begin
                let wait = backoff_ms t ~subject ~attempt:n kind in
                if t.clock + wait - started > t.policy.query_deadline_ms then
                  give_up t ~subject ~reason:"deadline_exceeded"
                else begin
                  t.clock <- t.clock + wait;
                  t.stats.s_retries <- t.stats.s_retries + 1;
                  Obs.Metrics.incr "oracle.retries";
                  attempt (n + 1)
                end
              end
        end
      in
      attempt 1
    end
  end

let query (t : t) (p : Prompt.t) : Prompt.response option =
  match t.cache with
  | None -> query_backend t p
  | Some cache -> (
      let key = Cache.key ~profile:t.oracle.Oracle.profile p in
      let subject = Oracle.task_name p.task ^ ":" ^ Oracle.task_subject p.task in
      match Cache.find cache ~subject key with
      | Some e ->
          (* replay the recorded accounting so cost tables match a cold
             run; no backend call, no fault decision, no budget unit *)
          Some (Cache.replay t.oracle e)
      | None ->
          let o = t.oracle in
          let q0 = o.Oracle.queries
          and tk0 = o.Oracle.prompt_tokens
          and tr0 = o.Oracle.truncations
          and er0 = o.Oracle.injected_errors in
          let resp = query_backend t p in
          (match resp with
          | Some r ->
              Cache.store cache ~key ~subject
                {
                  Cache.e_response = r;
                  e_queries = o.Oracle.queries - q0;
                  e_tokens = o.Oracle.prompt_tokens - tk0;
                  e_truncations = o.Oracle.truncations - tr0;
                  e_errors = o.Oracle.injected_errors - er0;
                }
          | None -> () (* degraded answers are retried cold next run *));
          resp)
