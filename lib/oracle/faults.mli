(** Deterministic, seeded transport-fault injection for the oracle.

    A real LLM backend times out, rate-limits, throws transient server
    errors, and occasionally returns malformed or truncated payloads.
    This module decides — purely, from a seeded hash of
    [(profile, subject, attempt)] — whether a given query attempt is hit
    by such a fault and which kind. Because the decision never consults
    wall clock, scheduling, or mutable state, a fault plan replays
    identically across runs and for any [--jobs] value, which is what
    makes retry/recovery behavior testable. *)

type kind =
  | Timeout  (** the request never comes back *)
  | Rate_limit  (** HTTP 429: back off longer before retrying *)
  | Server_error  (** transient 5xx *)
  | Malformed  (** a response arrives but cannot be parsed (or is empty) *)
  | Truncated  (** the response stream is cut off mid-payload *)

val kind_to_string : kind -> string

(** A fault plan: the per-attempt fault probability (percent) and the
    seed that decorrelates plans from each other. *)
type plan = { rate_pct : int; seed : int }

val make : ?seed:int -> rate_pct:int -> unit -> plan

(** Parse a [--faults] specification: ["RATE"] or ["RATE:SEED"], with
    RATE in percent (0–100). *)
val parse_spec : string -> (plan, string) result

val spec_to_string : plan -> string

(** Decide the fate of one query attempt. [attempt] is 1-based, so a
    retry of a faulted attempt gets a fresh, independent decision. *)
val decide : plan -> profile:string -> subject:string -> attempt:int -> kind option

(** Deterministic backoff jitter in [0, range_ms), keyed like {!decide}
    so two runs of the same plan wait exactly as long (on the client's
    virtual clock). *)
val jitter : plan -> subject:string -> attempt:int -> range_ms:int -> int
